package borderpatrol

import (
	"bytes"
	"testing"
)

// TestAuditPipelineEndToEnd drives the facade and checks the asynchronous
// audit pipeline: every enforced packet is recorded, nothing is shed at
// this scale, entries reach the writer on flush, and Close is clean.
func TestAuditPipelineEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	dep, err := NewDeployment(DeploymentConfig{
		Policy:      `{[deny][library]["com/flurry"]}`,
		AuditWriter: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := dep.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if _, err := dep.Exercise(app, "download"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dep.Exercise(app, "analytics"); err != nil {
		t.Fatal(err)
	}

	tail := dep.AuditTail() // flushes the pipeline
	if len(tail) != 4 {
		t.Fatalf("audit tail has %d entries, want 4", len(tail))
	}
	st := dep.Stats()
	if st.AuditRecorded != 4 || st.AuditDropped != 0 {
		t.Fatalf("audit stats = recorded %d dropped %d", st.AuditRecorded, st.AuditDropped)
	}
	if st.AuditPending != 0 {
		t.Fatalf("audit pending = %d after flush", st.AuditPending)
	}
	drop := tail[len(tail)-1]
	if drop.Verdict != "drop" || drop.Cause != "policy" {
		t.Fatalf("analytics entry = %+v", drop)
	}

	// Single-request connections announce "Connection: close", so the
	// gateway tears delivered flows down. The analytics flow was dropped —
	// no connection ever completed — so its drop verdict deliberately
	// stays cached, keeping repeat offenders cheap to block.
	if st.FlowsLive != 1 {
		t.Fatalf("flows live = %d, want 1 (only the dropped analytics flow)", st.FlowsLive)
	}
	// Each download connection re-resolved (no cross-connection hits), and
	// the analytics flow was evaluated on its own — 4 misses total.
	if st.FlowCacheMisses != 4 || st.FlowCacheHits != 0 {
		t.Fatalf("flow stats = hits %d misses %d", st.FlowCacheHits, st.FlowCacheMisses)
	}

	if err := dep.Close(); err != nil {
		t.Fatal(err)
	}
	entries := buf.String()
	if entries == "" {
		t.Fatal("audit writer received nothing")
	}
}

// TestKeepAliveFlowsStayCachedEndToEnd: a multi-request functionality
// rides one keep-alive connection, so later packets hit the flow cache and
// the flow survives until TTL — the teardown must not fire for it.
func TestKeepAliveFlowsStayCachedEndToEnd(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	funcs := demoFuncs()
	funcs[0].Op.Requests = 5 // keep-alive train on one socket
	app, err := dep.InstallApp(demoAPK(), funcs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dep.Exercise(app, "download")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("outcomes = %d, want 5", len(out))
	}
	st := dep.Stats()
	if st.FlowCacheMisses != 1 || st.FlowCacheHits != 4 {
		t.Fatalf("flow stats = hits %d misses %d, want 4/1", st.FlowCacheHits, st.FlowCacheMisses)
	}
	if st.FlowsLive != 1 {
		t.Fatalf("flows live = %d, want 1 (keep-alive flow cached)", st.FlowsLive)
	}
	if st.AuditRecorded != 5 {
		t.Fatalf("audit recorded = %d, want 5", st.AuditRecorded)
	}
}
