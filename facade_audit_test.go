package borderpatrol

import (
	"bytes"
	"testing"
)

// TestAuditPipelineEndToEnd drives the facade and checks the asynchronous
// audit pipeline: every enforced packet is recorded, nothing is shed at
// this scale, entries reach the writer on flush, and Close is clean.
func TestAuditPipelineEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	dep, err := NewDeployment(DeploymentConfig{
		Policy:      `{[deny][library]["com/flurry"]}`,
		AuditWriter: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := dep.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if _, err := dep.Exercise(app, "download"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dep.Exercise(app, "analytics"); err != nil {
		t.Fatal(err)
	}

	// Every packet of every connection is audited: 3 download connections
	// × (SYN + request + FIN) + 1 analytics connection × 3 = 12.
	tail := dep.AuditTail() // flushes the pipeline
	if len(tail) != 12 {
		t.Fatalf("audit tail has %d entries, want 12", len(tail))
	}
	st := dep.Stats()
	if st.AuditRecorded != 12 || st.AuditDropped != 0 {
		t.Fatalf("audit stats = recorded %d dropped %d", st.AuditRecorded, st.AuditDropped)
	}
	if st.AuditPending != 0 {
		t.Fatalf("audit pending = %d after flush", st.AuditPending)
	}
	drop := tail[len(tail)-1]
	if drop.Verdict != "drop" || drop.Cause != "policy" {
		t.Fatalf("analytics entry = %+v", drop)
	}

	// Each download connection's FIN tore its flow down via conntrack.
	// The analytics flow was dropped — its FIN died with the rest of the
	// connection — so its drop verdict deliberately stays cached, keeping
	// repeat offenders cheap to block.
	if st.FlowsLive != 1 {
		t.Fatalf("flows live = %d, want 1 (only the dropped analytics flow)", st.FlowsLive)
	}
	if st.ConnsEstablished != 3 || st.ConnsClosed != 3 {
		t.Fatalf("conntrack = est %d closed %d, want 3/3", st.ConnsEstablished, st.ConnsClosed)
	}
	// Per download connection: the SYN misses, request + FIN hit; ports
	// separate the connections so none shares an entry. Analytics: SYN
	// misses, request + FIN hit the cached drop. 4 misses, 8 hits.
	if st.FlowCacheMisses != 4 || st.FlowCacheHits != 8 {
		t.Fatalf("flow stats = hits %d misses %d, want 8/4", st.FlowCacheHits, st.FlowCacheMisses)
	}

	if err := dep.Close(); err != nil {
		t.Fatal(err)
	}
	entries := buf.String()
	if entries == "" {
		t.Fatal("audit writer received nothing")
	}
}

// TestKeepAliveFlowsStayCachedEndToEnd: a multi-request functionality
// rides one TCP connection — the SYN pays the pipeline once, the whole
// keep-alive train hits the cache, and the FIN (not any application-layer
// header) tears the flow down at the end of the connection.
func TestKeepAliveFlowsStayCachedEndToEnd(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	funcs := demoFuncs()
	funcs[0].Op.Requests = 5 // keep-alive train on one socket
	app, err := dep.InstallApp(demoAPK(), funcs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dep.Exercise(app, "download")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 7 {
		t.Fatalf("outcomes = %d, want 7 (SYN + 5 requests + FIN)", len(out))
	}
	st := dep.Stats()
	if st.FlowCacheMisses != 1 || st.FlowCacheHits != 6 {
		t.Fatalf("flow stats = hits %d misses %d, want 6/1", st.FlowCacheHits, st.FlowCacheMisses)
	}
	if st.FlowsLive != 0 {
		t.Fatalf("flows live = %d, want 0 (FIN tore the connection down)", st.FlowsLive)
	}
	if st.ConnsEstablished != 1 || st.ConnsClosed != 1 {
		t.Fatalf("conntrack = est %d closed %d, want 1/1", st.ConnsEstablished, st.ConnsClosed)
	}
	if st.AuditRecorded != 7 {
		t.Fatalf("audit recorded = %d, want 7", st.AuditRecorded)
	}
}
