package borderpatrol

import (
	"strconv"
	"strings"
	"testing"
)

// scrapeValue pulls the value of a single sample line (exact series name,
// including any label set) out of a Prometheus text exposition.
func scrapeValue(t *testing.T, prom, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(prom, "\n") {
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, series)), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %s missing from scrape", series)
	return 0
}

// TestDeploymentDataplane turns the per-core match-action stage on through
// the public facade and pins two things: verdicts are identical to the
// enforcer-only path (download delivered, upload and analytics dropped at
// the gateway by their deny rules), and the stage actually ran (probe
// misses counted on the deployment registry). Hits are not asserted:
// Exercise opens a fresh connection per call, so within a single batch
// every probe precedes the promotion of its own flow.
func TestDeploymentDataplane(t *testing.T) {
	dep, err := New(Config{
		Policy: PolicyConfig{
			Doc: `
{[deny][library]["com/flurry"]}
{[deny][method]["Lcom/corp/files/SyncEngine;->upload()V"]}
`,
		},
		Flow: FlowConfig{Dataplane: true, DataplaneEntries: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	app, err := dep.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}

	for range [3]struct{}{} {
		out, err := dep.Exercise(app, "download")
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range out {
			if !o.Delivered {
				t.Fatalf("download packet %d dropped with dataplane on: %+v", i, o)
			}
		}
	}
	for _, fn := range []string{"upload", "analytics"} {
		out, err := dep.Exercise(app, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range out {
			if o.Delivered {
				t.Fatalf("%s packet %d not blocked with dataplane on", fn, i)
			}
			if o.DropStage != "gateway" {
				t.Fatalf("%s packet %d drop stage = %s", fn, i, o.DropStage)
			}
			if !strings.Contains(o.Reason, "deny rule") {
				t.Fatalf("%s packet %d reason = %q", fn, i, o.Reason)
			}
		}
	}

	var sb strings.Builder
	if err := dep.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	prom := sb.String()
	for _, family := range []string{
		"bp_dataplane_probes_total",
		"bp_dataplane_promotions_total",
		"bp_dataplane_seq_injection_drops_total",
	} {
		if !strings.Contains(prom, family) {
			t.Fatalf("metric family %s missing from scrape", family)
		}
	}
	if v := scrapeValue(t, prom, `bp_dataplane_probes_total{outcome="miss"}`); v == 0 {
		t.Fatal("dataplane enabled but no probe ever ran")
	}
	if v := scrapeValue(t, prom, "bp_dataplane_seq_injection_drops_total"); v != 0 {
		t.Fatalf("spurious response-injection drops on clean traffic: %v", v)
	}
}
