package borderpatrol

import (
	"bytes"
	"strings"
	"testing"
)

func TestExerciseViaRoutes(t *testing.T) {
	var auditBuf bytes.Buffer
	dep, err := NewDeployment(DeploymentConfig{
		Policy:      `{[deny][library]["com/flurry"]}`,
		AuditWriter: &auditBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := dep.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}

	// Off-premises work traffic over VPN is still enforced: the whole
	// analytics connection (SYN, data, FIN) dies at the gateway.
	out, err := dep.ExerciseVia(app, "analytics", RouteVPN)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.Delivered {
			t.Fatalf("vpn-routed analytics packet %d escaped enforcement", i)
		}
	}
	out, err = dep.ExerciseVia(app, "download", RouteVPN)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if !o.Delivered {
			t.Fatalf("vpn-routed download packet %d blocked", i)
		}
	}

	// Mobile-routed tagged traffic dies at the carrier border (options
	// survive because no sanitizer ran).
	out, err = dep.ExerciseVia(app, "download", RouteMobile)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Delivered {
		t.Fatal("tagged mobile traffic crossed an RFC 7126 border")
	}
	if out[0].DropStage != "border-router" {
		t.Fatalf("drop stage = %s", out[0].DropStage)
	}

	// The audit log captured the enforced (gateway) decisions: two VPN
	// connections × 3 packets each (the mobile route never reaches the
	// gateway).
	tail := dep.AuditTail()
	if len(tail) != 6 {
		t.Fatalf("audit tail has %d entries, want 6 (vpn analytics + vpn download, 3 packets each)", len(tail))
	}
	if tail[0].Verdict != "drop" || !strings.Contains(tail[0].Rule, "com/flurry") {
		t.Fatalf("audit entry = %+v", tail[0])
	}
	if !strings.Contains(auditBuf.String(), `"verdict":"drop"`) {
		t.Fatal("audit writer did not receive JSON lines")
	}
}
