package borderpatrol

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"borderpatrol/internal/metrics"
	"borderpatrol/internal/netsim"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/policystore"
)

// GroupSet is a policy document split into a global section and named
// //@group sections (the unit of fleet policy sharding).
type GroupSet = policy.GroupSet

// ParseGroupSet splits a grouped policy document. The same document is a
// valid flat policy — //@group markers read as comments — so one document
// serves both a fleet and an N=1 deployment enforcing the union.
func ParseGroupSet(doc string) (*GroupSet, error) {
	return policy.ParseGroupSet(doc)
}

// MetricsAggregate merges every gateway's registry into one scrape, each
// series labelled with its gateway name. See Fleet.Metrics.
type MetricsAggregate = metrics.Aggregate

// GatewaySpec describes one gateway of a fleet: the subnet it fronts, the
// policy groups it enforces (always plus the document's global rules),
// and its dataplane and audit knobs.
type GatewaySpec struct {
	// Name labels the gateway in metrics and lookups; empty selects
	// "gw<index>". Names must be unique within a fleet.
	Name string
	// Subnet is the IPv4 prefix routed to this gateway (required). The
	// gateway's provisioned device takes the subnet's first host address;
	// pooled virtual devices start at the second.
	Subnet netip.Prefix
	// Groups are the policy groups this gateway's store compiles. Rules
	// outside any group (the global section) always apply. A group absent
	// from the current document contributes nothing until a policy push
	// introduces it.
	Groups []string
	// Flow shapes this gateway's dataplane (zero value = defaults).
	Flow FlowConfig
	// Audit shapes this gateway's audit pipeline (zero value = in-memory
	// tail only).
	Audit AuditConfig
}

// FleetConfig assembles a multi-gateway deployment: one shared network
// and policy control plane, N gateways each fronting a subnet and
// enforcing a shard of the policy.
type FleetConfig struct {
	// Policy is the fleet's grouped policy document (global rules plus
	// //@group sections). Required; it seeds the fleet's policy hub, and
	// PushPolicy replaces it fleet-wide in one watch round.
	Policy string
	// Gateways describes the fleet members (at least one).
	Gateways []GatewaySpec
	// Poll is each store's fallback poll interval for when its watch path
	// is down (0 disables the fallback poller).
	Poll time.Duration
	// WatchTimeout bounds one long-poll park per store (0 = 30s default).
	WatchTimeout time.Duration
	// MaxStale is each store's staleness deadline on the shared virtual
	// clock (0 disables it); FailMode is the posture past the deadline.
	MaxStale time.Duration
	FailMode FailMode
	// DefaultVerdict applies when no rule is decisive (zero = allow).
	DefaultVerdict Verdict
	// AllowUntagged admits packets without a BorderPatrol tag.
	AllowUntagged bool
	// Faults arms the shared network with a wire-fault plan.
	Faults *FaultPlan
	// HardenedKernel enables set-once IP_OPTIONS on every device.
	HardenedKernel *bool
}

// Fleet is a multi-gateway BorderPatrol deployment. Every gateway is a
// full Deployment — device, signature database, enforcer, sanitizer,
// audit pipeline, policy store — sharing one virtual-time network that
// routes each packet to its source subnet's gateway. Policy flows from a
// single hub: each gateway's store long-polls the hub and compiles only
// its groups' rules, so one PushPolicy reaches every gateway in one watch
// round and no gateway ever holds another group's rules.
type Fleet struct {
	network     *netsim.Network
	hub         *policystore.Hub
	deployments []*Deployment
	groups      [][]string // per deployment, the spec's policy groups
	byName      map[string]*Deployment
	agg         *metrics.Aggregate
}

// NewFleet stands up the fleet: validates the grouped policy, builds one
// deployment per gateway spec on a shared network, installs the subnet
// routes, wires every store to the policy hub, and starts the watchers.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if len(cfg.Gateways) == 0 {
		return nil, errors.New("borderpatrol: fleet needs at least one gateway")
	}
	if _, err := policy.ParseGroupSet(cfg.Policy); err != nil {
		return nil, fmt.Errorf("borderpatrol: fleet policy: %w", err)
	}

	network := netsim.NewNetwork(netsim.ModeTAP, netsim.DefaultLatencyModel())
	if cfg.Faults != nil {
		network.InstallFaults(*cfg.Faults)
	}
	hub := policystore.NewHub(cfg.Policy)

	f := &Fleet{
		network: network,
		hub:     hub,
		byName:  make(map[string]*Deployment, len(cfg.Gateways)),
		agg:     metrics.NewAggregate("gateway"),
	}
	closeBuilt := func() {
		for _, d := range f.deployments {
			d.Close()
		}
	}
	for i, spec := range cfg.Gateways {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("gw%d", i)
		}
		if _, dup := f.byName[name]; dup {
			closeBuilt()
			return nil, fmt.Errorf("borderpatrol: duplicate gateway name %q", name)
		}
		if !spec.Subnet.IsValid() || !spec.Subnet.Addr().Is4() {
			closeBuilt()
			return nil, fmt.Errorf("borderpatrol: gateway %q needs an IPv4 subnet, got %v", name, spec.Subnet)
		}
		d, err := build(Config{
			Policy: PolicyConfig{
				Source:         policystore.NewGroupScopedSource(hub.Source(), spec.Groups...),
				Poll:           cfg.Poll,
				WatchTimeout:   cfg.WatchTimeout,
				MaxStale:       cfg.MaxStale,
				FailMode:       cfg.FailMode,
				DefaultVerdict: cfg.DefaultVerdict,
				AllowUntagged:  cfg.AllowUntagged,
			},
			Flow:  spec.Flow,
			Audit: spec.Audit,
			Net: NetConfig{
				DeviceAddr:     spec.Subnet.Masked().Addr().Next(),
				HardenedKernel: cfg.HardenedKernel,
			},
		}, network, name)
		if err != nil {
			closeBuilt()
			return nil, fmt.Errorf("borderpatrol: gateway %q: %w", name, err)
		}
		network.AddGatewayRoute(spec.Subnet, d.gateway)
		f.deployments = append(f.deployments, d)
		f.groups = append(f.groups, spec.Groups)
		f.byName[name] = d
		f.agg.Attach(name, d.metrics)
	}
	// Network-wide series (wire faults) belong to the fleet, not to any
	// one gateway; they join the aggregate under their own label value.
	fleetReg := metrics.NewRegistry()
	network.RegisterMetrics(fleetReg)
	f.agg.Attach("fleet", fleetReg)

	// Stores start only once the whole fleet can no longer fail to build.
	for _, d := range f.deployments {
		d.policy.Start()
	}
	return f, nil
}

// Deployments returns every gateway's deployment handle, in spec order.
func (f *Fleet) Deployments() []*Deployment {
	out := make([]*Deployment, len(f.deployments))
	copy(out, f.deployments)
	return out
}

// Deployment returns the named gateway's handle (nil if unknown).
func (f *Fleet) Deployment(name string) *Deployment { return f.byName[name] }

// Name returns the gateway name a fleet deployment was built under (empty
// for a stand-alone deployment).
func (d *Deployment) Name() string { return d.name }

// Metrics returns the fleet-wide aggregate: every gateway's registry in
// one scrape, series labelled gateway="<name>", plus the shared network's
// counters under gateway="fleet".
func (f *Fleet) Metrics() *MetricsAggregate { return f.agg }

// PolicyRev returns the hub's policy revision (1 is the seed document).
func (f *Fleet) PolicyRev() uint64 { return f.hub.Rev() }

// pushTimeout bounds how long PushPolicy waits for every gateway's watch
// round. Propagation is event-driven (the hub wakes all parked watchers),
// so the bound only trips when a watcher is wedged.
const pushTimeout = 30 * time.Second

// PushPolicy replaces the fleet's policy document. Every gateway's parked
// watcher wakes, re-scopes the document to its groups, and — when its
// shard actually changed — compiles and swaps atomically; unchanged
// shards keep their compiled rules and caches. PushPolicy returns once
// every store has completed that one watch round, verified by watch-round
// counters rather than sleeps. Pushing an identical document is a no-op.
func (f *Fleet) PushPolicy(doc string) error {
	newGS, err := policy.ParseGroupSet(doc)
	if err != nil {
		return fmt.Errorf("borderpatrol: push policy: %w", err)
	}
	oldDoc, _ := f.hub.Get()
	oldGS, err := policy.ParseGroupSet(oldDoc)
	if err != nil { // the hub only ever holds validated documents
		return fmt.Errorf("borderpatrol: push policy: %w", err)
	}
	// Decide, per gateway, whether its shard (the scoped render the store
	// compiles) actually changes: changed shards must report an apply,
	// untouched shards just an unchanged watch round. Waiting on the right
	// counter keeps the return precise — a coincidental idle-timeout round
	// can't satisfy it.
	changed := make([]bool, len(f.deployments))
	applies, rounds := make([]uint64, len(f.deployments)), make([]uint64, len(f.deployments))
	for i, d := range f.deployments {
		changed[i] = oldGS.DocFor(f.groups[i]...) != newGS.DocFor(f.groups[i]...)
		s := d.policy.Stats()
		applies[i], rounds[i] = s.Applied, s.WatchRounds
	}
	rev := f.hub.Rev()
	f.hub.Set(doc)
	if f.hub.Rev() == rev {
		return nil // identical document: nothing to propagate
	}
	deadline := time.Now().Add(pushTimeout)
	for i, d := range f.deployments {
		done := func() bool {
			s := d.policy.Stats()
			if changed[i] {
				return s.Applied > applies[i]
			}
			return s.WatchRounds > rounds[i]
		}
		for !done() {
			if time.Now().After(deadline) {
				return fmt.Errorf("borderpatrol: gateway %q did not complete a watch round within %v", d.name, pushTimeout)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	return nil
}

// SetFleetFaults installs (or replaces) a wire-fault plan on the shared
// network; ClearFleetFaults restores the perfect wire.
func (f *Fleet) SetFleetFaults(plan FaultPlan) { f.network.InstallFaults(plan) }

// ClearFleetFaults removes the fleet's fault plan.
func (f *Fleet) ClearFleetFaults() { f.network.ClearFaults() }

// Close stops every gateway's policy watcher and flushes every audit
// pipeline, reporting the first sticky error from any of them.
func (f *Fleet) Close() error {
	var errs []error
	for _, d := range f.deployments {
		if err := d.Close(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", d.name, err))
		}
	}
	return errors.Join(errs...)
}
