package policystore

import (
	"fmt"
	"strings"
	"time"

	"borderpatrol/internal/policy"
)

// GroupScopedSource narrows a fleet-wide grouped policy document (see
// policy.ParseGroupSet) to one gateway's shard: the global rules plus the
// rules of the groups this gateway serves. The fleet controller publishes
// ONE document; every gateway wraps the same backend in its own
// GroupScopedSource and compiles only its slice, so a 100k-device fleet
// never compiles a monolithic rule set per gateway.
//
// Versioning is content-addressed on the *scoped* render: an edit to
// another group's section leaves this gateway's shard byte-identical, so
// the source reports unchanged and the store skips the recompile and the
// engine-generation bump (cached flow verdicts survive). Only an edit to
// the global section or to one of this gateway's groups produces a new
// version.
//
// Like every Source, an instance belongs to exactly one Store. It
// forwards Watch to the inner backend when that backend supports it.
type GroupScopedSource struct {
	inner  Source
	groups []string

	// lastInner memoizes the inner backend's version so conditional
	// fetches (stat memos, ETags, hub revisions) keep working across the
	// re-scoping: the store's prev token names the scoped version, not the
	// backend's.
	lastInner     string
	scopedDoc     string
	scopedVersion string
}

// NewGroupScopedSource wraps inner, scoping it to the named groups.
func NewGroupScopedSource(inner Source, groups ...string) *GroupScopedSource {
	return &GroupScopedSource{inner: inner, groups: append([]string(nil), groups...)}
}

// Fetch fetches the fleet document (conditionally, via the inner
// backend's own memo) and returns this gateway's shard.
func (s *GroupScopedSource) Fetch(prev string) (Candidate, bool, error) {
	c, unchanged, err := s.inner.Fetch(s.lastInner)
	return s.scope(prev, c, unchanged, err)
}

// Watch forwards a blocking watch to the inner backend and scopes the
// result. A backend revision that does not touch this shard surfaces as
// unchanged. Inner backends without watch support answer like Fetch;
// the Store never takes the watch path for those (see watchCapable).
func (s *GroupScopedSource) Watch(prev string, timeout time.Duration, cancel <-chan struct{}) (Candidate, bool, error) {
	w, ok := s.inner.(Watcher)
	if !ok {
		return s.Fetch(prev)
	}
	c, unchanged, err := w.Watch(s.lastInner, timeout, cancel)
	return s.scope(prev, c, unchanged, err)
}

// watchCapable reports whether the inner backend really supports watch,
// so a Store wrapping a poll-only backend stays on the poll loop.
func (s *GroupScopedSource) watchCapable() bool {
	if p, ok := s.inner.(watchProbe); ok {
		return p.watchCapable()
	}
	_, ok := s.inner.(Watcher)
	return ok
}

// scope turns an inner fetch result into this gateway's shard.
func (s *GroupScopedSource) scope(prev string, c Candidate, unchanged bool, err error) (Candidate, bool, error) {
	if err != nil {
		return Candidate{}, false, err
	}
	if !unchanged {
		gs, perr := policy.ParseGroupSet(c.Doc)
		if perr != nil {
			return Candidate{}, false, fmt.Errorf("policystore: %s: grouped document %s rejected: %w", s.inner, c.Version, perr)
		}
		s.lastInner = c.Version
		s.scopedDoc = gs.DocFor(s.groups...)
		s.scopedVersion = "group:" + contentVersion([]byte(s.scopedDoc))
	}
	if s.scopedVersion == "" {
		// Inner reported unchanged before our first full fetch — only
		// possible with a misbehaving backend; force a refetch next cycle.
		return Candidate{}, false, fmt.Errorf("policystore: %s: unchanged before first fetch", s.inner)
	}
	if prev != "" && prev == s.scopedVersion {
		return Candidate{}, true, nil
	}
	return Candidate{Doc: s.scopedDoc, Version: s.scopedVersion}, false, nil
}

// String describes the backend and its scope.
func (s *GroupScopedSource) String() string {
	return fmt.Sprintf("%s[groups:%s]", s.inner, strings.Join(s.groups, ","))
}
