package policystore

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const docA = `{[deny][library]["com/flurry"]}` + "\n"
const docB = `{[deny][library]["com/google/gms"]}` + "\n" + `{[deny][library]["com/flurry"]}` + "\n"

func TestStaticSource(t *testing.T) {
	src := NewStaticSource(docA)
	c, unchanged, err := src.Fetch("")
	if err != nil || unchanged {
		t.Fatalf("first fetch: unchanged=%v err=%v", unchanged, err)
	}
	if c.Doc != docA || c.Version == "" {
		t.Fatalf("candidate = %+v", c)
	}
	if _, unchanged, err = src.Fetch(c.Version); err != nil || !unchanged {
		t.Fatalf("second fetch: unchanged=%v err=%v", unchanged, err)
	}
}

func TestFileSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.bp")
	src := NewFileSource(path)

	if _, _, err := src.Fetch(""); err == nil {
		t.Fatal("missing file fetch succeeded")
	}

	writeFile(t, path, docA)
	c, unchanged, err := src.Fetch("")
	if err != nil || unchanged || c.Doc != docA {
		t.Fatalf("first fetch: %+v unchanged=%v err=%v", c, unchanged, err)
	}

	// Untouched file: the stat memo answers without reading.
	if _, unchanged, err = src.Fetch(c.Version); err != nil || !unchanged {
		t.Fatalf("untouched fetch: unchanged=%v err=%v", unchanged, err)
	}

	// Rewritten with identical content (new mtime): the hash suppresses a
	// no-op apply.
	bumpMtime(t, path)
	writeFile(t, path, docA)
	if _, unchanged, err = src.Fetch(c.Version); err != nil || !unchanged {
		t.Fatalf("identical rewrite: unchanged=%v err=%v", unchanged, err)
	}

	// Real change: a new candidate with a new version.
	bumpMtime(t, path)
	writeFile(t, path, docB)
	c2, unchanged, err := src.Fetch(c.Version)
	if err != nil || unchanged {
		t.Fatalf("changed fetch: unchanged=%v err=%v", unchanged, err)
	}
	if c2.Doc != docB || c2.Version == c.Version {
		t.Fatalf("candidate after change = %+v (prev version %s)", c2, c.Version)
	}
}

// TestFileSourceRacilyCleanEdit pins the stat-memo safety window: a
// same-size edit whose mtime is byte-identical to the previously observed
// stat (possible on coarse-granularity filesystems) must still be picked
// up, because a freshly modified file is re-hashed rather than trusted.
func TestFileSourceRacilyCleanEdit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.bp")
	src := NewFileSource(path)

	docX := `{[deny][library]["com/aaaa"]}` + "\n"
	docY := `{[deny][library]["com/bbbb"]}` + "\n" // same length as docX
	stamp := time.Now().Truncate(time.Second)

	writeFile(t, path, docX)
	if err := os.Chtimes(path, stamp, stamp); err != nil {
		t.Fatal(err)
	}
	c, unchanged, err := src.Fetch("")
	if err != nil || unchanged || c.Doc != docX {
		t.Fatalf("first fetch: %+v unchanged=%v err=%v", c, unchanged, err)
	}

	// The hostile case: same size, same mtime, different bytes.
	writeFile(t, path, docY)
	if err := os.Chtimes(path, stamp, stamp); err != nil {
		t.Fatal(err)
	}
	c2, unchanged, err := src.Fetch(c.Version)
	if err != nil || unchanged {
		t.Fatalf("racily-clean edit missed: unchanged=%v err=%v", unchanged, err)
	}
	if c2.Doc != docY || c2.Version == c.Version {
		t.Fatalf("candidate after racily-clean edit = %+v", c2)
	}
}

// TestFileSourceRejectsOversizedWithoutReading: a document over the size
// bound is refused from the Stat alone.
func TestFileSourceRejectsOversized(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.bp")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// A sparse file well over the bound, without writing 16 MB.
	if err := f.Truncate(maxPolicyBytes + 1); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := NewFileSource(path).Fetch(""); err == nil {
		t.Fatal("oversized document accepted")
	}
}

// bumpMtime guarantees the next write lands with a distinct mtime even on
// coarse-granularity filesystems.
func bumpMtime(t *testing.T, path string) {
	t.Helper()
	future := time.Now().Add(10 * time.Millisecond)
	for time.Now().Before(future) {
		time.Sleep(time.Millisecond)
	}
	_ = path
}

func writeFile(t *testing.T, path, doc string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPSourceETag(t *testing.T) {
	var gets, conditional int
	doc := docA
	etag := `"v1"`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets++
		if r.Header.Get("If-None-Match") == etag {
			conditional++
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("ETag", etag)
		w.Write([]byte(doc))
	}))
	defer srv.Close()

	src := NewHTTPSource(srv.URL, srv.Client())
	c, unchanged, err := src.Fetch("")
	if err != nil || unchanged || c.Doc != docA {
		t.Fatalf("first fetch: %+v unchanged=%v err=%v", c, unchanged, err)
	}
	if !strings.HasPrefix(c.Version, "etag:") {
		t.Fatalf("version = %q, want etag-derived", c.Version)
	}

	// Applied candidate → conditional GET → 304 → unchanged.
	if _, unchanged, err = src.Fetch(c.Version); err != nil || !unchanged {
		t.Fatalf("conditional fetch: unchanged=%v err=%v", unchanged, err)
	}
	if conditional != 1 {
		t.Fatalf("conditional requests = %d, want 1", conditional)
	}

	// Server rotates the document and its ETag.
	doc, etag = docB, `"v2"`
	c2, unchanged, err := src.Fetch(c.Version)
	if err != nil || unchanged || c2.Doc != docB {
		t.Fatalf("rotated fetch: %+v unchanged=%v err=%v", c2, unchanged, err)
	}
	if c2.Version == c.Version {
		t.Fatal("version did not rotate with the ETag")
	}
	if gets < 3 {
		t.Fatalf("gets = %d, want >= 3", gets)
	}
}

func TestHTTPSourceNoETagFallsBackToContentHash(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(docA))
	}))
	defer srv.Close()

	src := NewHTTPSource(srv.URL, srv.Client())
	c, unchanged, err := src.Fetch("")
	if err != nil || unchanged {
		t.Fatalf("first fetch: unchanged=%v err=%v", unchanged, err)
	}
	if !strings.HasPrefix(c.Version, "sha256:") {
		t.Fatalf("version = %q, want content hash", c.Version)
	}
	// Same content, no validator: the hash still reports unchanged.
	if _, unchanged, err = src.Fetch(c.Version); err != nil || !unchanged {
		t.Fatalf("repeat fetch: unchanged=%v err=%v", unchanged, err)
	}
}

func TestHTTPSourceErrorStatuses(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	src := NewHTTPSource(srv.URL, srv.Client())
	if _, _, err := src.Fetch(""); err == nil {
		t.Fatal("500 fetch succeeded")
	}

	srv.Close()
	if _, _, err := src.Fetch(""); err == nil {
		t.Fatal("fetch against a dead server succeeded")
	}
}
