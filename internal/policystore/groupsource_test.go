package policystore

import (
	"strings"
	"testing"

	"borderpatrol/internal/policy"
)

const fleetDocV1 = `
{[deny][library]["com/global/threat"]}
//@group alpha
{[deny][library]["com/tracker/alpha"]}
//@group beta
{[deny][library]["com/tracker/beta"]}
`

// assertNoForeignRules fails if the engine compiled any rule belonging to
// another group's shard.
func assertNoForeignRules(t *testing.T, eng *policy.Engine, foreign string) {
	t.Helper()
	for _, r := range eng.Rules() {
		if strings.Contains(r.Target, foreign) {
			t.Fatalf("engine leaked foreign group rule %v", r)
		}
	}
}

func TestGroupScopedSourceScopes(t *testing.T) {
	eng := newEngine(t)
	st, err := New(Config{
		Source: NewGroupScopedSource(NewStaticSource(fleetDocV1), "alpha"),
		Engine: eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(); err != nil {
		t.Fatal(err)
	}
	rules := eng.Rules()
	if len(rules) != 2 {
		t.Fatalf("alpha shard compiled %d rules, want 2 (global + alpha)", len(rules))
	}
	assertNoForeignRules(t, eng, "beta")
	if s := st.Stats(); !strings.Contains(s.Source, "[groups:alpha]") {
		t.Fatalf("source description = %q", s.Source)
	}
	if v := st.Version(); !strings.HasPrefix(v, "group:") {
		t.Fatalf("scoped version = %q", v)
	}
}

// TestGroupScopedSourceNoLeakAfterHotSwap is the satellite's first
// coverage requirement: across a sequence of hot swaps — including swaps
// that only touch another group — the scoped store must never compile
// another group's rules, and must not even recompile (bump the engine
// generation) for revisions outside its shard.
func TestGroupScopedSourceNoLeakAfterHotSwap(t *testing.T) {
	h := NewHub(fleetDocV1)
	eng := newEngine(t)
	st, err := New(Config{
		Source: NewGroupScopedSource(h.Source(), "alpha"),
		Engine: eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(); err != nil {
		t.Fatal(err)
	}
	gen := eng.Generation()

	// Swap 1: revise beta's shard only. The hub revisions, but alpha's
	// scoped render is byte-identical — unchanged, no recompile.
	h.Set(strings.Replace(fleetDocV1, "com/tracker/beta", "com/tracker/beta/v2", 1))
	applied, err := st.Reload()
	if err != nil || applied {
		t.Fatalf("beta-only swap: applied=%v err=%v", applied, err)
	}
	if eng.Generation() != gen {
		t.Fatalf("beta-only swap bumped generation %d → %d", gen, eng.Generation())
	}
	if s := st.Stats(); s.Unchanged != 1 {
		t.Fatalf("stats after beta-only swap = %+v", s)
	}
	assertNoForeignRules(t, eng, "beta")

	// Swap 2: revise alpha's shard. Applied, exactly one generation bump,
	// new rule visible, still nothing foreign.
	doc2 := strings.Replace(fleetDocV1, "com/tracker/alpha", "com/tracker/alpha/v2", 1)
	h.Set(doc2)
	applied, err = st.Reload()
	if err != nil || !applied {
		t.Fatalf("alpha swap: applied=%v err=%v", applied, err)
	}
	if eng.Generation() != gen+1 {
		t.Fatalf("alpha swap: generation = %d, want %d", eng.Generation(), gen+1)
	}
	var sawNew bool
	for _, r := range eng.Rules() {
		sawNew = sawNew || r.Target == "com/tracker/alpha/v2"
	}
	if !sawNew {
		t.Fatal("revised alpha rule not compiled")
	}
	assertNoForeignRules(t, eng, "beta")

	// Swap 3: revise the global section — part of every shard, applied.
	h.Set(strings.Replace(doc2, "com/global/threat", "com/global/threat/v2", 1))
	applied, err = st.Reload()
	if err != nil || !applied {
		t.Fatalf("global swap: applied=%v err=%v", applied, err)
	}
	assertNoForeignRules(t, eng, "beta")

	// Swap 4: a new group appears; still not alpha's problem.
	h.Set(fleetDocV1 + "//@group gamma\n{[deny][library][\"com/tracker/gamma\"]}\n")
	if _, err := st.Reload(); err != nil {
		t.Fatal(err)
	}
	assertNoForeignRules(t, eng, "beta")
	assertNoForeignRules(t, eng, "gamma")
}

func TestGroupScopedSourceRejectsBadGroupedDoc(t *testing.T) {
	h := NewHub(fleetDocV1)
	eng := newEngine(t)
	st, err := New(Config{
		Source: NewGroupScopedSource(h.Source(), "alpha"),
		Engine: eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(); err != nil {
		t.Fatal(err)
	}
	gen := eng.Generation()
	// A typo'd directive must be rejected — it would otherwise silently
	// widen or narrow a shard — and last-good keeps serving.
	h.Set("//@groups oops\n" + fleetDocV1)
	if _, err := st.Reload(); err == nil {
		t.Fatal("malformed grouped document accepted")
	}
	if eng.Generation() != gen {
		t.Fatal("rejected document changed the engine")
	}
	if s := st.Stats(); s.Failures != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGroupScopedSourceMultipleGroups(t *testing.T) {
	eng := newEngine(t)
	st, err := New(Config{
		Source: NewGroupScopedSource(NewStaticSource(fleetDocV1), "alpha", "beta"),
		Engine: eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(); err != nil {
		t.Fatal(err)
	}
	if rules := eng.Rules(); len(rules) != 3 {
		t.Fatalf("alpha+beta shard = %d rules, want 3", len(rules))
	}
}
