// Package policystore feeds BorderPatrol's compiled policy engine from
// pluggable backends, realizing the paper's central-reconfiguration design
// goal (§IV): administrators update policies at the gateway — a file an
// operator edits, an HTTP endpoint a fleet controller serves, or a static
// inline document — and the running deployment picks the change up without
// restarting or stalling traffic.
//
// A Source produces candidate policy documents with a version token; the
// Store polls its Source, parses and compiles each changed candidate off
// the enforcement hot path, and publishes it with policy.Engine.SetRules —
// an atomic pointer swap whose generation bump self-invalidates every
// cached flow verdict (see internal/flowtable). Packets therefore never
// observe a torn rule set: each evaluation sees exactly one compiled
// snapshot, either wholly-old or wholly-new.
//
// # Last-good semantics
//
// A candidate that fails to fetch, parse, or compile is rejected in its
// entirety: the engine keeps serving the last successfully applied rule
// set, the failure is counted, and the error is exposed through Stats.
// A broken push can therefore never take enforcement down — the paper's
// fail-safe posture for the enforcement point.
package policystore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"borderpatrol/internal/policy"
)

// Candidate is one policy document fetched from a backend.
type Candidate struct {
	// Doc is the policy document text (the paper's §IV-B grammar).
	Doc string
	// Version identifies the revision: a content hash for file and static
	// backends, the ETag for HTTP. The Store only applies a candidate whose
	// Version differs from the active one, and only advances the active
	// version after a successful apply.
	Version string
}

// Source supplies candidate policy documents to a Store. Implementations
// may keep per-backend state for conditional fetches (stat memos, ETags);
// a Source instance belongs to exactly one Store, which serializes Fetch
// calls — implementations need not be safe for concurrent use.
type Source interface {
	// Fetch returns the current candidate. prev is the Version of the last
	// successfully applied candidate ("" before the first apply); backends
	// use it for conditional fetches and report unchanged=true (with a zero
	// Candidate) when the document cannot have changed.
	Fetch(prev string) (c Candidate, unchanged bool, err error)
	// String describes the backend for logs and stats ("static",
	// "file:/etc/bp/policy.bp", an URL).
	String() string
}

// contentVersion derives a version token from document bytes.
func contentVersion(b []byte) string {
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:8])
}

// Config assembles a Store.
type Config struct {
	// Source supplies candidate documents. Required.
	Source Source
	// Engine receives each compiled rule set via SetRules. Required.
	Engine *policy.Engine
	// Poll is the background reload interval; <= 0 disables the poller
	// (Reload can still be called manually).
	Poll time.Duration
	// MaxBackoff caps the poller's exponential error backoff (default 1m,
	// never below Poll).
	MaxBackoff time.Duration
	// OnApply, when set, observes every applied rule set (logging hook).
	// Called from the reloading goroutine; must not call back into the
	// Store.
	OnApply func(version string, rules []policy.Rule)
}

// Stats snapshots a Store's counters.
type Stats struct {
	// Polls counts reload cycles, manual and background.
	Polls uint64
	// Applied counts successfully applied rule sets, including the initial
	// Load. Each applied set bumps the engine generation exactly once.
	Applied uint64
	// Unchanged counts cycles where the backend reported no change.
	Unchanged uint64
	// Failures counts cycles rejected by a fetch, parse, or compile error;
	// each one left the last-good rules serving.
	Failures uint64
	// Version is the active (last-good) policy revision ("" before the
	// first successful load).
	Version string
	// Rules is the active rule count.
	Rules int
	// LastError describes the most recent failure ("" after a clean cycle).
	LastError string
	// Source describes the backend.
	Source string
}

// Store keeps a policy engine hot from a Source: validation and
// compilation happen on the store's goroutine (or the Reload caller's),
// never on the enforcement path, and the swap itself is the engine's
// atomic pointer exchange.
type Store struct {
	cfg Config

	// reloadMu serializes reload cycles (manual Reload vs the poller), so
	// two concurrent fetches can never apply out of order.
	reloadMu sync.Mutex

	mu        sync.Mutex // guards version, ruleCount, lastErr
	version   string
	ruleCount int
	lastErr   string

	polls     atomic.Uint64
	applied   atomic.Uint64
	unchanged atomic.Uint64
	failures  atomic.Uint64

	stop    chan struct{}
	done    chan struct{}
	started atomic.Bool
	startOne,
	stopOne sync.Once
}

// New builds a Store. No fetch happens yet: call Load for a synchronous
// initial load (recommended — a deployment should fail fast on a broken
// initial policy), then Start for background hot reload.
func New(cfg Config) (*Store, error) {
	if cfg.Source == nil {
		return nil, errors.New("policystore: Config.Source is required")
	}
	if cfg.Engine == nil {
		return nil, errors.New("policystore: Config.Engine is required")
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Minute
	}
	if cfg.MaxBackoff < cfg.Poll {
		cfg.MaxBackoff = cfg.Poll
	}
	return &Store{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Load performs the initial synchronous fetch+compile+swap. Unlike later
// cycles there is no last-good rule set to fall back to, so the caller
// decides whether a failure is fatal (deployments treat it so).
func (s *Store) Load() error {
	_, err := s.Reload()
	return err
}

// Reload runs one reload cycle: fetch, and — if the document changed —
// parse, compile, and atomically swap. Returns whether a new rule set was
// applied. On error the last-good rules keep serving and the failure is
// counted. Safe to call concurrently with the poller and with traffic.
func (s *Store) Reload() (applied bool, err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	s.polls.Add(1)
	s.mu.Lock()
	prev := s.version
	s.mu.Unlock()

	c, unchanged, err := s.cfg.Source.Fetch(prev)
	if err != nil {
		s.fail(err)
		return false, err
	}
	if unchanged {
		s.unchanged.Add(1)
		return false, nil
	}
	rules, err := policy.ParsePolicyString(c.Doc)
	if err != nil {
		err = fmt.Errorf("policystore: %s: candidate %s rejected: %w", s.cfg.Source, c.Version, err)
		s.fail(err)
		return false, err
	}
	// SetRules compiles the candidate before publishing anything, so a
	// compile failure also leaves the last-good compiled set serving.
	if err := s.cfg.Engine.SetRules(rules); err != nil {
		err = fmt.Errorf("policystore: %s: candidate %s rejected: %w", s.cfg.Source, c.Version, err)
		s.fail(err)
		return false, err
	}
	s.mu.Lock()
	s.version = c.Version
	s.ruleCount = len(rules)
	s.lastErr = ""
	s.mu.Unlock()
	s.applied.Add(1)
	if s.cfg.OnApply != nil {
		s.cfg.OnApply(c.Version, rules)
	}
	return true, nil
}

// fail records a rejected cycle.
func (s *Store) fail(err error) {
	s.failures.Add(1)
	s.mu.Lock()
	s.lastErr = err.Error()
	s.mu.Unlock()
}

// Start launches the background poller (a no-op when Config.Poll <= 0).
// Errors back off exponentially up to MaxBackoff and reset on the next
// clean cycle.
func (s *Store) Start() {
	if s.cfg.Poll <= 0 {
		return
	}
	s.startOne.Do(func() {
		s.started.Store(true)
		go s.pollLoop()
	})
}

func (s *Store) pollLoop() {
	defer close(s.done)
	interval := s.cfg.Poll
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C:
		}
		if _, err := s.Reload(); err != nil {
			interval = min(interval*2, s.cfg.MaxBackoff)
		} else {
			interval = s.cfg.Poll
		}
		timer.Reset(interval)
	}
}

// Close stops the poller and waits for it to exit. Idempotent; the engine
// keeps serving the last applied rules.
func (s *Store) Close() {
	s.stopOne.Do(func() { close(s.stop) })
	if s.started.Load() {
		<-s.done
	}
}

// Version returns the active policy revision ("" before the first load).
func (s *Store) Version() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	version, ruleCount, lastErr := s.version, s.ruleCount, s.lastErr
	s.mu.Unlock()
	return Stats{
		Polls:     s.polls.Load(),
		Applied:   s.applied.Load(),
		Unchanged: s.unchanged.Load(),
		Failures:  s.failures.Load(),
		Version:   version,
		Rules:     ruleCount,
		LastError: lastErr,
		Source:    s.cfg.Source.String(),
	}
}
