// Package policystore feeds BorderPatrol's compiled policy engine from
// pluggable backends, realizing the paper's central-reconfiguration design
// goal (§IV): administrators update policies at the gateway — a file an
// operator edits, an HTTP endpoint a fleet controller serves, or a static
// inline document — and the running deployment picks the change up without
// restarting or stalling traffic.
//
// A Source produces candidate policy documents with a version token; the
// Store polls its Source, parses and compiles each changed candidate off
// the enforcement hot path, and publishes it with policy.Engine.SetRules —
// an atomic pointer swap whose generation bump self-invalidates every
// cached flow verdict (see internal/flowtable). Packets therefore never
// observe a torn rule set: each evaluation sees exactly one compiled
// snapshot, either wholly-old or wholly-new.
//
// # Last-good semantics
//
// A candidate that fails to fetch, parse, or compile is rejected in its
// entirety: the engine keeps serving the last successfully applied rule
// set, the failure is counted, and the error is exposed through Stats.
// A broken push can therefore never take enforcement down — the paper's
// fail-safe posture for the enforcement point.
package policystore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"borderpatrol/internal/metrics"
	"borderpatrol/internal/policy"
)

// FailMode selects what the store does when the policy backend has been
// unreachable (or serving rejects) for longer than Config.MaxStale: the
// graceful-degradation half of the paper's fail-safe posture. The choice is
// deliberate and deployment-specific — an enforcement point fronting
// hostile BYOD traffic wants FailClosed (deny must survive a starved
// control plane), while an availability-first deployment may prefer
// FailOpen or the historical FailStatic.
type FailMode int

// Fail modes.
const (
	// FailStatic keeps serving the last-good rule set indefinitely — the
	// pre-staleness behaviour, and the default.
	FailStatic FailMode = iota
	// FailOpen allows all evaluated traffic once the last-good policy is
	// older than MaxStale. Structural drops (untagged packets, unknown
	// apps, malformed tags) still apply — only the rule verdict degrades.
	FailOpen
	// FailClosed denies every evaluated packet once the last-good policy
	// is older than MaxStale: no fault or outage sequence can convert a
	// would-be deny into a delivery.
	FailClosed
)

// String names the mode.
func (m FailMode) String() string {
	switch m {
	case FailStatic:
		return "static"
	case FailOpen:
		return "fail-open"
	case FailClosed:
		return "fail-closed"
	default:
		return fmt.Sprintf("failmode(%d)", int(m))
	}
}

// ParseFailMode parses a -fail-mode flag value.
func ParseFailMode(s string) (FailMode, error) {
	switch s {
	case "", "static":
		return FailStatic, nil
	case "open", "fail-open":
		return FailOpen, nil
	case "closed", "fail-closed":
		return FailClosed, nil
	}
	return 0, fmt.Errorf("policystore: unknown fail mode %q (want static|open|closed)", s)
}

// Candidate is one policy document fetched from a backend.
type Candidate struct {
	// Doc is the policy document text (the paper's §IV-B grammar).
	Doc string
	// Version identifies the revision: a content hash for file and static
	// backends, the ETag for HTTP. The Store only applies a candidate whose
	// Version differs from the active one, and only advances the active
	// version after a successful apply.
	Version string
}

// Source supplies candidate policy documents to a Store. Implementations
// may keep per-backend state for conditional fetches (stat memos, ETags);
// a Source instance belongs to exactly one Store, which serializes Fetch
// calls — implementations need not be safe for concurrent use.
type Source interface {
	// Fetch returns the current candidate. prev is the Version of the last
	// successfully applied candidate ("" before the first apply); backends
	// use it for conditional fetches and report unchanged=true (with a zero
	// Candidate) when the document cannot have changed.
	Fetch(prev string) (c Candidate, unchanged bool, err error)
	// String describes the backend for logs and stats ("static",
	// "file:/etc/bp/policy.bp", an URL).
	String() string
}

// contentVersion derives a version token from document bytes.
func contentVersion(b []byte) string {
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:8])
}

// Config assembles a Store.
type Config struct {
	// Source supplies candidate documents. Required.
	Source Source
	// Engine receives each compiled rule set via SetRules. Required.
	Engine *policy.Engine
	// Poll is the background reload interval; <= 0 disables the poller
	// (Reload can still be called manually). For watch-capable Sources it
	// is the fallback polling interval used while the watch path is
	// broken.
	Poll time.Duration
	// WatchTimeout bounds each blocking watch round for Sources that
	// implement Watcher (default 30s). A round that times out counts as a
	// healthy unchanged cycle — an idle fleet holds its staleness deadline
	// open on watch timeouts alone.
	WatchTimeout time.Duration
	// MaxBackoff caps the poller's exponential error backoff (default 1m,
	// never below Poll).
	MaxBackoff time.Duration
	// OnApply, when set, observes every applied rule set (logging hook).
	// Called from the reloading goroutine; must not call back into the
	// Store.
	OnApply func(version string, rules []policy.Rule)
	// MaxStale is the staleness deadline: when the last successful cycle
	// (applied or unchanged) is older than this, the store degrades the
	// engine per FailMode. Zero disables staleness tracking's degradation
	// (LastGoodAge is still reported).
	MaxStale time.Duration
	// FailMode selects the degraded posture past MaxStale (default
	// FailStatic: keep serving last-good forever).
	FailMode FailMode
	// Now supplies the staleness time source. Nil uses wall time since the
	// store was built; virtual-time harnesses (the soak experiment) wire
	// the simulation clock so hours of outage cost microseconds.
	Now func() time.Duration
}

// Stats snapshots a Store's counters.
type Stats struct {
	// Polls counts reload cycles, manual and background.
	Polls uint64
	// Applied counts successfully applied rule sets, including the initial
	// Load. Each applied set bumps the engine generation exactly once.
	Applied uint64
	// Unchanged counts cycles where the backend reported no change.
	Unchanged uint64
	// Failures counts cycles rejected by a fetch, parse, or compile error;
	// each one left the last-good rules serving.
	Failures uint64
	// Version is the active (last-good) policy revision ("" before the
	// first successful load).
	Version string
	// Rules is the active rule count.
	Rules int
	// LastError describes the most recent failure ("" after a clean cycle).
	LastError string
	// Source describes the backend.
	Source string
	// LastGoodAge is how long ago the last successful cycle (applied or
	// unchanged) completed — the fleet-health signal a scraper watches to
	// spot pollers starving before they degrade.
	LastGoodAge time.Duration
	// Watching reports whether the store runs the blocking watch loop
	// (its Source implements Watcher and Start has been called).
	// WatchRounds counts completed watch rounds (applies, changes for
	// other shards, and timeouts alike); WatchFallbacks counts watch
	// errors that dropped the store back to plain polling for a round.
	Watching       bool
	WatchRounds    uint64
	WatchFallbacks uint64
	// Degraded reports whether the store has tripped its staleness
	// deadline and put the engine in FailMode; DegradedEnters counts how
	// many times it has done so over the store's lifetime.
	Degraded       bool
	DegradedEnters uint64
	// FailMode names the configured degraded posture.
	FailMode string
}

// Store keeps a policy engine hot from a Source: validation and
// compilation happen on the store's goroutine (or the Reload caller's),
// never on the enforcement path, and the swap itself is the engine's
// atomic pointer exchange.
type Store struct {
	cfg Config

	// reloadMu serializes reload cycles (manual Reload vs the poller), so
	// two concurrent fetches can never apply out of order.
	reloadMu sync.Mutex

	mu         sync.Mutex // guards version, ruleCount, lastErr, lastGoodAt, degraded
	version    string
	ruleCount  int
	lastErr    string
	lastGoodAt time.Duration
	degraded   bool

	start time.Time // epoch for the default Now

	polls          atomic.Uint64
	applied        atomic.Uint64
	unchanged      atomic.Uint64
	failures       atomic.Uint64
	degradedEnters atomic.Uint64
	watchRounds    atomic.Uint64
	watchFallbacks atomic.Uint64
	watching       atomic.Bool

	// swapLatency times successful applies end to end: fetch through the
	// engine's atomic swap. All on the reload goroutine, never on traffic.
	swapLatency *metrics.Histogram

	stop    chan struct{}
	done    chan struct{}
	started atomic.Bool
	startOne,
	stopOne sync.Once
}

// New builds a Store. No fetch happens yet: call Load for a synchronous
// initial load (recommended — a deployment should fail fast on a broken
// initial policy), then Start for background hot reload.
func New(cfg Config) (*Store, error) {
	if cfg.Source == nil {
		return nil, errors.New("policystore: Config.Source is required")
	}
	if cfg.Engine == nil {
		return nil, errors.New("policystore: Config.Engine is required")
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Minute
	}
	if cfg.MaxBackoff < cfg.Poll {
		cfg.MaxBackoff = cfg.Poll
	}
	return &Store{
		cfg:         cfg,
		start:       time.Now(),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		swapLatency: metrics.NewHistogram(),
	}, nil
}

// now reads the staleness time source.
func (s *Store) now() time.Duration {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return time.Since(s.start)
}

// Load performs the initial synchronous fetch+compile+swap. Unlike later
// cycles there is no last-good rule set to fall back to, so the caller
// decides whether a failure is fatal (deployments treat it so).
func (s *Store) Load() error {
	_, err := s.Reload()
	return err
}

// Reload runs one reload cycle: fetch, and — if the document changed —
// parse, compile, and atomically swap. Returns whether a new rule set was
// applied. On error the last-good rules keep serving and the failure is
// counted. Safe to call concurrently with the poller and with traffic.
func (s *Store) Reload() (applied bool, err error) {
	return s.reloadWith(s.cfg.Source.Fetch, false)
}

// reloadWith is Reload with a pluggable fetch step: the poll loop passes
// Source.Fetch, the watch loop passes a blocking Watcher.Watch round
// (parked=true, so the hold time spent waiting for a change is excluded
// from the swap-latency histogram). Everything downstream of the fetch —
// parse, compile, swap, accounting, staleness — is identical on both
// paths.
func (s *Store) reloadWith(fetch func(prev string) (Candidate, bool, error), parked bool) (applied bool, err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	s.polls.Add(1)
	cycleStart := time.Now()
	s.mu.Lock()
	prev := s.version
	s.mu.Unlock()

	c, unchanged, err := fetch(prev)
	if parked {
		cycleStart = time.Now()
	}
	if err != nil {
		s.fail(err)
		s.CheckStale()
		return false, err
	}
	if unchanged {
		s.unchanged.Add(1)
		s.markGood()
		return false, nil
	}
	rules, err := policy.ParsePolicyString(c.Doc)
	if err != nil {
		err = fmt.Errorf("policystore: %s: candidate %s rejected: %w", s.cfg.Source, c.Version, err)
		s.fail(err)
		s.CheckStale()
		return false, err
	}
	// SetRules compiles the candidate before publishing anything, so a
	// compile failure also leaves the last-good compiled set serving.
	if err := s.cfg.Engine.SetRules(rules); err != nil {
		err = fmt.Errorf("policystore: %s: candidate %s rejected: %w", s.cfg.Source, c.Version, err)
		s.fail(err)
		s.CheckStale()
		return false, err
	}
	s.mu.Lock()
	s.version = c.Version
	s.ruleCount = len(rules)
	s.lastErr = ""
	s.mu.Unlock()
	s.applied.Add(1)
	s.swapLatency.Record(time.Since(cycleStart).Nanoseconds())
	s.markGood()
	if s.cfg.OnApply != nil {
		s.cfg.OnApply(c.Version, rules)
	}
	return true, nil
}

// fail records a rejected cycle.
func (s *Store) fail(err error) {
	s.failures.Add(1)
	s.mu.Lock()
	s.lastErr = err.Error()
	s.mu.Unlock()
}

// markGood records a successful cycle (applied or unchanged) and lifts any
// staleness degradation, since the backend just answered.
func (s *Store) markGood() {
	s.mu.Lock()
	s.lastGoodAt = s.now()
	s.mu.Unlock()
	s.CheckStale()
}

// CheckStale compares the last-good age against MaxStale and transitions
// the engine in or out of degraded mode per FailMode, reporting whether the
// store is currently degraded. Reload calls it after every cycle; harnesses
// with a virtual clock (or deployments that want staleness enforced even
// when the poller is wedged) may also call it directly — it is cheap and
// idempotent.
func (s *Store) CheckStale() bool {
	if s.cfg.MaxStale <= 0 || s.cfg.FailMode == FailStatic {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	stale := s.now()-s.lastGoodAt > s.cfg.MaxStale
	switch {
	case stale && !s.degraded:
		s.degraded = true
		s.degradedEnters.Add(1)
		v := policy.VerdictDrop
		if s.cfg.FailMode == FailOpen {
			v = policy.VerdictAllow
		}
		// SetDegraded only validates the verdict, which is correct by
		// construction here.
		_ = s.cfg.Engine.SetDegraded(v, fmt.Sprintf(
			"%s: policy stale beyond %v (backend %s)", s.cfg.FailMode, s.cfg.MaxStale, s.cfg.Source))
	case !stale && s.degraded:
		s.degraded = false
		s.cfg.Engine.ClearDegraded()
	}
	return s.degraded
}

// LastGoodAge reports how long ago the last successful cycle completed.
// Before any successful cycle it is the store's age.
func (s *Store) LastGoodAge() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now() - s.lastGoodAt
}

// Degraded reports whether the staleness deadline has tripped.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Start launches the background reloader (a no-op when Config.Poll <= 0).
// Watch-capable Sources get the blocking watch loop — a fleet-wide change
// wakes the store immediately, and idle rounds cost one held connection
// per WatchTimeout instead of a poll per Poll. Everything else gets the
// jittered poller. Poll errors back off exponentially up to MaxBackoff
// and reset on the next clean cycle.
func (s *Store) Start() {
	if s.cfg.Poll <= 0 {
		return
	}
	s.startOne.Do(func() {
		s.started.Store(true)
		if w, ok := watchable(s.cfg.Source); ok {
			s.watching.Store(true)
			go s.watchLoop(w)
			return
		}
		go s.pollLoop()
	})
}

// jitter spreads an interval to ±20%, so a fleet of pollers whose backend
// just recovered (or just died) does not re-synchronize into a thundering
// herd of simultaneous fetches.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	// Uniform in [0.8d, 1.2d).
	return d*4/5 + time.Duration(rand.Int64N(int64(d)*2/5+1))
}

func (s *Store) pollLoop() {
	defer close(s.done)
	interval := s.cfg.Poll
	timer := time.NewTimer(jitter(interval))
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C:
		}
		if _, err := s.Reload(); err != nil {
			interval = min(interval*2, s.cfg.MaxBackoff)
		} else {
			interval = s.cfg.Poll
		}
		timer.Reset(jitter(interval))
	}
}

// defaultWatchTimeout bounds a watch round when Config.WatchTimeout is
// unset.
const defaultWatchTimeout = 30 * time.Second

// watchLoop parks a blocking watch on the backend and applies whatever
// each round returns. A round that errors drops the store back to one
// plain jittered poll (with the poller's usual backoff on consecutive
// errors), then retries the watch — so a dead long-poll path degrades to
// exactly the polling behaviour, and staleness only trips if the plain
// fetches fail too.
func (s *Store) watchLoop(w Watcher) {
	defer close(s.done)
	timeout := s.cfg.WatchTimeout
	if timeout <= 0 {
		timeout = defaultWatchTimeout
	}
	interval := s.cfg.Poll
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		_, err := s.reloadWith(func(prev string) (Candidate, bool, error) {
			return w.Watch(prev, timeout, s.stop)
		}, true)
		if err == nil {
			s.watchRounds.Add(1)
			interval = s.cfg.Poll
			continue
		}
		s.watchFallbacks.Add(1)
		timer := time.NewTimer(jitter(interval))
		select {
		case <-s.stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		if _, err := s.Reload(); err != nil {
			interval = min(interval*2, s.cfg.MaxBackoff)
		} else {
			interval = s.cfg.Poll
		}
	}
}

// Close stops the poller and waits for it to exit. Idempotent; the engine
// keeps serving the last applied rules.
func (s *Store) Close() {
	s.stopOne.Do(func() { close(s.stop) })
	if s.started.Load() {
		<-s.done
	}
}

// RegisterMetrics attaches the store's reload counters, the swap-latency
// histogram, and the staleness-age gauge to a registry. The staleness age
// is the fleet-health signal a scraper alerts on: it climbs while the
// backend starves and snaps back on the next good cycle.
func (s *Store) RegisterMetrics(r *metrics.Registry) {
	const cycleHelp = "Policy reload cycles by outcome."
	r.CounterFunc("bp_policy_reloads_total", cycleHelp, s.applied.Load, metrics.L("outcome", "applied"))
	r.CounterFunc("bp_policy_reloads_total", cycleHelp, s.unchanged.Load, metrics.L("outcome", "unchanged"))
	r.CounterFunc("bp_policy_reloads_total", cycleHelp, s.failures.Load, metrics.L("outcome", "failed"))
	r.CounterFunc("bp_policy_degraded_enters_total",
		"Times the store tripped its staleness deadline into the configured fail mode.",
		s.degradedEnters.Load)
	r.CounterFunc("bp_policy_watch_rounds_total",
		"Completed blocking watch rounds (applies, other-shard revisions, and idle timeouts).",
		s.watchRounds.Load)
	r.CounterFunc("bp_policy_watch_fallbacks_total",
		"Watch rounds that errored and fell back to a plain poll.",
		s.watchFallbacks.Load)
	r.GaugeFunc("bp_policy_staleness_age_seconds",
		"Age of the last successful reload cycle.",
		func() float64 { return s.LastGoodAge().Seconds() })
	r.GaugeFunc("bp_policy_degraded",
		"1 while the staleness deadline has the engine in its degraded posture.",
		func() float64 {
			if s.Degraded() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("bp_policy_rules", "Active compiled rule count.",
		func() float64 { return float64(s.Stats().Rules) })
	r.RegisterHistogram("bp_policy_swap_latency_ns",
		"Successful reload latency, fetch through atomic swap.", s.swapLatency)
}

// Version returns the active policy revision ("" before the first load).
func (s *Store) Version() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	version, ruleCount, lastErr := s.version, s.ruleCount, s.lastErr
	age := s.now() - s.lastGoodAt
	degraded := s.degraded
	s.mu.Unlock()
	return Stats{
		Polls:          s.polls.Load(),
		Applied:        s.applied.Load(),
		Unchanged:      s.unchanged.Load(),
		Failures:       s.failures.Load(),
		Version:        version,
		Rules:          ruleCount,
		LastError:      lastErr,
		Source:         s.cfg.Source.String(),
		LastGoodAge:    age,
		Watching:       s.watching.Load(),
		WatchRounds:    s.watchRounds.Load(),
		WatchFallbacks: s.watchFallbacks.Load(),
		Degraded:       degraded,
		DegradedEnters: s.degradedEnters.Load(),
		FailMode:       s.cfg.FailMode.String(),
	}
}
