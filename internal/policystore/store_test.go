package policystore

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"borderpatrol/internal/policy"
)

func newEngine(t *testing.T) *policy.Engine {
	t.Helper()
	eng, err := policy.NewEngine(nil, policy.VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestStoreLoadApplies(t *testing.T) {
	eng := newEngine(t)
	st, err := New(Config{Source: NewStaticSource(docA), Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(); err != nil {
		t.Fatalf("Load: %v", err)
	}
	rules := eng.Rules()
	if len(rules) != 1 || rules[0].Target != "com/flurry" {
		t.Fatalf("engine rules = %+v", rules)
	}
	if eng.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", eng.Generation())
	}
	s := st.Stats()
	if s.Applied != 1 || s.Failures != 0 || s.Rules != 1 || s.Version == "" || s.Source != "static" {
		t.Fatalf("stats = %+v", s)
	}

	// A second cycle is a no-op: unchanged, no generation bump.
	applied, err := st.Reload()
	if err != nil || applied {
		t.Fatalf("reload of unchanged source: applied=%v err=%v", applied, err)
	}
	if eng.Generation() != 1 {
		t.Fatalf("unchanged reload bumped generation to %d", eng.Generation())
	}
	if s := st.Stats(); s.Unchanged != 1 || s.Polls != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStoreInitialLoadFailure(t *testing.T) {
	eng := newEngine(t)
	st, err := New(Config{Source: NewStaticSource("{[garbage"), Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	err = st.Load()
	if err == nil {
		t.Fatal("Load of malformed document succeeded")
	}
	if !errors.Is(err, policy.ErrBadRule) {
		t.Fatalf("error %v does not wrap ErrBadRule", err)
	}
	if s := st.Stats(); s.Applied != 0 || s.Failures != 1 || s.Version != "" {
		t.Fatalf("stats = %+v", s)
	}
}

// TestStoreLastGoodSurvivesBadCandidate is the tentpole's core property: a
// malformed candidate leaves the last-good rules serving, with the failure
// counted and exposed, and a later good candidate recovers.
func TestStoreLastGoodSurvivesBadCandidate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.bp")
	writeFile(t, path, docA)
	eng := newEngine(t)
	st, err := New(Config{Source: NewFileSource(path), Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(); err != nil {
		t.Fatal(err)
	}
	goodVersion := st.Version()

	// Push a broken revision.
	bumpMtime(t, path)
	writeFile(t, path, `{[deny][library]["com/ok"]}`+"\n"+`{[deny][nope]["x"]}`)
	if _, err := st.Reload(); err == nil {
		t.Fatal("malformed candidate applied")
	}
	if rules := eng.Rules(); len(rules) != 1 || rules[0].Target != "com/flurry" {
		t.Fatalf("last-good rules lost: %+v", rules)
	}
	if eng.Generation() != 1 {
		t.Fatalf("rejected candidate bumped generation to %d", eng.Generation())
	}
	s := st.Stats()
	if s.Failures != 1 || s.Version != goodVersion || s.LastError == "" {
		t.Fatalf("stats = %+v", s)
	}
	// The error is locatable (line number from the grammar).
	if want := "line 2"; !strings.Contains(s.LastError, want) {
		t.Fatalf("LastError %q does not name %q", s.LastError, want)
	}

	// Recovery: a good revision applies and clears the error.
	bumpMtime(t, path)
	writeFile(t, path, docB)
	applied, err := st.Reload()
	if err != nil || !applied {
		t.Fatalf("recovery reload: applied=%v err=%v", applied, err)
	}
	if rules := eng.Rules(); len(rules) != 2 {
		t.Fatalf("recovered rules = %+v", rules)
	}
	if s := st.Stats(); s.LastError != "" || s.Applied != 2 || s.Rules != 2 {
		t.Fatalf("stats after recovery = %+v", s)
	}
	if eng.Generation() != 2 {
		t.Fatalf("generation = %d, want 2 (one bump per applied swap)", eng.Generation())
	}
}

// TestStorePollerHotReload drives the background poller end to end over a
// file source: an edit is picked up without any manual call, and Close
// stops the goroutine.
func TestStorePollerHotReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.bp")
	writeFile(t, path, docA)
	eng := newEngine(t)
	st, err := New(Config{
		Source: NewFileSource(path),
		Engine: eng,
		Poll:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Load(); err != nil {
		t.Fatal(err)
	}
	st.Start()
	defer st.Close()

	bumpMtime(t, path)
	writeFile(t, path, docB)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(eng.Rules()) == 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rules := eng.Rules(); len(rules) != 2 {
		t.Fatalf("poller never applied the edit: %+v", rules)
	}
	if s := st.Stats(); s.Applied != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// failingSource fails every fetch; used to observe backoff behaviour.
type failingSource struct{ fetches chan time.Time }

func (f *failingSource) Fetch(prev string) (Candidate, bool, error) {
	select {
	case f.fetches <- time.Now():
	default:
	}
	return Candidate{}, false, fmt.Errorf("synthetic fetch failure")
}

func (f *failingSource) String() string { return "failing" }

// TestStorePollerBacksOffOnErrors: consecutive failures stretch the poll
// interval instead of hot-looping against a broken backend.
func TestStorePollerBacksOffOnErrors(t *testing.T) {
	src := &failingSource{fetches: make(chan time.Time, 64)}
	st, err := New(Config{
		Source:     src,
		Engine:     newEngine(t),
		Poll:       time.Millisecond,
		MaxBackoff: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	time.Sleep(120 * time.Millisecond)
	st.Close()

	n := len(src.fetches)
	// 120ms at a flat 1ms cadence would be ~100+ fetches; exponential
	// backoff (1,2,4,8,...) keeps it far below that.
	if n == 0 || n > 30 {
		t.Fatalf("fetches in 120ms = %d, want backoff-limited (1..30)", n)
	}
	if s := st.Stats(); s.Failures == 0 || s.LastError == "" {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStoreConfigValidation(t *testing.T) {
	if _, err := New(Config{Engine: newEngine(t)}); err == nil {
		t.Fatal("missing Source accepted")
	}
	if _, err := New(Config{Source: NewStaticSource("")}); err == nil {
		t.Fatal("missing Engine accepted")
	}
}

// TestStoreEmptyDocument: an empty document is a valid policy (no rules —
// the engine default decides), matching the facade's historical treatment
// of an empty Config.Policy.
func TestStoreEmptyDocument(t *testing.T) {
	eng := newEngine(t)
	st, err := New(Config{Source: NewStaticSource(""), Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(); err != nil {
		t.Fatalf("Load of empty document: %v", err)
	}
	if rules := eng.Rules(); len(rules) != 0 {
		t.Fatalf("rules = %+v", rules)
	}
	if s := st.Stats(); s.Applied != 1 || s.Rules != 0 {
		t.Fatalf("stats = %+v", s)
	}
}
