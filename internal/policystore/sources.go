package policystore

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// maxPolicyBytes bounds a fetched policy document. The paper's largest
// evaluated policy (1,050 rules, §VI-B1) is ~40 KB; 16 MB leaves three
// orders of magnitude of headroom while keeping a misconfigured endpoint
// (or a hostile one, for the HTTP backend) from ballooning gateway memory.
const maxPolicyBytes = 16 << 20

// StaticSource wraps an inline policy document: the facade's historical
// Config.Policy string expressed as a Source. It never changes after
// construction.
type StaticSource struct {
	doc     string
	version string
}

// NewStaticSource builds a Source over an inline document.
func NewStaticSource(doc string) *StaticSource {
	return &StaticSource{doc: doc, version: contentVersion([]byte(doc))}
}

// Fetch returns the inline document once; every later cycle is unchanged.
func (s *StaticSource) Fetch(prev string) (Candidate, bool, error) {
	if prev == s.version {
		return Candidate{}, true, nil
	}
	return Candidate{Doc: s.doc, Version: s.version}, false, nil
}

// String describes the backend.
func (s *StaticSource) String() string { return "static" }

// FileSource hot-loads a policy file: an mtime+size stat memo skips the
// read entirely while the file is untouched, and a content hash suppresses
// no-op applies when the file is rewritten with identical bytes (editors
// and config-management agents both do this).
//
// Update the file atomically (write a temp file, then rename over the
// target — what most editors and config agents do anyway): a poll landing
// inside a non-atomic truncate-then-write can observe the intermediate
// state, and a valid intermediate (e.g. an empty file) would be applied.
type FileSource struct {
	path string
	// lastMod and lastSize memoize the stat observed at the last read, so
	// an untouched file costs one Stat per poll — no read, no hash.
	lastMod  time.Time
	lastSize int64
	// lastRead is when that read happened. The memo is only trusted for
	// files that were already comfortably older than the coarsest common
	// mtime granularity at read time ("racily clean", as git calls it):
	// a same-size edit landing in the same timestamp tick as the read
	// would otherwise stat identical forever and never be picked up.
	lastRead time.Time
}

// mtimeGranularity is the coarsest mtime resolution the stat memo defends
// against (FAT-style 2 s; ext4/APFS/NTFS are much finer). Files modified
// within this window of the last read are re-hashed instead of trusted.
const mtimeGranularity = 2 * time.Second

// NewFileSource builds a Source over a policy file path.
func NewFileSource(path string) *FileSource { return &FileSource{path: path} }

// Fetch stats the file, and reads+hashes it only when the stat moved (or
// the memo cannot be trusted yet).
func (s *FileSource) Fetch(prev string) (Candidate, bool, error) {
	info, err := os.Stat(s.path)
	if err != nil {
		return Candidate{}, false, fmt.Errorf("policystore: stat: %w", err)
	}
	if prev != "" && info.ModTime().Equal(s.lastMod) && info.Size() == s.lastSize &&
		s.lastRead.Sub(s.lastMod) > mtimeGranularity {
		return Candidate{}, true, nil
	}
	if info.Size() > maxPolicyBytes {
		return Candidate{}, false, fmt.Errorf("policystore: %s: document exceeds %d bytes", s.path, maxPolicyBytes)
	}
	data, err := os.ReadFile(s.path)
	if err != nil {
		return Candidate{}, false, fmt.Errorf("policystore: read: %w", err)
	}
	if len(data) > maxPolicyBytes {
		// The file grew between Stat and ReadFile.
		return Candidate{}, false, fmt.Errorf("policystore: %s: document exceeds %d bytes", s.path, maxPolicyBytes)
	}
	s.lastMod, s.lastSize, s.lastRead = info.ModTime(), info.Size(), time.Now()
	v := contentVersion(data)
	if v == prev {
		return Candidate{}, true, nil
	}
	return Candidate{Doc: string(data), Version: v}, false, nil
}

// String describes the backend.
func (s *FileSource) String() string { return "file:" + s.path }

// HTTPSource pulls a policy document from an HTTP(S) endpoint with
// ETag/If-None-Match conditional fetches: a fleet controller serves the
// policy once and every unchanged poll costs a 304 with no body. Transport
// errors and non-200/304 statuses are reported to the Store, which keeps
// the last-good rules and backs off.
type HTTPSource struct {
	url    string
	client *http.Client
	// etag is the validator from the last 200 response, replayed as
	// If-None-Match on later polls. Like FileSource's stat memo, it also
	// covers a candidate the Store rejected: a broken push is fetched and
	// counted as a failure once, then polled cheaply (304) rather than
	// re-downloaded and re-counted every cycle, until the endpoint serves
	// a new revision.
	etag string
}

// NewHTTPSource builds a Source over an URL. client may be nil (a default
// client with a 10s timeout is used).
func NewHTTPSource(url string, client *http.Client) *HTTPSource {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &HTTPSource{url: url, client: client}
}

// Fetch issues a conditional GET.
func (s *HTTPSource) Fetch(prev string) (Candidate, bool, error) {
	req, err := http.NewRequest(http.MethodGet, s.url, nil)
	if err != nil {
		return Candidate{}, false, fmt.Errorf("policystore: %w", err)
	}
	return s.roundTrip(s.client, req, prev)
}

// Watch issues a long-poll GET: ?watch=<timeout> asks the endpoint (see
// Hub.Handler for the contract) to hold an If-None-Match match open until
// a new revision lands or the hold expires, which then answers 304. The
// request runs on a clone of the configured client with the overall
// client timeout lifted — the context bounds the hold instead — so the
// default 10s Fetch client does not kill a 30s watch mid-hold. Endpoints
// that ignore the watch parameter just answer immediately, which the
// Store's watch loop tolerates (each answer is a valid cycle).
func (s *HTTPSource) Watch(prev string, timeout time.Duration, cancel <-chan struct{}) (Candidate, bool, error) {
	// Grace covers response transfer after a full-length hold.
	ctx, cancelCtx := context.WithTimeout(context.Background(), timeout+10*time.Second)
	defer cancelCtx()
	if cancel != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-cancel:
				cancelCtx()
			case <-done:
			}
		}()
	}
	sep := "?"
	if strings.Contains(s.url, "?") {
		sep = "&"
	}
	url := s.url + sep + "watch=" + timeout.String()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Candidate{}, false, fmt.Errorf("policystore: %w", err)
	}
	watchClient := *s.client
	watchClient.Timeout = 0
	c, unchanged, err := s.roundTrip(&watchClient, req, prev)
	if err != nil && cancel != nil {
		select {
		case <-cancel:
			// Shutdown raced the request; report a quiet idle round.
			return Candidate{}, true, nil
		default:
		}
	}
	return c, unchanged, err
}

// roundTrip sends the (possibly conditional) request and decodes the
// fetch contract from the response.
func (s *HTTPSource) roundTrip(client *http.Client, req *http.Request, prev string) (Candidate, bool, error) {
	if s.etag != "" && prev != "" {
		req.Header.Set("If-None-Match", s.etag)
	}
	resp, err := client.Do(req)
	if err != nil {
		return Candidate{}, false, fmt.Errorf("policystore: fetch: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return Candidate{}, true, nil
	case http.StatusOK:
	default:
		return Candidate{}, false, fmt.Errorf("policystore: fetch %s: unexpected status %s", s.url, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPolicyBytes+1))
	if err != nil {
		return Candidate{}, false, fmt.Errorf("policystore: fetch %s: %w", s.url, err)
	}
	if len(data) > maxPolicyBytes {
		return Candidate{}, false, fmt.Errorf("policystore: %s: document exceeds %d bytes", s.url, maxPolicyBytes)
	}
	s.etag = resp.Header.Get("ETag")
	v := "etag:" + s.etag
	if s.etag == "" {
		v = contentVersion(data)
	}
	if v == prev {
		return Candidate{}, true, nil
	}
	return Candidate{Doc: string(data), Version: v}, false, nil
}

// String describes the backend.
func (s *HTTPSource) String() string { return s.url }
