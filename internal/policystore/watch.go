package policystore

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// This file adds the push half of fleet policy distribution. Polling
// alone makes a fleet-wide change cost N staggered rounds (jittered
// deliberately — see jitter); a watch-capable backend lets every
// gateway's store park a blocking long-poll and have ONE controller
// revision wake them all, so the change propagates in a single round.
//
// The Store prefers the watch loop whenever its Source implements
// Watcher, and degrades to plain polling the moment a watch round errors
// (connection dropped, proxy killed the hold, backend restarting) —
// watch is an optimization, never a new availability dependency.

// Watcher is an optional Source extension for backends that can block
// until the document changes. Watch has Fetch semantics — prev is the
// last version this consumer saw — plus a hold: when the backend's
// current version equals prev, the call blocks until a new revision
// lands, the timeout elapses (→ unchanged, a healthy idle round), or
// cancel is closed (→ unchanged, the store is shutting down).
type Watcher interface {
	Source
	Watch(prev string, timeout time.Duration, cancel <-chan struct{}) (Candidate, bool, error)
}

// watchProbe lets a wrapping source report whether its backend actually
// supports watch, so implementing Watcher structurally (as wrappers must)
// does not force the Store onto the watch path over a poll-only backend.
type watchProbe interface{ watchCapable() bool }

// watchable reports the Source as a Watcher when the watch path is real.
func watchable(src Source) (Watcher, bool) {
	w, ok := src.(Watcher)
	if !ok {
		return nil, false
	}
	if p, ok := src.(watchProbe); ok && !p.watchCapable() {
		return nil, false
	}
	return w, true
}

// maxWatchHold caps how long Hub.Handler will hold a long-poll open, so a
// client asking for an absurd hold cannot pin a connection for hours.
const maxWatchHold = 5 * time.Minute

// Hub is an in-process fleet policy control plane: one authoritative
// grouped document, revisioned on every Set, fanned out to any number of
// gateways. Gateways consume it either directly (Source, zero-copy
// in-process) or over HTTP (Handler, which HTTPSource polls and watches).
// Both paths support blocking watch, so a fleet-wide Set wakes every
// parked gateway at once.
type Hub struct {
	mu      sync.Mutex
	doc     string
	version string
	rev     uint64
	changed chan struct{} // closed and replaced on every revision
}

// NewHub builds a Hub serving the given document as revision 1.
func NewHub(doc string) *Hub {
	h := &Hub{changed: make(chan struct{})}
	h.publish(doc)
	return h
}

// publish installs doc as the next revision. Callers hold h.mu or have
// exclusive access (NewHub).
func (h *Hub) publish(doc string) {
	h.rev++
	h.doc = doc
	h.version = fmt.Sprintf("rev%d-%s", h.rev, contentVersion([]byte(doc)))
	close(h.changed)
	h.changed = make(chan struct{})
}

// Set publishes a new document and returns its version, waking every
// parked watcher. Publishing identical bytes is a no-op (the current
// version is returned and nobody wakes).
func (h *Hub) Set(doc string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if doc != h.doc {
		h.publish(doc)
	}
	return h.version
}

// Get returns the current document and its version.
func (h *Hub) Get() (doc, version string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.doc, h.version
}

// Rev returns the current revision number (1 after NewHub, +1 per Set).
func (h *Hub) Rev() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rev
}

// state snapshots the document, version, and the channel that closes on
// the next revision.
func (h *Hub) state() (doc, version string, changed <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.doc, h.version, h.changed
}

// Source returns an in-process Source+Watcher over the hub. Each store
// needs its own instance (Sources are single-consumer); all instances
// share the hub's document.
func (h *Hub) Source() *HubSource { return &HubSource{h: h} }

// HubSource adapts a Hub to the Source and Watcher interfaces.
type HubSource struct{ h *Hub }

// Fetch returns the hub's current document when it differs from prev.
func (s *HubSource) Fetch(prev string) (Candidate, bool, error) {
	doc, version := s.h.Get()
	if prev != "" && prev == version {
		return Candidate{}, true, nil
	}
	return Candidate{Doc: doc, Version: version}, false, nil
}

// Watch blocks until the hub's version differs from prev, the timeout
// elapses, or cancel closes.
func (s *HubSource) Watch(prev string, timeout time.Duration, cancel <-chan struct{}) (Candidate, bool, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		doc, version, changed := s.h.state()
		if prev == "" || prev != version {
			return Candidate{Doc: doc, Version: version}, false, nil
		}
		select {
		case <-changed:
		case <-deadline.C:
			return Candidate{}, true, nil
		case <-cancel:
			return Candidate{}, true, nil
		}
	}
}

// String describes the backend.
func (s *HubSource) String() string { return "hub" }

// Handler serves the hub over HTTP in the shape HTTPSource speaks:
// ETag/If-None-Match conditional GETs, plus an optional ?watch=<duration>
// long-poll — a request whose If-None-Match matches the current revision
// is held (up to the requested duration, capped at 5m) until a new
// revision lands, then answered; an expired hold answers 304 with an
// empty body, exactly like an unchanged conditional poll.
func (h *Hub) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var hold time.Duration
		if v := r.URL.Query().Get("watch"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				http.Error(w, "bad watch duration", http.StatusBadRequest)
				return
			}
			hold = min(d, maxWatchHold)
		}
		inm := r.Header.Get("If-None-Match")
		doc, version, changed := h.state()
		if hold > 0 && inm == etagFor(version) {
			timer := time.NewTimer(hold)
			select {
			case <-changed:
				doc, version, _ = h.state()
			case <-timer.C:
			case <-r.Context().Done():
			}
			timer.Stop()
		}
		if inm == etagFor(version) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("ETag", etagFor(version))
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if r.Method == http.MethodHead {
			return
		}
		io.WriteString(w, doc)
	})
}

// etagFor renders a hub version as a strong ETag.
func etagFor(version string) string { return `"` + version + `"` }
