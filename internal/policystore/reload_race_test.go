package policystore_test

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/policystore"
	"borderpatrol/internal/tag"
)

// This file holds the reload-under-load concurrency test (run with -race):
// traffic hammers the enforcer's scalar and batched paths while a Store
// swaps rule sets underneath, including periodic malformed candidates. The
// invariants:
//
//   - every verdict is consistent with either the old or the new rule set
//     (never a torn mix, never a decode failure),
//   - the flow-cache generation advances exactly once per applied swap,
//   - malformed candidates leave the last-good rules serving.

func raceAPK() *dex.APK {
	return &dex.APK{
		PackageName: "com.corp.files",
		VersionCode: 1,
		Dexes: []*dex.File{{
			Classes: []dex.ClassDef{
				{
					Package: "com/corp/files",
					Name:    "SyncEngine",
					Methods: []dex.MethodDef{
						{Name: "download", Proto: "()V", File: "S.java", StartLine: 10, EndLine: 20},
					},
				},
				{
					Package: "com/flurry/sdk",
					Name:    "Agent",
					Methods: []dex.MethodDef{
						{Name: "beacon", Proto: "()V", File: "A.java", StartLine: 5, EndLine: 15},
					},
				},
				{
					Package: "com/other/app",
					Name:    "Ping",
					Methods: []dex.MethodDef{
						{Name: "ping", Proto: "()V", File: "P.java", StartLine: 3, EndLine: 8},
					},
				},
			},
		}},
	}
}

// racePacket builds a tagged packet whose stack holds the named methods.
func racePacket(t *testing.T, apk *dex.APK, db *analyzer.Database, dst string, names ...string) *ipv4.Packet {
	t.Helper()
	entry, ok := db.LookupTruncated(apk.Truncated())
	if !ok {
		t.Fatal("apk not in db")
	}
	var indexes []uint32
	for _, name := range names {
		found := false
		for i, raw := range entry.Signatures {
			sig, err := dex.ParseSignature(raw)
			if err != nil {
				t.Fatal(err)
			}
			if sig.Name == name {
				indexes = append(indexes, uint32(i))
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("signature %q not in db", name)
		}
	}
	tg := tag.Tag{AppHash: apk.Truncated(), Indexes: indexes}
	payload, err := tg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	pkt := &ipv4.Packet{
		Header: ipv4.Header{
			TTL:      64,
			Protocol: ipv4.ProtoTCP,
			Src:      netip.MustParseAddr("10.0.0.5"),
			Dst:      netip.MustParseAddr(dst),
		},
		Payload: []byte("POST /x HTTP/1.1\r\n\r\n"),
	}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: payload})
	return pkt
}

// flipSource alternates between rule documents on every fetch, injecting a
// malformed candidate every badEvery-th cycle. Fetch is serialized by the
// Store's reload mutex, so the counter needs no synchronization.
type flipSource struct {
	docs     []string
	badEvery int
	n        int
}

func (f *flipSource) Fetch(prev string) (policystore.Candidate, bool, error) {
	f.n++
	if f.badEvery > 0 && f.n%f.badEvery == 0 {
		return policystore.Candidate{Doc: "{[broken][", Version: fmt.Sprintf("bad-%d", f.n)}, false, nil
	}
	return policystore.Candidate{
		Doc:     f.docs[f.n%len(f.docs)],
		Version: fmt.Sprintf("v%d", f.n),
	}, false, nil
}

func (f *flipSource) String() string { return "flip" }

func TestReloadUnderLoadNoTornVerdicts(t *testing.T) {
	apk := raceAPK()
	db := analyzer.NewDatabase()
	if err := db.Add(apk); err != nil {
		t.Fatal(err)
	}
	eng, err := policy.NewEngine(nil, policy.VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	enf := enforcer.New(enforcer.Config{
		Flows: enforcer.NewFlowCache(flowtable.Config{Capacity: 1024}),
	}, db, eng)

	// Rule set A denies only the tracker; rule set B additionally denies
	// the corp sync library, flipping the "flip" packet's verdict.
	docA := policy.FormatPolicy([]policy.Rule{
		{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"},
	})
	docB := policy.FormatPolicy([]policy.Rule{
		{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"},
		{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/corp/files"},
	})
	src := &flipSource{docs: []string{docA, docB}, badEvery: 7}
	store, err := policystore.New(policystore.Config{Source: src, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.Load(); err != nil {
		t.Fatal(err)
	}

	tracker := racePacket(t, apk, db, "93.184.216.34", "beacon", "download") // denied by A and B
	flip := racePacket(t, apk, db, "93.184.216.35", "download")              // allowed by A, denied by B
	stable := racePacket(t, apk, db, "93.184.216.36", "ping")                // allowed by A and B

	checkRes := func(kind string, res enforcer.Result) {
		switch kind {
		case "tracker":
			if res.Verdict != policy.VerdictDrop || res.Cause != enforcer.DropPolicy {
				t.Errorf("tracker verdict torn: %+v", res)
			}
		case "stable":
			if res.Verdict != policy.VerdictAllow {
				t.Errorf("stable verdict torn: %+v", res)
			}
		case "flip":
			// Either rule set's verdict is fine; anything else (e.g. a
			// decode failure or a default-on-missing-rules verdict with the
			// wrong cause) is a torn read.
			okA := res.Verdict == policy.VerdictAllow && res.Cause == enforcer.DropNone
			okB := res.Verdict == policy.VerdictDrop && res.Cause == enforcer.DropPolicy
			if !okA && !okB {
				t.Errorf("flip verdict matches neither rule set: %+v", res)
			}
		}
	}

	const swaps = 300
	stop := make(chan struct{})
	var swapperDone sync.WaitGroup
	swapperDone.Add(1)
	go func() {
		defer swapperDone.Done()
		for i := 0; i < swaps; i++ {
			// Malformed candidates surface as errors here — expected, and
			// asserted in aggregate below.
			_, _ = store.Reload()
		}
		close(stop)
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := []*ipv4.Packet{tracker, flip, stable, flip, flip, stable}
			var out []enforcer.Result
			for {
				select {
				case <-stop:
					return
				default:
				}
				if g%2 == 0 {
					// Scalar path.
					checkRes("tracker", enf.Process(tracker))
					checkRes("flip", enf.Process(flip))
					checkRes("stable", enf.Process(stable))
				} else {
					// Batched path (same-flow memo included).
					out = enf.ProcessBatch(batch, out)
					kinds := []string{"tracker", "flip", "stable", "flip", "flip", "stable"}
					for j, res := range out {
						checkRes(kinds[j], res)
					}
				}
			}
		}(g)
	}
	swapperDone.Wait()
	wg.Wait()

	st := store.Stats()
	if st.Applied == 0 || st.Failures == 0 {
		t.Fatalf("swapper did not exercise both paths: %+v", st)
	}
	if st.Polls != swaps+1 { // +1 for the initial Load
		t.Fatalf("polls = %d, want %d", st.Polls, swaps+1)
	}
	// The flow-cache generation advances exactly once per applied swap:
	// rejected candidates and unchanged cycles must not move it.
	if gen := eng.Generation(); gen != st.Applied {
		t.Fatalf("engine generation = %d, applied swaps = %d (must advance exactly once per swap)", gen, st.Applied)
	}
	if fl := enf.Stats().Flow; fl.Hits == 0 {
		t.Fatalf("flow cache never hit during the run: %+v", fl)
	}
}
