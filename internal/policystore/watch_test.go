package policystore

import (
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"borderpatrol/internal/policy"
)

// eventually spins on cond with a deadline, so tests wait on counters
// instead of fixed sleeps.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHubSetRevisionsAndNoOp(t *testing.T) {
	h := NewHub(docA)
	doc, v1 := h.Get()
	if doc != docA || h.Rev() != 1 || !strings.HasPrefix(v1, "rev1-") {
		t.Fatalf("initial state: doc=%q rev=%d v=%q", doc, h.Rev(), v1)
	}
	if v := h.Set(docA); v != v1 || h.Rev() != 1 {
		t.Fatalf("identical Set revisioned: v=%q rev=%d", v, h.Rev())
	}
	v2 := h.Set(docB)
	if v2 == v1 || h.Rev() != 2 {
		t.Fatalf("Set did not revision: v=%q rev=%d", v2, h.Rev())
	}
}

func TestHubSourceWatchWakesOnSet(t *testing.T) {
	h := NewHub(docA)
	src := h.Source()
	c, unchanged, err := src.Fetch("")
	if err != nil || unchanged || c.Doc != docA {
		t.Fatalf("initial fetch: %+v %v %v", c, unchanged, err)
	}
	type res struct {
		c         Candidate
		unchanged bool
		err       error
	}
	got := make(chan res, 1)
	go func() {
		c, u, err := src.Watch(c.Version, time.Minute, nil)
		got <- res{c, u, err}
	}()
	h.Set(docB)
	r := <-got
	if r.err != nil || r.unchanged || r.c.Doc != docB {
		t.Fatalf("watch after Set: %+v", r)
	}
	// An idle watch times out as a healthy unchanged round.
	if _, unchanged, err := src.Watch(r.c.Version, 10*time.Millisecond, nil); err != nil || !unchanged {
		t.Fatalf("idle watch: unchanged=%v err=%v", unchanged, err)
	}
	// A canceled watch returns unchanged promptly.
	cancel := make(chan struct{})
	close(cancel)
	start := time.Now()
	if _, unchanged, err := src.Watch(r.c.Version, time.Minute, cancel); err != nil || !unchanged {
		t.Fatalf("canceled watch: unchanged=%v err=%v", unchanged, err)
	} else if time.Since(start) > 5*time.Second {
		t.Fatal("canceled watch did not return promptly")
	}
}

func TestHTTPSourceWatchLongPoll(t *testing.T) {
	h := NewHub(docA)
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()
	src := NewHTTPSource(srv.URL, nil)

	c, unchanged, err := src.Fetch("")
	if err != nil || unchanged || c.Doc != docA {
		t.Fatalf("initial fetch: %+v %v %v", c, unchanged, err)
	}
	// Idle long-poll expires into an unchanged 304.
	if _, unchanged, err := src.Watch(c.Version, 50*time.Millisecond, nil); err != nil || !unchanged {
		t.Fatalf("idle watch: unchanged=%v err=%v", unchanged, err)
	}
	// A Set during (or just before) the hold is delivered.
	type res struct {
		c         Candidate
		unchanged bool
		err       error
	}
	got := make(chan res, 1)
	go func() {
		c, u, err := src.Watch(c.Version, 30*time.Second, nil)
		got <- res{c, u, err}
	}()
	h.Set(docB)
	r := <-got
	if r.err != nil || r.unchanged || r.c.Doc != docB {
		t.Fatalf("watch after Set: %+v", r)
	}
}

// TestStoreWatchPropagatesInOneRound is the push property the fleet
// relies on: one hub Set reaches every watching store in exactly one
// additional reload cycle — no polling rounds, no sleeps; asserted via
// poll/apply/generation counters.
func TestStoreWatchPropagatesInOneRound(t *testing.T) {
	const grouped = `
{[deny][library]["com/global"]}
//@group a
{[deny][library]["com/a/one"]}
//@group b
{[deny][library]["com/b/one"]}
`
	h := NewHub(grouped)
	stores := make([]*Store, 2)
	engines := make([]*policy.Engine, 2)
	gens := make([]uint64, 2)
	for i, grp := range []string{"a", "b"} {
		eng := newEngine(t)
		st, err := New(Config{
			Source:       NewGroupScopedSource(h.Source(), grp),
			Engine:       eng,
			Poll:         time.Hour, // any progress must come from watch
			WatchTimeout: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(st.Close)
		if err := st.Load(); err != nil {
			t.Fatal(err)
		}
		st.Start()
		stores[i], engines[i], gens[i] = st, eng, eng.Generation()
	}
	// Both stores are parked on the watch. One Set touching every shard
	// must wake both.
	h.Set(strings.Replace(grouped, "com/global", "com/global/v2", 1))
	for i, st := range stores {
		eventually(t, "store apply", func() bool {
			s := st.Stats()
			return s.Applied == 2 && s.WatchRounds == 1
		})
		s := st.Stats()
		// Exactly one completed watch round carried the change; no cycle
		// ever came back empty-handed. (Polls may read one higher than
		// Applied because the next round is already parked.)
		if s.WatchRounds != 1 || s.Unchanged != 0 || s.Failures != 0 {
			t.Errorf("store %d: change took more than one watch round: %+v", i, s)
		}
		if s.WatchFallbacks != 0 || !s.Watching {
			t.Errorf("store %d: watch stats = %+v", i, s)
		}
		if got := engines[i].Generation(); got != gens[i]+1 {
			t.Errorf("store %d: generation = %d, want exactly %d+1", i, got, gens[i])
		}
	}
}

// brokenWatchSource serves a document fine over Fetch but errors every
// Watch, modelling a proxy or LB that kills long-polls.
type brokenWatchSource struct {
	mu  sync.Mutex
	doc string
}

func (b *brokenWatchSource) Fetch(prev string) (Candidate, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := contentVersion([]byte(b.doc))
	if prev == v {
		return Candidate{}, true, nil
	}
	return Candidate{Doc: b.doc, Version: v}, false, nil
}

func (b *brokenWatchSource) Watch(prev string, timeout time.Duration, cancel <-chan struct{}) (Candidate, bool, error) {
	return Candidate{}, false, errors.New("long-poll connection reset")
}

func (b *brokenWatchSource) String() string { return "broken-watch" }

// TestWatchDisconnectFallsBackToPollingWithoutStaleness: when the watch
// path is dead but plain fetches work, the store must keep itself fresh
// through the poll fallback — the staleness deadline never trips and the
// engine never degrades.
func TestWatchDisconnectFallsBackToPollingWithoutStaleness(t *testing.T) {
	eng := newEngine(t)
	src := &brokenWatchSource{doc: docA}
	now := new(time.Duration)
	var mu sync.Mutex // guards *now against the poller's CheckStale reads
	st, err := New(Config{
		Source:       src,
		Engine:       eng,
		Poll:         time.Millisecond,
		WatchTimeout: time.Millisecond,
		MaxStale:     time.Minute,
		FailMode:     FailClosed,
		Now: func() time.Duration {
			mu.Lock()
			defer mu.Unlock()
			return *now
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(); err != nil {
		t.Fatal(err)
	}
	st.Start()
	// Walk virtual time well past MaxStale in sub-deadline steps, letting
	// at least one fallback poll land in each step. Every successful poll
	// re-arms the deadline, so the store must never degrade.
	for step := 0; step < 10; step++ {
		polls := st.Stats().Polls
		eventually(t, "fallback poll", func() bool { return st.Stats().Polls >= polls+2 })
		mu.Lock()
		*now += 30 * time.Second
		mu.Unlock()
	}
	s := st.Stats()
	if s.WatchFallbacks == 0 {
		t.Fatal("watch never fell back to polling")
	}
	if s.Degraded || s.DegradedEnters != 0 {
		t.Fatalf("staleness tripped during watch fallback: %+v", s)
	}
	if _, degraded := eng.Degraded(); degraded {
		t.Fatal("engine degraded during watch fallback")
	}
	// The fallback path still applies real changes.
	src.mu.Lock()
	src.doc = docB
	src.mu.Unlock()
	eventually(t, "fallback apply", func() bool { return st.Stats().Applied == 2 })
}
