package policystore

import (
	"errors"
	"sync"
	"testing"
	"time"

	"borderpatrol/internal/policy"
)

// outageSource wraps a static document behind a switchable outage: while
// down, Fetch fails like an unreachable backend.
type outageSource struct {
	mu   sync.Mutex
	doc  string
	down bool
}

func (o *outageSource) Fetch(prev string) (Candidate, bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.down {
		return Candidate{}, false, errors.New("backend unreachable")
	}
	return NewStaticSource(o.doc).Fetch(prev)
}

func (o *outageSource) String() string { return "outage-test" }

func (o *outageSource) setDown(down bool) {
	o.mu.Lock()
	o.down = down
	o.mu.Unlock()
}

// staleFixture builds a store on a manual virtual clock with a 1-minute
// staleness deadline.
func staleFixture(t *testing.T, mode FailMode) (*Store, *policy.Engine, *outageSource, *time.Duration) {
	t.Helper()
	eng := newEngine(t)
	src := &outageSource{doc: docA}
	now := new(time.Duration)
	st, err := New(Config{
		Source:   src,
		Engine:   eng,
		MaxStale: time.Minute,
		FailMode: mode,
		Now:      func() time.Duration { return *now },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Load(); err != nil {
		t.Fatal(err)
	}
	return st, eng, src, now
}

// TestStalenessFailClosed: past the deadline with the backend down, the
// engine degrades to deny-everything; a healthy reload recovers it.
func TestStalenessFailClosed(t *testing.T) {
	st, eng, src, now := staleFixture(t, FailClosed)

	// Fresh: healthy.
	if st.Degraded() {
		t.Fatal("degraded immediately after load")
	}

	src.setDown(true)
	*now = 30 * time.Second
	if _, err := st.Reload(); err == nil {
		t.Fatal("reload during outage succeeded")
	}
	if st.Degraded() {
		t.Fatal("degraded before the deadline")
	}

	*now = 2 * time.Minute
	if _, err := st.Reload(); err == nil {
		t.Fatal("reload during outage succeeded")
	}
	if !st.Degraded() {
		t.Fatal("not degraded past the deadline")
	}
	d, ok := eng.Degraded()
	if !ok || d.Verdict != policy.VerdictDrop {
		t.Fatalf("engine override = %+v, %v (want fail-closed drop)", d, ok)
	}
	s := st.Stats()
	if !s.Degraded || s.DegradedEnters != 1 || s.FailMode != "fail-closed" {
		t.Fatalf("stats = %+v", s)
	}

	// Recovery: the backend returns; the unchanged document is enough.
	src.setDown(false)
	if _, err := st.Reload(); err != nil {
		t.Fatalf("recovery reload: %v", err)
	}
	if st.Degraded() {
		t.Fatal("still degraded after recovery")
	}
	if _, ok := eng.Degraded(); ok {
		t.Fatal("engine override survived recovery")
	}
	if st.Stats().DegradedEnters != 1 {
		t.Fatalf("DegradedEnters = %d after recovery", st.Stats().DegradedEnters)
	}
}

// TestStalenessFailOpen: same transition, but the degraded posture admits
// everything.
func TestStalenessFailOpen(t *testing.T) {
	st, eng, src, now := staleFixture(t, FailOpen)
	src.setDown(true)
	*now = 2 * time.Minute
	st.Reload()
	if !st.Degraded() {
		t.Fatal("not degraded past the deadline")
	}
	if d, ok := eng.Degraded(); !ok || d.Verdict != policy.VerdictAllow {
		t.Fatalf("engine override = %+v, %v (want fail-open allow)", d, ok)
	}
}

// TestStalenessFailStatic: the default posture never degrades — the
// last-good rules serve forever.
func TestStalenessFailStatic(t *testing.T) {
	st, eng, src, now := staleFixture(t, FailStatic)
	src.setDown(true)
	*now = 24 * time.Hour
	st.Reload()
	if st.Degraded() || st.CheckStale() {
		t.Fatal("fail-static store degraded")
	}
	if _, ok := eng.Degraded(); ok {
		t.Fatal("fail-static store set an engine override")
	}
}

// TestLastGoodAge tracks the virtual clock and resets on healthy cycles.
func TestLastGoodAge(t *testing.T) {
	st, _, src, now := staleFixture(t, FailClosed)
	if got := st.LastGoodAge(); got != 0 {
		t.Fatalf("age after load = %v", got)
	}
	*now = 45 * time.Second
	if got := st.LastGoodAge(); got != 45*time.Second {
		t.Fatalf("age = %v, want 45s", got)
	}
	if got := st.Stats().LastGoodAge; got != 45*time.Second {
		t.Fatalf("stats age = %v, want 45s", got)
	}
	if _, err := st.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := st.LastGoodAge(); got != 0 {
		t.Fatalf("age after healthy reload = %v, want 0", got)
	}
	// A failed cycle does not refresh the age.
	src.setDown(true)
	*now = 50 * time.Second
	st.Reload()
	if got := st.LastGoodAge(); got != 5*time.Second {
		t.Fatalf("age after failed reload = %v, want 5s", got)
	}
}

// TestParseFailMode covers the flag-facing parser.
func TestParseFailMode(t *testing.T) {
	cases := map[string]FailMode{
		"":            FailStatic,
		"static":      FailStatic,
		"open":        FailOpen,
		"fail-open":   FailOpen,
		"closed":      FailClosed,
		"fail-closed": FailClosed,
	}
	for in, want := range cases {
		got, err := ParseFailMode(in)
		if err != nil || got != want {
			t.Errorf("ParseFailMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFailMode("explode"); err == nil {
		t.Error("ParseFailMode accepted garbage")
	}
}

// TestJitterBounds: poll jitter stays within ±20% of the interval, so the
// backoff never collapses to zero or doubles the configured cadence.
func TestJitterBounds(t *testing.T) {
	const d = time.Second
	for i := 0; i < 1000; i++ {
		j := jitter(d)
		if j < 4*d/5 || j > 6*d/5 {
			t.Fatalf("jitter(%v) = %v outside [0.8d, 1.2d]", d, j)
		}
	}
	if jitter(0) != 0 || jitter(-time.Second) != -time.Second {
		t.Fatal("non-positive intervals must pass through")
	}
}
