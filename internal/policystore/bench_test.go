package policystore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"borderpatrol/internal/policy"
)

// policy1050 renders the paper's §VI-B1-scale policy: 1,050 deny rules.
func policy1050() string {
	var b strings.Builder
	for i := 0; i < 1050; i++ {
		fmt.Fprintf(&b, "{[deny][library][\"com/blocked/lib%04d\"]}\n", i)
	}
	return b.String()
}

// BenchmarkReloadUnchangedFile measures the steady-state poll cost over an
// untouched policy file: one Stat, no read, no hash, no parse.
func BenchmarkReloadUnchangedFile(b *testing.B) {
	path := filepath.Join(b.TempDir(), "policy.bp")
	if err := os.WriteFile(path, []byte(policy1050()), 0o644); err != nil {
		b.Fatal(err)
	}
	// Age the file past the racily-clean window so the stat memo engages
	// (a freshly written file is deliberately re-hashed for a while).
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(path, old, old); err != nil {
		b.Fatal(err)
	}
	eng, err := policy.NewEngine(nil, policy.VerdictAllow)
	if err != nil {
		b.Fatal(err)
	}
	st, err := New(Config{Source: NewFileSource(path), Engine: eng})
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Load(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if applied, err := st.Reload(); err != nil || applied {
			b.Fatalf("applied=%v err=%v", applied, err)
		}
	}
}

// BenchmarkReloadApply1050 measures a full swap at the paper's validation
// scale: read, hash, parse, compile, and atomically publish 1,050 rules.
// This is the whole off-hot-path cost a central reconfiguration pays.
func BenchmarkReloadApply1050(b *testing.B) {
	dir := b.TempDir()
	doc := policy1050()
	// Two files with distinct content so every Reload applies.
	paths := [2]string{filepath.Join(dir, "a.bp"), filepath.Join(dir, "b.bp")}
	if err := os.WriteFile(paths[0], []byte(doc), 0o644); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(paths[1], []byte(doc+"{[deny][library][\"com/extra\"]}\n"), 0o644); err != nil {
		b.Fatal(err)
	}
	eng, err := policy.NewEngine(nil, policy.VerdictAllow)
	if err != nil {
		b.Fatal(err)
	}
	src := &FileSource{}
	st, err := New(Config{Source: src, Engine: eng})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.path = paths[i%2]
		if applied, err := st.Reload(); err != nil || !applied {
			b.Fatalf("applied=%v err=%v", applied, err)
		}
	}
}
