package experiments

import (
	"fmt"
	"sort"
	"strings"

	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/audit"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/trackers"
)

// ValidationResult reproduces the §VI-B1 validation: a deny-list policy
// over the tracker-library catalog applied to a sample of apps covering the
// most popular libraries, scored for precision (tracker packets dropped)
// and impact (desirable functionality intact).
type ValidationResult struct {
	// SampleApps is the number of apps manually exercised (paper: 60).
	SampleApps int
	// LibrariesCovered is how many distinct deny-listed libraries the
	// sample includes (paper: the top 60).
	LibrariesCovered int
	// DenyRules is the policy size (one rule per catalog library: 1,050).
	DenyRules int
	// TrackerPacketsTotal / TrackerPacketsDropped measure precision.
	TrackerPacketsTotal   int
	TrackerPacketsDropped int
	// DesirableTotal / DesirableDelivered measure app impact.
	DesirableTotal     int
	DesirableDelivered int
	// VisibleChangeApps counts apps with user-visible differences (ads no
	// longer shown); analytics blocking is invisible.
	VisibleChangeApps int
	// BrokenApps counts apps that lost desirable functionality (paper: 0).
	BrokenApps int
	// PerLibrary summarizes drops per deny-listed library observed.
	PerLibrary map[string]int
	// EngineStats snapshots the compiled policy engine's counters after the
	// enforced run: every packet paid only indexed probes against the
	// 1,050-rule set, never a linear scan.
	EngineStats policy.Stats
	// FlowStats snapshots the enforced run's per-flow verdict cache:
	// repeat packets of a functionality's flow skip the pipeline entirely.
	FlowStats flowtable.Stats
	// AuditStats snapshots the enforced run's async audit pipeline: every
	// enforcement decision must be recorded and none shed.
	AuditStats audit.Stats
}

// ValidationConfig parameterizes the experiment.
type ValidationConfig struct {
	// Corpus is the app pool to sample from (nil generates the default).
	Corpus []*apkgen.App
	// CorpusCfg generates the corpus when Corpus is nil.
	CorpusCfg apkgen.Config
	// SampleSize is how many apps to select (paper: 60).
	SampleSize int
	// TopLibraries is how many popular libraries the sample must cover.
	TopLibraries int
	// LegacyPayloads runs both testbeds on the pre-transport wire format
	// (plain payloads, no TCP segments). The experiment counts only data
	// packets, so its results are identical in either mode — the property
	// TestTransportEquivalence locks in.
	LegacyPayloads bool
}

// DefaultValidationConfig mirrors the paper: 60 apps covering the 60 most
// popular deny-listed libraries.
func DefaultValidationConfig() ValidationConfig {
	return ValidationConfig{
		CorpusCfg:    apkgen.DefaultConfig(),
		SampleSize:   60,
		TopLibraries: 60,
	}
}

// RunValidation builds the 1,050-rule deny policy, selects the library
// sample, exercises each sampled app twice (enforcement off, then on), and
// compares behaviour.
func RunValidation(cfg ValidationConfig) (*ValidationResult, error) {
	corpus := cfg.Corpus
	if corpus == nil {
		var err error
		corpus, err = apkgen.Generate(cfg.CorpusCfg)
		if err != nil {
			return nil, err
		}
	}

	// Build the deny policy from the full catalog, as the paper does from
	// Li et al.'s 1,050 libraries.
	catalog := trackers.Catalog()
	rules := make([]policy.Rule, 0, len(catalog))
	for _, lib := range catalog {
		rules = append(rules, policy.Rule{Action: policy.Deny, Level: policy.LevelLibrary, Target: lib.Package})
	}

	// Select the sample: traverse libraries by popularity; for each, pick
	// one not-yet-chosen app bundling it (the paper's sampling procedure).
	sample := selectLibrarySample(corpus, catalog, cfg.TopLibraries, cfg.SampleSize)
	if len(sample) == 0 {
		return nil, fmt.Errorf("validation: no apps in corpus include deny-listed libraries")
	}

	res := &ValidationResult{
		SampleApps: len(sample),
		DenyRules:  len(rules),
		PerLibrary: make(map[string]int),
	}
	covered := map[string]bool{}

	// Run 1 (enforcement off) establishes the baseline; run 2 enforces.
	tbOff, err := NewTestbed(sample, TestbedConfig{EnforcementOn: false, LegacyPayloads: cfg.LegacyPayloads})
	if err != nil {
		return nil, err
	}
	defer tbOff.Close()
	tbOn, err := NewTestbed(sample, TestbedConfig{
		EnforcementOn: true, Rules: rules, DefaultVerdict: policy.VerdictAllow,
		LegacyPayloads: cfg.LegacyPayloads,
	})
	if err != nil {
		return nil, err
	}
	defer tbOn.Close()

	// deliverData pushes the whole burst through the gateway (control
	// segments included — they need verdicts like any packet) but scores
	// only data packets, so tracker/desirable counts are identical across
	// wire formats.
	deliverData := func(tb *Testbed, pkts []*ipv4.Packet) (dataTotal, dataDelivered int) {
		deliveries := tb.Network.DeliverBatch(pkts)
		for i, d := range deliveries {
			if !isDataPacket(pkts[i]) {
				continue
			}
			dataTotal++
			if d.Delivered {
				dataDelivered++
			}
		}
		return dataTotal, dataDelivered
	}

	for i, ga := range sample {
		visible := false
		broken := false
		for _, fn := range ga.Functionalities {
			meta := ga.Meta[fn.Name]
			// Baseline run: everything must flow.
			resOff, err := tbOff.Apps[i].Invoke(fn.Name)
			if err != nil {
				return nil, fmt.Errorf("validation: baseline %s/%s: %w", ga.APK.PackageName, fn.Name, err)
			}
			_, offDelivered := deliverData(tbOff, resOff.Packets)

			// Enforced run.
			resOn, err := tbOn.Apps[i].Invoke(fn.Name)
			if err != nil {
				return nil, fmt.Errorf("validation: enforced %s/%s: %w", ga.APK.PackageName, fn.Name, err)
			}
			onTotal, onDelivered := deliverData(tbOn, resOn.Packets)

			if meta.IsTracker {
				res.TrackerPacketsTotal += onTotal
				res.TrackerPacketsDropped += onTotal - onDelivered
				res.PerLibrary[meta.LibraryPkg] += onTotal - onDelivered
				covered[meta.LibraryPkg] = true
				if meta.VisibleWhenBlocked && onDelivered < offDelivered {
					visible = true
				}
			} else if fn.Desirable {
				res.DesirableTotal += onTotal
				res.DesirableDelivered += onDelivered
				if onDelivered < offDelivered {
					broken = true
				}
			}
		}
		if visible {
			res.VisibleChangeApps++
		}
		if broken {
			res.BrokenApps++
		}
	}
	res.LibrariesCovered = len(covered)
	res.EngineStats = tbOn.Engine.Stats()
	res.FlowStats = tbOn.Enforcer.Stats().Flow
	// Flush the async audit pipeline so the snapshot covers every decision
	// of the run (the deferred Closes release both drainers; Close is
	// idempotent).
	if err := tbOn.Close(); err != nil {
		return nil, fmt.Errorf("validation: audit: %w", err)
	}
	res.AuditStats = tbOn.Audit.Stats()
	return res, nil
}

// selectLibrarySample implements the paper's procedure: sort libraries by
// popularity in the sample, and for each of the top libraries pick one app
// that includes it, until sampleSize apps are collected.
func selectLibrarySample(corpus []*apkgen.App, catalog []trackers.Library, topLibs, sampleSize int) []*apkgen.App {
	byLib := make(map[string][]*apkgen.App)
	for _, ga := range corpus {
		for _, lib := range ga.Libraries {
			byLib[lib] = append(byLib[lib], ga)
		}
	}
	chosen := make(map[string]*apkgen.App, sampleSize)
	var out []*apkgen.App
	count := 0
	for _, lib := range catalog {
		if count >= topLibs || len(out) >= sampleSize {
			break
		}
		count++
		apps := byLib[lib.Package]
		for _, ga := range apps {
			if _, dup := chosen[ga.APK.PackageName]; dup {
				continue
			}
			chosen[ga.APK.PackageName] = ga
			out = append(out, ga)
			break
		}
	}
	return out
}

// Format renders the validation summary.
func (r *ValidationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Validation (§VI-B1) — tracker deny-list over %d apps covering %d libraries (%d deny rules)\n",
		r.SampleApps, r.LibrariesCovered, r.DenyRules)
	pct := func(n, d int) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	fmt.Fprintf(&b, "tracker packets dropped:    %d/%d (%.1f%%; paper: all)\n",
		r.TrackerPacketsDropped, r.TrackerPacketsTotal, pct(r.TrackerPacketsDropped, r.TrackerPacketsTotal))
	fmt.Fprintf(&b, "desirable packets delivered: %d/%d (%.1f%%; paper: no functional impact)\n",
		r.DesirableDelivered, r.DesirableTotal, pct(r.DesirableDelivered, r.DesirableTotal))
	fmt.Fprintf(&b, "apps with visible changes (ads absent): %d\n", r.VisibleChangeApps)
	fmt.Fprintf(&b, "apps with broken desirable functionality: %d (paper: 0)\n", r.BrokenApps)
	libs := make([]string, 0, len(r.PerLibrary))
	for l := range r.PerLibrary {
		libs = append(libs, l)
	}
	sort.Slice(libs, func(i, j int) bool { return r.PerLibrary[libs[i]] > r.PerLibrary[libs[j]] })
	max := 10
	if len(libs) < max {
		max = len(libs)
	}
	fmt.Fprintf(&b, "top blocked libraries:\n")
	for _, l := range libs[:max] {
		fmt.Fprintf(&b, "  %-40s %d packets dropped\n", l, r.PerLibrary[l])
	}
	fmt.Fprintf(&b, "flow cache: %d hits, %d misses, %d live flows\n",
		r.FlowStats.Hits, r.FlowStats.Misses, r.FlowStats.Live)
	fmt.Fprintf(&b, "audit: %d decisions recorded, %d dropped, %d flush bursts\n",
		r.AuditStats.Recorded, r.AuditStats.Dropped, r.AuditStats.Flushes)
	return b.String()
}
