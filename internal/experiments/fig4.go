package experiments

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/android"
	"borderpatrol/internal/contextmgr"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/httpsim"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/netsim"
	"borderpatrol/internal/netstack"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/sanitizer"
)

// Fig4ConfigID enumerates the six measured configurations (paper §VI-D).
type Fig4ConfigID int

// Configurations (i)–(vi).
const (
	// ConfigDefaultSLIRP is the stock emulator with user-mode networking.
	ConfigDefaultSLIRP Fig4ConfigID = iota + 1
	// ConfigDefaultTAP swaps in the virtual TAP interface.
	ConfigDefaultTAP
	// ConfigTAPNFQueue adds the iptables NFQUEUE with a read-and-reinject
	// Python consumer (empty policy).
	ConfigTAPNFQueue
	// ConfigStaticInject adds the patched kernel + Xposed hook that sets a
	// static string as IP_OPTIONS per socket.
	ConfigStaticInject
	// ConfigStaticGetStack additionally calls getStackTrace per socket.
	ConfigStaticGetStack
	// ConfigDynamic is the full BorderPatrol prototype.
	ConfigDynamic
)

// String names the configuration with the paper's labels.
func (c Fig4ConfigID) String() string {
	switch c {
	case ConfigDefaultSLIRP:
		return "default-SLIRP"
	case ConfigDefaultTAP:
		return "default-tap"
	case ConfigTAPNFQueue:
		return "default-tap-nfq"
	case ConfigStaticInject:
		return "static-inject-tap-nfq"
	case ConfigStaticGetStack:
		return "static-getStack-tap-nfq"
	case ConfigDynamic:
		return "dynamic-tap-nfq"
	default:
		return fmt.Sprintf("config(%d)", int(c))
	}
}

// AllFig4Configs lists the configurations in presentation order.
func AllFig4Configs() []Fig4ConfigID {
	return []Fig4ConfigID{
		ConfigDefaultSLIRP, ConfigDefaultTAP, ConfigTAPNFQueue,
		ConfigStaticInject, ConfigStaticGetStack, ConfigDynamic,
	}
}

// Fig4Point is the measured latency for one configuration.
type Fig4Point struct {
	Config Fig4ConfigID
	// MeanLatency is the virtual per-request latency.
	MeanLatency time.Duration
	// Requests is the number of request iterations measured.
	Requests int
	// WallTime is the real time the simulation took (for reference only).
	WallTime time.Duration
}

// Fig4Result is the full latency series.
type Fig4Result struct {
	Points []Fig4Point
	// Iterations per run and Runs mirror the paper's 10,000 × 25 setup.
	Iterations, Runs int
}

// Fig4Options sizes the stress test.
type Fig4Options struct {
	// Iterations is socket+GET+close repetitions per run (paper: 10,000).
	Iterations int
	// Runs is how many runs to average (paper: 25).
	Runs int
}

// DefaultFig4Options mirrors the paper's stress test.
func DefaultFig4Options() Fig4Options {
	return Fig4Options{Iterations: 10000, Runs: 25}
}

// stressServerAddr is the local host serving the 297-byte page.
var stressServerAddr = netip.MustParseAddr("10.66.0.1")

// stressAPK builds the network stress-test app: it repeatedly creates a
// socket, issues one HTTP GET for the static page, and closes the socket —
// the worst case for per-socket overhead.
func stressAPK() (*dex.APK, []android.Functionality) {
	apk := &dex.APK{
		PackageName: "com.bp.stress",
		Label:       "bp-stress",
		Category:    "TOOLS",
		VersionCode: 1,
		Dexes: []*dex.File{{Classes: []dex.ClassDef{{
			Package: "com/bp/stress",
			Name:    "StressLoop",
			Super:   "java/lang/Object",
			Methods: []dex.MethodDef{
				{Name: "run", Proto: "()V", File: "StressLoop.java", StartLine: 10, EndLine: 60},
				{Name: "get", Proto: "(Ljava/lang/String;)V", File: "StressLoop.java", StartLine: 70, EndLine: 100},
			},
		}}}},
	}
	funcs := []android.Functionality{{
		Name:      "get",
		Desirable: true,
		CallPath: []dex.Frame{
			{Class: "com/bp/stress/StressLoop", Method: "run", File: "StressLoop.java", Line: 20},
			{Class: "com/bp/stress/StressLoop", Method: "get", File: "StressLoop.java", Line: 75},
		},
		Op: android.NetOp{
			Endpoint: netip.AddrPortFrom(stressServerAddr, 8000),
			Host:     "localhost",
			Method:   "GET",
			Path:     "/index.html",
		},
		Weight: 1,
	}}
	return apk, funcs
}

// fig4Testbed is one configuration's assembled stack.
type fig4Testbed struct {
	app     *android.App
	network *netsim.Network
	model   netsim.LatencyModel
	id      Fig4ConfigID
	// perSocketCost is the device-side virtual cost charged per socket.
	perSocketCost time.Duration
}

// buildFig4Testbed assembles one of the six configurations.
func buildFig4Testbed(id Fig4ConfigID) (*fig4Testbed, error) {
	model := netsim.DefaultLatencyModel()
	apk, funcs := stressAPK()

	// The stress test runs the legacy plain-payload wire format: the
	// calibrated latency model charges its per-packet costs (NFQUEUE hop,
	// enforcement, sanitizing) once per HTTP request, matching how the
	// paper measured per-request latency — wrapping each request in a
	// SYN/data/FIN train would triple those charges and break the
	// calibration against Fig. 4's published numbers.
	kernelCfg := kernel.Config{RawPayloads: true}
	xposed := false
	switch id {
	case ConfigStaticInject, ConfigStaticGetStack, ConfigDynamic:
		kernelCfg.AllowUnprivilegedIPOptions = true
		xposed = true
	}
	device := android.NewDevice(android.Config{
		Addr:            netip.MustParseAddr("10.66.0.2"),
		Kernel:          kernelCfg,
		XposedInstalled: xposed,
	})

	tb := &fig4Testbed{model: model, id: id}

	nic := netsim.ModeTAP
	if id == ConfigDefaultSLIRP {
		nic = netsim.ModeSLIRP
	}
	tb.network = netsim.NewNetwork(nic, model)
	tb.network.AddServer(&netsim.Server{
		Addr:     stressServerAddr,
		Name:     "stress-local",
		Handler:  httpsim.StaticHandler(httpsim.StaticPage()),
		Internal: true,
	})

	db := analyzer.NewDatabase()
	if err := db.Add(apk); err != nil {
		return nil, err
	}

	// Gateway per configuration.
	switch id {
	case ConfigTAPNFQueue, ConfigStaticInject, ConfigStaticGetStack:
		tb.network.Gateway = netsim.NewGateway(netsim.GatewayConfig{Passthrough: true})
	case ConfigDynamic:
		engine, err := policy.NewEngine(nil, policy.VerdictAllow)
		if err != nil {
			return nil, err
		}
		enf := enforcer.New(enforcer.Config{}, db, engine)
		tb.network.Gateway = netsim.NewGateway(netsim.GatewayConfig{
			Enforcer:  enf,
			Sanitizer: sanitizer.New(sanitizer.Config{}),
		})
	}

	// Device-side instrumentation per configuration. The hooks do the real
	// work (static option injection, stack walking, dynamic encoding) and
	// the harness charges the calibrated virtual cost per socket.
	switch id {
	case ConfigStaticInject:
		static := []ipv4.Option{{Type: ipv4.OptSecurity, Data: []byte("BORDERPATROL-STATIC-OPTIONS-0001")}}
		device.Stack().RegisterConnectHook(func(sock *netstack.JavaSocket) {
			_ = device.Kernel().SetIPOptions(sock.FD(), 0, static)
		})
		tb.perSocketCost = model.XposedHookPerSocket + model.SetsockoptPerSocket
	case ConfigStaticGetStack:
		static := []ipv4.Option{{Type: ipv4.OptSecurity, Data: []byte("BORDERPATROL-STATIC-OPTIONS-0001")}}
		device.Stack().RegisterConnectHook(func(sock *netstack.JavaSocket) {
			if a, ok := device.AppByUID(sock.OwnerUID); ok {
				_ = a.Thread().GetStackTrace() // real stack walk, result unused
			}
			_ = device.Kernel().SetIPOptions(sock.FD(), 0, static)
		})
		tb.perSocketCost = model.XposedHookPerSocket + model.GetStackTracePerSocket + model.SetsockoptPerSocket
	case ConfigDynamic:
		manager := contextmgr.New(device)
		if err := device.LoadModule(manager); err != nil {
			return nil, err
		}
		tb.perSocketCost = model.XposedHookPerSocket + model.GetStackTracePerSocket +
			model.EncodePerSocket + model.SetsockoptPerSocket
	}

	app, err := device.InstallApp(apk, funcs, android.ProfileWork)
	if err != nil {
		return nil, err
	}
	tb.app = app
	return tb, nil
}

// RunFig4Config measures one configuration: iterations × (socket + GET +
// close) and returns the mean virtual latency per request.
func RunFig4Config(id Fig4ConfigID, opts Fig4Options) (Fig4Point, error) {
	if opts.Iterations <= 0 || opts.Runs <= 0 {
		return Fig4Point{}, fmt.Errorf("fig4: invalid options %+v", opts)
	}
	tb, err := buildFig4Testbed(id)
	if err != nil {
		return Fig4Point{}, err
	}
	wallStart := time.Now()
	var total time.Duration
	requests := 0
	for run := 0; run < opts.Runs; run++ {
		for it := 0; it < opts.Iterations; it++ {
			start := tb.network.Clock.Now()
			res, err := tb.app.Invoke("get")
			if err != nil {
				return Fig4Point{}, fmt.Errorf("fig4 %s: %w", id, err)
			}
			// Device-side per-socket cost (hooks ran during Invoke).
			tb.network.Clock.Advance(tb.perSocketCost)
			for _, pkt := range res.Packets {
				d := tb.network.Deliver(pkt)
				if !d.Delivered {
					return Fig4Point{}, fmt.Errorf("fig4 %s: packet dropped at %s", id, d.Stage)
				}
				if d.Response == nil || d.Response.Status != 200 {
					return Fig4Point{}, fmt.Errorf("fig4 %s: bad response", id)
				}
			}
			total += tb.network.Clock.Now() - start
			requests++
		}
	}
	return Fig4Point{
		Config:      id,
		MeanLatency: total / time.Duration(requests),
		Requests:    requests,
		WallTime:    time.Since(wallStart),
	}, nil
}

// RunFig4 measures all six configurations.
func RunFig4(opts Fig4Options) (*Fig4Result, error) {
	res := &Fig4Result{Iterations: opts.Iterations, Runs: opts.Runs}
	for _, id := range AllFig4Configs() {
		p, err := RunFig4Config(id, opts)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Format renders the Fig. 4 series with the paper's headline deltas.
func (r *Fig4Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — mean HTTP GET latency per configuration (%d iterations × %d runs)\n", r.Iterations, r.Runs)
	fmt.Fprintf(&b, "%-28s %-14s\n", "configuration", "latency (ms)")
	byID := make(map[Fig4ConfigID]time.Duration, len(r.Points))
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-28s %-14.2f\n", p.Config, float64(p.MeanLatency)/float64(time.Millisecond))
		byID[p.Config] = p.MeanLatency
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if base, full := byID[ConfigDefaultSLIRP], byID[ConfigDynamic]; base > 0 && full > 0 {
		fmt.Fprintf(&b, "NFQUEUE hop (ii→iii):      +%.2f ms (paper ≈ +1 ms)\n", ms(byID[ConfigTAPNFQueue]-byID[ConfigDefaultTAP]))
		fmt.Fprintf(&b, "getStackTrace (iv→v):      +%.2f ms (paper ≈ +1.6 ms)\n", ms(byID[ConfigStaticGetStack]-byID[ConfigStaticInject]))
		fmt.Fprintf(&b, "total overhead (i→vi):     +%.2f ms (paper < 2.5 ms)\n", ms(full-base))
		fmt.Fprintf(&b, "relative overhead (vi/i):  %.2fx (paper ≈ 2x)\n", float64(full)/float64(base))
	}
	return b.String()
}

// KeepAlivePoint is one row of the amortization sweep (§VI-D's closing
// argument: per-socket cost amortizes over keep-alive connections).
type KeepAlivePoint struct {
	RequestsPerSocket int
	MeanPerRequest    time.Duration
}

// RunKeepAliveAmortization sweeps requests-per-socket on the full
// BorderPatrol configuration.
func RunKeepAliveAmortization(requestsPerSocket []int, iterations int) ([]KeepAlivePoint, error) {
	if iterations <= 0 {
		return nil, fmt.Errorf("fig4: invalid iterations %d", iterations)
	}
	out := make([]KeepAlivePoint, 0, len(requestsPerSocket))
	for _, k := range requestsPerSocket {
		if k <= 0 {
			return nil, fmt.Errorf("fig4: invalid requests-per-socket %d", k)
		}
		tb, err := buildFig4Testbed(ConfigDynamic)
		if err != nil {
			return nil, err
		}
		// Rewire the stress functionality for k keep-alive requests.
		fn, _ := tb.app.Functionality("get")
		fn.Op.Requests = k
		var total time.Duration
		requests := 0
		for it := 0; it < iterations; it++ {
			start := tb.network.Clock.Now()
			res, err := tb.app.Invoke("get")
			if err != nil {
				return nil, err
			}
			tb.network.Clock.Advance(tb.perSocketCost) // once per socket
			for _, pkt := range res.Packets {
				if d := tb.network.Deliver(pkt); !d.Delivered {
					return nil, fmt.Errorf("keep-alive: dropped at %s", d.Stage)
				}
				requests++
			}
			total += tb.network.Clock.Now() - start
		}
		out = append(out, KeepAlivePoint{
			RequestsPerSocket: k,
			MeanPerRequest:    total / time.Duration(requests),
		})
	}
	return out, nil
}

// FormatKeepAlive renders the amortization sweep.
func FormatKeepAlive(points []KeepAlivePoint) string {
	var b strings.Builder
	b.WriteString("Keep-alive amortization (§VI-D) — full BorderPatrol, per-request latency\n")
	fmt.Fprintf(&b, "%-22s %-14s\n", "requests per socket", "latency (ms)")
	for _, p := range points {
		fmt.Fprintf(&b, "%-22d %-14.2f\n", p.RequestsPerSocket, float64(p.MeanPerRequest)/float64(time.Millisecond))
	}
	b.WriteString("per-socket tagging cost amortizes as sockets serve more requests\n")
	return b.String()
}
