// Package experiments contains one reproduction harness per table and
// figure in the paper's evaluation (§VI) plus the discussion's empirical
// claims (§VII). Each experiment assembles the full system — provisioned
// device, Context Manager, gateway with Policy Enforcer and Packet
// Sanitizer, simulated enterprise network — runs the paper's workload, and
// returns a typed result with a paper-style textual rendering.
package experiments

import (
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"time"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/android"
	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/audit"
	"borderpatrol/internal/contextmgr"
	"borderpatrol/internal/dataplane"
	"borderpatrol/internal/devctx"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/httpsim"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/metrics"
	"borderpatrol/internal/netsim"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/policystore"
	"borderpatrol/internal/sanitizer"
	"borderpatrol/internal/transport"
)

// Testbed is a fully assembled BorderPatrol deployment.
type Testbed struct {
	Device   *android.Device
	Manager  *contextmgr.Manager
	DB       *analyzer.Database
	Engine   *policy.Engine
	Enforcer *enforcer.Enforcer
	Network  *netsim.Network
	// Context is the gateway's device-context source (always built, wired
	// into the enforcer when enforcement is on). The provisioned device
	// reports into it; device pools can bind to it too.
	Context *devctx.Source
	// Audit is the gateway's asynchronous enforcement audit trail (only
	// wired when enforcement is on).
	Audit *audit.Log
	// Policy is the hot-reload policy store (nil unless the testbed was
	// built with a PolicySource).
	Policy *policystore.Store
	// Apps are the installed corpus apps in install order.
	Apps []*android.App
	// Corpus preserves the generator metadata per installed app.
	Corpus []*apkgen.App
	// Metrics is the registry every assembled component registered its
	// instruments on; render it with WritePrometheus or walk Snapshot.
	Metrics *metrics.Registry
}

// TestbedConfig assembles a deployment.
type TestbedConfig struct {
	// Rules is the initial policy (may be nil).
	Rules []policy.Rule
	// DefaultVerdict is the engine default (VerdictAllow for observation
	// phases, VerdictDrop for whitelist postures).
	DefaultVerdict policy.Verdict
	// EnforcementOn wires the Policy Enforcer into the gateway; when false
	// the gateway only sanitizes (observation / baseline runs).
	EnforcementOn bool
	// AllowUntagged admits untagged packets at the enforcer.
	AllowUntagged bool
	// NIC selects the emulator network mode (TAP for the paper's testbed).
	NIC netsim.NICMode
	// DisableFlowCache turns off per-flow verdict caching (on by default
	// when enforcement is on; baselines that measure the uncached pipeline
	// set this).
	DisableFlowCache bool
	// GatewayWorkers sizes the batched per-core queue drain (0 = GOMAXPROCS).
	GatewayWorkers int
	// AuditWriter receives the enforcement audit as JSON lines (nil keeps
	// only counters and the in-memory tail).
	AuditWriter io.Writer
	// PolicySource feeds the engine from an external policy backend (file,
	// HTTP, static) instead of Rules. The initial document loads
	// synchronously — a broken initial policy fails NewTestbed — and later
	// changes hot-swap atomically with last-good fallback.
	PolicySource policystore.Source
	// PolicyPoll starts background hot reload at this interval when > 0
	// (manual Testbed.Policy.Reload() otherwise). Requires PolicySource.
	PolicyPoll time.Duration
	// LegacyPayloads runs the device on the pre-transport wire format:
	// payloads ride directly in the IPv4 payload with no TCP/UDP header
	// and no SYN/FIN lifecycle. Used by the transport-equivalence
	// regression, which proves both wire formats produce identical
	// workload verdicts.
	LegacyPayloads bool
	// Faults arms the network with a deterministic fault plan at
	// construction (nil leaves the wire perfect, as before).
	Faults *netsim.FaultPlan
	// FlowTTL bounds flow-verdict cache entries in virtual time; zero
	// keeps the pre-soak behaviour (no TTL, eviction pressure only).
	FlowTTL time.Duration
	// PolicyMaxStale enables the policy store's staleness deadline, and
	// PolicyFailMode selects the degraded posture past it. Requires
	// PolicySource.
	PolicyMaxStale time.Duration
	PolicyFailMode policystore.FailMode
	// PolicyVirtualTime drives the staleness clock from the network's
	// virtual clock instead of wall time, so harnesses can age the policy
	// by hours in microseconds.
	PolicyVirtualTime bool
	// DisableCapture turns the network's packet-capture logs off (they
	// clone every packet — unbounded memory over a soak run).
	DisableCapture bool
	// Dataplane compiles hot rules and established-flow verdicts into the
	// per-core match-action stage probed below the enforcer queue. Requires
	// EnforcementOn and the flow cache (ignored when either is off).
	Dataplane bool
}

// NewTestbed provisions a device, loads the Context Manager, analyzes and
// installs every corpus app, and stands up the gateway and network with one
// server per endpoint the corpus references.
func NewTestbed(corpus []*apkgen.App, cfg TestbedConfig) (*Testbed, error) {
	device := android.NewDevice(android.Config{
		Addr: netip.MustParseAddr("10.66.0.2"),
		Kernel: kernel.Config{
			AllowUnprivilegedIPOptions: true,
			SetOptionsOncePerSocket:    true,
			RawPayloads:                cfg.LegacyPayloads,
		},
		XposedInstalled: true,
	})
	manager := contextmgr.New(device)
	if err := device.LoadModule(manager); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	db := analyzer.NewDatabase()
	defV := cfg.DefaultVerdict
	if defV == 0 {
		defV = policy.VerdictAllow
	}
	engine, err := policy.NewEngine(cfg.Rules, defV)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	tb := &Testbed{
		Device: device, Manager: manager, DB: db, Engine: engine,
		Corpus: corpus,
	}

	// The network comes up before the policy store so the store's
	// staleness clock can read virtual time.
	nic := cfg.NIC
	if nic == 0 {
		nic = netsim.ModeTAP
	}
	tb.Network = netsim.NewNetwork(nic, netsim.DefaultLatencyModel())
	if cfg.DisableCapture {
		tb.Network.SetCapture(false)
	}
	if cfg.Faults != nil {
		tb.Network.InstallFaults(*cfg.Faults)
	}

	if cfg.PolicySource != nil {
		if len(cfg.Rules) > 0 {
			return nil, fmt.Errorf("experiments: TestbedConfig.Rules and PolicySource are mutually exclusive")
		}
		storeCfg := policystore.Config{
			Source:   cfg.PolicySource,
			Engine:   engine,
			Poll:     cfg.PolicyPoll,
			MaxStale: cfg.PolicyMaxStale,
			FailMode: cfg.PolicyFailMode,
		}
		if cfg.PolicyVirtualTime {
			storeCfg.Now = tb.Network.Clock.Now
		}
		store, err := policystore.New(storeCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		if err := store.Load(); err != nil {
			return nil, fmt.Errorf("experiments: initial policy: %w", err)
		}
		// Started at the very end of construction: no goroutine to leak on
		// the error paths below.
		tb.Policy = store
	}

	gwCfg := netsim.GatewayConfig{
		Sanitizer: sanitizer.New(sanitizer.Config{}),
		Workers:   cfg.GatewayWorkers,
		Clock:     tb.Network.Clock,
	}
	tb.Context = devctx.NewSource(tb.Network.Clock)
	device.BindContext(tb.Context)
	if cfg.EnforcementOn {
		tb.Audit = audit.New(cfg.AuditWriter, 256)
		enfCfg := enforcer.Config{
			AllowUntagged: cfg.AllowUntagged,
			Audit:         tb.Audit,
			Context:       tb.Context,
			Clock:         tb.Network.Clock,
		}
		if !cfg.DisableFlowCache {
			enfCfg.Flows = enforcer.NewFlowCache(flowtable.Config{
				Clock: tb.Network.Clock,
				TTL:   cfg.FlowTTL,
			})
		}
		tb.Enforcer = enforcer.New(enfCfg, db, engine)
		gwCfg.Enforcer = tb.Enforcer
		if cfg.Dataplane && !cfg.DisableFlowCache {
			cores := cfg.GatewayWorkers
			if cores <= 0 {
				cores = runtime.GOMAXPROCS(0)
			}
			gwCfg.Dataplane = dataplane.New(dataplane.Config{
				Cores: cores,
				TTL:   cfg.FlowTTL,
				Clock: tb.Network.Clock,
			}, tb.Enforcer)
		}
	}
	tb.Network.Gateway = netsim.NewGateway(gwCfg)

	seenEndpoints := make(map[netip.Addr]struct{})
	for _, ga := range corpus {
		if err := db.Add(ga.APK); err != nil {
			return nil, fmt.Errorf("experiments: analyze %s: %w", ga.APK.PackageName, err)
		}
		app, err := device.InstallApp(ga.APK, ga.Functionalities, android.ProfileWork)
		if err != nil {
			return nil, fmt.Errorf("experiments: install %s: %w", ga.APK.PackageName, err)
		}
		tb.Apps = append(tb.Apps, app)
		for _, f := range ga.Functionalities {
			addr := f.Op.Endpoint.Addr()
			if _, ok := seenEndpoints[addr]; ok {
				continue
			}
			seenEndpoints[addr] = struct{}{}
			tb.Network.AddServer(&netsim.Server{
				Addr:    addr,
				Name:    f.Op.Host,
				Handler: httpsim.StaticHandler(httpsim.StaticPage()),
			})
		}
	}
	// Registration before Start: no poller goroutine races the registry.
	tb.Metrics = metrics.NewRegistry()
	if tb.Enforcer != nil {
		tb.Enforcer.RegisterMetrics(tb.Metrics)
	}
	tb.Network.Gateway.RegisterMetrics(tb.Metrics)
	tb.Network.RegisterMetrics(tb.Metrics)
	tb.Audit.RegisterMetrics(tb.Metrics)
	if tb.Policy != nil {
		tb.Policy.RegisterMetrics(tb.Metrics)
	}
	if tb.Policy != nil {
		tb.Policy.Start()
	}
	return tb, nil
}

// DeliverAll pushes a batch of packets through the network's batched
// gateway drain, returning how many were delivered and how many dropped.
func (tb *Testbed) DeliverAll(pkts []*ipv4.Packet) (delivered, dropped int) {
	for _, d := range tb.Network.DeliverBatch(pkts) {
		if d.Delivered {
			delivered++
		} else {
			dropped++
		}
	}
	return delivered, dropped
}

// isDataPacket reports whether a packet carries application data — an
// HTTP request in a TCP data segment, a UDP datagram, or a legacy plain
// payload (no transport header at all). TCP control segments (SYN, FIN,
// RST) return false. Experiments that score workload outcomes count data
// packets so their numbers are identical whether the testbed speaks the
// transport wire format or the legacy one — the verdict-equivalence
// property the transport refactor preserves by construction (every packet
// of a flow carries the same tag, so control segments share their flow's
// verdict).
func isDataPacket(pkt *ipv4.Packet) bool {
	info, ok := transport.PeekPacket(pkt)
	if !ok {
		return true // legacy payload (or fragment): all data
	}
	if info.Proto == ipv4.ProtoTCP {
		return len(pkt.Payload) > info.DataOff
	}
	return true
}

// dataPackets filters a burst down to its data packets.
func dataPackets(pkts []*ipv4.Packet) []*ipv4.Packet {
	out := make([]*ipv4.Packet, 0, len(pkts))
	for _, pkt := range pkts {
		if isDataPacket(pkt) {
			out = append(out, pkt)
		}
	}
	return out
}

// Close stops the policy store's hot-reload poller (when one is wired) and
// flushes and stops the audit pipeline (a no-op for observation testbeds
// without enforcement).
func (tb *Testbed) Close() error {
	if tb.Policy != nil {
		tb.Policy.Close()
	}
	return tb.Audit.Close()
}
