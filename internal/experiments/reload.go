package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/policystore"
	"borderpatrol/internal/trackers"
)

// This file implements the reload-under-load experiment: the paper's
// central-reconfiguration design goal (§IV) stress-tested at packet rate.
// A policy store hot-swaps two rule sets through a file backend —
// periodically injecting malformed candidates — while workers saturate the
// enforcer's batched pipeline. Every verdict observed mid-swap must be
// consistent with either the outgoing or the incoming rule set; a verdict
// matching neither would mean a packet saw a torn (partially applied)
// policy, which the atomic compiled-snapshot swap and the flow cache's
// generation keying are designed to make impossible.

// ReloadConfig parameterizes the experiment.
type ReloadConfig struct {
	// Apps sizes the generated corpus (default 8).
	Apps int
	// Workers is the number of concurrent traffic generators (default 4).
	Workers int
	// Swaps is how many reload cycles the store runs mid-traffic
	// (default 150).
	Swaps int
	// MalformedEvery injects a malformed candidate every n-th cycle
	// (default 5; negative disables).
	MalformedEvery int
	// Seed drives corpus generation (default 2019).
	Seed int64
	// Dir hosts the hot-reloaded policy file (default: a fresh temp dir,
	// removed afterwards).
	Dir string
}

// DefaultReloadConfig returns the standard configuration.
func DefaultReloadConfig() ReloadConfig {
	return ReloadConfig{Apps: 8, Workers: 4, Swaps: 150, MalformedEvery: 5, Seed: 2019}
}

// ReloadResult reports the reload-under-load run.
type ReloadResult struct {
	// Packets is the size of the replayed traffic pool.
	Packets int
	// Processed counts packets enforced across all workers during churn.
	Processed uint64
	// DivergentPool is how many pool packets the two rule sets decide
	// differently — the packets that could expose a torn rule set.
	DivergentPool int
	// Swaps counts rule sets applied during the run (excluding the initial
	// load); RejectedSwaps counts malformed candidates that were refused
	// with the last-good rules kept serving.
	Swaps         uint64
	RejectedSwaps uint64
	// TornVerdicts counts verdicts consistent with neither rule set. The
	// experiment's claim is that this is always zero.
	TornVerdicts uint64
	// VerdictsOld / VerdictsNew split the divergent packets' observed
	// verdicts by which rule set produced them (both nonzero in a healthy
	// run: traffic raced both sides of many swaps).
	VerdictsOld, VerdictsNew uint64
	// GenerationDelta is how far the engine generation moved during churn;
	// the flow cache invalidates on every step, so this must equal Swaps
	// (exactly one bump per applied swap).
	GenerationDelta uint64
	// StoreStats snapshots the policy store; FlowStats the verdict cache.
	StoreStats policystore.Stats
	// FlowStats snapshots the flow cache (StaleDrops are entries discarded
	// because their generation predated a swap).
	FlowStats flowtable.Stats
}

// String renders a paper-style summary.
func (r *ReloadResult) String() string {
	return fmt.Sprintf(
		"reload under load: %d pool packets (%d divergent), %d processed; "+
			"%d swaps + %d rejected; torn verdicts: %d; old/new split %d/%d; "+
			"generation Δ%d; flow cache %d hits / %d stale",
		r.Packets, r.DivergentPool, r.Processed, r.Swaps, r.RejectedSwaps,
		r.TornVerdicts, r.VerdictsOld, r.VerdictsNew, r.GenerationDelta,
		r.FlowStats.Hits, r.FlowStats.StaleDrops)
}

// RunReloadUnderLoad builds a testbed whose engine is fed by a file-backed
// policy store, precomputes every pool packet's verdict under both rule
// sets, then races saturating batched traffic against store reloads.
func RunReloadUnderLoad(cfg ReloadConfig) (*ReloadResult, error) {
	def := DefaultReloadConfig()
	if cfg.Apps <= 0 {
		cfg.Apps = def.Apps
	}
	if cfg.Workers <= 0 {
		cfg.Workers = def.Workers
	}
	if cfg.Swaps <= 0 {
		cfg.Swaps = def.Swaps
	}
	if cfg.MalformedEvery == 0 {
		cfg.MalformedEvery = def.MalformedEvery
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "bp-reload-*")
		if err != nil {
			return nil, fmt.Errorf("reload: %w", err)
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}

	gen := apkgen.DefaultConfig()
	gen.Apps = cfg.Apps
	gen.Seed = cfg.Seed
	corpus, err := apkgen.Generate(gen)
	if err != nil {
		return nil, fmt.Errorf("reload: %w", err)
	}

	// Rule set A denies half the tracker catalog; rule set B denies all of
	// it. Tracker traffic through the catalog's other half therefore flips
	// verdict on every swap.
	catalog := trackers.Catalog()
	var rulesA, rulesB []policy.Rule
	for i, lib := range catalog {
		rule := policy.Rule{Action: policy.Deny, Level: policy.LevelLibrary, Target: lib.Package}
		rulesB = append(rulesB, rule)
		if i%2 == 0 {
			rulesA = append(rulesA, rule)
		}
	}
	docA, docB := policy.FormatPolicy(rulesA), policy.FormatPolicy(rulesB)

	policyPath := filepath.Join(cfg.Dir, "policy.bp")
	if err := os.WriteFile(policyPath, []byte(docA), 0o644); err != nil {
		return nil, fmt.Errorf("reload: %w", err)
	}
	tb, err := NewTestbed(corpus, TestbedConfig{
		EnforcementOn: true,
		PolicySource:  policystore.NewFileSource(policyPath),
		// No background poll: the swapper below drives Reload directly so
		// the swap count is deterministic.
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	// The traffic pool: every functionality of every app, invoked once.
	var pool []*ipv4.Packet
	for i, ga := range corpus {
		for _, fn := range ga.Functionalities {
			res, err := tb.Apps[i].Invoke(fn.Name)
			if err != nil {
				return nil, fmt.Errorf("reload: invoke %s/%s: %w", ga.APK.PackageName, fn.Name, err)
			}
			pool = append(pool, res.Packets...)
		}
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("reload: corpus produced no packets")
	}

	// Precompute each packet's expected verdict under both rule sets with
	// uncached reference enforcers sharing the testbed's database.
	refVerdicts := func(rules []policy.Rule) ([]enforcer.Result, error) {
		eng, err := policy.NewEngine(rules, policy.VerdictAllow)
		if err != nil {
			return nil, err
		}
		ref := enforcer.New(enforcer.Config{}, tb.DB, eng)
		out := make([]enforcer.Result, len(pool))
		for i, pkt := range pool {
			out[i] = ref.Process(pkt)
		}
		return out, nil
	}
	vA, err := refVerdicts(rulesA)
	if err != nil {
		return nil, fmt.Errorf("reload: %w", err)
	}
	vB, err := refVerdicts(rulesB)
	if err != nil {
		return nil, fmt.Errorf("reload: %w", err)
	}

	res := &ReloadResult{Packets: len(pool)}
	for i := range pool {
		if vA[i].Verdict != vB[i].Verdict {
			res.DivergentPool++
		}
	}

	genStart := tb.Engine.Generation()
	appliedStart := tb.Policy.Stats().Applied

	var processed, torn, oldHits, newHits atomic.Uint64
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		defer close(stop)
		docs := [2]string{docB, docA} // first swap moves off the initial A
		for i := 0; i < cfg.Swaps; i++ {
			doc := docs[i%2]
			if cfg.MalformedEvery > 0 && i > 0 && i%cfg.MalformedEvery == 0 {
				doc = "{[deny][library \"torn-candidate\"]}\n"
			}
			if err := os.WriteFile(policyPath, []byte(doc), 0o644); err != nil {
				return
			}
			// Malformed candidates must fail here; that failure (and the
			// last-good keep) is asserted via StoreStats after the run.
			_, _ = tb.Policy.Reload()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out []enforcer.Result
			for {
				select {
				case <-stop:
					return
				default:
				}
				out = tb.Enforcer.ProcessBatch(pool, out)
				processed.Add(uint64(len(out)))
				for i, r := range out {
					matchA := r.Verdict == vA[i].Verdict && r.Cause == vA[i].Cause
					matchB := r.Verdict == vB[i].Verdict && r.Cause == vB[i].Cause
					switch {
					case !matchA && !matchB:
						torn.Add(1)
					case vA[i].Verdict != vB[i].Verdict:
						// Divergent packet: attribute the verdict.
						if matchA {
							oldHits.Add(1)
						} else {
							newHits.Add(1)
						}
					}
				}
			}
		}()
	}
	swapper.Wait()
	wg.Wait()

	res.Processed = processed.Load()
	res.TornVerdicts = torn.Load()
	res.VerdictsOld = oldHits.Load()
	res.VerdictsNew = newHits.Load()
	res.StoreStats = tb.Policy.Stats()
	res.Swaps = res.StoreStats.Applied - appliedStart
	res.RejectedSwaps = res.StoreStats.Failures
	res.GenerationDelta = tb.Engine.Generation() - genStart
	res.FlowStats = tb.Enforcer.Stats().Flow
	return res, nil
}
