package experiments

import (
	"strings"
	"testing"
)

func TestWhitelistPosture(t *testing.T) {
	res, err := RunWhitelist()
	if err != nil {
		t.Fatal(err)
	}
	if res.VettedRules == 0 {
		t.Fatal("vetting produced no rules")
	}
	// Vetted functionality must keep working under default-drop.
	if res.VettedAllowed != res.VettedTotal || res.VettedTotal == 0 {
		t.Fatalf("vetted: %d/%d delivered", res.VettedAllowed, res.VettedTotal)
	}
	// The unvetted chat-attachment path must be blocked by the default.
	if res.UnvettedBlocked != res.UnvettedTotal || res.UnvettedTotal == 0 {
		t.Fatalf("unvetted: %d/%d blocked", res.UnvettedBlocked, res.UnvettedTotal)
	}
	// The repackaged clone is blocked with the unknown-app cause: its hash
	// was never analyzed, so its tags cannot decode.
	if !res.RepackagedBlocked {
		t.Fatal("repackaged app traffic escaped")
	}
	if res.RepackagedCause != "unknown-app" {
		t.Fatalf("repackaged cause = %q, want unknown-app", res.RepackagedCause)
	}
	out := res.Format()
	for _, want := range []string{"Whitelisting", "repackaged app blocked: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q", want)
		}
	}
}
