package experiments

import (
	"fmt"
	"strings"

	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/ioi"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/monkey"
	"borderpatrol/internal/netsim"
)

// Fig3Result reproduces Figure 3 and the §VI-B prevalence statistics: the
// number of apps with 1..N IPs-of-interest, the same-package share among
// IoI apps, and the cross-package share among IoIs.
type Fig3Result struct {
	// CorpusSize is how many apps were exercised.
	CorpusSize int
	// Events is the monkey event count per app.
	Events int
	// Analysis is the raw IoI analysis.
	Analysis *ioi.Analysis
	// PaperHistogram is the published Fig. 3 series for side-by-side
	// comparison (apps with 1,2,3,4,5 IoIs).
	PaperHistogram []int
	// PaperAppsWithIoI is the published count of apps with >= 1 IoI (218).
	PaperAppsWithIoI int
	// MeanCoverage is the average monkey functionality coverage.
	MeanCoverage float64
}

// Fig3Config parameterizes the corpus experiment.
type Fig3Config struct {
	// Corpus overrides the generated corpus (nil generates cfg.CorpusCfg).
	Corpus []*apkgen.App
	// CorpusCfg generates the corpus when Corpus is nil.
	CorpusCfg apkgen.Config
	// MonkeyEvents per app (paper: 5,000).
	MonkeyEvents int
	// MonkeySeed bases per-app seeds.
	MonkeySeed int64
}

// DefaultFig3Config is the paper-scale configuration: 2,000 apps and 5,000
// events each.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		CorpusCfg:    apkgen.DefaultConfig(),
		MonkeyEvents: 5000,
		MonkeySeed:   1,
	}
}

// RunFig3 exercises every corpus app with the monkey while the Context
// Manager tags traffic, captures device-egress packets, and computes the
// IoI analysis. Enforcement is off — this is the observation phase.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	corpus := cfg.Corpus
	if corpus == nil {
		var err error
		corpus, err = apkgen.Generate(cfg.CorpusCfg)
		if err != nil {
			return nil, err
		}
	}
	tb, err := NewTestbed(corpus, TestbedConfig{EnforcementOn: false, NIC: netsim.ModeTAP})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	var all []*ipv4.Packet
	var coverage float64
	for i, app := range tb.Apps {
		rep, err := monkey.Run(app, monkey.Config{
			Events:             cfg.MonkeyEvents,
			NetworkTriggerProb: 0.02,
			Seed:               cfg.MonkeySeed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("fig3: app %s: %w", app.APK.PackageName, err)
		}
		all = append(all, rep.Packets...)
		coverage += rep.Coverage
	}
	analysis, err := ioi.Analyze(all, tb.DB)
	if err != nil {
		return nil, err
	}
	return &Fig3Result{
		CorpusSize:       len(tb.Apps),
		Events:           cfg.MonkeyEvents,
		Analysis:         analysis,
		PaperHistogram:   []int{152, 53, 8, 3, 2},
		PaperAppsWithIoI: 218,
		MeanCoverage:     coverage / float64(len(tb.Apps)),
	}, nil
}

// Format renders the Fig. 3 histogram alongside the paper's numbers.
func (r *Fig3Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — apps with N IPs-of-Interest (corpus: %d apps, %d monkey events each)\n", r.CorpusSize, r.Events)
	fmt.Fprintf(&b, "%-18s %-12s %-12s\n", "IoIs per app", "measured", "paper")
	for i := 1; i <= 5; i++ {
		paper := 0
		if i-1 < len(r.PaperHistogram) {
			paper = r.PaperHistogram[i-1]
		}
		fmt.Fprintf(&b, "%-18d %-12d %-12d\n", i, r.Analysis.Histogram[i], paper)
	}
	over5 := 0
	for k, v := range r.Analysis.Histogram {
		if k > 5 {
			over5 += v
		}
	}
	if over5 > 0 {
		fmt.Fprintf(&b, "%-18s %-12d %-12s\n", ">5", over5, "-")
	}
	fmt.Fprintf(&b, "apps with >=1 IoI: measured %d, paper %d\n", r.Analysis.AppsWithIoI, r.PaperAppsWithIoI)
	fmt.Fprintf(&b, "same-package share of IoI apps: measured %.0f%%, paper 75%%\n", 100*r.Analysis.SamePackageShare())
	fmt.Fprintf(&b, "cross-package share of IoIs:    measured %.0f%%, paper 25%%\n", 100*r.Analysis.CrossPackageShare())
	fmt.Fprintf(&b, "mean monkey functionality coverage: %.2f (paper's numbers are a lower bound under partial coverage)\n", r.MeanCoverage)
	return b.String()
}
