package experiments

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/netsim"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/transport"
)

// This file implements the contextual-policy experiment: risk-scored
// contextual predicates (network trust class, posture, impossible travel)
// enforced over a pooled device population, a mid-run context flip that
// must invalidate every affected cached verdict with zero stale allows,
// and a cache-hit latency measurement proving the contextual dimension
// rides the ~100 ns verdict cache for free. Machine-readable output goes
// to BENCH_context.json.

// contextPolicyDoc is the experiment's contextual policy: no access rules
// (default allow), risk weights per scenario, warn at 40, block at 100.
// Scenario scores: trusted −30 (clean), cellular 30 (clean), unknown 60
// (warn), trusted + impossible travel −30+130 = 100 (block).
const contextPolicyDoc = `
{[risk][network]["unknown"][60]}
{[risk][network]["cellular"][30]}
{[risk][network]["trusted"][-30]}
{[risk][travel]["impossible"][130]}
{[threshold][warn][40]}
{[threshold][block][100]}
`

// Context scenario names.
const (
	scenarioTrusted    = "trusted"
	scenarioCellular   = "cellular"
	scenarioUnknown    = "unknown"
	scenarioImpossible = "impossible-travel"
)

// contextScenarios lists the mixed device population in round-robin
// assignment order.
var contextScenarios = []string{scenarioTrusted, scenarioCellular, scenarioUnknown, scenarioImpossible}

// ContextRunConfig sizes the contextual-policy experiment.
type ContextRunConfig struct {
	// Devices is the pooled virtual device population (default 64),
	// split round-robin across the four scenarios.
	Devices int
	// HitIterations sizes the cache-hit latency measurement (default
	// 200_000 packets).
	HitIterations int
	// Seed drives corpus generation (default 2019).
	Seed int64
}

// DefaultContextRunConfig returns the standard scale.
func DefaultContextRunConfig() ContextRunConfig {
	return ContextRunConfig{Devices: 64, HitIterations: 200_000, Seed: 2019}
}

// ContextScenarioReport is one scenario's slice of the run.
type ContextScenarioReport struct {
	// Name is the scenario (trusted, cellular, unknown, impossible-travel).
	Name string `json:"name"`
	// Devices is how many pool devices ran the scenario.
	Devices int `json:"devices"`
	// DataPackets / Delivered / Dropped score the scenario's data packets
	// through the gateway (control segments share their flow's fate and
	// are excluded, as in every other experiment).
	DataPackets int `json:"data_packets"`
	Delivered   int `json:"delivered"`
	Dropped     int `json:"dropped"`
}

// ContextBenchResult reports the contextual-policy experiment. Check
// asserts its invariants.
type ContextBenchResult struct {
	Scenarios []ContextScenarioReport `json:"scenarios"`

	// Engine risk counters after the run.
	RiskEvaluations uint64 `json:"risk_evaluations"`
	RiskWarns       uint64 `json:"risk_warns"`
	RiskBlocks      uint64 `json:"risk_blocks"`

	// Context-source accounting.
	ContextGeneration uint64            `json:"context_generation"`
	Invalidations     map[string]uint64 `json:"invalidations"`

	// Mid-run flip: FlippedDevices trusted devices roamed to an unknown
	// network and observed an impossible-travel fix; their cached allows
	// must die on the very next packet. StaleAllows counts post-flip
	// packets still allowed from a stale cached verdict — the acceptance
	// criterion is zero. PostFlipDrops counts the re-evaluated drops.
	FlippedDevices int `json:"flipped_devices"`
	StaleAllows    int `json:"stale_allows"`
	PostFlipDrops  int `json:"post_flip_drops"`
	// StaleDrops is the flow table's count of generation-mismatch
	// invalidations observed during the run.
	StaleDrops uint64 `json:"stale_drops"`

	// Cache-hit latency with contextual rules loaded and context wired:
	// the per-packet hit path must stay within the PR 2 envelope (~100 ns)
	// because context is folded into the cached verdict, not re-evaluated.
	CacheHitNsPerOp float64 `json:"cache_hit_ns_per_op"`
	CacheHitPackets int     `json:"cache_hit_packets"`
	FlowHits        uint64  `json:"flow_hits"`
	FlowMisses      uint64  `json:"flow_misses"`
}

// Format renders a paper-style summary.
func (r *ContextBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %12s %10s %8s\n", "scenario", "devices", "data pkts", "delivered", "dropped")
	for _, s := range r.Scenarios {
		fmt.Fprintf(&b, "%-18s %8d %12d %10d %8d\n", s.Name, s.Devices, s.DataPackets, s.Delivered, s.Dropped)
	}
	fmt.Fprintf(&b, "risk: %d evaluations, %d warns, %d blocks\n", r.RiskEvaluations, r.RiskWarns, r.RiskBlocks)
	fmt.Fprintf(&b, "context: generation %d, invalidations %v\n", r.ContextGeneration, r.Invalidations)
	fmt.Fprintf(&b, "flip: %d devices flipped, %d stale allows, %d re-evaluated drops, %d stale invalidations\n",
		r.FlippedDevices, r.StaleAllows, r.PostFlipDrops, r.StaleDrops)
	fmt.Fprintf(&b, "cache hit with context: %.1f ns/op over %d packets (%d hits, %d misses)\n",
		r.CacheHitNsPerOp, r.CacheHitPackets, r.FlowHits, r.FlowMisses)
	return b.String()
}

// WriteJSON writes the machine-readable result (BENCH_context.json).
func (r *ContextBenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("context: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Check asserts the experiment's invariants.
func (r *ContextBenchResult) Check() error {
	for _, s := range r.Scenarios {
		switch s.Name {
		case scenarioTrusted, scenarioCellular, scenarioUnknown:
			// Below the block threshold: every data packet delivers
			// (unknown devices warn, but warn never drops).
			if s.Dropped != 0 {
				return fmt.Errorf("context: %s scenario dropped %d packets", s.Name, s.Dropped)
			}
		case scenarioImpossible:
			// At the block threshold: nothing delivers.
			if s.Delivered != 0 {
				return fmt.Errorf("context: impossible-travel scenario delivered %d packets", s.Delivered)
			}
			if s.DataPackets == 0 {
				return fmt.Errorf("context: impossible-travel scenario saw no traffic")
			}
		}
	}
	if r.RiskWarns == 0 {
		return fmt.Errorf("context: no flow warned (unknown-network devices should)")
	}
	if r.RiskBlocks == 0 {
		return fmt.Errorf("context: no flow blocked")
	}
	if r.StaleAllows != 0 {
		return fmt.Errorf("context: %d stale allows served after the context flip", r.StaleAllows)
	}
	if r.PostFlipDrops != r.FlippedDevices {
		return fmt.Errorf("context: %d/%d flipped devices re-evaluated to drop", r.PostFlipDrops, r.FlippedDevices)
	}
	if r.StaleDrops == 0 {
		return fmt.Errorf("context: flow table recorded no stale-generation invalidations")
	}
	if r.Invalidations["network"] == 0 || r.Invalidations["travel"] == 0 {
		return fmt.Errorf("context: invalidation causes incomplete: %v", r.Invalidations)
	}
	// Generous sanity ceiling, not a perf gate (bench/baseline.txt +
	// bp-benchgate own the ±20% envelope): a hit path that re-evaluates
	// context per packet would blow far past this.
	// The ceiling leaves room for race-detector instrumentation (~30x on
	// this path), which the CI context-smoke job runs under.
	if r.CacheHitNsPerOp <= 0 || r.CacheHitNsPerOp > 20_000 {
		return fmt.Errorf("context: cache-hit path at %.1f ns/op", r.CacheHitNsPerOp)
	}
	return nil
}

// withoutTeardown filters a burst down to the packets that keep the flow
// alive: FIN/RST control segments are dropped so the gateway's conntrack
// never tears the flow's cached verdict down — the experiment needs live
// cache entries to prove the context flip invalidates them.
func withoutTeardown(pkts []*ipv4.Packet) []*ipv4.Packet {
	out := make([]*ipv4.Packet, 0, len(pkts))
	for _, pkt := range pkts {
		if info, ok := transport.PeekPacket(pkt); ok && info.Flags&(transport.FlagFIN|transport.FlagRST) != 0 {
			continue
		}
		out = append(out, pkt)
	}
	return out
}

// RunContext stands up a contextual-policy deployment over a pooled device
// population and runs the mixed-scenario workload, the mid-run context
// flip, and the cache-hit measurement.
func RunContext(cfg ContextRunConfig) (*ContextBenchResult, error) {
	def := DefaultContextRunConfig()
	if cfg.Devices <= 0 {
		cfg.Devices = def.Devices
	}
	if cfg.HitIterations <= 0 {
		cfg.HitIterations = def.HitIterations
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}

	rules, err := policy.ParsePolicyString(contextPolicyDoc)
	if err != nil {
		return nil, fmt.Errorf("context: %w", err)
	}
	gen := apkgen.DefaultConfig()
	gen.Apps = 1
	gen.Seed = cfg.Seed
	corpus, err := apkgen.Generate(gen)
	if err != nil {
		return nil, fmt.Errorf("context: %w", err)
	}
	tb, err := NewTestbed(corpus, TestbedConfig{
		EnforcementOn:  true,
		Rules:          rules,
		DefaultVerdict: policy.VerdictAllow,
		DisableCapture: true,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	// The template burst: the app's first functionality, teardown segments
	// stripped so delivered flows stay cached.
	res := &ContextBenchResult{}
	fn := corpus[0].Functionalities[0]
	inv, err := tb.Apps[0].Invoke(fn.Name)
	if err != nil {
		return nil, fmt.Errorf("context: invoke: %w", err)
	}
	template := withoutTeardown(inv.Packets)
	templateData := len(dataPackets(template))

	// The pooled population, bound to the gateway's context source.
	pool, err := netsim.NewDevicePool(netip.MustParsePrefix("10.70.0.0/16"), cfg.Devices)
	if err != nil {
		return nil, fmt.Errorf("context: %w", err)
	}
	pool.BindContext(tb.Context)

	// Provision each device's scenario context before any traffic: context
	// is evaluated at flow admission, so it must be in place at SYN time.
	scenarioOf := func(i int) string { return contextScenarios[i%len(contextScenarios)] }
	for i := 0; i < cfg.Devices; i++ {
		switch scenarioOf(i) {
		case scenarioTrusted:
			pool.SetNetwork(i, policy.NetTrusted)
		case scenarioCellular:
			pool.SetNetwork(i, policy.NetCellular)
		case scenarioUnknown:
			pool.SetNetwork(i, policy.NetUnknown)
		case scenarioImpossible:
			// Trusted network, but the credential teleported: two fixes at
			// the same virtual instant cap the apparent velocity.
			pool.SetNetwork(i, policy.NetTrusted)
			pool.ObserveLocation(i, 52.52, 13.40)  // Berlin
			pool.ObserveLocation(i, 40.71, -74.01) // New York, same instant
		}
	}

	// Phase 1: every device's burst through the batched gateway drain.
	byScenario := map[string]*ContextScenarioReport{}
	for _, name := range contextScenarios {
		byScenario[name] = &ContextScenarioReport{Name: name}
	}
	perDevice := make([][]*ipv4.Packet, cfg.Devices)
	for i := 0; i < cfg.Devices; i++ {
		perDevice[i] = pool.Rewrite(i, template)
		rep := byScenario[scenarioOf(i)]
		rep.Devices++
		rep.DataPackets += templateData
		for j, d := range tb.Network.DeliverBatch(perDevice[i]) {
			if !isDataPacket(perDevice[i][j]) {
				continue
			}
			if d.Delivered {
				rep.Delivered++
			} else {
				rep.Dropped++
			}
		}
	}
	for _, name := range contextScenarios {
		res.Scenarios = append(res.Scenarios, *byScenario[name])
	}

	// Phase 2: cache-hit latency with context armed. The hot packet is a
	// trusted device's data segment whose flow is live in the cache.
	hot := perDevice[0][len(perDevice[0])-1]
	if !isDataPacket(hot) {
		return nil, fmt.Errorf("context: template burst ends in a control segment")
	}
	start := time.Now()
	for i := 0; i < cfg.HitIterations; i++ {
		if out := tb.Enforcer.Process(hot); out.Verdict != policy.VerdictAllow {
			return nil, fmt.Errorf("context: hot trusted flow dropped mid-measurement: %+v", out)
		}
	}
	res.CacheHitNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(cfg.HitIterations)
	res.CacheHitPackets = cfg.HitIterations

	// Phase 3: the mid-run flip. Every trusted device except the hot one
	// roams to an unknown network and teleports (60 + 130 ≥ block): its
	// cached allow must die on the very next packet, with zero stale
	// allows in between.
	for i := 0; i < cfg.Devices; i++ {
		if scenarioOf(i) != scenarioTrusted || i == 0 {
			continue
		}
		pool.SetNetwork(i, policy.NetUnknown)
		pool.ObserveLocation(i, 52.52, 13.40)
		pool.ObserveLocation(i, 35.68, 139.69) // Tokyo, same instant
		res.FlippedDevices++
		out := tb.Enforcer.Process(perDevice[i][len(perDevice[i])-1])
		switch out.Verdict {
		case policy.VerdictAllow:
			res.StaleAllows++
		case policy.VerdictDrop:
			res.PostFlipDrops++
		}
	}

	st := tb.Enforcer.Stats()
	es := tb.Engine.Stats()
	cs := tb.Context.Stats()
	res.RiskEvaluations = es.RiskEvaluations
	res.RiskWarns = es.RiskWarns
	res.RiskBlocks = es.RiskBlocks
	res.ContextGeneration = cs.Generation
	res.Invalidations = cs.Invalidations
	res.StaleDrops = st.Flow.StaleDrops
	res.FlowHits = st.Flow.Hits
	res.FlowMisses = st.Flow.Misses
	return res, nil
}
