package experiments

import (
	"fmt"
	"net/netip"
	"strings"

	"borderpatrol/internal/android"
	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/extractor"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
)

// WhitelistResult reproduces the §VII whitelisting operating principle:
// administrators vet an app's desired functionality, whitelist exactly
// those method signatures, and default-drop everything else. This inhibits
// unintended app use (the paper's example: file uploads via a word
// processor's chat window) and blocks repackaged apps outright — their apk
// hash differs, so their packets decode to an unknown app.
type WhitelistResult struct {
	// VettedRules is the number of whitelist rules derived from vetting.
	VettedRules int
	// VettedAllowed / VettedTotal score the vetted functionality.
	VettedAllowed, VettedTotal int
	// UnvettedBlocked / UnvettedTotal score everything not vetted.
	UnvettedBlocked, UnvettedTotal int
	// RepackagedBlocked reports whether the repackaged app's traffic died.
	RepackagedBlocked bool
	// RepackagedCause names the enforcement cause for the repackaged app.
	RepackagedCause string
}

// RunWhitelist builds a whitelist posture for a word-processor-like app:
// document sync and template download are vetted; the chat-attachment
// upload path is not. A repackaged clone (same code, different hash —
// a resigned, modified apk) then tries to use the network.
func RunWhitelist() (*WhitelistResult, error) {
	ep := netip.AddrPortFrom(netip.MustParseAddr("198.18.44.1"), 443)
	app := scriptedApp("com.docs.pro", "com/docs/pro", []scriptedFn{
		{name: "doc-sync", desirable: true, class: "SyncService", method: "syncDocuments",
			op: android.NetOp{Endpoint: ep, Host: "sync.docs.pro", Method: "GET", Path: "/docs"}},
		{name: "template-fetch", desirable: true, class: "TemplateStore", method: "fetchTemplate",
			op: android.NetOp{Endpoint: ep, Host: "templates.docs.pro", Method: "GET", Path: "/tpl"}},
		{name: "chat-attach", desirable: false, class: "ChatWindow", method: "sendAttachment",
			op: android.NetOp{Endpoint: ep, Host: "chat.docs.pro", Method: "PUT", Path: "/attach", PayloadBytes: 4096}},
	})

	// Vetting run: the administrator exercises only the desired
	// functionality; the observed method signatures become allow rules.
	tbVet, err := NewTestbed([]*apkgen.App{app}, TestbedConfig{EnforcementOn: false})
	if err != nil {
		return nil, err
	}
	defer tbVet.Close()
	var vetted []*ipv4.Packet
	for _, fn := range app.Functionalities {
		if !fn.Desirable {
			continue
		}
		r, err := tbVet.Apps[0].Invoke(fn.Name)
		if err != nil {
			return nil, err
		}
		vetted = append(vetted, r.Packets...)
	}
	prof, err := extractor.BuildProfile(vetted, tbVet.DB)
	if err != nil {
		return nil, err
	}
	var rules []policy.Rule
	for sig := range prof.Signatures {
		rules = append(rules, policy.Rule{Action: policy.Allow, Level: policy.LevelMethod, Target: sig})
	}
	// Deterministic rule order.
	for i := 0; i < len(rules); i++ {
		for j := i + 1; j < len(rules); j++ {
			if rules[j].Target < rules[i].Target {
				rules[i], rules[j] = rules[j], rules[i]
			}
		}
	}

	// Enforcement posture: whitelist rules + default drop.
	tb, err := NewTestbed([]*apkgen.App{app}, TestbedConfig{
		EnforcementOn:  true,
		Rules:          rules,
		DefaultVerdict: policy.VerdictDrop,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	res := &WhitelistResult{VettedRules: len(rules)}
	for _, fn := range app.Functionalities {
		r, err := tb.Apps[0].Invoke(fn.Name)
		if err != nil {
			return nil, err
		}
		for _, pkt := range r.Packets {
			d := tb.Network.Deliver(pkt)
			if fn.Desirable {
				res.VettedTotal++
				if d.Delivered {
					res.VettedAllowed++
				}
			} else {
				res.UnvettedTotal++
				if !d.Delivered {
					res.UnvettedBlocked++
				}
			}
		}
	}

	// Repackaged clone: identical behaviour, bumped version — a different
	// apk hash that was never analyzed. Installing it on the device (the
	// user side-loaded it) and invoking vetted-looking functionality must
	// still fail: the enforcer cannot decode an unknown app.
	repack := scriptedApp("com.docs.pro.repack", "com/docs/pro", []scriptedFn{
		{name: "doc-sync", desirable: true, class: "SyncService", method: "syncDocuments",
			op: android.NetOp{Endpoint: ep, Host: "sync.docs.pro", Method: "GET", Path: "/docs"}},
	})
	repack.APK.VersionCode = 99
	repackApp, err := tb.Device.InstallApp(repack.APK, repack.Functionalities, android.ProfileWork)
	if err != nil {
		return nil, err
	}
	// The Context Manager tracks it (it is in the work profile), but the
	// gateway's database has no entry for its hash.
	if err := registerContextManagerOnly(tb, repack.APK); err != nil {
		return nil, err
	}
	rr, err := repackApp.Invoke("doc-sync")
	if err != nil {
		return nil, err
	}
	res.RepackagedBlocked = true
	for _, pkt := range rr.Packets {
		d := tb.Network.Deliver(pkt)
		if d.Delivered {
			res.RepackagedBlocked = false
		}
		if d.Enforcement != nil {
			res.RepackagedCause = d.Enforcement.Cause.String()
		}
	}
	return res, nil
}

// registerContextManagerOnly ensures the Context Manager has state for an
// app without adding it to the gateway database (the repackaged app was
// never vetted by the administrator). Installation through the device
// already triggered HandleLoadPackage, so nothing to do — the helper exists
// to make the asymmetry explicit and assert the database stayed clean.
func registerContextManagerOnly(tb *Testbed, apk *dex.APK) error {
	if _, known := tb.DB.LookupTruncated(apk.Truncated()); known {
		return fmt.Errorf("whitelist: repackaged app unexpectedly in database")
	}
	return nil
}

// Format renders the whitelist posture outcome.
func (r *WhitelistResult) Format() string {
	var b strings.Builder
	b.WriteString("Whitelisting posture (§VII operating principles)\n")
	fmt.Fprintf(&b, "vetted method rules: %d (derived from the vetting run)\n", r.VettedRules)
	fmt.Fprintf(&b, "vetted functionality delivered:   %d/%d\n", r.VettedAllowed, r.VettedTotal)
	fmt.Fprintf(&b, "unvetted functionality blocked:   %d/%d (chat-window upload path)\n", r.UnvettedBlocked, r.UnvettedTotal)
	fmt.Fprintf(&b, "repackaged app blocked: %v (cause: %s)\n", r.RepackagedBlocked, r.RepackagedCause)
	return b.String()
}
