package experiments

// Fleet tests: multiple BYOD devices sharing one gateway (the paper's
// Figure 1 shows several provisioned devices behind one enforcement point),
// with the §VII routing story — on-premises traffic hits the gateway
// directly, off-premises work traffic tunnels in over VPN, personal traffic
// rides the mobile network.

import (
	"fmt"
	"net/netip"
	"testing"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/android"
	"borderpatrol/internal/contextmgr"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/httpsim"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/netsim"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/sanitizer"
	"borderpatrol/internal/tag"
)

// fleetDevice is one provisioned device with its own Context Manager.
type fleetDevice struct {
	device  *android.Device
	manager *contextmgr.Manager
	app     *android.App
}

func fleetAPK(n int) *dex.APK {
	return &dex.APK{
		PackageName: fmt.Sprintf("com.corp.device%d", n),
		VersionCode: 1,
		Dexes: []*dex.File{{Classes: []dex.ClassDef{
			{
				Package: "com/corp/work",
				Name:    "Client",
				Methods: []dex.MethodDef{
					{Name: "sync", Proto: "()V", File: "C.java", StartLine: 1, EndLine: 10},
				},
			},
			{
				Package: "com/flurry/sdk",
				Name:    "Agent",
				Methods: []dex.MethodDef{
					{Name: "beacon", Proto: "()V", File: "A.java", StartLine: 1, EndLine: 10},
				},
			},
		}}},
	}
}

func fleetFuncs(ep netip.AddrPort) []android.Functionality {
	return []android.Functionality{
		{
			Name:      "sync",
			Desirable: true,
			CallPath:  []dex.Frame{{Class: "com/corp/work/Client", Method: "sync", File: "C.java", Line: 3}},
			Op:        android.NetOp{Endpoint: ep, Method: "GET"},
		},
		{
			Name:     "beacon",
			CallPath: []dex.Frame{{Class: "com/flurry/sdk/Agent", Method: "beacon", File: "A.java", Line: 3}},
			Op:       android.NetOp{Endpoint: ep, Method: "POST", PayloadBytes: 128},
		},
	}
}

func TestFleetSharedGatewayEnforcement(t *testing.T) {
	const devices = 4
	ep := netip.AddrPortFrom(netip.MustParseAddr("198.18.70.1"), 443)

	// One shared database + gateway for the whole fleet.
	db := analyzer.NewDatabase()
	engine, err := policy.NewEngine([]policy.Rule{
		{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"},
	}, policy.VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	enf := enforcer.New(enforcer.Config{}, db, engine)
	network := netsim.NewNetwork(netsim.ModeTAP, netsim.DefaultLatencyModel())
	network.Gateway = netsim.NewGateway(netsim.GatewayConfig{
		Enforcer:  enf,
		Sanitizer: sanitizer.New(sanitizer.Config{}),
	})
	network.AddServer(&netsim.Server{Addr: ep.Addr(), Handler: httpsim.StaticHandler(nil)})

	fleet := make([]*fleetDevice, devices)
	for i := range fleet {
		dev := android.NewDevice(android.Config{
			Addr:            netip.AddrFrom4([4]byte{10, 66, 0, byte(10 + i)}),
			Kernel:          kernel.Config{AllowUnprivilegedIPOptions: true, SetOptionsOncePerSocket: true},
			XposedInstalled: true,
		})
		mgr := contextmgr.New(dev)
		if err := dev.LoadModule(mgr); err != nil {
			t.Fatal(err)
		}
		apk := fleetAPK(i)
		if err := db.Add(apk); err != nil {
			t.Fatal(err)
		}
		app, err := dev.InstallApp(apk, fleetFuncs(ep), android.ProfileWork)
		if err != nil {
			t.Fatal(err)
		}
		fleet[i] = &fleetDevice{device: dev, manager: mgr, app: app}
	}

	// Every device's sync flows; every device's beacon is dropped; the
	// shared enforcer attributes each packet to the right app.
	for i, fd := range fleet {
		route := netsim.RouteDirect
		if i%2 == 1 {
			route = netsim.RouteVPN // off-premises devices tunnel in
		}
		res, err := fd.app.Invoke("sync")
		if err != nil {
			t.Fatal(err)
		}
		d := network.DeliverRoute(res.Packets[0], route)
		if !d.Delivered {
			t.Fatalf("device %d sync dropped via %s: %+v", i, route, d)
		}
		if d.Enforcement == nil || d.Enforcement.AppHash != fd.app.APK.Truncated() {
			t.Fatalf("device %d packet misattributed", i)
		}

		res, err = fd.app.Invoke("beacon")
		if err != nil {
			t.Fatal(err)
		}
		d = network.DeliverRoute(res.Packets[0], route)
		if d.Delivered {
			t.Fatalf("device %d beacon escaped via %s", i, route)
		}
	}

	st := enf.Stats()
	if st.Processed != devices*2 || st.Dropped != devices {
		t.Fatalf("shared enforcer stats = %+v", st)
	}
}

func TestFragmentedTaggedPacketEnforcedPerFragment(t *testing.T) {
	// A tagged packet fragmented in flight keeps its tag in every fragment
	// (copied option), so the enforcer can drop each fragment of a denied
	// flow independently — no reassembly state needed at the gateway.
	apk := fleetAPK(9)
	db := analyzer.NewDatabase()
	if err := db.Add(apk); err != nil {
		t.Fatal(err)
	}
	engine, err := policy.NewEngine([]policy.Rule{
		{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"},
	}, policy.VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	enf := enforcer.New(enforcer.Config{}, db, engine)

	// Build a tagged beacon packet with a large payload and fragment it.
	entry, _ := db.LookupTruncated(apk.Truncated())
	var beaconIdx uint32
	for i, raw := range entry.Signatures {
		sig, err := dex.ParseSignature(raw)
		if err != nil {
			t.Fatal(err)
		}
		if sig.Name == "beacon" {
			beaconIdx = uint32(i)
		}
	}
	pkt := taggedPacketWithPayload(t, apk.Truncated(), beaconIdx, 4000)
	frags, err := ipv4.Fragment(pkt, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("got %d fragments", len(frags))
	}
	for i, f := range frags {
		res := enf.Process(f)
		if res.Verdict != policy.VerdictDrop {
			t.Fatalf("fragment %d not dropped: %+v", i, res)
		}
		if res.Cause != enforcer.DropPolicy {
			t.Fatalf("fragment %d cause = %s", i, res.Cause)
		}
	}
}

func taggedPacketWithPayload(t *testing.T, hash dex.TruncatedHash, idx uint32, size int) *ipv4.Packet {
	t.Helper()
	tg, err := (&tag.Tag{AppHash: hash, Indexes: []uint32{idx}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	pkt := &ipv4.Packet{
		Header: ipv4.Header{
			ID:       31337,
			TTL:      64,
			Protocol: ipv4.ProtoTCP,
			Src:      netip.MustParseAddr("10.66.0.2"),
			Dst:      netip.MustParseAddr("198.18.70.1"),
		},
		Payload: make([]byte, size),
	}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: tg})
	return pkt
}
