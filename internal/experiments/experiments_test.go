package experiments

import (
	"strings"
	"testing"

	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/policy"
)

// smallCorpus keeps unit tests fast; the full 2,000-app run lives in the
// benchmarks and cmd/bp-experiments.
func smallCorpus(t *testing.T, n int) []*apkgen.App {
	t.Helper()
	cfg := apkgen.DefaultConfig()
	cfg.Apps = n
	corpus, err := apkgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

func TestFig3SmallCorpus(t *testing.T) {
	cfg := Fig3Config{
		Corpus:       smallCorpus(t, 200),
		MonkeyEvents: 2000,
		MonkeySeed:   1,
	}
	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorpusSize != 200 {
		t.Fatalf("corpus size = %d", res.CorpusSize)
	}
	if res.Analysis.AppsWithIoI == 0 {
		t.Fatal("no IoIs detected; generator wiring broken")
	}
	// Monotone histogram head: 1-IoI apps dominate.
	if res.Analysis.Histogram[1] < res.Analysis.Histogram[2] {
		t.Fatalf("histogram shape wrong: %v", res.Analysis.Histogram)
	}
	// Same-package share near the calibrated 75%.
	if s := res.Analysis.SamePackageShare(); s < 0.5 || s > 0.95 {
		t.Fatalf("same-package share = %.2f, want ≈0.75", s)
	}
	if res.MeanCoverage < 0.8 {
		t.Fatalf("mean coverage = %.2f; monkey not reaching functionality", res.MeanCoverage)
	}
	out := res.Format()
	for _, want := range []string{"Figure 3", "apps with >=1 IoI", "75%", "25%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q", want)
		}
	}
}

func TestValidationSmall(t *testing.T) {
	cfg := ValidationConfig{
		Corpus:       smallCorpus(t, 300),
		SampleSize:   20,
		TopLibraries: 20,
	}
	res, err := RunValidation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleApps == 0 || res.SampleApps > 20 {
		t.Fatalf("sample = %d", res.SampleApps)
	}
	if res.DenyRules != 1050 {
		t.Fatalf("deny rules = %d, want 1050", res.DenyRules)
	}
	// Headline claims: all tracker packets dropped, no desirable breakage.
	if res.TrackerPacketsTotal == 0 {
		t.Fatal("no tracker traffic exercised")
	}
	if res.TrackerPacketsDropped != res.TrackerPacketsTotal {
		t.Fatalf("tracker packets: %d/%d dropped", res.TrackerPacketsDropped, res.TrackerPacketsTotal)
	}
	if res.DesirableDelivered != res.DesirableTotal {
		t.Fatalf("desirable packets: %d/%d delivered", res.DesirableDelivered, res.DesirableTotal)
	}
	if res.BrokenApps != 0 {
		t.Fatalf("broken apps = %d, want 0", res.BrokenApps)
	}
	out := res.Format()
	if !strings.Contains(out, "tracker packets dropped") {
		t.Error("Format() incomplete")
	}
}

func TestCloudCaseStudy(t *testing.T) {
	res, err := RunCloudCaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Precise() {
		t.Fatalf("BorderPatrol not precise:\n%s", res.Format())
	}
	bp := res.Allowed[MechBorderPatrol]
	ip := res.Allowed[MechIPBlocklist]
	// Dropbox: single endpoint — IP blocklist kills everything.
	for _, f := range []string{"com.dropbox.android/login", "com.dropbox.android/list", "com.dropbox.android/download", "com.dropbox.android/upload"} {
		if ip[f] {
			t.Fatalf("ip blocklist allowed %s despite shared endpoint", f)
		}
	}
	// Box: blocking the upload IP also kills listing, but download survives.
	if ip["com.box.android/list"] {
		t.Fatal("box listing must break under IP blocklist (shares upload IP)")
	}
	if !ip["com.box.android/download"] {
		t.Fatal("box download uses a separate IP and must survive IP blocklist")
	}
	// BorderPatrol: only uploads blocked.
	if bp["com.dropbox.android/upload"] || bp["com.box.android/upload"] {
		t.Fatal("uploads not blocked by BorderPatrol")
	}
	if !bp["com.dropbox.android/download"] || !bp["com.box.android/list"] {
		t.Fatal("desirable functionality blocked by BorderPatrol")
	}
	// Extractor produced method-level rules.
	if len(res.ExtractedRules) == 0 {
		t.Fatal("no extracted rules")
	}
	for _, r := range res.ExtractedRules {
		if r.Level != policy.LevelMethod || r.Action != policy.Deny {
			t.Fatalf("unexpected rule %s", r)
		}
	}
	if !strings.Contains(res.Format(), "Case study") {
		t.Error("Format() incomplete")
	}
}

func TestFacebookCaseStudy(t *testing.T) {
	res, err := RunFacebookCaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Precise() {
		t.Fatalf("BorderPatrol not precise:\n%s", res.Format())
	}
	ip := res.Allowed[MechIPBlocklist]
	bp := res.Allowed[MechBorderPatrol]
	// Blocking the Graph API IP breaks login (the paper's observation).
	if ip["net.daum.android.solcalendar/fb-login"] {
		t.Fatal("IP blocklist must break fb-login")
	}
	if !ip["net.daum.android.solcalendar/calendar-sync"] {
		t.Fatal("calendar sync unrelated to graph IP must survive")
	}
	// BorderPatrol keeps login, drops analytics.
	if !bp["net.daum.android.solcalendar/fb-login"] {
		t.Fatal("BorderPatrol broke fb-login")
	}
	if bp["net.daum.android.solcalendar/fb-analytics"] {
		t.Fatal("BorderPatrol allowed analytics")
	}
}

func TestFig4Shape(t *testing.T) {
	opts := Fig4Options{Iterations: 200, Runs: 2}
	res, err := RunFig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	lat := map[Fig4ConfigID]float64{}
	for _, p := range res.Points {
		lat[p.Config] = float64(p.MeanLatency)
	}
	// Shape assertions from the paper:
	// (ii) tap faster than (i) slirp.
	if lat[ConfigDefaultTAP] >= lat[ConfigDefaultSLIRP] {
		t.Fatal("tap must be faster than slirp")
	}
	// (iii) adds roughly 1ms over (ii).
	nfq := lat[ConfigTAPNFQueue] - lat[ConfigDefaultTAP]
	if nfq < 0.5e6 || nfq > 2e6 {
		t.Fatalf("nfqueue hop = %.2f ms, want ≈1 ms", nfq/1e6)
	}
	// (v) adds roughly 1.6ms over (iv) for getStackTrace.
	gst := lat[ConfigStaticGetStack] - lat[ConfigStaticInject]
	if gst < 1.2e6 || gst > 2.2e6 {
		t.Fatalf("getStackTrace = %.2f ms, want ≈1.6 ms", gst/1e6)
	}
	// (vi) total overhead below 2.5ms over baseline, relative ≈2x.
	over := lat[ConfigDynamic] - lat[ConfigDefaultSLIRP]
	if over > 2.5e6 {
		t.Fatalf("total overhead = %.2f ms, paper promises < 2.5 ms", over/1e6)
	}
	rel := lat[ConfigDynamic] / lat[ConfigDefaultSLIRP]
	if rel < 1.3 || rel > 3.0 {
		t.Fatalf("relative overhead = %.2fx, want ≈2x", rel)
	}
	// Monotone non-decreasing across iii..vi.
	order := []Fig4ConfigID{ConfigTAPNFQueue, ConfigStaticInject, ConfigStaticGetStack, ConfigDynamic}
	for i := 1; i < len(order); i++ {
		if lat[order[i]] < lat[order[i-1]] {
			t.Fatalf("latency not monotone at %s", order[i])
		}
	}
	if !strings.Contains(res.Format(), "Figure 4") {
		t.Error("Format() incomplete")
	}
}

func TestKeepAliveAmortization(t *testing.T) {
	points, err := RunKeepAliveAmortization([]int{1, 5, 25}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Per-request latency must fall as sockets serve more requests.
	if !(points[0].MeanPerRequest > points[1].MeanPerRequest && points[1].MeanPerRequest > points[2].MeanPerRequest) {
		t.Fatalf("no amortization: %v", points)
	}
	if !strings.Contains(FormatKeepAlive(points), "amortiz") {
		t.Error("format incomplete")
	}
}

func TestFlowSizeEvasion(t *testing.T) {
	res, err := RunFlowSize(smallCorpus(t, 100), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinBytes < 36 || res.MaxBytes > 480*1024*1024 {
		t.Fatalf("flow bounds [%d, %d]", res.MinBytes, res.MaxBytes)
	}
	if !res.MonolithicBlocked {
		t.Fatal("threshold must catch the monolithic upload")
	}
	if res.FragmentedBlocked {
		t.Fatal("fragmented upload must evade the threshold")
	}
	if res.BorderPatrolBlockedFragments != res.FragmentCount {
		t.Fatalf("BorderPatrol dropped %d/%d fragments", res.BorderPatrolBlockedFragments, res.FragmentCount)
	}
	if !strings.Contains(res.Format(), "evasion") {
		t.Error("Format() incomplete")
	}
}

func TestReplayMitigation(t *testing.T) {
	res, err := RunReplay()
	if err != nil {
		t.Fatal(err)
	}
	if !res.PrototypeReplaySucceeded {
		t.Fatal("prototype kernel must permit the replay (documented limitation)")
	}
	if !res.HardenedReplayRejected {
		t.Fatal("hardened kernel must reject the replay")
	}
	if res.HardenedMaliciousDelivered {
		t.Fatal("hardened kernel let the malicious packet out")
	}
	if !strings.Contains(res.Format(), "Tag replay") {
		t.Error("Format() incomplete")
	}
}
