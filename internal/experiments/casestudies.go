package experiments

import (
	"fmt"
	"net/netip"
	"strings"

	"borderpatrol/internal/android"
	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/baseline"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/extractor"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/trackers"
)

// Mechanism labels for the case-study comparison tables.
const (
	MechNone          = "no-enforcement"
	MechIPBlocklist   = "ip-blocklist"
	MechFlowThreshold = "flow-threshold"
	MechBorderPatrol  = "borderpatrol"
)

// CaseStudyResult is one comparison table: per functionality, per
// mechanism, whether the functionality's traffic got through.
type CaseStudyResult struct {
	Name string
	// AppNames lists the scripted apps exercised.
	AppNames []string
	// Functionalities in presentation order; each entry is app/function.
	Functionalities []string
	// Desired records the corporate intent (true = must keep working).
	Desired map[string]bool
	// Allowed[mechanism][functionality] reports whether traffic flowed.
	Allowed map[string]map[string]bool
	// ExtractedRules are the BorderPatrol rules the Policy Extractor
	// derived from the two profiling runs.
	ExtractedRules []policy.Rule
	// Notes carries experiment-specific observations.
	Notes []string
}

// scriptedCloudApps builds the Dropbox-like and Box-like apps of §VI-C.
func scriptedCloudApps() []*apkgen.App {
	// Dropbox-like: every functionality shares one endpoint IP.
	dropboxEP := netip.AddrPortFrom(netip.MustParseAddr("162.125.4.1"), 443)
	dbx := scriptedApp("com.dropbox.android", "com/dropbox/android", []scriptedFn{
		{name: "login", desirable: true, class: "AuthActivity", method: "authenticate", op: android.NetOp{Endpoint: dropboxEP, Host: "www.dropbox.com", Method: "POST", Path: "/login", PayloadBytes: 96}},
		{name: "list", desirable: true, class: "BrowserFragment", method: "listFolder", op: android.NetOp{Endpoint: dropboxEP, Host: "api.dropboxapi.com", Method: "GET", Path: "/2/files/list_folder"}},
		{name: "download", desirable: true, class: "DownloadTask", method: "run", op: android.NetOp{Endpoint: dropboxEP, Host: "content.dropboxapi.com", Method: "GET", Path: "/2/files/download"}},
		{name: "upload", desirable: false, class: "UploadTask", method: "c", op: android.NetOp{Endpoint: dropboxEP, Host: "content.dropboxapi.com", Method: "PUT", Path: "/2/files/upload", PayloadBytes: 8192}},
	})
	// Box-like: upload and listing share one IP; download uses another.
	boxUpEP := netip.AddrPortFrom(netip.MustParseAddr("74.112.185.1"), 443)
	boxDownEP := netip.AddrPortFrom(netip.MustParseAddr("74.112.186.1"), 443)
	box := scriptedApp("com.box.android", "com/box/android", []scriptedFn{
		{name: "login", desirable: true, class: "AuthActivity", method: "authenticate", op: android.NetOp{Endpoint: boxUpEP, Host: "account.box.com", Method: "POST", Path: "/login", PayloadBytes: 96}},
		{name: "list", desirable: true, class: "BrowseController", method: "listItems", op: android.NetOp{Endpoint: boxUpEP, Host: "api.box.com", Method: "GET", Path: "/2.0/folders"}},
		{name: "download", desirable: true, class: "DownloadTask", method: "fetch", op: android.NetOp{Endpoint: boxDownEP, Host: "dl.boxcloud.com", Method: "GET", Path: "/file"}},
		{name: "upload", desirable: false, class: "BoxRequestUpload", method: "send", op: android.NetOp{Endpoint: boxUpEP, Host: "upload.box.com", Method: "POST", Path: "/api/2.0/files/content", PayloadBytes: 8192}},
	})
	return []*apkgen.App{dbx, box}
}

// scriptedFacebookApp builds the SolCalendar-like app: Facebook SDK login
// and analytics to the same Graph API endpoint.
func scriptedFacebookApp() *apkgen.App {
	graphEP := netip.AddrPortFrom(netip.MustParseAddr("31.13.66.19"), 443)
	calEP := netip.AddrPortFrom(netip.MustParseAddr("211.115.98.1"), 443)
	return scriptedApp("net.daum.android.solcalendar", "com/facebook/sdk", []scriptedFn{
		{name: "fb-login", desirable: true, class: "LoginManager", method: "logInWithReadPermissions", op: android.NetOp{Endpoint: graphEP, Host: "graph.facebook.com", Method: "POST", Path: "/oauth/access_token", PayloadBytes: 128}},
		{name: "fb-analytics", desirable: false, class: "AppEventsLogger", method: "flush", op: android.NetOp{Endpoint: graphEP, Host: "graph.facebook.com", Method: "POST", Path: "/activities", PayloadBytes: 420}},
		{name: "calendar-sync", desirable: true, class: "SyncAdapter", method: "onPerformSync", op: android.NetOp{Endpoint: calEP, Host: "sync.solcalendar.com", Method: "GET", Path: "/events"}},
	})
}

type scriptedFn struct {
	name      string
	desirable bool
	class     string
	method    string
	op        android.NetOp
}

// scriptedApp assembles an apkgen.App whose dex and call paths are
// consistent: one class per functionality inside basePkg.
func scriptedApp(pkgName, basePkg string, fns []scriptedFn) *apkgen.App {
	classes := make([]dex.ClassDef, 0, len(fns))
	funcs := make([]android.Functionality, 0, len(fns))
	meta := make(map[string]apkgen.FuncMeta, len(fns))
	line := 10
	for _, fn := range fns {
		cls := dex.ClassDef{
			Package: basePkg,
			Name:    fn.class,
			Super:   "java/lang/Object",
			Methods: []dex.MethodDef{{
				Name: fn.method, Proto: "(Ljava/lang/String;)V",
				File: fn.class + ".java", StartLine: line, EndLine: line + 30,
			}},
		}
		classes = append(classes, cls)
		funcs = append(funcs, android.Functionality{
			Name:      fn.name,
			Desirable: fn.desirable,
			CallPath: []dex.Frame{{
				Class: basePkg + "/" + fn.class, Method: fn.method,
				File: fn.class + ".java", Line: line + 3,
			}},
			Op:     fn.op,
			Weight: 1,
		})
		meta[fn.name] = apkgen.FuncMeta{Category: trackers.SocialSDK}
		line += 50
	}
	return &apkgen.App{
		APK: &dex.APK{
			PackageName: pkgName,
			Label:       pkgName,
			Category:    "PRODUCTIVITY",
			VersionCode: 1,
			Dexes:       []*dex.File{{Classes: classes}},
		},
		Functionalities: funcs,
		Meta:            meta,
	}
}

// RunCloudCaseStudy reproduces the §VI-C cloud-storage comparison.
func RunCloudCaseStudy() (*CaseStudyResult, error) {
	apps := scriptedCloudApps()
	res := &CaseStudyResult{
		Name:    "cloud-storage (Dropbox & Box)",
		Desired: make(map[string]bool),
		Allowed: make(map[string]map[string]bool),
	}
	for _, m := range []string{MechNone, MechIPBlocklist, MechFlowThreshold, MechBorderPatrol} {
		res.Allowed[m] = make(map[string]bool)
	}

	// Derive BorderPatrol rules with the Policy Extractor: profile run 1
	// exercises desirable ops, run 2 the uploads.
	rules, err := extractUploadRules(apps)
	if err != nil {
		return nil, err
	}
	res.ExtractedRules = rules

	// Mechanism: IP blocklist — block each app's upload destination.
	blocklist := baseline.NewIPBlocklist()
	for _, ga := range apps {
		for _, fn := range ga.Functionalities {
			if !fn.Desirable && fn.Op.Method != "GET" {
				blocklist.Block(fn.Op.Endpoint.Addr())
			}
		}
	}
	// Mechanism: flow threshold at 4 KB.
	flowThresh := baseline.NewFlowSizeThreshold(4096)

	// Enforced testbed for BorderPatrol.
	tbBP, err := NewTestbed(apps, TestbedConfig{EnforcementOn: true, Rules: rules, DefaultVerdict: policy.VerdictAllow})
	if err != nil {
		return nil, err
	}
	defer tbBP.Close()
	tbOff, err := NewTestbed(apps, TestbedConfig{EnforcementOn: false})
	if err != nil {
		return nil, err
	}
	defer tbOff.Close()

	for i, ga := range apps {
		res.AppNames = append(res.AppNames, ga.APK.PackageName)
		for _, fn := range ga.Functionalities {
			key := ga.APK.PackageName + "/" + fn.Name
			res.Functionalities = append(res.Functionalities, key)
			res.Desired[key] = fn.Desirable

			// No enforcement.
			off, err := tbOff.Apps[i].Invoke(fn.Name)
			if err != nil {
				return nil, err
			}
			res.Allowed[MechNone][key] = delivered(tbOff, off.Packets) == len(off.Packets) && len(off.Packets) > 0

			// IP blocklist and flow threshold evaluate the same packets.
			ipOK, flowOK := true, true
			for _, pkt := range off.Packets {
				if blocklist.Decide(pkt) == policy.VerdictDrop {
					ipOK = false
				}
				if flowThresh.DecideWithPort(pkt, 1) == policy.VerdictDrop {
					flowOK = false
				}
			}
			res.Allowed[MechIPBlocklist][key] = ipOK
			res.Allowed[MechFlowThreshold][key] = flowOK

			// BorderPatrol.
			on, err := tbBP.Apps[i].Invoke(fn.Name)
			if err != nil {
				return nil, err
			}
			res.Allowed[MechBorderPatrol][key] = delivered(tbBP, on.Packets) == len(on.Packets) && len(on.Packets) > 0
		}
	}

	res.Notes = append(res.Notes,
		"Dropbox uses one endpoint for all operations: the IP blocklist must block everything or nothing.",
		"Box uploads and folder listing share an IP: blocking the upload IP also breaks listing (and thus download discovery).",
		"BorderPatrol drops only packets whose stack contains the upload task method.",
	)
	return res, nil
}

// extractUploadRules runs the Policy Extractor over the cloud apps: run 1
// exercises desirable ops, run 2 the uploads; the diff yields method-level
// deny rules.
func extractUploadRules(apps []*apkgen.App) ([]policy.Rule, error) {
	tb, err := NewTestbed(apps, TestbedConfig{EnforcementOn: false})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	var basePkts, badPkts []*ipv4.Packet
	for i, ga := range apps {
		for _, fn := range ga.Functionalities {
			r, err := tb.Apps[i].Invoke(fn.Name)
			if err != nil {
				return nil, err
			}
			if fn.Desirable {
				basePkts = append(basePkts, r.Packets...)
			} else {
				badPkts = append(badPkts, r.Packets...)
			}
		}
	}
	baseProf, err := extractor.BuildProfile(basePkts, tb.DB)
	if err != nil {
		return nil, err
	}
	badProf, err := extractor.BuildProfile(badPkts, tb.DB)
	if err != nil {
		return nil, err
	}
	return extractor.ExtractRules(baseProf, badProf, policy.LevelMethod)
}

// RunFacebookCaseStudy reproduces the §VI-C SolCalendar comparison: on-
// network IP blocking breaks "Login with Facebook"; BorderPatrol drops only
// the analytics stacks.
func RunFacebookCaseStudy() (*CaseStudyResult, error) {
	app := scriptedFacebookApp()
	apps := []*apkgen.App{app}
	res := &CaseStudyResult{
		Name:    "facebook-sdk (SolCalendar)",
		Desired: make(map[string]bool),
		Allowed: make(map[string]map[string]bool),
	}
	for _, m := range []string{MechNone, MechIPBlocklist, MechBorderPatrol} {
		res.Allowed[m] = make(map[string]bool)
	}

	rules, err := extractUploadRules(apps)
	if err != nil {
		return nil, err
	}
	res.ExtractedRules = rules

	// On-network: block the Graph API endpoint.
	blocklist := baseline.NewIPBlocklist(netip.MustParseAddr("31.13.66.19"))

	tbBP, err := NewTestbed(apps, TestbedConfig{EnforcementOn: true, Rules: rules, DefaultVerdict: policy.VerdictAllow})
	if err != nil {
		return nil, err
	}
	defer tbBP.Close()
	tbOff, err := NewTestbed(apps, TestbedConfig{EnforcementOn: false})
	if err != nil {
		return nil, err
	}
	defer tbOff.Close()

	res.AppNames = append(res.AppNames, app.APK.PackageName)
	for _, fn := range app.Functionalities {
		key := app.APK.PackageName + "/" + fn.Name
		res.Functionalities = append(res.Functionalities, key)
		res.Desired[key] = fn.Desirable

		off, err := tbOff.Apps[0].Invoke(fn.Name)
		if err != nil {
			return nil, err
		}
		res.Allowed[MechNone][key] = delivered(tbOff, off.Packets) == len(off.Packets) && len(off.Packets) > 0
		ipOK := true
		for _, pkt := range off.Packets {
			if blocklist.Decide(pkt) == policy.VerdictDrop {
				ipOK = false
			}
		}
		res.Allowed[MechIPBlocklist][key] = ipOK

		on, err := tbBP.Apps[0].Invoke(fn.Name)
		if err != nil {
			return nil, err
		}
		res.Allowed[MechBorderPatrol][key] = delivered(tbBP, on.Packets) == len(on.Packets) && len(on.Packets) > 0
	}
	res.Notes = append(res.Notes,
		"Login and analytics share graph.facebook.com: blocking the IP breaks Login with Facebook.",
		"BorderPatrol distinguishes the two flows by the SDK method on the stack.",
	)
	return res, nil
}

func delivered(tb *Testbed, pkts []*ipv4.Packet) int {
	n := 0
	for _, p := range pkts {
		if tb.Network.Deliver(p).Delivered {
			n++
		}
	}
	return n
}

// Format renders the comparison table.
func (r *CaseStudyResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Case study — %s\n", r.Name)
	mechs := []string{MechNone, MechIPBlocklist, MechFlowThreshold, MechBorderPatrol}
	header := fmt.Sprintf("%-44s %-8s", "functionality", "desired")
	for _, m := range mechs {
		if _, ok := r.Allowed[m]; ok {
			header += fmt.Sprintf(" %-16s", m)
		}
	}
	b.WriteString(header + "\n")
	for _, f := range r.Functionalities {
		row := fmt.Sprintf("%-44s %-8v", f, r.Desired[f])
		for _, m := range mechs {
			if tbl, ok := r.Allowed[m]; ok {
				status := "BLOCKED"
				if tbl[f] {
					status = "allowed"
				}
				row += fmt.Sprintf(" %-16s", status)
			}
		}
		b.WriteString(row + "\n")
	}
	if len(r.ExtractedRules) > 0 {
		b.WriteString("extracted rules:\n")
		for _, rule := range r.ExtractedRules {
			fmt.Fprintf(&b, "  %s\n", rule)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Precise reports whether BorderPatrol blocked exactly the undesired
// functionality: every desired row allowed, every undesired row blocked.
func (r *CaseStudyResult) Precise() bool {
	tbl, ok := r.Allowed[MechBorderPatrol]
	if !ok {
		return false
	}
	for _, f := range r.Functionalities {
		if r.Desired[f] != tbl[f] {
			return false
		}
	}
	return true
}
