package experiments

import (
	"net/netip"
	"strings"
	"testing"
)

// TestDNSResolutionEndToEnd is the DNS-over-UDP acceptance test: tagged
// query datagrams traverse the gateway, get policy verdicts, and resolve
// against the zone — while the deny-listed component's queries die at the
// enforcement point without ever reaching the resolver.
func TestDNSResolutionEndToEnd(t *testing.T) {
	res, err := RunDNSResolution()
	if err != nil {
		t.Fatal(err)
	}
	// 3 files + 1 ghost + 2 c2 queries.
	if res.QueriesSent != 6 {
		t.Fatalf("queries sent = %d, want 6", res.QueriesSent)
	}
	if res.Blocked != 2 {
		t.Fatalf("blocked = %d, want 2 (the Beacon class queries)", res.Blocked)
	}
	if res.Answered != 4 || res.NXDomain != 1 {
		t.Fatalf("answered = %d (nx %d), want 4 (nx 1)", res.Answered, res.NXDomain)
	}
	if got := res.Resolved["files.corp.example"]; len(got) != 1 || got[0] != netip.MustParseAddr("10.80.0.10") {
		t.Fatalf("files.corp.example resolved to %v", got)
	}
	if _, leaked := res.Resolved["c2.tracker.example"]; leaked {
		t.Fatal("deny-listed component resolved its rendezvous name")
	}
	// The zone saw only delivered queries.
	if res.ZoneQueries != 4 {
		t.Fatalf("zone queries = %d, want 4", res.ZoneQueries)
	}
	// UDP flows are cached on the 5-tuple: per functionality one miss,
	// repeats hit (3 sockets → 3 misses; files repeats 2×, c2 repeats 1×
	// against its cached drop).
	if res.FlowStats.Misses != 3 {
		t.Fatalf("flow misses = %d, want 3 (one per UDP socket)", res.FlowStats.Misses)
	}
	if res.FlowStats.Hits+res.MemoHits != 3 {
		t.Fatalf("flow hits = %d + memo %d, want 3 (repeat queries cached)",
			res.FlowStats.Hits, res.MemoHits)
	}
	// Connectionless: nothing tracked, nothing closed.
	if res.Conntrack.Established != 0 || res.Conntrack.Open != 0 {
		t.Fatalf("conntrack tracked UDP: %+v", res.Conntrack)
	}
	out := res.Format()
	for _, want := range []string{"DNS over UDP", "files.corp.example", "blocked at gateway: 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q", want)
		}
	}
}
