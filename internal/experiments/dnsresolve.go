package experiments

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"borderpatrol/internal/android"
	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/dns"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/netsim"
	"borderpatrol/internal/policy"
)

// DNSResolutionResult is the DNS-over-UDP workload: the first non-HTTP
// traffic through the full stack. A provisioned app's resolver opens UDP
// sockets to the corporate DNS server; the Context Manager tags them like
// any socket, the gateway policy-checks every query datagram (flow-cached
// on the UDP 5-tuple), and the zone answers over the same path. A second,
// deny-listed component tries to resolve its rendezvous name — those
// queries must die at the gateway, which is exactly the enforcement DNS
// blocklists cannot express per-functionality (§VI-C).
type DNSResolutionResult struct {
	// QueriesSent counts query datagrams the device emitted.
	QueriesSent int
	// Answered counts queries that came back with a usable answer.
	Answered int
	// NXDomain counts answered queries for names the zone lacks.
	NXDomain int
	// Blocked counts query datagrams dropped by the Policy Enforcer.
	Blocked int
	// Resolved maps each successfully resolved name to its address set.
	Resolved map[string][]netip.Addr
	// ZoneQueries is how many queries actually reached the zone — blocked
	// ones must not.
	ZoneQueries uint64
	// FlowStats snapshots the verdict cache: repeat queries on one socket
	// are answered by UDP-5-tuple cache hits.
	FlowStats flowtable.Stats
	// MemoHits counts repeats answered by the batch drain's same-flow
	// memo (adjacent packets of one burst skip even the table probe).
	MemoHits uint64
	// Conntrack snapshots the gateway tracker: UDP is connectionless, so
	// this workload must not register connections.
	Conntrack netsim.ConntrackStats
}

// dnsServerAddr is the corporate resolver behind the gateway.
var dnsServerAddr = netip.AddrPortFrom(netip.MustParseAddr("10.66.0.53"), 53)

// dnsQuery marshals a query for a name, failing the experiment on
// malformed names rather than panicking.
func dnsQuery(id uint16, name string) ([]byte, error) {
	return (&dns.Query{ID: id, Name: name}).Marshal()
}

// RunDNSResolution stands up the zone, the resolver app and the gateway,
// and pushes tagged DNS-over-UDP queries through enforcement end to end.
func RunDNSResolution() (*DNSResolutionResult, error) {
	zone := dns.NewZone()
	records := map[string]string{
		"files.corp.example": "10.80.0.10",
		"mail.corp.example":  "10.80.0.20",
		"c2.tracker.example": "203.0.113.66", // present, but unreachable through policy
	}
	for name, addr := range records {
		if err := zone.AddRecord(name, netip.MustParseAddr(addr)); err != nil {
			return nil, err
		}
	}

	qFiles, err := dnsQuery(1, "files.corp.example")
	if err != nil {
		return nil, err
	}
	qGhost, err := dnsQuery(2, "ghost.corp.example") // not in the zone
	if err != nil {
		return nil, err
	}
	qC2, err := dnsQuery(3, "c2.tracker.example")
	if err != nil {
		return nil, err
	}

	app := scriptedApp("com.corp.resolver", "com/corp/resolver", []scriptedFn{
		{name: "resolve-files", desirable: true, class: "Resolver", method: "lookup",
			op: android.NetOp{Endpoint: dnsServerAddr, Proto: ipv4.ProtoUDP, Datagram: qFiles, Requests: 3}},
		{name: "resolve-ghost", desirable: true, class: "Resolver", method: "lookupMissing",
			op: android.NetOp{Endpoint: dnsServerAddr, Proto: ipv4.ProtoUDP, Datagram: qGhost}},
		{name: "resolve-c2", desirable: false, class: "Beacon", method: "phoneHome",
			op: android.NetOp{Endpoint: dnsServerAddr, Proto: ipv4.ProtoUDP, Datagram: qC2, Requests: 2}},
	})

	rules := []policy.Rule{{Action: policy.Deny, Level: policy.LevelClass, Target: "com/corp/resolver/Beacon"}}
	tb, err := NewTestbed([]*apkgen.App{app}, TestbedConfig{
		EnforcementOn: true, Rules: rules, DefaultVerdict: policy.VerdictAllow,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	// Replace the default HTTP endpoint at the resolver's address with the
	// UDP zone server (inside the perimeter, like a corporate resolver).
	tb.Network.AddServer(&netsim.Server{
		Addr:       dnsServerAddr.Addr(),
		Name:       "corp-dns",
		UDPHandler: dns.ZoneHandler(zone),
		Internal:   true,
	})

	res := &DNSResolutionResult{Resolved: make(map[string][]netip.Addr)}
	for _, fn := range []string{"resolve-files", "resolve-ghost", "resolve-c2"} {
		inv, err := tb.Apps[0].Invoke(fn)
		if err != nil {
			return nil, err
		}
		res.QueriesSent += len(inv.Packets)
		for i, d := range tb.Network.DeliverBatch(inv.Packets) {
			if !d.Delivered {
				res.Blocked++
				continue
			}
			if d.Datagram == nil {
				return nil, fmt.Errorf("dnsresolve: %s query %d delivered without an answer", fn, i)
			}
			ans, err := dns.ParseAnswer(d.Datagram)
			if err != nil {
				return nil, fmt.Errorf("dnsresolve: %s answer: %w", fn, err)
			}
			res.Answered++
			if ans.RCode == dns.RCodeNXDomain {
				res.NXDomain++
				continue
			}
			name := nameForQueryID(ans.ID)
			res.Resolved[name] = ans.Addrs
		}
	}
	res.ZoneQueries = zone.Queries()
	est := tb.Enforcer.Stats()
	res.FlowStats = est.Flow
	res.MemoHits = est.BatchMemoHits
	res.Conntrack = tb.Network.Gateway.Conntrack()
	return res, nil
}

// nameForQueryID maps the experiment's fixed transaction IDs back to
// names (the answer wire format does not echo the question section).
func nameForQueryID(id uint16) string {
	switch id {
	case 1:
		return "files.corp.example"
	case 2:
		return "ghost.corp.example"
	case 3:
		return "c2.tracker.example"
	default:
		return fmt.Sprintf("id-%d", id)
	}
}

// Format renders the DNS workload outcome.
func (r *DNSResolutionResult) Format() string {
	var b strings.Builder
	b.WriteString("DNS over UDP through the gateway (transport-layer workload)\n")
	fmt.Fprintf(&b, "queries sent: %d, answered: %d (%d NXDOMAIN), blocked at gateway: %d\n",
		r.QueriesSent, r.Answered, r.NXDomain, r.Blocked)
	names := make([]string, 0, len(r.Resolved))
	for n := range r.Resolved {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-24s -> %v\n", n, r.Resolved[n])
	}
	fmt.Fprintf(&b, "zone served %d queries (blocked ones never arrived)\n", r.ZoneQueries)
	fmt.Fprintf(&b, "flow cache: %d hits (+%d memo), %d misses on UDP 5-tuples; conntrack open: %d (UDP untracked)\n",
		r.FlowStats.Hits, r.MemoHits, r.FlowStats.Misses, r.Conntrack.Open)
	return b.String()
}
