package experiments

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/android"
	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/baseline"
	"borderpatrol/internal/contextmgr"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/httpsim"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/netsim"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/sanitizer"
)

// FlowSizeResult reproduces the §VII empirical flow-size analysis: the
// range of legitimate single-flow request sizes (the paper observes 36 B
// to 480 MB), why that makes threshold triggers unusable, and the
// fragmentation evasion that defeats thresholds while BorderPatrol still
// detects the upload context.
type FlowSizeResult struct {
	// Flows is the number of sampled legitimate flows.
	Flows int
	// MinBytes / MaxBytes bound the sample (paper: 36 B .. 480 MB).
	MinBytes, MaxBytes int64
	// Percentiles maps {50, 90, 99} to flow size.
	Percentiles map[int]int64
	// Threshold is the byte budget the evasion demo attacks.
	Threshold int
	// MonolithicBlocked reports whether one whole-transfer upload trips
	// the threshold.
	MonolithicBlocked bool
	// FragmentedBlocked reports whether the chunked transfer trips it
	// (the evasion succeeds when false).
	FragmentedBlocked bool
	// BorderPatrolBlockedFragments counts fragmented-upload packets
	// BorderPatrol dropped (context-based, size-independent).
	BorderPatrolBlockedFragments int
	// FragmentCount is how many sockets the evasive transfer used.
	FragmentCount int
}

// RunFlowSize samples flow sizes from the corpus metadata and runs the
// threshold-evasion comparison on a scripted uploader app.
func RunFlowSize(corpus []*apkgen.App, threshold int) (*FlowSizeResult, error) {
	if corpus == nil {
		var err error
		corpus, err = apkgen.Generate(apkgen.DefaultConfig())
		if err != nil {
			return nil, err
		}
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("flowsize: invalid threshold %d", threshold)
	}
	var sizes []int64
	for _, ga := range corpus {
		sizes = append(sizes, ga.FlowSizes...)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("flowsize: corpus has no flow metadata")
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	res := &FlowSizeResult{
		Flows:       len(sizes),
		MinBytes:    sizes[0],
		MaxBytes:    sizes[len(sizes)-1],
		Percentiles: map[int]int64{},
		Threshold:   threshold,
	}
	for _, p := range []int{50, 90, 99} {
		res.Percentiles[p] = sizes[len(sizes)*p/100]
	}

	// Evasion demo: one app uploads `payload` bytes either monolithically
	// or fragmented across sockets in chunks under the threshold.
	const payload = 64 * 1024
	chunks := payload/(threshold/2) + 1
	uploader := scriptedApp("com.evil.exfil", "com/evil/exfil", []scriptedFn{
		{name: "monolithic", desirable: false, class: "Exfil", method: "uploadAll",
			op: android.NetOp{Endpoint: netip.AddrPortFrom(netip.MustParseAddr("203.0.113.99"), 443), Method: "PUT", PayloadBytes: payload}},
		{name: "fragmented", desirable: false, class: "Exfil", method: "uploadChunks",
			op: android.NetOp{Endpoint: netip.AddrPortFrom(netip.MustParseAddr("203.0.113.99"), 443), Method: "PUT", PayloadBytes: payload, Chunks: chunks}},
	})
	res.FragmentCount = chunks

	// BorderPatrol rule: deny the uploader's methods at class level.
	rules := []policy.Rule{{Action: policy.Deny, Level: policy.LevelClass, Target: "com/evil/exfil/Exfil"}}
	tb, err := NewTestbed([]*apkgen.App{uploader}, TestbedConfig{EnforcementOn: true, Rules: rules, DefaultVerdict: policy.VerdictAllow})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	tbOff, err := NewTestbed([]*apkgen.App{uploader}, TestbedConfig{EnforcementOn: false})
	if err != nil {
		return nil, err
	}
	defer tbOff.Close()

	// Threshold mechanism sees the unenforced packets.
	mono, err := tbOff.Apps[0].Invoke("monolithic")
	if err != nil {
		return nil, err
	}
	frag, err := tbOff.Apps[0].Invoke("fragmented")
	if err != nil {
		return nil, err
	}
	thresh := baseline.NewFlowSizeThreshold(threshold)
	for _, pkt := range mono.Packets {
		if thresh.DecideWithPort(pkt, 1) == policy.VerdictDrop {
			res.MonolithicBlocked = true
		}
	}
	threshFrag := baseline.NewFlowSizeThreshold(threshold)
	for i, pkt := range frag.Packets {
		if threshFrag.DecideWithPort(pkt, uint16(41000+i)) == policy.VerdictDrop {
			res.FragmentedBlocked = true
		}
	}

	// BorderPatrol sees the tagged packets. Only the data packets count
	// as fragments of the transfer — each chunk's socket also emits
	// SYN/FIN control segments, which share the chunk's verdict but carry
	// no upload bytes.
	fragBP, err := tb.Apps[0].Invoke("fragmented")
	if err != nil {
		return nil, err
	}
	for _, pkt := range dataPackets(fragBP.Packets) {
		if d := tb.Network.Deliver(pkt); !d.Delivered {
			res.BorderPatrolBlockedFragments++
		}
	}
	return res, nil
}

// Format renders the flow-size analysis.
func (r *FlowSizeResult) Format() string {
	var b strings.Builder
	b.WriteString("Flow sizes and threshold evasion (§VII)\n")
	fmt.Fprintf(&b, "legitimate single-flow sizes (n=%d): min %s, p50 %s, p90 %s, p99 %s, max %s (paper: 36 B .. 480 MB)\n",
		r.Flows, fmtBytes(r.MinBytes), fmtBytes(r.Percentiles[50]), fmtBytes(r.Percentiles[90]), fmtBytes(r.Percentiles[99]), fmtBytes(r.MaxBytes))
	fmt.Fprintf(&b, "threshold mechanism (%d B budget):\n", r.Threshold)
	fmt.Fprintf(&b, "  monolithic upload blocked: %v\n", r.MonolithicBlocked)
	fmt.Fprintf(&b, "  fragmented upload (%d sockets) blocked: %v  <- evasion\n", r.FragmentCount, r.FragmentedBlocked)
	fmt.Fprintf(&b, "BorderPatrol (context rule): %d/%d fragment packets dropped irrespective of size\n",
		r.BorderPatrolBlockedFragments, r.FragmentCount)
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// ReplayResult reproduces the §VII tag-replay discussion: a malicious
// function that copies a benign tag onto its own socket succeeds on the
// prototype kernel but is defeated by the set-once hardening.
type ReplayResult struct {
	// PrototypeReplaySucceeded: without hardening the copied tag sticks.
	PrototypeReplaySucceeded bool
	// HardenedReplayRejected: with set-once, the overwrite fails.
	HardenedReplayRejected bool
	// HardenedMaliciousDelivered: with hardening, whether the malicious
	// packet still got out (it must not — it keeps its true context).
	HardenedMaliciousDelivered bool
}

// RunReplay exercises the replay scenario on both kernel configurations.
func RunReplay() (*ReplayResult, error) {
	res := &ReplayResult{}
	for _, hardened := range []bool{false, true} {
		outcome, err := replayOnce(hardened)
		if err != nil {
			return nil, err
		}
		if hardened {
			res.HardenedReplayRejected = outcome.replayRejected
			res.HardenedMaliciousDelivered = outcome.maliciousDelivered
		} else {
			res.PrototypeReplaySucceeded = !outcome.replayRejected
		}
	}
	return res, nil
}

type replayOutcome struct {
	replayRejected     bool
	maliciousDelivered bool
}

func replayOnce(hardened bool) (replayOutcome, error) {
	// An app with a benign and a malicious functionality; policy denies the
	// malicious method.
	ep := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.50"), 443)
	app := scriptedApp("com.replay.app", "com/replay/app", []scriptedFn{
		{name: "benign", desirable: true, class: "Good", method: "fetch", op: android.NetOp{Endpoint: ep, Method: "GET"}},
		{name: "malicious", desirable: false, class: "Evil", method: "exfil", op: android.NetOp{Endpoint: ep, Method: "PUT", PayloadBytes: 512}},
	})
	rules := []policy.Rule{{Action: policy.Deny, Level: policy.LevelClass, Target: "com/replay/app/Evil"}}
	tb, err := NewTestbed([]*apkgen.App{app}, TestbedConfig{EnforcementOn: true, Rules: rules, DefaultVerdict: policy.VerdictAllow})
	if err != nil {
		return replayOutcome{}, err
	}
	// NewTestbed always hardens; for the prototype case rebuild the device
	// kernel behaviour by toggling through a fresh unhardened testbed.
	if !hardened {
		tb.Close()
		tb, err = newUnhardenedTestbed(app, rules)
		if err != nil {
			return replayOutcome{}, err
		}
	}
	defer func() { tb.Close() }()

	// Run the benign functionality and steal its tag.
	benign, err := tb.Apps[0].Invoke("benign")
	if err != nil {
		return replayOutcome{}, err
	}
	if len(benign.Packets) == 0 {
		return replayOutcome{}, fmt.Errorf("replay: no benign packet")
	}
	stolen, ok := benign.Packets[0].Header.FindOption(ipv4.OptSecurity)
	if !ok {
		return replayOutcome{}, fmt.Errorf("replay: benign packet untagged")
	}

	// The malicious function opens its own socket (the Context Manager tags
	// it with the true Evil context at connect time), then replays the
	// stolen benign tag over it.
	dev := tb.Device
	sock := dev.Stack().NewJavaSocket(tb.Apps[0].UID)
	thread := tb.Apps[0].Thread()
	thread.PushAll([]dex.Frame{{Class: "com/replay/app/Evil", Method: "exfil", File: "Evil.java", Line: 13}})
	err = sock.Connect(ep)
	thread.PopN(1)
	if err != nil {
		return replayOutcome{}, err
	}
	replayErr := dev.Kernel().SetIPOptions(sock.FD(), 0, []ipv4.Option{stolen})
	out := replayOutcome{replayRejected: replayErr != nil}
	pkt, err := sock.Send([]byte("PUT /exfil HTTP/1.1\r\nContent-Length: 0\r\n\r\n"))
	if err != nil {
		return replayOutcome{}, err
	}
	if pkt != nil {
		d := tb.Network.Deliver(pkt)
		// With the stolen (benign) tag the packet sails through; with the
		// true context the deny rule drops it.
		out.maliciousDelivered = d.Delivered
	}
	_ = sock.Close()
	return out, nil
}

// newUnhardenedTestbed rebuilds the replay testbed on a prototype kernel
// (IP options patch without the set-once hardening).
func newUnhardenedTestbed(app *apkgen.App, rules []policy.Rule) (*Testbed, error) {
	device := android.NewDevice(android.Config{
		Addr:            netip.MustParseAddr("10.66.0.2"),
		Kernel:          kernel.Config{AllowUnprivilegedIPOptions: true, SetOptionsOncePerSocket: false},
		XposedInstalled: true,
	})
	manager := contextmgr.New(device)
	if err := device.LoadModule(manager); err != nil {
		return nil, err
	}
	db := analyzer.NewDatabase()
	if err := db.Add(app.APK); err != nil {
		return nil, err
	}
	engine, err := policy.NewEngine(rules, policy.VerdictAllow)
	if err != nil {
		return nil, err
	}
	enf := enforcer.New(enforcer.Config{}, db, engine)
	tb := &Testbed{
		Device: device, Manager: manager, DB: db, Engine: engine, Enforcer: enf,
		Corpus: []*apkgen.App{app},
	}
	tb.Network = netsim.NewNetwork(netsim.ModeTAP, netsim.DefaultLatencyModel())
	tb.Network.Gateway = netsim.NewGateway(netsim.GatewayConfig{
		Enforcer:  enf,
		Sanitizer: sanitizer.New(sanitizer.Config{}),
	})
	installed, err := device.InstallApp(app.APK, app.Functionalities, android.ProfileWork)
	if err != nil {
		return nil, err
	}
	tb.Apps = []*android.App{installed}
	for _, f := range app.Functionalities {
		tb.Network.AddServer(&netsim.Server{
			Addr:    f.Op.Endpoint.Addr(),
			Name:    f.Op.Host,
			Handler: httpsim.StaticHandler(httpsim.StaticPage()),
		})
	}
	return tb, nil
}

// Format renders the replay outcome.
func (r *ReplayResult) Format() string {
	var b strings.Builder
	b.WriteString("Tag replay (§VII)\n")
	fmt.Fprintf(&b, "prototype kernel: replay succeeded = %v (the documented limitation)\n", r.PrototypeReplaySucceeded)
	fmt.Fprintf(&b, "hardened kernel (set-once): replay rejected = %v, malicious packet delivered = %v\n",
		r.HardenedReplayRejected, r.HardenedMaliciousDelivered)
	return b.String()
}
