package experiments

import "testing"

// TestRunFleetSmoke is the CI-scale fleet run: small N under the race
// detector, same invariants as the full 8×1250 default.
func TestRunFleetSmoke(t *testing.T) {
	res, err := RunFleet(FleetRunConfig{Gateways: 3, DevicesPerGateway: 40, BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if res.Gateways != 3 || res.Devices != 120 {
		t.Fatalf("scale: %+v", res)
	}
	if res.HTTPPackets == 0 || res.DNSPackets == 0 {
		t.Fatalf("workload not mixed: http=%d dns=%d", res.HTTPPackets, res.DNSPackets)
	}
	if res.P50Ns == 0 || res.P99Ns < res.P50Ns {
		t.Fatalf("latency quantiles degenerate: %+v", res)
	}
	if res.Format() == "" {
		t.Fatal("empty format")
	}
}
