package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/metrics"
)

// This file implements the pipeline micro-benchmark experiment: the
// instrumented enforcement paths (scalar cache hit, batched drain, full
// cache-miss pipeline) measured in-process, with the enforcer's own
// sampled latency histograms scraped for tail quantiles, and the whole
// result exportable as machine-readable JSON (BENCH_pipeline.json) for
// trend tracking outside the Go bench toolchain.

// PipelineBenchConfig sizes the pipeline benchmark.
type PipelineBenchConfig struct {
	// Apps sizes the corpus (default 8).
	Apps int
	// Iterations is the packet count per measured path (default 200_000).
	Iterations int
	// Burst is the batch-path burst size (default 256).
	Burst int
	// Seed drives corpus generation (default 2019).
	Seed int64
}

// DefaultPipelineBenchConfig returns the standard scale.
func DefaultPipelineBenchConfig() PipelineBenchConfig {
	return PipelineBenchConfig{Apps: 8, Iterations: 200_000, Burst: 256, Seed: 2019}
}

// PipelinePathResult is one measured path.
type PipelinePathResult struct {
	// Name identifies the path: process_hit, process_batch, process_miss.
	Name string `json:"name"`
	// Packets is how many packets the path processed.
	Packets int `json:"packets"`
	// NsPerOp is wall time divided by packets.
	NsPerOp float64 `json:"ns_per_op"`
}

// PipelineHistogram is one scraped latency histogram, quantiles derived
// from the log-bucketed counts (upper-bound estimates, <25% overshoot).
type PipelineHistogram struct {
	Name   string  `json:"name"`
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  uint64  `json:"p50_ns"`
	P99Ns  uint64  `json:"p99_ns"`
	P999Ns uint64  `json:"p999_ns"`
}

// PipelineBenchResult reports the benchmark.
type PipelineBenchResult struct {
	Paths      []PipelinePathResult `json:"paths"`
	Histograms []PipelineHistogram  `json:"histograms"`
}

// Format renders a paper-style summary.
func (r *PipelineBenchResult) Format() string {
	out := ""
	for _, p := range r.Paths {
		out += fmt.Sprintf("%-14s %9d packets  %8.1f ns/op\n", p.Name, p.Packets, p.NsPerOp)
	}
	for _, h := range r.Histograms {
		if h.Count == 0 {
			continue
		}
		out += fmt.Sprintf("%-36s n=%-8d mean=%-8.0f p50=%-8d p99=%-8d p999=%d\n",
			h.Name, h.Count, h.MeanNs, h.P50Ns, h.P99Ns, h.P999Ns)
	}
	return out
}

// WriteJSON writes the machine-readable result (BENCH_pipeline.json).
func (r *PipelineBenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("pipelinebench: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// RunPipelineBench measures the instrumented enforcement paths end to end
// on a fully assembled testbed: the scalar cache-hit path, the batched
// drain, and the uncached full pipeline, then scrapes every latency
// histogram the components registered.
func RunPipelineBench(cfg PipelineBenchConfig) (*PipelineBenchResult, error) {
	def := DefaultPipelineBenchConfig()
	if cfg.Apps <= 0 {
		cfg.Apps = def.Apps
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = def.Iterations
	}
	if cfg.Burst <= 0 {
		cfg.Burst = def.Burst
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}

	gen := apkgen.DefaultConfig()
	gen.Apps = cfg.Apps
	gen.Seed = cfg.Seed
	corpus, err := apkgen.Generate(gen)
	if err != nil {
		return nil, fmt.Errorf("pipelinebench: %w", err)
	}
	tb, err := NewTestbed(corpus, TestbedConfig{EnforcementOn: true, DisableCapture: true})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	var pool []*ipv4.Packet
	for i, ga := range corpus {
		for _, fn := range ga.Functionalities {
			res, err := tb.Apps[i].Invoke(fn.Name)
			if err != nil {
				return nil, fmt.Errorf("pipelinebench: invoke: %w", err)
			}
			pool = append(pool, res.Packets...)
		}
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("pipelinebench: corpus produced no packets")
	}

	res := &PipelineBenchResult{}
	enf := tb.Enforcer

	// Warm the flow cache so the scalar loop below measures the hit path.
	for _, pkt := range pool {
		enf.Process(pkt)
	}

	measure := func(name string, fn func(n int)) {
		start := time.Now()
		fn(cfg.Iterations)
		elapsed := time.Since(start)
		res.Paths = append(res.Paths, PipelinePathResult{
			Name:    name,
			Packets: cfg.Iterations,
			NsPerOp: float64(elapsed.Nanoseconds()) / float64(cfg.Iterations),
		})
	}

	measure("process_hit", func(n int) {
		for i := 0; i < n; i++ {
			enf.Process(pool[i%len(pool)])
		}
	})

	measure("process_batch", func(n int) {
		burst := make([]*ipv4.Packet, 0, cfg.Burst)
		out := make([]enforcer.Result, 0, cfg.Burst)
		for done := 0; done < n; {
			burst = burst[:0]
			for len(burst) < cfg.Burst && done+len(burst) < n {
				burst = append(burst, pool[(done+len(burst))%len(pool)])
			}
			out = enf.ProcessBatch(burst, out)
			done += len(burst)
		}
	})

	// The uncached pipeline: a cacheless enforcer sharing the testbed's
	// database and engine, so every packet pays extract+decode+evaluate.
	missEnf := enforcer.New(enforcer.Config{}, tb.DB, tb.Engine)
	measure("process_miss", func(n int) {
		for i := 0; i < n; i++ {
			missEnf.Process(pool[i%len(pool)])
		}
	})

	// Scrape every registered latency histogram (the enforcer's sampled
	// instruments and anything other layers recorded during the run).
	for _, s := range tb.Metrics.Snapshot() {
		if s.Hist == nil {
			continue
		}
		res.Histograms = append(res.Histograms, PipelineHistogram{
			Name:   s.Name,
			Count:  s.Hist.Count(),
			MeanNs: s.Hist.Mean(),
			P50Ns:  s.Hist.Quantile(0.5),
			P99Ns:  s.Hist.Quantile(0.99),
			P999Ns: s.Hist.Quantile(0.999),
		})
	}
	// The miss enforcer is unregistered; export its pipeline histogram
	// under a distinct name.
	missReg := metrics.NewRegistry()
	missEnf.RegisterMetrics(missReg)
	for _, s := range missReg.Snapshot() {
		if s.Hist == nil || s.Hist.Count() == 0 {
			continue
		}
		if s.Name == "bp_enforcer_cache_miss_latency_ns" || s.Name == "bp_enforcer_evaluate_latency_ns" {
			res.Histograms = append(res.Histograms, PipelineHistogram{
				Name:   "uncached_" + s.Name,
				Count:  s.Hist.Count(),
				MeanNs: s.Hist.Mean(),
				P50Ns:  s.Hist.Quantile(0.5),
				P99Ns:  s.Hist.Quantile(0.99),
				P999Ns: s.Hist.Quantile(0.999),
			})
		}
	}
	return res, nil
}
