package experiments

// Integration tests exercising cross-module behaviour that no single
// package test can see: multi-dex wide-index tags through the full
// pipeline, truncated-hash collision handling, DNS-blocklist collateral
// damage vs BorderPatrol precision, and concurrent enforcement.

import (
	"bytes"
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/android"
	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/dns"
	"borderpatrol/internal/ioi"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/netsim"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/tag"
)

// buildMultiDexApp creates an app whose second dex holds the interesting
// method, forcing global indexes past the first dex and (with padding)
// exercising the wide encoding path end to end.
func buildMultiDexApp(t *testing.T) *apkgen.App {
	t.Helper()
	// Dex 0: filler classes with enough methods to push dex-1 indexes past
	// the 15-bit narrow boundary would need 32k methods — too slow for a
	// unit test, so verify the multi-dex indexing itself with a modest
	// filler and separately force wide encoding via index arithmetic in
	// TestWideEncodingThroughDatabase.
	filler := make([]dex.ClassDef, 8)
	for i := range filler {
		methods := make([]dex.MethodDef, 64)
		for j := range methods {
			methods[j] = dex.MethodDef{
				Name: fmt.Sprintf("f%03d", j), Proto: "()V",
				File: "Filler.java", StartLine: j * 4, EndLine: j*4 + 3,
			}
		}
		filler[i] = dex.ClassDef{
			Package: fmt.Sprintf("com/filler/p%02d", i),
			Name:    fmt.Sprintf("F%02d", i),
			Methods: methods,
		}
	}
	dex0 := &dex.File{Classes: filler}
	dex1 := &dex.File{Classes: []dex.ClassDef{{
		Package: "com/multi/app",
		Name:    "Worker",
		Methods: []dex.MethodDef{
			{Name: "leak", Proto: "()V", File: "W.java", StartLine: 5, EndLine: 25},
			{Name: "work", Proto: "()V", File: "W.java", StartLine: 30, EndLine: 50},
		},
	}}}
	apk := &dex.APK{
		PackageName: "com.multi.app",
		VersionCode: 1,
		Dexes:       []*dex.File{dex0, dex1},
	}
	ep := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.88"), 443)
	return &apkgen.App{
		APK: apk,
		Functionalities: []android.Functionality{
			{
				Name:     "leak",
				CallPath: []dex.Frame{{Class: "com/multi/app/Worker", Method: "leak", File: "W.java", Line: 10}},
				Op:       android.NetOp{Endpoint: ep, Method: "POST", PayloadBytes: 64},
			},
			{
				Name:      "work",
				Desirable: true,
				CallPath:  []dex.Frame{{Class: "com/multi/app/Worker", Method: "work", File: "W.java", Line: 35}},
				Op:        android.NetOp{Endpoint: ep, Method: "GET"},
			},
		},
		Meta: map[string]apkgen.FuncMeta{"leak": {}, "work": {}},
	}
}

func TestMultiDexEndToEnd(t *testing.T) {
	app := buildMultiDexApp(t)
	if !app.APK.MultiDex() {
		t.Fatal("app is not multi-dex")
	}
	rules := []policy.Rule{{
		Action: policy.Deny, Level: policy.LevelMethod,
		Target: "Lcom/multi/app/Worker;->leak()V",
	}}
	tb, err := NewTestbed([]*apkgen.App{app}, TestbedConfig{EnforcementOn: true, Rules: rules, DefaultVerdict: policy.VerdictAllow})
	if err != nil {
		t.Fatal(err)
	}
	// The second-dex method index must exceed the first dex's count.
	entry, ok := tb.DB.LookupTruncated(app.APK.Truncated())
	if !ok {
		t.Fatal("app missing from db")
	}
	if len(entry.Signatures) != 8*64+2 {
		t.Fatalf("signature count = %d", len(entry.Signatures))
	}
	if !entry.MultiDex {
		t.Fatal("multi-dex flag lost in db")
	}

	res, err := tb.Apps[0].Invoke("leak")
	if err != nil {
		t.Fatal(err)
	}
	d := tb.Network.Deliver(res.Packets[0])
	if d.Delivered {
		t.Fatal("second-dex leak method not blocked")
	}
	res, err = tb.Apps[0].Invoke("work")
	if err != nil {
		t.Fatal(err)
	}
	if d := tb.Network.Deliver(res.Packets[0]); !d.Delivered {
		t.Fatal("second-dex benign method blocked")
	}
}

func TestWideEncodingThroughDatabase(t *testing.T) {
	// Indexes above the 15-bit narrow boundary must survive the
	// tag→packet→decode round trip (the multi-dex wide-encoding extension).
	var h dex.TruncatedHash
	for i := range h {
		h[i] = byte(0x42 + i)
	}
	tg := tag.Tag{AppHash: h, Indexes: []uint32{70000, 12, 99999}}
	data, err := tg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	pkt := &ipv4.Packet{Header: ipv4.Header{
		TTL: 64, Protocol: ipv4.ProtoTCP,
		Src: netip.MustParseAddr("10.66.0.2"),
		Dst: netip.MustParseAddr("203.0.113.88"),
	}}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: data})
	wire, err := pkt.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ipv4.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := back.Header.FindOption(ipv4.OptSecurity)
	decoded, err := tag.Decode(opt.Data)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint32{70000, 12, 99999} {
		if decoded.Indexes[i] != want {
			t.Fatalf("index %d = %d, want %d", i, decoded.Indexes[i], want)
		}
	}
}

func TestHashCollisionRefusedAtProvisioning(t *testing.T) {
	// Two different apps with an artificially colliding truncated hash must
	// be refused by the database rather than silently mis-attributed.
	db := analyzer.NewDatabase()
	entryA := analyzer.AppEntry{
		Hash:        "00112233445566778899aabbccddeeff",
		PackageName: "com.a",
		Signatures:  []string{"Lcom/a/A;->m()V"},
	}
	entryB := analyzer.AppEntry{
		Hash:        "0011223344556677ffffffffffffffff", // same first 8 bytes
		PackageName: "com.b",
		Signatures:  []string{"Lcom/b/B;->m()V"},
	}
	if err := db.AddEntry(entryA); err != nil {
		t.Fatal(err)
	}
	if err := db.AddEntry(entryB); err == nil {
		t.Fatal("colliding truncated hash accepted")
	}
}

func TestDNSBaselineCollateralVsBorderPatrol(t *testing.T) {
	// Wire the Facebook case-study endpoints into a DNS zone: graph and
	// login share an IP. The name blocklist takes down login as collateral;
	// BorderPatrol (from the case study) does not.
	zone := dns.NewZone()
	shared := netip.MustParseAddr("31.13.66.19")
	if err := zone.AddRecord("graph.facebook.com", shared); err != nil {
		t.Fatal(err)
	}
	if err := zone.AddRecord("login.facebook.com", shared); err != nil {
		t.Fatal(err)
	}
	bl := dns.NewNameBlocklist(zone)
	bl.Block("graph.facebook.com")
	blocked, collateral := bl.AddrBlocked(shared)
	if !blocked || len(collateral) != 1 {
		t.Fatalf("blocked=%v collateral=%v", blocked, collateral)
	}

	res, err := RunFacebookCaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Allowed[MechBorderPatrol]["net.daum.android.solcalendar/fb-login"] {
		t.Fatal("BorderPatrol lost the login the DNS baseline cannot keep")
	}
}

func TestConcurrentEnforcement(t *testing.T) {
	// Many goroutines exercising distinct apps through one shared gateway:
	// verdict correctness must hold under concurrency (run with -race).
	cfg := apkgen.DefaultConfig()
	cfg.Apps = 16
	corpus, err := apkgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rules := []policy.Rule{{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}}
	tb, err := NewTestbed(corpus, TestbedConfig{EnforcementOn: true, Rules: rules, DefaultVerdict: policy.VerdictAllow})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(tb.Apps))
	for i := range tb.Apps {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			app := tb.Apps[idx]
			ga := tb.Corpus[idx]
			for _, fn := range ga.Functionalities {
				res, err := app.Invoke(fn.Name)
				if err != nil {
					errs <- fmt.Errorf("%s/%s: %w", ga.APK.PackageName, fn.Name, err)
					return
				}
				for _, pkt := range res.Packets {
					d := tb.Network.Deliver(pkt)
					meta := ga.Meta[fn.Name]
					isFlurry := meta.LibraryPkg == "com/flurry"
					if isFlurry && d.Delivered {
						errs <- fmt.Errorf("%s: flurry packet delivered", ga.APK.PackageName)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCaptureFullSessionRoundTrip(t *testing.T) {
	// A gateway session's device-egress capture serializes and reloads; the
	// reloaded capture supports the same IoI analysis.
	cfg := apkgen.DefaultConfig()
	cfg.Apps = 10
	corpus, err := apkgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(corpus, TestbedConfig{EnforcementOn: false})
	if err != nil {
		t.Fatal(err)
	}
	for i, app := range tb.Apps {
		for _, fn := range corpus[i].Functionalities {
			res, err := app.Invoke(fn.Name)
			if err != nil {
				t.Fatal(err)
			}
			tb.DeliverAll(res.Packets)
		}
	}
	egress := tb.Network.CaptureAt(netsim.CaptureDeviceEgress)
	if egress.Len() == 0 {
		t.Fatal("no captured traffic")
	}

	var buf bytes.Buffer
	if _, err := egress.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := netsim.ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != egress.Len() {
		t.Fatalf("reloaded %d packets, want %d", reloaded.Len(), egress.Len())
	}
	// The reloaded capture supports the same IoI analysis.
	an1, err := ioi.Analyze(egress.Packets(), tb.DB)
	if err != nil {
		t.Fatal(err)
	}
	an2, err := ioi.Analyze(reloaded.Packets(), tb.DB)
	if err != nil {
		t.Fatal(err)
	}
	if an1.AppsWithIoI != an2.AppsWithIoI || an1.TotalIoIs != an2.TotalIoIs {
		t.Fatalf("analysis diverged after serialization: %+v vs %+v", an1, an2)
	}
}
