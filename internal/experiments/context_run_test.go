package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunContextSmoke runs the contextual-policy experiment at a reduced
// scale and asserts every invariant Check covers, plus the JSON export.
func TestRunContextSmoke(t *testing.T) {
	res, err := RunContext(ContextRunConfig{Devices: 16, HitIterations: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	// 16 devices round-robin over 4 scenarios: 4 each.
	for _, s := range res.Scenarios {
		if s.Devices != 4 {
			t.Fatalf("scenario %s ran %d devices, want 4", s.Name, s.Devices)
		}
	}
	// Exactly the trusted devices minus the hot one were flipped.
	if res.FlippedDevices != 3 {
		t.Fatalf("flipped %d devices, want 3", res.FlippedDevices)
	}
	if res.Format() == "" {
		t.Fatal("empty Format")
	}

	path := filepath.Join(t.TempDir(), "BENCH_context.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ContextBenchResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.StaleAllows != 0 || back.FlippedDevices != res.FlippedDevices {
		t.Fatalf("JSON round trip: %+v", back)
	}
}
