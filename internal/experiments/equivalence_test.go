package experiments

import (
	"reflect"
	"testing"
)

// TestTransportEquivalence is the refactor's regression anchor: the full
// §VI-B1 validation experiment must produce identical verdict counts
// whether app traffic rides real TCP segments (HTTP-over-TCP with
// SYN/FIN lifecycle) or the legacy plain-payload wire format. The
// enforcement decision depends only on the contextual tag, and validation
// scores data packets, so the two wire formats must agree number for
// number — any divergence means the transport layer changed semantics,
// not just framing.
func TestTransportEquivalence(t *testing.T) {
	corpus := smallCorpus(t, 200)
	run := func(legacy bool) *ValidationResult {
		res, err := RunValidation(ValidationConfig{
			Corpus:         corpus,
			SampleSize:     15,
			TopLibraries:   15,
			LegacyPayloads: legacy,
		})
		if err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		return res
	}
	tcp := run(false)
	legacy := run(true)

	if tcp.TrackerPacketsTotal == 0 || tcp.DesirableTotal == 0 {
		t.Fatalf("degenerate sample: %+v", tcp)
	}
	if tcp.TrackerPacketsTotal != legacy.TrackerPacketsTotal ||
		tcp.TrackerPacketsDropped != legacy.TrackerPacketsDropped {
		t.Fatalf("tracker verdicts diverged: tcp %d/%d vs legacy %d/%d",
			tcp.TrackerPacketsDropped, tcp.TrackerPacketsTotal,
			legacy.TrackerPacketsDropped, legacy.TrackerPacketsTotal)
	}
	if tcp.DesirableTotal != legacy.DesirableTotal ||
		tcp.DesirableDelivered != legacy.DesirableDelivered {
		t.Fatalf("desirable verdicts diverged: tcp %d/%d vs legacy %d/%d",
			tcp.DesirableDelivered, tcp.DesirableTotal,
			legacy.DesirableDelivered, legacy.DesirableTotal)
	}
	if tcp.VisibleChangeApps != legacy.VisibleChangeApps || tcp.BrokenApps != legacy.BrokenApps {
		t.Fatalf("app impact diverged: tcp (%d visible, %d broken) vs legacy (%d, %d)",
			tcp.VisibleChangeApps, tcp.BrokenApps, legacy.VisibleChangeApps, legacy.BrokenApps)
	}
	if !reflect.DeepEqual(tcp.PerLibrary, legacy.PerLibrary) {
		t.Fatalf("per-library drops diverged:\n tcp    %v\n legacy %v", tcp.PerLibrary, legacy.PerLibrary)
	}
	if tcp.SampleApps != legacy.SampleApps || tcp.LibrariesCovered != legacy.LibrariesCovered {
		t.Fatalf("sample diverged: %+v vs %+v", tcp, legacy)
	}
}
