package experiments

// End-to-end property: for randomly generated corpus apps, the context the
// gateway decodes from any packet is exactly the app-code portion of the
// call path that produced it — the core correctness invariant of the whole
// system (Context Manager encoding and Policy Enforcer decoding must be
// inverse functions through the shared database).

import (
	"testing"
	"testing/quick"

	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/netsim"
	"borderpatrol/internal/tag"
)

func TestEndToEndContextFidelityProperty(t *testing.T) {
	cfg := apkgen.DefaultConfig()
	cfg.Apps = 30
	corpus, err := apkgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(corpus, TestbedConfig{EnforcementOn: false})
	if err != nil {
		t.Fatal(err)
	}
	lineTables := make([]*dex.LineTable, len(corpus))
	for i, ga := range corpus {
		lineTables[i] = dex.NewLineTable(ga.APK)
	}

	check := func(appIdx uint8, fnIdx uint8) bool {
		i := int(appIdx) % len(corpus)
		ga := corpus[i]
		fns := ga.Functionalities
		fn := fns[int(fnIdx)%len(fns)]

		res, err := tb.Apps[i].Invoke(fn.Name)
		if err != nil || len(res.Packets) == 0 {
			return false
		}
		opt, ok := res.Packets[0].Header.FindOption(ipv4.OptSecurity)
		if !ok {
			return false
		}
		decoded, err := tag.Decode(opt.Data)
		if err != nil {
			return false
		}
		// Property 1: the tag names the right app.
		if decoded.AppHash != ga.APK.Truncated() {
			return false
		}
		// Property 2: decoding through the gateway database yields exactly
		// the resolvable frames of the call path, innermost first.
		gotStack, err := tb.DB.DecodeStack(decoded.AppHash, decoded.Indexes)
		if err != nil {
			return false
		}
		want := lineTables[i].ResolveStack(reverseFrames(fn.CallPath))
		if len(gotStack) != len(want) {
			return false
		}
		for j := range want {
			if gotStack[j] != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// reverseFrames converts a call path (outermost first) into stack-trace
// order (innermost first), matching getStackTrace semantics.
func reverseFrames(path []dex.Frame) []dex.Frame {
	out := make([]dex.Frame, len(path))
	for i, f := range path {
		out[len(path)-1-i] = f
	}
	return out
}

func TestSanitizedTrafficCarriesNoContextProperty(t *testing.T) {
	// Privacy property (§IV-A4): whatever the app does, packets observed
	// after the gateway never carry IP options.
	cfg := apkgen.DefaultConfig()
	cfg.Apps = 10
	corpus, err := apkgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(corpus, TestbedConfig{EnforcementOn: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, ga := range corpus {
		for _, fn := range ga.Functionalities {
			res, err := tb.Apps[i].Invoke(fn.Name)
			if err != nil {
				t.Fatal(err)
			}
			tb.DeliverAll(res.Packets)
		}
	}
	post := tb.Network.CaptureAt(netsim.CapturePostGateway)
	if post.Len() == 0 {
		t.Fatal("no post-gateway traffic observed")
	}
	for _, pkt := range post.Packets() {
		if pkt.Header.HasOptions() {
			t.Fatalf("post-gateway packet to %s still carries options", pkt.Header.Dst)
		}
	}
}
