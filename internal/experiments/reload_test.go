package experiments

import "testing"

// TestRunReloadUnderLoad is the acceptance gate for the policy store: rule
// swaps during saturating ProcessBatch traffic never produce a verdict
// inconsistent with both the old and new rule sets, malformed candidates
// are rejected with the last-good rules serving, and the flow-cache
// generation advances exactly once per applied swap.
func TestRunReloadUnderLoad(t *testing.T) {
	cfg := DefaultReloadConfig()
	if testing.Short() {
		cfg.Swaps = 40
	}
	res, err := RunReloadUnderLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)

	if res.TornVerdicts != 0 {
		t.Fatalf("torn verdicts: %d (out of %d processed)", res.TornVerdicts, res.Processed)
	}
	if res.DivergentPool == 0 {
		t.Fatal("rule sets A and B agree on every pool packet; the experiment proves nothing")
	}
	if res.Swaps == 0 {
		t.Fatalf("no swaps applied: %+v", res.StoreStats)
	}
	if res.GenerationDelta != res.Swaps {
		t.Fatalf("generation moved %d for %d swaps (must be exactly one bump per swap)",
			res.GenerationDelta, res.Swaps)
	}
	if res.RejectedSwaps == 0 {
		t.Fatalf("no malformed candidate was injected/rejected: %+v", res.StoreStats)
	}
	if res.StoreStats.Version == "" || res.StoreStats.Rules == 0 {
		t.Fatalf("store lost its last-good state: %+v", res.StoreStats)
	}
	// Traffic must have observed both sides of swaps (otherwise the run
	// did not actually race reloads against enforcement).
	if res.VerdictsOld == 0 || res.VerdictsNew == 0 {
		t.Fatalf("divergent verdict split %d/%d: traffic never raced a swap",
			res.VerdictsOld, res.VerdictsNew)
	}
	if res.Processed == 0 {
		t.Fatal("no packets processed during churn")
	}
	// Every swap invalidates cached verdicts; the cache must have observed
	// stale entries (generation mismatches) during the churn.
	if res.FlowStats.StaleDrops == 0 {
		t.Fatalf("flow cache never invalidated on swap: %+v", res.FlowStats)
	}
}
