package experiments

import (
	"testing"

	"borderpatrol/internal/netsim"
	"borderpatrol/internal/policystore"
)

// TestRunSoakSmoke is the CI chaos gate: a scaled-down soak (tens of
// thousands of packets, minutes of virtual time) that still exercises
// every churn dimension — faults, swaps with malformed candidates,
// fail-closed outages, gateway restarts, idle GC — and asserts the full
// invariant set via (*SoakResult).Check. The acceptance-grade run
// (DefaultSoakConfig, ≥1M packets) is TestRunSoakFull below.
func TestRunSoakSmoke(t *testing.T) {
	cfg := SoakConfig{
		Packets:  30_000,
		Swaps:    12,
		Restarts: 2,
		Outages:  2,
		FailMode: policystore.FailClosed,
	}
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatalf("RunSoak: %v", err)
	}
	t.Log(res)
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	assertSoakShape(t, res, cfg)
}

// TestRunSoakFull drives the acceptance configuration: ≥1M packets at 1%
// per-fault rates, ≥50 swaps, ≥2 restarts. Skipped under -short (the CI
// race job runs the smoke; the full run executes in the default test
// sweep).
func TestRunSoakFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full soak skipped in -short mode")
	}
	cfg := DefaultSoakConfig()
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatalf("RunSoak: %v", err)
	}
	t.Log(res)
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	assertSoakShape(t, res, cfg)
	if res.Packets < 1_000_000 {
		t.Fatalf("packets = %d, want >= 1M", res.Packets)
	}
}

// assertSoakShape checks the run actually exercised the churn it was
// configured for — a soak that silently skipped its faults or restarts
// would pass Check while proving nothing.
func assertSoakShape(t *testing.T, res *SoakResult, cfg SoakConfig) {
	t.Helper()
	if res.Packets < cfg.Packets {
		t.Errorf("packets = %d, want >= %d", res.Packets, cfg.Packets)
	}
	if res.Restarts != uint64(cfg.Restarts) {
		t.Errorf("restarts = %d, want %d", res.Restarts, cfg.Restarts)
	}
	if res.DegradedEnters != uint64(cfg.Outages) {
		t.Errorf("degraded enters = %d, want %d", res.DegradedEnters, cfg.Outages)
	}
	if res.DegradedDrops == 0 {
		t.Error("no packets denied during degraded windows")
	}
	if res.Swaps == 0 || res.RejectedSwaps == 0 {
		t.Errorf("swaps = %d applied / %d rejected, want both > 0", res.Swaps, res.RejectedSwaps)
	}
	f := res.Faults
	if f.Drops == 0 || f.Duplicates == 0 || f.Reorders == 0 ||
		f.Corruptions == 0 || f.Truncations == 0 || f.Delays == 0 {
		t.Errorf("fault plan under-exercised: %+v", f)
	}
	if res.GCConnsReclaimed == 0 {
		t.Error("idle GC never reclaimed a half-open connection (lost FINs should produce them)")
	}
	if res.Delivered == 0 {
		t.Error("nothing was delivered")
	}
	ct := res.Conntrack
	if ct.DupCloses == 0 {
		t.Error("no duplicate closes observed (duplicated FINs should produce them)")
	}
	if ct.ResponsesChecked == 0 {
		t.Error("response-direction continuity check never ran")
	}
	if ct.ResponseAdopts == 0 {
		t.Error("no mid-stream adoptions (restarts wipe the tracker; their responses should re-prime)")
	}
	if len(res.Snapshots) < 10 {
		t.Errorf("in-run snapshots = %d, want >= 10", len(res.Snapshots))
	}
	for i, s := range res.Snapshots {
		if s.Epoch == 0 || s.VirtualTime <= 0 {
			t.Errorf("snapshot %d not filled in: %+v", i, s)
		}
	}
}

// TestLeakTrendDetectsMonotoneGrowth injects synthetic snapshot series
// into Check: a steadily climbing conntrack (the half-open-leak signature)
// must fail the run even though every end-state field is clean.
func TestLeakTrendDetectsMonotoneGrowth(t *testing.T) {
	res := &SoakResult{Conntrack: netsim.ConntrackStats{ResponsesChecked: 1}}
	for i := 0; i < 16; i++ {
		res.Snapshots = append(res.Snapshots, SoakSnapshot{
			Epoch:     i + 1,
			ConnsOpen: 100 + i*50, // 100 -> 850: monotone, >1.5x, >64 absolute
			FlowsLive: 40 + (i%2)*30,
			HeapBytes: 32 << 20,
		})
	}
	if err := res.Check(); err == nil {
		t.Fatal("Check passed despite a monotone conntrack growth trend")
	}
}

func TestLeakTrendIgnoresHealthyChurn(t *testing.T) {
	res := &SoakResult{Conntrack: netsim.ConntrackStats{ResponsesChecked: 1}}
	for i := 0; i < 16; i++ {
		res.Snapshots = append(res.Snapshots, SoakSnapshot{
			Epoch:     i + 1,
			ConnsOpen: 200 + (i%3)*80, // oscillates, no trend
			FlowsLive: 500 - i*10,     // shrinking
			HeapBytes: int64(30+i%4) << 20,
		})
	}
	if err := res.Check(); err != nil {
		t.Fatalf("Check flagged healthy oscillation: %v", err)
	}
}

func TestLeakTrendUnit(t *testing.T) {
	mono := make([]int64, 20)
	for i := range mono {
		mono[i] = int64(100 + i*20)
	}
	if !leakTrend(mono, 64) {
		t.Error("monotone growth not flagged")
	}
	if leakTrend(mono[:8], 64) {
		t.Error("series shorter than 10 samples must never trip")
	}
	plateau := []int64{100, 200, 300, 400, 500, 500, 500, 500, 500, 500, 500, 500}
	if leakTrend(plateau, 64) {
		t.Error("climb-to-plateau flagged as leak (only 4/11 strict increases)")
	}
	small := make([]int64, 20)
	for i := range small {
		small[i] = int64(10 + i) // grows, but by less than minAbs
	}
	if leakTrend(small, 64) {
		t.Error("sub-threshold growth flagged")
	}
}
