package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/netsim"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/policystore"
	"borderpatrol/internal/trackers"
)

// This file implements the chaos/soak harness: hours of virtual-time churn
// over a faulty wire — probabilistic drop/duplicate/reorder/corrupt/
// truncate/delay, policy swaps and rejected candidates mid-flood, policy
// backend outages past the staleness deadline, and full gateway restarts —
// with every delivery checked against an independently computed reference
// verdict. The run asserts the properties a production gateway must keep
// under all of it:
//
//   - Fail-safe: no fault sequence ever converts a deny verdict into a
//     delivered packet, and in fail-closed degradation nothing at all is
//     delivered.
//   - No leaks: flowtable and conntrack return to empty after the final GC
//     sweep, goroutine count returns to the pre-run level, and heap growth
//     stays bounded.
//   - Cold-restart correctness: after a gateway restart discards all
//     dataplane state, re-resolved verdicts still match the reference.

// SoakConfig parameterizes the soak run.
type SoakConfig struct {
	// Apps sizes the generated corpus (default 8).
	Apps int
	// Packets is the minimum number of packets pushed onto the wire
	// (default 1_050_000).
	Packets int
	// Burst is the DeliverBatch burst size (default 512).
	Burst int
	// Swaps is how many policy swaps the run performs (default 60); every
	// tenth candidate is malformed and must be rejected with last-good
	// kept serving.
	Swaps int
	// Restarts is how many gateway crash/restart cycles to inject
	// (default 3).
	Restarts int
	// Outages is how many policy-backend outages to inject, each held past
	// the staleness deadline so the store degrades (default 2).
	Outages int
	// FailMode is the degraded posture during outages (default
	// FailClosed — the paper's deny-must-survive argument).
	FailMode policystore.FailMode
	// Faults overrides the default fault plan (1% each of drop, duplicate,
	// reorder, corrupt, truncate, delay) when any probability is set.
	Faults netsim.FaultPlan
	// Seed drives corpus generation and the fault PRNG (default 2019).
	Seed int64
	// Dir hosts the hot-reloaded policy file (default: fresh temp dir).
	Dir string
	// SnapshotEvery takes an in-run resource snapshot every N epochs
	// (0 = automatic: epochs/16, at least every epoch), feeding the
	// leak-trend detection in Check.
	SnapshotEvery int
}

// DefaultSoakConfig returns the acceptance-grade configuration: ≥1M
// packets at 1% per-packet fault rates, ≥50 swaps, ≥2 restarts.
func DefaultSoakConfig() SoakConfig {
	return SoakConfig{
		Apps: 8, Packets: 1_050_000, Burst: 512,
		Swaps: 60, Restarts: 3, Outages: 2,
		FailMode: policystore.FailClosed, Seed: 2019,
	}
}

// Soak virtual-time parameters.
const (
	// soakEpochStep is the virtual time advanced per epoch; hundreds of
	// epochs make the run span hours of virtual time.
	soakEpochStep = 30 * time.Second
	// soakFlowTTL bounds flow-verdict cache entries.
	soakFlowTTL = 90 * time.Second
	// soakConnIdle is the conntrack idle-sweep deadline.
	soakConnIdle = 60 * time.Second
	// soakMaxStale is the policy staleness deadline; outages hold the
	// backend down past it.
	soakMaxStale = 2 * time.Minute
	// soakHeapBound caps allowed heap growth across the run.
	soakHeapBound = 128 << 20
)

// SoakSnapshot is one in-run resource reading, taken at an epoch close
// after that epoch's GC sweep — the soak's own scrape. A healthy run's
// series oscillates with the churn; a leak shows up as a monotone climb
// long before the end-state assertions would catch an exhausted table.
type SoakSnapshot struct {
	// Epoch is the 1-based epoch the snapshot closed.
	Epoch int
	// VirtualTime is the virtual clock reading relative to the run start.
	VirtualTime time.Duration
	// Packets is the cumulative packet count at the snapshot.
	Packets int
	// ConnsOpen and FlowsLive are the post-sweep table sizes.
	ConnsOpen int
	FlowsLive int
	// HeapBytes is the post-GC live heap.
	HeapBytes int64
	// AuditPending is the audit queue depth.
	AuditPending uint64
}

// SoakResult reports the run. Check returns the first violated invariant.
type SoakResult struct {
	// Packets is how many packets were pushed onto the wire; Delivered and
	// Dropped partition their fates.
	Packets   int
	Delivered int
	Dropped   int
	// VirtualTime is the total virtual time the run spanned.
	VirtualTime time.Duration
	// Epochs is how many churn epochs ran.
	Epochs int

	// Swaps counts applied policy swaps; RejectedSwaps malformed
	// candidates refused with last-good kept serving.
	Swaps         uint64
	RejectedSwaps uint64
	// Restarts counts gateway crash/restart cycles; Outages the policy
	// backend outages held past the staleness deadline.
	Restarts uint64
	Outages  int
	// DegradedEnters counts staleness-degradation transitions (one per
	// outage in a healthy run); DegradedDrops the packets the degraded
	// engine refused.
	DegradedEnters uint64
	DegradedDrops  uint64

	// FailSafeViolations counts packets delivered although the reference
	// verdict (or the active fail-closed degradation) said deny. The
	// soak's headline claim is that this is always zero.
	FailSafeViolations int
	// VerdictMismatches counts enforced verdicts that disagreed with the
	// reference verdict for the active rule set outside degraded windows —
	// also always zero (covers cold-restart re-resolution).
	VerdictMismatches int
	// SpuriousResponseDrops counts server responses the gateway's
	// response-direction continuity check refused. The soak injects no
	// crafted responses, so any drop here is a false positive — always
	// zero, even across restarts (the tracker re-adopts mid-stream).
	SpuriousResponseDrops int

	// ConnsLeaked and FlowsLeaked are tracked connections / cached flow
	// verdicts still alive after the final idle sweep — both must be zero.
	ConnsLeaked int
	FlowsLeaked int
	// GoroutinesLeaked is the goroutine-count delta after shutdown.
	GoroutinesLeaked int
	// HeapGrowth is the post-GC heap delta across the run.
	HeapGrowth int64
	// GCConnsReclaimed / GCFlowsReclaimed count what the periodic idle
	// sweeps freed (half-open connections from lost FINs, expired flows).
	GCConnsReclaimed int
	GCFlowsReclaimed int

	// Snapshots are the periodic in-run resource readings; Check runs
	// leak-trend detection over them.
	Snapshots []SoakSnapshot

	// Faults snapshots the injected-fault counters.
	Faults netsim.FaultStats
	// Conntrack and FlowStats snapshot the final tracker/cache state.
	Conntrack netsim.ConntrackStats
	FlowStats flowtable.Stats
	// StoreStats snapshots the policy store.
	StoreStats policystore.Stats
}

// String renders a paper-style summary.
func (r *SoakResult) String() string {
	return fmt.Sprintf(
		"soak: %d packets over %v virtual (%d epochs): %d delivered / %d dropped; "+
			"faults %d drop %d dup %d reorder %d corrupt %d truncate; "+
			"%d swaps + %d rejected, %d restarts, %d outages (%d degraded enters); "+
			"fail-safe violations: %d; verdict mismatches: %d; "+
			"leaks: %d conns, %d flows, %d goroutines; heap Δ%d KiB",
		r.Packets, r.VirtualTime.Round(time.Second), r.Epochs, r.Delivered, r.Dropped,
		r.Faults.Drops, r.Faults.Duplicates, r.Faults.Reorders,
		r.Faults.Corruptions, r.Faults.Truncations,
		r.Swaps, r.RejectedSwaps, r.Restarts, r.Outages, r.DegradedEnters,
		r.FailSafeViolations, r.VerdictMismatches,
		r.ConnsLeaked, r.FlowsLeaked, r.GoroutinesLeaked, r.HeapGrowth/1024)
}

// Check validates every soak invariant, returning the first violation.
func (r *SoakResult) Check() error {
	switch {
	case r.FailSafeViolations != 0:
		return fmt.Errorf("soak: %d fail-safe violations (deny delivered)", r.FailSafeViolations)
	case r.VerdictMismatches != 0:
		return fmt.Errorf("soak: %d verdicts diverged from reference", r.VerdictMismatches)
	case r.SpuriousResponseDrops != 0:
		return fmt.Errorf("soak: %d clean responses dropped as seq injections", r.SpuriousResponseDrops)
	case r.Conntrack.ResponsesChecked == 0:
		return fmt.Errorf("soak: response-direction continuity check never exercised")
	case r.Conntrack.ResponseSeqDrops != 0:
		return fmt.Errorf("soak: %d response seq-injection drops in clean traffic", r.Conntrack.ResponseSeqDrops)
	case r.ConnsLeaked != 0:
		return fmt.Errorf("soak: %d conntrack entries leaked", r.ConnsLeaked)
	case r.FlowsLeaked != 0:
		return fmt.Errorf("soak: %d flowtable entries leaked", r.FlowsLeaked)
	case r.GoroutinesLeaked > 0:
		return fmt.Errorf("soak: %d goroutines leaked", r.GoroutinesLeaked)
	case r.HeapGrowth > soakHeapBound:
		return fmt.Errorf("soak: heap grew %d bytes (bound %d)", r.HeapGrowth, int64(soakHeapBound))
	case r.DegradedEnters < uint64(r.Outages):
		return fmt.Errorf("soak: %d outages but only %d degraded transitions", r.Outages, r.DegradedEnters)
	}
	// Trend detection over the in-run snapshots: a table or the heap
	// climbing monotonically across the run is a leak even if the final
	// drain happened to pull the end state back under the bounds.
	conns := make([]int64, len(r.Snapshots))
	flows := make([]int64, len(r.Snapshots))
	heap := make([]int64, len(r.Snapshots))
	for i, s := range r.Snapshots {
		conns[i] = int64(s.ConnsOpen)
		flows[i] = int64(s.FlowsLive)
		heap[i] = s.HeapBytes
	}
	if leakTrend(conns, 64) {
		return fmt.Errorf("soak: conntrack size trends up across %d snapshots (%d -> %d)",
			len(conns), conns[0], conns[len(conns)-1])
	}
	if leakTrend(flows, 64) {
		return fmt.Errorf("soak: flowtable size trends up across %d snapshots (%d -> %d)",
			len(flows), flows[0], flows[len(flows)-1])
	}
	if leakTrend(heap, 8<<20) {
		return fmt.Errorf("soak: heap trends up across %d snapshots (%d -> %d bytes)",
			len(heap), heap[0], heap[len(heap)-1])
	}
	return nil
}

// leakTrend reports whether a resource series exhibits monotone growth: a
// leak signature, as opposed to the oscillation of healthy churn. It
// requires enough samples to be meaningful (≥10), near-monotone steps
// (≥90% non-decreasing, ≥50% strictly increasing), and material growth
// (last > 1.5×first and last−first > minAbs) — so a series that climbs to
// a plateau, oscillates, or grows by noise does not trip it.
func leakTrend(series []int64, minAbs int64) bool {
	if len(series) < 10 {
		return false
	}
	first, last := series[0], series[len(series)-1]
	if last-first <= minAbs || float64(last) <= 1.5*float64(first) {
		return false
	}
	nondec, strict := 0, 0
	for i := 1; i < len(series); i++ {
		if series[i] >= series[i-1] {
			nondec++
		}
		if series[i] > series[i-1] {
			strict++
		}
	}
	steps := len(series) - 1
	return nondec*10 >= steps*9 && strict*2 >= steps
}

// heapInUse reports post-GC live heap bytes.
func heapInUse() int64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return int64(m.HeapAlloc)
}

// RunSoak builds a fully faulted testbed and churns it for hours of
// virtual time: device cohorts joining and leaving (epochs rotate which
// apps' traffic is live), policy swaps and malformed candidates mid-flood,
// backend outages that trip the staleness deadline, gateway restarts that
// wipe all dataplane state, and periodic idle-GC sweeps. Every delivered
// packet's verdict is checked against an independently computed reference.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	def := DefaultSoakConfig()
	if cfg.Apps <= 0 {
		cfg.Apps = def.Apps
	}
	if cfg.Packets <= 0 {
		cfg.Packets = def.Packets
	}
	if cfg.Burst <= 0 {
		cfg.Burst = def.Burst
	}
	if cfg.Swaps <= 0 {
		cfg.Swaps = def.Swaps
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = def.Restarts
	}
	if cfg.Outages <= 0 {
		cfg.Outages = def.Outages
	}
	if cfg.FailMode == policystore.FailStatic {
		cfg.FailMode = def.FailMode
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	zeroPlan := netsim.FaultPlan{}
	if cfg.Faults == zeroPlan {
		cfg.Faults = netsim.FaultPlan{
			Drop: 0.01, Duplicate: 0.01, Reorder: 0.01,
			Corrupt: 0.01, Truncate: 0.01,
			Delay: 0.01, DelayMin: time.Millisecond, DelayMax: 20 * time.Millisecond,
		}
	}
	cfg.Faults.Seed = uint64(cfg.Seed)
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "bp-soak-*")
		if err != nil {
			return nil, fmt.Errorf("soak: %w", err)
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}

	goroutinesStart := runtime.NumGoroutine()
	heapStart := heapInUse()

	gen := apkgen.DefaultConfig()
	gen.Apps = cfg.Apps
	gen.Seed = cfg.Seed
	corpus, err := apkgen.Generate(gen)
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}

	// Rule sets A (deny half the tracker catalog) and B (deny all of it):
	// the same divergent pair the reload experiment uses, so swaps flip
	// real verdicts mid-flood.
	catalog := trackers.Catalog()
	var rulesA, rulesB []policy.Rule
	for i, lib := range catalog {
		rule := policy.Rule{Action: policy.Deny, Level: policy.LevelLibrary, Target: lib.Package}
		rulesB = append(rulesB, rule)
		if i%2 == 0 {
			rulesA = append(rulesA, rule)
		}
	}
	docs := [2]string{policy.FormatPolicy(rulesA), policy.FormatPolicy(rulesB)}

	policyPath := filepath.Join(cfg.Dir, "policy.bp")
	if err := os.WriteFile(policyPath, []byte(docs[0]), 0o644); err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	tb, err := NewTestbed(corpus, TestbedConfig{
		EnforcementOn:     true,
		PolicySource:      policystore.NewFileSource(policyPath),
		PolicyMaxStale:    soakMaxStale,
		PolicyFailMode:    cfg.FailMode,
		PolicyVirtualTime: true,
		FlowTTL:           soakFlowTTL,
		Faults:            &cfg.Faults,
		DisableCapture:    true,
		Dataplane:         true,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	// The traffic pool: every functionality of every app invoked once,
	// kept per app so epochs can rotate device cohorts.
	perApp := make([][]*ipv4.Packet, len(corpus))
	var pool []*ipv4.Packet
	poolApp := make([]int, 0) // pool index → app index
	for i, ga := range corpus {
		for _, fn := range ga.Functionalities {
			res, err := tb.Apps[i].Invoke(fn.Name)
			if err != nil {
				return nil, fmt.Errorf("soak: invoke %s/%s: %w", ga.APK.PackageName, fn.Name, err)
			}
			perApp[i] = append(perApp[i], res.Packets...)
		}
		for range perApp[i] {
			poolApp = append(poolApp, i)
		}
		pool = append(pool, perApp[i]...)
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("soak: corpus produced no packets")
	}

	// Reference verdicts under both rule sets from uncached enforcers
	// sharing the testbed's database. refDeny[s][i] is whether rule set s
	// denies pool packet i.
	var refDeny [2][]bool
	for s, rules := range [2][]policy.Rule{rulesA, rulesB} {
		eng, err := policy.NewEngine(rules, policy.VerdictAllow)
		if err != nil {
			return nil, fmt.Errorf("soak: %w", err)
		}
		ref := enforcer.New(enforcer.Config{}, tb.DB, eng)
		refDeny[s] = make([]bool, len(pool))
		for i, pkt := range pool {
			refDeny[s][i] = ref.Process(pkt).Verdict == policy.VerdictDrop
		}
	}

	gw := tb.Network.Gateway
	res := &SoakResult{Outages: cfg.Outages}
	clockStart := tb.Network.Clock.Now()
	appliedStart := tb.Policy.Stats().Applied

	// Epoch plan: enough epochs to push cfg.Packets, with swaps, restarts,
	// and outages spread across them.
	epochs := (cfg.Packets + len(pool) - 1) / len(pool)
	if epochs < cfg.Swaps {
		epochs = cfg.Swaps
	}
	swapEvery := epochs / cfg.Swaps
	if swapEvery < 1 {
		swapEvery = 1
	}
	restartEvery := epochs / (cfg.Restarts + 1)
	if restartEvery < 1 {
		restartEvery = 1
	}
	outageEvery := epochs / (cfg.Outages + 1)
	if outageEvery < 1 {
		outageEvery = 1
	}

	activeDoc := 0 // index into docs of the last successfully applied set
	swapsDone := 0
	degraded := false

	// In-run snapshot cadence: every N epochs (config override), default
	// ~16 over the planned run, at least every epoch — so even a smoke-size
	// run yields a series long enough for trend detection.
	snapEvery := cfg.SnapshotEvery
	if snapEvery <= 0 {
		snapEvery = epochs / 16
		if snapEvery < 1 {
			snapEvery = 1
		}
	}

	// deliverChecked pushes one burst and scores outcomes against the
	// reference for the active rule set.
	deliverChecked := func(idxs []int) {
		burst := make([]*ipv4.Packet, len(idxs))
		for j, i := range idxs {
			burst[j] = pool[i]
		}
		out := tb.Network.DeliverBatch(burst)
		res.Packets += len(burst)
		for j, d := range out {
			i := idxs[j]
			if d.Delivered {
				res.Delivered++
			} else {
				res.Dropped++
			}
			deny := refDeny[activeDoc][i]
			switch {
			case degraded:
				// Fail-closed degradation: nothing may be delivered at all.
				if d.Delivered {
					res.FailSafeViolations++
				} else if d.Enforcement != nil {
					res.DegradedDrops++
				}
			case deny && d.Delivered:
				res.FailSafeViolations++
			case d.Enforcement != nil:
				got := d.Enforcement.Verdict == policy.VerdictDrop
				if got != deny {
					res.VerdictMismatches++
				}
			}
			if d.ResponseDropped {
				res.SpuriousResponseDrops++
			}
		}
	}

	// pump runs one epoch's traffic: the live cohort's packets in bursts.
	pump := func(live map[int]bool) {
		idxs := make([]int, 0, cfg.Burst)
		for i := range pool {
			if !live[poolApp[i]] {
				continue
			}
			idxs = append(idxs, i)
			if len(idxs) == cfg.Burst {
				deliverChecked(idxs)
				idxs = idxs[:0]
			}
		}
		if len(idxs) > 0 {
			deliverChecked(idxs)
		}
	}

	for epoch := 0; epoch < epochs || res.Packets < cfg.Packets; epoch++ {
		// Device churn: a rotating cohort of apps is live each epoch
		// (devices join and leave the BYOD fleet); at least half stay on
		// so every epoch has traffic.
		live := make(map[int]bool, len(corpus))
		for a := range corpus {
			live[a] = a%2 == 0 || (a+epoch)%3 != 0
		}
		pump(live)

		// The background poller's tick: one reload cycle per epoch keeps
		// the store's last-good age fresh while the backend is healthy, so
		// only deliberate outages can trip the staleness deadline.
		if _, err := tb.Policy.Reload(); err != nil {
			return nil, fmt.Errorf("soak: poll cycle: %w", err)
		}

		// Policy swap (every tenth candidate malformed and rejected).
		if swapsDone < cfg.Swaps && epoch%swapEvery == swapEvery-1 {
			swapsDone++
			if swapsDone%10 == 0 {
				if err := os.WriteFile(policyPath, []byte("{[deny][library \"torn\"]}\n"), 0o644); err != nil {
					return nil, fmt.Errorf("soak: %w", err)
				}
				if _, err := tb.Policy.Reload(); err == nil {
					return nil, fmt.Errorf("soak: malformed candidate was accepted")
				}
				// Last-good keeps serving (activeDoc unchanged); the bad
				// push is then rolled back, as an operator would on the
				// rejection alert — leaving it in place is the outage case
				// below, which must degrade instead.
				if err := os.WriteFile(policyPath, []byte(docs[activeDoc]), 0o644); err != nil {
					return nil, fmt.Errorf("soak: %w", err)
				}
			} else {
				next := 1 - activeDoc
				if err := os.WriteFile(policyPath, []byte(docs[next]), 0o644); err != nil {
					return nil, fmt.Errorf("soak: %w", err)
				}
				if _, err := tb.Policy.Reload(); err != nil {
					return nil, fmt.Errorf("soak: swap rejected: %w", err)
				}
				activeDoc = next
			}
		}

		// Gateway crash/restart: all dataplane state gone; the epochs that
		// follow re-resolve cold and the verdict checks prove correctness.
		if restartEvery > 0 && epoch > 0 && epoch%restartEvery == 0 &&
			gw.Restarts() < uint64(cfg.Restarts) {
			gw.Restart()
		}

		// Policy backend outage: the file disappears, virtual time runs
		// past the staleness deadline, and the store must degrade. All
		// traffic during the degraded window is checked above (fail-closed
		// delivers nothing).
		if outageEvery > 0 && epoch > 0 && epoch%outageEvery == 0 &&
			res.DegradedEnters < uint64(cfg.Outages) {
			if err := os.Remove(policyPath); err != nil {
				return nil, fmt.Errorf("soak: %w", err)
			}
			tb.Network.Clock.Advance(soakMaxStale + time.Second)
			if _, err := tb.Policy.Reload(); err == nil {
				return nil, fmt.Errorf("soak: fetch from removed backend succeeded")
			}
			if !tb.Policy.Degraded() {
				return nil, fmt.Errorf("soak: store did not degrade past MaxStale")
			}
			degraded = true
			res.DegradedEnters++
			pump(live) // degraded-window traffic: all denied under fail-closed

			// Recovery: the backend returns, the next cycle lifts
			// degradation and re-applies the active document.
			if err := os.WriteFile(policyPath, []byte(docs[activeDoc]), 0o644); err != nil {
				return nil, fmt.Errorf("soak: %w", err)
			}
			if _, err := tb.Policy.Reload(); err != nil {
				return nil, fmt.Errorf("soak: recovery reload: %w", err)
			}
			if tb.Policy.Degraded() {
				return nil, fmt.Errorf("soak: store still degraded after recovery")
			}
			degraded = false
		}

		// Epoch close: virtual time passes, idle GC sweeps reclaim
		// half-open connections (lost FINs) and expired flows.
		tb.Network.Clock.Advance(soakEpochStep)
		conns, flows := gw.GC(soakConnIdle)
		res.GCConnsReclaimed += conns
		res.GCFlowsReclaimed += flows
		res.Epochs++

		// In-run snapshot: post-sweep table sizes and post-GC heap, the
		// series Check's leak-trend detection runs over.
		if res.Epochs%snapEvery == 0 {
			res.Snapshots = append(res.Snapshots, SoakSnapshot{
				Epoch:        res.Epochs,
				VirtualTime:  tb.Network.Clock.Now() - clockStart,
				Packets:      res.Packets,
				ConnsOpen:    gw.Conntrack().Open,
				FlowsLive:    tb.Enforcer.Stats().Flow.Live,
				HeapBytes:    heapInUse(),
				AuditPending: tb.Audit.Stats().Pending,
			})
		}
	}

	// Final drain: everything idles out, then one sweep must leave both
	// tables empty — any surviving entry is a leak.
	tb.Network.Clock.Advance(soakFlowTTL + soakConnIdle + time.Second)
	conns, flows := gw.GC(soakConnIdle)
	res.GCConnsReclaimed += conns
	res.GCFlowsReclaimed += flows
	res.Conntrack = gw.Conntrack()
	res.FlowStats = tb.Enforcer.Stats().Flow
	res.ConnsLeaked = res.Conntrack.Open
	res.FlowsLeaked = res.FlowStats.Live
	res.StoreStats = tb.Policy.Stats()
	res.Swaps = res.StoreStats.Applied - appliedStart
	// Failures = malformed candidates + one failed fetch per outage.
	res.RejectedSwaps = res.StoreStats.Failures - res.DegradedEnters
	res.Restarts = gw.Restarts()
	res.Faults = tb.Network.FaultStats()
	res.VirtualTime = tb.Network.Clock.Now() - clockStart

	// Shutdown, then the hand-rolled goroutine-leak check: the audit
	// pipeline and any poller must be gone. A short settle loop absorbs
	// runtime-internal stragglers.
	if err := tb.Close(); err != nil {
		return nil, fmt.Errorf("soak: close: %w", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		res.GoroutinesLeaked = runtime.NumGoroutine() - goroutinesStart
		if res.GoroutinesLeaked <= 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	res.HeapGrowth = heapInUse() - heapStart
	return res, nil
}
