package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strings"
	"time"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/android"
	"borderpatrol/internal/audit"
	"borderpatrol/internal/contextmgr"
	"borderpatrol/internal/dns"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/httpsim"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/metrics"
	"borderpatrol/internal/netsim"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/policystore"
	"borderpatrol/internal/sanitizer"
)

// This file implements the fleet-scale experiment: N gateways on one
// virtual-time network, each fronting a subnet of pooled virtual devices
// and enforcing its own policy-group shard fed from a shared hub over the
// watch path. The run pushes a mixed HTTP+DNS workload through every
// gateway, swaps the fleet policy mid-run (propagation must take exactly
// one watch round per gateway, asserted by counters), accounts for
// cross-group policy leaks, and reports aggregate throughput and
// per-packet gateway latency quantiles (BENCH_fleet.json).

// FleetRunConfig sizes the fleet experiment.
type FleetRunConfig struct {
	// Gateways is the fleet size (default 8).
	Gateways int
	// DevicesPerGateway is the pooled virtual-device population behind
	// each gateway (default 1250 — 10k devices fleet-wide).
	DevicesPerGateway int
	// BatchSize caps one gateway drain burst (default 1024 packets).
	BatchSize int
	// Metrics, when non-nil, receives every gateway's registry labelled
	// by gateway name instead of a run-private aggregate — serve it to
	// scrape the fleet live (bp-experiments -run fleet -metrics-addr).
	Metrics *metrics.Aggregate
	// AuditWriter receives the fleet-wide enforcement audit as JSON
	// lines through one shared bounded-async pipeline (nil disables
	// auditing).
	AuditWriter io.Writer
}

// DefaultFleetRunConfig returns the standard scale: 8 gateways, 10,000
// pooled devices.
func DefaultFleetRunConfig() FleetRunConfig {
	return FleetRunConfig{Gateways: 8, DevicesPerGateway: 1250, BatchSize: 1024}
}

// FleetGatewayReport is one gateway's slice of the run.
type FleetGatewayReport struct {
	Name    string `json:"name"`
	Devices int    `json:"devices"`
	// Delivered and Blocked count this gateway's packets.
	Delivered uint64 `json:"delivered"`
	Blocked   uint64 `json:"blocked"`
	// CrossGroupLeaks counts packets a foreign group's rule wrongly
	// dropped here; UnderEnforcement counts packets this gateway's own
	// group rule should have dropped but delivered; GlobalLeaks counts
	// deliveries past a fleet-global rule. All must be zero.
	CrossGroupLeaks  uint64 `json:"cross_group_leaks"`
	UnderEnforcement uint64 `json:"under_enforcement"`
	GlobalLeaks      uint64 `json:"global_leaks"`
	// PushWatchRounds/PushApplied/PushGenerations are the deltas the
	// mid-run fleet-wide policy push produced on this gateway's store and
	// engine. One round, one apply, one generation — push, not polling.
	PushWatchRounds uint64 `json:"push_watch_rounds"`
	PushApplied     uint64 `json:"push_applied"`
	PushGenerations uint64 `json:"push_generations"`
}

// FleetBenchResult reports the fleet experiment.
type FleetBenchResult struct {
	Gateways int `json:"gateways"`
	Devices  int `json:"devices"`
	// HTTPPackets and DNSPackets split the workload by protocol.
	HTTPPackets uint64 `json:"http_packets"`
	DNSPackets  uint64 `json:"dns_packets"`
	Delivered   uint64 `json:"delivered"`
	Blocked     uint64 `json:"blocked"`
	// Leak totals across the fleet (sum of the per-gateway reports).
	CrossGroupLeaks  uint64 `json:"cross_group_leaks"`
	UnderEnforcement uint64 `json:"under_enforcement"`
	GlobalLeaks      uint64 `json:"global_leaks"`
	// ElapsedSec is the wall time of the delivery loops only; PktsPerSec
	// is the aggregate packet rate across every gateway over it.
	ElapsedSec float64 `json:"elapsed_sec"`
	PktsPerSec float64 `json:"pkts_per_sec"`
	// P50Ns/P99Ns/P999Ns are per-packet gateway wall-latency quantiles
	// (each drain burst's elapsed time divided by its packet count).
	P50Ns  uint64 `json:"p50_ns"`
	P99Ns  uint64 `json:"p99_ns"`
	P999Ns uint64 `json:"p999_ns"`
	// PerGateway has one report per fleet member, in subnet order.
	PerGateway []FleetGatewayReport `json:"per_gateway"`
}

// Check asserts the run's invariants: zero policy leaks in any direction
// and fleet-wide policy propagation in exactly one watch round per
// gateway.
func (r *FleetBenchResult) Check() error {
	if r.CrossGroupLeaks != 0 || r.UnderEnforcement != 0 || r.GlobalLeaks != 0 {
		return fmt.Errorf("fleet: policy leaks: cross-group=%d under-enforced=%d global=%d",
			r.CrossGroupLeaks, r.UnderEnforcement, r.GlobalLeaks)
	}
	if r.Delivered == 0 || r.Blocked == 0 {
		return fmt.Errorf("fleet: degenerate run: delivered=%d blocked=%d", r.Delivered, r.Blocked)
	}
	for _, g := range r.PerGateway {
		if g.PushWatchRounds != 1 || g.PushApplied != 1 || g.PushGenerations != 1 {
			return fmt.Errorf("fleet: %s: push took rounds=%d applies=%d generations=%d, want 1/1/1",
				g.Name, g.PushWatchRounds, g.PushApplied, g.PushGenerations)
		}
	}
	return nil
}

// Format renders a paper-style summary.
func (r *FleetBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d gateways, %d pooled devices (HTTP %d + DNS %d packets)\n",
		r.Gateways, r.Devices, r.HTTPPackets, r.DNSPackets)
	fmt.Fprintf(&b, "delivered %d, blocked %d in %.2fs — %.0f pkts/sec aggregate\n",
		r.Delivered, r.Blocked, r.ElapsedSec, r.PktsPerSec)
	fmt.Fprintf(&b, "per-packet gateway latency: p50=%dns p99=%dns p999=%dns\n",
		r.P50Ns, r.P99Ns, r.P999Ns)
	fmt.Fprintf(&b, "leaks: cross-group=%d under-enforced=%d global=%d\n",
		r.CrossGroupLeaks, r.UnderEnforcement, r.GlobalLeaks)
	for _, g := range r.PerGateway {
		fmt.Fprintf(&b, "  %-6s %5d devices  %7d delivered  %7d blocked  push: %d round %d apply %d gen\n",
			g.Name, g.Devices, g.Delivered, g.Blocked,
			g.PushWatchRounds, g.PushApplied, g.PushGenerations)
	}
	return b.String()
}

// WriteJSON writes the machine-readable result (BENCH_fleet.json).
func (r *FleetBenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// fleetMember is one assembled gateway: engine, sharded store, enforcer,
// template device, device pool, and the invocation template bursts.
type fleetMember struct {
	name   string
	prefix netip.Prefix
	engine *policy.Engine
	store  *policystore.Store
	pool   *netsim.DevicePool
	// bursts maps workload kind to the template device's packet burst,
	// cloned and source-rewritten per virtual device.
	bursts map[string][]*ipv4.Packet
}

// fleet workload kinds and their expected fate.
const (
	kindSync       = "sync"        // HTTP GET, allowed everywhere
	kindResolve    = "resolve"     // DNS query, allowed everywhere
	kindBeacon     = "beacon"      // HTTP POST, denied by the global rule
	kindProbeOwn   = "probe-own"   // DNS query, denied by this gateway's group
	kindProbeOther = "probe-other" // DNS query, denied only by ANOTHER group — must deliver
)

// fleetPolicyDoc renders the fleet's grouped policy: one global rule plus
// one group per gateway, each denying its own exfiltration class.
func fleetPolicyDoc(gateways int, quarantine bool) string {
	var b strings.Builder
	b.WriteString("// fleet-wide rules\n")
	b.WriteString("{[deny][class][\"com/fleet/app/Beacon\"]}\n")
	if quarantine {
		// The mid-run push adds this unused global rule: every shard's
		// scoped render changes, so every store must apply exactly once.
		b.WriteString("{[deny][class][\"com/fleet/app/Quarantine\"]}\n")
	}
	for i := 0; i < gateways; i++ {
		fmt.Fprintf(&b, "//@group g%d\n", i)
		fmt.Fprintf(&b, "{[deny][class][\"com/fleet/app/Exfil%d\"]}\n", i)
	}
	return b.String()
}

// buildFleetMember assembles gateway i on the shared network. auditLog
// may be nil (auditing off); the fleet shares one pipeline.
func buildFleetMember(i, gateways, devices int, network *netsim.Network, db *analyzer.Database, hub *policystore.Hub, agg *metrics.Aggregate, auditLog *audit.Log) (*fleetMember, error) {
	name := fmt.Sprintf("gw%d", i)
	if gateways > 200 {
		return nil, fmt.Errorf("fleet sized for at most 200 gateways, got %d", gateways)
	}
	// One /16 per gateway: room for 65k pooled devices each.
	prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(1 + i), 0, 0}), 16).Masked()

	engine, err := policy.NewEngine(nil, policy.VerdictAllow)
	if err != nil {
		return nil, err
	}
	store, err := policystore.New(policystore.Config{
		Source:       policystore.NewGroupScopedSource(hub.Source(), fmt.Sprintf("g%d", i)),
		Engine:       engine,
		Poll:         time.Hour, // propagation must come from the watch
		WatchTimeout: time.Hour,
	})
	if err != nil {
		return nil, err
	}
	if err := store.Load(); err != nil {
		return nil, err
	}

	enf := enforcer.New(enforcer.Config{
		Flows: enforcer.NewFlowCache(flowtable.Config{Clock: network.Clock}),
		Audit: auditLog,
	}, db, engine)
	gw := netsim.NewGateway(netsim.GatewayConfig{
		Enforcer:  enf,
		Sanitizer: sanitizer.New(sanitizer.Config{}),
		Clock:     network.Clock,
	})
	network.AddGatewayRoute(prefix, gw)

	reg := metrics.NewRegistry()
	enf.RegisterMetrics(reg)
	gw.RegisterMetrics(reg)
	store.RegisterMetrics(reg)
	agg.Attach(name, reg)

	// The template device takes the subnet's first host address; the pool
	// numbers virtual devices from the second onward.
	device := android.NewDevice(android.Config{
		Addr:            prefix.Addr().Next(),
		Kernel:          kernel.Config{AllowUnprivilegedIPOptions: true, SetOptionsOncePerSocket: true},
		XposedInstalled: true,
	})
	manager := contextmgr.New(device)
	if err := device.LoadModule(manager); err != nil {
		return nil, err
	}

	qResolve, err := dnsQuery(1, "files.corp.example")
	if err != nil {
		return nil, err
	}
	qOwn, err := dnsQuery(2, "c2.fleet.example")
	if err != nil {
		return nil, err
	}
	qOther, err := dnsQuery(3, "c2.fleet.example")
	if err != nil {
		return nil, err
	}
	other := (i + 1) % gateways
	httpEP := netip.AddrPortFrom(netip.MustParseAddr("198.18.80.1"), 443)
	ga := scriptedApp(fmt.Sprintf("com.fleet.%s", name), "com/fleet/app", []scriptedFn{
		{name: kindSync, desirable: true, class: "Work", method: "sync",
			op: android.NetOp{Endpoint: httpEP, Host: "files.corp", Method: "GET", Requests: 2}},
		{name: kindBeacon, class: "Beacon", method: "phoneHome",
			op: android.NetOp{Endpoint: httpEP, Host: "data.tracker", Method: "POST", PayloadBytes: 128}},
		{name: kindResolve, desirable: true, class: "Resolver", method: "lookup",
			op: android.NetOp{Endpoint: dnsServerAddr, Proto: ipv4.ProtoUDP, Datagram: qResolve, Requests: 2}},
		{name: kindProbeOwn, class: fmt.Sprintf("Exfil%d", i), method: "exfil",
			op: android.NetOp{Endpoint: dnsServerAddr, Proto: ipv4.ProtoUDP, Datagram: qOwn}},
		{name: kindProbeOther, desirable: true, class: fmt.Sprintf("Exfil%d", other), method: "exfil",
			op: android.NetOp{Endpoint: dnsServerAddr, Proto: ipv4.ProtoUDP, Datagram: qOther}},
	})
	if err := db.Add(ga.APK); err != nil {
		return nil, err
	}
	app, err := device.InstallApp(ga.APK, ga.Functionalities, android.ProfileWork)
	if err != nil {
		return nil, err
	}

	m := &fleetMember{
		name:   name,
		prefix: prefix,
		engine: engine,
		store:  store,
		bursts: make(map[string][]*ipv4.Packet, 5),
	}
	for _, kind := range []string{kindSync, kindBeacon, kindResolve, kindProbeOwn, kindProbeOther} {
		res, err := app.Invoke(kind)
		if err != nil {
			return nil, fmt.Errorf("invoke %s: %w", kind, err)
		}
		m.bursts[kind] = res.Packets
	}
	m.pool, err = netsim.NewDevicePool(prefix, devices)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// RunFleet stands up the fleet and runs the mixed workload: every virtual
// device's HTTP sync, tracker beacon, DNS resolution, own-group probe and
// foreign-group probe, with a fleet-wide policy push between the two
// halves of the device population.
func RunFleet(cfg FleetRunConfig) (*FleetBenchResult, error) {
	def := DefaultFleetRunConfig()
	if cfg.Gateways <= 0 {
		cfg.Gateways = def.Gateways
	}
	if cfg.DevicesPerGateway <= 0 {
		cfg.DevicesPerGateway = def.DevicesPerGateway
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = def.BatchSize
	}

	network := netsim.NewNetwork(netsim.ModeTAP, netsim.DefaultLatencyModel())
	network.SetCapture(false)
	zone := dns.NewZone()
	for name, addr := range map[string]string{
		"files.corp.example": "10.80.0.10",
		"c2.fleet.example":   "203.0.113.99",
	} {
		if err := zone.AddRecord(name, netip.MustParseAddr(addr)); err != nil {
			return nil, err
		}
	}
	network.AddServer(&netsim.Server{
		Addr: dnsServerAddr.Addr(), Name: "corp-dns",
		UDPHandler: dns.ZoneHandler(zone), Internal: true,
	})
	network.AddServer(&netsim.Server{
		Addr: netip.MustParseAddr("198.18.80.1"), Name: "files.corp",
		Handler: httpsim.StaticHandler(httpsim.StaticPage()),
	})

	hub := policystore.NewHub(fleetPolicyDoc(cfg.Gateways, false))
	db := analyzer.NewDatabase()
	agg := cfg.Metrics
	if agg == nil {
		agg = metrics.NewAggregate("gateway")
	}
	var auditLog *audit.Log
	if cfg.AuditWriter != nil {
		auditLog = audit.New(cfg.AuditWriter, 256)
		auditReg := metrics.NewRegistry()
		auditLog.RegisterMetrics(auditReg)
		agg.Attach("fleet", auditReg)
	}
	defer auditLog.Close()
	members := make([]*fleetMember, cfg.Gateways)
	for i := range members {
		m, err := buildFleetMember(i, cfg.Gateways, cfg.DevicesPerGateway, network, db, hub, agg, auditLog)
		if err != nil {
			return nil, fmt.Errorf("fleet: gateway %d: %w", i, err)
		}
		defer m.store.Close()
		members[i] = m
	}
	for _, m := range members {
		m.store.Start()
	}

	res := &FleetBenchResult{
		Gateways:   cfg.Gateways,
		Devices:    cfg.Gateways * cfg.DevicesPerGateway,
		PerGateway: make([]FleetGatewayReport, cfg.Gateways),
	}
	lat := metrics.NewHistogram()
	var elapsed time.Duration

	// deliver pushes the device range [lo, hi) of every gateway through
	// the shared network, one workload kind at a time, scoring outcomes
	// against the kind's expected fate.
	deliver := func(lo, hi int) error {
		for gi, m := range members {
			rep := &res.PerGateway[gi]
			for _, kind := range []string{kindSync, kindBeacon, kindResolve, kindProbeOwn, kindProbeOther} {
				tmpl := m.bursts[kind]
				isDNS := kind == kindResolve || kind == kindProbeOwn || kind == kindProbeOther
				batch := make([]*ipv4.Packet, 0, cfg.BatchSize)
				flush := func() {
					if len(batch) == 0 {
						return
					}
					start := time.Now()
					ds := network.DeliverBatch(batch)
					d := time.Since(start)
					elapsed += d
					lat.Record(d.Nanoseconds() / int64(len(batch)))
					for _, del := range ds {
						if del.Delivered {
							rep.Delivered++
						} else {
							rep.Blocked++
						}
						switch kind {
						case kindSync, kindResolve:
							if !del.Delivered {
								rep.CrossGroupLeaks++ // allowed traffic dropped: a foreign deny leaked in
							}
						case kindProbeOther:
							if !del.Delivered {
								rep.CrossGroupLeaks++ // another group's rule enforced here
							}
						case kindBeacon:
							if del.Delivered {
								rep.GlobalLeaks++
							}
						case kindProbeOwn:
							if del.Delivered {
								rep.UnderEnforcement++
							}
						}
					}
					batch = batch[:0]
				}
				for dev := lo; dev < hi && dev < m.pool.Len(); dev++ {
					pkts := m.pool.Rewrite(dev, tmpl)
					if isDNS {
						res.DNSPackets += uint64(len(pkts))
					} else {
						res.HTTPPackets += uint64(len(pkts))
					}
					batch = append(batch, pkts...)
					if len(batch) >= cfg.BatchSize {
						flush()
					}
				}
				flush()
			}
		}
		return nil
	}

	half := cfg.DevicesPerGateway / 2
	if err := deliver(0, half); err != nil {
		return nil, err
	}

	// Mid-run fleet-wide policy push: one hub revision must reach every
	// gateway in exactly one watch round — counters and generations, not
	// sleeps.
	type before struct{ rounds, applied, gen uint64 }
	b4 := make([]before, len(members))
	for i, m := range members {
		s := m.store.Stats()
		b4[i] = before{s.WatchRounds, s.Applied, m.engine.Generation()}
	}
	hub.Set(fleetPolicyDoc(cfg.Gateways, true))
	deadline := time.Now().Add(30 * time.Second)
	for i, m := range members {
		for m.store.Stats().WatchRounds == b4[i].rounds {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("fleet: %s: policy push did not complete a watch round", m.name)
			}
			time.Sleep(200 * time.Microsecond)
		}
		s := m.store.Stats()
		rep := &res.PerGateway[i]
		rep.Name = m.name
		rep.Devices = cfg.DevicesPerGateway
		rep.PushWatchRounds = s.WatchRounds - b4[i].rounds
		rep.PushApplied = s.Applied - b4[i].applied
		rep.PushGenerations = m.engine.Generation() - b4[i].gen
	}

	if err := deliver(half, cfg.DevicesPerGateway); err != nil {
		return nil, err
	}

	for i := range res.PerGateway {
		rep := &res.PerGateway[i]
		res.Delivered += rep.Delivered
		res.Blocked += rep.Blocked
		res.CrossGroupLeaks += rep.CrossGroupLeaks
		res.UnderEnforcement += rep.UnderEnforcement
		res.GlobalLeaks += rep.GlobalLeaks
	}
	res.ElapsedSec = elapsed.Seconds()
	if res.ElapsedSec > 0 {
		res.PktsPerSec = float64(res.Delivered+res.Blocked) / res.ElapsedSec
	}
	snap := lat.Snapshot()
	res.P50Ns = snap.Quantile(0.5)
	res.P99Ns = snap.Quantile(0.99)
	res.P999Ns = snap.Quantile(0.999)
	// Flush-on-close so every decision reaches cfg.AuditWriter before the
	// result is reported (idempotent with the safety-net defer above).
	if err := auditLog.Close(); err != nil {
		return nil, fmt.Errorf("fleet: audit: %w", err)
	}
	return res, nil
}
