package devctx

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"borderpatrol/internal/metrics"
	"borderpatrol/internal/policy"
)

type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

var dev = netip.MustParseAddr("10.0.0.5")

func TestUnknownDeviceDefaultsUntrusted(t *testing.T) {
	s := NewSource(nil)
	ctx, ok := s.Lookup(dev)
	if ok {
		t.Fatal("unknown device reported as known")
	}
	if ctx.Network != policy.NetUnknown || ctx.ScreenLocked || ctx.VelocityKmh != 0 {
		t.Fatalf("unknown device context = %+v, want zero (least trusted)", ctx)
	}
}

func TestGenerationBumpsOnlyOnChange(t *testing.T) {
	s := NewSource(nil)
	s.SetNetwork(dev, policy.NetTrusted)
	if g := s.Generation(); g != 1 {
		t.Fatalf("generation = %d after first change, want 1", g)
	}
	s.SetNetwork(dev, policy.NetTrusted) // no-op
	if g := s.Generation(); g != 1 {
		t.Fatalf("generation = %d after no-op, want 1", g)
	}
	s.SetScreenLocked(dev, true)
	s.SetPatchAge(dev, 120)
	if g := s.Generation(); g != 3 {
		t.Fatalf("generation = %d, want 3", g)
	}
	st := s.Stats()
	if st.Invalidations["network"] != 1 || st.Invalidations["posture"] != 2 {
		t.Fatalf("invalidations = %v", st.Invalidations)
	}
	ctx, ok := s.Lookup(dev)
	if !ok || ctx.Network != policy.NetTrusted || !ctx.ScreenLocked || ctx.PatchAgeDays != 120 {
		t.Fatalf("context = %+v ok=%v", ctx, ok)
	}
}

func TestVelocityFromLocationObservations(t *testing.T) {
	clk := &fakeClock{}
	s := NewSource(clk)

	// First fix establishes position, no velocity.
	s.ObserveLocation(dev, 52.52, 13.40) // Berlin
	if ctx, _ := s.Lookup(dev); ctx.VelocityKmh != 0 {
		t.Fatalf("velocity after first fix = %d", ctx.VelocityKmh)
	}

	// Berlin → Munich (~500 km) in 5 hours: ~100 km/h, plausible.
	clk.now = 5 * time.Hour
	s.ObserveLocation(dev, 48.14, 11.58)
	ctx, _ := s.Lookup(dev)
	if ctx.VelocityKmh < 80 || ctx.VelocityKmh > 130 {
		t.Fatalf("Berlin→Munich over 5h velocity = %d km/h", ctx.VelocityKmh)
	}
	if ctx.VelocityKmh >= policy.ImpossibleTravelKmh {
		t.Fatal("plausible travel flagged impossible")
	}

	// Munich → New York (~6500 km) in 1 hour: impossible.
	clk.now = 6 * time.Hour
	s.ObserveLocation(dev, 40.71, -74.01)
	ctx, _ = s.Lookup(dev)
	if ctx.VelocityKmh < policy.ImpossibleTravelKmh {
		t.Fatalf("Munich→NYC in 1h velocity = %d km/h, want impossible", ctx.VelocityKmh)
	}

	// Same instant, different place: clamped to the cap.
	s.ObserveLocation(dev, 35.68, 139.69)
	ctx, _ = s.Lookup(dev)
	if ctx.VelocityKmh != MaxVelocityKmh {
		t.Fatalf("same-instant jump velocity = %d, want cap %d", ctx.VelocityKmh, MaxVelocityKmh)
	}
	if st := s.Stats(); st.Invalidations["travel"] == 0 {
		t.Fatalf("no travel invalidations: %v", st.Invalidations)
	}
}

func TestProvisionAndForget(t *testing.T) {
	s := NewSource(nil)
	want := policy.DeviceContext{Network: policy.NetCellular, PatchAgeDays: 30}
	s.Provision(dev, want)
	if ctx, ok := s.Lookup(dev); !ok || ctx != want {
		t.Fatalf("provisioned context = %+v ok=%v", ctx, ok)
	}
	s.Provision(dev, want) // no-op
	if g := s.Generation(); g != 1 {
		t.Fatalf("generation = %d after idempotent provision, want 1", g)
	}
	s.Forget(dev)
	if _, ok := s.Lookup(dev); ok {
		t.Fatal("device still known after Forget")
	}
	if s.Devices() != 0 {
		t.Fatalf("devices = %d", s.Devices())
	}
}

func TestRegisterMetrics(t *testing.T) {
	s := NewSource(nil)
	s.SetNetwork(dev, policy.NetTrusted)
	s.SetScreenLocked(dev, true)
	reg := metrics.NewRegistry()
	s.RegisterMetrics(reg)
	found := map[string]bool{}
	for _, sm := range reg.Snapshot() {
		found[sm.Name] = true
	}
	for _, name := range []string{"bp_context_devices", "bp_context_generation", "bp_context_invalidations_total"} {
		if !found[name] {
			t.Fatalf("metric family %s missing (have %v)", name, found)
		}
	}
}

func TestConcurrentUpdatesAndLookups(t *testing.T) {
	// Race-detector coverage: readers on the miss path vs writers flipping
	// context.
	s := NewSource(&fakeClock{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.Lookup(dev)
					s.Generation()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s.SetNetwork(dev, policy.NetworkClass(i%3))
		s.SetScreenLocked(dev, i%2 == 0)
		s.ObserveLocation(dev, float64(i%90), float64(i%180))
	}
	close(stop)
	wg.Wait()
}
