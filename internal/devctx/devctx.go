// Package devctx is the gateway's device-context source: the per-device
// half of the contextual policy dimension (policy.DeviceContext), keyed by
// the device's source address. The MDM/agent side of a real deployment
// reports network attachment, posture and location; here the virtual
// android devices and netsim device pools feed the same interface.
//
// Concurrency contract: Lookup runs on the enforcer's SYN/cache-miss path
// under a read lock (never on the per-packet cache-hit path); the Set*
// update methods take the write lock, publish the new state, and only then
// bump the generation counter — mirroring policy.Engine.SetRules, so any
// reader observing the new generation is guaranteed to see at least the
// new context, and a verdict cached under the new generation can never
// reflect the old context.
package devctx

import (
	"math"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"borderpatrol/internal/metrics"
	"borderpatrol/internal/policy"
)

// Clock supplies virtual time for velocity computation (netsim.Clock
// satisfies it).
type Clock interface {
	Now() time.Duration
}

// Cause classifies what changed a device's context, for the
// bp_context_invalidations_total{cause=...} metric family.
type Cause int

// Invalidation causes.
const (
	// CauseNetwork is a network trust-class change (SSID roam).
	CauseNetwork Cause = iota
	// CausePosture is a posture change (screen lock, patch level).
	CausePosture
	// CauseTravel is a location observation that changed the velocity.
	CauseTravel
	// CauseProvision is a wholesale context replacement.
	CauseProvision

	causeCount
)

// String names the cause as its metric label value.
func (c Cause) String() string {
	switch c {
	case CauseNetwork:
		return "network"
	case CausePosture:
		return "posture"
	case CauseTravel:
		return "travel"
	case CauseProvision:
		return "provision"
	default:
		return "unknown"
	}
}

// MaxVelocityKmh caps the stored apparent velocity (two observations at
// the same virtual instant would otherwise be infinite).
const MaxVelocityKmh = 100000

type deviceState struct {
	ctx policy.DeviceContext

	// Last location observation, for velocity derivation.
	hasLoc   bool
	lat, lon float64
	locAt    time.Duration
}

// Source holds the current context of every known device and a generation
// counter the enforcer folds into its flow-cache key: bumping it on any
// context change invalidates every cached verdict, forcing re-evaluation
// against the new context on the next packet of each flow.
type Source struct {
	clock Clock

	mu      sync.RWMutex
	devices map[netip.Addr]*deviceState

	gen           atomic.Uint64
	invalidations [causeCount]atomic.Uint64
}

// NewSource builds an empty device-context source. clock may be nil when
// no caller uses location observations (velocity then stays zero).
func NewSource(clock Clock) *Source {
	return &Source{clock: clock, devices: make(map[netip.Addr]*deviceState)}
}

// Generation returns the context generation: the number of effective
// context changes so far. The enforcer folds it into the combined
// generation the flow table keys verdicts on.
func (s *Source) Generation() uint64 { return s.gen.Load() }

// Lookup returns the device's current context snapshot. Unknown devices
// report the zero DeviceContext — unknown network, the least trusted
// class — so unprovisioned devices default to the risky posture.
func (s *Source) Lookup(addr netip.Addr) (policy.DeviceContext, bool) {
	s.mu.RLock()
	st, ok := s.devices[addr]
	var ctx policy.DeviceContext
	if ok {
		ctx = st.ctx
	}
	s.mu.RUnlock()
	return ctx, ok
}

// Devices returns the number of devices with known context.
func (s *Source) Devices() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.devices)
}

// state returns (creating if needed) the mutable state for addr. Callers
// hold s.mu.
func (s *Source) state(addr netip.Addr) *deviceState {
	st, ok := s.devices[addr]
	if !ok {
		st = &deviceState{}
		s.devices[addr] = st
	}
	return st
}

// bump publishes an effective context change: the caller already wrote the
// new state under s.mu; the generation bump makes it visible to the
// enforcer's cache key. Per-cause counters feed the invalidation metrics.
func (s *Source) bump(c Cause) {
	s.invalidations[c].Add(1)
	s.gen.Add(1)
}

// SetNetwork records the device's network trust class (SSID roam,
// cellular handoff). No-op when unchanged.
func (s *Source) SetNetwork(addr netip.Addr, class policy.NetworkClass) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(addr)
	if st.ctx.Network == class {
		return
	}
	st.ctx.Network = class
	s.bump(CauseNetwork)
}

// SetScreenLocked records the device's screen-lock state.
func (s *Source) SetScreenLocked(addr netip.Addr, locked bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(addr)
	if st.ctx.ScreenLocked == locked {
		return
	}
	st.ctx.ScreenLocked = locked
	s.bump(CausePosture)
}

// SetPatchAge records the age of the device's security patch level.
func (s *Source) SetPatchAge(addr netip.Addr, days int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(addr)
	if st.ctx.PatchAgeDays == days {
		return
	}
	st.ctx.PatchAgeDays = days
	s.bump(CausePosture)
}

// ObserveLocation records a location fix and derives the apparent velocity
// from the previous observation (great-circle distance over virtual time
// elapsed). A velocity ≥ policy.ImpossibleTravelKmh is the
// impossible-travel signal: the credential moved faster than the device
// could have.
func (s *Source) ObserveLocation(addr netip.Addr, lat, lon float64) {
	var now time.Duration
	if s.clock != nil {
		now = s.clock.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(addr)
	v := int32(0)
	if st.hasLoc {
		km := haversineKm(st.lat, st.lon, lat, lon)
		if dt := now - st.locAt; dt > 0 {
			v = clampVelocity(km / dt.Hours())
		} else if km > 0 {
			v = MaxVelocityKmh // same instant, different place
		}
	}
	st.hasLoc, st.lat, st.lon, st.locAt = true, lat, lon, now
	if st.ctx.VelocityKmh == v {
		return
	}
	st.ctx.VelocityKmh = v
	s.bump(CauseTravel)
}

// Provision replaces the device's whole context (initial enrollment or an
// MDM sync). Location history is kept; the velocity field is taken from
// ctx verbatim.
func (s *Source) Provision(addr netip.Addr, ctx policy.DeviceContext) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(addr)
	if st.ctx == ctx {
		return
	}
	st.ctx = ctx
	s.bump(CauseProvision)
}

// Forget drops a device's context (un-enrollment). Counts as a provision
// change when the device was known.
func (s *Source) Forget(addr netip.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.devices[addr]; !ok {
		return
	}
	delete(s.devices, addr)
	s.bump(CauseProvision)
}

// Stats is a snapshot of the source's counters.
type Stats struct {
	Devices       int
	Generation    uint64
	Invalidations map[string]uint64
}

// Stats returns a snapshot of the source's counters.
func (s *Source) Stats() Stats {
	inv := make(map[string]uint64, int(causeCount))
	for c := Cause(0); c < causeCount; c++ {
		if n := s.invalidations[c].Load(); n > 0 {
			inv[c.String()] = n
		}
	}
	return Stats{Devices: s.Devices(), Generation: s.Generation(), Invalidations: inv}
}

// RegisterMetrics exposes the source's counters on a registry as the
// bp_context_* device-side families — scrape-time closures over the
// existing atomics, nothing added to any update path.
func (s *Source) RegisterMetrics(r *metrics.Registry) {
	r.GaugeFunc("bp_context_devices",
		"Devices with known context in the device-context source.",
		func() float64 { return float64(s.Devices()) })
	r.CounterFunc("bp_context_generation",
		"Context generation: effective device-context changes so far.",
		s.Generation)
	for c := Cause(0); c < causeCount; c++ {
		c := c
		r.CounterFunc("bp_context_invalidations_total",
			"Flow-cache invalidations forced by device-context changes, by cause.",
			s.invalidations[c].Load, metrics.L("cause", c.String()))
	}
}

// haversineKm is the great-circle distance between two coordinates.
func haversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371.0
	rad := math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// clampVelocity converts to int32 km/h with the MaxVelocityKmh cap.
func clampVelocity(kmh float64) int32 {
	if kmh < 0 {
		return 0
	}
	if kmh > MaxVelocityKmh {
		return MaxVelocityKmh
	}
	return int32(kmh)
}
