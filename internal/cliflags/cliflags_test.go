package cliflags

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"borderpatrol/internal/policy"
)

func newSet(t *testing.T, args ...string) (*Policy, *Audit, *Metrics) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p, a, m := RegisterPolicy(fs), RegisterAudit(fs), RegisterMetrics(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return p, a, m
}

func TestPolicySourceSelection(t *testing.T) {
	p, _, _ := newSet(t, "-policy-file", "rules.bp", "-fail-mode", "closed", "-policy-max-stale", "30s")
	src, mode, err := p.Source(false)
	if err != nil {
		t.Fatal(err)
	}
	if src == nil {
		t.Fatal("file flag produced no source")
	}
	if mode.String() != "fail-closed" {
		t.Fatalf("fail mode = %v", mode)
	}

	p, _, _ = newSet(t)
	src, _, err = p.Source(false)
	if err != nil || src != nil {
		t.Fatalf("no flags: src=%v err=%v", src, err)
	}
}

func TestPolicySourceValidation(t *testing.T) {
	// The one-shot and hot-reload sources are mutually exclusive.
	p, _, _ := newSet(t, "-policy-file", "a.bp", "-policy-url", "http://ctrl/b.bp")
	if _, _, err := p.Source(false); err == nil {
		t.Fatal("file+url accepted")
	}
	p, _, _ = newSet(t, "-policy-file", "a.bp")
	if _, _, err := p.Source(true); err == nil {
		t.Fatal("static+file accepted")
	}
	// A staleness deadline is meaningless without a reloadable source.
	p, _, _ = newSet(t, "-policy-max-stale", "10s")
	if _, _, err := p.Source(false); err == nil {
		t.Fatal("max-stale without source accepted")
	}
	p, _, _ = newSet(t, "-policy-file", "a.bp", "-fail-mode", "sideways")
	if _, _, err := p.Source(false); err == nil {
		t.Fatal("bogus fail mode accepted")
	}
}

func TestAuditWriter(t *testing.T) {
	_, a, _ := newSet(t)
	w, closeFn, err := a.Writer()
	if err != nil || w != nil {
		t.Fatalf("unset -audit: w=%v err=%v", w, err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trail.jsonl")
	_, a, _ = newSet(t, "-audit", path)
	w, closeFn, err = a.Writer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, "{}\n"); err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "{}\n" {
		t.Fatalf("audit file: %q err=%v", b, err)
	}

	// The rotating variant kicks in with -audit-rotate-bytes.
	path = filepath.Join(t.TempDir(), "rot.jsonl")
	_, a, _ = newSet(t, "-audit", path, "-audit-rotate-bytes", "4", "-audit-rotate-keep", "2")
	w, closeFn, err = a.Writer()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := io.WriteString(w, "xxxxx\n"); err != nil {
			t.Fatal(err)
		}
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("no rotated file: %v", err)
	}
}

func TestMetricsServe(t *testing.T) {
	_, _, m := newSet(t)
	addr, stop, err := m.Serve(nil)
	if err != nil || addr != "" {
		t.Fatalf("unset -metrics-addr: addr=%q err=%v", addr, err)
	}
	stop()

	_, _, m = newSet(t, "-metrics-addr", "127.0.0.1:0")
	addr, stop, err = m.Serve(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "bp_up 1\n")
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !strings.Contains(string(body), "bp_up 1") {
		t.Fatalf("scrape: %q err=%v", body, err)
	}
}

func TestMetricsWait(t *testing.T) {
	_, _, m := newSet(t, "-linger", "1ms")
	var sb strings.Builder
	start := time.Now()
	m.Wait(&sb)
	if time.Since(start) < time.Millisecond {
		t.Fatal("did not linger")
	}
	if !strings.Contains(sb.String(), "lingering") {
		t.Fatalf("no note: %q", sb.String())
	}
}

func newContextSet(t *testing.T, args ...string) *Context {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := RegisterContext(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestContextFlags(t *testing.T) {
	// Unset: nil context, the unprovisioned default.
	if ctx, err := newContextSet(t).DeviceContext(); err != nil || ctx != nil {
		t.Fatalf("default context = %+v err=%v", ctx, err)
	}
	// -device-network with patch age.
	ctx, err := newContextSet(t, "-device-network", "cellular", "-device-patch-age", "45").DeviceContext()
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Network != policy.NetCellular || ctx.PatchAgeDays != 45 {
		t.Fatalf("context = %+v", ctx)
	}
	// Invalid class name.
	if _, err := newContextSet(t, "-device-network", "wifi").DeviceContext(); err == nil {
		t.Fatal("bogus class accepted")
	}
	// Patch age without a network class.
	if _, err := newContextSet(t, "-device-patch-age", "10").DeviceContext(); err == nil {
		t.Fatal("-device-patch-age accepted without -device-network")
	}
}
