// Package cliflags centralizes the flag wiring the BorderPatrol
// commands share. bp-gateway and bp-experiments both expose policy
// hot-reload, audit-trail and metrics-endpoint options; declaring them
// here once keeps names, defaults, help text and validation identical
// across commands instead of drifting copy by copy.
//
// Each Register* function declares its flag group on a caller-supplied
// *flag.FlagSet (pass flag.CommandLine from a main) and returns a holder
// whose methods run after fs.Parse: validation, then construction of the
// thing the flags describe — a policystore.Source, an audit io.Writer,
// an HTTP scrape endpoint.
package cliflags

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"borderpatrol/internal/audit"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/policystore"
)

// Policy holds the hot-reload policy-source flags: -policy-file,
// -policy-url, -policy-poll, -policy-max-stale and -fail-mode.
type Policy struct {
	// File and URL select the hot-reload backend (mutually exclusive).
	File string
	URL  string
	// Poll is the store's fallback poll interval.
	Poll time.Duration
	// MaxStale arms the staleness deadline; FailModeName is the posture
	// past it.
	MaxStale     time.Duration
	FailModeName string
}

// RegisterPolicy declares the shared policy-source flags on fs.
func RegisterPolicy(fs *flag.FlagSet) *Policy {
	p := &Policy{}
	fs.StringVar(&p.File, "policy-file", "", "policy file with hot reload: edits apply without restart")
	fs.StringVar(&p.URL, "policy-url", "", "policy HTTP endpoint with hot reload (ETag conditional fetches)")
	fs.DurationVar(&p.Poll, "policy-poll", 2*time.Second, "hot-reload poll interval for -policy-file/-policy-url")
	fs.DurationVar(&p.MaxStale, "policy-max-stale", 0, "staleness deadline before the store degrades per -fail-mode (0 = never)")
	fs.StringVar(&p.FailModeName, "fail-mode", "static", "degraded posture past -policy-max-stale: static|open|closed")
	return p
}

// Source validates the parsed flags and builds the hot-reload policy
// source — nil when neither -policy-file nor -policy-url was given.
// staticSet reports whether the command's own one-shot policy flag was
// also set; the three sources are mutually exclusive.
func (p *Policy) Source(staticSet bool) (policystore.Source, policystore.FailMode, error) {
	var failMode policystore.FailMode
	set := 0
	for _, on := range []bool{staticSet, p.File != "", p.URL != ""} {
		if on {
			set++
		}
	}
	if set > 1 {
		return nil, failMode, errors.New("-policy, -policy-file and -policy-url are mutually exclusive")
	}
	failMode, err := policystore.ParseFailMode(p.FailModeName)
	if err != nil {
		return nil, failMode, err
	}
	var src policystore.Source
	switch {
	case p.File != "":
		src = policystore.NewFileSource(p.File)
	case p.URL != "":
		src = policystore.NewHTTPSource(p.URL, nil)
	}
	if p.MaxStale > 0 && src == nil {
		return nil, failMode, errors.New("-policy-max-stale requires -policy-file or -policy-url")
	}
	return src, failMode, nil
}

// Context holds the device-context flags: -device-network and
// -device-patch-age. They provision the simulated device's context so
// contextual risk rules ({[risk][network][...]} and friends) score flows
// against known context instead of the unknown-device default.
type Context struct {
	NetworkName string
	PatchAge    int
}

// RegisterContext declares the shared device-context flags on fs.
func RegisterContext(fs *flag.FlagSet) *Context {
	c := &Context{}
	fs.StringVar(&c.NetworkName, "device-network", "", "device network trust class for contextual risk rules: trusted|cellular|unknown (empty = unprovisioned)")
	fs.IntVar(&c.PatchAge, "device-patch-age", 0, "age in days of the device's security patch level (with -device-network)")
	return c
}

// DeviceContext validates the parsed flags and builds the initial device
// context — nil when -device-network was not given (the unprovisioned,
// least-trusted default).
func (c *Context) DeviceContext() (*policy.DeviceContext, error) {
	if c.NetworkName == "" {
		if c.PatchAge != 0 {
			return nil, errors.New("-device-patch-age requires -device-network")
		}
		return nil, nil
	}
	class, err := policy.ParseNetworkClass(c.NetworkName)
	if err != nil {
		return nil, err
	}
	if c.PatchAge < 0 {
		return nil, fmt.Errorf("-device-patch-age %d is negative", c.PatchAge)
	}
	return &policy.DeviceContext{Network: class, PatchAgeDays: int32(c.PatchAge)}, nil
}

// Audit holds the enforcement-audit flags: -audit, -audit-rotate-bytes
// and -audit-rotate-keep.
type Audit struct {
	Path        string
	RotateBytes int64
	RotateKeep  int
}

// RegisterAudit declares the shared audit-trail flags on fs.
func RegisterAudit(fs *flag.FlagSet) *Audit {
	a := &Audit{}
	fs.StringVar(&a.Path, "audit", "", "write the enforcement audit trail (JSON lines) to this file")
	fs.Int64Var(&a.RotateBytes, "audit-rotate-bytes", 0, "rotate the -audit file when it reaches this size (0 = never)")
	fs.IntVar(&a.RotateKeep, "audit-rotate-keep", 4, "rotated -audit files to keep beside the active one")
	return a
}

// Writer opens the audit destination the flags describe: a rotating
// writer when -audit-rotate-bytes is set, a plain file otherwise, and a
// nil writer when -audit is unset. The returned close function is never
// nil; call it only after the audit pipeline has flushed.
func (a *Audit) Writer() (io.Writer, func() error, error) {
	if a.Path == "" {
		return nil, func() error { return nil }, nil
	}
	if a.RotateBytes > 0 {
		rw, err := audit.NewRotatingWriter(a.Path, a.RotateBytes, a.RotateKeep)
		if err != nil {
			return nil, nil, err
		}
		return rw, rw.Close, nil
	}
	f, err := os.Create(a.Path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// Metrics holds the scrape-endpoint flags: -metrics-addr and -linger.
type Metrics struct {
	Addr   string
	Linger time.Duration
}

// RegisterMetrics declares the shared metrics-endpoint flags on fs.
func RegisterMetrics(fs *flag.FlagSet) *Metrics {
	m := &Metrics{}
	fs.StringVar(&m.Addr, "metrics-addr", "", "serve Prometheus metrics on this address (e.g. 127.0.0.1:9090) at /metrics")
	fs.DurationVar(&m.Linger, "linger", 0, "keep the process (and -metrics-addr endpoint) alive this long after the session")
	return m
}

// Serve exposes h at /metrics on -metrics-addr. It returns the bound
// address — empty when the flag is unset — and a stop function that is
// always safe to call.
func (m *Metrics) Serve(h http.Handler) (addr string, stop func(), err error) {
	if m.Addr == "" {
		return "", func() {}, nil
	}
	ln, err := net.Listen("tcp", m.Addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", h)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}

// Wait sleeps the -linger duration (noting it on out) so scrapers can
// collect the endpoint after the session's work is done.
func (m *Metrics) Wait(out io.Writer) {
	if m.Linger <= 0 {
		return
	}
	fmt.Fprintf(out, "lingering %s for scrapers...\n", m.Linger)
	time.Sleep(m.Linger)
}
