package apkgen

import (
	"fmt"
	"math/rand"

	"borderpatrol/internal/dex"
)

// classBuilder accumulates one dex class and can mint stack frames that
// reference its methods consistently (class path, file, and a line inside
// the method's debug range), so generated call paths always resolve against
// the generated dex.
type classBuilder struct {
	pkg     string
	name    string
	file    string
	methods []dex.MethodDef
	// byName maps method name to its index in methods.
	byName map[string]int
	line   int
}

func newClassBuilder(pkg, name string) *classBuilder {
	return &classBuilder{
		pkg:    pkg,
		name:   name,
		file:   name + ".java",
		byName: make(map[string]int),
		line:   10,
	}
}

// addMethod defines a method and returns its name for later frameFor calls.
func (cb *classBuilder) addMethod(name, proto string) string {
	span := 30
	cb.methods = append(cb.methods, dex.MethodDef{
		Name:      name,
		Proto:     proto,
		File:      cb.file,
		StartLine: cb.line,
		EndLine:   cb.line + span,
	})
	cb.byName[name+proto] = len(cb.methods) - 1
	cb.line += span + 10
	return name
}

// frameFor returns a stack frame inside the named method (first overload
// with that exact name+proto).
func (cb *classBuilder) frameFor(name, proto string) dex.Frame {
	idx, ok := cb.byName[name+proto]
	if !ok {
		panic(fmt.Sprintf("apkgen: frameFor(%s%s) on class %s/%s: method not defined", name, proto, cb.pkg, cb.name))
	}
	m := cb.methods[idx]
	return dex.Frame{
		Class:  cb.pkg + "/" + cb.name,
		Method: m.Name,
		File:   m.File,
		Line:   m.StartLine + 3,
	}
}

func (cb *classBuilder) build() dex.ClassDef {
	return dex.ClassDef{
		Package: cb.pkg,
		Name:    cb.name,
		Super:   "java/lang/Object",
		Methods: append([]dex.MethodDef(nil), cb.methods...),
	}
}

// libraryTemplate synthesizes the classes a third-party library contributes
// to an app's dex, plus canonical frames for its network entry points.
type libraryTemplate struct {
	pkg     string
	classes []*classBuilder
	// entry frames for the library's "send" path, outermost first.
	entry []dex.Frame
}

// buildLibrary creates a small deterministic class set for a library
// package: a manager class and a network class whose send method is the
// innermost library frame.
func buildLibrary(pkg string, r *rand.Rand) *libraryTemplate {
	mgr := newClassBuilder(pkg, "Manager")
	mgr.addMethod("init", "()V")
	mgr.addMethod("dispatch", "(Ljava/lang/String;)V")
	net := newClassBuilder(pkg, "NetClient")
	net.addMethod("open", "()V")
	net.addMethod("send", "([B)V")
	net.addMethod("send", "(Ljava/lang/String;)V") // overload, exercises line tables
	// A few filler classes so libraries differ in size.
	fillers := make([]*classBuilder, r.Intn(3))
	for i := range fillers {
		f := newClassBuilder(pkg, fmt.Sprintf("Util%c", 'A'+i))
		f.addMethod("helper", "()V")
		fillers[i] = f
	}
	lt := &libraryTemplate{
		pkg:     pkg,
		classes: append([]*classBuilder{mgr, net}, fillers...),
	}
	lt.entry = []dex.Frame{
		mgr.frameFor("dispatch", "(Ljava/lang/String;)V"),
		net.frameFor("send", "([B)V"),
	}
	return lt
}

func (lt *libraryTemplate) classDefs() []dex.ClassDef {
	out := make([]dex.ClassDef, len(lt.classes))
	for i, cb := range lt.classes {
		out[i] = cb.build()
	}
	return out
}
