// Package apkgen generates the synthetic app corpus standing in for the
// PlayDrone dataset the paper evaluates on (§VI-A): 2,000 apps from the
// BUSINESS and PRODUCTIVITY categories, each an amalgamation of
// developer-authored code and third-party libraries (trackers, ad networks,
// social SDKs, shared HTTP clients), with functionality graphs that produce
// realistic stack traces ending in socket creation.
//
// The generator is seeded and calibrated so the structural properties the
// evaluation measures re-emerge: the share of apps with IPs-of-interest
// (multiple distinct stack traces to one destination, Fig. 3), the 75%/25%
// split between same-package and cross-package IoIs (§VI-B), and tracker
// library prevalence for the validation study (§VI-B1).
package apkgen

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"

	"borderpatrol/internal/android"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/trackers"
)

// FuncMeta records generator-side truth about one functionality, used by
// experiments to score enforcement precision.
type FuncMeta struct {
	// LibraryPkg is the third-party package behind the functionality ("" for
	// developer code).
	LibraryPkg string
	// Category classifies tracker-origin functionality.
	Category trackers.Category
	// IsTracker marks functionality that originates in a deny-listed library.
	IsTracker bool
	// VisibleWhenBlocked marks functionality whose absence a human notices
	// (ads stop rendering); analytics blocking is invisible.
	VisibleWhenBlocked bool
}

// App is one generated corpus entry.
type App struct {
	APK             *dex.APK
	Functionalities []android.Functionality
	// Meta maps functionality name to generator truth.
	Meta map[string]FuncMeta
	// Libraries lists included third-party package prefixes.
	Libraries []string
	// PlannedIoIs is how many IPs-of-interest the generator wired in.
	PlannedIoIs int
	// CrossPackageIoIs counts planned IoIs whose stacks span packages.
	CrossPackageIoIs int
	// FlowSizes are representative single-flow transfer sizes in bytes for
	// the §VII flow-size analysis (metadata only; not all are sent).
	FlowSizes []int64
}

// Config controls corpus generation.
type Config struct {
	// Seed makes the corpus deterministic.
	Seed int64
	// Apps is the corpus size (the paper uses 2,000).
	Apps int
	// Categories cycle across generated apps.
	Categories []string
	// IoIProb[k] is the probability an app is wired with k+1 IoIs; the
	// remainder get none. Defaults reproduce Fig. 3's histogram shape.
	IoIProb []float64
	// CrossPackageShare is the fraction of IoIs built on a shared HTTP
	// client spanning packages (the paper observes 25%).
	CrossPackageShare float64
	// TrackersPerApp is the mean number of deny-listed libraries bundled
	// per app.
	TrackersPerApp float64
}

// DefaultConfig returns the calibrated 2,000-app configuration.
func DefaultConfig() Config {
	return Config{
		Seed:       2019, // DSN'19
		Apps:       2000,
		Categories: []string{"BUSINESS", "PRODUCTIVITY"},
		// Calibrated to Fig. 3: 152/53/8/3/2 apps with 1..5 IoIs of 2,000.
		IoIProb:           []float64{0.0760, 0.0265, 0.0040, 0.0015, 0.0010},
		CrossPackageShare: 0.25,
		TrackersPerApp:    2.2,
	}
}

// Shared benign libraries apps may bundle.
const (
	apacheHTTPPkg  = "org/apache/http/client"
	okhttpPkg      = "com/squareup/okhttp"
	facebookSDKPkg = "com/facebook/sdk"
	dropboxSDKPkg  = "com/dropbox/client"
)

// Endpoint address plan (TEST-NET and benchmark blocks, deterministic):
//
//	trackers:   203.0.113.0/24 by library rank (shared across apps)
//	app server: 198.18.x.y by app index
//	IoI:        198.19.x.y by app index and IoI ordinal
func trackerEndpoint(rank int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, byte(rank % 250)}), 443)
}

func appServerEndpoint(appIdx int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 18, byte(appIdx / 250), byte(appIdx % 250)}), 443)
}

func ioiEndpoint(appIdx, ord int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 19, byte((appIdx*5 + ord) / 250), byte((appIdx*5 + ord) % 250)}), 443)
}

// Generate builds the corpus.
func Generate(cfg Config) ([]*App, error) {
	if cfg.Apps <= 0 {
		return nil, fmt.Errorf("apkgen: invalid corpus size %d", cfg.Apps)
	}
	if len(cfg.Categories) == 0 {
		cfg.Categories = []string{"BUSINESS"}
	}
	if cfg.CrossPackageShare < 0 || cfg.CrossPackageShare > 1 {
		return nil, fmt.Errorf("apkgen: cross-package share %f out of range", cfg.CrossPackageShare)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	catalog := trackers.Catalog()
	out := make([]*App, 0, cfg.Apps)
	for i := 0; i < cfg.Apps; i++ {
		app, err := generateApp(r, cfg, catalog, i)
		if err != nil {
			return nil, err
		}
		out = append(out, app)
	}
	return out, nil
}

func generateApp(r *rand.Rand, cfg Config, catalog []trackers.Library, idx int) (*App, error) {
	category := cfg.Categories[idx%len(cfg.Categories)]
	pkgName := fmt.Sprintf("com.vendor%03d.app%04d", idx%97, idx)
	devPkg := fmt.Sprintf("com/vendor%03d/app%04d", idx%97, idx)

	ga := &App{
		Meta: make(map[string]FuncMeta),
	}

	// Developer classes.
	main := newClassBuilder(devPkg, "MainActivity")
	main.addMethod("onCreate", "(Landroid/os/Bundle;)V")
	main.addMethod("onClick", "(Landroid/view/View;)V")
	netMgr := newClassBuilder(devPkg, "NetManager")
	netMgr.addMethod("sync", "()V")
	netMgr.addMethod("fetch", "(Ljava/lang/String;)V")
	netMgr.addMethod("push", "([B)V")
	classes := []dex.ClassDef{}
	libs := []string{}

	// Core app functionality: sync with the app's own server.
	appEP := appServerEndpoint(idx)
	ga.Functionalities = append(ga.Functionalities, android.Functionality{
		Name:      "core-sync",
		Desirable: true,
		CallPath: []dex.Frame{
			main.frameFor("onClick", "(Landroid/view/View;)V"),
			netMgr.frameFor("sync", "()V"),
		},
		Op:     android.NetOp{Endpoint: appEP, Host: pkgName, Method: "GET", Path: "/sync", PayloadBytes: 64},
		Weight: 3,
	})
	ga.Meta["core-sync"] = FuncMeta{}

	// Bundle tracker libraries (Zipf-ish by catalog popularity).
	nTrackers := poissonish(r, cfg.TrackersPerApp)
	seen := map[string]bool{}
	for t := 0; t < nTrackers; t++ {
		rank := zipfRank(r, len(catalog))
		lib := catalog[rank]
		if seen[lib.Package] {
			continue
		}
		seen[lib.Package] = true
		tmpl := buildLibrary(lib.Package, r)
		classes = append(classes, tmpl.classDefs()...)
		libs = append(libs, lib.Package)
		name := fmt.Sprintf("tracker-%02d", t)
		ga.Functionalities = append(ga.Functionalities, android.Functionality{
			Name:      name,
			Desirable: false,
			CallPath: append([]dex.Frame{
				main.frameFor("onCreate", "(Landroid/os/Bundle;)V"),
			}, tmpl.entry...),
			Op: android.NetOp{
				Endpoint:     trackerEndpoint(rank),
				Host:         libHost(lib.Package),
				Method:       "POST",
				Path:         "/beacon",
				PayloadBytes: 128 + r.Intn(512),
			},
			Weight: 2,
		})
		ga.Meta[name] = FuncMeta{
			LibraryPkg:         lib.Package,
			Category:           lib.Category,
			IsTracker:          true,
			VisibleWhenBlocked: lib.Category == trackers.Advertising,
		}
	}

	// Wire planned IPs-of-interest. Whether an app's IoIs span Java
	// packages is an app-level trait (it owns a shared HTTP client reused
	// by several components, or it does not): drawing it per app rather
	// than per IoI reproduces both of the paper's statistics at once —
	// 75% of IoI apps have single-package stacks AND 25% of IoIs receive
	// cross-package traffic.
	nIoI := drawIoIs(r, cfg.IoIProb)
	ga.PlannedIoIs = nIoI
	crossApp := r.Float64() < cfg.CrossPackageShare
	var sharedHTTP *libraryTemplate
	for k := 0; k < nIoI; k++ {
		ep := ioiEndpoint(idx, k)
		cross := crossApp
		if cross {
			ga.CrossPackageIoIs++
			if sharedHTTP == nil {
				sharedHTTP = buildLibrary(apacheHTTPPkg, r)
				classes = append(classes, sharedHTTP.classDefs()...)
				libs = append(libs, apacheHTTPPkg)
			}
			// Two components in different packages reuse the shared client.
			social := buildLibrary(fmt.Sprintf("%s%d", facebookSDKPkg, k), r)
			classes = append(classes, social.classDefs()...)
			libs = append(libs, social.pkg)
			a := fmt.Sprintf("ioi%d-dev", k)
			b := fmt.Sprintf("ioi%d-lib", k)
			ga.Functionalities = append(ga.Functionalities,
				android.Functionality{
					Name:      a,
					Desirable: true,
					CallPath: append([]dex.Frame{
						main.frameFor("onClick", "(Landroid/view/View;)V"),
						netMgr.frameFor("fetch", "(Ljava/lang/String;)V"),
					}, sharedHTTP.entry...),
					Op:     android.NetOp{Endpoint: ep, Host: "api.shared", Method: "GET", Path: "/v1/data"},
					Weight: 4,
				},
				android.Functionality{
					Name:      b,
					Desirable: false,
					CallPath: append(append([]dex.Frame{
						main.frameFor("onCreate", "(Landroid/os/Bundle;)V"),
					}, social.entry...), sharedHTTP.entry...),
					Op:     android.NetOp{Endpoint: ep, Host: "api.shared", Method: "POST", Path: "/v1/events", PayloadBytes: 256},
					Weight: 4,
				},
			)
			ga.Meta[a] = FuncMeta{}
			ga.Meta[b] = FuncMeta{LibraryPkg: social.pkg, Category: trackers.SocialSDK, IsTracker: false}
		} else {
			// Same-package IoI: e.g. upload vs download in the app's own
			// package, or auth vs analytics inside one SDK.
			a := fmt.Sprintf("ioi%d-down", k)
			b := fmt.Sprintf("ioi%d-up", k)
			ga.Functionalities = append(ga.Functionalities,
				android.Functionality{
					Name:      a,
					Desirable: true,
					CallPath: []dex.Frame{
						main.frameFor("onClick", "(Landroid/view/View;)V"),
						netMgr.frameFor("fetch", "(Ljava/lang/String;)V"),
					},
					Op:     android.NetOp{Endpoint: ep, Host: "cloud.app", Method: "GET", Path: "/files"},
					Weight: 4,
				},
				android.Functionality{
					Name:      b,
					Desirable: false,
					CallPath: []dex.Frame{
						main.frameFor("onClick", "(Landroid/view/View;)V"),
						netMgr.frameFor("push", "([B)V"),
					},
					Op:     android.NetOp{Endpoint: ep, Host: "cloud.app", Method: "PUT", Path: "/files", PayloadBytes: 1024},
					Weight: 4,
				},
			)
			ga.Meta[a] = FuncMeta{}
			ga.Meta[b] = FuncMeta{}
		}
	}

	// Representative single-flow sizes: 36 B .. 480 MB, log-uniform (§VII).
	nFlows := 3 + r.Intn(5)
	ga.FlowSizes = make([]int64, nFlows)
	for f := range ga.FlowSizes {
		ga.FlowSizes[f] = logUniformSize(r, 36, 480*1024*1024)
	}

	classes = append(classes, main.build(), netMgr.build())
	ga.APK = &dex.APK{
		PackageName: pkgName,
		Label:       fmt.Sprintf("App %04d", idx),
		Category:    category,
		VersionCode: 1 + r.Intn(40),
		Downloads:   int64(1000 + r.Intn(100_000_000)),
		Dexes:       []*dex.File{{Classes: classes}},
	}
	ga.Libraries = libs
	if err := ga.APK.Validate(); err != nil {
		return nil, fmt.Errorf("apkgen: app %d invalid: %w", idx, err)
	}
	return ga, nil
}

func libHost(pkg string) string {
	// "com/flurry" -> "data.flurry.com"-style host.
	host := "data"
	for i := len(pkg) - 1; i >= 0; i-- {
		if pkg[i] == '/' {
			host = "data." + pkg[i+1:]
			break
		}
	}
	return host
}

// drawIoIs samples the planned IoI count from the calibrated distribution.
func drawIoIs(r *rand.Rand, probs []float64) int {
	x := r.Float64()
	acc := 0.0
	for k, p := range probs {
		acc += p
		if x < acc {
			return k + 1
		}
	}
	return 0
}

// poissonish draws a small non-negative count with the given mean.
func poissonish(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's method is fine for small means.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 20 {
			return k
		}
	}
}

// zipfRank draws a catalog rank with probability ∝ 1/(rank+1).
func zipfRank(r *rand.Rand, n int) int {
	// Inverse-CDF on the harmonic distribution, approximated.
	hn := math.Log(float64(n)) + 0.5772
	x := r.Float64() * hn
	rank := int(math.Exp(x)) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return rank
}

// logUniformSize draws a size log-uniformly between lo and hi.
func logUniformSize(r *rand.Rand, lo, hi int64) int64 {
	llo := math.Log(float64(lo))
	lhi := math.Log(float64(hi))
	return int64(math.Exp(llo + r.Float64()*(lhi-llo)))
}
