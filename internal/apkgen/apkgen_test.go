package apkgen

import (
	"math/rand"
	"testing"

	"borderpatrol/internal/dex"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Apps = 100
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 100 {
		t.Fatalf("sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].APK.HashHex() != b[i].APK.HashHex() {
			t.Fatalf("app %d hashes differ across runs", i)
		}
		if a[i].PlannedIoIs != b[i].PlannedIoIs {
			t.Fatalf("app %d IoI plans differ", i)
		}
	}
}

func TestGeneratedAppsValid(t *testing.T) {
	apps, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	seenPkg := map[string]bool{}
	for _, ga := range apps {
		if err := ga.APK.Validate(); err != nil {
			t.Fatalf("app %s invalid: %v", ga.APK.PackageName, err)
		}
		if seenPkg[ga.APK.PackageName] {
			t.Fatalf("duplicate package %s", ga.APK.PackageName)
		}
		seenPkg[ga.APK.PackageName] = true
		if len(ga.Functionalities) == 0 {
			t.Fatalf("app %s has no functionality", ga.APK.PackageName)
		}
	}
}

func TestCallPathsResolveAgainstDex(t *testing.T) {
	// Every frame the generator emits must resolve through the app's own
	// line table — otherwise the Context Manager would silently drop app
	// frames and experiments would undercount context.
	apps, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, ga := range apps {
		lt := dex.NewLineTable(ga.APK)
		for _, f := range ga.Functionalities {
			for _, frame := range f.CallPath {
				if _, ok := lt.Resolve(frame); !ok {
					t.Fatalf("app %s func %s frame %v does not resolve", ga.APK.PackageName, f.Name, frame)
				}
			}
		}
	}
}

func TestIoIWiring(t *testing.T) {
	apps, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, ga := range apps {
		// Planned IoIs materialize as paired functionality on one endpoint.
		byEndpoint := map[string][]string{}
		for _, f := range ga.Functionalities {
			byEndpoint[f.Op.Endpoint.String()] = append(byEndpoint[f.Op.Endpoint.String()], f.Name)
		}
		pairs := 0
		for _, names := range byEndpoint {
			if len(names) >= 2 {
				pairs++
			}
		}
		if pairs != ga.PlannedIoIs {
			t.Fatalf("app %s: %d endpoint pairs, planned %d", ga.APK.PackageName, pairs, ga.PlannedIoIs)
		}
		if ga.CrossPackageIoIs > ga.PlannedIoIs {
			t.Fatalf("cross-package count exceeds planned")
		}
	}
}

func TestIoIDistributionShape(t *testing.T) {
	// With the calibrated probabilities, roughly 11% of apps get >= 1 IoI
	// and 1-IoI apps dominate. Use a larger sample for stability.
	cfg := DefaultConfig()
	cfg.Apps = 2000
	apps, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist := map[int]int{}
	for _, ga := range apps {
		hist[ga.PlannedIoIs]++
	}
	withIoI := cfg.Apps - hist[0]
	if withIoI < 150 || withIoI > 290 {
		t.Fatalf("apps with IoI = %d, expected ~218", withIoI)
	}
	if !(hist[1] > hist[2] && hist[2] > hist[3]) {
		t.Fatalf("histogram not monotone: %v", hist)
	}
}

func TestTrackerMetadataConsistent(t *testing.T) {
	apps, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	foundTracker := false
	for _, ga := range apps {
		for _, f := range ga.Functionalities {
			meta, ok := ga.Meta[f.Name]
			if !ok {
				t.Fatalf("app %s func %s missing metadata", ga.APK.PackageName, f.Name)
			}
			if meta.IsTracker {
				foundTracker = true
				if meta.LibraryPkg == "" {
					t.Fatalf("tracker func %s missing library", f.Name)
				}
				if f.Desirable {
					t.Fatalf("tracker func %s marked desirable", f.Name)
				}
			}
		}
	}
	if !foundTracker {
		t.Fatal("corpus contains no tracker functionality at all")
	}
}

func TestFlowSizesSpanPaperRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Apps = 500
	apps, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var minSize, maxSize int64 = 1 << 62, 0
	for _, ga := range apps {
		for _, s := range ga.FlowSizes {
			if s < minSize {
				minSize = s
			}
			if s > maxSize {
				maxSize = s
			}
		}
	}
	// Paper §VII: legitimate single flows range 36 B to 480 MB.
	if minSize < 36 {
		t.Fatalf("flow size %d below 36 B", minSize)
	}
	if maxSize > 480*1024*1024 {
		t.Fatalf("flow size %d above 480 MB", maxSize)
	}
	// The distribution must actually span orders of magnitude.
	if minSize > 10_000 || maxSize < 1_000_000 {
		t.Fatalf("flow sizes too narrow: [%d, %d]", minSize, maxSize)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Apps: 0}); err == nil {
		t.Error("zero apps accepted")
	}
	bad := DefaultConfig()
	bad.Apps = 1
	bad.CrossPackageShare = 2
	if _, err := Generate(bad); err == nil {
		t.Error("bad cross-package share accepted")
	}
}

func TestZipfRankBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		rank := zipfRank(r, 1050)
		if rank < 0 || rank >= 1050 {
			t.Fatalf("rank %d out of bounds", rank)
		}
	}
}

func TestLogUniformBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := logUniformSize(r, 36, 480*1024*1024)
		if v < 36 || v > 480*1024*1024 {
			t.Fatalf("size %d out of bounds", v)
		}
	}
}

func TestPoissonishMean(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += poissonish(r, 2.2)
	}
	mean := float64(sum) / n
	if mean < 1.9 || mean > 2.5 {
		t.Fatalf("mean %f, want ~2.2", mean)
	}
	if poissonish(r, 0) != 0 {
		t.Fatal("zero mean must give zero")
	}
}
