package kernel

import (
	"errors"
	"fmt"
	"sync"

	"borderpatrol/internal/ipv4"
)

// Verdict is an NFQUEUE verdict for a packet.
type Verdict int

// Verdicts.
const (
	// VerdictAccept lets the packet continue chain traversal.
	VerdictAccept Verdict = iota + 1
	// VerdictDrop discards the packet.
	VerdictDrop
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAccept:
		return "NF_ACCEPT"
	case VerdictDrop:
		return "NF_DROP"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Chain identifies a netfilter chain the simulator models.
type Chain int

// Chains traversed by locally-generated traffic.
const (
	// ChainOutput sees every locally generated packet first.
	ChainOutput Chain = iota + 1
	// ChainPostrouting sees packets just before they hit the wire.
	ChainPostrouting
)

// String names the chain in iptables convention.
func (c Chain) String() string {
	switch c {
	case ChainOutput:
		return "OUTPUT"
	case ChainPostrouting:
		return "POSTROUTING"
	default:
		return fmt.Sprintf("chain(%d)", int(c))
	}
}

// QueueHandler is a user-space NFQUEUE consumer: it receives each queued
// packet and must return a verdict, optionally rewriting the packet (the
// Policy Enforcer accepts/drops; the Packet Sanitizer mangles).
type QueueHandler func(pkt *ipv4.Packet) (Verdict, *ipv4.Packet)

// RuleTarget is what an iptables rule does on match.
type RuleTarget int

// Rule targets.
const (
	// TargetAccept accepts immediately.
	TargetAccept RuleTarget = iota + 1
	// TargetDrop drops immediately.
	TargetDrop
	// TargetQueue diverts to an NFQUEUE by number.
	TargetQueue
)

// Rule is a simplified iptables rule: an optional match plus a target.
type Rule struct {
	// Match returns whether the rule applies; nil matches everything.
	Match func(pkt *ipv4.Packet) bool
	// Target is the action on match.
	Target RuleTarget
	// QueueNum selects the NFQUEUE for TargetQueue.
	QueueNum int
	// Comment is operator documentation, as in iptables -m comment.
	Comment string
}

// Netfilter models the kernel's packet-filter hooks.
type Netfilter struct {
	mu       sync.RWMutex
	chains   map[Chain][]Rule
	queues   map[int]QueueHandler
	accepted uint64
	dropped  uint64
	queuedOK uint64
}

// ErrNoQueueHandler reports a rule diverting to an unregistered queue; the
// real kernel drops packets queued to a dead NFQUEUE, and so do we.
var ErrNoQueueHandler = errors.New("kernel: NFQUEUE has no user-space handler")

// NewNetfilter builds an empty rule table (policy ACCEPT on all chains).
func NewNetfilter() *Netfilter {
	return &Netfilter{
		chains: make(map[Chain][]Rule),
		queues: make(map[int]QueueHandler),
	}
}

// Append adds a rule at the end of a chain (iptables -A).
func (nf *Netfilter) Append(chain Chain, rule Rule) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	nf.chains[chain] = append(nf.chains[chain], rule)
}

// Flush removes all rules from a chain (iptables -F).
func (nf *Netfilter) Flush(chain Chain) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	delete(nf.chains, chain)
}

// RegisterQueue binds a user-space handler to an NFQUEUE number.
func (nf *Netfilter) RegisterQueue(num int, h QueueHandler) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	nf.queues[num] = h
}

// UnregisterQueue detaches a queue handler (user-space program exited).
func (nf *Netfilter) UnregisterQueue(num int) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	delete(nf.queues, num)
}

// Output runs a packet through OUTPUT then POSTROUTING, as the kernel does
// for locally generated traffic. It returns the (possibly rewritten)
// packet, or nil if any rule or queue handler dropped it.
func (nf *Netfilter) Output(pkt *ipv4.Packet) (*ipv4.Packet, error) {
	out, err := nf.traverse(ChainOutput, pkt)
	if err != nil || out == nil {
		return nil, err
	}
	return nf.traverse(ChainPostrouting, out)
}

func (nf *Netfilter) traverse(chain Chain, pkt *ipv4.Packet) (*ipv4.Packet, error) {
	nf.mu.RLock()
	rules := nf.chains[chain]
	nf.mu.RUnlock()
	cur := pkt
	for i := range rules {
		r := &rules[i]
		if r.Match != nil && !r.Match(cur) {
			continue
		}
		switch r.Target {
		case TargetAccept:
			nf.count(&nf.accepted)
			return cur, nil
		case TargetDrop:
			nf.count(&nf.dropped)
			return nil, nil
		case TargetQueue:
			nf.mu.RLock()
			h := nf.queues[r.QueueNum]
			nf.mu.RUnlock()
			if h == nil {
				nf.count(&nf.dropped)
				return nil, fmt.Errorf("%w: queue %d", ErrNoQueueHandler, r.QueueNum)
			}
			verdict, rewritten := h(cur)
			if verdict == VerdictDrop {
				nf.count(&nf.dropped)
				return nil, nil
			}
			nf.count(&nf.queuedOK)
			if rewritten != nil {
				cur = rewritten
			}
		}
	}
	// Chain policy is ACCEPT.
	nf.count(&nf.accepted)
	return cur, nil
}

func (nf *Netfilter) count(c *uint64) {
	nf.mu.Lock()
	*c++
	nf.mu.Unlock()
}

// FilterStats reports packet-verdict counters.
type FilterStats struct {
	Accepted uint64
	Dropped  uint64
	Queued   uint64
}

// Stats returns a snapshot of verdict counters.
func (nf *Netfilter) Stats() FilterStats {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	return FilterStats{Accepted: nf.accepted, Dropped: nf.dropped, Queued: nf.queuedOK}
}
