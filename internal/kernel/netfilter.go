package kernel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"borderpatrol/internal/ipv4"
)

// Verdict is an NFQUEUE verdict for a packet.
type Verdict int

// Verdicts.
const (
	// VerdictAccept lets the packet continue chain traversal.
	VerdictAccept Verdict = iota + 1
	// VerdictDrop discards the packet.
	VerdictDrop
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAccept:
		return "NF_ACCEPT"
	case VerdictDrop:
		return "NF_DROP"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Chain identifies a netfilter chain the simulator models.
type Chain int

// Chains traversed by locally-generated traffic.
const (
	// ChainOutput sees every locally generated packet first.
	ChainOutput Chain = iota + 1
	// ChainPostrouting sees packets just before they hit the wire.
	ChainPostrouting
)

// String names the chain in iptables convention.
func (c Chain) String() string {
	switch c {
	case ChainOutput:
		return "OUTPUT"
	case ChainPostrouting:
		return "POSTROUTING"
	default:
		return fmt.Sprintf("chain(%d)", int(c))
	}
}

// QueueHandler is a user-space NFQUEUE consumer: it receives each queued
// packet and must return a verdict, optionally rewriting the packet (the
// Policy Enforcer accepts/drops; the Packet Sanitizer mangles).
type QueueHandler func(pkt *ipv4.Packet) (Verdict, *ipv4.Packet)

// BatchVerdict is one packet's outcome from a QueueBatchHandler.
type BatchVerdict struct {
	// Verdict accepts or drops the packet.
	Verdict Verdict
	// Rewritten replaces the packet for the rest of the traversal when
	// non-nil.
	Rewritten *ipv4.Packet
	// Aux carries handler-specific per-packet data back to the driver
	// (the gateway attaches the enforcement result here). The last
	// non-nil Aux a packet picks up across queues wins.
	Aux any
}

// QueueBatchHandler consumes a whole batch of packets diverted to one
// NFQUEUE in a single user-space transition and returns one BatchVerdict
// per packet (verdicts[i] answers pkts[i]). Batch handlers let the
// consumer amortize per-flow work — resolve, decode, policy — across the
// packets of a burst, which is where the real netfilter_queue's
// per-packet recv/verdict round trip hurts most.
type QueueBatchHandler func(pkts []*ipv4.Packet) []BatchVerdict

// DataplaneCore is one core's leased view of a match-action dataplane: a
// single-owner verdict table probed before the queue handler. Probe
// answers a packet from compiled state (ok false = miss; the caller runs
// the handler and Promotes the outcome). The any value is handler-level
// auxiliary data for the hit (the dataplane returns the same type the
// queue handler would attach, so downstream consumers cannot tell the
// fast and slow paths apart). Promote is called with the handler's
// verdict and Aux for each miss, letting the dataplane learn the flow.
// A Core is held for one batch traversal and Released after it.
type DataplaneCore interface {
	Probe(pkt *ipv4.Packet) (Verdict, any, bool)
	Promote(pkt *ipv4.Packet, v Verdict, aux any)
	Release()
}

// Dataplane hands out per-core verdict tables to batch traversals.
// Acquire may return nil (every core busy); the traversal then runs
// handler-only, which is always correct — the dataplane is a pure
// accelerator.
type Dataplane interface {
	Acquire() DataplaneCore
}

// RuleTarget is what an iptables rule does on match.
type RuleTarget int

// Rule targets.
const (
	// TargetAccept accepts immediately.
	TargetAccept RuleTarget = iota + 1
	// TargetDrop drops immediately.
	TargetDrop
	// TargetQueue diverts to an NFQUEUE by number.
	TargetQueue
)

// Rule is a simplified iptables rule: an optional match plus a target.
type Rule struct {
	// Match returns whether the rule applies; nil matches everything.
	Match func(pkt *ipv4.Packet) bool
	// Target is the action on match.
	Target RuleTarget
	// QueueNum selects the NFQUEUE for TargetQueue.
	QueueNum int
	// Comment is operator documentation, as in iptables -m comment.
	Comment string
}

// Netfilter models the kernel's packet-filter hooks. Verdict counters are
// atomic so concurrent chain traversals (the gateway's per-core batch
// drain) never serialize on a stats lock.
type Netfilter struct {
	mu           sync.RWMutex
	chains       map[Chain][]Rule
	queues       map[int]QueueHandler
	batchQueues  map[int]QueueBatchHandler
	dataplanes   map[int]Dataplane
	accepted     atomic.Uint64
	dropped      atomic.Uint64
	queuedOK     atomic.Uint64
	batchDrains  atomic.Uint64
	batchPackets atomic.Uint64
}

// ErrNoQueueHandler reports a rule diverting to an unregistered queue; the
// real kernel drops packets queued to a dead NFQUEUE, and so do we.
var ErrNoQueueHandler = errors.New("kernel: NFQUEUE has no user-space handler")

// NewNetfilter builds an empty rule table (policy ACCEPT on all chains).
func NewNetfilter() *Netfilter {
	return &Netfilter{
		chains:      make(map[Chain][]Rule),
		queues:      make(map[int]QueueHandler),
		batchQueues: make(map[int]QueueBatchHandler),
		dataplanes:  make(map[int]Dataplane),
	}
}

// Append adds a rule at the end of a chain (iptables -A).
func (nf *Netfilter) Append(chain Chain, rule Rule) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	nf.chains[chain] = append(nf.chains[chain], rule)
}

// Flush removes all rules from a chain (iptables -F).
func (nf *Netfilter) Flush(chain Chain) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	delete(nf.chains, chain)
}

// RegisterQueue binds a user-space handler to an NFQUEUE number.
func (nf *Netfilter) RegisterQueue(num int, h QueueHandler) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	nf.queues[num] = h
}

// RegisterBatchQueue binds a batch-capable user-space handler to an
// NFQUEUE number. Batch traversals (OutputBatch/DrainBatch) prefer it;
// scalar traversals fall back to the QueueHandler registered under the
// same number, so a queue that wants both paths registers both.
func (nf *Netfilter) RegisterBatchQueue(num int, h QueueBatchHandler) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	nf.batchQueues[num] = h
}

// RegisterDataplane installs a match-action stage in front of an
// NFQUEUE's batch handler: batch traversals probe it per packet before
// crossing into user space, fall through to the handler on miss, and
// promote the handler's outcomes back into it. The hardware-offload
// shape: compiled fast path below, full enforcement above.
func (nf *Netfilter) RegisterDataplane(num int, dp Dataplane) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	nf.dataplanes[num] = dp
}

// UnregisterQueue detaches a queue's handlers (user-space program exited).
func (nf *Netfilter) UnregisterQueue(num int) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	delete(nf.queues, num)
	delete(nf.batchQueues, num)
	delete(nf.dataplanes, num)
}

// Output runs a packet through OUTPUT then POSTROUTING, as the kernel does
// for locally generated traffic. It returns the (possibly rewritten)
// packet, or nil if any rule or queue handler dropped it.
func (nf *Netfilter) Output(pkt *ipv4.Packet) (*ipv4.Packet, error) {
	out, err := nf.traverse(ChainOutput, pkt)
	if err != nil || out == nil {
		return nil, err
	}
	return nf.traverse(ChainPostrouting, out)
}

func (nf *Netfilter) traverse(chain Chain, pkt *ipv4.Packet) (*ipv4.Packet, error) {
	nf.mu.RLock()
	rules := nf.chains[chain]
	nf.mu.RUnlock()
	cur := pkt
	for i := range rules {
		r := &rules[i]
		if r.Match != nil && !r.Match(cur) {
			continue
		}
		switch r.Target {
		case TargetAccept:
			nf.accepted.Add(1)
			return cur, nil
		case TargetDrop:
			nf.dropped.Add(1)
			return nil, nil
		case TargetQueue:
			nf.mu.RLock()
			h := nf.queues[r.QueueNum]
			nf.mu.RUnlock()
			if h == nil {
				nf.dropped.Add(1)
				return nil, fmt.Errorf("%w: queue %d", ErrNoQueueHandler, r.QueueNum)
			}
			verdict, rewritten := h(cur)
			if verdict == VerdictDrop {
				nf.dropped.Add(1)
				return nil, nil
			}
			nf.queuedOK.Add(1)
			if rewritten != nil {
				cur = rewritten
			}
		}
	}
	// Chain policy is ACCEPT.
	nf.accepted.Add(1)
	return cur, nil
}

// BatchResult is the fate of one packet pushed through a batch traversal.
type BatchResult struct {
	// Out is the surviving (possibly rewritten) packet; nil when dropped.
	Out *ipv4.Packet
	// Aux is the last non-nil per-packet datum a queue handler attached.
	Aux any
}

// batchItem tracks one packet's traversal state within a chain.
type batchItem struct {
	pkt *ipv4.Packet
	// done marks packets decided for the current chain (accepted early or
	// dropped); dropped packets have pkt == nil.
	done bool
	aux  any
}

// OutputBatch runs a batch through OUTPUT then POSTROUTING in one
// traversal per chain: for each rule, the matching live packets are
// partitioned out and — for NFQUEUE targets — handed to the queue's batch
// handler as a single slice, so the user-space consumer crosses the
// kernel boundary once per burst instead of once per packet. Results
// align with pkts (Out nil = dropped). A queue with neither a batch nor a
// scalar handler drops its packets and reports ErrNoQueueHandler (first
// error wins), like the real kernel's dead-NFQUEUE behaviour.
func (nf *Netfilter) OutputBatch(pkts []*ipv4.Packet) ([]BatchResult, error) {
	items := make([]batchItem, len(pkts))
	for i, p := range pkts {
		items[i] = batchItem{pkt: p}
	}
	err := nf.traverseBatch(ChainOutput, items)
	// Reset chain-scoped accept marks; drops keep pkt == nil.
	for i := range items {
		items[i].done = items[i].pkt == nil
	}
	if err2 := nf.traverseBatch(ChainPostrouting, items); err == nil {
		err = err2
	}
	out := make([]BatchResult, len(items))
	for i := range items {
		out[i] = BatchResult{Out: items[i].pkt, Aux: items[i].aux}
	}
	return out, err
}

// traverseBatch walks one chain over every not-yet-decided item.
// Verdict counters accumulate in locals and flush once per traversal —
// at batch sizes the per-packet atomic adds were a measurable slice of
// the fast-path budget.
func (nf *Netfilter) traverseBatch(chain Chain, items []batchItem) error {
	nf.mu.RLock()
	rules := nf.chains[chain]
	nf.mu.RUnlock()

	var firstErr error
	var accepted, dropped, queued uint64
	// matched carries the item indexes a queue rule diverts this round,
	// sized once at full batch width so append never regrows it.
	var matched []int
	for ri := range rules {
		r := &rules[ri]
		switch r.Target {
		case TargetAccept:
			for i := range items {
				it := &items[i]
				if it.done || (r.Match != nil && !r.Match(it.pkt)) {
					continue
				}
				it.done = true
				accepted++
			}
		case TargetDrop:
			for i := range items {
				it := &items[i]
				if it.done || (r.Match != nil && !r.Match(it.pkt)) {
					continue
				}
				it.pkt = nil
				it.done = true
				dropped++
			}
		case TargetQueue:
			if matched == nil {
				matched = make([]int, 0, len(items))
			}
			matched = matched[:0]
			for i := range items {
				it := &items[i]
				if it.done || (r.Match != nil && !r.Match(it.pkt)) {
					continue
				}
				matched = append(matched, i)
			}
			if len(matched) == 0 {
				continue
			}
			nf.mu.RLock()
			bh := nf.batchQueues[r.QueueNum]
			sh := nf.queues[r.QueueNum]
			dp := nf.dataplanes[r.QueueNum]
			nf.mu.RUnlock()
			switch {
			case bh != nil:
				// Match-action stage first: lease a core and answer what it
				// can before paying the user-space transition. Hits receive
				// the same Aux a handler would attach, so the consumer
				// cannot tell the paths apart; misses fall through to the
				// batch handler and their outcomes are promoted.
				var core DataplaneCore
				if dp != nil {
					core = dp.Acquire()
				}
				if core != nil {
					kept := matched[:0]
					for _, i := range matched {
						it := &items[i]
						v, aux, hit := core.Probe(it.pkt)
						if !hit {
							kept = append(kept, i)
							continue
						}
						if aux != nil {
							it.aux = aux
						}
						if v == VerdictDrop {
							it.pkt = nil
							it.done = true
							dropped++
							continue
						}
						queued++
					}
					matched = kept
				}
				if len(matched) > 0 {
					batch := make([]*ipv4.Packet, len(matched))
					for bi, i := range matched {
						batch[bi] = items[i].pkt
					}
					verdicts := bh(batch)
					for bi, i := range matched {
						it := &items[i]
						// Aux rides along even on drops: the gateway needs the
						// enforcement result of a denied packet for its audit
						// trail, exactly like the scalar reader's lastResult.
						if bi < len(verdicts) && verdicts[bi].Aux != nil {
							it.aux = verdicts[bi].Aux
						}
						if bi >= len(verdicts) {
							it.pkt = nil
							it.done = true
							dropped++
							continue
						}
						if core != nil {
							core.Promote(batch[bi], verdicts[bi].Verdict, verdicts[bi].Aux)
						}
						if verdicts[bi].Verdict == VerdictDrop {
							it.pkt = nil
							it.done = true
							dropped++
							continue
						}
						queued++
						if verdicts[bi].Rewritten != nil {
							it.pkt = verdicts[bi].Rewritten
						}
					}
				}
				if core != nil {
					core.Release()
				}
			case sh != nil:
				for _, i := range matched {
					it := &items[i]
					verdict, rewritten := sh(it.pkt)
					if verdict == VerdictDrop {
						it.pkt = nil
						it.done = true
						dropped++
						continue
					}
					queued++
					if rewritten != nil {
						it.pkt = rewritten
					}
				}
			default:
				for _, i := range matched {
					items[i].pkt = nil
					items[i].done = true
					dropped++
				}
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: queue %d", ErrNoQueueHandler, r.QueueNum)
				}
			}
		}
	}
	// Chain policy is ACCEPT for the survivors.
	for i := range items {
		if !items[i].done {
			accepted++
		}
	}
	if accepted > 0 {
		nf.accepted.Add(accepted)
	}
	if dropped > 0 {
		nf.dropped.Add(dropped)
	}
	if queued > 0 {
		nf.queuedOK.Add(queued)
	}
	return firstErr
}

// DrainBatch is the per-core queue drain: it splits the batch into
// contiguous chunks and runs OutputBatch on each from its own goroutine
// (workers ≤ 0 selects GOMAXPROCS). Queue handlers must be safe for
// concurrent use — the Policy Enforcer's Process/ProcessBatch are
// lock-free precisely so this scales with cores. Packet order within each
// chunk is preserved; results align with pkts.
func (nf *Netfilter) DrainBatch(pkts []*ipv4.Packet, workers int) ([]BatchResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkts) {
		workers = len(pkts)
	}
	nf.batchDrains.Add(1)
	nf.batchPackets.Add(uint64(len(pkts)))
	if workers <= 1 {
		return nf.OutputBatch(pkts)
	}

	out := make([]BatchResult, len(pkts))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(pkts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pkts) {
			hi = len(pkts)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			res, err := nf.OutputBatch(pkts[lo:hi])
			copy(out[lo:hi], res)
			errs[w] = err
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// FilterStats reports packet-verdict counters.
type FilterStats struct {
	Accepted uint64
	Dropped  uint64
	Queued   uint64
	// BatchDrains counts DrainBatch invocations; BatchPackets the packets
	// they carried.
	BatchDrains  uint64
	BatchPackets uint64
}

// ResetStats zeroes the verdict counters — the kernel analogue of a
// reboot. The gateway calls it from Restart so post-restart stats describe
// only the new incarnation; rules and queue registrations survive (they
// are re-established from persistent config on a real host).
func (nf *Netfilter) ResetStats() {
	nf.accepted.Store(0)
	nf.dropped.Store(0)
	nf.queuedOK.Store(0)
	nf.batchDrains.Store(0)
	nf.batchPackets.Store(0)
}

// Stats returns a snapshot of verdict counters.
func (nf *Netfilter) Stats() FilterStats {
	return FilterStats{
		Accepted:     nf.accepted.Load(),
		Dropped:      nf.dropped.Load(),
		Queued:       nf.queuedOK.Load(),
		BatchDrains:  nf.batchDrains.Load(),
		BatchPackets: nf.batchPackets.Load(),
	}
}
