package kernel

import (
	"errors"
	"net/netip"
	"testing"

	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/transport"
)

func addrPort(a string, p uint16) netip.AddrPort {
	return netip.AddrPortFrom(netip.MustParseAddr(a), p)
}

func newConnected(t *testing.T, k *Kernel) int {
	t.Helper()
	fd := k.Socket(10001, ipv4.ProtoTCP)
	if err := k.Connect(fd, addrPort("10.0.0.5", 40000), addrPort("93.184.216.34", 80)); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	return fd
}

func TestSocketLifecycle(t *testing.T) {
	k := New(Config{})
	fd := k.Socket(10001, ipv4.ProtoTCP)
	if fd < 3 {
		t.Fatalf("fd = %d, want >= 3", fd)
	}
	s, err := k.GetSocket(fd)
	if err != nil || s.State != SockCreated {
		t.Fatalf("state = %v err = %v", s.State, err)
	}
	if err := k.Connect(fd, addrPort("10.0.0.5", 40000), addrPort("1.2.3.4", 80)); err != nil {
		t.Fatal(err)
	}
	if err := k.Connect(fd, addrPort("10.0.0.5", 40001), addrPort("1.2.3.4", 80)); !errors.Is(err, ErrIsConnected) {
		t.Fatalf("double connect: %v", err)
	}
	if err := k.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := k.Close(fd); !errors.Is(err, ErrBadFD) {
		t.Fatalf("double close: %v", err)
	}
	if err := k.Connect(fd, addrPort("10.0.0.5", 40001), addrPort("1.2.3.4", 80)); !errors.Is(err, ErrBadFD) {
		t.Fatalf("connect after close: %v", err)
	}
	if _, err := k.Send(fd, []byte("x")); !errors.Is(err, ErrBadFD) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestSendRequiresConnect(t *testing.T) {
	k := New(Config{})
	fd := k.Socket(10001, ipv4.ProtoTCP)
	if _, err := k.Send(fd, []byte("x")); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("err = %v, want ENOTCONN", err)
	}
}

func TestSetIPOptionsPermissionModel(t *testing.T) {
	// Unpatched kernel: unprivileged caller gets EPERM, CAP_NET_ADMIN works.
	k := New(Config{AllowUnprivilegedIPOptions: false})
	fd := newConnected(t, k)
	opt := []ipv4.Option{{Type: ipv4.OptSecurity, Data: []byte{1, 2, 3}}}
	if err := k.SetIPOptions(fd, 0, opt); !errors.Is(err, ErrPermission) {
		t.Fatalf("unprivileged on unpatched kernel: %v", err)
	}
	if err := k.SetIPOptions(fd, CapNetAdmin, opt); err != nil {
		t.Fatalf("privileged on unpatched kernel: %v", err)
	}
	st := k.Stats()
	if st.SetoptDenied != 1 || st.SetoptCalls != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// Patched kernel: unprivileged caller succeeds (the paper's one-line patch).
	kp := New(Config{AllowUnprivilegedIPOptions: true})
	fd2 := newConnected(t, kp)
	if err := kp.SetIPOptions(fd2, 0, opt); err != nil {
		t.Fatalf("unprivileged on patched kernel: %v", err)
	}
}

func TestSetOnceHardeningBlocksReplay(t *testing.T) {
	k := New(Config{AllowUnprivilegedIPOptions: true, SetOptionsOncePerSocket: true})
	fd := newConnected(t, k)
	benign := []ipv4.Option{{Type: ipv4.OptSecurity, Data: []byte{0xaa}}}
	if err := k.SetIPOptions(fd, 0, benign); err != nil {
		t.Fatal(err)
	}
	// A malicious function replaying a benign tag must be rejected.
	replay := []ipv4.Option{{Type: ipv4.OptSecurity, Data: []byte{0xbb}}}
	if err := k.SetIPOptions(fd, 0, replay); !errors.Is(err, ErrOptionSealed) {
		t.Fatalf("replay: %v", err)
	}
	// The original tag survives.
	s, _ := k.GetSocket(fd)
	if len(s.Options) != 1 || s.Options[0].Data[0] != 0xaa {
		t.Fatalf("options = %+v", s.Options)
	}
	// Without hardening, overwrite is allowed (prototype behaviour).
	k2 := New(Config{AllowUnprivilegedIPOptions: true})
	fd2 := newConnected(t, k2)
	if err := k2.SetIPOptions(fd2, 0, benign); err != nil {
		t.Fatal(err)
	}
	if err := k2.SetIPOptions(fd2, 0, replay); err != nil {
		t.Fatalf("prototype kernel must allow overwrite: %v", err)
	}
}

func TestSetIPOptionsSizeLimit(t *testing.T) {
	k := New(Config{AllowUnprivilegedIPOptions: true})
	fd := newConnected(t, k)
	big := []ipv4.Option{{Type: ipv4.OptSecurity, Data: make([]byte, 39)}}
	if err := k.SetIPOptions(fd, 0, big); !errors.Is(err, ErrInvalid) {
		t.Fatalf("oversized options: %v", err)
	}
}

func TestSendStampsOptions(t *testing.T) {
	k := New(Config{AllowUnprivilegedIPOptions: true})
	fd := newConnected(t, k)
	if err := k.SetIPOptions(fd, 0, []ipv4.Option{{Type: ipv4.OptSecurity, Data: []byte{7, 8, 9}}}); err != nil {
		t.Fatal(err)
	}
	pkt, err := k.Send(fd, []byte("GET /"))
	if err != nil {
		t.Fatal(err)
	}
	if pkt == nil {
		t.Fatal("packet dropped unexpectedly")
	}
	opt, ok := pkt.Header.FindOption(ipv4.OptSecurity)
	if !ok || len(opt.Data) != 3 {
		t.Fatalf("options not stamped: %+v", pkt.Header.Options)
	}
	if pkt.Header.Src != netip.MustParseAddr("10.0.0.5") || pkt.Header.Dst != netip.MustParseAddr("93.184.216.34") {
		t.Fatal("addresses wrong")
	}
	// IP IDs increment per packet.
	pkt2, _ := k.Send(fd, []byte("GET /2"))
	if pkt2.Header.ID == pkt.Header.ID {
		t.Fatal("IP ID did not advance")
	}
}

func TestNetfilterQueueVerdicts(t *testing.T) {
	// RawPayloads keeps the payload bytes literal so the queue handler can
	// match on them; netfilter mechanics are identical either way.
	k := New(Config{AllowUnprivilegedIPOptions: true, RawPayloads: true})
	nf := k.Netfilter()
	var seen int
	nf.RegisterQueue(1, func(pkt *ipv4.Packet) (Verdict, *ipv4.Packet) {
		seen++
		if string(pkt.Payload) == "drop-me" {
			return VerdictDrop, nil
		}
		return VerdictAccept, nil
	})
	nf.Append(ChainOutput, Rule{Target: TargetQueue, QueueNum: 1, Comment: "to enforcer"})

	fd := newConnected(t, k)
	if pkt, err := k.Send(fd, []byte("keep-me")); err != nil || pkt == nil {
		t.Fatalf("accept path: pkt=%v err=%v", pkt, err)
	}
	if pkt, err := k.Send(fd, []byte("drop-me")); err != nil || pkt != nil {
		t.Fatalf("drop path: pkt=%v err=%v", pkt, err)
	}
	if seen != 2 {
		t.Fatalf("queue handler saw %d packets, want 2", seen)
	}
	st := nf.Stats()
	if st.Dropped != 1 {
		t.Fatalf("filter stats = %+v", st)
	}
}

func TestNetfilterQueueRewrite(t *testing.T) {
	k := New(Config{AllowUnprivilegedIPOptions: true})
	nf := k.Netfilter()
	// A sanitizer-style handler on POSTROUTING strips options.
	nf.RegisterQueue(2, func(pkt *ipv4.Packet) (Verdict, *ipv4.Packet) {
		c := pkt.Clone()
		c.Header.RemoveOption(ipv4.OptSecurity)
		return VerdictAccept, c
	})
	nf.Append(ChainPostrouting, Rule{Target: TargetQueue, QueueNum: 2, Comment: "to sanitizer"})

	fd := newConnected(t, k)
	if err := k.SetIPOptions(fd, 0, []ipv4.Option{{Type: ipv4.OptSecurity, Data: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	pkt, err := k.Send(fd, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if pkt == nil || pkt.Header.HasOptions() {
		t.Fatalf("sanitizer rewrite not applied: %+v", pkt)
	}
}

func TestNetfilterDeadQueueDrops(t *testing.T) {
	k := New(Config{})
	nf := k.Netfilter()
	nf.Append(ChainOutput, Rule{Target: TargetQueue, QueueNum: 9})
	fd := newConnected(t, k)
	if _, err := k.Send(fd, []byte("x")); !errors.Is(err, ErrNoQueueHandler) {
		t.Fatalf("dead queue: %v", err)
	}
	// Registering then unregistering restores the failure.
	nf.RegisterQueue(9, func(p *ipv4.Packet) (Verdict, *ipv4.Packet) { return VerdictAccept, nil })
	if pkt, err := k.Send(fd, []byte("x")); err != nil || pkt == nil {
		t.Fatalf("live queue: %v", err)
	}
	nf.UnregisterQueue(9)
	if _, err := k.Send(fd, []byte("x")); !errors.Is(err, ErrNoQueueHandler) {
		t.Fatalf("unregistered queue: %v", err)
	}
}

func TestNetfilterRuleMatchAndTargets(t *testing.T) {
	k := New(Config{RawPayloads: true})
	nf := k.Netfilter()
	onlyBig := func(p *ipv4.Packet) bool { return len(p.Payload) > 10 }
	nf.Append(ChainOutput, Rule{Match: onlyBig, Target: TargetDrop, Comment: "drop big"})
	fd := newConnected(t, k)
	if pkt, _ := k.Send(fd, []byte("small")); pkt == nil {
		t.Fatal("small packet dropped")
	}
	if pkt, _ := k.Send(fd, []byte("a very large payload")); pkt != nil {
		t.Fatal("big packet passed")
	}
	// TargetAccept short-circuits later rules.
	nf.Flush(ChainOutput)
	nf.Append(ChainOutput, Rule{Target: TargetAccept})
	nf.Append(ChainOutput, Rule{Target: TargetDrop})
	if pkt, _ := k.Send(fd, []byte("x")); pkt == nil {
		t.Fatal("accept did not short-circuit")
	}
}

func TestChainAndVerdictStrings(t *testing.T) {
	if ChainOutput.String() != "OUTPUT" || ChainPostrouting.String() != "POSTROUTING" {
		t.Error("chain names")
	}
	if VerdictAccept.String() != "NF_ACCEPT" || VerdictDrop.String() != "NF_DROP" {
		t.Error("verdict names")
	}
}

func TestFDsAreUniquePerKernel(t *testing.T) {
	k := New(Config{})
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		fd := k.Socket(10001, ipv4.ProtoTCP)
		if seen[fd] {
			t.Fatalf("fd %d reused while open", fd)
		}
		seen[fd] = true
	}
}

func TestSendWrapsTCPSegment(t *testing.T) {
	k := New(Config{AllowUnprivilegedIPOptions: true})
	fd := newConnected(t, k)
	pkt, err := k.Send(fd, []byte("GET / HTTP/1.1\r\n\r\n"))
	if err != nil || pkt == nil {
		t.Fatalf("send: pkt=%v err=%v", pkt, err)
	}
	seg, err := transport.ParseTCP(pkt.Payload)
	if err != nil {
		t.Fatalf("payload is not a TCP segment: %v", err)
	}
	if seg.SrcPort != 40000 || seg.DstPort != 80 {
		t.Fatalf("segment ports %d->%d, want 40000->80", seg.SrcPort, seg.DstPort)
	}
	if seg.Flags != transport.FlagPSH|transport.FlagACK {
		t.Fatalf("data segment flags %#02x", seg.Flags)
	}
	if string(seg.Payload) != "GET / HTTP/1.1\r\n\r\n" {
		t.Fatalf("segment payload %q", seg.Payload)
	}
	// Sequence numbers advance by payload length across sends.
	pkt2, _ := k.Send(fd, []byte("x"))
	seg2, err := transport.ParseTCP(pkt2.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if seg2.Seq != seg.Seq+uint32(len(seg.Payload)) {
		t.Fatalf("seq %d after %d+%d", seg2.Seq, seg.Seq, len(seg.Payload))
	}
}

func TestConnectionLifecycleSegments(t *testing.T) {
	k := New(Config{AllowUnprivilegedIPOptions: true})
	fd := newConnected(t, k)

	syn, err := k.Handshake(fd)
	if err != nil || syn == nil {
		t.Fatalf("handshake: pkt=%v err=%v", syn, err)
	}
	seg, err := transport.ParseTCP(syn.Payload)
	if err != nil || seg.Flags != transport.FlagSYN || len(seg.Payload) != 0 {
		t.Fatalf("SYN segment = %+v err=%v", seg, err)
	}
	// Handshake is idempotent: the SYN goes out once.
	if again, err := k.Handshake(fd); err != nil || again != nil {
		t.Fatalf("second handshake: pkt=%v err=%v", again, err)
	}

	data, err := k.Send(fd, []byte("payload"))
	if err != nil || data == nil {
		t.Fatal("send after handshake failed")
	}
	dseg, _ := transport.ParseTCP(data.Payload)
	if dseg.Seq != seg.Seq+1 {
		t.Fatalf("data seq %d, want ISN+1 = %d (SYN consumes one)", dseg.Seq, seg.Seq+1)
	}

	fin, err := k.Shutdown(fd)
	if err != nil || fin == nil {
		t.Fatalf("shutdown: pkt=%v err=%v", fin, err)
	}
	fseg, err := transport.ParseTCP(fin.Payload)
	if err != nil || fseg.Flags != transport.FlagFIN|transport.FlagACK {
		t.Fatalf("FIN segment = %+v err=%v", fseg, err)
	}
	// Half-closed: no data after FIN, and the FIN goes out once.
	if _, err := k.Send(fd, []byte("late")); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("send after FIN: %v", err)
	}
	if again, err := k.Shutdown(fd); err != nil || again != nil {
		t.Fatalf("second shutdown: pkt=%v err=%v", again, err)
	}
}

func TestUDPSocketsWrapDatagrams(t *testing.T) {
	k := New(Config{AllowUnprivilegedIPOptions: true})
	fd := k.Socket(10001, ipv4.ProtoUDP)
	if err := k.Connect(fd, addrPort("10.0.0.5", 40002), addrPort("10.66.0.53", 53)); err != nil {
		t.Fatal(err)
	}
	// No handshake and no teardown segments on UDP.
	if pkt, err := k.Handshake(fd); err != nil || pkt != nil {
		t.Fatalf("UDP handshake: pkt=%v err=%v", pkt, err)
	}
	pkt, err := k.Send(fd, []byte("dns-query"))
	if err != nil || pkt == nil {
		t.Fatal("UDP send failed")
	}
	if pkt.Header.Protocol != ipv4.ProtoUDP {
		t.Fatalf("protocol = %d", pkt.Header.Protocol)
	}
	dg, err := transport.ParseUDP(pkt.Payload)
	if err != nil {
		t.Fatalf("payload is not a UDP datagram: %v", err)
	}
	if dg.SrcPort != 40002 || dg.DstPort != 53 || string(dg.Payload) != "dns-query" {
		t.Fatalf("datagram = %+v", dg)
	}
	if pkt, err := k.Shutdown(fd); err != nil || pkt != nil {
		t.Fatalf("UDP shutdown: pkt=%v err=%v", pkt, err)
	}
}

func TestRawPayloadsLegacyMode(t *testing.T) {
	k := New(Config{AllowUnprivilegedIPOptions: true, RawPayloads: true})
	fd := newConnected(t, k)
	if pkt, err := k.Handshake(fd); err != nil || pkt != nil {
		t.Fatalf("legacy handshake: pkt=%v err=%v", pkt, err)
	}
	pkt, err := k.Send(fd, []byte("GET / HTTP/1.1\r\n\r\n"))
	if err != nil || pkt == nil {
		t.Fatal("legacy send failed")
	}
	if string(pkt.Payload) != "GET / HTTP/1.1\r\n\r\n" {
		t.Fatalf("legacy payload wrapped: %q", pkt.Payload)
	}
	if pkt, err := k.Shutdown(fd); err != nil || pkt != nil {
		t.Fatalf("legacy shutdown: pkt=%v err=%v", pkt, err)
	}
}

func TestUDPSendRejectsOversizedPayload(t *testing.T) {
	k := New(Config{AllowUnprivilegedIPOptions: true})
	fd := k.Socket(10001, ipv4.ProtoUDP)
	if err := k.Connect(fd, addrPort("10.0.0.5", 40002), addrPort("10.66.0.53", 53)); err != nil {
		t.Fatal(err)
	}
	// One byte over the 16-bit UDP length budget: EMSGSIZE, not a wrapped
	// length field.
	if _, err := k.Send(fd, make([]byte, transport.MaxUDPPayload+1)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("oversized UDP payload: %v", err)
	}
	// Exactly at the budget still works.
	pkt, err := k.Send(fd, make([]byte, transport.MaxUDPPayload))
	if err != nil || pkt == nil {
		t.Fatalf("max-size UDP payload: pkt=%v err=%v", pkt, err)
	}
	if _, err := transport.ParseUDP(pkt.Payload); err != nil {
		t.Fatalf("max-size datagram does not parse: %v", err)
	}
}
