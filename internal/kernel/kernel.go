// Package kernel simulates the Linux-kernel facilities BorderPatrol
// depends on: POSIX-style socket syscalls with capability checks on
// IP_OPTIONS, the paper's one-line kernel patch that lifts the
// CAP_NET_RAW requirement for unprivileged apps (§V-B "Instrumented Linux
// kernel"), the set-once hardening against tag replay (§VII "Tag-replay"),
// and a netfilter subsystem with OUTPUT/POSTROUTING chains and NFQUEUE
// verdicts (§V-C).
package kernel

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"

	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/transport"
)

// Capability bits mirror the Linux capabilities relevant to IP_OPTIONS.
type Capability uint32

// Capabilities.
const (
	// CapNetRaw permits raw packet construction (kernel default gate for
	// exotic socket options).
	CapNetRaw Capability = 1 << iota
	// CapNetAdmin permits network administration (header construction).
	CapNetAdmin
)

// Config selects kernel behaviour for a simulated device.
type Config struct {
	// AllowUnprivilegedIPOptions is the paper's one-line patch: when true,
	// user-space programs may set IP_OPTIONS without CAP_NET_ADMIN.
	AllowUnprivilegedIPOptions bool
	// SetOptionsOncePerSocket is the hardening the paper proposes against
	// tag replay: once IP_OPTIONS is set on a socket, further setsockopt
	// calls for it fail.
	SetOptionsOncePerSocket bool
	// RawPayloads reverts to the pre-transport wire format: Send places
	// the application payload directly in the IPv4 payload (no TCP/UDP
	// header) and Handshake/Shutdown emit nothing. Kept for the
	// equivalence regression against the legacy simulator and for
	// harnesses whose latency calibration charges per-request, not
	// per-segment (the Fig. 4 stress test).
	RawPayloads bool
}

// Errors mirroring the errno values the real syscalls produce.
var (
	ErrPermission   = errors.New("kernel: EPERM: operation not permitted")
	ErrBadFD        = errors.New("kernel: EBADF: bad file descriptor")
	ErrNotConnected = errors.New("kernel: ENOTCONN: socket not connected")
	ErrIsConnected  = errors.New("kernel: EISCONN: socket already connected")
	ErrInvalid      = errors.New("kernel: EINVAL: invalid argument")
	ErrOptionSealed = errors.New("kernel: EACCES: IP_OPTIONS already set on socket (set-once hardening)")
)

// SockState tracks a socket's lifecycle.
type SockState int

// Socket states.
const (
	// SockCreated is a socket after socket(2) and before connect(2).
	SockCreated SockState = iota + 1
	// SockConnected is a socket after a successful connect(2).
	SockConnected
	// SockClosed is a closed socket; its fd may be reused.
	SockClosed
)

// Socket is the kernel-side socket object.
type Socket struct {
	FD        int
	State     SockState
	Local     netip.AddrPort
	Remote    netip.AddrPort
	Protocol  byte
	Options   []ipv4.Option
	optSealed bool
	// OwnerUID identifies the app owning the socket (Android gives each
	// app a distinct uid).
	OwnerUID int
	// seq is the TCP send sequence number: the ISN is picked at connect,
	// the SYN and FIN each consume one, data consumes its length.
	seq uint32
	// synSent and finSent track the connection-lifecycle segments already
	// emitted, so Handshake/Shutdown are idempotent and data cannot
	// follow a FIN.
	synSent, finSent bool
}

// Kernel is one simulated kernel instance (one per device).
type Kernel struct {
	mu      sync.Mutex
	cfg     Config
	nextFD  int
	sockets map[int]*Socket
	filter  *Netfilter
	// ipidCounter assigns IPv4 identification values.
	ipidCounter uint16
	// stats
	socketCalls  uint64
	connectCalls uint64
	setoptCalls  uint64
	setoptDenied uint64
}

// New builds a kernel with the given configuration.
func New(cfg Config) *Kernel {
	return &Kernel{
		cfg:     cfg,
		nextFD:  3, // 0-2 are stdio, as on a real system
		sockets: make(map[int]*Socket),
		filter:  NewNetfilter(),
	}
}

// Config returns the kernel configuration.
func (k *Kernel) Config() Config {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.cfg
}

// Netfilter exposes the kernel's netfilter subsystem.
func (k *Kernel) Netfilter() *Netfilter { return k.filter }

// Socket implements socket(2): allocates a socket and returns its fd.
func (k *Kernel) Socket(ownerUID int, protocol byte) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	fd := k.nextFD
	k.nextFD++
	k.sockets[fd] = &Socket{
		FD:       fd,
		State:    SockCreated,
		Protocol: protocol,
		OwnerUID: ownerUID,
	}
	k.socketCalls++
	return fd
}

// Connect implements connect(2).
func (k *Kernel) Connect(fd int, local, remote netip.AddrPort) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	s, ok := k.sockets[fd]
	if !ok || s.State == SockClosed {
		return ErrBadFD
	}
	if s.State == SockConnected {
		return ErrIsConnected
	}
	s.Local = local
	s.Remote = remote
	s.State = SockConnected
	// Deterministic ISN: fd and port spread connections apart; the
	// simulator needs reproducibility, not the RFC 6528 hash.
	s.seq = uint32(fd)<<16 | uint32(local.Port())
	k.connectCalls++
	return nil
}

// SetIPOptions implements setsockopt(fd, IPPROTO_IP, IP_OPTIONS, ...).
//
// The unpatched kernel requires CAP_NET_ADMIN (system apps only); the
// paper's patch lifts that requirement so the user-space Context Manager
// can tag sockets. With set-once hardening enabled, the first caller wins
// and later calls fail — defeating tag replay by malicious functions.
func (k *Kernel) SetIPOptions(fd int, caps Capability, opts []ipv4.Option) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.setoptCalls++
	s, ok := k.sockets[fd]
	if !ok || s.State == SockClosed {
		return ErrBadFD
	}
	if !k.cfg.AllowUnprivilegedIPOptions && caps&CapNetAdmin == 0 {
		k.setoptDenied++
		return fmt.Errorf("%w: IP_OPTIONS requires CAP_NET_ADMIN on unpatched kernel", ErrPermission)
	}
	if k.cfg.SetOptionsOncePerSocket && s.optSealed {
		k.setoptDenied++
		return ErrOptionSealed
	}
	total := 0
	for _, o := range opts {
		if o.Type != ipv4.OptEnd && o.Type != ipv4.OptNOP {
			total += 2 + len(o.Data)
		} else {
			total++
		}
	}
	if total > ipv4.MaxOptionsLen {
		return fmt.Errorf("%w: options %d bytes exceed %d", ErrInvalid, total, ipv4.MaxOptionsLen)
	}
	s.Options = make([]ipv4.Option, len(opts))
	for i, o := range opts {
		s.Options[i] = ipv4.Option{Type: o.Type, Data: append([]byte(nil), o.Data...)}
	}
	s.optSealed = true
	return nil
}

// GetSocket returns a snapshot of the socket's kernel state.
func (k *Kernel) GetSocket(fd int) (Socket, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	s, ok := k.sockets[fd]
	if !ok {
		return Socket{}, ErrBadFD
	}
	cp := *s
	cp.Options = append([]ipv4.Option(nil), s.Options...)
	return cp, nil
}

// Close implements close(2) for sockets.
func (k *Kernel) Close(fd int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	s, ok := k.sockets[fd]
	if !ok || s.State == SockClosed {
		return ErrBadFD
	}
	s.State = SockClosed
	return nil
}

// Send builds the IPv4 packet for a payload written to a connected socket,
// wraps it in the socket's transport header (a TCP data segment or a UDP
// datagram carrying the socket's real ports — unless Config.RawPayloads
// selects the legacy plain wire format), stamps the socket's IP options
// into the IPv4 header, and runs it through the netfilter OUTPUT chain.
// It returns the packet as it should enter the network (nil packet when a
// netfilter verdict dropped it).
func (k *Kernel) Send(fd int, payload []byte) (*ipv4.Packet, error) {
	k.mu.Lock()
	s, ok := k.sockets[fd]
	if !ok || s.State == SockClosed {
		k.mu.Unlock()
		return nil, ErrBadFD
	}
	if s.State != SockConnected || s.finSent {
		k.mu.Unlock()
		return nil, ErrNotConnected
	}
	var wire []byte
	switch {
	case k.cfg.RawPayloads:
		wire = append([]byte(nil), payload...)
	case s.Protocol == ipv4.ProtoUDP:
		if len(payload) > transport.MaxUDPPayload {
			// EMSGSIZE: the 16-bit UDP length field cannot represent it,
			// and Marshal would silently wrap the field.
			k.mu.Unlock()
			return nil, fmt.Errorf("%w: UDP payload %d exceeds %d bytes",
				ErrInvalid, len(payload), transport.MaxUDPPayload)
		}
		dg := transport.UDPDatagram{
			SrcPort: s.Local.Port(),
			DstPort: s.Remote.Port(),
			Payload: payload,
		}
		wire = dg.Marshal()
	default:
		seg := transport.TCPSegment{
			SrcPort: s.Local.Port(),
			DstPort: s.Remote.Port(),
			Seq:     s.seq,
			Flags:   transport.FlagPSH | transport.FlagACK,
			Window:  65535,
			Payload: payload,
		}
		s.seq += uint32(len(payload))
		wire = seg.Marshal()
	}
	pkt, filter := k.buildPacketLocked(s, wire)
	k.mu.Unlock()

	// Traverse the OUTPUT chain outside the kernel lock: NFQUEUE handlers
	// are user-space programs and may call back into the kernel.
	return filter.Output(pkt)
}

// buildPacketLocked assembles the IPv4 packet for a socket's wire payload
// (transport header included) and stamps the socket's IP options. Caller
// holds k.mu.
func (k *Kernel) buildPacketLocked(s *Socket, wire []byte) (*ipv4.Packet, *Netfilter) {
	k.ipidCounter++
	pkt := &ipv4.Packet{
		Header: ipv4.Header{
			ID:       k.ipidCounter,
			TTL:      64,
			Protocol: s.Protocol,
			Src:      s.Local.Addr(),
			Dst:      s.Remote.Addr(),
		},
		Payload: wire,
	}
	for _, o := range s.Options {
		pkt.Header.SetOption(ipv4.Option{Type: o.Type, Data: append([]byte(nil), o.Data...)})
	}
	return pkt, k.filter
}

// Handshake emits the connection-opening SYN segment for a connected TCP
// socket through the netfilter OUTPUT chain. It runs after the socket's
// IP options are in place (the Context Manager's post-connect hook has
// fired), so the SYN carries the flow's tag like every other packet and
// the gateway's conntrack can key the connection from its first segment.
// It returns (nil, nil) when the socket speaks UDP, when RawPayloads
// selects the legacy wire format, or when the SYN was already sent; a nil
// packet with nil error also means a device-side filter dropped it.
func (k *Kernel) Handshake(fd int) (*ipv4.Packet, error) {
	k.mu.Lock()
	s, ok := k.sockets[fd]
	if !ok || s.State == SockClosed {
		k.mu.Unlock()
		return nil, ErrBadFD
	}
	if s.State != SockConnected {
		k.mu.Unlock()
		return nil, ErrNotConnected
	}
	if k.cfg.RawPayloads || s.Protocol != ipv4.ProtoTCP || s.synSent {
		k.mu.Unlock()
		return nil, nil
	}
	seg := transport.TCPSegment{
		SrcPort: s.Local.Port(),
		DstPort: s.Remote.Port(),
		Seq:     s.seq,
		Flags:   transport.FlagSYN,
		Window:  65535,
	}
	s.seq++ // the SYN consumes one sequence number
	s.synSent = true
	pkt, filter := k.buildPacketLocked(s, seg.Marshal())
	k.mu.Unlock()
	return filter.Output(pkt)
}

// Shutdown emits the connection-closing FIN segment (FIN|ACK) for a
// connected TCP socket through the netfilter OUTPUT chain and marks the
// socket half-closed: further Sends fail. Like Handshake it returns
// (nil, nil) for UDP sockets, in RawPayloads mode, or when the FIN was
// already sent. The gateway's conntrack tears the flow's cached verdict
// down when this segment passes enforcement.
func (k *Kernel) Shutdown(fd int) (*ipv4.Packet, error) {
	k.mu.Lock()
	s, ok := k.sockets[fd]
	if !ok || s.State == SockClosed {
		k.mu.Unlock()
		return nil, ErrBadFD
	}
	if s.State != SockConnected {
		k.mu.Unlock()
		return nil, ErrNotConnected
	}
	if k.cfg.RawPayloads || s.Protocol != ipv4.ProtoTCP || s.finSent {
		k.mu.Unlock()
		return nil, nil
	}
	seg := transport.TCPSegment{
		SrcPort: s.Local.Port(),
		DstPort: s.Remote.Port(),
		Seq:     s.seq,
		Flags:   transport.FlagFIN | transport.FlagACK,
		Window:  65535,
	}
	s.seq++ // the FIN consumes one sequence number
	s.finSent = true
	pkt, filter := k.buildPacketLocked(s, seg.Marshal())
	k.mu.Unlock()
	return filter.Output(pkt)
}

// Stats reports syscall counters.
type Stats struct {
	SocketCalls  uint64
	ConnectCalls uint64
	SetoptCalls  uint64
	SetoptDenied uint64
}

// Stats returns a snapshot of kernel counters.
func (k *Kernel) Stats() Stats {
	k.mu.Lock()
	defer k.mu.Unlock()
	return Stats{
		SocketCalls:  k.socketCalls,
		ConnectCalls: k.connectCalls,
		SetoptCalls:  k.setoptCalls,
		SetoptDenied: k.setoptDenied,
	}
}
