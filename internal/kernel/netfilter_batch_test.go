package kernel

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"borderpatrol/internal/ipv4"
)

func batchPkt(i int, payload string) *ipv4.Packet {
	return &ipv4.Packet{
		Header: ipv4.Header{
			TTL:      64,
			Protocol: ipv4.ProtoTCP,
			Src:      netip.MustParseAddr("10.66.0.2"),
			Dst:      netip.AddrFrom4([4]byte{93, 184, byte(i >> 8), byte(i)}),
		},
		Payload: []byte(payload),
	}
}

// TestOutputBatchMatchesScalar runs the same packets through Output and
// OutputBatch against a queue whose handler drops "evil" payloads, and
// requires identical fates.
func TestOutputBatchMatchesScalar(t *testing.T) {
	mk := func() *Netfilter {
		nf := NewNetfilter()
		nf.Append(ChainOutput, Rule{Target: TargetQueue, QueueNum: 1})
		drop := func(pkt *ipv4.Packet) bool { return string(pkt.Payload) == "evil" }
		nf.RegisterQueue(1, func(pkt *ipv4.Packet) (Verdict, *ipv4.Packet) {
			if drop(pkt) {
				return VerdictDrop, nil
			}
			return VerdictAccept, nil
		})
		nf.RegisterBatchQueue(1, func(pkts []*ipv4.Packet) []BatchVerdict {
			out := make([]BatchVerdict, len(pkts))
			for i, pkt := range pkts {
				if drop(pkt) {
					out[i] = BatchVerdict{Verdict: VerdictDrop}
				} else {
					out[i] = BatchVerdict{Verdict: VerdictAccept, Aux: i}
				}
			}
			return out
		})
		return nf
	}

	var pkts []*ipv4.Packet
	for i := 0; i < 16; i++ {
		payload := "ok"
		if i%3 == 0 {
			payload = "evil"
		}
		pkts = append(pkts, batchPkt(i, payload))
	}

	scalar := mk()
	var want []bool
	for _, pkt := range pkts {
		out, err := scalar.Output(pkt)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, out != nil)
	}

	batch := mk()
	res, err := batch.OutputBatch(pkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(pkts) {
		t.Fatalf("len(res) = %d, want %d", len(res), len(pkts))
	}
	for i := range res {
		if (res[i].Out != nil) != want[i] {
			t.Fatalf("pkt %d: batch delivered=%v, scalar=%v", i, res[i].Out != nil, want[i])
		}
		if res[i].Out != nil && res[i].Aux == nil {
			t.Fatalf("pkt %d: aux not propagated", i)
		}
	}
}

// TestOutputBatchRewriteFlowsDownstream checks that a rewrite from one
// queue is what the next chain's queue sees (the sanitizer depends on it).
func TestOutputBatchRewriteFlowsDownstream(t *testing.T) {
	nf := NewNetfilter()
	nf.Append(ChainOutput, Rule{Target: TargetQueue, QueueNum: 1})
	nf.Append(ChainPostrouting, Rule{Target: TargetQueue, QueueNum: 2})
	nf.RegisterBatchQueue(1, func(pkts []*ipv4.Packet) []BatchVerdict {
		out := make([]BatchVerdict, len(pkts))
		for i, pkt := range pkts {
			rw := pkt.Clone()
			rw.Payload = append(rw.Payload, []byte("+q1")...)
			out[i] = BatchVerdict{Verdict: VerdictAccept, Rewritten: rw}
		}
		return out
	})
	var seen []string
	nf.RegisterBatchQueue(2, func(pkts []*ipv4.Packet) []BatchVerdict {
		out := make([]BatchVerdict, len(pkts))
		for i, pkt := range pkts {
			seen = append(seen, string(pkt.Payload))
			out[i] = BatchVerdict{Verdict: VerdictAccept}
		}
		return out
	})
	res, err := nf.OutputBatch([]*ipv4.Packet{batchPkt(0, "a"), batchPkt(1, "b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != "a+q1" || seen[1] != "b+q1" {
		t.Fatalf("queue 2 saw %v", seen)
	}
	for i, r := range res {
		if r.Out == nil {
			t.Fatalf("pkt %d dropped", i)
		}
	}
}

// TestOutputBatchScalarFallback: a queue with only a scalar handler still
// works under batch traversal.
func TestOutputBatchScalarFallback(t *testing.T) {
	nf := NewNetfilter()
	nf.Append(ChainOutput, Rule{Target: TargetQueue, QueueNum: 1})
	calls := 0
	nf.RegisterQueue(1, func(pkt *ipv4.Packet) (Verdict, *ipv4.Packet) {
		calls++
		return VerdictAccept, nil
	})
	res, err := nf.OutputBatch([]*ipv4.Packet{batchPkt(0, "x"), batchPkt(1, "y")})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("scalar handler called %d times, want 2", calls)
	}
	for i, r := range res {
		if r.Out == nil {
			t.Fatalf("pkt %d dropped", i)
		}
	}
}

// TestOutputBatchDeadQueue: packets to an unregistered queue drop with
// ErrNoQueueHandler, like the scalar path.
func TestOutputBatchDeadQueue(t *testing.T) {
	nf := NewNetfilter()
	nf.Append(ChainOutput, Rule{Target: TargetQueue, QueueNum: 9})
	res, err := nf.OutputBatch([]*ipv4.Packet{batchPkt(0, "x")})
	if !errors.Is(err, ErrNoQueueHandler) {
		t.Fatalf("err = %v", err)
	}
	if res[0].Out != nil {
		t.Fatal("packet survived a dead queue")
	}
}

// TestOutputBatchRuleTargets: accept/drop rules partition the batch before
// any queue work, and matched subsets reach the queue as one slice.
func TestOutputBatchRuleTargets(t *testing.T) {
	nf := NewNetfilter()
	nf.Append(ChainOutput, Rule{
		Match:  func(pkt *ipv4.Packet) bool { return string(pkt.Payload) == "drop-me" },
		Target: TargetDrop,
	})
	nf.Append(ChainOutput, Rule{
		Match:  func(pkt *ipv4.Packet) bool { return string(pkt.Payload) == "fast-path" },
		Target: TargetAccept,
	})
	nf.Append(ChainOutput, Rule{Target: TargetQueue, QueueNum: 1})
	var batchSizes []int
	nf.RegisterBatchQueue(1, func(pkts []*ipv4.Packet) []BatchVerdict {
		batchSizes = append(batchSizes, len(pkts))
		out := make([]BatchVerdict, len(pkts))
		for i := range out {
			out[i] = BatchVerdict{Verdict: VerdictAccept}
		}
		return out
	})
	pkts := []*ipv4.Packet{
		batchPkt(0, "drop-me"),
		batchPkt(1, "fast-path"),
		batchPkt(2, "inspect"),
		batchPkt(3, "inspect"),
	}
	res, err := nf.OutputBatch(pkts)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Out != nil {
		t.Fatal("TargetDrop packet survived")
	}
	for i := 1; i < 4; i++ {
		if res[i].Out == nil {
			t.Fatalf("pkt %d dropped", i)
		}
	}
	if len(batchSizes) != 1 || batchSizes[0] != 2 {
		t.Fatalf("queue saw batches %v, want one batch of 2", batchSizes)
	}
}

// TestDrainBatchParallelWorkers pushes a large batch through DrainBatch
// with several workers under -race: results must align with inputs and
// every packet must get exactly one verdict.
func TestDrainBatchParallelWorkers(t *testing.T) {
	nf := NewNetfilter()
	nf.Append(ChainOutput, Rule{Target: TargetQueue, QueueNum: 1})
	var handled sync.Map
	nf.RegisterBatchQueue(1, func(pkts []*ipv4.Packet) []BatchVerdict {
		out := make([]BatchVerdict, len(pkts))
		for i, pkt := range pkts {
			if _, dup := handled.LoadOrStore(pkt, true); dup {
				panic("packet handled twice")
			}
			if string(pkt.Payload) == "evil" {
				out[i] = BatchVerdict{Verdict: VerdictDrop}
			} else {
				out[i] = BatchVerdict{Verdict: VerdictAccept, Aux: string(pkt.Payload)}
			}
		}
		return out
	})

	const n = 1000
	pkts := make([]*ipv4.Packet, n)
	for i := range pkts {
		payload := fmt.Sprintf("pkt-%d", i)
		if i%7 == 0 {
			payload = "evil"
		}
		pkts[i] = batchPkt(i, payload)
	}
	res, err := nf.DrainBatch(pkts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if i%7 == 0 {
			if res[i].Out != nil {
				t.Fatalf("pkt %d: evil packet survived", i)
			}
			continue
		}
		if res[i].Out == nil {
			t.Fatalf("pkt %d dropped", i)
		}
		if aux, _ := res[i].Aux.(string); aux != fmt.Sprintf("pkt-%d", i) {
			t.Fatalf("pkt %d: aux %v misaligned", i, res[i].Aux)
		}
	}
	st := nf.Stats()
	if st.BatchDrains != 1 || st.BatchPackets != n {
		t.Fatalf("batch stats = %+v", st)
	}
}
