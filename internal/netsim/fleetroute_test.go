package netsim

import (
	"net/netip"
	"testing"

	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/sanitizer"
)

// fleetFixture stands up two gateways on one network: subnet A's gateway
// denies com/flurry, subnet B's allows everything. Both sanitize, so
// allowed tagged traffic survives the border filter. The returned beacon
// builder mints a fresh tracker-tagged packet from the given source.
func fleetFixture(t *testing.T) (n *Network, gwA, gwB *Gateway, beacon func(src string) *ipv4.Packet) {
	t.Helper()
	enfA, apk, db := buildEnforcerAndDB(t)
	engB, err := policy.NewEngine(nil, policy.VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	enfB := enforcer.New(enforcer.Config{}, db, engB)
	gwA = NewGateway(GatewayConfig{Enforcer: enfA, Sanitizer: sanitizer.New(sanitizer.Config{})})
	gwB = NewGateway(GatewayConfig{Enforcer: enfB, Sanitizer: sanitizer.New(sanitizer.Config{})})
	n = newStaticNetwork(ModeTAP, nil)
	n.AddGatewayRoute(netip.MustParsePrefix("10.1.0.0/16"), gwA)
	n.AddGatewayRoute(netip.MustParsePrefix("10.2.0.0/16"), gwB)
	beacon = func(src string) *ipv4.Packet {
		p := taggedPacket(t, apk, db, "beacon")
		p.Header.Src = netip.MustParseAddr(src)
		return p
	}
	return n, gwA, gwB, beacon
}

func TestSubnetRoutingScalar(t *testing.T) {
	n, gwA, gwB, beacon := fleetFixture(t)

	if got := n.GatewayFor(netip.MustParseAddr("10.1.0.7")); got != gwA {
		t.Fatal("10.1/16 not routed to gateway A")
	}
	if got := n.GatewayFor(netip.MustParseAddr("10.2.200.1")); got != gwB {
		t.Fatal("10.2/16 not routed to gateway B")
	}
	if got := n.GatewayFor(netip.MustParseAddr("192.0.2.1")); got != nil {
		t.Fatal("unrouted source did not fall back to the Gateway field (nil)")
	}

	// The same tracker-tagged packet lives or dies by its source subnet.
	if d := n.Deliver(beacon("10.1.0.7")); d.Delivered || d.Stage != StageGateway {
		t.Fatalf("subnet A beacon not enforced: %+v", d)
	}
	if d := n.Deliver(beacon("10.2.0.7")); !d.Delivered {
		t.Fatalf("subnet B beacon dropped: %+v", d)
	}
}

func TestSubnetRoutingLongestPrefixAndFallback(t *testing.T) {
	n, gwA, gwB, _ := fleetFixture(t)
	// A more specific carve-out inside A's /16 goes to B.
	n.AddGatewayRoute(netip.MustParsePrefix("10.1.99.0/24"), gwB)
	if got := n.GatewayFor(netip.MustParseAddr("10.1.99.5")); got != gwB {
		t.Fatal("longest prefix not preferred")
	}
	if got := n.GatewayFor(netip.MustParseAddr("10.1.98.5")); got != gwA {
		t.Fatal("carve-out leaked beyond its /24")
	}
	// The legacy Gateway field fronts everything outside the routes.
	n.Gateway = gwA
	if got := n.GatewayFor(netip.MustParseAddr("172.16.0.1")); got != gwA {
		t.Fatal("fallback to Gateway field broken")
	}
}

func TestSubnetRoutingBatchPartition(t *testing.T) {
	n, _, _, beacon := fleetFixture(t)
	// An interleaved burst from both subnets: every A packet must drop,
	// every B packet must deliver, in input order.
	var pkts []*ipv4.Packet
	for i := 0; i < 16; i++ {
		src := "10.1.0.9"
		if i%2 == 1 {
			src = "10.2.0.9"
		}
		pkts = append(pkts, beacon(src))
	}
	ds := n.DeliverBatch(pkts)
	for i, d := range ds {
		fromA := i%2 == 0
		if fromA && (d.Delivered || d.Stage != StageGateway) {
			t.Fatalf("packet %d (subnet A): %+v", i, d)
		}
		if !fromA && !d.Delivered {
			t.Fatalf("packet %d (subnet B): %+v", i, d)
		}
	}
}

func TestDevicePool(t *testing.T) {
	if _, err := NewDevicePool(netip.MustParsePrefix("2001:db8::/64"), 1); err == nil {
		t.Fatal("IPv6 prefix accepted")
	}
	if _, err := NewDevicePool(netip.MustParsePrefix("10.1.0.0/24"), 255); err == nil {
		t.Fatal("oversubscribed pool accepted")
	}
	p, err := NewDevicePool(netip.MustParsePrefix("10.1.0.0/24"), 254)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Addr(0); got != netip.MustParseAddr("10.1.0.2") {
		t.Fatalf("Addr(0) = %v", got)
	}
	if got := p.Addr(253); got != netip.MustParseAddr("10.1.0.255") {
		t.Fatalf("Addr(253) = %v", got)
	}
	big, err := NewDevicePool(netip.MustParsePrefix("10.64.0.0/16"), 40000)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Prefix(); got != netip.MustParsePrefix("10.1.0.0/24") {
		t.Fatalf("Prefix = %v", got)
	}
	if got := big.Addr(300); got != netip.MustParseAddr("10.64.1.46") {
		t.Fatalf("Addr(300) = %v (carry across octets broken)", got)
	}
}

func TestDevicePoolRewritePreservesEverythingButSrc(t *testing.T) {
	_, apk, db := buildEnforcerAndDB(t)
	tmpl := []*ipv4.Packet{taggedPacket(t, apk, db, "beacon"), taggedPacket(t, apk, db, "sync")}
	origSrc := tmpl[0].Header.Src
	p, err := NewDevicePool(netip.MustParsePrefix("10.3.0.0/16"), 100)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Rewrite(7, tmpl)
	if len(out) != 2 {
		t.Fatalf("rewrote %d packets", len(out))
	}
	for j, c := range out {
		if c.Header.Src != p.Addr(7) {
			t.Fatalf("packet %d src = %v", j, c.Header.Src)
		}
		if c.Header.Dst != tmpl[j].Header.Dst {
			t.Fatalf("packet %d dst changed", j)
		}
		orig, _ := tmpl[j].Header.FindOption(ipv4.OptSecurity)
		got, ok := c.Header.FindOption(ipv4.OptSecurity)
		if !ok || string(got.Data) != string(orig.Data) {
			t.Fatalf("packet %d tag bytes damaged", j)
		}
		if string(c.Payload) != string(tmpl[j].Payload) {
			t.Fatalf("packet %d payload damaged", j)
		}
	}
	// The template burst is untouched (clones, not aliases).
	if tmpl[0].Header.Src != origSrc {
		t.Fatal("template mutated")
	}
	out[0].Payload[0] ^= 0xff
	if tmpl[0].Payload[0] == out[0].Payload[0] {
		t.Fatal("payload aliased, not cloned")
	}
}
