package netsim

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"borderpatrol/internal/devctx"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
)

// DevicePool amortizes the android device model across a fleet-sized
// device population. A full simulated device (kernel, netstack, context
// manager) is cheap but not free; at 10k–100k devices per gateway the
// fleet harness keeps a handful of real template devices and fans each
// template's egress burst out across a subnet of virtual devices by
// cloning the packets and rewriting the source address.
//
// The rewrite is sound end to end: the tag option bytes (call-stack
// context) are address-independent, transport checksums deliberately
// exclude the IPv4 pseudo-header (see internal/transport), and flow
// identity is the 5-tuple — so each virtual device carries its own
// distinct flows through enforcement, conntrack, and the flow cache,
// exactly as a real per-device socket would.
type DevicePool struct {
	prefix netip.Prefix
	base   uint32 // first virtual device address, host byte order
	n      int
	ctx    *devctx.Source
}

// poolHostOffset skips the subnet address and the conventional .1 (the
// gateway / template device slot) when numbering virtual devices.
const poolHostOffset = 2

// NewDevicePool numbers n virtual devices inside an IPv4 prefix,
// starting at the prefix's third address.
func NewDevicePool(prefix netip.Prefix, n int) (*DevicePool, error) {
	if !prefix.Addr().Is4() {
		return nil, fmt.Errorf("netsim: device pool wants an IPv4 prefix, got %v", prefix)
	}
	if n <= 0 {
		return nil, fmt.Errorf("netsim: device pool size %d", n)
	}
	prefix = prefix.Masked()
	hostBits := 32 - prefix.Bits()
	capacity := 0
	if hostBits > 0 && hostBits < 31 {
		capacity = (1 << hostBits) - poolHostOffset
	}
	if n > capacity {
		return nil, fmt.Errorf("netsim: %d devices exceed %v capacity %d", n, prefix, capacity)
	}
	a4 := prefix.Addr().As4()
	return &DevicePool{
		prefix: prefix,
		base:   binary.BigEndian.Uint32(a4[:]) + poolHostOffset,
		n:      n,
	}, nil
}

// Len returns the virtual device count.
func (p *DevicePool) Len() int { return p.n }

// Prefix returns the pool's subnet.
func (p *DevicePool) Prefix() netip.Prefix { return p.prefix }

// Addr returns virtual device i's address. i must be in [0, Len).
func (p *DevicePool) Addr(i int) netip.Addr {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("netsim: device %d outside pool of %d", i, p.n))
	}
	var a4 [4]byte
	binary.BigEndian.PutUint32(a4[:], p.base+uint32(i))
	return netip.AddrFrom4(a4)
}

// BindContext connects the pool to a gateway-side device-context source:
// SetContext/SetNetwork/ObserveLocation then provision the virtual devices
// the same way a fleet of real agents would. A nil source unbinds.
func (p *DevicePool) BindContext(src *devctx.Source) { p.ctx = src }

// SetContext provisions virtual device i's whole context (enrollment or an
// MDM sync). No-op while unbound.
func (p *DevicePool) SetContext(i int, ctx policy.DeviceContext) {
	if p.ctx != nil {
		p.ctx.Provision(p.Addr(i), ctx)
	}
}

// SetNetwork records virtual device i's network trust class.
func (p *DevicePool) SetNetwork(i int, class policy.NetworkClass) {
	if p.ctx != nil {
		p.ctx.SetNetwork(p.Addr(i), class)
	}
}

// ObserveLocation records a location fix for virtual device i; the source
// derives apparent travel velocity from successive fixes.
func (p *DevicePool) ObserveLocation(i int, lat, lon float64) {
	if p.ctx != nil {
		p.ctx.ObserveLocation(p.Addr(i), lat, lon)
	}
}

// Rewrite clones a template device's egress burst for virtual device i:
// deep copies (tag options and payload included) with the source address
// rewritten. The template burst is never mutated and may be reused for
// every device in the pool.
func (p *DevicePool) Rewrite(i int, template []*ipv4.Packet) []*ipv4.Packet {
	addr := p.Addr(i)
	out := make([]*ipv4.Packet, len(template))
	for j, pkt := range template {
		c := pkt.Clone()
		c.Header.Src = addr
		out[j] = c
	}
	return out
}
