// Package netsim simulates the enterprise network testbed of the paper's
// evaluation (§VI-A, §VI-D): the emulator's NIC modes (QEMU SLIRP vs TAP),
// the gateway host whose iptables rules divert BYOD traffic into the
// user-space Policy Enforcer and Packet Sanitizer, local and external HTTP
// servers, RFC 7126 border filtering, packet capture for the analysis
// pipeline, and a virtual clock with a calibrated latency model.
package netsim

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/httpsim"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/transport"
)

// NICMode is the emulator's network interface mode.
type NICMode int

// NIC modes.
const (
	// ModeSLIRP is QEMU user-mode networking (the SDK default).
	ModeSLIRP NICMode = iota + 1
	// ModeTAP is the virtual TAP interface the paper's testbed uses.
	ModeTAP
)

// String names the mode.
func (m NICMode) String() string {
	switch m {
	case ModeSLIRP:
		return "slirp"
	case ModeTAP:
		return "tap"
	default:
		return fmt.Sprintf("nic(%d)", int(m))
	}
}

// DropStage identifies where in the path a packet died.
type DropStage int

// Drop stages.
const (
	// StageNone means the packet was delivered.
	StageNone DropStage = iota
	// StageGateway is a Policy Enforcer (or netfilter) drop.
	StageGateway
	// StageBorder is an RFC 7126 drop at the upstream router.
	StageBorder
	// StageNoRoute is an unknown destination.
	StageNoRoute
	// StageFault is a loss injected by the installed FaultPlan (the wire
	// ate the packet before the gateway ever saw it).
	StageFault
)

// String names the stage.
func (s DropStage) String() string {
	switch s {
	case StageNone:
		return "delivered"
	case StageGateway:
		return "gateway"
	case StageBorder:
		return "border-router"
	case StageNoRoute:
		return "no-route"
	case StageFault:
		return "wire-fault"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Server is a network endpoint handling HTTP requests (over TCP segments
// or legacy plain payloads) and/or UDP datagrams.
type Server struct {
	// Addr is the server's IPv4 address.
	Addr netip.Addr
	// Name is the DNS name(s) it serves, for reporting.
	Name string
	// Handler produces HTTP responses.
	Handler httpsim.Handler
	// UDPHandler answers UDP datagrams (e.g. dns.ZoneHandler serving a
	// zone); the returned bytes become Delivery.Datagram (nil = no reply).
	UDPHandler func(payload []byte) []byte
	// Internal servers sit inside the corporate perimeter: traffic to them
	// passes the gateway but not the RFC 7126 border router.
	Internal bool

	mu       sync.Mutex
	requests uint64
	rxBytes  uint64
}

// Requests returns the number of requests the server handled.
func (s *Server) Requests() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// RxBytes returns the total request-body bytes received.
func (s *Server) RxBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rxBytes
}

// CapturePoint identifies where a capture was taken.
type CapturePoint int

// Capture points, mirroring where the paper inspects traffic.
const (
	// CaptureDeviceEgress sees packets as they leave the device (tagged).
	CaptureDeviceEgress CapturePoint = iota + 1
	// CapturePostGateway sees packets after enforcement + sanitizing.
	CapturePostGateway
)

// Capture is an append-only packet log (pcap stand-in).
type Capture struct {
	mu   sync.Mutex
	pkts []*ipv4.Packet
}

// Append clones and stores a packet.
func (c *Capture) Append(pkt *ipv4.Packet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pkts = append(c.pkts, pkt.Clone())
}

// Packets returns the captured packets (shared slice of clones; callers
// must not mutate).
func (c *Capture) Packets() []*ipv4.Packet {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*ipv4.Packet(nil), c.pkts...)
}

// Len returns the number of captured packets.
func (c *Capture) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pkts)
}

// Reset clears the capture.
func (c *Capture) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pkts = nil
}

// Network is the assembled testbed.
type Network struct {
	Clock *Clock
	Model LatencyModel
	// NIC selects the emulator interface mode.
	NIC NICMode
	// Gateway is the perimeter appliance; nil routes straight to servers.
	// When subnet routes are installed (AddGatewayRoute) it becomes the
	// default for sources no route covers — the N=1 topology is just the
	// zero-route special case of the fleet.
	Gateway *Gateway
	// BorderFilterEnabled applies RFC 7126 at the upstream router for
	// non-internal destinations.
	BorderFilterEnabled bool

	// gwRoutes, when non-nil, maps device source subnets to their owning
	// gateways: the fleet topology, where each enforcement point fronts
	// one slice of the device population. One atomic pointer load per
	// delivery when no routes are installed.
	gwRoutes atomic.Pointer[[]gatewayRoute]

	// faults, when non-nil, injects wire faults on the device→gateway
	// path. One atomic pointer load per delivery when disarmed — the
	// fault-free fast path is otherwise untouched.
	faults atomic.Pointer[Faults]
	// captureOff disables the packet-capture logs: soak runs push millions
	// of packets and must stay memory-bounded, which an append-only pcap
	// defeats.
	captureOff atomic.Bool

	mu       sync.Mutex
	servers  map[netip.Addr]*Server
	captures map[CapturePoint]*Capture

	// respSeq is the server-side TCP sequence position per connection:
	// what the next synthesized response segment starts at. Keyed on the
	// forward 5-tuple; bounded like the conntrack's open table.
	respMu  sync.Mutex
	respSeq map[respKey]uint32
}

// NewNetwork builds a testbed with the given NIC mode and latency model.
func NewNetwork(nic NICMode, model LatencyModel) *Network {
	return &Network{
		Clock:               NewClock(),
		Model:               model,
		NIC:                 nic,
		BorderFilterEnabled: true,
		servers:             make(map[netip.Addr]*Server),
		captures: map[CapturePoint]*Capture{
			CaptureDeviceEgress: {},
			CapturePostGateway:  {},
		},
		respSeq: make(map[respKey]uint32),
	}
}

// gatewayRoute binds a device source subnet to its enforcement point.
type gatewayRoute struct {
	prefix netip.Prefix
	gw     *Gateway
}

// AddGatewayRoute routes traffic whose source lies in prefix through gw —
// the fleet's subnet topology. Routes are longest-prefix matched; sources
// outside every route fall back to the legacy Gateway field. Installing a
// route is copy-on-write, safe against concurrent deliveries.
func (n *Network) AddGatewayRoute(prefix netip.Prefix, gw *Gateway) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var routes []gatewayRoute
	if rp := n.gwRoutes.Load(); rp != nil {
		routes = append(routes, *rp...)
	}
	routes = append(routes, gatewayRoute{prefix: prefix.Masked(), gw: gw})
	n.gwRoutes.Store(&routes)
}

// GatewayFor resolves the gateway that fronts a device source address:
// the longest matching installed route, else the legacy Gateway field.
func (n *Network) GatewayFor(src netip.Addr) *Gateway {
	if rp := n.gwRoutes.Load(); rp != nil {
		routes := *rp
		best := -1
		for i := range routes {
			if routes[i].prefix.Contains(src) && (best < 0 || routes[i].prefix.Bits() > routes[best].prefix.Bits()) {
				best = i
			}
		}
		if best >= 0 {
			return routes[best].gw
		}
	}
	return n.Gateway
}

// AddServer registers an endpoint.
func (n *Network) AddServer(s *Server) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.servers[s.Addr] = s
}

// ServerAt returns the server at an address.
func (n *Network) ServerAt(addr netip.Addr) (*Server, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.servers[addr]
	return s, ok
}

// CaptureAt returns the capture log for a point.
func (n *Network) CaptureAt(p CapturePoint) *Capture {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.captures[p]
}

// SetCapture enables or disables the packet-capture logs. Long-running
// soak harnesses disable them: each capture clones every packet, which is
// unbounded memory over millions of deliveries.
func (n *Network) SetCapture(enabled bool) {
	n.captureOff.Store(!enabled)
}

// InstallFaults arms a fault plan on the device→gateway wire and returns
// the armed instance (for its Stats). Replaces any previous plan.
func (n *Network) InstallFaults(plan FaultPlan) *Faults {
	f := NewFaults(plan)
	n.faults.Store(f)
	return f
}

// ClearFaults disarms fault injection (the pre-fault fast path returns to
// a single nil pointer load).
func (n *Network) ClearFaults() {
	n.faults.Store(nil)
}

// FaultStats snapshots the armed fault plan's counters (zero when none).
func (n *Network) FaultStats() FaultStats {
	if f := n.faults.Load(); f != nil {
		return f.Stats()
	}
	return FaultStats{}
}

// ErrNoRoute reports delivery to an unregistered address.
var ErrNoRoute = errors.New("netsim: no route to host")

// Delivery is the fate of one packet pushed through the network.
type Delivery struct {
	// Delivered reports whether the packet reached its server.
	Delivered bool
	// Stage is where the packet died when not delivered.
	Stage DropStage
	// Enforcement is the Policy Enforcer's result when that stage ran.
	Enforcement *enforcer.Result
	// Response is the server's reply (nil when dropped or non-HTTP).
	Response *httpsim.Response
	// Datagram is the server's UDP reply (a DNS answer, typically); nil
	// when the packet carried no datagram or the server has no UDPHandler.
	Datagram []byte
	// ResponseDropped reports that the server produced a response but the
	// gateway's response-direction verdict state dropped it on the way
	// back in (sequence-continuity violation); Response is nil then.
	ResponseDropped bool
	// Latency is the virtual one-way + response time charged.
	Latency time.Duration
}

// Deliver pushes one device-egress packet through NIC → gateway → border →
// server, charging virtual time for each stage, and returns what happened.
func (n *Network) Deliver(pkt *ipv4.Packet) Delivery {
	return n.deliver(pkt, false)
}

// deliver implements Deliver; skipGateway models paths (like the mobile
// carrier) that never touch the corporate perimeter.
func (n *Network) deliver(pkt *ipv4.Packet, skipGateway bool) Delivery {
	if f := n.faults.Load(); f != nil && !skipGateway {
		return n.deliverFaulty(f, pkt)
	}
	return n.deliverCore(pkt, skipGateway)
}

// deliverFaulty is the armed-plan scalar path: drop, delay, corruption,
// truncation, and duplication apply per packet (reordering needs a burst —
// see DeliverBatch). A duplicate rides the wire in the same damaged form;
// its own delivery outcome is discarded, but its gateway and server state
// transitions happen for real — exactly the repeated-control-segment
// surface the conntrack idempotency guarantees cover.
func (n *Network) deliverFaulty(f *Faults, pkt *ipv4.Packet) Delivery {
	if f.rollDrop() {
		n.captureAt(CaptureDeviceEgress, pkt)
		return Delivery{Stage: StageFault}
	}
	if d := f.rollDelay(); d > 0 {
		n.Clock.Advance(d)
	}
	cur := pkt
	if m := f.mutate(pkt); m != nil {
		cur = m
	}
	del := n.deliverCore(cur, false)
	if f.rollDup() {
		n.deliverCore(cur, false)
	}
	return del
}

// deliverCore is the fault-free delivery pipeline.
func (n *Network) deliverCore(pkt *ipv4.Packet, skipGateway bool) Delivery {
	start := n.Clock.Now()
	n.captureAt(CaptureDeviceEgress, pkt)

	// Emulator NIC cost.
	switch n.NIC {
	case ModeSLIRP:
		n.Clock.Advance(n.Model.SlirpPerPacket)
	default:
		n.Clock.Advance(n.Model.TapPerPacket)
	}

	cur := pkt
	var d Delivery
	gw := n.GatewayFor(pkt.Header.Src)
	if !skipGateway && gw != nil && gw.Active() {
		// Kernel→user-space→kernel hop for the queue reader.
		n.Clock.Advance(n.Model.NFQueueHopPerPacket)
		if gw.HasEnforcer() {
			n.Clock.Advance(n.Model.EnforcerPerPacket)
		}
		if gw.HasSanitizer() {
			n.Clock.Advance(n.Model.SanitizerPerPacket)
		}
		out, res, err := gw.Process(cur)
		d.Enforcement = res
		if err != nil || out == nil {
			d.Stage = StageGateway
			d.Latency = n.Clock.Now() - start
			return d
		}
		cur = out
	}
	closed := n.serveOne(cur, &d)
	// The response traverses the gateway's queue on the way back in
	// (conntrack reinjection into the same NFQUEUE reader), where the
	// response half of the connection's verdict state is enforced.
	if d.Delivered && !skipGateway && gw != nil && gw.Active() {
		n.Clock.Advance(n.Model.NFQueueHopPerPacket)
		n.checkResponse(gw, pkt, &d)
		if closed {
			// Legacy-payload fallback only: a plain-HTTP connection
			// announced its end via "Connection: close", so tear the
			// flow's cached verdict down (the sanitized copy lost its
			// tag, so the teardown keys on the original device-egress
			// packet). Transport flows never reach here — the gateway's
			// conntrack already handled their FIN/RST.
			gw.CloseFlow(pkt)
		}
	}
	d.Latency = n.Clock.Now() - start
	return d
}

// serveOne is the post-gateway delivery tail shared by the scalar and
// batch paths: post-gateway capture, route lookup, RFC 7126 border
// filtering, wire/server virtual-time charges, and the application
// response. Packets carrying a transport header are served through it —
// HTTP requests out of TCP data segments (control segments deliver with
// no response), UDP datagrams through the server's UDPHandler. Flow
// lifecycle for those is the gateway conntrack's job, so connClosed is
// always false for them. Legacy plain payloads keep the pre-transport
// behaviour: the HTTP request is parsed straight out of the IPv4 payload
// and connClosed reports its "Connection: close" — the fallback signal
// the network still uses to tear down legacy flows.
func (n *Network) serveOne(cur *ipv4.Packet, d *Delivery) (connClosed bool) {
	n.captureAt(CapturePostGateway, cur)

	n.mu.Lock()
	srv, ok := n.servers[cur.Header.Dst]
	n.mu.Unlock()
	if !ok {
		d.Stage = StageNoRoute
		return false
	}

	// RFC 7126 filtering on the public path.
	if n.BorderFilterEnabled && !srv.Internal {
		if ipv4.BorderFilter(cur) == ipv4.BorderDrop {
			d.Stage = StageBorder
			return false
		}
	}

	n.Clock.Advance(n.Model.WireRTT / 2)
	served := false
	if info, ok := transport.PeekPacket(cur); ok {
		switch info.Proto {
		case ipv4.ProtoTCP:
			// Full validation (checksum included) before trusting the
			// payload; a segment that fails it falls back to the legacy
			// parse below.
			if seg, err := transport.ParseTCP(cur.Payload); err == nil {
				served = true
				if len(seg.Payload) > 0 {
					if req, err := httpsim.ParseRequest(seg.Payload); err == nil {
						n.serveRequest(srv, req, d)
					}
				}
				// SYN/FIN/RST carry no request: delivered, nothing served.
			}
		case ipv4.ProtoUDP:
			if dg, err := transport.ParseUDP(cur.Payload); err == nil {
				served = true
				n.chargeServer(srv, len(dg.Payload))
				if srv.UDPHandler != nil {
					d.Datagram = srv.UDPHandler(dg.Payload)
				}
			}
		}
	}
	if !served {
		// Legacy plain payload: HTTP straight in the IPv4 payload, flow
		// teardown driven by the application-layer close announcement.
		if req, err := httpsim.ParseRequest(cur.Payload); err == nil {
			n.serveRequest(srv, req, d)
			connClosed = !req.KeepAlive
		}
	}
	n.Clock.Advance(n.Model.WireRTT / 2)
	d.Delivered = true
	return connClosed
}

// chargeServer advances server virtual time and counts one request of
// rxBytes received body bytes — shared by the HTTP and UDP serve paths.
func (n *Network) chargeServer(srv *Server, rxBytes int) {
	n.Clock.Advance(n.Model.ServerProcessing)
	srv.mu.Lock()
	srv.requests++
	srv.rxBytes += uint64(rxBytes)
	srv.mu.Unlock()
}

// serveRequest charges server time, counts the request, and produces the
// HTTP response.
func (n *Network) serveRequest(srv *Server, req *httpsim.Request, d *Delivery) {
	n.chargeServer(srv, len(req.Body))
	if srv.Handler != nil {
		d.Response = srv.Handler(req)
	}
}

// DeliverBatch pushes a burst of device-egress packets through the
// network in one gateway drain: the per-packet NIC and queue-hop costs
// are charged for the whole burst up front (the batch crosses into user
// space once), the gateway's per-core worker pool enforces the burst, and
// the survivors are then served in order. Deliveries align with pkts;
// each Latency spans the whole burst window, matching how a batched queue
// reader delays individual packets until its drain completes.
//
// With a fault plan armed, faults apply per packet on the wire view of the
// burst before the gateway drain: drops remove packets (StageFault),
// duplicates insert extra copies, corruption/truncation damage payload
// clones, reorders swap wire neighbours, and delays stretch the burst
// window in virtual time. Deliveries still align one-to-one with pkts —
// a duplicate's extra outcome is discarded, a reordered packet reports
// its own fate wherever it landed on the wire.
func (n *Network) DeliverBatch(pkts []*ipv4.Packet) []Delivery {
	f := n.faults.Load()
	if f == nil || len(pkts) == 0 {
		return n.deliverBatchCore(pkts)
	}
	out := make([]Delivery, len(pkts))
	// Build the wire view: what the gateway-side of the link actually
	// carries. origIdx maps each wire slot back to its input packet (-1
	// for injected duplicates).
	wire := make([]*ipv4.Packet, 0, len(pkts)+len(pkts)/8+1)
	origIdx := make([]int, 0, cap(wire))
	var delay time.Duration
	for i, pkt := range pkts {
		if f.rollDrop() {
			out[i] = Delivery{Stage: StageFault}
			continue
		}
		delay += f.rollDelay()
		cur := pkt
		if m := f.mutate(pkt); m != nil {
			cur = m
		}
		wire = append(wire, cur)
		origIdx = append(origIdx, i)
		if f.rollDup() {
			wire = append(wire, cur)
			origIdx = append(origIdx, -1)
		}
	}
	// Reorder by adjacent swap: each firing exchanges a packet with its
	// wire predecessor — enough to put a FIN ahead of its data segment or
	// a data segment ahead of its SYN, the cases teardown and establishment
	// must tolerate.
	for j := 1; j < len(wire); j++ {
		if f.rollReorder() {
			wire[j-1], wire[j] = wire[j], wire[j-1]
			origIdx[j-1], origIdx[j] = origIdx[j], origIdx[j-1]
		}
	}
	n.Clock.Advance(delay)
	res := n.deliverBatchCore(wire)
	for j, d := range res {
		if origIdx[j] >= 0 {
			out[origIdx[j]] = d
		}
	}
	return out
}

// deliverBatchCore is the fault-free batch pipeline.
func (n *Network) deliverBatchCore(pkts []*ipv4.Packet) []Delivery {
	out := make([]Delivery, len(pkts))
	if len(pkts) == 0 {
		return out
	}
	start := n.Clock.Now()
	for _, pkt := range pkts {
		n.captureAt(CaptureDeviceEgress, pkt)
	}
	perNIC := n.Model.TapPerPacket
	if n.NIC == ModeSLIRP {
		perNIC = n.Model.SlirpPerPacket
	}
	n.Clock.Advance(perNIC * time.Duration(len(pkts)))

	// Partition the burst per owning gateway (subnet routing); the
	// zero-route topology is one group on the legacy Gateway field. Each
	// gateway's queue reader crosses into user space once per burst, then
	// charges its per-packet enforcement/sanitizing costs and drains its
	// slice through its own per-core worker pool.
	outcomes := make([]BatchOutcome, len(pkts))
	groups := n.partitionByGateway(pkts)
	activeGateways := 0
	for gi := range groups {
		g := &groups[gi]
		if g.gw == nil || !g.gw.Active() {
			for _, i := range g.idx {
				outcomes[i] = BatchOutcome{Out: pkts[i]}
			}
			continue
		}
		activeGateways++
		n.Clock.Advance(n.Model.NFQueueHopPerPacket)
		per := time.Duration(0)
		if g.gw.HasEnforcer() {
			per += n.Model.EnforcerPerPacket
		}
		if g.gw.HasSanitizer() {
			per += n.Model.SanitizerPerPacket
		}
		n.Clock.Advance(per * time.Duration(len(g.pkts)))
		res, _ := g.gw.ProcessBatch(g.pkts)
		for j, i := range g.idx {
			outcomes[i] = res[j]
		}
	}

	for i := range pkts {
		o := outcomes[i]
		out[i].Enforcement = o.Result
		if o.Out == nil {
			out[i].Stage = StageGateway
			continue
		}
		if n.serveOne(o.Out, &out[i]) {
			// Legacy-payload teardown, as on the scalar path, keyed on the
			// still-tagged device-egress packet at its own gateway.
			if gw := n.GatewayFor(pkts[i].Header.Src); gw != nil && gw.Active() {
				gw.CloseFlow(pkts[i])
			}
		}
		if out[i].Delivered && out[i].Response != nil {
			if gw := n.GatewayFor(pkts[i].Header.Src); gw != nil && gw.Active() {
				n.checkResponse(gw, pkts[i], &out[i])
			}
		}
	}
	// The responses traverse each involved gateway's queue on the way back
	// in — one reinjection hop per gateway touched by the burst.
	n.Clock.Advance(n.Model.NFQueueHopPerPacket * time.Duration(activeGateways))
	total := n.Clock.Now() - start
	for i := range out {
		out[i].Latency = total
	}
	return out
}

// gwGroup is one gateway's slice of a burst: the packets it fronts and
// their indices in the original order.
type gwGroup struct {
	gw   *Gateway
	idx  []int
	pkts []*ipv4.Packet
}

// partitionByGateway splits a burst by owning gateway, preserving each
// packet's burst index so outcomes land back in order. Without installed
// routes the whole burst is one group on the legacy Gateway field, with
// the input slice reused as-is.
func (n *Network) partitionByGateway(pkts []*ipv4.Packet) []gwGroup {
	if n.gwRoutes.Load() == nil {
		idx := make([]int, len(pkts))
		for i := range idx {
			idx[i] = i
		}
		return []gwGroup{{gw: n.Gateway, idx: idx, pkts: pkts}}
	}
	var groups []gwGroup
	last := -1 // bursts are usually runs of same-subnet packets
	for i, pkt := range pkts {
		gw := n.GatewayFor(pkt.Header.Src)
		at := -1
		if last >= 0 && groups[last].gw == gw {
			at = last
		} else {
			for gi := range groups {
				if groups[gi].gw == gw {
					at = gi
					break
				}
			}
			if at < 0 {
				groups = append(groups, gwGroup{gw: gw})
				at = len(groups) - 1
			}
		}
		groups[at].idx = append(groups[at].idx, i)
		groups[at].pkts = append(groups[at].pkts, pkt)
		last = at
	}
	return groups
}

// respKey identifies a connection's server-side sequence state: the
// forward 5-tuple as the gateway observed it.
type respKey struct {
	src, dst         netip.Addr
	srcPort, dstPort uint16
}

// maxRespTracked bounds the response-sequence map, matching the
// conntrack's open-table bound; at the cap an arbitrary entry is
// evicted (the connection's next response is then re-adopted by the
// gateway's continuity check, which is the self-healing direction).
const maxRespTracked = 65536

// respISN derives a deterministic initial sequence number for a
// connection from its forward key — stable across the simulation run so
// retransmissions of the first response carry the same number.
func respISN(k respKey) uint32 {
	s4 := k.src.As4()
	d4 := k.dst.As4()
	h := uint64(0x243f6a8885a308d3)
	for _, b := range s4 {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	for _, b := range d4 {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	h = (h ^ uint64(k.srcPort)<<16 ^ uint64(k.dstPort)) * 0x100000001b3
	return uint32(h>>32) ^ uint32(h)
}

// checkResponse synthesizes the server's reply as a wire segment on the
// return path and runs it through the owning gateway's response-direction
// verdict state. Only transport-era TCP requests have a modelled return
// path; legacy plain payloads and UDP pass as before. A response the
// gateway refuses (sequence-continuity violation — in practice only when
// an injection is simulated) is removed from the delivery.
func (n *Network) checkResponse(gw *Gateway, fwd *ipv4.Packet, d *Delivery) {
	if d.Response == nil {
		return
	}
	info, ok := transport.PeekPacket(fwd)
	if !ok || info.Proto != ipv4.ProtoTCP {
		return
	}
	resp := n.responsePacket(fwd, info, d.Response.Body)
	if !gw.ProcessResponse(resp) {
		d.ResponseDropped = true
		d.Response = nil
	}
}

// responsePacket builds the server→device segment carrying a response
// body, advancing the connection's server-side sequence position.
func (n *Network) responsePacket(fwd *ipv4.Packet, info transport.Info, body []byte) *ipv4.Packet {
	k := respKey{
		src: fwd.Header.Src, dst: fwd.Header.Dst,
		srcPort: info.SrcPort, dstPort: info.DstPort,
	}
	n.respMu.Lock()
	seq, tracked := n.respSeq[k]
	if !tracked {
		if len(n.respSeq) >= maxRespTracked {
			for victim := range n.respSeq {
				delete(n.respSeq, victim)
				break
			}
		}
		seq = respISN(k)
	}
	n.respSeq[k] = seq + uint32(len(body))
	n.respMu.Unlock()

	seg := transport.TCPSegment{
		SrcPort: info.DstPort,
		DstPort: info.SrcPort,
		Seq:     seq,
		Flags:   transport.FlagPSH | transport.FlagACK,
		Payload: body,
	}
	return &ipv4.Packet{
		Header: ipv4.Header{
			TTL:      64,
			Protocol: ipv4.ProtoTCP,
			Src:      fwd.Header.Dst,
			Dst:      fwd.Header.Src,
		},
		Payload: seg.Marshal(),
	}
}

func (n *Network) captureAt(p CapturePoint, pkt *ipv4.Packet) {
	if n.captureOff.Load() {
		return
	}
	n.mu.Lock()
	c := n.captures[p]
	n.mu.Unlock()
	if c != nil {
		c.Append(pkt)
	}
}
