package netsim

import (
	"net/netip"
	"testing"
	"time"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/httpsim"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/sanitizer"
	"borderpatrol/internal/tag"
)

func serverAddr() netip.Addr { return netip.MustParseAddr("93.184.216.34") }

func plainPacket(payload []byte) *ipv4.Packet {
	return &ipv4.Packet{
		Header: ipv4.Header{
			TTL:      64,
			Protocol: ipv4.ProtoTCP,
			Src:      netip.MustParseAddr("10.0.0.5"),
			Dst:      serverAddr(),
		},
		Payload: payload,
	}
}

func getRequest() []byte {
	req := &httpsim.Request{Method: "GET", Path: "/", Host: "example"}
	return req.Marshal()
}

func newStaticNetwork(nic NICMode, gw *Gateway) *Network {
	n := NewNetwork(nic, DefaultLatencyModel())
	n.Gateway = gw
	n.AddServer(&Server{Addr: serverAddr(), Name: "example", Handler: httpsim.StaticHandler(httpsim.StaticPage())})
	return n
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(5 * time.Millisecond)
	c.Advance(-time.Second) // ignored
	if got := c.Now(); got != 5*time.Millisecond {
		t.Fatalf("Now = %v", got)
	}
}

func TestDeliverPlainPacket(t *testing.T) {
	n := newStaticNetwork(ModeTAP, nil)
	d := n.Deliver(plainPacket(getRequest()))
	if !d.Delivered {
		t.Fatalf("not delivered: %+v", d)
	}
	if d.Response == nil || d.Response.Status != 200 {
		t.Fatalf("response = %+v", d.Response)
	}
	if len(d.Response.Body) != httpsim.StaticPageSize {
		t.Fatalf("body = %d bytes", len(d.Response.Body))
	}
	if d.Latency <= 0 {
		t.Fatal("no latency charged")
	}
	srv, _ := n.ServerAt(serverAddr())
	if srv.Requests() != 1 {
		t.Fatalf("server requests = %d", srv.Requests())
	}
}

func TestSlirpSlowerThanTap(t *testing.T) {
	slirp := newStaticNetwork(ModeSLIRP, nil)
	tap := newStaticNetwork(ModeTAP, nil)
	ds := slirp.Deliver(plainPacket(getRequest()))
	dt := tap.Deliver(plainPacket(getRequest()))
	if ds.Latency <= dt.Latency {
		t.Fatalf("slirp %v must be slower than tap %v", ds.Latency, dt.Latency)
	}
}

func TestNoRoute(t *testing.T) {
	n := NewNetwork(ModeTAP, DefaultLatencyModel())
	d := n.Deliver(plainPacket(getRequest()))
	if d.Delivered || d.Stage != StageNoRoute {
		t.Fatalf("delivery = %+v", d)
	}
}

func TestBorderDropsOptionedPacketWithoutSanitizer(t *testing.T) {
	n := newStaticNetwork(ModeTAP, nil)
	pkt := plainPacket(getRequest())
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: []byte{1, 2}})
	d := n.Deliver(pkt)
	if d.Delivered || d.Stage != StageBorder {
		t.Fatalf("optioned packet: %+v", d)
	}
	// Internal servers bypass border filtering.
	internal := &Server{Addr: netip.MustParseAddr("10.10.10.10"), Internal: true, Handler: httpsim.StaticHandler(nil)}
	n.AddServer(internal)
	pkt2 := plainPacket(getRequest())
	pkt2.Header.Dst = internal.Addr
	pkt2.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: []byte{1, 2}})
	if d := n.Deliver(pkt2); !d.Delivered {
		t.Fatalf("internal optioned packet dropped: %+v", d)
	}
}

func buildEnforcerAndDB(t *testing.T) (*enforcer.Enforcer, *dex.APK, *analyzer.Database) {
	t.Helper()
	apk := &dex.APK{
		PackageName: "com.corp.app",
		VersionCode: 1,
		Dexes: []*dex.File{{Classes: []dex.ClassDef{
			{
				Package: "com/corp/app",
				Name:    "Main",
				Methods: []dex.MethodDef{
					{Name: "sync", Proto: "()V", File: "M.java", StartLine: 1, EndLine: 10},
				},
			},
			{
				Package: "com/flurry/sdk",
				Name:    "Agent",
				Methods: []dex.MethodDef{
					{Name: "beacon", Proto: "()V", File: "A.java", StartLine: 1, EndLine: 10},
				},
			},
		}}},
	}
	db := analyzer.NewDatabase()
	if err := db.Add(apk); err != nil {
		t.Fatal(err)
	}
	eng, err := policy.NewEngine([]policy.Rule{
		{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"},
	}, policy.VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	return enforcer.New(enforcer.Config{}, db, eng), apk, db
}

func taggedPacket(t *testing.T, apk *dex.APK, db *analyzer.Database, method string) *ipv4.Packet {
	t.Helper()
	entry, _ := db.LookupTruncated(apk.Truncated())
	var idx uint32
	found := false
	for i, raw := range entry.Signatures {
		sig, err := dex.ParseSignature(raw)
		if err != nil {
			t.Fatal(err)
		}
		if sig.Name == method {
			idx = uint32(i)
			found = true
		}
	}
	if !found {
		t.Fatalf("method %s not found", method)
	}
	tg := tag.Tag{AppHash: apk.Truncated(), Indexes: []uint32{idx}}
	data, err := tg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	pkt := plainPacket(getRequest())
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: data})
	return pkt
}

func TestFullGatewayPipeline(t *testing.T) {
	enf, apk, db := buildEnforcerAndDB(t)
	gw := NewGateway(GatewayConfig{Enforcer: enf, Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)

	// Benign tagged packet: enforced, sanitized, delivered past the border.
	d := n.Deliver(taggedPacket(t, apk, db, "sync"))
	if !d.Delivered {
		t.Fatalf("benign packet dropped: %+v", d)
	}
	if d.Enforcement == nil || d.Enforcement.Verdict != policy.VerdictAllow {
		t.Fatalf("enforcement = %+v", d.Enforcement)
	}
	// Post-gateway capture must hold a cleansed packet.
	post := n.CaptureAt(CapturePostGateway).Packets()
	if len(post) != 1 || post[0].Header.HasOptions() {
		t.Fatalf("post-gateway capture: %d packets, options=%v", len(post), post[0].Header.HasOptions())
	}
	// Device-egress capture preserves the tag for analysis.
	pre := n.CaptureAt(CaptureDeviceEgress).Packets()
	if len(pre) != 1 {
		t.Fatalf("egress capture: %d", len(pre))
	}
	if _, ok := pre[0].Header.FindOption(ipv4.OptSecurity); !ok {
		t.Fatal("egress capture lost the tag")
	}

	// Tracker-tagged packet: dropped at the gateway.
	d = n.Deliver(taggedPacket(t, apk, db, "beacon"))
	if d.Delivered || d.Stage != StageGateway {
		t.Fatalf("tracker packet: %+v", d)
	}
	if d.Enforcement == nil || d.Enforcement.Cause != enforcer.DropPolicy {
		t.Fatalf("enforcement = %+v", d.Enforcement)
	}

	// Untagged packet: dropped at the gateway (default posture).
	d = n.Deliver(plainPacket(getRequest()))
	if d.Delivered || d.Stage != StageGateway {
		t.Fatalf("untagged packet: %+v", d)
	}
}

func TestGatewayPassthroughMode(t *testing.T) {
	gw := NewGateway(GatewayConfig{Passthrough: true})
	if !gw.Active() || gw.HasEnforcer() || gw.HasSanitizer() {
		t.Fatal("passthrough gateway misconfigured")
	}
	n := newStaticNetwork(ModeTAP, gw)
	d := n.Deliver(plainPacket(getRequest()))
	if !d.Delivered {
		t.Fatalf("passthrough dropped: %+v", d)
	}
	// Passthrough adds NFQUEUE cost vs no gateway.
	n2 := newStaticNetwork(ModeTAP, nil)
	d2 := n2.Deliver(plainPacket(getRequest()))
	if d.Latency <= d2.Latency {
		t.Fatalf("nfqueue %v must be slower than direct %v", d.Latency, d2.Latency)
	}
}

func TestSanitizerOnlyGateway(t *testing.T) {
	gw := NewGateway(GatewayConfig{Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)
	pkt := plainPacket(getRequest())
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: []byte{5, 5}})
	d := n.Deliver(pkt)
	if !d.Delivered {
		t.Fatalf("sanitized packet dropped: %+v", d)
	}
	if gw.Sanitizer().Stats().Cleansed != 1 {
		t.Fatal("sanitizer did not cleanse")
	}
}

func TestCaptureReset(t *testing.T) {
	n := newStaticNetwork(ModeTAP, nil)
	n.Deliver(plainPacket(getRequest()))
	c := n.CaptureAt(CaptureDeviceEgress)
	if c.Len() != 1 {
		t.Fatalf("capture len = %d", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestStageAndModeStrings(t *testing.T) {
	if ModeSLIRP.String() != "slirp" || ModeTAP.String() != "tap" {
		t.Error("mode names")
	}
	for s, want := range map[DropStage]string{
		StageNone: "delivered", StageGateway: "gateway", StageBorder: "border-router", StageNoRoute: "no-route",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestServerByteAccounting(t *testing.T) {
	n := newStaticNetwork(ModeTAP, nil)
	req := &httpsim.Request{Method: "PUT", Path: "/up", Body: make([]byte, 1234)}
	d := n.Deliver(plainPacket(req.Marshal()))
	if !d.Delivered {
		t.Fatal("not delivered")
	}
	srv, _ := n.ServerAt(serverAddr())
	if srv.RxBytes() != 1234 {
		t.Fatalf("rx bytes = %d", srv.RxBytes())
	}
}
