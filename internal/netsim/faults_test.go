package netsim

import (
	"bytes"
	"testing"
	"time"

	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/sanitizer"
)

// TestFaultDeterminism: the same seed over the same roll sequence yields
// the same faults — a failing soak run replays exactly.
func TestFaultDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 42, Drop: 0.3, Corrupt: 0.3, Delay: 0.3, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond}
	a, b := NewFaults(plan), NewFaults(plan)
	for i := 0; i < 10_000; i++ {
		if a.rollDrop() != b.rollDrop() || a.rollDelay() != b.rollDelay() {
			t.Fatalf("sequences diverged at roll %d", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if NewFaults(FaultPlan{Seed: 43, Drop: 0.3}).next() == NewFaults(FaultPlan{Seed: 42, Drop: 0.3}).next() {
		t.Fatal("different seeds produced the same first draw")
	}
}

// TestFaultRates: observed fault frequency tracks the configured
// probability (law of large numbers, generous tolerance).
func TestFaultRates(t *testing.T) {
	f := NewFaults(FaultPlan{Seed: 7, Drop: 0.25})
	const n = 200_000
	hits := 0
	for i := 0; i < n; i++ {
		if f.rollDrop() {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.24 || got > 0.26 {
		t.Fatalf("drop rate = %.4f, want ~0.25", got)
	}
}

// TestFaultZeroProbabilityFree: a zero threshold never fires and never
// burns a PRNG step — the disarmed categories cost nothing.
func TestFaultZeroProbabilityFree(t *testing.T) {
	f := NewFaults(FaultPlan{Seed: 9})
	before := f.state.Load()
	for i := 0; i < 100; i++ {
		if f.rollDrop() || f.rollDup() || f.rollReorder() || f.rollDelay() != 0 {
			t.Fatal("zero plan fired a fault")
		}
		if f.mutate(&ipv4.Packet{Payload: []byte("abc")}) != nil {
			t.Fatal("zero plan mutated a packet")
		}
	}
	if f.state.Load() != before {
		t.Fatal("zero plan advanced the PRNG")
	}
}

// TestFaultMutatePreservesHeader: corruption and truncation damage only a
// payload clone — the original packet and the IPv4 options carrying the
// BorderPatrol tag are never touched. This is the fail-safe property's
// foundation: no wire fault can rewrite a tag into one that resolves to an
// allowed context.
func TestFaultMutatePreservesHeader(t *testing.T) {
	f := NewFaults(FaultPlan{Seed: 3, Corrupt: 1, Truncate: 1})
	pkt := &ipv4.Packet{Payload: []byte("GET / HTTP/1.1\r\n\r\n")}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: []byte{1, 2, 3, 4}})
	origPayload := append([]byte(nil), pkt.Payload...)

	m := f.mutate(pkt)
	if m == nil {
		t.Fatal("p=1 mutation did not fire")
	}
	if !bytes.Equal(pkt.Payload, origPayload) {
		t.Fatal("mutation modified the original packet")
	}
	opt, ok := m.Header.FindOption(ipv4.OptSecurity)
	if !ok || !bytes.Equal(opt.Data, []byte{1, 2, 3, 4}) {
		t.Fatalf("mutation touched the tag option: %+v", m.Header.Options)
	}
	if bytes.Equal(m.Payload, origPayload) {
		t.Fatal("mutation left the clone's payload intact")
	}
}

// TestFaultDropScalar: with Drop=1 armed every scalar delivery dies as a
// wire fault before the gateway; ClearFaults restores perfect delivery.
func TestFaultDropScalar(t *testing.T) {
	gw := NewGateway(GatewayConfig{Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)
	n.InstallFaults(FaultPlan{Seed: 1, Drop: 1})

	pkt := plainPacket(getRequest())
	for i := 0; i < 3; i++ {
		d := n.Deliver(pkt)
		if d.Delivered || d.Stage != StageFault {
			t.Fatalf("delivery %d survived Drop=1: %+v", i, d)
		}
	}
	if st := n.FaultStats(); st.Drops != 3 {
		t.Fatalf("drops = %d, want 3", st.Drops)
	}
	if st := gw.Netfilter().Stats(); st.Accepted+st.Dropped != 0 {
		t.Fatalf("gateway saw wire-dropped packets: %+v", st)
	}

	n.ClearFaults()
	if d := n.Deliver(pkt); !d.Delivered {
		t.Fatalf("post-clear delivery failed: %+v", d)
	}
	if st := n.FaultStats(); st != (FaultStats{}) {
		t.Fatalf("cleared network still reports fault stats: %+v", st)
	}
}

// TestFaultBatchAlignment: with duplication and reordering armed, the
// returned Deliveries still align one-to-one with the input burst.
func TestFaultBatchAlignment(t *testing.T) {
	gw := NewGateway(GatewayConfig{Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)
	n.InstallFaults(FaultPlan{Seed: 5, Duplicate: 1, Reorder: 0.5})

	srv, _ := n.ServerAt(serverAddr())
	burst := make([]*ipv4.Packet, 16)
	for i := range burst {
		burst[i] = plainPacket(getRequest())
	}
	out := n.DeliverBatch(burst)
	if len(out) != len(burst) {
		t.Fatalf("deliveries = %d, want %d", len(out), len(burst))
	}
	for i, d := range out {
		if !d.Delivered {
			t.Fatalf("burst pkt %d not delivered: %+v", i, d)
		}
	}
	// Every duplicate rode the wire for real: the server answered 2x.
	if got := srv.Requests(); got != uint64(2*len(burst)) {
		t.Fatalf("server requests = %d, want %d (duplicates must reach it)", got, 2*len(burst))
	}
	st := n.FaultStats()
	if st.Duplicates != uint64(len(burst)) || st.Reorders == 0 {
		t.Fatalf("fault stats: %+v", st)
	}
}

// TestFaultDelayChargesVirtualTime: delays stretch the virtual clock, not
// the wall clock.
func TestFaultDelayChargesVirtualTime(t *testing.T) {
	gw := NewGateway(GatewayConfig{Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)
	n.InstallFaults(FaultPlan{Seed: 2, Delay: 1, DelayMin: 10 * time.Millisecond, DelayMax: 10 * time.Millisecond})

	before := n.Clock.Now()
	n.Deliver(plainPacket(getRequest()))
	if got := n.Clock.Now() - before; got < 10*time.Millisecond {
		t.Fatalf("virtual time advanced %v, want >= 10ms", got)
	}
	if st := n.FaultStats(); st.Delays != 1 || st.DelayVirtual != 10*time.Millisecond {
		t.Fatalf("delay stats: %+v", st)
	}
}

// TestFaultCorruptionFailSafe: with every payload corrupted and truncated,
// a flow denied by policy is never delivered — payload damage cannot flip
// a deny into an allow, because verdicts derive from the untouched tag.
func TestFaultCorruptionFailSafe(t *testing.T) {
	enf, apk, db := buildEnforcerAndDB(t)
	gw := NewGateway(GatewayConfig{Enforcer: enf, Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)
	n.InstallFaults(FaultPlan{Seed: 11, Corrupt: 1, Truncate: 1})

	denied := taggedPacket(t, apk, db, "beacon") // com/flurry rule denies it
	denied.Payload = getRequest()
	for i := 0; i < 100; i++ {
		if d := n.Deliver(denied); d.Delivered {
			t.Fatalf("iteration %d: corrupted denied packet was delivered", i)
		}
	}
}

// TestFaultCaptureToggle: SetCapture(false) stops the pcap logs growing
// (the soak's bounded-memory prerequisite); re-enabling resumes capture.
func TestFaultCaptureToggle(t *testing.T) {
	gw := NewGateway(GatewayConfig{Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)
	n.SetCapture(false)
	n.Deliver(plainPacket(getRequest()))
	if got := n.CaptureAt(CaptureDeviceEgress).Len(); got != 0 {
		t.Fatalf("captures with capture off: %d", got)
	}
	n.SetCapture(true)
	n.Deliver(plainPacket(getRequest()))
	if got := n.CaptureAt(CaptureDeviceEgress).Len(); got != 1 {
		t.Fatalf("captures after re-enable: %d", got)
	}
}
