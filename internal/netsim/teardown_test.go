package netsim

import (
	"testing"

	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/httpsim"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/sanitizer"
)

// keepAliveVariant rebuilds a tagged packet's payload with
// "Connection: keep-alive", so the connection survives the response.
func keepAliveVariant(t *testing.T, pkt *ipv4.Packet) *ipv4.Packet {
	t.Helper()
	req := &httpsim.Request{Method: "GET", Path: "/", Host: "example", KeepAlive: true}
	out := pkt.Clone()
	out.Payload = req.Marshal()
	return out
}

// TestConnectionCloseTearsDownFlow is the explicit-teardown satellite: a
// served "Connection: close" request must delete the flow's cached verdict
// (flowtable.Delete via Gateway.CloseFlow), and the next packet of the
// same flow must re-resolve through the full pipeline to the same verdict.
func TestConnectionCloseTearsDownFlow(t *testing.T) {
	enf0, apk, db := buildEnforcerAndDB(t)
	flows := enforcer.NewFlowCache(flowtable.Config{Capacity: 1024})
	enf := enforcer.New(enforcer.Config{Flows: flows}, db, enf0.Engine())
	gw := NewGateway(GatewayConfig{Enforcer: enf, Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)

	pkt := taggedPacket(t, apk, db, "sync") // "Connection: close" payload
	d := n.Deliver(pkt)
	if !d.Delivered {
		t.Fatalf("first delivery failed: %+v", d)
	}
	st := flows.Stats()
	if st.Live != 0 {
		t.Fatalf("flow still cached after connection close: %+v", st)
	}
	if st.Misses != 1 || st.Inserts != 1 {
		t.Fatalf("first delivery stats: %+v", st)
	}

	// The evicted flow re-resolves: a second connection on the same tuple
	// pays the pipeline again and reaches the same verdict.
	d2 := n.Deliver(pkt)
	if !d2.Delivered {
		t.Fatalf("re-resolved delivery failed: %+v", d2)
	}
	st = flows.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("second delivery must re-resolve, stats: %+v", st)
	}
	if evals := enf.Engine().Stats().Evaluations; evals != 2 {
		t.Fatalf("policy evaluations = %d, want 2 (one per connection)", evals)
	}
	if d2.Enforcement.Verdict != d.Enforcement.Verdict {
		t.Fatalf("re-resolved verdict %v != original %v", d2.Enforcement.Verdict, d.Enforcement.Verdict)
	}
}

// TestKeepAliveFlowSurvivesDelivery: the teardown must key on the
// connection actually ending — keep-alive traffic stays cached and later
// packets hit.
func TestKeepAliveFlowSurvivesDelivery(t *testing.T) {
	enf0, apk, db := buildEnforcerAndDB(t)
	flows := enforcer.NewFlowCache(flowtable.Config{Capacity: 1024})
	enf := enforcer.New(enforcer.Config{Flows: flows}, db, enf0.Engine())
	gw := NewGateway(GatewayConfig{Enforcer: enf, Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)

	pkt := keepAliveVariant(t, taggedPacket(t, apk, db, "sync"))
	if d := n.Deliver(pkt); !d.Delivered {
		t.Fatalf("first delivery failed: %+v", d)
	}
	if st := flows.Stats(); st.Live != 1 {
		t.Fatalf("keep-alive flow not cached: %+v", st)
	}
	if d := n.Deliver(pkt); !d.Delivered {
		t.Fatalf("second delivery failed: %+v", d)
	}
	st := flows.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("keep-alive second packet must hit: %+v", st)
	}
}

// TestBatchDeliveryTearsDownClosedFlows: the batched path tears down too —
// a burst of one single-request connection leaves no live flow, and a
// fresh burst re-resolves.
func TestBatchDeliveryTearsDownClosedFlows(t *testing.T) {
	enf0, apk, db := buildEnforcerAndDB(t)
	flows := enforcer.NewFlowCache(flowtable.Config{Capacity: 1024})
	enf := enforcer.New(enforcer.Config{Flows: flows}, db, enf0.Engine())
	gw := NewGateway(GatewayConfig{Enforcer: enf, Sanitizer: sanitizer.New(sanitizer.Config{}), Workers: 2})
	n := newStaticNetwork(ModeTAP, gw)

	pkt := taggedPacket(t, apk, db, "sync")
	burst := []*ipv4.Packet{pkt, pkt, pkt, pkt}
	for i, d := range n.DeliverBatch(burst) {
		if !d.Delivered {
			t.Fatalf("burst pkt %d dropped: %+v", i, d)
		}
	}
	if st := flows.Stats(); st.Live != 0 {
		t.Fatalf("closed flow survived the batch drain: %+v", st)
	}
	for i, d := range n.DeliverBatch(burst) {
		if !d.Delivered || d.Enforcement.Verdict != policy.VerdictAllow {
			t.Fatalf("re-resolved burst pkt %d: %+v", i, d)
		}
	}
	if st := flows.Stats(); st.Misses != 2 {
		t.Fatalf("each burst must re-resolve its flow once: %+v", st)
	}
}

// TestCloseFlowGuards: CloseFlow is a safe no-op without an enforcer, a
// flow cache, or a tag.
func TestCloseFlowGuards(t *testing.T) {
	gwNone := NewGateway(GatewayConfig{Passthrough: true})
	if gwNone.CloseFlow(plainPacket(getRequest())) {
		t.Fatal("CloseFlow without enforcer reported a removal")
	}

	enf0, apk, db := buildEnforcerAndDB(t) // no flow cache
	gwNoCache := NewGateway(GatewayConfig{Enforcer: enf0})
	if gwNoCache.CloseFlow(taggedPacket(t, apk, db, "sync")) {
		t.Fatal("CloseFlow without flow cache reported a removal")
	}

	flows := enforcer.NewFlowCache(flowtable.Config{Capacity: 16})
	enf := enforcer.New(enforcer.Config{Flows: flows}, db, enf0.Engine())
	gw := NewGateway(GatewayConfig{Enforcer: enf})
	if gw.CloseFlow(plainPacket(getRequest())) {
		t.Fatal("CloseFlow on an untagged packet reported a removal")
	}
	// And a real teardown reports true exactly once.
	pkt := taggedPacket(t, apk, db, "sync")
	enf.Process(pkt)
	if !gw.CloseFlow(pkt) {
		t.Fatal("CloseFlow missed a cached flow")
	}
	if gw.CloseFlow(pkt) {
		t.Fatal("CloseFlow removed a flow twice")
	}
}
