package netsim

import (
	"testing"

	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/httpsim"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/sanitizer"
	"borderpatrol/internal/transport"
)

// tcpConn builds the packet train of one TCP connection out of a tagged
// legacy test packet: SYN, n data segments carrying the original HTTP
// payload, FIN. Every packet keeps the tag (same socket, same options).
func tcpConn(t *testing.T, base *ipv4.Packet, srcPort uint16, n int) (syn *ipv4.Packet, data []*ipv4.Packet, fin *ipv4.Packet) {
	t.Helper()
	mk := func(flags byte, seq uint32, payload []byte) *ipv4.Packet {
		out := base.Clone()
		seg := transport.TCPSegment{
			SrcPort: srcPort, DstPort: 443, Seq: seq,
			Flags: flags, Window: 65535, Payload: payload,
		}
		out.Payload = seg.Marshal()
		return out
	}
	syn = mk(transport.FlagSYN, 1, nil)
	seq := uint32(2)
	for i := 0; i < n; i++ {
		data = append(data, mk(transport.FlagPSH|transport.FlagACK, seq, base.Payload))
		seq += uint32(len(base.Payload))
	}
	fin = mk(transport.FlagFIN|transport.FlagACK, seq, nil)
	return syn, data, fin
}

// TestConntrackLifecycleTearsDownFlow is the transport-era teardown test:
// SYN establishes, data hits the cache, and the FIN deletes the flow's
// cached verdict — without any "Connection: close" peek (the data
// segments say keep-alive).
func TestConntrackLifecycleTearsDownFlow(t *testing.T) {
	enf0, apk, db := buildEnforcerAndDB(t)
	flows := enforcer.NewFlowCache(flowtable.Config{Capacity: 1024})
	enf := enforcer.New(enforcer.Config{Flows: flows}, db, enf0.Engine())
	gw := NewGateway(GatewayConfig{Enforcer: enf, Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)

	base := taggedPacket(t, apk, db, "sync")
	keep := (&httpsim.Request{Method: "GET", Path: "/", Host: "example", KeepAlive: true}).Marshal()
	base.Payload = keep // keep-alive header: the legacy peek would NOT close this
	syn, data, fin := tcpConn(t, base, 40700, 3)

	if d := n.Deliver(syn); !d.Delivered {
		t.Fatalf("SYN dropped: %+v", d)
	}
	ct := gw.Conntrack()
	if ct.Established != 1 || ct.Open != 1 {
		t.Fatalf("conntrack after SYN: %+v", ct)
	}
	for i, pkt := range data {
		d := n.Deliver(pkt)
		if !d.Delivered || d.Response == nil || d.Response.Status != 200 {
			t.Fatalf("data %d: %+v", i, d)
		}
	}
	st := flows.Stats()
	if st.Live != 1 || st.Misses != 1 || st.Hits != 3 {
		t.Fatalf("mid-connection flow stats: %+v", st)
	}

	if d := n.Deliver(fin); !d.Delivered {
		t.Fatalf("FIN dropped: %+v", d)
	}
	ct = gw.Conntrack()
	if ct.Closed != 1 || ct.Open != 0 {
		t.Fatalf("conntrack after FIN: %+v", ct)
	}
	if st := flows.Stats(); st.Live != 0 {
		t.Fatalf("FIN did not tear the flow down: %+v", st)
	}

	// A fresh connection on the same tuple re-resolves: the SYN missed
	// once, data and FIN hit (teardown runs after enforcement), and the
	// second SYN misses again.
	syn2, _, _ := tcpConn(t, base, 40700, 0)
	if d := n.Deliver(syn2); !d.Delivered {
		t.Fatalf("second SYN dropped: %+v", d)
	}
	st = flows.Stats()
	if st.Misses != 2 || st.Hits != 4 {
		t.Fatalf("re-resolve stats = %+v, want 2 misses / 4 hits", st)
	}
}

// TestRSTAbortsConnection: RST tears down like FIN.
func TestRSTAbortsConnection(t *testing.T) {
	enf0, apk, db := buildEnforcerAndDB(t)
	flows := enforcer.NewFlowCache(flowtable.Config{Capacity: 1024})
	enf := enforcer.New(enforcer.Config{Flows: flows}, db, enf0.Engine())
	gw := NewGateway(GatewayConfig{Enforcer: enf, Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)

	base := taggedPacket(t, apk, db, "sync")
	syn, data, _ := tcpConn(t, base, 40800, 1)
	rstPkt := base.Clone()
	seg := transport.TCPSegment{SrcPort: 40800, DstPort: 443, Seq: 99, Flags: transport.FlagRST, Window: 0}
	rstPkt.Payload = seg.Marshal()

	n.Deliver(syn)
	n.Deliver(data[0])
	if st := flows.Stats(); st.Live != 1 {
		t.Fatalf("flow not cached: %+v", st)
	}
	if d := n.Deliver(rstPkt); !d.Delivered {
		t.Fatalf("RST dropped: %+v", d)
	}
	if st := flows.Stats(); st.Live != 0 {
		t.Fatalf("RST did not tear the flow down: %+v", st)
	}
	if ct := gw.Conntrack(); ct.Closed != 1 {
		t.Fatalf("conntrack: %+v", ct)
	}
}

// TestDeniedFlowKeepsCachedDropAcrossFIN: the conntrack only observes
// accepted packets, so a denied flow's FIN is dropped like the rest of it
// and the cached drop verdict survives — repeat offenders stay cheap.
func TestDeniedFlowKeepsCachedDropAcrossFIN(t *testing.T) {
	enf0, apk, db := buildEnforcerAndDB(t)
	flows := enforcer.NewFlowCache(flowtable.Config{Capacity: 1024})
	enf := enforcer.New(enforcer.Config{Flows: flows}, db, enf0.Engine())
	gw := NewGateway(GatewayConfig{Enforcer: enf, Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)

	base := taggedPacket(t, apk, db, "beacon") // denied by the flurry rule
	syn, data, fin := tcpConn(t, base, 40900, 1)
	for _, pkt := range []*ipv4.Packet{syn, data[0], fin} {
		if d := n.Deliver(pkt); d.Delivered {
			t.Fatalf("denied flow packet delivered: %+v", d)
		}
	}
	st := flows.Stats()
	if st.Live != 1 {
		t.Fatalf("cached drop verdict evicted by its own FIN: %+v", st)
	}
	if st.Hits != 2 { // data + FIN answered from the cached drop
		t.Fatalf("hits = %d, want 2", st.Hits)
	}
	if ct := gw.Conntrack(); ct.Established != 0 || ct.Closed != 0 {
		t.Fatalf("conntrack observed dropped packets: %+v", ct)
	}
}

// TestBatchConntrackTeardown: the batched drain observes lifecycle in
// burst order — the FIN at the end of a train tears down after the data
// hit the cache.
func TestBatchConntrackTeardown(t *testing.T) {
	enf0, apk, db := buildEnforcerAndDB(t)
	flows := enforcer.NewFlowCache(flowtable.Config{Capacity: 1024})
	enf := enforcer.New(enforcer.Config{Flows: flows}, db, enf0.Engine())
	gw := NewGateway(GatewayConfig{Enforcer: enf, Sanitizer: sanitizer.New(sanitizer.Config{}), Workers: 2})
	n := newStaticNetwork(ModeTAP, gw)

	base := taggedPacket(t, apk, db, "sync")
	syn, data, fin := tcpConn(t, base, 41000, 4)
	burst := append([]*ipv4.Packet{syn}, data...)
	burst = append(burst, fin)

	for i, d := range n.DeliverBatch(burst) {
		if !d.Delivered {
			t.Fatalf("burst pkt %d dropped: %+v", i, d)
		}
		if d.Enforcement == nil || d.Enforcement.Verdict != policy.VerdictAllow {
			t.Fatalf("burst pkt %d enforcement: %+v", i, d.Enforcement)
		}
	}
	st := flows.Stats()
	if st.Live != 0 {
		t.Fatalf("batched FIN did not tear down: %+v", st)
	}
	if st.Misses != 1 || st.Hits+enf.Stats().BatchMemoHits != 5 {
		t.Fatalf("train not amortized: %+v memo=%d", st, enf.Stats().BatchMemoHits)
	}
	ct := gw.Conntrack()
	if ct.Established != 1 || ct.Closed != 1 || ct.Open != 0 {
		t.Fatalf("conntrack: %+v", ct)
	}
}
