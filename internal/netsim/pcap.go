package netsim

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"borderpatrol/internal/ipv4"
)

// This file implements a pcap-style on-disk format for Captures so gateway
// sessions can persist raw tagged traffic for offline analysis (the paper's
// evaluation records "all generated network traffic" during corpus runs,
// §VI-A). The format is a minimal length-prefixed record stream:
//
//	magic   uint32  0xB0DE4A7C
//	version uint16  1
//	records: { length uint32, packet bytes (ipv4 wire format) }*

const (
	captureMagic   = 0xB0DE4A7C
	captureVersion = 1
	// maxRecordLen bounds one packet record (IPv4 max total length).
	maxRecordLen = 65535
)

// Errors for capture serialization.
var (
	ErrBadCaptureMagic   = errors.New("netsim: not a capture file")
	ErrBadCaptureVersion = errors.New("netsim: unsupported capture version")
)

// WriteTo serializes every captured packet to w.
func (c *Capture) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	var hdr [6]byte
	binary.BigEndian.PutUint32(hdr[0:4], captureMagic)
	binary.BigEndian.PutUint16(hdr[4:6], captureVersion)
	n, err := bw.Write(hdr[:])
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("netsim: capture write: %w", err)
	}
	for _, pkt := range c.Packets() {
		wire, err := pkt.Marshal()
		if err != nil {
			return written, fmt.Errorf("netsim: capture marshal: %w", err)
		}
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(wire)))
		n, err = bw.Write(lenBuf[:])
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("netsim: capture write: %w", err)
		}
		n, err = bw.Write(wire)
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("netsim: capture write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("netsim: capture flush: %w", err)
	}
	return written, nil
}

// ReadCapture parses a capture stream back into packets.
func ReadCapture(r io.Reader) (*Capture, error) {
	br := bufio.NewReader(r)
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("netsim: capture header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != captureMagic {
		return nil, ErrBadCaptureMagic
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != captureVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadCaptureVersion, v)
	}
	cap := &Capture{}
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return cap, nil
			}
			return nil, fmt.Errorf("netsim: capture record length: %w", err)
		}
		recLen := binary.BigEndian.Uint32(lenBuf[:])
		if recLen == 0 || recLen > maxRecordLen {
			return nil, fmt.Errorf("netsim: capture record length %d out of range", recLen)
		}
		wire := make([]byte, recLen)
		if _, err := io.ReadFull(br, wire); err != nil {
			return nil, fmt.Errorf("netsim: capture record body: %w", err)
		}
		pkt, err := ipv4.Unmarshal(wire)
		if err != nil {
			return nil, fmt.Errorf("netsim: capture packet: %w", err)
		}
		cap.Append(pkt)
	}
}
