package netsim

import (
	"testing"

	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/sanitizer"
)

// TestDeliverBatchMatchesDeliver pushes the same mixed burst through the
// batch path and the scalar path and compares fates, enforcement results,
// captures and server accounting.
func TestDeliverBatchMatchesDeliver(t *testing.T) {
	mk := func(workers int) (*Network, *ipv4.Packet, *ipv4.Packet) {
		enf, apk, db := buildEnforcerAndDB(t)
		gw := NewGateway(GatewayConfig{Enforcer: enf, Sanitizer: sanitizer.New(sanitizer.Config{}), Workers: workers})
		n := newStaticNetwork(ModeTAP, gw)
		return n, taggedPacket(t, apk, db, "sync"), taggedPacket(t, apk, db, "beacon")
	}

	nScalar, benignS, trackerS := mk(1)
	nBatch, benignB, trackerB := mk(2)

	scalarBurst := []*ipv4.Packet{benignS, trackerS, benignS, plainPacket(getRequest()), benignS}
	batchBurst := []*ipv4.Packet{benignB, trackerB, benignB, plainPacket(getRequest()), benignB}

	var want []Delivery
	for _, pkt := range scalarBurst {
		want = append(want, nScalar.Deliver(pkt))
	}
	got := nBatch.DeliverBatch(batchBurst)

	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Delivered != want[i].Delivered || got[i].Stage != want[i].Stage {
			t.Fatalf("pkt %d: batch {%v %v}, scalar {%v %v}",
				i, got[i].Delivered, got[i].Stage, want[i].Delivered, want[i].Stage)
		}
		if (got[i].Enforcement == nil) != (want[i].Enforcement == nil) {
			t.Fatalf("pkt %d: enforcement presence differs", i)
		}
		if got[i].Enforcement != nil && got[i].Enforcement.Verdict != want[i].Enforcement.Verdict {
			t.Fatalf("pkt %d: verdict %v vs %v", i, got[i].Enforcement.Verdict, want[i].Enforcement.Verdict)
		}
		if got[i].Delivered && (got[i].Response == nil || got[i].Response.Status != 200) {
			t.Fatalf("pkt %d: response %+v", i, got[i].Response)
		}
		if got[i].Latency <= 0 {
			t.Fatalf("pkt %d: no latency charged", i)
		}
	}

	// Server accounting matches.
	srvS, _ := nScalar.ServerAt(serverAddr())
	srvB, _ := nBatch.ServerAt(serverAddr())
	if srvS.Requests() != srvB.Requests() {
		t.Fatalf("server requests: scalar %d, batch %d", srvS.Requests(), srvB.Requests())
	}
	// Post-gateway capture holds only sanitized survivors.
	for _, pkt := range nBatch.CaptureAt(CapturePostGateway).Packets() {
		if pkt.Header.HasOptions() {
			t.Fatal("post-gateway capture holds an unsanitized packet")
		}
	}
}

// TestDeliverBatchAmortizesQueueHop: a burst pays the NFQUEUE transition
// once, so its total virtual time undercuts per-packet delivery.
func TestDeliverBatchAmortizesQueueHop(t *testing.T) {
	mk := func() (*Network, *ipv4.Packet) {
		enf, apk, db := buildEnforcerAndDB(t)
		gw := NewGateway(GatewayConfig{Enforcer: enf, Sanitizer: sanitizer.New(sanitizer.Config{})})
		n := newStaticNetwork(ModeTAP, gw)
		return n, taggedPacket(t, apk, db, "sync")
	}
	nScalar, pktS := mk()
	nBatch, pktB := mk()

	const burst = 16
	startS := nScalar.Clock.Now()
	for i := 0; i < burst; i++ {
		if d := nScalar.Deliver(pktS); !d.Delivered {
			t.Fatalf("scalar pkt %d dropped: %+v", i, d)
		}
	}
	scalarTotal := nScalar.Clock.Now() - startS

	pkts := make([]*ipv4.Packet, burst)
	for i := range pkts {
		pkts[i] = pktB
	}
	startB := nBatch.Clock.Now()
	for i, d := range nBatch.DeliverBatch(pkts) {
		if !d.Delivered {
			t.Fatalf("batch pkt %d dropped: %+v", i, d)
		}
	}
	batchTotal := nBatch.Clock.Now() - startB

	if batchTotal >= scalarTotal {
		t.Fatalf("batch burst %v must undercut scalar %v", batchTotal, scalarTotal)
	}
}

// TestDeliverBatchEmpty is the trivial edge.
func TestDeliverBatchEmpty(t *testing.T) {
	n := newStaticNetwork(ModeTAP, nil)
	if out := n.DeliverBatch(nil); len(out) != 0 {
		t.Fatalf("out = %v", out)
	}
}

// TestGatewayProcessBatchFlowCache: with a flow cache on the enforcer,
// repeated batches of one flow drive the policy engine exactly once.
func TestGatewayProcessBatchFlowCache(t *testing.T) {
	enf0, apk, db := buildEnforcerAndDB(t)
	flows := enforcer.NewFlowCache(flowtable.Config{Capacity: 1024})
	enf := enforcer.New(enforcer.Config{Flows: flows}, db, enf0.Engine())
	gw := NewGateway(GatewayConfig{Enforcer: enf, Sanitizer: sanitizer.New(sanitizer.Config{}), Workers: 2})

	pkt := taggedPacket(t, apk, db, "sync")
	burst := make([]*ipv4.Packet, 32)
	for i := range burst {
		burst[i] = pkt
	}
	for round := 0; round < 4; round++ {
		out, err := gw.ProcessBatch(burst)
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range out {
			if o.Out == nil || o.Result == nil || o.Result.Verdict != policy.VerdictAllow {
				t.Fatalf("round %d pkt %d: %+v", round, i, o)
			}
			if o.Out.Header.HasOptions() {
				t.Fatalf("round %d pkt %d: not sanitized", round, i)
			}
		}
	}
	if evals := enf.Engine().Stats().Evaluations; evals != 1 {
		t.Fatalf("policy evaluations = %d, want 1 (flow cache + memo)", evals)
	}
	st := enf.Stats()
	if st.Processed != 128 {
		t.Fatalf("processed = %d", st.Processed)
	}
	if st.Flow.Hits+st.BatchMemoHits != 127 {
		t.Fatalf("hits %d + memo %d != 127", st.Flow.Hits, st.BatchMemoHits)
	}
}
