package netsim

import (
	"fmt"
	"time"

	"borderpatrol/internal/ipv4"
)

// Route models where a device's packets enter the network, implementing
// the paper's §VII deployment discussion: on premises every packet crosses
// the corporate gateway; off premises the BYOD framework forces
// work-profile traffic through the corporate VPN (so enforcement still
// sees it), while personal traffic rides the mobile network and never
// touches corporate infrastructure.
type Route int

// Routes.
const (
	// RouteDirect is the on-premises path through the corporate gateway.
	RouteDirect Route = iota + 1
	// RouteVPN is the off-premises work-profile path: tunnelled back to
	// the corporate gateway with added tunnel latency.
	RouteVPN
	// RouteMobile is the off-premises personal path: straight to the
	// carrier network, bypassing the corporate gateway entirely. Carrier
	// border routers still apply RFC 7126, so tagged packets leaking onto
	// this path are dropped rather than exposing context.
	RouteMobile
)

// String names the route.
func (r Route) String() string {
	switch r {
	case RouteDirect:
		return "direct"
	case RouteVPN:
		return "vpn"
	case RouteMobile:
		return "mobile"
	default:
		return fmt.Sprintf("route(%d)", int(r))
	}
}

// VPNPerPacket is the tunnel encapsulation + backhaul cost charged per
// packet on the VPN route.
const VPNPerPacket = 12 * time.Millisecond

// MobilePerPacket is the cellular access latency on the mobile route.
const MobilePerPacket = 35 * time.Millisecond

// DeliverRoute pushes one packet along the selected route. RouteDirect is
// identical to Deliver. RouteVPN charges tunnel latency, then traverses
// the gateway as usual. RouteMobile skips the gateway but keeps the
// RFC 7126 border: the carrier drops optioned packets. The returned
// latency includes the route's access cost.
func (n *Network) DeliverRoute(pkt *ipv4.Packet, route Route) Delivery {
	start := n.Clock.Now()
	var d Delivery
	switch route {
	case RouteVPN:
		n.Clock.Advance(VPNPerPacket)
		d = n.deliver(pkt, false)
	case RouteMobile:
		n.Clock.Advance(MobilePerPacket)
		d = n.deliver(pkt, true)
	default:
		d = n.deliver(pkt, false)
	}
	d.Latency = n.Clock.Now() - start
	return d
}
