package netsim

import (
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/sanitizer"
	"sync"
)

// Gateway is the enterprise-perimeter appliance: a host whose netfilter
// diverts every packet from BYOD devices into the user-space Policy
// Enforcer (NFQUEUE 1) and, for surviving packets, the Packet Sanitizer
// (NFQUEUE 2) — matching the paper's worker-host iptables layout (§VI-A).
//
// Process is serialized: the paper's user-space queue consumer (Python
// netfilterqueue) handles one packet at a time, and the audit trail relies
// on that ordering.
type Gateway struct {
	nf        *kernel.Netfilter
	enforcer  *enforcer.Enforcer
	sanitizer *sanitizer.Sanitizer
	// passthrough models config (iii) of Fig. 4: a reader that consumes
	// the queue and reinjects packets unmodified.
	passthrough bool

	mu sync.Mutex
	// lastResult stores the most recent enforcement result for callers
	// that need the audit trail; valid only under mu across one Process.
	lastResult *enforcer.Result
}

// GatewayConfig assembles a gateway.
type GatewayConfig struct {
	// Enforcer enables the Policy Enforcer stage (nil leaves the stage out).
	Enforcer *enforcer.Enforcer
	// Sanitizer enables the Packet Sanitizer stage (nil leaves it out).
	Sanitizer *sanitizer.Sanitizer
	// Passthrough installs a read-and-reinject queue consumer even with no
	// enforcer/sanitizer, to measure the bare NFQUEUE cost.
	Passthrough bool
}

// NewGateway wires the pipeline onto a fresh netfilter instance.
func NewGateway(cfg GatewayConfig) *Gateway {
	g := &Gateway{
		nf:          kernel.NewNetfilter(),
		enforcer:    cfg.Enforcer,
		sanitizer:   cfg.Sanitizer,
		passthrough: cfg.Passthrough,
	}
	switch {
	case g.enforcer != nil:
		g.nf.RegisterQueue(1, func(pkt *ipv4.Packet) (kernel.Verdict, *ipv4.Packet) {
			res := g.enforcer.Process(pkt)
			g.lastResult = &res
			if res.Verdict == policy.VerdictDrop {
				return kernel.VerdictDrop, nil
			}
			return kernel.VerdictAccept, nil
		})
		g.nf.Append(kernel.ChainOutput, kernel.Rule{
			Target: kernel.TargetQueue, QueueNum: 1, Comment: "BYOD traffic to Policy Enforcer",
		})
	case g.passthrough:
		g.nf.RegisterQueue(1, func(pkt *ipv4.Packet) (kernel.Verdict, *ipv4.Packet) {
			return kernel.VerdictAccept, nil
		})
		g.nf.Append(kernel.ChainOutput, kernel.Rule{
			Target: kernel.TargetQueue, QueueNum: 1, Comment: "passthrough reader",
		})
	}
	if g.sanitizer != nil {
		g.nf.RegisterQueue(2, func(pkt *ipv4.Packet) (kernel.Verdict, *ipv4.Packet) {
			return kernel.VerdictAccept, g.sanitizer.Process(pkt.Clone())
		})
		g.nf.Append(kernel.ChainPostrouting, kernel.Rule{
			Target: kernel.TargetQueue, QueueNum: 2, Comment: "outbound to Packet Sanitizer",
		})
	}
	return g
}

// Active reports whether the gateway diverts packets to user space at all
// (used for latency accounting).
func (g *Gateway) Active() bool {
	return g.enforcer != nil || g.sanitizer != nil || g.passthrough
}

// HasEnforcer reports whether the enforcement stage is present.
func (g *Gateway) HasEnforcer() bool { return g.enforcer != nil }

// HasSanitizer reports whether the sanitizing stage is present.
func (g *Gateway) HasSanitizer() bool { return g.sanitizer != nil }

// Process runs one packet through the gateway pipeline. It returns the
// (possibly rewritten) packet, nil when dropped, and the enforcement result
// when the enforcer stage ran. Calls are serialized like the single
// user-space queue reader they model.
func (g *Gateway) Process(pkt *ipv4.Packet) (*ipv4.Packet, *enforcer.Result, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.lastResult = nil
	out, err := g.nf.Output(pkt)
	return out, g.lastResult, err
}

// Enforcer returns the enforcement stage, if present.
func (g *Gateway) Enforcer() *enforcer.Enforcer { return g.enforcer }

// Sanitizer returns the sanitizing stage, if present.
func (g *Gateway) Sanitizer() *sanitizer.Sanitizer { return g.sanitizer }
