package netsim

import (
	"sync"
	"sync/atomic"
	"time"

	"borderpatrol/internal/dataplane"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/sanitizer"
)

// Gateway is the enterprise-perimeter appliance: a host whose netfilter
// diverts every packet from BYOD devices into the user-space Policy
// Enforcer (NFQUEUE 1) and, for surviving packets, the Packet Sanitizer
// (NFQUEUE 2) — matching the paper's worker-host iptables layout (§VI-A).
//
// Two consumption models are wired onto the same queues:
//
//   - Process is the paper's original serialized reader (the Python
//     netfilterqueue consumer handles one packet at a time, and the audit
//     trail relies on that ordering).
//   - ProcessBatch drains a burst through the kernel's batch traversal
//     with a per-core worker pool: the enforcer's ProcessBatch amortizes
//     resolve+decode across packets of the same flow, and the lock-free
//     enforcement path lets chunks proceed on every core in parallel.
type Gateway struct {
	nf        *kernel.Netfilter
	enforcer  *enforcer.Enforcer
	sanitizer *sanitizer.Sanitizer
	// dp is the optional per-core match-action stage installed below the
	// enforcer queue: batch drains probe it before crossing into user
	// space, and the gateway feeds it teardown (Invalidate) and restart
	// (Flush) events so its compiled state tracks the flow lifecycle.
	dp *dataplane.Dataplane
	// ct tracks TCP connection state on accepted packets: SYN establishes,
	// FIN/RST ends the connection and tears down the flow's cached verdict
	// through the enforcer.
	ct *Conntrack
	// workers sizes the ProcessBatch worker pool (≤0 = GOMAXPROCS).
	workers int
	// passthrough models config (iii) of Fig. 4: a reader that consumes
	// the queue and reinjects packets unmodified.
	passthrough bool

	restarts atomic.Uint64

	mu sync.Mutex
	// lastResult stores the most recent enforcement result for callers
	// that need the audit trail; valid only under mu across one Process.
	lastResult *enforcer.Result
}

// GatewayConfig assembles a gateway.
type GatewayConfig struct {
	// Enforcer enables the Policy Enforcer stage (nil leaves the stage out).
	Enforcer *enforcer.Enforcer
	// Sanitizer enables the Packet Sanitizer stage (nil leaves it out).
	Sanitizer *sanitizer.Sanitizer
	// Passthrough installs a read-and-reinject queue consumer even with no
	// enforcer/sanitizer, to measure the bare NFQUEUE cost.
	Passthrough bool
	// Workers sizes the per-core batch drain (≤0 = GOMAXPROCS).
	Workers int
	// Clock supplies virtual time to the connection tracker (TIME_WAIT
	// expiry, idle sweeps); nil disables time-based conntrack expiry.
	Clock *Clock
	// Dataplane installs a compiled per-core match-action stage in front
	// of the enforcer queue (nil leaves the stage out). It must have been
	// built over the same Enforcer, and should hold at least as many
	// cores as Workers so every concurrent drain can lease one.
	Dataplane *dataplane.Dataplane
}

// NewGateway wires the pipeline onto a fresh netfilter instance.
func NewGateway(cfg GatewayConfig) *Gateway {
	g := &Gateway{
		nf:          kernel.NewNetfilter(),
		enforcer:    cfg.Enforcer,
		sanitizer:   cfg.Sanitizer,
		ct:          NewConntrack(cfg.Clock),
		workers:     cfg.Workers,
		passthrough: cfg.Passthrough,
	}
	switch {
	case g.enforcer != nil:
		g.nf.RegisterQueue(1, func(pkt *ipv4.Packet) (kernel.Verdict, *ipv4.Packet) {
			res := g.enforcer.Process(pkt)
			g.lastResult = &res
			if res.Verdict == policy.VerdictDrop {
				return kernel.VerdictDrop, nil
			}
			return kernel.VerdictAccept, nil
		})
		g.nf.RegisterBatchQueue(1, func(pkts []*ipv4.Packet) []kernel.BatchVerdict {
			results := g.enforcer.ProcessBatch(pkts, nil)
			out := make([]kernel.BatchVerdict, len(pkts))
			for i := range results {
				// Aux points into the results slice (one allocation per
				// batch, not per packet); it stays alive with the outcomes.
				out[i] = kernel.BatchVerdict{Verdict: kernel.VerdictAccept, Aux: &results[i]}
				if results[i].Verdict == policy.VerdictDrop {
					out[i].Verdict = kernel.VerdictDrop
				}
			}
			return out
		})
		if cfg.Dataplane != nil {
			g.dp = cfg.Dataplane
			g.nf.RegisterDataplane(1, g.dp)
		}
		g.nf.Append(kernel.ChainOutput, kernel.Rule{
			Target: kernel.TargetQueue, QueueNum: 1, Comment: "BYOD traffic to Policy Enforcer",
		})
	case g.passthrough:
		g.nf.RegisterQueue(1, func(pkt *ipv4.Packet) (kernel.Verdict, *ipv4.Packet) {
			return kernel.VerdictAccept, nil
		})
		g.nf.RegisterBatchQueue(1, func(pkts []*ipv4.Packet) []kernel.BatchVerdict {
			out := make([]kernel.BatchVerdict, len(pkts))
			for i := range out {
				out[i] = kernel.BatchVerdict{Verdict: kernel.VerdictAccept}
			}
			return out
		})
		g.nf.Append(kernel.ChainOutput, kernel.Rule{
			Target: kernel.TargetQueue, QueueNum: 1, Comment: "passthrough reader",
		})
	}
	if g.sanitizer != nil {
		g.nf.RegisterQueue(2, func(pkt *ipv4.Packet) (kernel.Verdict, *ipv4.Packet) {
			return kernel.VerdictAccept, g.sanitizer.Process(pkt.Clone())
		})
		g.nf.RegisterBatchQueue(2, func(pkts []*ipv4.Packet) []kernel.BatchVerdict {
			out := make([]kernel.BatchVerdict, len(pkts))
			for i, pkt := range pkts {
				out[i] = kernel.BatchVerdict{
					Verdict:   kernel.VerdictAccept,
					Rewritten: g.sanitizer.Process(pkt.Clone()),
				}
			}
			return out
		})
		g.nf.Append(kernel.ChainPostrouting, kernel.Rule{
			Target: kernel.TargetQueue, QueueNum: 2, Comment: "outbound to Packet Sanitizer",
		})
	}
	return g
}

// Active reports whether the gateway diverts packets to user space at all
// (used for latency accounting).
func (g *Gateway) Active() bool {
	return g.enforcer != nil || g.sanitizer != nil || g.passthrough
}

// HasEnforcer reports whether the enforcement stage is present.
func (g *Gateway) HasEnforcer() bool { return g.enforcer != nil }

// HasSanitizer reports whether the sanitizing stage is present.
func (g *Gateway) HasSanitizer() bool { return g.sanitizer != nil }

// Process runs one packet through the gateway pipeline. It returns the
// (possibly rewritten) packet, nil when dropped, and the enforcement result
// when the enforcer stage ran. Calls are serialized like the single
// user-space queue reader they model.
func (g *Gateway) Process(pkt *ipv4.Packet) (*ipv4.Packet, *enforcer.Result, error) {
	g.mu.Lock()
	g.lastResult = nil
	out, err := g.nf.Output(pkt)
	res := g.lastResult
	g.mu.Unlock()
	if out != nil {
		g.observeConn(pkt)
	}
	return out, res, err
}

// observeConn feeds one accepted packet to the conntrack; a FIN/RST tears
// the flow's cached verdict down through the enforcer. The original
// (still-tagged) packet is used, not the sanitized output — teardown keys
// on the same (5-tuple, tag bytes) the cache does. Dropped packets never
// reach it, so a denied flow's cached drop verdict deliberately survives
// its FIN: repeat offenders stay cheap to block.
func (g *Gateway) observeConn(pkt *ipv4.Packet) {
	if g.ct.Observe(pkt) {
		if g.enforcer != nil {
			g.enforcer.EndFlow(pkt)
		}
		if g.dp != nil {
			g.dp.Invalidate(pkt)
		}
	}
}

// ProcessResponse runs one server→device packet through the gateway's
// response-direction verdict state and reports whether it may pass. The
// return path carries no tag, so enforcement there is TCP sequence
// continuity (see Conntrack.ObserveResponse): a mid-stream injected
// segment whose sequence number breaks the connection's continuity is
// dropped with the enforcer's DropSeqInjection cause, surfaced through
// the bp_dataplane_seq_injection_drops_total metric.
func (g *Gateway) ProcessResponse(pkt *ipv4.Packet) bool {
	if !g.Active() {
		return true
	}
	return !g.ct.ObserveResponse(pkt)
}

// BatchOutcome is the fate of one packet in a ProcessBatch drain.
type BatchOutcome struct {
	// Out is the surviving (sanitized) packet; nil when dropped.
	Out *ipv4.Packet
	// Result is the Policy Enforcer's decision when that stage ran.
	Result *enforcer.Result
}

// ProcessBatch drains a burst of packets through the netfilter batch
// traversal on the per-core worker pool. Outcomes align with pkts. Unlike
// Process, batch drains are not serialized against each other — the
// enforcement path is lock-free by design — so callers needing a totally
// ordered audit trail should order on the returned outcomes, not on
// side effects.
func (g *Gateway) ProcessBatch(pkts []*ipv4.Packet) ([]BatchOutcome, error) {
	res, err := g.nf.DrainBatch(pkts, g.workers)
	out := make([]BatchOutcome, len(res))
	for i := range res {
		out[i] = BatchOutcome{Out: res[i].Out}
		if r, ok := res[i].Aux.(*enforcer.Result); ok {
			out[i].Result = r
		}
		// Connection lifecycle after the drain, in burst order: a FIN at
		// the end of a keep-alive train tears the flow down only after
		// its data packets were answered from the cache.
		if res[i].Out != nil {
			g.observeConn(pkts[i])
		}
	}
	return out, err
}

// Conntrack snapshots the gateway's connection tracker.
func (g *Gateway) Conntrack() ConntrackStats { return g.ct.Stats() }

// Restart models a gateway crash and reboot: all dataplane state — the
// enforcer's flow-verdict cache, the connection tracker, the netfilter
// counters — is discarded, exactly as a real appliance loses its RAM
// tables. The policy engine and signature database survive (they are
// control-plane state, re-read from persistent config on a real host), so
// the next packet of every live flow re-resolves through the full
// pipeline and must reach the same verdict cold — the re-resolution
// property the soak harness asserts.
func (g *Gateway) Restart() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.enforcer != nil {
		g.enforcer.PurgeFlows()
	}
	if g.dp != nil {
		g.dp.Flush()
	}
	g.ct.Reset()
	g.nf.ResetStats()
	g.restarts.Add(1)
}

// Restarts counts Restart calls over the gateway's lifetime.
func (g *Gateway) Restarts() uint64 { return g.restarts.Load() }

// GC runs one idle sweep: connections with no activity for longer than
// idle leave the conntrack (their FIN was lost — the half-open leak), and
// TTL-expired flow-cache entries are reclaimed. Returns what each sweep
// freed. Deployments call it periodically; the soak harness calls it
// between epochs and asserts the tables return to empty.
func (g *Gateway) GC(idle time.Duration) (conns, flows int) {
	conns = g.ct.Sweep(idle)
	if g.enforcer != nil {
		flows = g.enforcer.SweepFlows()
	}
	return conns, flows
}

// CloseFlow tells the enforcement stage a connection has ended, so its
// cached verdict is torn down immediately instead of lingering until TTL
// or eviction. Transport-era flows never need it — the gateway's
// conntrack calls EndFlow itself when it sees a FIN/RST — so this remains
// only for the network's legacy-payload fallback ("Connection: close"
// observed at the server). pkt is any packet of the flow still carrying
// its tag — teardown keys on the same (5-tuple, tag bytes) the cache
// does. Reports whether a cached verdict was removed.
func (g *Gateway) CloseFlow(pkt *ipv4.Packet) bool {
	if g.enforcer == nil {
		return false
	}
	return g.enforcer.EndFlow(pkt)
}

// Netfilter exposes the gateway's filter table (stats, extra rules).
func (g *Gateway) Netfilter() *kernel.Netfilter { return g.nf }

// Enforcer returns the enforcement stage, if present.
func (g *Gateway) Enforcer() *enforcer.Enforcer { return g.enforcer }

// Sanitizer returns the sanitizing stage, if present.
func (g *Gateway) Sanitizer() *sanitizer.Sanitizer { return g.sanitizer }

// Dataplane returns the match-action stage, if present.
func (g *Gateway) Dataplane() *dataplane.Dataplane { return g.dp }
