package netsim

import (
	"net/netip"
	"sync"

	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/transport"
)

// Conntrack is the gateway's lightweight connection tracker: the
// user-space analogue of nf_conntrack that turns TCP control flags into
// flow lifecycle events. A SYN establishes a connection, a FIN or RST
// ends it — and ending a connection is what triggers the enforcer's
// EndFlow, deleting the flow's cached verdict the moment the connection
// dies instead of leaving it to TTL or eviction pressure. Before the
// transport layer existed the gateway approximated this by peeking at
// "Connection: close" inside the HTTP payload; that peek survives only as
// the fallback for legacy plain payloads (see Network.serveOne).
//
// Only connection events touch the table: data segments (no SYN/FIN/RST)
// return without taking the lock, so the per-packet cost on the hot path
// is one transport peek. UDP is connectionless and deliberately
// untracked — its flow-cache entries age out via TTL, matching how real
// conntrack expires UDP by timeout.
type Conntrack struct {
	mu   sync.Mutex
	open map[conntrackKey]struct{}

	established uint64
	closed      uint64
}

// conntrackKey identifies a TCP connection at the gateway. The protocol
// is implicitly TCP — nothing else is tracked.
type conntrackKey struct {
	src, dst         netip.Addr
	srcPort, dstPort uint16
}

// ConntrackStats snapshots the tracker.
type ConntrackStats struct {
	// Established counts connections opened (SYN observed on an accepted
	// packet).
	Established uint64
	// Closed counts connections ended (FIN or RST observed).
	Closed uint64
	// Open is the number of connections currently tracked.
	Open int
}

// maxTracked bounds the open-connection map. Teardown does not depend on
// an entry being present (a FIN/RST always fires EndFlow), so the table
// exists for stats and double-SYN dedup only — but without a bound, any
// connection whose SYN was accepted and whose FIN is later dropped (a
// policy swap mid-connection, an app error path that never calls Finish)
// would leak its entry forever. At the cap an arbitrary entry is evicted,
// mirroring real nf_conntrack's table-full behaviour.
const maxTracked = 65536

// NewConntrack builds an empty tracker.
func NewConntrack() *Conntrack {
	return &Conntrack{open: make(map[conntrackKey]struct{})}
}

// Observe updates connection state for one accepted packet and reports
// whether the packet ended its connection — the caller's cue to tear the
// flow's cached verdict down. Packets without a transport header (legacy
// payloads, non-first fragments) and UDP datagrams are ignored.
func (ct *Conntrack) Observe(pkt *ipv4.Packet) (connClosed bool) {
	info, ok := transport.PeekPacket(pkt)
	if !ok || info.Proto != ipv4.ProtoTCP {
		return false
	}
	if info.Flags&(transport.FlagSYN|transport.FlagFIN|transport.FlagRST) == 0 {
		return false // data segment: no lifecycle event, no lock
	}
	k := conntrackKey{
		src: pkt.Header.Src, dst: pkt.Header.Dst,
		srcPort: info.SrcPort, dstPort: info.DstPort,
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if info.Flags&(transport.FlagFIN|transport.FlagRST) != 0 {
		// FIN and RST both end the flow; a connection picked up mid-stream
		// (no tracked SYN — the gateway restarted, or the SYN predates it)
		// still counts as closed so teardown always fires.
		delete(ct.open, k)
		ct.closed++
		return true
	}
	if _, dup := ct.open[k]; !dup {
		if len(ct.open) >= maxTracked {
			for victim := range ct.open {
				delete(ct.open, victim)
				break
			}
		}
		ct.open[k] = struct{}{}
		ct.established++
	}
	return false
}

// Stats snapshots the tracker's counters.
func (ct *Conntrack) Stats() ConntrackStats {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ConntrackStats{
		Established: ct.established,
		Closed:      ct.closed,
		Open:        len(ct.open),
	}
}
