package netsim

import (
	"net/netip"
	"sync"
	"time"

	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/transport"
)

// Conntrack is the gateway's lightweight connection tracker: the
// user-space analogue of nf_conntrack that turns TCP control flags into
// flow lifecycle events. A SYN establishes a connection, a FIN or RST
// ends it — and ending a connection is what triggers the enforcer's
// EndFlow, deleting the flow's cached verdict the moment the connection
// dies instead of leaving it to TTL or eviction pressure. Before the
// transport layer existed the gateway approximated this by peeking at
// "Connection: close" inside the HTTP payload; that peek survives only as
// the fallback for legacy plain payloads (see Network.serveOne).
//
// Only connection events touch the table: data segments (no SYN/FIN/RST)
// return without taking the lock, so the per-packet cost on the hot path
// is one transport peek. UDP is connectionless and deliberately
// untracked — its flow-cache entries age out via TTL, matching how real
// conntrack expires UDP by timeout.
//
// # Idempotency under faults
//
// A faulty network retransmits, duplicates, and reorders control
// segments, so lifecycle transitions must be idempotent. A closed
// connection parks in a TIME_WAIT analogue for timeWaitTTL of virtual
// time: a duplicate FIN or an RST-after-FIN there still reports
// connClosed (teardown is the safe direction and EndFlow is idempotent)
// but counts as a duplicate close, not a second close; a SYN arriving
// there — a delayed retransmission of the original handshake — is refused
// rather than resurrecting the dead flow. Once TIME_WAIT expires the
// 5-tuple is legitimately reusable and a SYN establishes a fresh
// connection, as on a real host.
type Conntrack struct {
	clock *Clock

	mu   sync.Mutex
	open map[conntrackKey]connState

	// timeWait parks recently closed connections; ring bounds it FIFO.
	timeWait map[conntrackKey]time.Duration // key → close time (virtual)
	ring     []timeWaitRecord
	ringPos  int
	ringLen  int

	established     uint64
	closed          uint64
	dupCloses       uint64
	lateSYNs        uint64
	untrackedCloses uint64
	idleReclaimed   uint64

	responsesChecked uint64
	responseSeqDrops uint64
	responseAdopts   uint64
	responseLate     uint64
}

// connState is one open connection's directional verdict state: last
// activity for idle sweeps, plus the response half's expected sequence
// number. revNext is primed by the first server→device segment observed
// (the tracker cannot know the server's ISN in advance) and every later
// response must continue it exactly — the continuity check that flags a
// mid-stream injected segment.
type connState struct {
	last    time.Duration
	revNext uint32
	revSeen bool
}

// conntrackKey identifies a TCP connection at the gateway. The protocol
// is implicitly TCP — nothing else is tracked.
type conntrackKey struct {
	src, dst         netip.Addr
	srcPort, dstPort uint16
}

// timeWaitRecord is one ring slot: the parked key and the close time it
// was parked with, so a slot overwritten by churn only deletes the map
// entry it actually corresponds to.
type timeWaitRecord struct {
	key conntrackKey
	at  time.Duration
}

// ConntrackStats snapshots the tracker.
type ConntrackStats struct {
	// Established counts connections opened (SYN observed on an accepted
	// packet).
	Established uint64
	// Closed counts connections ended (first FIN or RST observed).
	Closed uint64
	// DupCloses counts redundant teardowns: a retransmitted FIN or an
	// RST-after-FIN landing on a connection already in TIME_WAIT.
	DupCloses uint64
	// LateSYNs counts SYNs refused because their 5-tuple was in TIME_WAIT —
	// a delayed/duplicated handshake that must not resurrect a dead flow.
	LateSYNs uint64
	// UntrackedCloses counts FIN/RSTs for connections the tracker never saw
	// open (the gateway restarted mid-stream, or the SYN predates it).
	// Teardown still fires for them.
	UntrackedCloses uint64
	// IdleReclaimed counts open entries swept after exceeding the idle
	// deadline (half-open connections whose teardown was lost).
	IdleReclaimed uint64
	// ResponsesChecked counts server→device TCP segments run through the
	// response-direction continuity check.
	ResponsesChecked uint64
	// ResponseSeqDrops counts response segments dropped for breaking
	// sequence continuity — the mid-stream injection signature.
	ResponseSeqDrops uint64
	// ResponseAdopts counts responses for unknown connections adopted
	// mid-stream (gateway restarted, or the SYN predates the tracker).
	ResponseAdopts uint64
	// ResponseLate counts responses landing on a connection already in
	// TIME_WAIT (the server's reply raced the close); accepted, since the
	// teardown already fired.
	ResponseLate uint64
	// Open is the number of connections currently tracked; TimeWait the
	// number parked awaiting 5-tuple reuse.
	Open     int
	TimeWait int
}

// maxTracked bounds the open-connection map. Teardown does not depend on
// an entry being present (a FIN/RST always fires EndFlow), so the table
// exists for stats and double-SYN dedup only — but without a bound, any
// connection whose SYN was accepted and whose FIN is later dropped (a
// policy swap mid-connection, an app error path that never calls Finish)
// would leak its entry forever. At the cap an arbitrary entry is evicted,
// mirroring real nf_conntrack's table-full behaviour.
const maxTracked = 65536

// maxTimeWait bounds the TIME_WAIT table; at the cap the oldest parked
// connection is released early (its 5-tuple becomes reusable), trading a
// sliver of late-segment protection for a hard memory bound — real
// nf_conntrack does the same under table pressure.
const maxTimeWait = 16384

// timeWaitTTL is how long a closed connection's 5-tuple stays parked in
// virtual time. Real TIME_WAIT is 2*MSL (60–120 s); the simulation uses a
// shorter window so soak epochs can legitimately reuse tuples.
const timeWaitTTL = 30 * time.Second

// NewConntrack builds an empty tracker. clock supplies virtual time for
// TIME_WAIT expiry and idle sweeps; nil disables time-based expiry (the
// TIME_WAIT table is then bounded only by maxTimeWait).
func NewConntrack(clock *Clock) *Conntrack {
	return &Conntrack{
		clock:    clock,
		open:     make(map[conntrackKey]connState),
		timeWait: make(map[conntrackKey]time.Duration),
		ring:     make([]timeWaitRecord, maxTimeWait),
	}
}

// now reads virtual time (zero without a clock).
func (ct *Conntrack) now() time.Duration {
	if ct.clock == nil {
		return 0
	}
	return ct.clock.Now()
}

// parkLocked moves a key into TIME_WAIT, evicting the oldest parked entry
// at capacity. Caller holds ct.mu.
func (ct *Conntrack) parkLocked(k conntrackKey, now time.Duration) {
	if ct.ringLen == len(ct.ring) {
		old := ct.ring[ct.ringPos]
		// Only delete the map entry this slot still owns: the key may have
		// been re-parked since, with a newer close time in a newer slot.
		if at, ok := ct.timeWait[old.key]; ok && at == old.at {
			delete(ct.timeWait, old.key)
		}
		ct.ringPos = (ct.ringPos + 1) % len(ct.ring)
		ct.ringLen--
	}
	slot := (ct.ringPos + ct.ringLen) % len(ct.ring)
	ct.ring[slot] = timeWaitRecord{key: k, at: now}
	ct.ringLen++
	ct.timeWait[k] = now
}

// Observe updates connection state for one accepted packet and reports
// whether the packet ended its connection — the caller's cue to tear the
// flow's cached verdict down. Packets without a transport header (legacy
// payloads, non-first fragments) and UDP datagrams are ignored.
func (ct *Conntrack) Observe(pkt *ipv4.Packet) (connClosed bool) {
	info, ok := transport.PeekPacket(pkt)
	if !ok || info.Proto != ipv4.ProtoTCP {
		return false
	}
	if info.Flags&(transport.FlagSYN|transport.FlagFIN|transport.FlagRST) == 0 {
		return false // data segment: no lifecycle event, no lock
	}
	k := conntrackKey{
		src: pkt.Header.Src, dst: pkt.Header.Dst,
		srcPort: info.SrcPort, dstPort: info.DstPort,
	}
	now := ct.now()
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if info.Flags&(transport.FlagFIN|transport.FlagRST) != 0 {
		if _, wasOpen := ct.open[k]; wasOpen {
			// First close of a tracked connection.
			delete(ct.open, k)
			ct.closed++
			ct.parkLocked(k, now)
			return true
		}
		if at, parked := ct.timeWait[k]; parked && (ct.clock == nil || now-at <= timeWaitTTL) {
			// Retransmitted FIN or RST-after-FIN: the connection is already
			// down. Teardown still fires — EndFlow is idempotent and closing
			// is the fail-safe direction — but it is not a second close.
			ct.dupCloses++
			return true
		}
		// Connection picked up mid-stream (gateway restart, or the SYN
		// predates the tracker): still counts as closed so teardown fires.
		ct.untrackedCloses++
		ct.closed++
		ct.parkLocked(k, now)
		return true
	}
	// SYN path.
	if at, parked := ct.timeWait[k]; parked {
		if ct.clock == nil || now-at <= timeWaitTTL {
			// A delayed handshake retransmission for a dead connection must
			// not resurrect it.
			ct.lateSYNs++
			return false
		}
		delete(ct.timeWait, k) // TIME_WAIT expired: the tuple is reusable
	}
	if st, dup := ct.open[k]; dup {
		st.last = now // SYN retransmission: refresh activity only
		ct.open[k] = st
		return false
	}
	ct.evictAtCapLocked()
	ct.open[k] = connState{last: now}
	ct.established++
	return false
}

// evictAtCapLocked frees one arbitrary open slot when the table is full,
// mirroring real nf_conntrack's table-full behaviour. Caller holds ct.mu.
func (ct *Conntrack) evictAtCapLocked() {
	if len(ct.open) >= maxTracked {
		for victim := range ct.open {
			delete(ct.open, victim)
			break
		}
	}
}

// ObserveResponse runs one server→device segment through the response
// half of the connection's verdict state and reports whether the gateway
// must drop it. The forward direction is enforced per packet by the
// policy pipeline; the response direction has no tag to enforce, so what
// it gets is continuity: the first response observed primes the expected
// sequence number (the tracker cannot know the server's ISN), and every
// later one must continue it exactly. A segment that breaks continuity
// is the mid-stream injection signature and is dropped.
//
// Unknown connections are adopted mid-stream (a restarted gateway must
// not go fail-open on established traffic, and adoption re-primes the
// check); responses landing in TIME_WAIT are accepted as the server's
// reply racing the close. Non-TCP and headerless packets pass untouched.
func (ct *Conntrack) ObserveResponse(pkt *ipv4.Packet) (drop bool) {
	info, ok := transport.PeekPacket(pkt)
	if !ok || info.Proto != ipv4.ProtoTCP {
		return false
	}
	// The response's key is the forward connection's: swap the endpoints
	// back so it lands on the entry the SYN established.
	k := conntrackKey{
		src: pkt.Header.Dst, dst: pkt.Header.Src,
		srcPort: info.DstPort, dstPort: info.SrcPort,
	}
	dataLen := uint32(len(pkt.Payload) - info.DataOff)
	now := ct.now()
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if st, open := ct.open[k]; open {
		ct.responsesChecked++
		if st.revSeen && info.Seq != st.revNext {
			ct.responseSeqDrops++
			return true
		}
		st.revNext = info.Seq + dataLen
		st.revSeen = true
		st.last = now
		ct.open[k] = st
		return false
	}
	if at, parked := ct.timeWait[k]; parked && (ct.clock == nil || now-at <= timeWaitTTL) {
		ct.responseLate++
		return false
	}
	ct.responsesChecked++
	ct.responseAdopts++
	ct.evictAtCapLocked()
	ct.open[k] = connState{last: now, revNext: info.Seq + dataLen, revSeen: true}
	return false
}

// Sweep reclaims open connections idle longer than the given deadline —
// half-open flows whose FIN was lost — and purges expired TIME_WAIT
// entries. Returns how many open entries it reclaimed. A no-op without a
// clock or with idle <= 0.
func (ct *Conntrack) Sweep(idle time.Duration) int {
	if ct.clock == nil || idle <= 0 {
		return 0
	}
	now := ct.now()
	ct.mu.Lock()
	defer ct.mu.Unlock()
	reclaimed := 0
	for k, st := range ct.open {
		if now-st.last > idle {
			delete(ct.open, k)
			reclaimed++
		}
	}
	ct.idleReclaimed += uint64(reclaimed)
	for k, at := range ct.timeWait {
		if now-at > timeWaitTTL {
			delete(ct.timeWait, k)
		}
	}
	return reclaimed
}

// Reset discards all connection state and zeroes the counters — the
// tracker's share of a gateway restart. The next packet of every live
// connection is picked up mid-stream (see UntrackedCloses).
func (ct *Conntrack) Reset() {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	clear(ct.open)
	clear(ct.timeWait)
	ct.ringPos, ct.ringLen = 0, 0
	ct.established, ct.closed = 0, 0
	ct.dupCloses, ct.lateSYNs, ct.untrackedCloses, ct.idleReclaimed = 0, 0, 0, 0
	ct.responsesChecked, ct.responseSeqDrops, ct.responseAdopts, ct.responseLate = 0, 0, 0, 0
}

// Stats snapshots the tracker's counters.
func (ct *Conntrack) Stats() ConntrackStats {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ConntrackStats{
		Established:      ct.established,
		Closed:           ct.closed,
		DupCloses:        ct.dupCloses,
		LateSYNs:         ct.lateSYNs,
		UntrackedCloses:  ct.untrackedCloses,
		IdleReclaimed:    ct.idleReclaimed,
		ResponsesChecked: ct.responsesChecked,
		ResponseSeqDrops: ct.responseSeqDrops,
		ResponseAdopts:   ct.responseAdopts,
		ResponseLate:     ct.responseLate,
		Open:             len(ct.open),
		TimeWait:         len(ct.timeWait),
	}
}
