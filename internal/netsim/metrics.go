package netsim

import "borderpatrol/internal/metrics"

// RegisterMetrics attaches the gateway's connection-tracker counters and
// restart count to a registry. Everything is exported through scrape-time
// closures over the conntrack's existing stats, so the packet path pays
// nothing. The enforcement stage registers itself separately (it may run
// without a gateway in unit benches).
func (g *Gateway) RegisterMetrics(r *metrics.Registry) {
	ct := g.ct
	const transHelp = "Connection-tracker state transitions by kind."
	r.CounterFunc("bp_conntrack_transitions_total", transHelp,
		func() uint64 { return ct.Stats().Established }, metrics.L("kind", "established"))
	r.CounterFunc("bp_conntrack_transitions_total", transHelp,
		func() uint64 { return ct.Stats().Closed }, metrics.L("kind", "closed"))
	r.CounterFunc("bp_conntrack_transitions_total", transHelp,
		func() uint64 { return ct.Stats().DupCloses }, metrics.L("kind", "dup_close"))
	r.CounterFunc("bp_conntrack_transitions_total", transHelp,
		func() uint64 { return ct.Stats().LateSYNs }, metrics.L("kind", "late_syn"))
	r.CounterFunc("bp_conntrack_transitions_total", transHelp,
		func() uint64 { return ct.Stats().UntrackedCloses }, metrics.L("kind", "untracked_close"))
	r.CounterFunc("bp_conntrack_transitions_total", transHelp,
		func() uint64 { return ct.Stats().IdleReclaimed }, metrics.L("kind", "idle_reclaimed"))

	const stateHelp = "Connections currently tracked, by state."
	r.GaugeFunc("bp_conntrack_connections", stateHelp,
		func() float64 { return float64(ct.Stats().Open) }, metrics.L("state", "open"))
	r.GaugeFunc("bp_conntrack_connections", stateHelp,
		func() float64 { return float64(ct.Stats().TimeWait) }, metrics.L("state", "time_wait"))

	// Response-direction (server→device) enforcement. The drop counter
	// lives in the bp_dataplane_* family: the directional verdict state is
	// the dataplane's, even though the continuity check runs in conntrack.
	const respHelp = "Response-direction segments checked, by outcome."
	r.CounterFunc("bp_conntrack_responses_total", respHelp,
		func() uint64 { return ct.Stats().ResponsesChecked }, metrics.L("outcome", "checked"))
	r.CounterFunc("bp_conntrack_responses_total", respHelp,
		func() uint64 { return ct.Stats().ResponseAdopts }, metrics.L("outcome", "adopted"))
	r.CounterFunc("bp_conntrack_responses_total", respHelp,
		func() uint64 { return ct.Stats().ResponseLate }, metrics.L("outcome", "late"))
	r.CounterFunc("bp_dataplane_seq_injection_drops_total",
		"Response segments dropped for breaking TCP sequence continuity (mid-stream injection).",
		func() uint64 { return ct.Stats().ResponseSeqDrops })

	r.CounterFunc("bp_gateway_restarts_total", "Gateway crash/reboot cycles.", g.Restarts)
	if dp := g.dp; dp != nil {
		dp.RegisterMetrics(r)
	}
}

// RegisterMetrics attaches the network's fault-injection counters to a
// registry. The closures read FaultStats, which is zero while no fault
// plan is armed, so the series exist (at zero) even on a clean network.
func (n *Network) RegisterMetrics(r *metrics.Registry) {
	const faultHelp = "Wire faults injected on the device-to-gateway path, by stage."
	r.CounterFunc("bp_netsim_faults_total", faultHelp,
		func() uint64 { return n.FaultStats().Drops }, metrics.L("stage", "drop"))
	r.CounterFunc("bp_netsim_faults_total", faultHelp,
		func() uint64 { return n.FaultStats().Duplicates }, metrics.L("stage", "duplicate"))
	r.CounterFunc("bp_netsim_faults_total", faultHelp,
		func() uint64 { return n.FaultStats().Reorders }, metrics.L("stage", "reorder"))
	r.CounterFunc("bp_netsim_faults_total", faultHelp,
		func() uint64 { return n.FaultStats().Delays }, metrics.L("stage", "delay"))
	r.CounterFunc("bp_netsim_faults_total", faultHelp,
		func() uint64 { return n.FaultStats().Corruptions }, metrics.L("stage", "corrupt"))
	r.CounterFunc("bp_netsim_faults_total", faultHelp,
		func() uint64 { return n.FaultStats().Truncations }, metrics.L("stage", "truncate"))
	r.CounterFunc("bp_netsim_fault_delay_virtual_ns_total",
		"Total virtual wire time charged by the delay fault.",
		func() uint64 { return uint64(n.FaultStats().DelayVirtual.Nanoseconds()) })
}
