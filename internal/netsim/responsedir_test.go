package netsim

import (
	"net/netip"
	"testing"

	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/transport"
)

// fwdPkt is a device→server segment on the canonical test tuple;
// respPkt is the server's reply on the reversed tuple.
func fwdPkt(flags byte, seq uint32, payload []byte) *ipv4.Packet {
	seg := transport.TCPSegment{
		SrcPort: 40900, DstPort: 443, Seq: seq,
		Flags: flags, Window: 65535, Payload: payload,
	}
	return &ipv4.Packet{
		Header: ipv4.Header{
			TTL: 64, Protocol: ipv4.ProtoTCP,
			Src: netip.MustParseAddr("10.66.0.2"),
			Dst: netip.MustParseAddr("93.184.216.34"),
		},
		Payload: seg.Marshal(),
	}
}

func respPkt(flags byte, seq uint32, payload []byte) *ipv4.Packet {
	seg := transport.TCPSegment{
		SrcPort: 443, DstPort: 40900, Seq: seq,
		Flags: flags, Window: 65535, Payload: payload,
	}
	return &ipv4.Packet{
		Header: ipv4.Header{
			TTL: 64, Protocol: ipv4.ProtoTCP,
			Src: netip.MustParseAddr("93.184.216.34"),
			Dst: netip.MustParseAddr("10.66.0.2"),
		},
		Payload: seg.Marshal(),
	}
}

// TestResponseSeqInjectionDropped: the response direction carries no tag,
// so what it gets is continuity — the first observed response primes the
// expected sequence number and a mid-stream segment that breaks it is
// dropped under its own counted cause (ResponseSeqDrops, exported as
// bp_dataplane_seq_injection_drops_total). Retransmissions of the next
// expected segment keep passing.
func TestResponseSeqInjectionDropped(t *testing.T) {
	ct := NewConntrack(nil)
	ct.Observe(fwdPkt(transport.FlagSYN, 1, nil))

	body := []byte("HTTP/1.1 200 OK\r\n\r\n")
	if ct.ObserveResponse(respPkt(transport.FlagPSH|transport.FlagACK, 5000, body)) {
		t.Fatal("priming response dropped")
	}
	next := 5000 + uint32(len(body))
	if ct.ObserveResponse(respPkt(transport.FlagPSH|transport.FlagACK, next, body)) {
		t.Fatal("continuous response dropped")
	}
	// Mid-stream injection: a crafted segment whose seq does not continue
	// the stream. Must be dropped, and counted as a seq drop — not as a
	// generic policy drop.
	if !ct.ObserveResponse(respPkt(transport.FlagPSH|transport.FlagACK, 99999, []byte("evil"))) {
		t.Fatal("injected discontinuous response accepted")
	}
	st := ct.Stats()
	if st.ResponseSeqDrops != 1 {
		t.Fatalf("seq drops = %d, want 1 (stats %+v)", st.ResponseSeqDrops, st)
	}
	if st.ResponsesChecked != 3 {
		t.Fatalf("responses checked = %d, want 3", st.ResponsesChecked)
	}
	// The legitimate stream is not poisoned by the drop: the real next
	// segment still passes.
	if ct.ObserveResponse(respPkt(transport.FlagPSH|transport.FlagACK, next+uint32(len(body)), body)) {
		t.Fatal("legitimate continuation dropped after injection")
	}
}

// TestResponseUnknownConnAdopted: a response for a connection the tracker
// never saw open (gateway restart, SYN predates it) is adopted, not
// dropped — fail-open here is on continuity only, never on policy, and
// adoption re-primes the check so the NEXT discontinuity is caught.
func TestResponseUnknownConnAdopted(t *testing.T) {
	ct := NewConntrack(nil)
	body := []byte("data")
	if ct.ObserveResponse(respPkt(transport.FlagPSH|transport.FlagACK, 700, body)) {
		t.Fatal("mid-stream adoption dropped the response")
	}
	st := ct.Stats()
	if st.ResponseAdopts != 1 || st.Open != 1 {
		t.Fatalf("adoption stats: %+v", st)
	}
	if !ct.ObserveResponse(respPkt(transport.FlagPSH|transport.FlagACK, 42, body)) {
		t.Fatal("post-adoption discontinuity accepted")
	}
	if st := ct.Stats(); st.ResponseSeqDrops != 1 {
		t.Fatalf("seq drops after adoption = %d, want 1", st.ResponseSeqDrops)
	}
}

// TestResponseInTimeWaitAccepted: a reply racing the close lands on a
// TIME_WAIT tuple and is accepted uncounted as a check — the teardown
// already fired, so there is no stream left to protect.
func TestResponseInTimeWaitAccepted(t *testing.T) {
	ct := NewConntrack(NewClock())
	ct.Observe(fwdPkt(transport.FlagSYN, 1, nil))
	ct.Observe(fwdPkt(transport.FlagFIN|transport.FlagACK, 2, nil))
	if ct.ObserveResponse(respPkt(transport.FlagPSH|transport.FlagACK, 1234, []byte("bye"))) {
		t.Fatal("late response dropped")
	}
	st := ct.Stats()
	if st.ResponseLate != 1 || st.ResponseSeqDrops != 0 {
		t.Fatalf("late-response stats: %+v", st)
	}
}

// TestGatewayProcessResponseDropsInjection exercises the gateway-level
// wrapper: ProcessResponse reports false for the injected segment and the
// drop shows up on the gateway's conntrack stats.
func TestGatewayProcessResponseDropsInjection(t *testing.T) {
	enf, _, _ := buildEnforcerAndDB(t)
	gw := NewGateway(GatewayConfig{Enforcer: enf})
	gw.ct.Observe(fwdPkt(transport.FlagSYN, 1, nil))

	body := []byte("HTTP/1.1 200 OK\r\n\r\n")
	if !gw.ProcessResponse(respPkt(transport.FlagPSH|transport.FlagACK, 9000, body)) {
		t.Fatal("priming response dropped")
	}
	if gw.ProcessResponse(respPkt(transport.FlagPSH|transport.FlagACK, 31337, []byte("evil"))) {
		t.Fatal("injected response delivered")
	}
	if ct := gw.Conntrack(); ct.ResponseSeqDrops != 1 {
		t.Fatalf("gateway seq drops = %d, want 1", ct.ResponseSeqDrops)
	}
}
