package netsim

import (
	"sync/atomic"
	"time"
)

// Clock is a virtual-time clock. The simulator charges component costs to
// it instead of sleeping, so experiments measuring milliseconds of
// per-request latency (paper Fig. 4) run in microseconds of wall time and
// produce deterministic numbers.
//
// The clock is a single atomic counter: Now is one load, so per-packet
// consumers on the gateway fast path (the flow table's TTL checks) read
// it without serializing on a lock.
type Clock struct {
	now atomic.Int64
}

// NewClock starts a clock at zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time since the clock's epoch.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.now.Load())
}

// Advance moves virtual time forward by d (negative d is ignored).
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.now.Add(int64(d))
}

// LatencyModel holds the per-component virtual-time costs of the testbed,
// calibrated so the six Fig. 4 configurations reproduce the paper's
// reported deltas: the Python NFQUEUE hop costs ≈1 ms (configs ii→iii), the
// Dalvik getStackTrace call ≈1.6 ms (iv→v), and the full system stays
// within ≈2.5 ms of baseline at roughly 2× relative overhead.
type LatencyModel struct {
	// SlirpPerPacket is QEMU user-mode networking cost per packet.
	SlirpPerPacket time.Duration
	// TapPerPacket is virtual TAP interface cost per packet.
	TapPerPacket time.Duration
	// NFQueueHopPerPacket is the kernel→user-space→kernel round trip into
	// the Python netfilterqueue reader.
	NFQueueHopPerPacket time.Duration
	// EnforcerPerPacket is tag extraction + decoding + rule evaluation in
	// the Policy Enforcer.
	EnforcerPerPacket time.Duration
	// SanitizerPerPacket is option stripping in the Packet Sanitizer.
	SanitizerPerPacket time.Duration
	// XposedHookPerSocket is the hook-dispatch overhead per created socket.
	XposedHookPerSocket time.Duration
	// GetStackTracePerSocket is the Java getStackTrace cost per socket.
	GetStackTracePerSocket time.Duration
	// EncodePerSocket is signature lookup + tag encoding per socket.
	EncodePerSocket time.Duration
	// SetsockoptPerSocket is the JNI + syscall cost per socket.
	SetsockoptPerSocket time.Duration
	// ServerProcessing is the local HTTP server's per-request time.
	ServerProcessing time.Duration
	// WireRTT is propagation on the host-local link.
	WireRTT time.Duration
}

// DefaultLatencyModel returns costs calibrated to the paper's testbed
// (quad-core i5-4570, Android emulator, local SimpleHTTPServer). The
// NFQueue hop is charged once per direction (request out through the
// queue, response reinjected back), so one HTTP request pays it twice:
// 2 × 450 µs ≈ the paper's +1 ms for configs ii→iii.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		SlirpPerPacket:         150 * time.Microsecond,
		TapPerPacket:           50 * time.Microsecond,
		NFQueueHopPerPacket:    450 * time.Microsecond,
		EnforcerPerPacket:      20 * time.Microsecond,
		SanitizerPerPacket:     10 * time.Microsecond,
		XposedHookPerSocket:    60 * time.Microsecond,
		GetStackTracePerSocket: 1500 * time.Microsecond, // the paper's ≈+1.6 ms
		EncodePerSocket:        30 * time.Microsecond,
		SetsockoptPerSocket:    10 * time.Microsecond,
		ServerProcessing:       500 * time.Microsecond,
		WireRTT:                1400 * time.Microsecond,
	}
}
