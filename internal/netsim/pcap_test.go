package netsim

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"

	"borderpatrol/internal/ipv4"
)

func capturePacket(seq byte, withOpt bool) *ipv4.Packet {
	p := &ipv4.Packet{
		Header: ipv4.Header{
			ID:       uint16(seq),
			TTL:      64,
			Protocol: ipv4.ProtoTCP,
			Src:      netip.AddrFrom4([4]byte{10, 0, 0, seq}),
			Dst:      netip.AddrFrom4([4]byte{198, 18, 0, seq}),
		},
		Payload: bytes.Repeat([]byte{seq}, int(seq)+1),
	}
	if withOpt {
		p.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: []byte{0x10, seq, seq, seq}})
	}
	return p
}

func TestCaptureRoundTrip(t *testing.T) {
	c := &Capture{}
	for i := byte(0); i < 10; i++ {
		c.Append(capturePacket(i, i%2 == 0))
	}
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := c.Packets()
	got := back.Packets()
	if len(got) != len(orig) {
		t.Fatalf("got %d packets, want %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].Header.ID != orig[i].Header.ID || got[i].Header.Dst != orig[i].Header.Dst {
			t.Fatalf("packet %d header mismatch", i)
		}
		if !bytes.Equal(got[i].Payload, orig[i].Payload) {
			t.Fatalf("packet %d payload mismatch", i)
		}
		o1, ok1 := orig[i].Header.FindOption(ipv4.OptSecurity)
		o2, ok2 := got[i].Header.FindOption(ipv4.OptSecurity)
		if ok1 != ok2 || (ok1 && !bytes.Equal(o1.Data, o2.Data)) {
			t.Fatalf("packet %d option mismatch", i)
		}
	}
}

func TestCaptureEmptyRoundTrip(t *testing.T) {
	c := &Capture{}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatal("phantom packets")
	}
}

func TestReadCaptureErrors(t *testing.T) {
	if _, err := ReadCapture(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadCapture(bytes.NewReader([]byte{1, 2, 3, 4, 0, 1})); !errors.Is(err, ErrBadCaptureMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Right magic, wrong version.
	bad := []byte{0xB0, 0xDE, 0x4A, 0x7C, 0x00, 0x09}
	if _, err := ReadCapture(bytes.NewReader(bad)); !errors.Is(err, ErrBadCaptureVersion) {
		t.Errorf("bad version: %v", err)
	}
	// Truncated record.
	c := &Capture{}
	c.Append(capturePacket(1, true))
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadCapture(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated record accepted")
	}
	// Corrupt record length.
	data := append([]byte(nil), buf.Bytes()...)
	data[6], data[7], data[8], data[9] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadCapture(bytes.NewReader(data)); err == nil {
		t.Error("oversized record accepted")
	}
}
