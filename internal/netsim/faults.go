package netsim

import (
	"sync/atomic"
	"time"

	"borderpatrol/internal/ipv4"
)

// FaultPlan configures deterministic, seeded fault injection on the wire
// between the devices and the gateway. Probabilities are per packet in
// [0, 1]; a zero plan injects nothing. The same seed over the same traffic
// yields the same fault sequence, so a failing soak run replays exactly.
type FaultPlan struct {
	// Seed initializes the fault PRNG.
	Seed uint64
	// Drop loses the packet on the wire (counted as StageFault).
	Drop float64
	// Duplicate delivers the packet twice.
	Duplicate float64
	// Reorder swaps the packet with its neighbour within a DeliverBatch
	// burst (the scalar Deliver path has no burst to reorder within).
	Reorder float64
	// Delay charges extra virtual wire time in [DelayMin, DelayMax].
	Delay float64
	// Corrupt flips a payload byte. The IPv4 header — including the
	// IP_OPTIONS tag — is never touched: BorderPatrol's threat model puts
	// faults on the wire data, and the fail-safe property under test is
	// that no payload damage converts a deny into a delivery.
	Corrupt float64
	// Truncate cuts the payload short (header again untouched).
	Truncate float64
	// DelayMin and DelayMax bound the virtual delay charged when Delay
	// fires (DelayMax <= DelayMin charges DelayMin).
	DelayMin, DelayMax time.Duration
}

// FaultStats counts injected faults.
type FaultStats struct {
	Drops       uint64
	Duplicates  uint64
	Reorders    uint64
	Delays      uint64
	Corruptions uint64
	Truncations uint64
	// DelayVirtual is the total virtual wire time the Delay fault charged.
	DelayVirtual time.Duration
}

// Faults is a FaultPlan armed with a PRNG and counters. All methods are
// lock-free (the PRNG state advances with one atomic add), so the parallel
// batch paths share one instance without serializing.
type Faults struct {
	plan  FaultPlan
	state atomic.Uint64

	// Probabilities precomputed to uint32-scaled thresholds: a roll fires
	// when next()&0xffffffff < threshold, so p==0 can never fire and p==1
	// always does.
	drop, dup, reorder, delay, corrupt, truncate uint64
	delayMin, delaySpan                          int64

	drops       atomic.Uint64
	dups        atomic.Uint64
	reorders    atomic.Uint64
	delays      atomic.Uint64
	corrupts    atomic.Uint64
	truncates   atomic.Uint64
	delayedTime atomic.Int64
}

// threshold scales a probability to the 32-bit comparison domain.
func threshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << 32
	}
	return uint64(p * (1 << 32))
}

// NewFaults arms a plan.
func NewFaults(plan FaultPlan) *Faults {
	f := &Faults{
		plan:     plan,
		drop:     threshold(plan.Drop),
		dup:      threshold(plan.Duplicate),
		reorder:  threshold(plan.Reorder),
		delay:    threshold(plan.Delay),
		corrupt:  threshold(plan.Corrupt),
		truncate: threshold(plan.Truncate),
		delayMin: int64(plan.DelayMin),
	}
	if span := int64(plan.DelayMax - plan.DelayMin); span > 0 {
		f.delaySpan = span
	}
	f.state.Store(plan.Seed)
	return f
}

// next is a splitmix64 step: the sequence position advances with a single
// atomic add, so concurrent rollers draw disjoint values without locking.
func (f *Faults) next() uint64 {
	x := f.state.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll fires with the precomputed threshold's probability; a zero
// threshold returns false without burning a PRNG step.
func (f *Faults) roll(t uint64) bool {
	if t == 0 {
		return false
	}
	return f.next()&0xffffffff < t
}

func (f *Faults) rollDrop() bool {
	if f.roll(f.drop) {
		f.drops.Add(1)
		return true
	}
	return false
}

func (f *Faults) rollDup() bool {
	if f.roll(f.dup) {
		f.dups.Add(1)
		return true
	}
	return false
}

func (f *Faults) rollReorder() bool {
	if f.roll(f.reorder) {
		f.reorders.Add(1)
		return true
	}
	return false
}

// rollDelay returns the virtual wire delay to charge (zero = no delay).
func (f *Faults) rollDelay() time.Duration {
	if !f.roll(f.delay) {
		return 0
	}
	d := f.delayMin
	if f.delaySpan > 0 {
		d += int64(f.next() % uint64(f.delaySpan+1))
	}
	if d <= 0 {
		return 0
	}
	f.delays.Add(1)
	f.delayedTime.Add(d)
	return time.Duration(d)
}

// mutate applies corruption/truncation rolls to pkt's payload and returns
// the damaged clone, or nil when no mutation fired. The original packet —
// and its IPv4 header with the tag option — is never modified.
func (f *Faults) mutate(pkt *ipv4.Packet) *ipv4.Packet {
	doCorrupt := f.roll(f.corrupt) && len(pkt.Payload) > 0
	doTrunc := f.roll(f.truncate) && len(pkt.Payload) > 0
	if !doCorrupt && !doTrunc {
		return nil
	}
	out := pkt.Clone()
	if doCorrupt {
		pos := int(f.next() % uint64(len(out.Payload)))
		// XOR with a non-zero byte so the flip always changes the payload.
		out.Payload[pos] ^= byte(f.next()%255) + 1
		f.corrupts.Add(1)
	}
	if doTrunc && len(out.Payload) > 0 {
		out.Payload = out.Payload[:int(f.next()%uint64(len(out.Payload)))]
		f.truncates.Add(1)
	}
	return out
}

// Stats snapshots the fault counters.
func (f *Faults) Stats() FaultStats {
	return FaultStats{
		Drops:        f.drops.Load(),
		Duplicates:   f.dups.Load(),
		Reorders:     f.reorders.Load(),
		Delays:       f.delays.Load(),
		Corruptions:  f.corrupts.Load(),
		Truncations:  f.truncates.Load(),
		DelayVirtual: time.Duration(f.delayedTime.Load()),
	}
}
