package netsim

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/transport"
)

// ctSeg builds a bare TCP control/data segment between fixed hosts for
// driving the tracker directly — no tagging or enforcement involved.
func ctSeg(srcPort uint16, flags byte) *ipv4.Packet {
	seg := transport.TCPSegment{
		SrcPort: srcPort, DstPort: 443, Seq: 1, Flags: flags, Window: 65535,
	}
	return &ipv4.Packet{
		Header: ipv4.Header{
			Protocol: ipv4.ProtoTCP,
			Src:      netip.MustParseAddr("10.66.0.2"),
			Dst:      netip.MustParseAddr("192.0.2.10"),
		},
		Payload: seg.Marshal(),
	}
}

// TestConntrackDuplicateFIN: a retransmitted FIN still reports connClosed
// (EndFlow is idempotent, teardown is the safe direction) but must not
// count a second close.
func TestConntrackDuplicateFIN(t *testing.T) {
	clk := NewClock()
	ct := NewConntrack(clk)
	ct.Observe(ctSeg(40000, transport.FlagSYN))
	if !ct.Observe(ctSeg(40000, transport.FlagFIN|transport.FlagACK)) {
		t.Fatal("first FIN did not close")
	}
	if !ct.Observe(ctSeg(40000, transport.FlagFIN|transport.FlagACK)) {
		t.Fatal("duplicate FIN must still report closed (idempotent teardown)")
	}
	st := ct.Stats()
	if st.Established != 1 || st.Closed != 1 || st.DupCloses != 1 {
		t.Fatalf("stats = %+v, want 1 established / 1 closed / 1 dup", st)
	}
	if st.Open != 0 || st.TimeWait != 1 {
		t.Fatalf("tables = %+v, want 0 open / 1 time-wait", st)
	}
}

// TestConntrackRSTAfterFIN: an RST landing after the FIN already closed
// the connection is a duplicate close, not a second one.
func TestConntrackRSTAfterFIN(t *testing.T) {
	ct := NewConntrack(NewClock())
	ct.Observe(ctSeg(40001, transport.FlagSYN))
	ct.Observe(ctSeg(40001, transport.FlagFIN|transport.FlagACK))
	if !ct.Observe(ctSeg(40001, transport.FlagRST)) {
		t.Fatal("RST-after-FIN must still report closed")
	}
	st := ct.Stats()
	if st.Closed != 1 || st.DupCloses != 1 {
		t.Fatalf("stats = %+v, want 1 closed / 1 dup", st)
	}
}

// TestConntrackLateSYNNoResurrection: a delayed handshake retransmission
// arriving while the tuple sits in TIME_WAIT must not re-establish the
// dead connection; after TIME_WAIT expires the tuple is reusable.
func TestConntrackLateSYNNoResurrection(t *testing.T) {
	clk := NewClock()
	ct := NewConntrack(clk)
	ct.Observe(ctSeg(40002, transport.FlagSYN))
	ct.Observe(ctSeg(40002, transport.FlagFIN|transport.FlagACK))

	ct.Observe(ctSeg(40002, transport.FlagSYN)) // reordered dup of the original SYN
	st := ct.Stats()
	if st.Established != 1 || st.LateSYNs != 1 || st.Open != 0 {
		t.Fatalf("late SYN resurrected the flow: %+v", st)
	}

	// Past TIME_WAIT the 5-tuple is legitimately reusable.
	clk.Advance(timeWaitTTL + time.Second)
	ct.Observe(ctSeg(40002, transport.FlagSYN))
	st = ct.Stats()
	if st.Established != 2 || st.Open != 1 || st.TimeWait != 0 {
		t.Fatalf("tuple not reusable after TIME_WAIT expiry: %+v", st)
	}
}

// TestConntrackDuplicateSYN: a SYN retransmission for a live connection
// refreshes activity without counting a second establishment.
func TestConntrackDuplicateSYN(t *testing.T) {
	ct := NewConntrack(NewClock())
	ct.Observe(ctSeg(40003, transport.FlagSYN))
	ct.Observe(ctSeg(40003, transport.FlagSYN))
	st := ct.Stats()
	if st.Established != 1 || st.Open != 1 {
		t.Fatalf("dup SYN double-established: %+v", st)
	}
}

// TestConntrackUntrackedClose: a FIN for a connection the tracker never
// saw open (gateway restarted mid-stream) still fires teardown.
func TestConntrackUntrackedClose(t *testing.T) {
	ct := NewConntrack(NewClock())
	if !ct.Observe(ctSeg(40004, transport.FlagFIN|transport.FlagACK)) {
		t.Fatal("untracked FIN must still report closed")
	}
	st := ct.Stats()
	if st.UntrackedCloses != 1 || st.Closed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestConntrackSweep: idle open connections (lost FINs) are reclaimed by
// the GC sweep; fresh ones survive; expired TIME_WAIT entries are purged.
func TestConntrackSweep(t *testing.T) {
	clk := NewClock()
	ct := NewConntrack(clk)
	ct.Observe(ctSeg(40005, transport.FlagSYN)) // will go idle
	ct.Observe(ctSeg(40006, transport.FlagSYN))
	ct.Observe(ctSeg(40006, transport.FlagFIN|transport.FlagACK)) // parks in TIME_WAIT

	clk.Advance(2 * time.Minute)
	ct.Observe(ctSeg(40007, transport.FlagSYN)) // fresh at sweep time

	if got := ct.Sweep(time.Minute); got != 1 {
		t.Fatalf("sweep reclaimed %d, want 1", got)
	}
	st := ct.Stats()
	if st.IdleReclaimed != 1 || st.Open != 1 || st.TimeWait != 0 {
		t.Fatalf("post-sweep: %+v", st)
	}

	// No clock or non-positive idle: the sweep is a no-op.
	if got := (NewConntrack(nil)).Sweep(time.Minute); got != 0 {
		t.Fatalf("clockless sweep reclaimed %d", got)
	}
	if got := ct.Sweep(0); got != 0 {
		t.Fatalf("idle<=0 sweep reclaimed %d", got)
	}
}

// TestConntrackReset: a gateway restart discards all state and counters;
// in-flight connections are then picked up mid-stream.
func TestConntrackReset(t *testing.T) {
	ct := NewConntrack(NewClock())
	ct.Observe(ctSeg(40008, transport.FlagSYN))
	ct.Observe(ctSeg(40009, transport.FlagSYN))
	ct.Observe(ctSeg(40009, transport.FlagFIN|transport.FlagACK))
	ct.Reset()
	st := ct.Stats()
	if st != (ConntrackStats{}) {
		t.Fatalf("reset left state: %+v", st)
	}
	if !ct.Observe(ctSeg(40008, transport.FlagFIN|transport.FlagACK)) {
		t.Fatal("post-restart FIN must fire teardown")
	}
	if st := ct.Stats(); st.UntrackedCloses != 1 {
		t.Fatalf("post-restart close not counted untracked: %+v", st)
	}
}

// TestConntrackTimeWaitBound: the TIME_WAIT ring caps parked connections
// at maxTimeWait, releasing the oldest early.
func TestConntrackTimeWaitBound(t *testing.T) {
	ct := NewConntrack(NewClock())
	over := maxTimeWait + 100
	for i := 0; i < over; i++ {
		// Vary both ports to get distinct 5-tuples beyond the uint16 range.
		seg := transport.TCPSegment{
			SrcPort: uint16(i), DstPort: uint16(40000 + i/65536), Seq: 1,
			Flags: transport.FlagFIN | transport.FlagACK, Window: 65535,
		}
		pkt := &ipv4.Packet{
			Header: ipv4.Header{
				Protocol: ipv4.ProtoTCP,
				Src:      netip.MustParseAddr("10.66.0.2"),
				Dst:      netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", i%200+1)),
			},
			Payload: seg.Marshal(),
		}
		ct.Observe(pkt)
	}
	if st := ct.Stats(); st.TimeWait > maxTimeWait {
		t.Fatalf("TIME_WAIT table unbounded: %d > %d", st.TimeWait, maxTimeWait)
	}
}
