package netsim

import (
	"testing"

	"borderpatrol/internal/httpsim"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/sanitizer"
)

func TestRouteStrings(t *testing.T) {
	if RouteDirect.String() != "direct" || RouteVPN.String() != "vpn" || RouteMobile.String() != "mobile" {
		t.Error("route names")
	}
	if Route(99).String() == "" {
		t.Error("unknown route must render")
	}
}

func TestVPNRouteStillEnforced(t *testing.T) {
	// Off-premises work traffic tunnels back through the gateway: the
	// sanitizer still cleanses, and the latency includes the tunnel cost.
	gw := NewGateway(GatewayConfig{Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)
	pkt := plainPacket(getRequest())
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: []byte{1, 2, 3}})

	d := n.DeliverRoute(pkt, RouteVPN)
	if !d.Delivered {
		t.Fatalf("vpn-routed packet dropped: %+v", d)
	}
	if d.Latency < VPNPerPacket {
		t.Fatalf("vpn latency %v below tunnel cost", d.Latency)
	}
	if gw.Sanitizer().Stats().Cleansed != 1 {
		t.Fatal("gateway did not process vpn traffic")
	}
}

func TestMobileRouteBypassesGatewayButNotBorder(t *testing.T) {
	gw := NewGateway(GatewayConfig{Sanitizer: sanitizer.New(sanitizer.Config{})})
	n := newStaticNetwork(ModeTAP, gw)

	// Personal traffic (untagged) flows over mobile without the gateway.
	d := n.DeliverRoute(plainPacket(getRequest()), RouteMobile)
	if !d.Delivered {
		t.Fatalf("personal mobile traffic dropped: %+v", d)
	}
	if gw.Sanitizer().Stats().Processed != 0 {
		t.Fatal("mobile traffic touched the corporate gateway")
	}

	// A tagged packet leaking onto the mobile path never reaches the
	// sanitizer, so the carrier's RFC 7126 filtering drops it — context
	// data does not escape unsanitized.
	tagged := plainPacket(getRequest())
	tagged.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: []byte{9, 9}})
	d = n.DeliverRoute(tagged, RouteMobile)
	if d.Delivered || d.Stage != StageBorder {
		t.Fatalf("tagged mobile packet: %+v", d)
	}
}

func TestDirectRouteEqualsDeliver(t *testing.T) {
	n := newStaticNetwork(ModeTAP, nil)
	d1 := n.DeliverRoute(plainPacket(getRequest()), RouteDirect)
	n2 := newStaticNetwork(ModeTAP, nil)
	d2 := n2.Deliver(plainPacket(getRequest()))
	if d1.Delivered != d2.Delivered || d1.Latency != d2.Latency {
		t.Fatalf("direct route diverges from Deliver: %+v vs %+v", d1, d2)
	}
}

func TestMobileLatencyExceedsDirect(t *testing.T) {
	n := NewNetwork(ModeTAP, DefaultLatencyModel())
	n.AddServer(&Server{Addr: serverAddr(), Handler: httpsim.StaticHandler(nil)})
	direct := n.DeliverRoute(plainPacket(getRequest()), RouteDirect)
	mobile := n.DeliverRoute(plainPacket(getRequest()), RouteMobile)
	if mobile.Latency <= direct.Latency {
		t.Fatalf("mobile %v must exceed direct %v", mobile.Latency, direct.Latency)
	}
}
