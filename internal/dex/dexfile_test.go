package dex

import (
	"strings"
	"testing"
)

// buildTestAPK assembles a small two-class app used across the dex tests.
func buildTestAPK() *APK {
	return &APK{
		PackageName: "com.example.app",
		Label:       "Example",
		Category:    "BUSINESS",
		VersionCode: 7,
		Downloads:   1000,
		Dexes: []*File{{
			Classes: []ClassDef{
				{
					Package: "com/example/app",
					Name:    "Main",
					Super:   "android/app/Activity",
					Methods: []MethodDef{
						{Name: "onCreate", Proto: "(Landroid/os/Bundle;)V", File: "Main.java", StartLine: 10, EndLine: 40},
						{Name: "upload", Proto: "(Ljava/lang/String;)V", File: "Main.java", StartLine: 50, EndLine: 80},
						{Name: "upload", Proto: "([B)V", File: "Main.java", StartLine: 90, EndLine: 120},
					},
				},
				{
					Package: "com/flurry/sdk",
					Name:    "Analytics",
					Super:   "java/lang/Object",
					Methods: []MethodDef{
						{Name: "report", Proto: "()V", File: "Analytics.java", StartLine: 5, EndLine: 30},
					},
				},
			},
		}},
	}
}

func TestDexSignaturesSortedAndComplete(t *testing.T) {
	apk := buildTestAPK()
	sigs := apk.Dexes[0].Signatures()
	if len(sigs) != 4 {
		t.Fatalf("got %d signatures, want 4", len(sigs))
	}
	for i := 1; i < len(sigs); i++ {
		if Compare(sigs[i-1], sigs[i]) >= 0 {
			t.Errorf("signatures not strictly ordered at %d: %s then %s", i, sigs[i-1], sigs[i])
		}
	}
	// com/example < com/flurry lexicographically.
	if sigs[0].Package != "com/example/app" {
		t.Errorf("first signature package = %q", sigs[0].Package)
	}
	if sigs[len(sigs)-1].Package != "com/flurry/sdk" {
		t.Errorf("last signature package = %q", sigs[len(sigs)-1].Package)
	}
}

func TestDexValidate(t *testing.T) {
	apk := buildTestAPK()
	if err := apk.Validate(); err != nil {
		t.Fatalf("valid apk rejected: %v", err)
	}

	dup := buildTestAPK()
	dup.Dexes[0].Classes[0].Methods = append(dup.Dexes[0].Classes[0].Methods,
		MethodDef{Name: "upload", Proto: "([B)V", File: "Main.java", StartLine: 200, EndLine: 210})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate signature accepted")
	}

	overlap := buildTestAPK()
	overlap.Dexes[0].Classes[0].Methods[2].StartLine = 60 // overlaps first upload overload
	if err := overlap.Validate(); err == nil {
		t.Error("overlapping overload line ranges accepted")
	} else if !strings.Contains(err.Error(), "overlapping") {
		t.Errorf("unexpected error: %v", err)
	}

	inverted := buildTestAPK()
	inverted.Dexes[0].Classes[0].Methods[0].EndLine = 5
	if err := inverted.Validate(); err == nil {
		t.Error("inverted line range accepted")
	}

	empty := &APK{PackageName: "x"}
	if err := empty.Validate(); err == nil {
		t.Error("apk without dex accepted")
	}
}

func TestAPKHashDeterministicAndSensitive(t *testing.T) {
	a := buildTestAPK()
	b := buildTestAPK()
	if a.HashHex() != b.HashHex() {
		t.Fatal("identical apks hash differently")
	}
	b.VersionCode = 8
	b.Invalidate()
	if a.HashHex() == b.HashHex() {
		t.Fatal("version change did not change hash")
	}
	c := buildTestAPK()
	c.Dexes[0].Classes[0].Methods[0].StartLine = 11
	c.Invalidate()
	if a.HashHex() == c.HashHex() {
		t.Fatal("method change did not change hash")
	}
}

func TestAPKHashOrderInsensitiveToClassOrder(t *testing.T) {
	a := buildTestAPK()
	b := buildTestAPK()
	b.Dexes[0].Classes[0], b.Dexes[0].Classes[1] = b.Dexes[0].Classes[1], b.Dexes[0].Classes[0]
	if a.HashHex() != b.HashHex() {
		t.Fatal("class declaration order changed hash; serialization must canonicalize")
	}
}

func TestTruncatedHash(t *testing.T) {
	a := buildTestAPK()
	tr := a.Truncated()
	full := a.Hash()
	for i := 0; i < TruncatedHashSize; i++ {
		if tr[i] != full[i] {
			t.Fatalf("truncated hash byte %d mismatch", i)
		}
	}
	parsed, err := ParseTruncatedHash(tr.String())
	if err != nil {
		t.Fatalf("ParseTruncatedHash: %v", err)
	}
	if parsed != tr {
		t.Fatal("truncated hash round trip failed")
	}
	if _, err := ParseTruncatedHash("zz"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := ParseTruncatedHash("aabb"); err == nil {
		t.Error("short hash accepted")
	}
}

func TestMultiDexDetection(t *testing.T) {
	a := buildTestAPK()
	if a.MultiDex() {
		t.Fatal("single dex reported as multi-dex")
	}
	a.Dexes = append(a.Dexes, &File{Classes: []ClassDef{{
		Package: "com/extra",
		Name:    "More",
		Methods: []MethodDef{{Name: "go", Proto: "()V", File: "More.java", StartLine: 1, EndLine: 2}},
	}}})
	a.Invalidate()
	if !a.MultiDex() {
		t.Fatal("multi-dex apk not detected")
	}
	// Global index ordering: dex 0 signatures come before dex 1 signatures.
	sigs := a.Signatures()
	if len(sigs) != 5 {
		t.Fatalf("got %d signatures, want 5", len(sigs))
	}
	if sigs[4].Package != "com/extra" {
		t.Fatalf("second dex signatures must come last, got %s", sigs[4])
	}
}

func TestDexMethodLimit(t *testing.T) {
	// A dex just over the Dalvik limit must fail validation.
	classes := make([]ClassDef, 1)
	methods := make([]MethodDef, MaxMethodsPerDex+1)
	for i := range methods {
		methods[i] = MethodDef{
			Name:      "m" + itoa(i),
			Proto:     "()V",
			File:      "Big.java",
			StartLine: i * 2,
			EndLine:   i*2 + 1,
		}
	}
	classes[0] = ClassDef{Package: "com/big", Name: "Big", Methods: methods}
	d := &File{Classes: classes}
	if err := d.Validate(); err == nil {
		t.Fatal("dex over the method limit accepted")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
