package dex

import "testing"

func TestLineTableResolveExactOverload(t *testing.T) {
	apk := buildTestAPK()
	lt := NewLineTable(apk)

	sig, ok := lt.Resolve(Frame{Class: "com/example/app/Main", Method: "upload", File: "Main.java", Line: 55})
	if !ok {
		t.Fatal("frame not resolved")
	}
	if sig.Proto != "(Ljava/lang/String;)V" {
		t.Fatalf("line 55 resolved to wrong overload: %s", sig)
	}

	sig, ok = lt.Resolve(Frame{Class: "com/example/app/Main", Method: "upload", File: "Main.java", Line: 100})
	if !ok || sig.Proto != "([B)V" {
		t.Fatalf("line 100 resolved to %v (ok=%v), want byte-array overload", sig, ok)
	}
}

func TestLineTableResolveSingleMethodIgnoresLine(t *testing.T) {
	apk := buildTestAPK()
	lt := NewLineTable(apk)
	// Non-overloaded methods resolve even with a bogus line number.
	sig, ok := lt.Resolve(Frame{Class: "com/flurry/sdk/Analytics", Method: "report", Line: 9999})
	if !ok || sig.Name != "report" {
		t.Fatalf("single method did not resolve: %v ok=%v", sig, ok)
	}
}

func TestLineTableFrameworkFramesDropped(t *testing.T) {
	apk := buildTestAPK()
	lt := NewLineTable(apk)
	if _, ok := lt.Resolve(Frame{Class: "java/net/Socket", Method: "connect", Line: 10}); ok {
		t.Fatal("framework frame resolved; it is not in the app dex")
	}
}

func TestLineTableStrippedOverApproximates(t *testing.T) {
	apk := buildTestAPK()
	apk.Dexes[0].DebugStripped = true
	lt := NewLineTable(apk)
	if !lt.Stripped() {
		t.Fatal("stripped flag lost")
	}
	sig, ok := lt.Resolve(Frame{Class: "com/example/app/Main", Method: "upload", Line: 55})
	if !ok {
		t.Fatal("stripped frame not resolved")
	}
	if !sig.Merged() {
		t.Fatalf("stripped overload resolution must merge, got %s", sig)
	}
	if sig.Name != "upload" {
		t.Fatalf("merged signature lost method name: %s", sig)
	}
}

func TestLineTableUnknownLineOverApproximates(t *testing.T) {
	apk := buildTestAPK()
	lt := NewLineTable(apk)
	// A line outside every overload range cannot disambiguate.
	sig, ok := lt.Resolve(Frame{Class: "com/example/app/Main", Method: "upload", Line: 999})
	if !ok || !sig.Merged() {
		t.Fatalf("unknown line must merge overloads, got %v ok=%v", sig, ok)
	}
}

func TestResolveStackOrderAndFiltering(t *testing.T) {
	apk := buildTestAPK()
	lt := NewLineTable(apk)
	frames := []Frame{
		{Class: "java/net/Socket", Method: "connect", Line: 1},          // framework, dropped
		{Class: "com/flurry/sdk/Analytics", Method: "report", Line: 10}, // kept
		{Class: "com/example/app/Main", Method: "onCreate", Line: 20},   // kept
		{Class: "android/app/Activity", Method: "performCreate"},        // framework, dropped
	}
	sigs := lt.ResolveStack(frames)
	if len(sigs) != 2 {
		t.Fatalf("got %d signatures, want 2", len(sigs))
	}
	if sigs[0].Package != "com/flurry/sdk" || sigs[1].Name != "onCreate" {
		t.Fatalf("stack order not preserved: %v", sigs)
	}
}

func TestFrameString(t *testing.T) {
	f := Frame{Class: "com/a/B", Method: "m", File: "B.java", Line: 3}
	if got := f.String(); got != "com/a/B.m(B.java:3)" {
		t.Fatalf("Frame.String() = %q", got)
	}
}
