package dex

import (
	"fmt"
	"sort"
)

// MethodDef is a method definition inside a class, carrying the debug
// metadata the Dalvik format stores alongside bytecode: the source file and
// the line range occupied by the method body. BorderPatrol's Context
// Manager uses line numbers to disambiguate overloaded methods that share a
// name (paper §II-A, Fig. 2).
type MethodDef struct {
	Name      string
	Proto     string
	File      string
	StartLine int
	EndLine   int
}

// ClassDef is a class definition: a simple name within a package plus its
// method definitions and superclass reference.
type ClassDef struct {
	Package string
	Name    string
	Super   string
	Methods []MethodDef
}

// Path returns the fully-qualified class path ("com/pkg/Class").
func (c *ClassDef) Path() string {
	if c.Package == "" {
		return c.Name
	}
	return c.Package + "/" + c.Name
}

// File is one classes.dex within an apk. The Dalvik format caps a single
// dex at 65,536 method references; larger apps ship multiple dex files
// (paper §VII "Multi-dex file applications").
type File struct {
	Classes []ClassDef
	// DebugStripped marks a dex whose line tables were removed (e.g. by a
	// release build); frame resolution then over-approximates overloads.
	DebugStripped bool
}

// MaxMethodsPerDex is the Dalvik method-reference limit for one dex file.
const MaxMethodsPerDex = 65536

// MethodCount returns the number of method definitions in the dex.
func (f *File) MethodCount() int {
	n := 0
	for i := range f.Classes {
		n += len(f.Classes[i].Methods)
	}
	return n
}

// Signatures returns every method signature in the dex in the canonical
// deterministic order (package, class, name, proto). The position of a
// signature in this list is its BorderPatrol index within the dex.
func (f *File) Signatures() []Signature {
	sigs := make([]Signature, 0, f.MethodCount())
	for i := range f.Classes {
		c := &f.Classes[i]
		for _, m := range c.Methods {
			sigs = append(sigs, Signature{
				Package: c.Package,
				Class:   c.Name,
				Name:    m.Name,
				Proto:   m.Proto,
			})
		}
	}
	sort.Slice(sigs, func(i, j int) bool { return Compare(sigs[i], sigs[j]) < 0 })
	return sigs
}

// Validate checks dex-level invariants: method count under the Dalvik
// limit, unique signatures, and non-overlapping line ranges for overloads
// within a class (the property line-number disambiguation depends on).
func (f *File) Validate() error {
	if f.MethodCount() > MaxMethodsPerDex {
		return fmt.Errorf("dex: %d methods exceeds Dalvik limit %d", f.MethodCount(), MaxMethodsPerDex)
	}
	seen := make(map[string]struct{}, f.MethodCount())
	for i := range f.Classes {
		c := &f.Classes[i]
		byNameFile := make(map[string][]MethodDef)
		for _, m := range c.Methods {
			sig := Signature{Package: c.Package, Class: c.Name, Name: m.Name, Proto: m.Proto}
			key := sig.String()
			if _, dup := seen[key]; dup {
				return fmt.Errorf("dex: duplicate signature %s", key)
			}
			seen[key] = struct{}{}
			if m.StartLine > m.EndLine {
				return fmt.Errorf("dex: %s has inverted line range [%d,%d]", key, m.StartLine, m.EndLine)
			}
			byNameFile[m.Name+"\x00"+m.File] = append(byNameFile[m.Name+"\x00"+m.File], m)
		}
		if f.DebugStripped {
			continue
		}
		for key, overloads := range byNameFile {
			if len(overloads) < 2 {
				continue
			}
			sort.Slice(overloads, func(i, j int) bool { return overloads[i].StartLine < overloads[j].StartLine })
			for i := 1; i < len(overloads); i++ {
				if overloads[i].StartLine <= overloads[i-1].EndLine {
					return fmt.Errorf("dex: overlapping line ranges for overloads of %s in class %s", key, c.Path())
				}
			}
		}
	}
	return nil
}
