package dex

import (
	"crypto/md5"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// APK is an Android application package: identifying metadata plus one or
// more dex files. The apk's MD5 hash keys its signature mapping in the
// Offline Analyzer database and (truncated to 8 bytes) identifies the app
// inside every tagged packet (paper §IV-A1, §VII "Hash collision").
type APK struct {
	// PackageName is the Android application id (dot form, e.g.
	// "com.dropbox.android").
	PackageName string
	// Label is the human-readable app name.
	Label string
	// Category is the Play-store category ("BUSINESS", "PRODUCTIVITY", ...).
	Category string
	// VersionCode distinguishes app versions; different versions hash
	// differently and therefore need separate database entries (paper §VII
	// "Ease of use").
	VersionCode int
	// Downloads approximates Play-store popularity, used to rank apps.
	Downloads int64

	Dexes []*File

	hash     [md5.Size]byte
	hashSet  bool
	sigCache []Signature
}

// HashSize is the size in bytes of a full apk hash.
const HashSize = md5.Size

// TruncatedHashSize is the number of hash bytes carried in a packet tag.
const TruncatedHashSize = 8

// TruncatedHash is the 8-byte app identifier embedded in IP_OPTIONS.
type TruncatedHash [TruncatedHashSize]byte

// String renders the truncated hash as lowercase hex.
func (t TruncatedHash) String() string { return hex.EncodeToString(t[:]) }

// ParseTruncatedHash parses a 16-hex-digit truncated hash.
func ParseTruncatedHash(s string) (TruncatedHash, error) {
	var t TruncatedHash
	b, err := hex.DecodeString(s)
	if err != nil {
		return t, fmt.Errorf("dex: bad truncated hash %q: %w", s, err)
	}
	if len(b) != TruncatedHashSize {
		return t, fmt.Errorf("dex: truncated hash %q has %d bytes, want %d", s, len(b), TruncatedHashSize)
	}
	copy(t[:], b)
	return t, nil
}

// Hash returns the MD5 of the apk's canonical serialization. The
// serialization is deterministic: identical logical packages always produce
// identical hashes, mirroring how the paper hashes the apk file bytes.
func (a *APK) Hash() [HashSize]byte {
	if !a.hashSet {
		h := md5.New()
		var scratch [8]byte
		writeStr := func(s string) {
			binary.BigEndian.PutUint32(scratch[:4], uint32(len(s)))
			h.Write(scratch[:4])
			h.Write([]byte(s))
		}
		writeInt := func(v int64) {
			binary.BigEndian.PutUint64(scratch[:], uint64(v))
			h.Write(scratch[:])
		}
		writeStr(a.PackageName)
		writeStr(a.Label)
		writeStr(a.Category)
		writeInt(int64(a.VersionCode))
		writeInt(int64(len(a.Dexes)))
		for _, d := range a.Dexes {
			classes := make([]*ClassDef, len(d.Classes))
			for i := range d.Classes {
				classes[i] = &d.Classes[i]
			}
			sort.Slice(classes, func(i, j int) bool { return classes[i].Path() < classes[j].Path() })
			writeInt(int64(len(classes)))
			for _, c := range classes {
				writeStr(c.Path())
				writeStr(c.Super)
				methods := append([]MethodDef(nil), c.Methods...)
				sort.Slice(methods, func(i, j int) bool {
					if methods[i].Name != methods[j].Name {
						return methods[i].Name < methods[j].Name
					}
					return methods[i].Proto < methods[j].Proto
				})
				writeInt(int64(len(methods)))
				for _, m := range methods {
					writeStr(m.Name)
					writeStr(m.Proto)
					writeStr(m.File)
					writeInt(int64(m.StartLine))
					writeInt(int64(m.EndLine))
				}
			}
		}
		copy(a.hash[:], h.Sum(nil))
		a.hashSet = true
	}
	return a.hash
}

// HashHex returns the full apk hash as lowercase hex (the database key).
func (a *APK) HashHex() string {
	h := a.Hash()
	return hex.EncodeToString(h[:])
}

// Truncated returns the 8-byte packet identifier for the app.
func (a *APK) Truncated() TruncatedHash {
	var t TruncatedHash
	h := a.Hash()
	copy(t[:], h[:TruncatedHashSize])
	return t
}

// MultiDex reports whether the apk packs more than one dex file, which
// forces the wide (3-byte) index encoding in packet tags (paper §VII).
func (a *APK) MultiDex() bool { return len(a.Dexes) > 1 }

// Signatures returns every method signature across all dex files in global
// index order: dex files in apk order, signatures within each dex in
// canonical order. The position in this slice is the method's global
// BorderPatrol index.
func (a *APK) Signatures() []Signature {
	if a.sigCache == nil {
		total := 0
		for _, d := range a.Dexes {
			total += d.MethodCount()
		}
		sigs := make([]Signature, 0, total)
		for _, d := range a.Dexes {
			sigs = append(sigs, d.Signatures()...)
		}
		a.sigCache = sigs
	}
	return a.sigCache
}

// DebugStripped reports whether any dex in the apk lacks debug line tables.
func (a *APK) DebugStripped() bool {
	for _, d := range a.Dexes {
		if d.DebugStripped {
			return true
		}
	}
	return false
}

// Validate checks every dex in the package.
func (a *APK) Validate() error {
	if a.PackageName == "" {
		return fmt.Errorf("dex: apk missing package name")
	}
	if len(a.Dexes) == 0 {
		return fmt.Errorf("dex: apk %s has no dex files", a.PackageName)
	}
	for i, d := range a.Dexes {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("dex: apk %s dex %d: %w", a.PackageName, i, err)
		}
	}
	return nil
}

// Invalidate drops cached hash and signature state after a mutation. Tests
// use this to model tampered or repackaged apps.
func (a *APK) Invalidate() {
	a.hashSet = false
	a.sigCache = nil
}
