package dex

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSignatureRoundTrip(t *testing.T) {
	cases := []struct {
		raw  string
		want Signature
	}{
		{
			raw:  "Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;",
			want: Signature{Package: "com/dropbox/android/taskqueue", Class: "UploadTask", Name: "c", Proto: "()Lcom/dropbox/hairball/taskqueue/TaskResult;"},
		},
		{
			raw:  "Lcom/flurry/sdk/Analytics;->report(Ljava/lang/String;I)V",
			want: Signature{Package: "com/flurry/sdk", Class: "Analytics", Name: "report", Proto: "(Ljava/lang/String;I)V"},
		},
		{
			raw:  "LMain;->main([Ljava/lang/String;)V",
			want: Signature{Package: "", Class: "Main", Name: "main", Proto: "([Ljava/lang/String;)V"},
		},
	}
	for _, tc := range cases {
		got, err := ParseSignature(tc.raw)
		if err != nil {
			t.Fatalf("ParseSignature(%q): %v", tc.raw, err)
		}
		if got != tc.want {
			t.Errorf("ParseSignature(%q) = %+v, want %+v", tc.raw, got, tc.want)
		}
		if got.String() != tc.raw {
			t.Errorf("round trip of %q produced %q", tc.raw, got.String())
		}
	}
}

func TestParseSignatureMerged(t *testing.T) {
	sig, err := ParseSignature("Lcom/foo/Bar;->baz*")
	if err != nil {
		t.Fatalf("parse merged: %v", err)
	}
	if !sig.Merged() {
		t.Fatalf("expected merged signature, got %+v", sig)
	}
	if sig.Name != "baz" || sig.Class != "Bar" {
		t.Fatalf("merged parse wrong: %+v", sig)
	}
	if got := sig.String(); got != "Lcom/foo/Bar;->baz*" {
		t.Fatalf("merged round trip produced %q", got)
	}
}

func TestParseSignatureErrors(t *testing.T) {
	bad := []string{
		"",
		"com/foo/Bar;->baz()V",  // missing L
		"Lcom/foo/Bar;baz()V",   // missing ;->
		"Lcom/foo/Bar;->",       // empty method
		"L;->baz()V",            // empty class
		"Lcom/foo/Bar;->baz",    // no parameter list
		"Lcom/foo/Bar;->(I)V",   // empty name
		"Lcom/foo/Bar;->baz(IV", // unterminated params
		"Lcom/foo/;->baz()V",    // trailing slash, empty class
	}
	for _, raw := range bad {
		if _, err := ParseSignature(raw); err == nil {
			t.Errorf("ParseSignature(%q) succeeded, want error", raw)
		}
	}
}

func TestSignatureClassPath(t *testing.T) {
	s := Signature{Package: "com/foo", Class: "Bar"}
	if got := s.ClassPath(); got != "com/foo/Bar" {
		t.Fatalf("ClassPath = %q", got)
	}
	s.Package = ""
	if got := s.ClassPath(); got != "Bar" {
		t.Fatalf("ClassPath without package = %q", got)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	a := Signature{Package: "com/a", Class: "A", Name: "m", Proto: "()V"}
	b := Signature{Package: "com/b", Class: "A", Name: "m", Proto: "()V"}
	c := Signature{Package: "com/b", Class: "B", Name: "m", Proto: "()V"}
	d := Signature{Package: "com/b", Class: "B", Name: "n", Proto: "()V"}
	e := Signature{Package: "com/b", Class: "B", Name: "n", Proto: "(I)V"}
	ordered := []Signature{a, b, c, d, e}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := Compare(ordered[i], ordered[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%d,%d) = %d, want <0", i, j, got)
			case i == j && got != 0:
				t.Errorf("Compare(%d,%d) = %d, want 0", i, j, got)
			case i > j && got <= 0:
				t.Errorf("Compare(%d,%d) = %d, want >0", i, j, got)
			}
		}
	}
}

func TestPackagePrefixMatch(t *testing.T) {
	cases := []struct {
		prefix, path string
		want         bool
	}{
		{"com/flurry", "com/flurry", true},
		{"com/flurry", "com/flurry/sdk", true},
		{"com/flurry", "com/flurryx", false},
		{"com/flurry", "com/flur", false},
		{"", "com/flurry", false},
		{"com/google/gms", "com/google/gms/analytics/Tracker", true},
	}
	for _, tc := range cases {
		if got := PackagePrefixMatch(tc.prefix, tc.path); got != tc.want {
			t.Errorf("PackagePrefixMatch(%q, %q) = %v, want %v", tc.prefix, tc.path, got, tc.want)
		}
	}
}

// randomIdent produces a plausible Java identifier for property tests.
func randomIdent(r *rand.Rand, minLen int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	n := minLen + r.Intn(8)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alpha[r.Intn(len(alpha))])
	}
	return b.String()
}

func randomSignature(r *rand.Rand) Signature {
	segs := 1 + r.Intn(4)
	parts := make([]string, segs)
	for i := range parts {
		parts[i] = strings.ToLower(randomIdent(r, 2))
	}
	protos := []string{"()V", "(I)V", "(Ljava/lang/String;)Z", "([BII)I", "(JJ)Ljava/lang/Object;"}
	return Signature{
		Package: strings.Join(parts, "/"),
		Class:   randomIdent(r, 3),
		Name:    randomIdent(r, 1),
		Proto:   protos[r.Intn(len(protos))],
	}
}

func TestSignatureRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sig := randomSignature(r)
		parsed, err := ParseSignature(sig.String())
		return err == nil && parsed == sig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareConsistentWithStringOrder(t *testing.T) {
	// Compare is a strict weak ordering aligned with component-wise order;
	// verify antisymmetry and transitivity over random triples.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomSignature(r), randomSignature(r), randomSignature(r)
		if Compare(a, b) < 0 && Compare(b, c) < 0 && Compare(a, c) >= 0 {
			return false // transitivity violated
		}
		if Compare(a, b) < 0 && Compare(b, a) <= 0 {
			return false // antisymmetry violated
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
