// Package dex models Android application packages (apk) at the level of
// detail BorderPatrol needs: Dalvik-style method signatures, class
// definitions with debug line tables, multi-dex layouts, and deterministic
// apk hashing. It is the in-Go substitute for dexlib2 over real
// classes.dex files (paper §II-A, §V-A); the structural properties
// BorderPatrol relies on — unique method signatures, deterministic
// ordering, line-number based overload disambiguation — are preserved
// exactly.
package dex

import (
	"errors"
	"fmt"
	"strings"
)

// Signature identifies a method within an app, in smali-like syntax:
//
//	Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;
//
// Package is the slash-separated Java package path ("com/dropbox/android/taskqueue"),
// Class the simple class name ("UploadTask"), Name the method name ("c"),
// and Proto the parameter list and return type descriptor ("()Lcom/...;").
type Signature struct {
	Package string
	Class   string
	Name    string
	Proto   string
}

// ErrBadSignature reports an unparsable smali signature string.
var ErrBadSignature = errors.New("dex: malformed method signature")

// String renders the canonical smali form of the signature.
func (s Signature) String() string {
	var b strings.Builder
	b.Grow(len(s.Package) + len(s.Class) + len(s.Name) + len(s.Proto) + 8)
	b.WriteByte('L')
	if s.Package != "" {
		b.WriteString(s.Package)
		b.WriteByte('/')
	}
	b.WriteString(s.Class)
	b.WriteString(";->")
	b.WriteString(s.Name)
	b.WriteString(s.Proto)
	return b.String()
}

// ClassPath returns the fully-qualified class path ("com/pkg/Class").
func (s Signature) ClassPath() string {
	if s.Package == "" {
		return s.Class
	}
	return s.Package + "/" + s.Class
}

// Merged reports whether the signature is an over-approximated merge of
// overloaded methods (produced when debug info was stripped; paper §VII
// "Overloaded methods"). Merged signatures carry the wildcard proto "*".
func (s Signature) Merged() bool { return s.Proto == "*" }

// MergeOverloads returns the over-approximated signature that stands for
// every overload of the method: same class and name, wildcard proto.
func (s Signature) MergeOverloads() Signature {
	s.Proto = "*"
	return s
}

// ParseSignature parses a canonical smali method signature string.
func ParseSignature(raw string) (Signature, error) {
	if !strings.HasPrefix(raw, "L") {
		return Signature{}, fmt.Errorf("%w: missing L prefix in %q", ErrBadSignature, raw)
	}
	sep := strings.Index(raw, ";->")
	if sep < 0 {
		return Signature{}, fmt.Errorf("%w: missing ;-> in %q", ErrBadSignature, raw)
	}
	classPath := raw[1:sep]
	rest := raw[sep+3:]
	if classPath == "" || rest == "" {
		return Signature{}, fmt.Errorf("%w: empty class or method in %q", ErrBadSignature, raw)
	}
	var sig Signature
	if slash := strings.LastIndexByte(classPath, '/'); slash >= 0 {
		sig.Package = classPath[:slash]
		sig.Class = classPath[slash+1:]
	} else {
		sig.Class = classPath
	}
	if sig.Class == "" {
		return Signature{}, fmt.Errorf("%w: empty class name in %q", ErrBadSignature, raw)
	}
	if rest == "*" || strings.HasSuffix(rest, "*") && !strings.Contains(rest, "(") {
		sig.Name = strings.TrimSuffix(rest, "*")
		sig.Proto = "*"
		if sig.Name == "" {
			return Signature{}, fmt.Errorf("%w: empty method name in %q", ErrBadSignature, raw)
		}
		return sig, nil
	}
	paren := strings.IndexByte(rest, '(')
	if paren <= 0 {
		return Signature{}, fmt.Errorf("%w: missing parameter list in %q", ErrBadSignature, raw)
	}
	sig.Name = rest[:paren]
	sig.Proto = rest[paren:]
	if !strings.Contains(sig.Proto, ")") {
		return Signature{}, fmt.Errorf("%w: unterminated parameter list in %q", ErrBadSignature, raw)
	}
	return sig, nil
}

// Compare orders signatures by package, class, name, then proto. The offline
// analyzer relies on this total order for deterministic index assignment.
func Compare(a, b Signature) int {
	if c := strings.Compare(a.Package, b.Package); c != 0 {
		return c
	}
	if c := strings.Compare(a.Class, b.Class); c != 0 {
		return c
	}
	if c := strings.Compare(a.Name, b.Name); c != 0 {
		return c
	}
	return strings.Compare(a.Proto, b.Proto)
}

// PackagePrefixMatch reports whether prefix matches path at Java package
// segment boundaries: "com/flurry" matches "com/flurry" and
// "com/flurry/sdk" but not "com/flurryx".
func PackagePrefixMatch(prefix, path string) bool {
	if prefix == "" {
		return false
	}
	if !strings.HasPrefix(path, prefix) {
		return false
	}
	return len(path) == len(prefix) || path[len(prefix)] == '/'
}
