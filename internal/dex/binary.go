package dex

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary container format for simulated apk files, so the Offline Analyzer
// CLI can operate on files the way the paper's dexlib2 pipeline operates on
// real apks. The format is deterministic (field order fixed, strings
// length-prefixed) — WriteTo followed by ReadAPK reproduces an identical
// package with an identical hash.
//
//	magic   uint32  0xDEXC0DE1
//	version uint16  1
//	package metadata, then per-dex class/method records.

const (
	apkMagic   = 0xDEC0DE1A
	apkVersion = 1
	// maxStringLen bounds any one serialized string.
	maxStringLen = 4096
	// maxCount bounds any serialized collection length.
	maxCount = 1 << 20
)

// Errors for container parsing.
var (
	ErrBadContainer        = errors.New("dex: not an apk container")
	ErrBadContainerVersion = errors.New("dex: unsupported container version")
)

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the apk to its binary container form.
func (a *APK) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	var scratch [8]byte

	writeU32 := func(v uint32) error {
		binary.BigEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeU16 := func(v uint16) error {
		binary.BigEndian.PutUint16(scratch[:2], v)
		_, err := bw.Write(scratch[:2])
		return err
	}
	writeStr := func(s string) error {
		if len(s) > maxStringLen {
			return fmt.Errorf("dex: string %d bytes exceeds container limit", len(s))
		}
		if err := writeU16(uint16(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	writeI64 := func(v int64) error {
		binary.BigEndian.PutUint64(scratch[:], uint64(v))
		_, err := bw.Write(scratch[:])
		return err
	}

	fail := func(err error) (int64, error) {
		return cw.n, fmt.Errorf("dex: write container: %w", err)
	}
	if err := writeU32(apkMagic); err != nil {
		return fail(err)
	}
	if err := writeU16(apkVersion); err != nil {
		return fail(err)
	}
	if err := writeStr(a.PackageName); err != nil {
		return fail(err)
	}
	if err := writeStr(a.Label); err != nil {
		return fail(err)
	}
	if err := writeStr(a.Category); err != nil {
		return fail(err)
	}
	if err := writeI64(int64(a.VersionCode)); err != nil {
		return fail(err)
	}
	if err := writeI64(a.Downloads); err != nil {
		return fail(err)
	}
	if err := writeU32(uint32(len(a.Dexes))); err != nil {
		return fail(err)
	}
	for _, d := range a.Dexes {
		stripped := uint16(0)
		if d.DebugStripped {
			stripped = 1
		}
		if err := writeU16(stripped); err != nil {
			return fail(err)
		}
		if err := writeU32(uint32(len(d.Classes))); err != nil {
			return fail(err)
		}
		for i := range d.Classes {
			c := &d.Classes[i]
			if err := writeStr(c.Package); err != nil {
				return fail(err)
			}
			if err := writeStr(c.Name); err != nil {
				return fail(err)
			}
			if err := writeStr(c.Super); err != nil {
				return fail(err)
			}
			if err := writeU32(uint32(len(c.Methods))); err != nil {
				return fail(err)
			}
			for _, m := range c.Methods {
				if err := writeStr(m.Name); err != nil {
					return fail(err)
				}
				if err := writeStr(m.Proto); err != nil {
					return fail(err)
				}
				if err := writeStr(m.File); err != nil {
					return fail(err)
				}
				if err := writeI64(int64(m.StartLine)); err != nil {
					return fail(err)
				}
				if err := writeI64(int64(m.EndLine)); err != nil {
					return fail(err)
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	return cw.n, nil
}

// ReadAPK parses a binary apk container.
func ReadAPK(r io.Reader) (*APK, error) {
	br := bufio.NewReader(r)
	var scratch [8]byte

	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint32(scratch[:4]), nil
	}
	readU16 := func() (uint16, error) {
		if _, err := io.ReadFull(br, scratch[:2]); err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint16(scratch[:2]), nil
	}
	readStr := func() (string, error) {
		n, err := readU16()
		if err != nil {
			return "", err
		}
		if n > maxStringLen {
			return "", fmt.Errorf("dex: string length %d exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	readI64 := func() (int64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return int64(binary.BigEndian.Uint64(scratch[:])), nil
	}

	fail := func(err error) (*APK, error) {
		return nil, fmt.Errorf("dex: read container: %w", err)
	}
	magic, err := readU32()
	if err != nil {
		return fail(err)
	}
	if magic != apkMagic {
		return nil, ErrBadContainer
	}
	version, err := readU16()
	if err != nil {
		return fail(err)
	}
	if version != apkVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadContainerVersion, version)
	}
	a := &APK{}
	if a.PackageName, err = readStr(); err != nil {
		return fail(err)
	}
	if a.Label, err = readStr(); err != nil {
		return fail(err)
	}
	if a.Category, err = readStr(); err != nil {
		return fail(err)
	}
	vc, err := readI64()
	if err != nil {
		return fail(err)
	}
	a.VersionCode = int(vc)
	if a.Downloads, err = readI64(); err != nil {
		return fail(err)
	}
	nDex, err := readU32()
	if err != nil {
		return fail(err)
	}
	if nDex > maxCount {
		return nil, fmt.Errorf("dex: dex count %d exceeds limit", nDex)
	}
	a.Dexes = make([]*File, 0, nDex)
	for di := uint32(0); di < nDex; di++ {
		stripped, err := readU16()
		if err != nil {
			return fail(err)
		}
		d := &File{DebugStripped: stripped == 1}
		nClasses, err := readU32()
		if err != nil {
			return fail(err)
		}
		if nClasses > maxCount {
			return nil, fmt.Errorf("dex: class count %d exceeds limit", nClasses)
		}
		d.Classes = make([]ClassDef, 0, nClasses)
		for ci := uint32(0); ci < nClasses; ci++ {
			var c ClassDef
			if c.Package, err = readStr(); err != nil {
				return fail(err)
			}
			if c.Name, err = readStr(); err != nil {
				return fail(err)
			}
			if c.Super, err = readStr(); err != nil {
				return fail(err)
			}
			nMethods, err := readU32()
			if err != nil {
				return fail(err)
			}
			if nMethods > maxCount {
				return nil, fmt.Errorf("dex: method count %d exceeds limit", nMethods)
			}
			c.Methods = make([]MethodDef, 0, nMethods)
			for mi := uint32(0); mi < nMethods; mi++ {
				var m MethodDef
				if m.Name, err = readStr(); err != nil {
					return fail(err)
				}
				if m.Proto, err = readStr(); err != nil {
					return fail(err)
				}
				if m.File, err = readStr(); err != nil {
					return fail(err)
				}
				sl, err := readI64()
				if err != nil {
					return fail(err)
				}
				el, err := readI64()
				if err != nil {
					return fail(err)
				}
				m.StartLine, m.EndLine = int(sl), int(el)
				c.Methods = append(c.Methods, m)
			}
			d.Classes = append(d.Classes, c)
		}
		a.Dexes = append(a.Dexes, d)
	}
	return a, nil
}
