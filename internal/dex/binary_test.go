package dex

import (
	"bytes"
	"errors"
	"testing"
)

func TestAPKContainerRoundTrip(t *testing.T) {
	orig := buildTestAPK()
	orig.Dexes = append(orig.Dexes, &File{
		DebugStripped: true,
		Classes: []ClassDef{{
			Package: "com/extra",
			Name:    "More",
			Super:   "java/lang/Object",
			Methods: []MethodDef{{Name: "go", Proto: "()V", File: "More.java", StartLine: 1, EndLine: 9}},
		}},
	})
	orig.Invalidate()

	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadAPK(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.PackageName != orig.PackageName || back.Label != orig.Label ||
		back.Category != orig.Category || back.VersionCode != orig.VersionCode ||
		back.Downloads != orig.Downloads {
		t.Fatalf("metadata mismatch: %+v", back)
	}
	if len(back.Dexes) != 2 || !back.Dexes[1].DebugStripped {
		t.Fatal("dex structure mismatch")
	}
	// The deserialized package hashes identically: the container is a
	// faithful representation of the apk bytes.
	if back.HashHex() != orig.HashHex() {
		t.Fatalf("hash changed through container: %s vs %s", back.HashHex(), orig.HashHex())
	}
	// And validates.
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadAPKErrors(t *testing.T) {
	if _, err := ReadAPK(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadAPK(bytes.NewReader([]byte{1, 2, 3, 4, 0, 1})); !errors.Is(err, ErrBadContainer) {
		t.Errorf("bad magic: %v", err)
	}
	// Right magic, wrong version.
	bad := []byte{0xDE, 0xC0, 0xDE, 0x1A, 0x00, 0x09}
	if _, err := ReadAPK(bytes.NewReader(bad)); !errors.Is(err, ErrBadContainerVersion) {
		t.Errorf("bad version: %v", err)
	}
	// Truncated mid-structure.
	var buf bytes.Buffer
	if _, err := buildTestAPK().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{7, 10, len(full) / 2, len(full) - 1} {
		if _, err := ReadAPK(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestContainerDeterministic(t *testing.T) {
	a := buildTestAPK()
	var b1, b2 bytes.Buffer
	if _, err := a.WriteTo(&b1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("container serialization not deterministic")
	}
}
