package dex

import (
	"fmt"
	"sort"
)

// Frame is one element of an emulated Java stack trace, mirroring what
// java.lang.StackTraceElement exposes: class path, method name, source
// file, and line number. Java stack traces do not carry parameter types, so
// overloaded methods are only distinguishable via the line number against
// the dex debug tables (paper Fig. 2, §VII "Overloaded methods").
type Frame struct {
	Class  string // fully-qualified class path, e.g. "com/dropbox/android/taskqueue/UploadTask"
	Method string
	File   string
	Line   int
}

// String renders the frame the way a Java stack trace would.
func (f Frame) String() string {
	return fmt.Sprintf("%s.%s(%s:%d)", f.Class, f.Method, f.File, f.Line)
}

// LineTable resolves stack-trace frames back to full method signatures
// using the debug line ranges stored in the dex files. It is built once per
// app by the Context Manager when the app loads (paper §V-B).
type LineTable struct {
	// entries maps "class\x00method" to the overload set sorted by line.
	entries  map[string][]lineEntry
	stripped bool
}

type lineEntry struct {
	start, end int
	sig        Signature
}

// NewLineTable builds the resolution table for an apk.
func NewLineTable(a *APK) *LineTable {
	lt := &LineTable{entries: make(map[string][]lineEntry)}
	for _, d := range a.Dexes {
		if d.DebugStripped {
			lt.stripped = true
		}
		for i := range d.Classes {
			c := &d.Classes[i]
			for _, m := range c.Methods {
				key := c.Path() + "\x00" + m.Name
				lt.entries[key] = append(lt.entries[key], lineEntry{
					start: m.StartLine,
					end:   m.EndLine,
					sig:   Signature{Package: c.Package, Class: c.Name, Name: m.Name, Proto: m.Proto},
				})
			}
		}
	}
	for key := range lt.entries {
		es := lt.entries[key]
		sort.Slice(es, func(i, j int) bool { return es[i].start < es[j].start })
	}
	return lt
}

// Stripped reports whether the underlying apk lacks debug info, in which
// case Resolve over-approximates overloads into a merged signature.
func (lt *LineTable) Stripped() bool { return lt.stripped }

// Resolve maps a stack frame to its method signature.
//
// With debug info present, the frame's line number selects the exact
// overload. With debug info stripped (or an unknown line), overloaded
// methods merge into a single wildcard-proto signature — the paper's
// documented over-approximation, which reduces precision to the method name
// but never drops the frame. Frames whose class is not in the app's dex at
// all (JDK or Android framework frames) return ok=false.
func (lt *LineTable) Resolve(f Frame) (Signature, bool) {
	es, found := lt.entries[f.Class+"\x00"+f.Method]
	if !found || len(es) == 0 {
		return Signature{}, false
	}
	if len(es) == 1 {
		return es[0].sig, true
	}
	if !lt.stripped && f.Line > 0 {
		for _, e := range es {
			if f.Line >= e.start && f.Line <= e.end {
				return e.sig, true
			}
		}
	}
	// Over-approximate: merge all overloads into one identifier.
	return es[0].sig.MergeOverloads(), true
}

// ResolveStack maps a full stack trace to signatures, dropping frames that
// are not part of the app's dex (framework frames), preserving order from
// innermost (socket call site) to outermost.
func (lt *LineTable) ResolveStack(frames []Frame) []Signature {
	sigs := make([]Signature, 0, len(frames))
	for _, f := range frames {
		if sig, ok := lt.Resolve(f); ok {
			sigs = append(sigs, sig)
		}
	}
	return sigs
}
