package transport

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"

	"borderpatrol/internal/httpsim"
	"borderpatrol/internal/ipv4"
)

func TestTCPRoundTrip(t *testing.T) {
	seg := &TCPSegment{
		SrcPort: 40001, DstPort: 443,
		Seq: 0x01020304, Ack: 0,
		Flags:  FlagPSH | FlagACK,
		Window: 65535,
		Payload: []byte("GET / HTTP/1.1\r\nHost: example\r\n" +
			"Connection: close\r\nContent-Length: 0\r\n\r\n"),
	}
	wire := seg.Marshal()
	back, err := ParseTCP(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.SrcPort != seg.SrcPort || back.DstPort != seg.DstPort ||
		back.Seq != seg.Seq || back.Flags != seg.Flags || back.Window != seg.Window {
		t.Fatalf("header round trip: %+v vs %+v", back, seg)
	}
	if !bytes.Equal(back.Payload, seg.Payload) {
		t.Fatal("payload round trip lost bytes")
	}
	// marshal ∘ parse is byte-identical.
	if !bytes.Equal(back.Marshal(), wire) {
		t.Fatal("re-marshal differs from original wire form")
	}
}

func TestTCPControlSegments(t *testing.T) {
	for _, flags := range []byte{FlagSYN, FlagFIN | FlagACK, FlagRST} {
		seg := &TCPSegment{SrcPort: 40000, DstPort: 80, Seq: 7, Flags: flags, Window: 65535}
		back, err := ParseTCP(seg.Marshal())
		if err != nil {
			t.Fatalf("flags %#02x: %v", flags, err)
		}
		if back.Flags != flags || len(back.Payload) != 0 {
			t.Fatalf("flags %#02x: parsed %+v", flags, back)
		}
	}
}

func TestTCPParseErrors(t *testing.T) {
	seg := &TCPSegment{SrcPort: 1, DstPort: 2, Flags: FlagSYN}
	wire := seg.Marshal()

	if _, err := ParseTCP(wire[:10]); !errors.Is(err, ErrShortSegment) {
		t.Fatalf("short: %v", err)
	}
	bad := append([]byte(nil), wire...)
	bad[12] = 0x60 // data offset 6: options we never emit
	if _, err := ParseTCP(bad); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("offset: %v", err)
	}
	bad = append([]byte(nil), wire...)
	bad[13] |= 0x40 // reserved flag bit
	if _, err := ParseTCP(bad); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("flags: %v", err)
	}
	bad = append([]byte(nil), wire...)
	bad[4] ^= 0xff // corrupt seq without fixing the checksum
	if _, err := ParseTCP(bad); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("checksum: %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	d := &UDPDatagram{SrcPort: 40002, DstPort: 53, Payload: []byte("query-bytes")}
	wire := d.Marshal()
	back, err := ParseUDP(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.SrcPort != d.SrcPort || back.DstPort != d.DstPort || !bytes.Equal(back.Payload, d.Payload) {
		t.Fatalf("round trip: %+v", back)
	}
	if !bytes.Equal(back.Marshal(), wire) {
		t.Fatal("re-marshal differs")
	}
}

func TestUDPParseErrors(t *testing.T) {
	d := &UDPDatagram{SrcPort: 9, DstPort: 53, Payload: []byte("x")}
	wire := d.Marshal()
	if _, err := ParseUDP(wire[:4]); !errors.Is(err, ErrShortSegment) {
		t.Fatalf("short: %v", err)
	}
	if _, err := ParseUDP(wire[:UDPHeaderLen]); !errors.Is(err, ErrBadLength) {
		t.Fatalf("truncated: %v", err)
	}
	bad := append([]byte(nil), wire...)
	bad[UDPHeaderLen] ^= 0xff
	if _, err := ParseUDP(bad); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("checksum: %v", err)
	}
}

func TestPeekExtractsPortsAndFlags(t *testing.T) {
	seg := &TCPSegment{SrcPort: 41000, DstPort: 8000, Seq: 3, Flags: FlagFIN | FlagACK, Window: 100}
	info, ok := Peek(ipv4.ProtoTCP, seg.Marshal())
	if !ok || info.SrcPort != 41000 || info.DstPort != 8000 ||
		info.Flags != FlagFIN|FlagACK || info.DataOff != TCPHeaderLen {
		t.Fatalf("tcp peek: %+v ok=%v", info, ok)
	}
	d := &UDPDatagram{SrcPort: 41001, DstPort: 53, Payload: []byte("q")}
	info, ok = Peek(ipv4.ProtoUDP, d.Marshal())
	if !ok || info.SrcPort != 41001 || info.DstPort != 53 || info.DataOff != UDPHeaderLen {
		t.Fatalf("udp peek: %+v ok=%v", info, ok)
	}
}

// TestPeekRejectsLegacyPayloads: plain HTTP riding directly in the IPv4
// payload (the pre-transport wire format, kept as a fallback) must never
// be mistaken for a TCP segment — flow keys would pick up garbage ports.
func TestPeekRejectsLegacyPayloads(t *testing.T) {
	legacy := [][]byte{
		(&httpsim.Request{Method: "GET", Path: "/", Host: "example"}).Marshal(),
		(&httpsim.Request{Method: "POST", Path: "/api/2.0/files/content", KeepAlive: true, Body: make([]byte, 512)}).Marshal(),
		(&httpsim.Request{Method: "PUT", Path: "/2/files/upload", Body: make([]byte, 64)}).Marshal(),
		[]byte("POST /x HTTP/1.1\r\n\r\n"),
		[]byte("short"),
		nil,
	}
	for i, payload := range legacy {
		if info, ok := Peek(ipv4.ProtoTCP, payload); ok {
			t.Fatalf("legacy payload %d peeked as TCP: %+v", i, info)
		}
		if info, ok := Peek(ipv4.ProtoUDP, payload); ok {
			t.Fatalf("legacy payload %d peeked as UDP: %+v", i, info)
		}
	}
}

func TestPeekRejectsZeroPorts(t *testing.T) {
	seg := &TCPSegment{SrcPort: 0, DstPort: 80, Flags: FlagSYN}
	if _, ok := Peek(ipv4.ProtoTCP, seg.Marshal()); ok {
		t.Fatal("zero source port accepted")
	}
	d := &UDPDatagram{SrcPort: 4000, DstPort: 0}
	if _, ok := Peek(ipv4.ProtoUDP, d.Marshal()); ok {
		t.Fatal("zero destination port accepted")
	}
}

// TestFragmentationInterplay covers the ipv4 interaction end to end: a
// packet carrying a TCP segment is fragmented and reassembled with a
// byte-identical transport payload; only the first fragment peeks as
// transport (real header), and non-first fragments must not be flow-keyed
// off garbage bytes.
func TestFragmentationInterplay(t *testing.T) {
	seg := &TCPSegment{
		SrcPort: 40123, DstPort: 443,
		Seq: 1, Flags: FlagPSH | FlagACK, Window: 65535,
		Payload: bytes.Repeat([]byte("0123456789abcdef"), 256), // 4 KiB
	}
	pkt := &ipv4.Packet{
		Header: ipv4.Header{
			ID: 7, TTL: 64, Protocol: ipv4.ProtoTCP,
			Src: netip.MustParseAddr("10.66.0.2"),
			Dst: netip.MustParseAddr("93.184.216.34"),
		},
		Payload: seg.Marshal(),
	}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: []byte{0xbe, 0xef}})

	frags, err := ipv4.Fragment(pkt, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("got %d fragments, want >= 3", len(frags))
	}

	// Only the first fragment carries the transport header.
	if info, ok := PeekPacket(frags[0]); !ok || info.SrcPort != 40123 || info.DstPort != 443 {
		t.Fatalf("first fragment peek: %+v ok=%v", info, ok)
	}
	for i, f := range frags[1:] {
		if info, ok := PeekPacket(f); ok {
			t.Fatalf("non-first fragment %d peeked garbage ports: %+v", i+1, info)
		}
	}

	// Reassembly restores the byte-identical transport payload.
	back, err := ipv4.Reassemble(frags)
	if err != nil {
		t.Fatal(err)
	}
	reseg, err := ParseTCP(back.Payload)
	if err != nil {
		t.Fatalf("reassembled segment: %v", err)
	}
	if !bytes.Equal(reseg.Payload, seg.Payload) {
		t.Fatal("transport payload not byte-identical after reassembly")
	}
	if reseg.SrcPort != seg.SrcPort || reseg.DstPort != seg.DstPort || reseg.Seq != seg.Seq {
		t.Fatalf("reassembled header: %+v", reseg)
	}
}

func TestPeekAllocFree(t *testing.T) {
	seg := (&TCPSegment{SrcPort: 40001, DstPort: 443, Flags: FlagPSH | FlagACK, Payload: []byte("data")}).Marshal()
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := Peek(ipv4.ProtoTCP, seg); !ok {
			t.Fatal("peek failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Peek allocates %.1f/op, want 0", allocs)
	}
}

// TestPeekPortsMatchesPeek pins the hot-path port extractor to the full
// structural peek: on every input shape — valid segments/datagrams,
// legacy payloads, truncations, zero ports, wrong protocols — the two
// must agree on acceptance and on the extracted ports.
func TestPeekPortsMatchesPeek(t *testing.T) {
	inputs := [][]byte{
		(&TCPSegment{SrcPort: 40001, DstPort: 443, Flags: FlagPSH | FlagACK, Payload: []byte("data")}).Marshal(),
		(&TCPSegment{SrcPort: 40001, DstPort: 443, Flags: FlagSYN}).Marshal(),
		(&TCPSegment{SrcPort: 0, DstPort: 443, Flags: FlagSYN}).Marshal(),
		(&UDPDatagram{SrcPort: 40002, DstPort: 53, Payload: []byte("q")}).Marshal(),
		(&UDPDatagram{SrcPort: 40002, DstPort: 0}).Marshal(),
		httpsimGET(), // legacy
		[]byte("POST /x HTTP/1.1\r\n\r\n"),
		[]byte("short"),
		nil,
	}
	for _, proto := range []byte{ipv4.ProtoTCP, ipv4.ProtoUDP, 1 /* ICMP */} {
		for i, b := range inputs {
			info, wantOK := Peek(proto, b)
			sp, dp, gotOK := PeekPorts(proto, 0, b)
			if gotOK != wantOK {
				t.Fatalf("proto %d input %d: PeekPorts ok=%v, Peek ok=%v", proto, i, gotOK, wantOK)
			}
			if gotOK && (sp != info.SrcPort || dp != info.DstPort) {
				t.Fatalf("proto %d input %d: ports %d/%d vs %d/%d", proto, i, sp, dp, info.SrcPort, info.DstPort)
			}
			// Non-first fragments never yield ports.
			if _, _, ok := PeekPorts(proto, 1, b); ok {
				t.Fatalf("proto %d input %d: fragment yielded ports", proto, i)
			}
		}
	}
}

func httpsimGET() []byte {
	return []byte("GET / HTTP/1.1\r\nHost: example\r\nConnection: close\r\nContent-Length: 0\r\n\r\n")
}
