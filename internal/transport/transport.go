// Package transport implements the wire-format transport layer riding in
// ipv4.Packet.Payload: a TCP segment model (real ports, sequence numbers
// and SYN/ACK/FIN/RST control flags) and a UDP datagram model. It is the
// layer Poise ("Programmable In-Network Security for Context-aware BYOD
// Policies") keys per-flow context state on in the switch dataplane, and
// the layer that lets this simulator's gateway key its flow table on full
// 5-tuples and drive flow lifecycle from connection state instead of
// peeking at application headers.
//
// Two access paths are provided, matching the two places the gateway
// touches transport headers:
//
//   - ParseTCP/ParseUDP fully validate a header (lengths, checksum) and
//     materialize the segment — the server side of the simulator uses
//     these before handing the application payload up the stack.
//   - Peek/PeekPacket are the zero-allocation per-packet path: a handful
//     of structural checks (header length, data offset, reserved bits,
//     flag mask, UDP length consistency) that extract the ports and TCP
//     flags without touching the payload bytes. The enforcer's flow-key
//     construction and the gateway's conntrack run on every packet, so
//     they must not pay a checksum walk over the payload.
//
// Checksums are the Internet checksum (RFC 1071) over the whole segment
// or datagram with the checksum field zeroed. The IPv4 pseudo-header is
// deliberately left out of the sum: the simulator's packets never cross a
// NAT that would rewrite addresses under the transport layer, and keeping
// the checksum self-contained lets a segment be validated without its
// enclosing packet.
//
// Fragmentation interplay: only the first IPv4 fragment (FragOff == 0)
// carries the transport header; non-first fragments hold a payload slice
// starting mid-stream. PeekPacket refuses non-first fragments so flow
// keying can never read garbage ports out of fragment data.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"borderpatrol/internal/ipv4"
)

// TCP control flags (the low bits of header byte 13).
const (
	// FlagFIN signals the sender is done: the gateway's conntrack tears
	// the flow down when it sees one.
	FlagFIN = 0x01
	// FlagSYN opens a connection.
	FlagSYN = 0x02
	// FlagRST aborts a connection (tears down like FIN).
	FlagRST = 0x04
	// FlagPSH marks data segments.
	FlagPSH = 0x08
	// FlagACK acknowledges; set on every segment after the initial SYN.
	FlagACK = 0x10

	// flagMask is every flag this model emits. Peek rejects anything
	// outside it, which is also what keeps legacy plain-HTTP payloads
	// (ASCII bytes ≥ 0x20 in the flag position) from masquerading as
	// segments.
	flagMask = FlagFIN | FlagSYN | FlagRST | FlagPSH | FlagACK
)

// Header lengths. The TCP model always emits a 20-byte option-free header
// (data offset 5), which is also what Peek requires.
const (
	TCPHeaderLen = 20
	UDPHeaderLen = 8

	// MaxUDPPayload is the largest payload a UDP datagram can carry: the
	// 16-bit length field covers header + payload. Marshal on a larger
	// payload would wrap the field into a datagram its own parser
	// rejects, so senders (kernel.Send) must refuse oversized payloads
	// up front — the EMSGSIZE a real sendto(2) returns.
	MaxUDPPayload = 0xffff - UDPHeaderLen
)

// Errors produced by parsing.
var (
	ErrShortSegment = errors.New("transport: segment shorter than its header")
	ErrBadOffset    = errors.New("transport: unsupported TCP data offset")
	ErrBadFlags     = errors.New("transport: reserved or unknown TCP flags set")
	ErrBadChecksum  = errors.New("transport: checksum mismatch")
	ErrBadLength    = errors.New("transport: UDP length field inconsistent")
)

// checksumIgnoring computes the Internet checksum over b with the 16-bit
// field at off treated as zero. Parsers compare the result to the stored
// field for exact equality — unlike the "whole buffer sums to zero" trick,
// this cannot alias 0x0000 and 0xffff stored values, so marshal ∘ parse
// is byte-identical on every accepted input (the fuzz invariant).
func checksumIgnoring(b []byte, off int) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		if i == off {
			continue
		}
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// TCPSegment is a parsed TCP segment. Ack is carried for wire fidelity;
// the simulator models the outbound half of each connection, so it stays
// zero on generated traffic.
type TCPSegment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            byte
	Window           uint16
	Payload          []byte
}

// Marshal renders the segment in wire form with a correct checksum.
func (s *TCPSegment) Marshal() []byte {
	buf := make([]byte, TCPHeaderLen+len(s.Payload))
	binary.BigEndian.PutUint16(buf[0:2], s.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], s.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], s.Seq)
	binary.BigEndian.PutUint32(buf[8:12], s.Ack)
	buf[12] = (TCPHeaderLen / 4) << 4
	buf[13] = s.Flags & flagMask
	binary.BigEndian.PutUint16(buf[14:16], s.Window)
	// buf[18:20] (urgent pointer) stays zero; we never emit URG.
	copy(buf[TCPHeaderLen:], s.Payload)
	binary.BigEndian.PutUint16(buf[16:18], checksumIgnoring(buf, 16))
	return buf
}

// ParseTCP parses and fully validates a wire-form TCP segment.
func ParseTCP(b []byte) (*TCPSegment, error) {
	if len(b) < TCPHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrShortSegment, len(b))
	}
	if off := int(b[12]>>4) * 4; off != TCPHeaderLen {
		return nil, fmt.Errorf("%w: %d", ErrBadOffset, off)
	}
	if b[12]&0x0f != 0 || b[13]&^flagMask != 0 {
		return nil, fmt.Errorf("%w: offset byte %#02x flags %#02x", ErrBadFlags, b[12], b[13])
	}
	if b[18] != 0 || b[19] != 0 {
		return nil, fmt.Errorf("%w: urgent pointer set", ErrBadFlags)
	}
	if got := binary.BigEndian.Uint16(b[16:18]); got != checksumIgnoring(b, 16) {
		return nil, ErrBadChecksum
	}
	return &TCPSegment{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:16]),
		Payload: append([]byte(nil), b[TCPHeaderLen:]...),
	}, nil
}

// UDPDatagram is a parsed UDP datagram.
type UDPDatagram struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// Marshal renders the datagram in wire form with a correct length field
// and checksum.
func (d *UDPDatagram) Marshal() []byte {
	buf := make([]byte, UDPHeaderLen+len(d.Payload))
	binary.BigEndian.PutUint16(buf[0:2], d.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], d.DstPort)
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(buf)))
	copy(buf[UDPHeaderLen:], d.Payload)
	binary.BigEndian.PutUint16(buf[6:8], checksumIgnoring(buf, 6))
	return buf
}

// ParseUDP parses and fully validates a wire-form UDP datagram.
func ParseUDP(b []byte) (*UDPDatagram, error) {
	if len(b) < UDPHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrShortSegment, len(b))
	}
	if int(binary.BigEndian.Uint16(b[4:6])) != len(b) {
		return nil, fmt.Errorf("%w: field %d, datagram %d",
			ErrBadLength, binary.BigEndian.Uint16(b[4:6]), len(b))
	}
	if got := binary.BigEndian.Uint16(b[6:8]); got != checksumIgnoring(b, 6) {
		return nil, ErrBadChecksum
	}
	return &UDPDatagram{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Payload: append([]byte(nil), b[UDPHeaderLen:]...),
	}, nil
}

// Info is the zero-allocation transport summary handed down the gateway's
// per-packet paths: enough for flow keying (ports) and connection
// lifecycle tracking (TCP flags) without materializing the segment.
type Info struct {
	// Proto is ipv4.ProtoTCP or ipv4.ProtoUDP.
	Proto byte
	// SrcPort and DstPort complete the flow 5-tuple.
	SrcPort, DstPort uint16
	// Flags are the TCP control flags (zero for UDP).
	Flags byte
	// Seq is the TCP sequence number (zero for UDP) — the field the
	// gateway's directional conntrack state runs continuity checks on.
	Seq uint32
	// DataOff is where the application payload starts within the IPv4
	// payload.
	DataOff int
}

// Peek extracts transport Info from an IPv4 payload using structural
// checks only — no checksum walk, no allocation. It reports false for
// anything that does not look like a header this model emits, which in
// particular covers legacy plain-HTTP payloads: their ASCII bytes fail
// the data-offset/reserved-bits check (TCP) or the length-field check
// (UDP), so callers fall back to treating the payload as opaque
// application data. Ports must be nonzero — the kernel never binds port
// 0, and requiring it rejects further junk.
func Peek(proto byte, b []byte) (Info, bool) {
	switch proto {
	case ipv4.ProtoTCP:
		if len(b) < TCPHeaderLen || b[12] != (TCPHeaderLen/4)<<4 {
			return Info{}, false
		}
		flags := b[13]
		if flags == 0 || flags&^flagMask != 0 {
			return Info{}, false
		}
		sp := binary.BigEndian.Uint16(b[0:2])
		dp := binary.BigEndian.Uint16(b[2:4])
		if sp == 0 || dp == 0 {
			return Info{}, false
		}
		return Info{
			Proto: proto, SrcPort: sp, DstPort: dp, Flags: flags,
			Seq: binary.BigEndian.Uint32(b[4:8]), DataOff: TCPHeaderLen,
		}, true
	case ipv4.ProtoUDP:
		if len(b) < UDPHeaderLen || int(binary.BigEndian.Uint16(b[4:6])) != len(b) {
			return Info{}, false
		}
		sp := binary.BigEndian.Uint16(b[0:2])
		dp := binary.BigEndian.Uint16(b[2:4])
		if sp == 0 || dp == 0 {
			return Info{}, false
		}
		return Info{Proto: proto, SrcPort: sp, DstPort: dp, DataOff: UDPHeaderLen}, true
	default:
		return Info{}, false
	}
}

// PeekPorts is the hot-path subset of Peek: just the structural checks
// needed to trust the two port fields, written tightly enough for the
// compiler to inline into per-packet loops (the enforcer builds a flow
// key for every packet, and a non-inlined call plus an Info copy costs
// more than the whole lookup saves). fragOff must be the packet's
// fragment offset — non-first fragments carry payload bytes where the
// header would be and must never yield ports. Semantics match Peek: any
// payload Peek rejects, PeekPorts rejects.
func PeekPorts(proto byte, fragOff uint16, b []byte) (sp, dp uint16, ok bool) {
	if fragOff != 0 || len(b) < UDPHeaderLen {
		return 0, 0, false
	}
	sp = uint16(b[0])<<8 | uint16(b[1])
	dp = uint16(b[2])<<8 | uint16(b[3])
	if sp == 0 || dp == 0 {
		return 0, 0, false
	}
	if proto == ipv4.ProtoTCP {
		ok = len(b) >= TCPHeaderLen && b[12] == (TCPHeaderLen/4)<<4 &&
			b[13] != 0 && b[13]&^flagMask == 0
		return sp, dp, ok
	}
	if proto == ipv4.ProtoUDP {
		ok = int(b[4])<<8|int(b[5]) == len(b)
		return sp, dp, ok
	}
	return 0, 0, false
}

// PeekPacket is Peek over a whole packet, refusing non-first fragments:
// a fragment with FragOff > 0 carries mid-stream payload bytes where the
// header would be, and flow keying must not read ports out of them. The
// first fragment (FragOff == 0, MF set) does carry the real header and
// peeks normally.
func PeekPacket(pkt *ipv4.Packet) (Info, bool) {
	if pkt.Header.FragOff != 0 {
		return Info{}, false
	}
	return Peek(pkt.Header.Protocol, pkt.Payload)
}
