package transport

import (
	"bytes"
	"testing"

	"borderpatrol/internal/ipv4"
)

// Native Go fuzz targets for the transport parsers. The gateway parses a
// transport header out of every packet a BYOD device emits, and the
// device is the untrusted side of the link (a native-socket app can hand
// the kernel arbitrary payload bytes), so both parsers are
// attacker-reachable. Two invariants hold on every input:
//
//  1. No panics: arbitrary bytes either parse or return a typed error.
//  2. Round-trip: any accepted segment re-marshals to the exact input
//     bytes (marshal ∘ parse is the identity on wire form), and parsing
//     the re-marshalled form yields the same header fields. Peek must
//     agree with the full parser on ports and flags whenever both accept.
//
// Seeds cover each control-flag shape, data segments, and truncations;
// the committed corpus lives in testdata/fuzz/.

func fuzzSeedSegments() [][]byte {
	segs := []*TCPSegment{
		{SrcPort: 40000, DstPort: 443, Seq: 1, Flags: FlagSYN, Window: 65535},
		{SrcPort: 40000, DstPort: 443, Seq: 2, Flags: FlagPSH | FlagACK, Window: 65535,
			Payload: []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")},
		{SrcPort: 40000, DstPort: 443, Seq: 30, Flags: FlagFIN | FlagACK, Window: 65535},
		{SrcPort: 1, DstPort: 1, Flags: FlagRST},
	}
	out := make([][]byte, 0, len(segs)+2)
	for _, s := range segs {
		out = append(out, s.Marshal())
	}
	out = append(out, out[1][:TCPHeaderLen-1]) // truncated header
	out = append(out, []byte("POST /x HTTP/1.1\r\n\r\n"))
	return out
}

func FuzzParseTCP(f *testing.F) {
	for _, seed := range fuzzSeedSegments() {
		f.Add(seed)
		// Fault-layer damage shapes: one corrupted byte in the header, one
		// in the payload, and a mid-header truncation, so the corpus starts
		// from the same surface the netsim chaos plan exercises.
		if len(seed) >= TCPHeaderLen {
			dam := append([]byte(nil), seed...)
			dam[2] ^= 0xff // dst-port byte
			f.Add(dam)
			f.Add(seed[:TCPHeaderLen/2])
		}
		if len(seed) > TCPHeaderLen {
			dam := append([]byte(nil), seed...)
			dam[len(dam)-1] ^= 0x01
			f.Add(dam)
		}
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		seg, err := ParseTCP(raw)
		if err != nil {
			return
		}
		wire := seg.Marshal()
		if !bytes.Equal(wire, raw) {
			t.Fatalf("marshal∘parse not identity:\n in  %x\n out %x", raw, wire)
		}
		again, err := ParseTCP(wire)
		if err != nil {
			t.Fatalf("re-parse of accepted segment failed: %v", err)
		}
		if again.SrcPort != seg.SrcPort || again.DstPort != seg.DstPort ||
			again.Seq != seg.Seq || again.Ack != seg.Ack ||
			again.Flags != seg.Flags || again.Window != seg.Window ||
			!bytes.Equal(again.Payload, seg.Payload) {
			t.Fatalf("re-parse diverged: %+v vs %+v", again, seg)
		}
		// Peek agrees with the full parser whenever it accepts (it may
		// reject segments with zero ports or flags; it must never invent
		// different ports).
		if info, ok := Peek(ipv4.ProtoTCP, raw); ok {
			if info.SrcPort != seg.SrcPort || info.DstPort != seg.DstPort || info.Flags != seg.Flags {
				t.Fatalf("peek %+v disagrees with parse %+v", info, seg)
			}
		}
	})
}

func FuzzParseUDP(f *testing.F) {
	seeds := []*UDPDatagram{
		{SrcPort: 40002, DstPort: 53, Payload: []byte("dns-query")},
		{SrcPort: 1, DstPort: 1},
		{SrcPort: 40002, DstPort: 53, Payload: bytes.Repeat([]byte{0}, 512)},
	}
	for _, d := range seeds {
		raw := d.Marshal()
		f.Add(raw)
		// Fault-layer damage shapes (see FuzzParseTCP).
		dam := append([]byte(nil), raw...)
		dam[1] ^= 0xff
		f.Add(dam)
		f.Add(raw[:len(raw)/2])
	}
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add([]byte{0, 53, 0, 80, 0, 8})
	f.Fuzz(func(t *testing.T, raw []byte) {
		d, err := ParseUDP(raw)
		if err != nil {
			return
		}
		wire := d.Marshal()
		if !bytes.Equal(wire, raw) {
			t.Fatalf("marshal∘parse not identity:\n in  %x\n out %x", raw, wire)
		}
		again, err := ParseUDP(wire)
		if err != nil {
			t.Fatalf("re-parse of accepted datagram failed: %v", err)
		}
		if again.SrcPort != d.SrcPort || again.DstPort != d.DstPort || !bytes.Equal(again.Payload, d.Payload) {
			t.Fatalf("re-parse diverged: %+v vs %+v", again, d)
		}
		if info, ok := Peek(ipv4.ProtoUDP, raw); ok {
			if info.SrcPort != d.SrcPort || info.DstPort != d.DstPort {
				t.Fatalf("peek %+v disagrees with parse %+v", info, d)
			}
		}
	})
}
