package transport

import (
	"bytes"
	"net/netip"
	"testing"

	"borderpatrol/internal/ipv4"
)

// These tests sweep the transport parsers with the exact damage shapes the
// netsim fault layer injects — single-byte XOR corruption and payload
// truncation at every cut point — exhaustively rather than randomly. The
// invariants are the fuzz targets': no panics, typed errors or identity
// round-trips, Peek never inventing different ports than the full parser.

// faultShapes derives every truncation prefix and a single-byte corruption
// at every position (XOR 0xff, the worst-case bit damage) from a wire form.
func faultShapes(raw []byte) [][]byte {
	out := make([][]byte, 0, 2*len(raw))
	for cut := 0; cut < len(raw); cut++ {
		out = append(out, raw[:cut])
	}
	for pos := range raw {
		dam := append([]byte(nil), raw...)
		dam[pos] ^= 0xff
		out = append(out, dam)
	}
	return out
}

func TestParseTCPUnderFaultShapes(t *testing.T) {
	for _, seed := range fuzzSeedSegments() {
		for _, raw := range faultShapes(seed) {
			seg, err := ParseTCP(raw)
			if err != nil {
				continue // typed rejection is a valid outcome
			}
			if wire := seg.Marshal(); !bytes.Equal(wire, raw) {
				t.Fatalf("accepted damaged segment broke identity:\n in  %x\n out %x", raw, wire)
			}
			if info, ok := Peek(ipv4.ProtoTCP, raw); ok {
				if info.SrcPort != seg.SrcPort || info.DstPort != seg.DstPort {
					t.Fatalf("peek %+v disagrees with parse %+v", info, seg)
				}
			}
		}
	}
}

func TestParseUDPUnderFaultShapes(t *testing.T) {
	seeds := [][]byte{
		(&UDPDatagram{SrcPort: 40002, DstPort: 53, Payload: []byte("dns-query")}).Marshal(),
		(&UDPDatagram{SrcPort: 1, DstPort: 1}).Marshal(),
	}
	for _, seed := range seeds {
		for _, raw := range faultShapes(seed) {
			d, err := ParseUDP(raw)
			if err != nil {
				continue
			}
			if wire := d.Marshal(); !bytes.Equal(wire, raw) {
				t.Fatalf("accepted damaged datagram broke identity:\n in  %x\n out %x", raw, wire)
			}
		}
	}
}

// TestPeekPacketFragmentsStayPortless: a non-first fragment has no
// transport header, so PeekPacket must refuse it — before and after any
// payload damage. The enforcer then keys the fragment's flow port-less,
// sharing the verdict of the first fragment's full 5-tuple ancestor
// instead of hallucinating ports from mid-stream bytes.
func TestPeekPacketFragmentsStayPortless(t *testing.T) {
	seg := TCPSegment{SrcPort: 40000, DstPort: 443, Seq: 9, Flags: FlagPSH | FlagACK, Window: 65535,
		Payload: []byte("GET / HTTP/1.1\r\n\r\n")}
	pkt := &ipv4.Packet{
		Header: ipv4.Header{
			Protocol: ipv4.ProtoTCP,
			Src:      netip.MustParseAddr("10.66.0.2"),
			Dst:      netip.MustParseAddr("93.184.216.34"),
			FragOff:  1, // any non-zero offset: not the first fragment
		},
		Payload: seg.Marshal(),
	}
	if _, ok := PeekPacket(pkt); ok {
		t.Fatal("PeekPacket accepted a non-first fragment")
	}
	for _, raw := range faultShapes(pkt.Payload) {
		dam := pkt.Clone()
		dam.Payload = raw
		if _, ok := PeekPacket(dam); ok {
			t.Fatal("PeekPacket accepted a damaged non-first fragment")
		}
	}
	// The same payload with FragOff 0 parses fine — the refusal above is
	// the fragment flag, not the bytes.
	whole := pkt.Clone()
	whole.Header.FragOff = 0
	if info, ok := PeekPacket(whole); !ok || info.SrcPort != 40000 {
		t.Fatalf("unfragmented peek = %+v, %v", info, ok)
	}
}
