package transport

import (
	"testing"

	"borderpatrol/internal/ipv4"
)

// benchSegment is a representative data segment: a keep-alive HTTP GET
// riding a 20-byte TCP header, the common shape on the gateway hot path.
func benchSegment() []byte {
	seg := &TCPSegment{
		SrcPort: 40001, DstPort: 443, Seq: 4096,
		Flags: FlagPSH | FlagACK, Window: 65535,
		Payload: []byte("GET /index.html HTTP/1.1\r\nHost: localhost\r\n" +
			"Connection: keep-alive\r\nContent-Length: 0\r\n\r\n"),
	}
	return seg.Marshal()
}

// BenchmarkPeekTCP is the acceptance benchmark for the per-packet path:
// flow keying and conntrack peek every packet, so the structural header
// sniff must stay in the low nanoseconds with zero allocations.
func BenchmarkPeekTCP(b *testing.B) {
	wire := benchSegment()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Peek(ipv4.ProtoTCP, wire); !ok {
			b.Fatal("peek failed")
		}
	}
}

// BenchmarkParseTCP is the server-side full validation (checksum walk
// over the payload included).
func BenchmarkParseTCP(b *testing.B) {
	wire := benchSegment()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseTCP(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalTCP is the device-side segment build cost added to
// every kernel Send.
func BenchmarkMarshalTCP(b *testing.B) {
	seg := &TCPSegment{
		SrcPort: 40001, DstPort: 443, Seq: 4096,
		Flags: FlagPSH | FlagACK, Window: 65535,
		Payload: make([]byte, 297),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf := seg.Marshal(); len(buf) != TCPHeaderLen+297 {
			b.Fatal("bad marshal")
		}
	}
}
