package monkey

import (
	"errors"
	"net/netip"
	"testing"

	"borderpatrol/internal/android"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/kernel"
)

func buildApp(t *testing.T) *android.App {
	t.Helper()
	d := android.NewDevice(android.Config{
		Addr:            netip.MustParseAddr("10.0.0.5"),
		Kernel:          kernel.Config{AllowUnprivilegedIPOptions: true},
		XposedInstalled: true,
	})
	apk := &dex.APK{
		PackageName: "com.corp.app",
		VersionCode: 1,
		Dexes: []*dex.File{{Classes: []dex.ClassDef{{
			Package: "com/corp/app",
			Name:    "Main",
			Methods: []dex.MethodDef{
				{Name: "a", Proto: "()V", File: "M.java", StartLine: 1, EndLine: 10},
				{Name: "b", Proto: "()V", File: "M.java", StartLine: 20, EndLine: 30},
			},
		}}}},
	}
	ep := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.7"), 443)
	funcs := []android.Functionality{
		{
			Name:     "common",
			CallPath: []dex.Frame{{Class: "com/corp/app/Main", Method: "a", File: "M.java", Line: 3}},
			Op:       android.NetOp{Endpoint: ep},
			Weight:   10,
		},
		{
			Name:     "rare",
			CallPath: []dex.Frame{{Class: "com/corp/app/Main", Method: "b", File: "M.java", Line: 22}},
			Op:       android.NetOp{Endpoint: ep},
			Weight:   1,
		},
	}
	app, err := d.InstallApp(apk, funcs, android.ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestRunDeterministic(t *testing.T) {
	app := buildApp(t)
	cfg := DefaultConfig(42)
	r1, err := Run(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	app2 := buildApp(t)
	r2, err := Run(app2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Invocations != r2.Invocations || len(r1.Packets) != len(r2.Packets) {
		t.Fatalf("runs differ: %d/%d vs %d/%d", r1.Invocations, len(r1.Packets), r2.Invocations, len(r2.Packets))
	}
}

func TestRunEventAccounting(t *testing.T) {
	app := buildApp(t)
	rep, err := Run(app, Config{Events: 5000, NetworkTriggerProb: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventsInjected != 5000 {
		t.Fatalf("events = %d", rep.EventsInjected)
	}
	// ~2% of 5000 ≈ 100 invocations; allow wide randomness bounds.
	if rep.Invocations < 50 || rep.Invocations > 200 {
		t.Fatalf("invocations = %d, want ≈100", rep.Invocations)
	}
	// Each invocation opens one TCP connection: SYN + request + FIN.
	if len(rep.Packets) != 3*(rep.Invocations-rep.Errors) {
		t.Fatalf("packets %d vs invocations %d errors %d", len(rep.Packets), rep.Invocations, rep.Errors)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
}

func TestWeightBias(t *testing.T) {
	app := buildApp(t)
	rep, err := Run(app, Config{Events: 20000, NetworkTriggerProb: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	common := rep.InvocationsByName["common"]
	rare := rep.InvocationsByName["rare"]
	if common <= rare*3 {
		t.Fatalf("weights not honoured: common=%d rare=%d", common, rare)
	}
	if rep.Coverage != 1.0 {
		t.Fatalf("coverage = %f with 1000 expected invocations", rep.Coverage)
	}
}

func TestRunErrors(t *testing.T) {
	app := buildApp(t)
	if _, err := Run(app, Config{Events: 0, NetworkTriggerProb: 0.1}); err == nil {
		t.Error("zero events accepted")
	}
	d := android.NewDevice(android.Config{Addr: netip.MustParseAddr("10.0.0.6"), XposedInstalled: true})
	apk := &dex.APK{PackageName: "com.empty", VersionCode: 1, Dexes: []*dex.File{{Classes: []dex.ClassDef{{
		Package: "c", Name: "C", Methods: []dex.MethodDef{{Name: "m", Proto: "()V", File: "C.java", StartLine: 1, EndLine: 2}},
	}}}}}
	empty, err := d.InstallApp(apk, nil, android.ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(empty, DefaultConfig(1)); !errors.Is(err, ErrNoFunctionality) {
		t.Errorf("err = %v", err)
	}
}
