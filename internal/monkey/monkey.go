// Package monkey is the adb-monkey stand-in (paper §VI-A): a seeded random
// UI-event generator. The paper issues 5,000 random events per app; most UI
// events (touches, swipes, key presses) do not reach the network, while a
// fraction lands on widgets wired to network functionality. The exerciser
// models exactly that: every event picks an action, and network-triggering
// events select a functionality weighted by the app's behaviour graph.
package monkey

import (
	"errors"
	"fmt"
	"math/rand"

	"borderpatrol/internal/android"
	"borderpatrol/internal/ipv4"
)

// Config controls an exerciser run.
type Config struct {
	// Events is the number of UI events to inject (the paper uses 5,000).
	Events int
	// NetworkTriggerProb is the probability that one event lands on a
	// network-wired widget.
	NetworkTriggerProb float64
	// Seed drives the event stream.
	Seed int64
}

// DefaultConfig mirrors the paper's exerciser settings.
func DefaultConfig(seed int64) Config {
	return Config{Events: 5000, NetworkTriggerProb: 0.02, Seed: seed}
}

// Report summarizes one run.
type Report struct {
	// EventsInjected counts all UI events.
	EventsInjected int
	// Invocations counts network functionality triggers.
	Invocations int
	// InvocationsByName counts triggers per functionality.
	InvocationsByName map[string]int
	// Packets are all packets the app emitted during the run.
	Packets []*ipv4.Packet
	// Coverage is the fraction of the app's functionalities triggered at
	// least once (the paper notes monkey coverage bounds its Fig. 3 from
	// below).
	Coverage float64
	// Errors counts failed invocations.
	Errors int
}

// ErrNoFunctionality reports an app with nothing to exercise.
var ErrNoFunctionality = errors.New("monkey: app has no functionalities")

// Run exercises one app.
func Run(app *android.App, cfg Config) (*Report, error) {
	names := app.Functionalities()
	if len(names) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoFunctionality, app.APK.PackageName)
	}
	if cfg.Events <= 0 {
		return nil, fmt.Errorf("monkey: invalid event count %d", cfg.Events)
	}
	// Build the weighted trigger table.
	weights := make([]float64, len(names))
	total := 0.0
	for i, n := range names {
		f, _ := app.Functionality(n)
		w := f.Weight
		if w < 0 {
			w = 0
		}
		if w == 0 && f.Weight == 0 {
			// Unweighted behaviour graphs exercise uniformly.
			w = 1
		}
		weights[i] = w
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("monkey: app %s has zero total weight", app.APK.PackageName)
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{InvocationsByName: make(map[string]int, len(names))}
	for ev := 0; ev < cfg.Events; ev++ {
		rep.EventsInjected++
		if r.Float64() >= cfg.NetworkTriggerProb {
			continue // touch/swipe/key event with no network effect
		}
		name := pickWeighted(r, names, weights, total)
		res, err := app.Invoke(name)
		rep.Invocations++
		rep.InvocationsByName[name]++
		if err != nil {
			rep.Errors++
			continue
		}
		rep.Packets = append(rep.Packets, res.Packets...)
	}
	triggered := 0
	for _, n := range names {
		if rep.InvocationsByName[n] > 0 {
			triggered++
		}
	}
	rep.Coverage = float64(triggered) / float64(len(names))
	return rep, nil
}

func pickWeighted(r *rand.Rand, names []string, weights []float64, total float64) string {
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return names[i]
		}
	}
	return names[len(names)-1]
}
