package dataplane

import (
	"fmt"
	"net/netip"
	"testing"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/tag"
	"borderpatrol/internal/transport"
)

// benchSetup builds a flow-cached enforcer against the §VI-B1
// validation-scale rule set (1,050 library deny rules — none hash-
// decisive, so hits come from promoted flow entries, not the rule stage)
// plus one benign keep-alive packet, mirroring the enforcer package's
// benchEnforcer so the numbers compare across layers.
func benchSetup(b *testing.B) (*enforcer.Enforcer, *ipv4.Packet) {
	b.Helper()
	apk := testAPK()
	db := analyzer.NewDatabase()
	if err := db.Add(apk); err != nil {
		b.Fatal(err)
	}
	rules := make([]policy.Rule, 0, 1050)
	for i := 0; i < 1050; i++ {
		rules = append(rules, policy.Rule{
			Action: policy.Deny,
			Level:  policy.LevelLibrary,
			Target: fmt.Sprintf("com/blocked/lib%04d", i),
		})
	}
	eng, err := policy.NewEngine(rules, policy.VerdictAllow)
	if err != nil {
		b.Fatal(err)
	}
	enf := enforcer.New(enforcer.Config{
		Flows: enforcer.NewFlowCache(flowtable.Config{Capacity: 65536}),
	}, db, eng)

	tg := tag.Tag{AppHash: apk.Truncated(), Indexes: []uint32{0, 1}}
	payload, err := tg.Encode()
	if err != nil {
		b.Fatal(err)
	}
	seg := transport.TCPSegment{
		SrcPort: 40001, DstPort: 443, Seq: 1,
		Flags: transport.FlagPSH | transport.FlagACK, Window: 65535,
		Payload: []byte("POST /x HTTP/1.1\r\n\r\n"),
	}
	pkt := &ipv4.Packet{
		Header: ipv4.Header{
			TTL:      64,
			Protocol: ipv4.ProtoTCP,
			Src:      netip.MustParseAddr("10.66.0.2"),
			Dst:      netip.MustParseAddr("93.184.216.34"),
		},
		Payload: seg.Marshal(),
	}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: payload})
	return enf, pkt
}

// warmCore promotes the packet past the doorkeeper so every later Probe
// is a hit.
func warmCore(b *testing.B, enf *enforcer.Enforcer, core kernel.DataplaneCore, pkt *ipv4.Packet) {
	b.Helper()
	res := enf.Process(pkt)
	core.Promote(pkt, kernel.VerdictAccept, &res)
	core.Promote(pkt, kernel.VerdictAccept, &res)
	if _, _, ok := core.Probe(pkt); !ok {
		b.Fatal("warm-up did not land")
	}
}

// BenchmarkDataplaneProbeHit is the raw fast path: key extraction, one
// flat-table probe, the generation check, and the forward-seq update —
// the whole per-packet cost of an established flow below the enforcer.
func BenchmarkDataplaneProbeHit(b *testing.B) {
	enf, pkt := benchSetup(b)
	dp := New(Config{Cores: 1}, enf)
	core := dp.Acquire()
	defer core.Release()
	warmCore(b, enf, core, pkt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, _, ok := core.Probe(pkt); !ok || v != kernel.VerdictAccept {
			b.Fatal("miss on warmed core")
		}
	}
}

// BenchmarkDataplaneParallel drives one warmed flow per leased core from
// every proc (run with -cpu 1,4,16,64). Cores share no mutable state —
// the only cross-core traffic is the read-only generation load — so
// ns/op must stay flat as procs grow; any slope is a sharing bug.
func BenchmarkDataplaneParallel(b *testing.B) {
	enf, pkt := benchSetup(b)
	dp := New(Config{Cores: 64}, enf)
	enf.Process(pkt) // fill the flow cache once; promotions reuse it
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		core := dp.Acquire()
		if core == nil {
			b.Error("no free core")
			return
		}
		defer core.Release()
		res := enf.Process(pkt)
		core.Promote(pkt, kernel.VerdictAccept, &res)
		core.Promote(pkt, kernel.VerdictAccept, &res)
		for pb.Next() {
			if _, _, ok := core.Probe(pkt); !ok {
				b.Error("miss on warmed core")
				return
			}
		}
	})
}

// keepAliveNetfilter assembles the gateway-shaped kernel stack: an
// NFQUEUE 1 batch handler over the enforcer, optionally fronted by the
// match-action stage.
func keepAliveNetfilter(b *testing.B, withDP bool) (*kernel.Netfilter, []*ipv4.Packet) {
	b.Helper()
	enf, pkt := benchSetup(b)
	nf := kernel.NewNetfilter()
	nf.RegisterBatchQueue(1, func(pkts []*ipv4.Packet) []kernel.BatchVerdict {
		results := enf.ProcessBatch(pkts, nil)
		out := make([]kernel.BatchVerdict, len(pkts))
		for i := range results {
			out[i] = kernel.BatchVerdict{Verdict: kernel.VerdictAccept, Aux: &results[i]}
			if results[i].Verdict == policy.VerdictDrop {
				out[i].Verdict = kernel.VerdictDrop
			}
		}
		return out
	})
	if withDP {
		nf.RegisterDataplane(1, New(Config{Cores: 1}, enf))
	}
	nf.Append(kernel.ChainOutput, kernel.Rule{Target: kernel.TargetQueue, QueueNum: 1})
	batch := make([]*ipv4.Packet, 64)
	for i := range batch {
		batch[i] = pkt
	}
	// Two warm batches: flow-cache fill, then doorkeeper pass + promotion.
	for i := 0; i < 2; i++ {
		if _, err := nf.OutputBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	return nf, batch
}

// BenchmarkDataplaneBatchKeepAlive pushes 64-packet keep-alive trains
// through the full kernel batch traversal with the match-action stage
// installed: every packet is answered by a core-local table probe and
// never crosses into the enforcer. Reported ns/op is per packet; the
// baseline to beat is BenchmarkProcessBatchKeepAlive's ~45 ns enforcer
// memo path (and BenchmarkKernelBatchKeepAlive below, the same traversal
// without the stage).
func BenchmarkDataplaneBatchKeepAlive(b *testing.B) {
	nf, batch := keepAliveNetfilter(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(batch) {
		res, err := nf.OutputBatch(batch)
		if err != nil || res[0].Out == nil {
			b.Fatal("keep-alive packet lost")
		}
	}
}

// BenchmarkKernelBatchKeepAlive is the same traversal handler-only — the
// before/after comparison for the match-action stage.
func BenchmarkKernelBatchKeepAlive(b *testing.B) {
	nf, batch := keepAliveNetfilter(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(batch) {
		res, err := nf.OutputBatch(batch)
		if err != nil || res[0].Out == nil {
			b.Fatal("keep-alive packet lost")
		}
	}
}
