package dataplane

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/tag"
	"borderpatrol/internal/transport"
)

// tickClock is a hand-cranked virtual clock for TTL tests.
type tickClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *tickClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *tickClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func testAPK() *dex.APK {
	return &dex.APK{
		PackageName: "com.corp.files",
		VersionCode: 1,
		Dexes: []*dex.File{{
			Classes: []dex.ClassDef{
				{
					Package: "com/corp/files",
					Name:    "SyncEngine",
					Methods: []dex.MethodDef{
						{Name: "download", Proto: "()V", File: "S.java", StartLine: 10, EndLine: 20},
						{Name: "upload", Proto: "()V", File: "S.java", StartLine: 30, EndLine: 40},
					},
				},
				{
					Package: "com/flurry/sdk",
					Name:    "Agent",
					Methods: []dex.MethodDef{
						{Name: "beacon", Proto: "()V", File: "A.java", StartLine: 5, EndLine: 15},
					},
				},
			},
		}},
	}
}

// buildEnv stands up a database, engine, and flow-cached enforcer over the
// test APK — the slow path the dataplane compiles from.
func buildEnv(t testing.TB, rules []policy.Rule, def policy.Verdict) (*enforcer.Enforcer, *analyzer.Database, *dex.APK) {
	t.Helper()
	apk := testAPK()
	db := analyzer.NewDatabase()
	if err := db.Add(apk); err != nil {
		t.Fatal(err)
	}
	eng, err := policy.NewEngine(rules, def)
	if err != nil {
		t.Fatal(err)
	}
	enf := enforcer.New(enforcer.Config{
		Flows: enforcer.NewFlowCache(flowtable.Config{Capacity: 4096}),
	}, db, eng)
	return enf, db, apk
}

// tcpPkt builds one tagged TCP packet of a flow: fixed source, dst varied
// by dstLo, real transport header so the 5-tuple keys complete.
func tcpPkt(t testing.TB, hash dex.TruncatedHash, indexes []uint32, dstLo byte, srcPort uint16, flags byte, seq uint32, payload []byte) *ipv4.Packet {
	t.Helper()
	tg := tag.Tag{AppHash: hash, Indexes: indexes}
	opt, err := tg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	seg := transport.TCPSegment{
		SrcPort: srcPort, DstPort: 443, Seq: seq,
		Flags: flags, Window: 65535, Payload: payload,
	}
	pkt := &ipv4.Packet{
		Header: ipv4.Header{
			TTL:      64,
			Protocol: ipv4.ProtoTCP,
			Src:      netip.MustParseAddr("10.66.0.2"),
			Dst:      netip.AddrFrom4([4]byte{93, 184, 216, dstLo}),
		},
		Payload: seg.Marshal(),
	}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: opt})
	return pkt
}

func dataPkt(t testing.TB, hash dex.TruncatedHash, indexes []uint32, dstLo byte, srcPort uint16) *ipv4.Packet {
	return tcpPkt(t, hash, indexes, dstLo, srcPort, transport.FlagPSH|transport.FlagACK, 1000, []byte("POST /x HTTP/1.1\r\n\r\n"))
}

// processAndPromote runs the slow path for one packet and promotes the
// outcome, exactly as the netfilter batch branch does on a miss.
func processAndPromote(enf *enforcer.Enforcer, core kernel.DataplaneCore, pkt *ipv4.Packet) enforcer.Result {
	res := enf.Process(pkt)
	v := kernel.VerdictAccept
	if res.Verdict == policy.VerdictDrop {
		v = kernel.VerdictDrop
	}
	core.Promote(pkt, v, &res)
	return res
}

// denyFlurry is the library rule set: verdicts depend on the stack, so
// nothing is hash-decisive and the compiled rule stage stays empty.
func denyFlurry() []policy.Rule {
	return []policy.Rule{{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}}
}

func TestMissPromoteHitRoundTrip(t *testing.T) {
	enf, _, apk := buildEnv(t, denyFlurry(), policy.VerdictAllow)
	dp := New(Config{Cores: 1}, enf)
	core := dp.Acquire()
	if core == nil {
		t.Fatal("no core")
	}
	defer core.Release()

	allow := dataPkt(t, apk.Truncated(), []uint32{0}, 34, 40001)
	deny := dataPkt(t, apk.Truncated(), []uint32{2, 0}, 34, 40002)

	if _, _, ok := core.Probe(allow); ok {
		t.Fatal("empty table answered")
	}
	// First promotion only primes the doorkeeper; the second lands.
	processAndPromote(enf, core, allow)
	if st := dp.Stats(); st.Promotions != 0 || st.AdmissionSkips != 1 {
		t.Fatalf("after first promote: %+v", st)
	}
	if _, _, ok := core.Probe(allow); ok {
		t.Fatal("doorkeeper-primed flow answered")
	}
	processAndPromote(enf, core, allow)
	if st := dp.Stats(); st.Promotions != 1 {
		t.Fatalf("after second promote: %+v", st)
	}

	v, aux, ok := core.Probe(allow)
	if !ok || v != kernel.VerdictAccept {
		t.Fatalf("hit = %v, %v", v, ok)
	}
	res, isRes := aux.(*enforcer.Result)
	if !isRes || res.Verdict != policy.VerdictAllow || res.Cause != enforcer.DropNone {
		t.Fatalf("hit aux = %+v", aux)
	}

	// The deny flow promotes and hits with its cause intact.
	processAndPromote(enf, core, deny)
	processAndPromote(enf, core, deny)
	v, aux, ok = core.Probe(deny)
	if !ok || v != kernel.VerdictDrop {
		t.Fatalf("deny hit = %v, %v", v, ok)
	}
	if res := aux.(*enforcer.Result); res.Cause != enforcer.DropPolicy {
		t.Fatalf("deny cause = %v", res.Cause)
	}
}

func TestUntaggedNeverAnswered(t *testing.T) {
	enf, _, apk := buildEnv(t, nil, policy.VerdictAllow)
	dp := New(Config{Cores: 1}, enf)
	core := dp.Acquire()
	defer core.Release()

	pkt := dataPkt(t, apk.Truncated(), []uint32{0}, 34, 40001)
	pkt.Header.Options = nil // strip the tag
	if _, _, ok := core.Probe(pkt); ok {
		t.Fatal("untagged packet answered by dataplane")
	}
	res := enf.Process(pkt)
	core.Promote(pkt, kernel.VerdictDrop, &res)
	core.Promote(pkt, kernel.VerdictDrop, &res)
	if _, _, ok := core.Probe(pkt); ok {
		t.Fatal("untagged packet promoted into table")
	}
	if st := dp.Stats(); st.Promotions != 0 {
		t.Fatalf("untagged promotion landed: %+v", st)
	}
}

func TestGenerationBumpInvalidatesOnContact(t *testing.T) {
	enf, _, apk := buildEnv(t, nil, policy.VerdictAllow)
	dp := New(Config{Cores: 1}, enf)
	core := dp.Acquire()
	defer core.Release()

	pkt := dataPkt(t, apk.Truncated(), []uint32{0}, 34, 40001)
	processAndPromote(enf, core, pkt)
	processAndPromote(enf, core, pkt)
	if _, _, ok := core.Probe(pkt); !ok {
		t.Fatal("no hit before reconfiguration")
	}

	// A rule swap moves the generation: the entry is stale on contact.
	if err := enf.Engine().SetRules(denyFlurry()); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := core.Probe(pkt); ok {
		t.Fatal("stale entry served after SetRules")
	}
	if st := dp.Stats(); st.StaleDrops != 1 {
		t.Fatalf("stale drops = %+v", st)
	}
}

func TestInvalidatePurgesAcrossAcquire(t *testing.T) {
	enf, _, apk := buildEnv(t, nil, policy.VerdictAllow)
	dp := New(Config{Cores: 1}, enf)
	pkt := dataPkt(t, apk.Truncated(), []uint32{0}, 34, 40001)

	core := dp.Acquire()
	processAndPromote(enf, core, pkt)
	processAndPromote(enf, core, pkt)
	if _, _, ok := core.Probe(pkt); !ok {
		t.Fatal("no hit")
	}
	core.Release()

	dp.Invalidate(pkt) // the gateway saw the FIN
	core = dp.Acquire()
	defer core.Release()
	if _, _, ok := core.Probe(pkt); ok {
		t.Fatal("closed flow still answered after purge drain")
	}
	if st := dp.Stats(); st.Invalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlushClearsOnNextAcquire(t *testing.T) {
	enf, _, apk := buildEnv(t, nil, policy.VerdictAllow)
	dp := New(Config{Cores: 1}, enf)
	pkt := dataPkt(t, apk.Truncated(), []uint32{0}, 34, 40001)

	core := dp.Acquire()
	processAndPromote(enf, core, pkt)
	processAndPromote(enf, core, pkt)
	core.Release()

	dp.Flush() // gateway restart
	core = dp.Acquire()
	defer core.Release()
	if _, _, ok := core.Probe(pkt); ok {
		t.Fatal("entry survived the restart epoch")
	}
	if st := dp.Stats(); st.Flushes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTTLExpiresEntries(t *testing.T) {
	clk := &tickClock{}
	enf, _, apk := buildEnv(t, nil, policy.VerdictAllow)
	dp := New(Config{Cores: 1, TTL: time.Minute, Clock: clk}, enf)
	pkt := dataPkt(t, apk.Truncated(), []uint32{0}, 34, 40001)

	core := dp.Acquire()
	processAndPromote(enf, core, pkt)
	processAndPromote(enf, core, pkt)
	if _, _, ok := core.Probe(pkt); !ok {
		t.Fatal("no hit")
	}
	core.Release()

	clk.advance(2 * time.Minute)
	core = dp.Acquire()
	defer core.Release()
	if _, _, ok := core.Probe(pkt); ok {
		t.Fatal("expired entry served")
	}
	if st := dp.Stats(); st.Expired != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRuleStageDecisiveHashDeny: a hash-level deny that wins against every
// stack answers on first contact — no promotion round needed — with the
// exact verdict and cause the enforcer produces, while structurally
// suspect tags (bad index, truncation, unknown app) still fall through.
func TestRuleStageDecisiveHashDeny(t *testing.T) {
	apk := testAPK()
	rules := []policy.Rule{{Action: policy.Deny, Level: policy.LevelHash, Target: apk.Truncated().String()}}
	enf, _, _ := buildEnv(t, rules, policy.VerdictAllow)
	dp := New(Config{Cores: 1}, enf)
	core := dp.Acquire()
	defer core.Release()

	pkt := dataPkt(t, apk.Truncated(), []uint32{0, 1}, 34, 40001)
	v, aux, ok := core.Probe(pkt)
	if !ok || v != kernel.VerdictDrop {
		t.Fatalf("rule stage answer = %v, %v", v, ok)
	}
	if res := aux.(*enforcer.Result); res.Cause != enforcer.DropPolicy {
		t.Fatalf("cause = %v", res.Cause)
	}
	ref := enf.Process(pkt)
	if ref.Verdict != policy.VerdictDrop || ref.Cause != enforcer.DropPolicy {
		t.Fatalf("enforcer disagrees: %+v", ref)
	}
	if st := dp.Stats(); st.RuleHits != 1 || st.RuleStageApps != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// An out-of-range index would be DropBadIndex at the enforcer: the
	// stage must not answer it.
	bad := dataPkt(t, apk.Truncated(), []uint32{99}, 35, 40002)
	if _, _, ok := core.Probe(bad); ok {
		t.Fatal("stage answered a bad-index tag")
	}
	if res := enf.Process(bad); res.Cause != enforcer.DropBadIndex {
		t.Fatalf("reference cause = %v", res.Cause)
	}

	// An unknown app would be DropUnknownApp: also a forced miss.
	var ghost dex.TruncatedHash
	ghost[0] = 0xee
	unknown := dataPkt(t, ghost, []uint32{0}, 36, 40003)
	if _, _, ok := core.Probe(unknown); ok {
		t.Fatal("stage answered an unknown app")
	}
}

// TestEquivalenceMixedTraffic drives a mixed packet corpus — clean and
// tracker stacks, SYN/data/FIN control segments, duplicated and reordered
// fault shapes, fragments, bad indexes, malformed tags, unknown apps —
// through the dataplane-fronted path and a pure-enforcer reference, and
// requires identical verdicts and causes packet by packet, pass by pass.
func TestEquivalenceMixedTraffic(t *testing.T) {
	apk := testAPK()
	rules := append(denyFlurry(),
		policy.Rule{Action: policy.Deny, Level: policy.LevelMethod, Target: "Lcom/corp/files/SyncEngine;->upload()V"})

	build := func() *enforcer.Enforcer {
		db := analyzer.NewDatabase()
		if err := db.Add(apk); err != nil {
			t.Fatal(err)
		}
		eng, err := policy.NewEngine(rules, policy.VerdictAllow)
		if err != nil {
			t.Fatal(err)
		}
		return enforcer.New(enforcer.Config{
			Flows: enforcer.NewFlowCache(flowtable.Config{Capacity: 4096}),
		}, db, eng)
	}
	fast := build() // fronted by the dataplane
	ref := build()  // pure slow path
	dp := New(Config{Cores: 1}, fast)

	hash := apk.Truncated()
	var corpus []*ipv4.Packet
	addConn := func(dstLo byte, srcPort uint16, indexes []uint32) {
		payload := []byte("POST /x HTTP/1.1\r\n\r\n")
		corpus = append(corpus,
			tcpPkt(t, hash, indexes, dstLo, srcPort, transport.FlagSYN, 1, nil))
		seq := uint32(2)
		for i := 0; i < 3; i++ {
			corpus = append(corpus,
				tcpPkt(t, hash, indexes, dstLo, srcPort, transport.FlagPSH|transport.FlagACK, seq, payload))
			seq += uint32(len(payload))
		}
		corpus = append(corpus,
			tcpPkt(t, hash, indexes, dstLo, srcPort, transport.FlagFIN|transport.FlagACK, seq, nil))
	}
	addConn(34, 40001, []uint32{0})    // clean: allow
	addConn(35, 40002, []uint32{2, 0}) // tracker frame: deny
	addConn(36, 40003, []uint32{1})    // denied method: deny
	// Fault shapes: duplicate the clean connection's first data segment,
	// reorder the denied connection's tail.
	corpus = append(corpus, corpus[1].Clone())
	corpus = append(corpus, corpus[8].Clone(), corpus[7].Clone())
	// A non-first fragment: ports zero out in the flow key.
	frag := dataPkt(t, hash, []uint32{0}, 37, 40004)
	frag.Header.FragOff = 185
	corpus = append(corpus, frag)
	// Structural negatives.
	corpus = append(corpus, dataPkt(t, hash, []uint32{99}, 38, 40005)) // bad index
	var ghost dex.TruncatedHash
	ghost[7] = 0x5a
	corpus = append(corpus, dataPkt(t, ghost, []uint32{0}, 39, 40006)) // unknown app
	mal := dataPkt(t, hash, []uint32{0}, 40, 40007)
	mal.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: []byte{tag.Version << 4, 1, 2}}) // truncated header
	corpus = append(corpus, mal)
	unt := dataPkt(t, hash, []uint32{0}, 41, 40008)
	unt.Header.Options = nil
	corpus = append(corpus, unt) // untagged

	for pass := 0; pass < 3; pass++ {
		core := dp.Acquire()
		if core == nil {
			t.Fatal("no core")
		}
		for i, pkt := range corpus {
			want := ref.Process(pkt)
			var got enforcer.Result
			if v, aux, ok := core.Probe(pkt); ok {
				got = *aux.(*enforcer.Result)
				wantV := kernel.VerdictAccept
				if got.Verdict == policy.VerdictDrop {
					wantV = kernel.VerdictDrop
				}
				if v != wantV {
					t.Fatalf("pass %d pkt %d: verdict/aux mismatch %v vs %+v", pass, i, v, got)
				}
			} else {
				got = processAndPromote(fast, core, pkt)
			}
			if got.Verdict != want.Verdict || got.Cause != want.Cause {
				t.Fatalf("pass %d pkt %d: dataplane path = %v/%v, enforcer = %v/%v",
					pass, i, got.Verdict, got.Cause, want.Verdict, want.Cause)
			}
		}
		core.Release()
	}
	if st := dp.Stats(); st.Hits == 0 {
		t.Fatalf("equivalence ran entirely on the slow path: %+v", st)
	}
}

// TestPromoteVsInvalidateFlip pins the generation contract under -race:
// promoter goroutines hammer probe→process→promote while the main
// goroutine flips the rule set between allow-everything and a decisive
// hash deny. After every flip, a probe may miss or may hit — but a hit
// must carry the verdict the *current* rules produce. Zero stale-table
// verdicts across each bump.
func TestPromoteVsInvalidateFlip(t *testing.T) {
	apk := testAPK()
	denyAll := []policy.Rule{{Action: policy.Deny, Level: policy.LevelHash, Target: apk.Truncated().String()}}
	enf, _, _ := buildEnv(t, nil, policy.VerdictAllow)
	dp := New(Config{Cores: 4}, enf)
	pkt := dataPkt(t, apk.Truncated(), []uint32{0}, 34, 40001)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				core := dp.Acquire()
				if core == nil {
					continue
				}
				for i := 0; i < 32; i++ {
					if _, _, ok := core.Probe(pkt); !ok {
						processAndPromote(enf, core, pkt)
					}
				}
				core.Release()
			}
		}()
	}

	acquire := func() kernel.DataplaneCore {
		for {
			if core := dp.Acquire(); core != nil {
				return core
			}
		}
	}
	for i := 0; i < 300; i++ {
		if err := enf.Engine().SetRules(denyAll); err != nil {
			t.Fatal(err)
		}
		core := actOn(t, acquire(), pkt, kernel.VerdictDrop)
		core.Release()
		if err := enf.Engine().SetRules(nil); err != nil {
			t.Fatal(err)
		}
		core = actOn(t, acquire(), pkt, kernel.VerdictAccept)
		core.Release()
	}
	close(stop)
	wg.Wait()
}

// actOn probes once on the given core and fails the test if a hit carries
// any verdict but want — the stale-table signature.
func actOn(t *testing.T, core kernel.DataplaneCore, pkt *ipv4.Packet, want kernel.Verdict) kernel.DataplaneCore {
	t.Helper()
	if v, _, ok := core.Probe(pkt); ok && v != want {
		t.Fatalf("stale verdict served after generation bump: got %v, want %v", v, want)
	}
	return core
}

// TestForwardSeqAnomalyCounted: duplicated or discontinuous forward data
// segments on a hit bump the anomaly counter but never change the verdict
// (fault-shaped traffic is legitimate in the forward direction).
func TestForwardSeqAnomalyCounted(t *testing.T) {
	enf, _, apk := buildEnv(t, nil, policy.VerdictAllow)
	dp := New(Config{Cores: 1}, enf)
	core := dp.Acquire()
	defer core.Release()

	hash := apk.Truncated()
	mk := func(seq uint32) *ipv4.Packet {
		return tcpPkt(t, hash, []uint32{0}, 34, 40001, transport.FlagPSH|transport.FlagACK, seq, []byte("data"))
	}
	p := mk(1000)
	processAndPromote(enf, core, p)
	processAndPromote(enf, core, p)

	if _, _, ok := core.Probe(mk(1000)); !ok { // primes fwdNext=1004
		t.Fatal("no hit")
	}
	if _, _, ok := core.Probe(mk(1004)); !ok { // continuous
		t.Fatal("no hit")
	}
	core.Release() // anomaly tallies are lease-local; flush before reading
	if st := dp.Stats(); st.SeqAnomalies != 0 {
		t.Fatalf("continuous stream counted: %+v", st)
	}
	core = dp.Acquire()
	if v, _, ok := core.Probe(mk(1004)); !ok || v != kernel.VerdictAccept { // duplicate
		t.Fatal("duplicate dropped")
	}
	core.Release()
	if st := dp.Stats(); st.SeqAnomalies != 1 {
		t.Fatalf("anomalies = %+v", st)
	}
	core = dp.Acquire()
}
