// Package dataplane implements a per-core compiled match-action stage
// below the Policy Enforcer — the software analogue of the P4 switch
// tables Poise ("Programmable In-Network Security for Context-aware BYOD
// Policies") compiles the same policy class into. Where the enforcer's
// flow table is a sharded cross-core cache probed from user space, the
// dataplane is what a hardware offload would be: each simulated core owns
// a flat open-addressed array of fixed-size, pointer-free entries keyed
// on the (5-tuple, tag bytes) flow identity, probed at the kernel's
// netfilter layer before any queue handler runs. A probe is a hash, at
// most a handful of linear slot inspections, and zero shared-state
// traffic; only misses fall through to the full enforcer, whose results
// are promoted back into the owning core's table.
//
// # Invalidation contract
//
// The dataplane inherits the flow table's generation contract: every
// entry is stamped with the enforcer's combined cache generation
// (policy ⊕ database ⊕ device-context), probes compare against the live
// generation read per packet, and any mismatch makes the entry stale on
// contact — a SetRules/AddEntry/context change invalidates every core's
// state without touching it. Entries promoted mid-reconfiguration are
// stamped with the generation read when the core was acquired (before
// the enforcer evaluated), so a verdict computed under old rules can
// never masquerade as current.
//
// Connection teardown crosses cores through a bounded purge ring: the
// gateway publishes the closed flow's digest, and each core drains the
// ring when it is next acquired (falling back to a full table clear if
// it lags more than half the ring). A gateway restart bumps a flush
// epoch that clears each core's table on next acquisition. Both paths
// are advisory-latency, mandatory-correctness: a not-yet-drained entry
// can only serve the same verdict a fresh evaluation would produce,
// because anything verdict-changing moves the generation.
//
// # What a hit carries
//
// Like a hardware offload, the fast path returns only the verdict and
// drop cause — not the decoded stack or policy decision the enforcer's
// Result carries (that metadata lives in the slow path and the audit
// trail). Untagged packets are never answered here, so the enforcer's
// untagged accounting stays exact.
//
// # Directional state
//
// Each entry also tracks forward-direction TCP sequence continuity
// (anomalies are counted, never dropped — a faulty wire legitimately
// duplicates and reorders), while the response half of a connection is
// enforced by the gateway's conntrack with the dataplane's
// seq-injection drop cause. See netsim.Conntrack.ObserveResponse.
package dataplane

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"borderpatrol/internal/devctx"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/metrics"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/tag"
	"borderpatrol/internal/transport"
)

// Table geometry.
const (
	// defaultEntries is the per-core table size when Config.Entries is 0.
	defaultEntries = 2048
	// probeWindow bounds the linear probe: an insert that finds no free
	// slot within the window evicts the oldest entry in it, so lookups
	// inspect at most probeWindow slots.
	probeWindow = 8
	// purgeRingSize is the teardown ring shared by all cores. A core that
	// falls more than half the ring behind clears its whole table instead
	// of replaying invalidation it may have lost to wrap-around.
	purgeRingSize = 1024
	// doorkeeperSize is the per-core recent-miss filter: a flow is
	// promoted only on its second miss, so a flood of unique flows cannot
	// churn established entries out of the table (the flat-table analogue
	// of the flow table's miss-ring admission).
	doorkeeperSize = 64
)

// Entry states.
const (
	stateEmpty uint8 = iota // never used; terminates probe chains
	stateLive               // holds a valid promotion
	stateTomb               // deleted; probe chains continue through it
)

// entry is one match-action slot: fixed size, no pointers, no sharing —
// the layout a hardware table would hold. Addresses are raw IPv4 words
// (netip.Addr carries an interned pointer and is banned here).
type entry struct {
	digest uint64 // key hash; filter before the full compare
	gen    uint64 // enforcer cache generation at promotion
	born   int64  // virtual ns at promotion (TTL)

	src, dst uint32 // big-endian IPv4 addresses
	fwdNext  uint32 // next expected forward TCP sequence number

	srcPort, dstPort uint16

	proto   uint8
	tagLen  uint8
	state   uint8
	verdict uint8 // policy.Verdict
	cause   uint8 // enforcer.DropCause
	fwdSeen uint8 // 1 once fwdNext is primed

	tagBytes [tag.MaxEncoded]byte
}

// Config sizes the dataplane.
type Config struct {
	// Cores is the number of independent single-owner tables (≤0 picks 1).
	// Size it to the worker pool that drains batches: each concurrent
	// drain leases one core for the duration of its burst.
	Cores int
	// Entries is the per-core table size, rounded up to a power of two
	// (0 = 2048). Each entry is ~88 bytes.
	Entries int
	// TTL expires entries older than this in virtual time (0 = no expiry;
	// requires Clock).
	TTL time.Duration
	// Clock supplies virtual time for TTL expiry (nil = no expiry).
	Clock devctx.Clock
}

// Stats snapshots the dataplane's counters.
type Stats struct {
	// Hits are probes answered from a core's flat table; RuleHits are
	// probes answered by the compiled hash-decisive rule stage (and then
	// promoted). Misses fell through to the full enforcer.
	Hits, RuleHits, Misses uint64
	// Promotions counts entries written; AdmissionSkips first-miss flows
	// the doorkeeper refused to promote.
	Promotions, AdmissionSkips uint64
	// StaleDrops counts entries invalidated on contact by a generation
	// change; Expired entries aged out by TTL.
	StaleDrops, Expired uint64
	// Invalidations counts teardown digests published to the purge ring;
	// Flushes full-table clears (restart epochs and purge-ring overruns).
	Invalidations, Flushes uint64
	// SeqAnomalies counts forward-direction TCP sequence discontinuities
	// observed on hits (counted only — duplication and reordering are
	// legitimate wire behaviour).
	SeqAnomalies uint64
	// RuleStageApps is the number of apps the current compiled rule stage
	// answers for; RuleStageBuilds how many times the stage was rebuilt.
	RuleStageApps   int
	RuleStageBuilds uint64
}

// Dataplane is the multi-core match-action stage. Construct with New,
// register on the kernel with Netfilter.RegisterDataplane, and feed
// teardown through Invalidate and restarts through Flush.
type Dataplane struct {
	enf   *enforcer.Enforcer
	cores []*Core
	rotor atomic.Uint32

	ttl   time.Duration
	clock devctx.Clock

	// stage is the compiled hash-decisive rule stage (see rules.go).
	stage   atomic.Pointer[ruleStage]
	stageMu sync.Mutex

	// purge ring: Invalidate appends closed-flow digests under purgeMu;
	// cores drain [purgeSeen, purgeSeq) at acquisition. Slots are atomic
	// so a draining core never races the writer.
	purgeMu   sync.Mutex
	purgeSeq  atomic.Uint64
	purgeRing [purgeRingSize]atomic.Uint64

	// flushSeq is the restart epoch: any bump clears each core's table on
	// its next acquisition.
	flushSeq atomic.Uint64

	hits           *metrics.Counter
	ruleHits       *metrics.Counter
	misses         *metrics.Counter
	promotions     *metrics.Counter
	admissionSkips *metrics.Counter
	staleDrops     *metrics.Counter
	expired        *metrics.Counter
	invalidations  *metrics.Counter
	flushes        *metrics.Counter
	seqAnomalies   *metrics.Counter
	stageBuilds    *metrics.Counter
}

// Core is one simulated core's single-owner table. A Core is leased via
// Acquire, used for one batch drain (Probe per packet, Promote per
// miss), and Released; while leased, nothing else touches its entries.
type Core struct {
	dp      *Dataplane
	busy    atomic.Bool
	entries []entry
	mask    uint64

	// Lease-scoped state, set by begin().
	acquireGen uint64
	now        int64
	purgeSeen  uint64
	flushSeen  uint64

	// Per-lease probe tallies, kept as plain single-owner fields and
	// flushed to the shared sharded counters at Release — a probe must
	// not pay a randomized atomic. Anomalies ride along because repeated
	// keep-alive segments (same seq every packet) trip one per probe.
	leaseHits      uint64
	leaseMisses    uint64
	leaseAnomalies uint64

	door    [doorkeeperSize]uint64
	doorPos int
}

// interned is the fixed Result set fast-path hits return: one allow plus
// one per drop cause. Pointer-stable, so attaching one as a batch Aux
// allocates nothing.
var interned [enforcer.NumDropCauses]enforcer.Result

func init() {
	interned[0] = enforcer.Result{Verdict: policy.VerdictAllow}
	for c := 1; c < enforcer.NumDropCauses; c++ {
		interned[c] = enforcer.Result{Verdict: policy.VerdictDrop, Cause: enforcer.DropCause(c)}
	}
}

// New builds a dataplane compiled from (and invalidated by) the given
// enforcer.
func New(cfg Config, enf *enforcer.Enforcer) *Dataplane {
	cores := cfg.Cores
	if cores <= 0 {
		cores = 1
	}
	entries := cfg.Entries
	if entries <= 0 {
		entries = defaultEntries
	}
	// Round up to a power of two so slot selection is a mask.
	size := 1
	for size < entries {
		size <<= 1
	}
	d := &Dataplane{
		enf:            enf,
		ttl:            cfg.TTL,
		clock:          cfg.Clock,
		hits:           metrics.NewCounter(),
		ruleHits:       metrics.NewCounter(),
		misses:         metrics.NewCounter(),
		promotions:     metrics.NewCounter(),
		admissionSkips: metrics.NewCounter(),
		staleDrops:     metrics.NewCounter(),
		expired:        metrics.NewCounter(),
		invalidations:  metrics.NewCounter(),
		flushes:        metrics.NewCounter(),
		seqAnomalies:   metrics.NewCounter(),
		stageBuilds:    metrics.NewCounter(),
	}
	d.cores = make([]*Core, cores)
	for i := range d.cores {
		d.cores[i] = &Core{
			dp:      d,
			entries: make([]entry, size),
			mask:    uint64(size - 1),
		}
	}
	return d
}

// Cores reports how many per-core tables the dataplane holds.
func (d *Dataplane) Cores() int { return len(d.cores) }

// Acquire leases a free core, or returns nil when every core is busy
// (the caller then runs the burst through the slow path alone). The
// rotor spreads concurrent drains across cores so each tends to re-lease
// the table its flows were promoted into.
func (d *Dataplane) Acquire() kernel.DataplaneCore {
	n := len(d.cores)
	start := int(d.rotor.Add(1)-1) % n
	for i := 0; i < n; i++ {
		c := d.cores[(start+i)%n]
		if c.busy.CompareAndSwap(false, true) {
			c.begin()
			return c
		}
	}
	return nil
}

// begin prepares a freshly leased core: apply any pending flush epoch or
// purge-ring teardown, then snapshot the generation and clock once for
// the lease (Promote stamps entries with this pre-evaluation generation,
// which is what closes the promote-vs-invalidate race).
func (c *Core) begin() {
	d := c.dp
	if fs := d.flushSeq.Load(); fs != c.flushSeen {
		c.clear()
		c.flushSeen = fs
		c.purgeSeen = d.purgeSeq.Load()
	} else if cur := d.purgeSeq.Load(); cur != c.purgeSeen {
		if cur-c.purgeSeen > purgeRingSize/2 {
			c.clear()
		} else {
			for i := c.purgeSeen; i < cur; i++ {
				c.purgeDigest(d.purgeRing[i%purgeRingSize].Load())
			}
		}
		c.purgeSeen = cur
	}
	c.acquireGen = d.enf.CacheGeneration()
	c.now = 0
	if d.clock != nil {
		c.now = int64(d.clock.Now())
	}
}

// Release flushes the lease's probe tallies and returns the core to the
// free pool. Hit/miss metrics therefore lag by at most one leased burst.
func (c *Core) Release() {
	if c.leaseHits > 0 {
		c.dp.hits.Add(c.leaseHits)
		c.leaseHits = 0
	}
	if c.leaseMisses > 0 {
		c.dp.misses.Add(c.leaseMisses)
		c.leaseMisses = 0
	}
	if c.leaseAnomalies > 0 {
		c.dp.seqAnomalies.Add(c.leaseAnomalies)
		c.leaseAnomalies = 0
	}
	c.busy.Store(false)
}

// clear wipes the core's table and doorkeeper.
func (c *Core) clear() {
	clear(c.entries)
	clear(c.door[:])
	c.doorPos = 0
	c.dp.flushes.Inc()
}

// purgeDigest tombstones every live entry with the given digest — the
// conservative cross-core teardown (the ring carries digests, not full
// keys, and a rare collision only forces a re-promotion).
func (c *Core) purgeDigest(digest uint64) {
	slot := digest & c.mask
	for i := uint64(0); i < probeWindow; i++ {
		e := &c.entries[(slot+i)&c.mask]
		if e.state == stateEmpty {
			return
		}
		if e.state == stateLive && e.digest == digest {
			e.state = stateTomb
		}
	}
}

// Invalidate publishes a closed flow's teardown to every core: the
// gateway calls it (alongside the enforcer's EndFlow) when its conntrack
// observes a FIN/RST. Each core applies it on its next acquisition.
func (d *Dataplane) Invalidate(pkt *ipv4.Packet) {
	digest, _, ok := packetKey(pkt)
	if !ok {
		return
	}
	d.purgeMu.Lock()
	pos := d.purgeSeq.Load()
	d.purgeRing[pos%purgeRingSize].Store(digest)
	d.purgeSeq.Store(pos + 1)
	d.purgeMu.Unlock()
	d.invalidations.Inc()
}

// Flush bumps the restart epoch: every core clears its table on next
// acquisition. The gateway calls it from Restart, mirroring the flow
// cache's purge — a rebooted appliance must re-resolve every live flow.
func (d *Dataplane) Flush() {
	d.flushSeq.Add(1)
}

// probeKey is the flow identity a probe matches on, precomputed once per
// packet. The TCP fields ride along so the forward-seq tracker never
// parses the transport header a second time.
type probeKey struct {
	digest           uint64
	src, dst         uint32
	seq, dataLen     uint32
	srcPort, dstPort uint16
	proto            uint8
	flags            uint8
	tcpOK            bool
	tagData          []byte
}

// packetKey extracts the flow identity of a tagged packet. ok is false
// for untagged packets (never answered here — the enforcer's untagged
// accounting must stay exact), oversized tags, and non-IPv4 addresses.
func packetKey(pkt *ipv4.Packet) (uint64, probeKey, bool) {
	opt, tagged := pkt.Header.FindOption(ipv4.OptSecurity)
	if !tagged || len(opt.Data) > tag.MaxEncoded {
		return 0, probeKey{}, false
	}
	if !pkt.Header.Src.Is4() || !pkt.Header.Dst.Is4() {
		return 0, probeKey{}, false
	}
	s4 := pkt.Header.Src.As4()
	d4 := pkt.Header.Dst.As4()
	k := probeKey{
		src:     binary.BigEndian.Uint32(s4[:]),
		dst:     binary.BigEndian.Uint32(d4[:]),
		proto:   pkt.Header.Protocol,
		tagData: opt.Data,
	}
	// Same port semantics as the enforcer's flow key: real transport
	// ports when a structurally valid first-fragment header is present,
	// zero otherwise. A passing TCP peek also proves the fixed header
	// layout, so the seq/flags reads below need no further validation.
	if sp, dp, ok := transport.PeekPorts(pkt.Header.Protocol, pkt.Header.FragOff, pkt.Payload); ok {
		k.srcPort, k.dstPort = sp, dp
		if k.proto == ipv4.ProtoTCP {
			k.seq = binary.BigEndian.Uint32(pkt.Payload[4:8])
			k.dataLen = uint32(len(pkt.Payload) - transport.TCPHeaderLen)
			k.flags = pkt.Payload[13]
			k.tcpOK = true
		}
	}
	k.digest = keyDigest(&k)
	return k.digest, k, true
}

// splitmix64 is the finalizer mixing each accumulated word.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// keyDigest hashes the flow identity: one mix per 8 bytes of tag plus
// two for the 5-tuple words, with the port word and tag length folded in
// between mixes (XOR folds between splitmix finalizer rounds keep the
// probe path two rounds shorter than mixing every word). Zero is
// remapped so a live entry's digest never collides with the zero value
// of an empty slot's filter.
func keyDigest(k *probeKey) uint64 {
	h := splitmix64(0x9e3779b97f4a7c15 ^ (uint64(k.src)<<32 | uint64(k.dst)))
	h ^= uint64(k.srcPort)<<48 | uint64(k.dstPort)<<32 | uint64(k.proto)<<8 | uint64(len(k.tagData))
	b := k.tagData
	for len(b) >= 8 {
		h = splitmix64(h ^ binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail uint64
		for i, v := range b {
			tail |= uint64(v) << (8 * i)
		}
		h ^= tail
	}
	h = splitmix64(h)
	if h == 0 {
		h = 1
	}
	return h
}

// matches reports whether a live entry holds exactly this flow.
func (e *entry) matches(k *probeKey) bool {
	return e.src == k.src && e.dst == k.dst &&
		e.srcPort == k.srcPort && e.dstPort == k.dstPort &&
		e.proto == k.proto && int(e.tagLen) == len(k.tagData) &&
		string(e.tagBytes[:e.tagLen]) == string(k.tagData)
}

// Probe answers one packet from the core's table or the compiled rule
// stage. ok is false on a miss: the caller must run the packet through
// the full enforcer and then Promote the outcome. The live generation is
// read per packet, so a reconfiguration landing mid-burst invalidates
// entries from that packet on — the same per-probe check the flow table
// makes.
func (c *Core) Probe(pkt *ipv4.Packet) (kernel.Verdict, any, bool) {
	d := c.dp
	digest, k, keyed := packetKey(pkt)
	if !keyed {
		return 0, nil, false
	}
	gen := d.enf.CacheGeneration()
	slot := digest & c.mask
	for i := uint64(0); i < probeWindow; i++ {
		e := &c.entries[(slot+i)&c.mask]
		if e.state == stateEmpty {
			break
		}
		if e.state != stateLive || e.digest != digest || !e.matches(&k) {
			continue
		}
		if e.gen != gen {
			e.state = stateTomb
			d.staleDrops.Inc()
			break
		}
		if d.ttl > 0 && d.clock != nil && c.now-e.born > int64(d.ttl) {
			e.state = stateTomb
			d.expired.Inc()
			break
		}
		c.trackForwardSeq(e, &k)
		c.leaseHits++
		res := &interned[e.cause]
		if e.verdict == uint8(policy.VerdictDrop) {
			return kernel.VerdictDrop, res, true
		}
		return kernel.VerdictAccept, res, true
	}
	// Flow-table miss: the compiled rule stage can still answer packets
	// of apps whose fate no stack can change.
	if v, aux, ok := c.probeRules(gen, &k); ok {
		return v, aux, ok
	}
	c.leaseMisses++
	return 0, nil, false
}

// trackForwardSeq updates the entry's forward-direction TCP continuity
// state on a hit, from the transport fields the key extraction already
// read. Discontinuities are counted, never dropped: a faulty wire
// duplicates and reorders legitimately, and the enforced half of the
// directional state is the response side (conntrack).
func (c *Core) trackForwardSeq(e *entry, k *probeKey) {
	if !k.tcpOK {
		return
	}
	if k.flags&(transport.FlagSYN|transport.FlagFIN|transport.FlagRST) != 0 {
		return
	}
	if e.fwdSeen != 0 && k.seq != e.fwdNext {
		c.leaseAnomalies++
	}
	e.fwdNext = k.seq + k.dataLen
	e.fwdSeen = 1
}

// Promote writes a slow-path outcome into the core's table. aux must be
// the enforcer's *Result for the packet (anything else is ignored); the
// entry is stamped with the lease's pre-evaluation generation, so if a
// reconfiguration raced the evaluation the entry is born stale rather
// than wrongly current. First-miss flows only prime the doorkeeper.
func (c *Core) Promote(pkt *ipv4.Packet, v kernel.Verdict, aux any) {
	res, ok := aux.(*enforcer.Result)
	if !ok || res == nil {
		return
	}
	if res.Cause == enforcer.DropUntagged {
		return
	}
	switch v {
	case kernel.VerdictAccept, kernel.VerdictDrop:
	default:
		return
	}
	digest, k, keyed := packetKey(pkt)
	if !keyed {
		return
	}
	c.insert(digest, &k, uint8(res.Verdict), uint8(res.Cause), c.acquireGen)
}

// admit is the doorkeeper: true when the digest was seen in the recent
// miss window (second miss — worth a slot), false on first contact.
func (c *Core) admit(digest uint64) bool {
	for _, d := range c.door {
		if d == digest {
			return true
		}
	}
	c.door[c.doorPos] = digest
	c.doorPos = (c.doorPos + 1) % doorkeeperSize
	return false
}

// insert places or refreshes an entry within the probe window, evicting
// the oldest entry in the window when it is full.
func (c *Core) insert(digest uint64, k *probeKey, verdict, cause uint8, gen uint64) {
	d := c.dp
	slot := digest & c.mask
	victim := -1
	var victimBorn int64
	free := -1
	for i := uint64(0); i < probeWindow; i++ {
		idx := (slot + i) & c.mask
		e := &c.entries[idx]
		switch e.state {
		case stateLive:
			if e.digest == digest && e.matches(k) {
				// Refresh in place; keep the forward-seq state.
				e.gen = gen
				e.born = c.now
				e.verdict = verdict
				e.cause = cause
				return
			}
			if victim < 0 || e.born < victimBorn {
				victim, victimBorn = int(idx), e.born
			}
		default: // empty or tombstone
			if free < 0 {
				free = int(idx)
			}
		}
	}
	if !c.admit(digest) {
		d.admissionSkips.Inc()
		return
	}
	at := free
	if at < 0 {
		at = victim
	}
	if at < 0 {
		return
	}
	e := &c.entries[at]
	*e = entry{
		digest:  digest,
		gen:     gen,
		born:    c.now,
		src:     k.src,
		dst:     k.dst,
		srcPort: k.srcPort,
		dstPort: k.dstPort,
		proto:   k.proto,
		tagLen:  uint8(len(k.tagData)),
		state:   stateLive,
		verdict: verdict,
		cause:   cause,
	}
	copy(e.tagBytes[:], k.tagData)
	d.promotions.Inc()
}

// Stats snapshots the counters.
func (d *Dataplane) Stats() Stats {
	s := Stats{
		Hits:            d.hits.Value(),
		RuleHits:        d.ruleHits.Value(),
		Misses:          d.misses.Value(),
		Promotions:      d.promotions.Value(),
		AdmissionSkips:  d.admissionSkips.Value(),
		StaleDrops:      d.staleDrops.Value(),
		Expired:         d.expired.Value(),
		Invalidations:   d.invalidations.Value(),
		Flushes:         d.flushes.Value(),
		SeqAnomalies:    d.seqAnomalies.Value(),
		RuleStageBuilds: d.stageBuilds.Value(),
	}
	if st := d.stage.Load(); st != nil {
		s.RuleStageApps = len(st.apps)
	}
	return s
}

// RegisterMetrics attaches the dataplane's counters to a registry as the
// bp_dataplane_* families. All are scrape-time closures over counters
// the packet path already maintains.
func (d *Dataplane) RegisterMetrics(r *metrics.Registry) {
	const probeHelp = "Dataplane probes by outcome."
	r.CounterFunc("bp_dataplane_probes_total", probeHelp, d.hits.Value, metrics.L("outcome", "hit"))
	r.CounterFunc("bp_dataplane_probes_total", probeHelp, d.ruleHits.Value, metrics.L("outcome", "rule_hit"))
	r.CounterFunc("bp_dataplane_probes_total", probeHelp, d.misses.Value, metrics.L("outcome", "miss"))
	r.CounterFunc("bp_dataplane_promotions_total",
		"Slow-path outcomes promoted into per-core tables.", d.promotions.Value)
	r.CounterFunc("bp_dataplane_admission_skips_total",
		"First-miss flows the promotion doorkeeper refused.", d.admissionSkips.Value)
	r.CounterFunc("bp_dataplane_stale_drops_total",
		"Entries invalidated on contact by a generation change.", d.staleDrops.Value)
	r.CounterFunc("bp_dataplane_expired_total",
		"Entries aged out by TTL.", d.expired.Value)
	r.CounterFunc("bp_dataplane_invalidations_total",
		"Closed-flow teardowns published to the purge ring.", d.invalidations.Value)
	r.CounterFunc("bp_dataplane_flushes_total",
		"Full per-core table clears (restart epochs, purge overruns).", d.flushes.Value)
	r.CounterFunc("bp_dataplane_seq_anomalies_total",
		"Forward-direction TCP sequence discontinuities observed on hits.", d.seqAnomalies.Value)
	r.CounterFunc("bp_dataplane_rule_stage_builds_total",
		"Compiled rule-stage rebuilds (one per generation the stage served).", d.stageBuilds.Value)
	r.GaugeFunc("bp_dataplane_rule_stage_apps",
		"Apps the compiled hash-decisive rule stage currently answers for.",
		func() float64 { return float64(d.Stats().RuleStageApps) })
}
