// The compiled rule stage: the subset of the policy the dataplane can
// evaluate without the full enforcer. A hash-level rule that wins
// against every possible stack (policy.HashDecisives) decides every
// packet of its app, so the stage needs only the app hash — read
// structurally out of the tag header — plus enough validation to prove
// the full pipeline would have reached the policy engine at all (tag
// well-formed, app known, every index inside the app's method table).
// Anything short of that proof is a miss: the stage must never answer a
// packet the enforcer would have dropped as malformed/unknown/bad-index,
// because those carry different causes.
package dataplane

import (
	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/tag"
)

// ruleApp is one compiled app: its decisive action and the method-table
// size its tag indexes must stay inside.
type ruleApp struct {
	allow  bool
	maxIdx uint32
}

// ruleStage is one generation's compiled hash-decisive table. Immutable
// after publication; read lock-free through an atomic pointer.
type ruleStage struct {
	gen  uint64
	apps map[dex.TruncatedHash]ruleApp
}

// probeRules answers a flow-table miss from the compiled stage when the
// packet's app has a decisive hash rule and the tag validates
// structurally. Returns the same verdict and cause the full pipeline
// would produce; hits are promoted into the core's table so the rest of
// the flow is answered by the flat array.
func (c *Core) probeRules(gen uint64, k *probeKey) (kernel.Verdict, any, bool) {
	d := c.dp
	st := d.stage.Load()
	if st == nil || st.gen != gen {
		st = d.rebuildStage(gen)
		if st == nil {
			return 0, nil, false
		}
	}
	if len(st.apps) == 0 {
		return 0, nil, false
	}
	data := k.tagData
	// Structural tag walk, mirroring tag.DecodeInto's accept set exactly:
	// version nibble, full header, and a clean index walk. (The flag
	// nibble carries no policy input, so it needs no validation.)
	if len(data) < tag.HeaderSize || data[0]>>4 != tag.Version {
		return 0, nil, false // enforcer would say DropMalformedTag
	}
	var h dex.TruncatedHash
	copy(h[:], data[1:tag.HeaderSize])
	app, ok := st.apps[h]
	if !ok {
		return 0, nil, false
	}
	rest := data[tag.HeaderSize:]
	for len(rest) > 0 {
		var idx uint32
		if rest[0]&0x80 != 0 {
			if len(rest) < 3 {
				return 0, nil, false // dangling wide index: DropMalformedTag
			}
			idx = uint32(rest[0]&0x7f)<<16 | uint32(rest[1])<<8 | uint32(rest[2])
			rest = rest[3:]
		} else {
			if len(rest) < 2 {
				return 0, nil, false // dangling narrow index: DropMalformedTag
			}
			idx = uint32(rest[0])<<8 | uint32(rest[1])
			rest = rest[2:]
		}
		if idx >= app.maxIdx {
			return 0, nil, false // enforcer would say DropBadIndex
		}
	}
	// Proven: the full path reaches the policy engine, and the decisive
	// hash rule wins against any stack these indexes decode to.
	d.ruleHits.Inc()
	if app.allow {
		c.insert(k.digest, k, uint8(policy.VerdictAllow), uint8(enforcer.DropNone), gen)
		return kernel.VerdictAccept, &interned[enforcer.DropNone], true
	}
	c.insert(k.digest, k, uint8(policy.VerdictDrop), uint8(enforcer.DropPolicy), gen)
	return kernel.VerdictDrop, &interned[enforcer.DropPolicy], true
}

// rebuildStage compiles the stage for the current generation. TryLock
// keeps a reconfiguration storm from stampeding rebuilds: the loser
// simply misses to the enforcer for this packet. The stage is stamped
// with a generation read before its inputs, so a mid-build
// reconfiguration yields a stage that is already stale (and rebuilt on
// next contact) rather than one mislabelled as current.
func (d *Dataplane) rebuildStage(want uint64) *ruleStage {
	if !d.stageMu.TryLock() {
		return nil
	}
	defer d.stageMu.Unlock()
	if st := d.stage.Load(); st != nil && st.gen == want {
		return st // raced with another rebuild that already got there
	}
	gen := d.enf.CacheGeneration()
	decisives := d.enf.Engine().HashDecisives()
	db := d.enf.Database()
	apps := make(map[dex.TruncatedHash]ruleApp, len(decisives))
	for _, hd := range decisives {
		// Only apps in the database compile in: an unknown app's packets
		// carry DropUnknownApp, which no rule can decide.
		r, known := db.Resolve(hd.Hash)
		if !known {
			continue
		}
		apps[hd.Hash] = ruleApp{allow: hd.Allow, maxIdx: uint32(r.Len())}
	}
	st := &ruleStage{gen: gen, apps: apps}
	d.stage.Store(st)
	d.stageBuilds.Inc()
	if gen != want {
		return nil // inputs moved mid-build; stage will rebuild on contact
	}
	return st
}
