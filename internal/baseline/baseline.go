// Package baseline implements the comparator enforcement mechanisms the
// paper evaluates BorderPatrol against (§VI-C, §VII, §VIII): traditional
// on-network enforcement that sees only packet-level features
// (IP/DNS blocklists, flow-size thresholds) and on-device frameworks that
// enforce at whole-app granularity (ADM/KNOX-style). None of them can
// separate two functionalities sharing one socket destination — that gap is
// BorderPatrol's motivation.
package baseline

import (
	"net/netip"
	"sync"

	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
)

// Mechanism is a packet-level enforcement baseline.
type Mechanism interface {
	// Name identifies the mechanism in experiment tables.
	Name() string
	// Decide returns the verdict for one packet.
	Decide(pkt *ipv4.Packet) policy.Verdict
}

// IPBlocklist drops packets whose destination is on the list — the
// "block the Facebook Graph API IP" strategy of the case studies.
type IPBlocklist struct {
	mu      sync.RWMutex
	blocked map[netip.Addr]struct{}
}

var _ Mechanism = (*IPBlocklist)(nil)

// NewIPBlocklist builds a blocklist over the given addresses.
func NewIPBlocklist(addrs ...netip.Addr) *IPBlocklist {
	b := &IPBlocklist{blocked: make(map[netip.Addr]struct{}, len(addrs))}
	for _, a := range addrs {
		b.blocked[a] = struct{}{}
	}
	return b
}

// Name implements Mechanism.
func (b *IPBlocklist) Name() string { return "ip-blocklist" }

// Block adds an address.
func (b *IPBlocklist) Block(a netip.Addr) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.blocked[a] = struct{}{}
}

// Decide implements Mechanism.
func (b *IPBlocklist) Decide(pkt *ipv4.Packet) policy.Verdict {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if _, hit := b.blocked[pkt.Header.Dst]; hit {
		return policy.VerdictDrop
	}
	return policy.VerdictAllow
}

// FlowSizeThreshold drops outgoing flows whose cumulative payload to one
// destination exceeds a byte budget — the data-transfer trigger the paper
// dismisses (§VII): legitimate flows range 36 B to 480 MB, and apps evade
// any threshold by fragmenting transfers across sockets.
type FlowSizeThreshold struct {
	// Threshold is the per-flow byte budget.
	Threshold int

	mu sync.Mutex
	// sent accumulates payload bytes per (src, dst) pair within one flow
	// tracking window.
	sent map[flowKey]int
}

type flowKey struct {
	src, dst netip.Addr
	// srcPort distinguishes sockets: fragmented transfers on new sockets
	// reset the counter, which is exactly the evasion.
	srcPort uint16
}

var _ Mechanism = (*FlowSizeThreshold)(nil)

// NewFlowSizeThreshold builds the mechanism.
func NewFlowSizeThreshold(threshold int) *FlowSizeThreshold {
	return &FlowSizeThreshold{Threshold: threshold, sent: make(map[flowKey]int)}
}

// Name implements Mechanism.
func (f *FlowSizeThreshold) Name() string { return "flow-size-threshold" }

// DecideWithPort tracks per-socket flows; srcPort models the socket.
func (f *FlowSizeThreshold) DecideWithPort(pkt *ipv4.Packet, srcPort uint16) policy.Verdict {
	key := flowKey{src: pkt.Header.Src, dst: pkt.Header.Dst, srcPort: srcPort}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sent[key] += len(pkt.Payload)
	if f.sent[key] > f.Threshold {
		return policy.VerdictDrop
	}
	return policy.VerdictAllow
}

// Decide implements Mechanism using the IP ID as a socket proxy when no
// port information is available.
func (f *FlowSizeThreshold) Decide(pkt *ipv4.Packet) policy.Verdict {
	return f.DecideWithPort(pkt, 0)
}

// AppLevel enforces at whole-app granularity like ADM or Samsung KNOX
// Network Platform Analytics: it knows which app (by source address here,
// standing in for the per-app attribution those frameworks provide) sent a
// packet, and can only allow or block the app as a unit.
type AppLevel struct {
	mu      sync.RWMutex
	blocked map[netip.Addr]struct{} // blocked device/app sources
}

var _ Mechanism = (*AppLevel)(nil)

// NewAppLevel builds the mechanism.
func NewAppLevel() *AppLevel {
	return &AppLevel{blocked: make(map[netip.Addr]struct{})}
}

// Name implements Mechanism.
func (a *AppLevel) Name() string { return "app-level" }

// BlockSource blocks every packet from a source (the whole app/device).
func (a *AppLevel) BlockSource(src netip.Addr) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.blocked[src] = struct{}{}
}

// Decide implements Mechanism.
func (a *AppLevel) Decide(pkt *ipv4.Packet) policy.Verdict {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if _, hit := a.blocked[pkt.Header.Src]; hit {
		return policy.VerdictDrop
	}
	return policy.VerdictAllow
}
