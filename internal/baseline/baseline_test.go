package baseline

import (
	"net/netip"
	"testing"

	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
)

func mkPkt(src, dst string, payload int) *ipv4.Packet {
	return &ipv4.Packet{
		Header: ipv4.Header{
			TTL: 64, Protocol: ipv4.ProtoTCP,
			Src: netip.MustParseAddr(src),
			Dst: netip.MustParseAddr(dst),
		},
		Payload: make([]byte, payload),
	}
}

func TestIPBlocklist(t *testing.T) {
	b := NewIPBlocklist(netip.MustParseAddr("203.0.113.7"))
	if b.Decide(mkPkt("10.0.0.5", "203.0.113.7", 10)) != policy.VerdictDrop {
		t.Fatal("blocked IP passed")
	}
	if b.Decide(mkPkt("10.0.0.5", "198.18.0.1", 10)) != policy.VerdictAllow {
		t.Fatal("clean IP dropped")
	}
	b.Block(netip.MustParseAddr("198.18.0.1"))
	if b.Decide(mkPkt("10.0.0.5", "198.18.0.1", 10)) != policy.VerdictDrop {
		t.Fatal("late-blocked IP passed")
	}
	if b.Name() != "ip-blocklist" {
		t.Fatal("name")
	}
}

func TestIPBlocklistCannotSeparateFunctions(t *testing.T) {
	// The Dropbox problem: upload and download hit the same IP. Blocking it
	// kills both — there is no configuration of the mechanism that blocks
	// one and keeps the other.
	dropboxIP := "162.125.4.1"
	b := NewIPBlocklist(netip.MustParseAddr(dropboxIP))
	upload := mkPkt("10.0.0.5", dropboxIP, 4096)
	download := mkPkt("10.0.0.5", dropboxIP, 64)
	if b.Decide(upload) != policy.VerdictDrop || b.Decide(download) != policy.VerdictDrop {
		t.Fatal("expected both directions blocked: the mechanism is all-or-nothing per IP")
	}
}

func TestFlowSizeThreshold(t *testing.T) {
	f := NewFlowSizeThreshold(1000)
	// Small flow passes.
	if f.DecideWithPort(mkPkt("10.0.0.5", "198.18.0.1", 400), 40001) != policy.VerdictAllow {
		t.Fatal("small flow dropped")
	}
	// Same socket crossing the budget drops.
	if f.DecideWithPort(mkPkt("10.0.0.5", "198.18.0.1", 700), 40001) != policy.VerdictDrop {
		t.Fatal("oversized flow passed")
	}
	if f.Name() != "flow-size-threshold" {
		t.Fatal("name")
	}
}

func TestFlowSizeThresholdEvadedByFragmentation(t *testing.T) {
	// Paper §VII: fragmenting a transfer across sockets resets the counter,
	// so a 10 KB exfiltration in 20 × 500 B sockets sails through a 1 KB
	// threshold.
	f := NewFlowSizeThreshold(1000)
	for port := uint16(41000); port < 41020; port++ {
		if f.DecideWithPort(mkPkt("10.0.0.5", "198.18.0.1", 500), port) != policy.VerdictAllow {
			t.Fatalf("fragmented chunk on port %d dropped", port)
		}
	}
}

func TestAppLevel(t *testing.T) {
	a := NewAppLevel()
	pkt := mkPkt("10.0.0.5", "198.18.0.1", 10)
	if a.Decide(pkt) != policy.VerdictAllow {
		t.Fatal("default must allow")
	}
	a.BlockSource(netip.MustParseAddr("10.0.0.5"))
	if a.Decide(pkt) != policy.VerdictDrop {
		t.Fatal("blocked app passed")
	}
	// Blocking the app kills desirable traffic too: app granularity cannot
	// spare the login while dropping analytics.
	login := mkPkt("10.0.0.5", "31.13.66.1", 10)
	if a.Decide(login) != policy.VerdictDrop {
		t.Fatal("app-level block must be all-or-nothing")
	}
	if a.Name() != "app-level" {
		t.Fatal("name")
	}
}
