package ioi

import (
	"net/netip"
	"testing"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/tag"
)

// fixture builds two apps in one database:
//   - appA: methods in two different packages (dev + shared http client)
//   - appB: methods all in one package
func fixture(t *testing.T) (*dex.APK, *dex.APK, *analyzer.Database) {
	t.Helper()
	appA := &dex.APK{
		PackageName: "com.a.app",
		VersionCode: 1,
		Dexes: []*dex.File{{Classes: []dex.ClassDef{
			{Package: "com/a/app", Name: "Main", Methods: []dex.MethodDef{
				{Name: "fetch", Proto: "()V", File: "M.java", StartLine: 1, EndLine: 10},
			}},
			{Package: "org/apache/http", Name: "Client", Methods: []dex.MethodDef{
				{Name: "execute", Proto: "()V", File: "C.java", StartLine: 1, EndLine: 10},
			}},
		}}},
	}
	appB := &dex.APK{
		PackageName: "com.b.app",
		VersionCode: 1,
		Dexes: []*dex.File{{Classes: []dex.ClassDef{
			{Package: "com/b/app", Name: "Sync", Methods: []dex.MethodDef{
				{Name: "up", Proto: "()V", File: "S.java", StartLine: 1, EndLine: 10},
				{Name: "down", Proto: "()V", File: "S.java", StartLine: 20, EndLine: 30},
			}},
		}}},
	}
	db := analyzer.NewDatabase()
	if err := db.Add(appA); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(appB); err != nil {
		t.Fatal(err)
	}
	return appA, appB, db
}

func idxOf(t *testing.T, db *analyzer.Database, apk *dex.APK, name string) uint32 {
	t.Helper()
	entry, ok := db.LookupTruncated(apk.Truncated())
	if !ok {
		t.Fatal("app missing from db")
	}
	for i, raw := range entry.Signatures {
		sig, err := dex.ParseSignature(raw)
		if err != nil {
			t.Fatal(err)
		}
		if sig.Name == name {
			return uint32(i)
		}
	}
	t.Fatalf("method %s not found", name)
	return 0
}

func pkt(t *testing.T, apk *dex.APK, dst string, indexes ...uint32) *ipv4.Packet {
	t.Helper()
	tg := tag.Tag{AppHash: apk.Truncated(), Indexes: indexes}
	data, err := tg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p := &ipv4.Packet{Header: ipv4.Header{
		TTL: 64, Protocol: ipv4.ProtoTCP,
		Src: netip.MustParseAddr("10.0.0.5"),
		Dst: netip.MustParseAddr(dst),
	}}
	p.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: data})
	return p
}

func TestAnalyzeFindsIoIs(t *testing.T) {
	appA, appB, db := fixture(t)
	up := idxOf(t, db, appB, "up")
	down := idxOf(t, db, appB, "down")
	fetch := idxOf(t, db, appA, "fetch")
	exec := idxOf(t, db, appA, "execute")

	packets := []*ipv4.Packet{
		// appB: one destination, two distinct stacks -> 1 IoI, same package.
		pkt(t, appB, "198.19.0.1", up),
		pkt(t, appB, "198.19.0.1", down),
		// appB: another destination with a single stack -> not an IoI.
		pkt(t, appB, "198.19.0.2", up),
		pkt(t, appB, "198.19.0.2", up),
		// appA: one destination, two stacks spanning packages -> cross-package IoI.
		pkt(t, appA, "198.19.0.3", fetch, exec),
		pkt(t, appA, "198.19.0.3", exec),
	}
	an, err := Analyze(packets, db)
	if err != nil {
		t.Fatal(err)
	}
	if an.AppsAnalyzed != 2 {
		t.Fatalf("apps analyzed = %d", an.AppsAnalyzed)
	}
	if an.AppsWithIoI != 2 || an.TotalIoIs != 2 {
		t.Fatalf("IoIs: apps=%d total=%d", an.AppsWithIoI, an.TotalIoIs)
	}
	if an.Histogram[1] != 2 {
		t.Fatalf("histogram = %v", an.Histogram)
	}
	if an.SamePackageApps != 1 {
		t.Fatalf("same-package apps = %d, want 1 (appB only)", an.SamePackageApps)
	}
	if an.CrossPackageIoIs != 1 {
		t.Fatalf("cross-package IoIs = %d", an.CrossPackageIoIs)
	}
	if got := an.SamePackageShare(); got != 0.5 {
		t.Fatalf("same-package share = %f", got)
	}
	if got := an.CrossPackageShare(); got != 0.5 {
		t.Fatalf("cross-package share = %f", got)
	}
}

func TestSameStackNotIoI(t *testing.T) {
	_, appB, db := fixture(t)
	up := idxOf(t, db, appB, "up")
	// Many packets, single distinct stack: connection reuse, not an IoI.
	packets := []*ipv4.Packet{
		pkt(t, appB, "198.19.0.9", up),
		pkt(t, appB, "198.19.0.9", up),
		pkt(t, appB, "198.19.0.9", up),
	}
	an, err := Analyze(packets, db)
	if err != nil {
		t.Fatal(err)
	}
	if an.AppsWithIoI != 0 || an.TotalIoIs != 0 {
		t.Fatalf("false IoI detected: %+v", an)
	}
}

func TestSingletonPacketNotIoI(t *testing.T) {
	_, appB, db := fixture(t)
	up := idxOf(t, db, appB, "up")
	an, err := Analyze([]*ipv4.Packet{pkt(t, appB, "198.19.0.9", up)}, db)
	if err != nil {
		t.Fatal(err)
	}
	if an.TotalIoIs != 0 {
		t.Fatal("single packet counted as IoI")
	}
}

func TestUntaggedExcluded(t *testing.T) {
	_, appB, db := fixture(t)
	up := idxOf(t, db, appB, "up")
	plain := &ipv4.Packet{Header: ipv4.Header{
		TTL: 64, Protocol: ipv4.ProtoTCP,
		Src: netip.MustParseAddr("10.0.0.5"),
		Dst: netip.MustParseAddr("198.19.0.1"),
	}}
	corrupt := pkt(t, appB, "198.19.0.1", up)
	opt, _ := corrupt.Header.FindOption(ipv4.OptSecurity)
	opt.Data[0] = 0xf0 // bad version
	corrupt.Header.SetOption(opt)
	// Unknown app.
	ghost := &dex.APK{PackageName: "com.ghost", VersionCode: 1, Dexes: []*dex.File{{Classes: []dex.ClassDef{{
		Package: "g", Name: "G", Methods: []dex.MethodDef{{Name: "m", Proto: "()V", File: "G.java", StartLine: 1, EndLine: 2}},
	}}}}}
	unknown := pkt(t, ghost, "198.19.0.1", 0)

	an, err := Analyze([]*ipv4.Packet{plain, corrupt, unknown}, db)
	if err != nil {
		t.Fatal(err)
	}
	if an.UntaggedPackets != 3 {
		t.Fatalf("untagged = %d, want 3", an.UntaggedPackets)
	}
	if an.AppsAnalyzed != 0 {
		t.Fatalf("apps = %d", an.AppsAnalyzed)
	}
}

func TestHistogramRowsSorted(t *testing.T) {
	an := &Analysis{Histogram: map[int]int{3: 1, 1: 5, 2: 2}}
	rows := an.HistogramRows()
	if len(rows) != 3 || rows[0][0] != 1 || rows[1][0] != 2 || rows[2][0] != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][1] != 5 {
		t.Fatalf("counts wrong: %v", rows)
	}
}

func TestSharesZeroSafe(t *testing.T) {
	an := &Analysis{}
	if an.SamePackageShare() != 0 || an.CrossPackageShare() != 0 {
		t.Fatal("zero-division guard failed")
	}
}
