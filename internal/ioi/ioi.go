// Package ioi computes the IPs-of-interest analysis of the paper's §VI-B:
// an IoI is a destination IP address that receives multiple packets from
// one app carrying more than one distinct stack trace. IoIs are exactly the
// cases where IP/DNS-level enforcement cannot separate functionalities and
// BorderPatrol's contextual tags are needed.
package ioi

import (
	"fmt"
	"net/netip"
	"sort"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/tag"
)

// Analysis is the result of scanning a capture.
type Analysis struct {
	// AppsAnalyzed is the number of distinct tagged apps observed.
	AppsAnalyzed int
	// IoIsPerApp maps app hash (hex) to its IoI count.
	IoIsPerApp map[string]int
	// Histogram[k] is the number of apps with exactly k IoIs (k >= 1).
	Histogram map[int]int
	// AppsWithIoI is the number of apps with at least one IoI.
	AppsWithIoI int
	// SamePackageApps counts IoI-having apps whose IoI stack traces all
	// originate from a single Java package (paper: 75%).
	SamePackageApps int
	// TotalIoIs is the total number of (app, IP) IoI pairs.
	TotalIoIs int
	// CrossPackageIoIs counts IoIs receiving stacks whose methods span
	// multiple Java packages (paper: 25% — shared HTTP client reuse).
	CrossPackageIoIs int
	// UntaggedPackets counts packets without a decodable tag (excluded).
	UntaggedPackets int
}

// flowKey groups packets per app and destination.
type flowKey struct {
	app dex.TruncatedHash
	dst netip.Addr
}

// Analyze scans device-egress packets. The database is used to decode
// stacks for the package-origin statistics; packets whose app is unknown
// are counted as untagged.
func Analyze(packets []*ipv4.Packet, db *analyzer.Database) (*Analysis, error) {
	type flowState struct {
		stacks  map[string]struct{} // distinct raw index sequences
		packets int
		// pkgs are the Java packages seen across all stack frames.
		pkgs map[string]struct{}
	}
	flows := make(map[flowKey]*flowState)
	apps := make(map[dex.TruncatedHash]struct{})
	an := &Analysis{
		IoIsPerApp: make(map[string]int),
		Histogram:  make(map[int]int),
	}
	for _, pkt := range packets {
		opt, ok := pkt.Header.FindOption(ipv4.OptSecurity)
		if !ok {
			an.UntaggedPackets++
			continue
		}
		decoded, err := tag.Decode(opt.Data)
		if err != nil {
			an.UntaggedPackets++
			continue
		}
		if _, known := db.LookupTruncated(decoded.AppHash); !known {
			an.UntaggedPackets++
			continue
		}
		apps[decoded.AppHash] = struct{}{}
		key := flowKey{app: decoded.AppHash, dst: pkt.Header.Dst}
		fs := flows[key]
		if fs == nil {
			fs = &flowState{stacks: make(map[string]struct{}), pkgs: make(map[string]struct{})}
			flows[key] = fs
		}
		fs.packets++
		stackKey := fmt.Sprintf("%v", decoded.Indexes)
		if _, seen := fs.stacks[stackKey]; !seen {
			fs.stacks[stackKey] = struct{}{}
			sigs, err := db.DecodeStack(decoded.AppHash, decoded.Indexes)
			if err != nil {
				return nil, fmt.Errorf("ioi: decode stack: %w", err)
			}
			for _, s := range sigs {
				fs.pkgs[s.Package] = struct{}{}
			}
		}
	}

	perApp := make(map[dex.TruncatedHash]int)
	appAllSamePkg := make(map[dex.TruncatedHash]bool)
	appIoIPkgs := make(map[dex.TruncatedHash]map[string]struct{})
	for key, fs := range flows {
		if fs.packets < 2 || len(fs.stacks) < 2 {
			continue
		}
		perApp[key.app]++
		an.TotalIoIs++
		if len(fs.pkgs) > 1 {
			an.CrossPackageIoIs++
		}
		if appIoIPkgs[key.app] == nil {
			appIoIPkgs[key.app] = make(map[string]struct{})
			appAllSamePkg[key.app] = true
		}
		for p := range fs.pkgs {
			appIoIPkgs[key.app][p] = struct{}{}
		}
	}
	for app, pkgs := range appIoIPkgs {
		appAllSamePkg[app] = len(pkgs) <= 1
	}

	an.AppsAnalyzed = len(apps)
	for app, n := range perApp {
		an.IoIsPerApp[app.String()] = n
		an.Histogram[n]++
		an.AppsWithIoI++
		if appAllSamePkg[app] {
			an.SamePackageApps++
		}
	}
	return an, nil
}

// SamePackageShare returns the fraction of IoI-having apps whose IoI
// traffic stays within one Java package.
func (a *Analysis) SamePackageShare() float64 {
	if a.AppsWithIoI == 0 {
		return 0
	}
	return float64(a.SamePackageApps) / float64(a.AppsWithIoI)
}

// CrossPackageShare returns the fraction of IoIs that receive stacks from
// multiple Java packages.
func (a *Analysis) CrossPackageShare() float64 {
	if a.TotalIoIs == 0 {
		return 0
	}
	return float64(a.CrossPackageIoIs) / float64(a.TotalIoIs)
}

// HistogramRows renders the Fig. 3 histogram as sorted (ioiCount, apps)
// rows.
func (a *Analysis) HistogramRows() [][2]int {
	keys := make([]int, 0, len(a.Histogram))
	for k := range a.Histogram {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	rows := make([][2]int, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, [2]int{k, a.Histogram[k]})
	}
	return rows
}
