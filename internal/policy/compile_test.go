package policy

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"borderpatrol/internal/dex"
)

// referenceEvaluate is the seed engine's naive linear scan, kept verbatim
// as the executable specification the compiled engine must reproduce:
// first matching rule (in order) decides, otherwise the default applies.
// It returns the decisive rule index (-1 for the default) and the
// decision.
func referenceEvaluate(rules []Rule, def Verdict, appHash dex.TruncatedHash, stack []dex.Signature) (int, Decision) {
	for i := range rules {
		r := &rules[i]
		if !r.Matches(appHash, stack) {
			continue
		}
		switch r.Action {
		case Deny:
			return i, Decision{
				Verdict: VerdictDrop,
				Rule:    r,
				Reason:  fmt.Sprintf("deny rule %s matched", r),
			}
		case Allow:
			return i, Decision{
				Verdict: VerdictAllow,
				Rule:    r,
				Reason:  fmt.Sprintf("allow rule %s satisfied by all frames", r),
			}
		}
	}
	return -1, Decision{Verdict: def, Reason: fmt.Sprintf("default %s", def)}
}

// corpusPools hold the building blocks for randomized rules and stacks.
// The pools deliberately overlap at package-prefix boundaries
// ("com/flurry" vs "com/flurry/sdk" vs "com/flurryx") so prefix-index
// edge cases are exercised.
var (
	poolPackages = []string{
		"com/flurry", "com/flurry/sdk", "com/flurryx", "com/corp",
		"com/corp/net", "com/corp/net/http", "org/apache/http",
		"com/google/gms", "com/google/gms/ads", "a", "",
	}
	poolClasses = []string{"Agent", "Analytics", "Main", "Http", "A"}
	poolMethods = []string{"beacon", "report", "sync", "get", "m"}
	poolProtos  = []string{"()V", "(I)V", "(Ljava/lang/String;)Z", "*"}
)

func randHash(rng *rand.Rand) dex.TruncatedHash {
	var h dex.TruncatedHash
	// A tiny hash space forces frequent matches.
	h[0] = byte(rng.Intn(4))
	return h
}

func randSignature(rng *rand.Rand) dex.Signature {
	return dex.Signature{
		Package: poolPackages[rng.Intn(len(poolPackages))],
		Class:   poolClasses[rng.Intn(len(poolClasses))],
		Name:    poolMethods[rng.Intn(len(poolMethods))],
		Proto:   poolProtos[rng.Intn(len(poolProtos))],
	}
}

func randRule(rng *rand.Rand) Rule {
	action := Allow
	if rng.Intn(100) < 70 { // blacklist-heavy, like real policies
		action = Deny
	}
	level := Level(rng.Intn(4) + 1)
	var target string
	switch level {
	case LevelHash:
		h := randHash(rng)
		target = h.String()
		switch rng.Intn(3) {
		case 1: // full 32-hex target
			target += "00112233aabbccdd"
		case 2: // uppercase hex must keep matching (EqualFold semantics)
			target = "000" + string("0123456789ABCDEF"[rng.Intn(16)]) + target[4:]
		}
	case LevelLibrary:
		target = poolPackages[rng.Intn(len(poolPackages)-1)] // skip ""
	case LevelClass:
		sig := randSignature(rng)
		if rng.Intn(2) == 0 {
			target = sig.ClassPath()
		} else {
			target = sig.Package
			if target == "" {
				target = sig.Class
			}
		}
	case LevelMethod:
		sig := randSignature(rng)
		if sig.Proto == "*" {
			target = "L" + sig.ClassPath() + ";->" + sig.Name + "*"
		} else {
			target = sig.String()
		}
	}
	return Rule{Action: action, Level: level, Target: target}
}

func randStack(rng *rand.Rand) []dex.Signature {
	n := rng.Intn(6) // includes empty stacks
	stack := make([]dex.Signature, n)
	for i := range stack {
		stack[i] = randSignature(rng)
	}
	return stack
}

// TestCompiledMatchesReference is the equivalence proof: over a generated
// corpus of rule sets and packet contexts, the compiled engine must return
// the identical verdict, decisive rule index, and reason as the naive
// linear scan — including its first-decisive-rule-wins ordering.
func TestCompiledMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2019))
	for trial := 0; trial < 300; trial++ {
		nRules := rng.Intn(40)
		rules := make([]Rule, nRules)
		for i := range rules {
			rules[i] = randRule(rng)
			if err := rules[i].Validate(); err != nil {
				t.Fatalf("trial %d: generated invalid rule %s: %v", trial, rules[i], err)
			}
		}
		def := VerdictAllow
		if trial%2 == 1 {
			def = VerdictDrop
		}
		eng, err := NewEngine(rules, def)
		if err != nil {
			t.Fatalf("trial %d: NewEngine: %v", trial, err)
		}
		c := eng.compiled.Load()

		for probe := 0; probe < 60; probe++ {
			appHash := randHash(rng)
			stack := randStack(rng)

			wantIdx, want := referenceEvaluate(rules, def, appHash, stack)
			gotIdx := c.evaluate(appHash, stack)
			if gotIdx == len(rules) {
				gotIdx = -1
			}
			if gotIdx != wantIdx {
				t.Fatalf("trial %d probe %d: decisive index = %d, want %d\nrules: %v\nhash: %s stack: %v",
					trial, probe, gotIdx, wantIdx, rules, appHash, stack)
			}
			got := eng.Evaluate(appHash, stack)
			if got.Verdict != want.Verdict || got.Reason != want.Reason {
				t.Fatalf("trial %d probe %d: decision = %+v, want %+v", trial, probe, got, want)
			}
			if (got.Rule == nil) != (want.Rule == nil) {
				t.Fatalf("trial %d probe %d: rule presence = %v, want %v", trial, probe, got.Rule, want.Rule)
			}
			if got.Rule != nil && *got.Rule != rules[wantIdx] {
				t.Fatalf("trial %d probe %d: decisive rule = %s, want %s", trial, probe, got.Rule, rules[wantIdx])
			}
		}
	}
}

// TestEvaluateRacesSetRules hammers concurrent evaluation against central
// reconfiguration under -race: the compiled rule set swaps atomically, so
// every in-flight evaluation sees a consistent snapshot and the engine
// never serializes readers.
func TestEvaluateRacesSetRules(t *testing.T) {
	eng, err := NewEngine([]Rule{
		{Action: Deny, Level: LevelLibrary, Target: "com/flurry"},
	}, VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	trackerStack := []dex.Signature{{Package: "com/flurry/sdk", Class: "Agent", Name: "beacon", Proto: "()V"}}
	cleanStack := []dex.Signature{{Package: "com/corp", Class: "Main", Name: "sync", Proto: "()V"}}

	ruleSets := [][]Rule{
		{{Action: Deny, Level: LevelLibrary, Target: "com/flurry"}},
		{
			{Action: Deny, Level: LevelClass, Target: "com/flurry/sdk/Agent"},
			{Action: Deny, Level: LevelMethod, Target: "Lcom/flurry/sdk/Agent;->beacon()V"},
		},
	}

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := eng.SetRules(ruleSets[i%len(ruleSets)]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var h dex.TruncatedHash
			h[0] = byte(g)
			for i := 0; i < 2000; i++ {
				// Every rule set denies the tracker stack and says nothing
				// about the clean one, whichever snapshot Evaluate sees.
				if d := eng.Evaluate(h, trackerStack); d.Verdict != VerdictDrop {
					t.Errorf("tracker stack admitted: %+v", d)
					return
				}
				if d := eng.Evaluate(h, cleanStack); d.Verdict != VerdictAllow {
					t.Errorf("clean stack dropped: %+v", d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-writerDone

	if st := eng.Stats(); st.Evaluations != 4*2*2000 {
		t.Fatalf("evaluations = %d, want %d", st.Evaluations, 4*2*2000)
	}
}

// TestCompiledEvaluateZeroAlloc pins the acceptance criterion: the
// steady-state deny and default paths must not allocate.
func TestCompiledEvaluateZeroAlloc(t *testing.T) {
	rules := make([]Rule, 0, 1050)
	for i := 0; i < 1050; i++ {
		rules = append(rules, Rule{Action: Deny, Level: LevelLibrary, Target: fmt.Sprintf("com/blocked/lib%04d", i)})
	}
	eng, err := NewEngine(rules, VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	var h dex.TruncatedHash
	miss := []dex.Signature{{Package: "com/benign/app", Class: "Main", Name: "sync", Proto: "()V"}}
	hit := []dex.Signature{{Package: "com/blocked/lib0042/sdk", Class: "A", Name: "m", Proto: "()V"}}

	if avg := testing.AllocsPerRun(200, func() { eng.Evaluate(h, miss) }); avg != 0 {
		t.Errorf("default path allocates %.1f per op", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { eng.Evaluate(h, hit) }); avg != 0 {
		t.Errorf("deny path allocates %.1f per op", avg)
	}
}

// TestHashRuleOrderingCompiled pins the ordering subtlety the hash index
// must preserve: when several hash rules target the same app, the earliest
// one decides, even if a later one has the opposite action.
func TestHashRuleOrderingCompiled(t *testing.T) {
	var h dex.TruncatedHash
	h[0] = 0x42
	rules := []Rule{
		{Action: Deny, Level: LevelHash, Target: h.String()},
		{Action: Allow, Level: LevelHash, Target: h.String()},
	}
	eng, err := NewEngine(rules, VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	d := eng.Evaluate(h, nil)
	if d.Verdict != VerdictDrop || d.Rule == nil || d.Rule.Action != Deny {
		t.Fatalf("first hash rule must win: %+v", d)
	}
}

// TestDuplicateTargetsKeepEarliestIndex pins the keepMin behaviour for the
// prefix and method indexes.
func TestDuplicateTargetsKeepEarliestIndex(t *testing.T) {
	rules := []Rule{
		{Action: Deny, Level: LevelLibrary, Target: "com/flurry"},
		{Action: Deny, Level: LevelLibrary, Target: "com/flurry"},
	}
	eng, err := NewEngine(rules, VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	stack := []dex.Signature{{Package: "com/flurry/sdk", Class: "Agent", Name: "beacon", Proto: "()V"}}
	_ = eng.Evaluate(dex.TruncatedHash{}, stack)
	st := eng.Stats()
	if st.RuleHits[0] != 1 || st.RuleHits[1] != 0 {
		t.Fatalf("duplicate target must credit the earliest rule: %+v", st.RuleHits)
	}
}
