package policy

import (
	"reflect"
	"strings"
	"testing"
)

const groupedDoc = `
// fleet-wide baseline
{[deny][library]["com/malware"]}
{[allow][library]["com/benign"]}

//@group engineering
{[deny][library]["com/tracker/eng"]}
{[deny][class]["Lcom/exfil/Beacon;"]}

//@group sales
{[deny][library]["com/tracker/sales"]}

//@group engineering
{[deny][method]["Lcom/exfil/Beacon;->send()V"]}
`

func TestParseGroupSetSplitsSections(t *testing.T) {
	gs, err := ParseGroupSet(groupedDoc)
	if err != nil {
		t.Fatalf("ParseGroupSet: %v", err)
	}
	if len(gs.Global) != 2 {
		t.Fatalf("global rules = %d, want 2", len(gs.Global))
	}
	if got := gs.Names(); !reflect.DeepEqual(got, []string{"engineering", "sales"}) {
		t.Fatalf("Names() = %v", got)
	}
	// Re-opened sections merge in document order.
	eng := gs.Groups[0]
	if len(eng.Rules) != 3 {
		t.Fatalf("engineering rules = %d, want 3 (merged sections)", len(eng.Rules))
	}
	if eng.Rules[2].Level != LevelMethod {
		t.Fatalf("merged rule out of order: %v", eng.Rules[2])
	}
	if len(gs.Groups[1].Rules) != 1 {
		t.Fatalf("sales rules = %d, want 1", len(gs.Groups[1].Rules))
	}
}

func TestGroupedDocIsValidFlatPolicy(t *testing.T) {
	// The base parser must see every rule and ignore the directives, so
	// an N=1 deployment can consume the fleet document unchanged.
	rules, err := ParsePolicyString(groupedDoc)
	if err != nil {
		t.Fatalf("ParsePolicyString on grouped doc: %v", err)
	}
	if len(rules) != 6 {
		t.Fatalf("flat parse saw %d rules, want 6 (union of all sections)", len(rules))
	}
}

func TestGroupSetRulesFor(t *testing.T) {
	gs, err := ParseGroupSet(groupedDoc)
	if err != nil {
		t.Fatalf("ParseGroupSet: %v", err)
	}
	sales := gs.RulesFor("sales")
	if len(sales) != 3 { // 2 global + 1 sales
		t.Fatalf("sales shard = %d rules, want 3", len(sales))
	}
	for _, r := range sales {
		if strings.Contains(r.Target, "eng") || strings.Contains(r.Target, "Beacon") {
			t.Fatalf("sales shard leaked engineering rule %v", r)
		}
	}
	// Duplicates and unknown names are skipped, not errors.
	both := gs.RulesFor("sales", "sales", "nonexistent", "engineering")
	if len(both) != 6 {
		t.Fatalf("combined shard = %d rules, want 6", len(both))
	}
	// A group absent from the document gets just the global rules.
	if got := gs.RulesFor("nonexistent"); len(got) != 2 {
		t.Fatalf("unknown group shard = %d rules, want 2 global", len(got))
	}
}

func TestGroupSetDocForRoundTrip(t *testing.T) {
	gs, err := ParseGroupSet(groupedDoc)
	if err != nil {
		t.Fatalf("ParseGroupSet: %v", err)
	}
	// DocFor output reparses to exactly the requested shard.
	shard := gs.DocFor("engineering")
	gs2, err := ParseGroupSet(shard)
	if err != nil {
		t.Fatalf("reparse shard: %v", err)
	}
	if !reflect.DeepEqual(gs2.Global, gs.Global) {
		t.Fatalf("shard global mismatch: %v vs %v", gs2.Global, gs.Global)
	}
	if len(gs2.Groups) != 1 || gs2.Groups[0].Name != "engineering" {
		t.Fatalf("shard groups = %+v", gs2.Groups)
	}
	if !reflect.DeepEqual(gs2.Groups[0].Rules, gs.Groups[0].Rules) {
		t.Fatalf("shard rules mismatch")
	}
	// Format round-trips the whole document.
	gs3, err := ParseGroupSet(gs.Format())
	if err != nil {
		t.Fatalf("reparse Format(): %v", err)
	}
	if !reflect.DeepEqual(gs3, gs) {
		t.Fatalf("Format round trip mismatch:\n%+v\n%+v", gs3, gs)
	}
	// DocFor is deterministic: same inputs, same bytes.
	if gs.DocFor("engineering") != shard {
		t.Fatal("DocFor not deterministic")
	}
}

func TestGroupSetDirectiveErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"unknown directive", "//@shard x\n{[deny][library][\"a\"]}"},
		{"missing name", "//@group\n{[deny][library][\"a\"]}"},
		{"missing name with space", "//@group   \n{[deny][library][\"a\"]}"},
		{"two names", "//@group a b\n{[deny][library][\"a\"]}"},
	}
	for _, tc := range cases {
		if _, err := ParseGroupSet(tc.doc); err == nil {
			t.Errorf("%s: ParseGroupSet accepted %q", tc.name, tc.doc)
		}
	}
}

func TestGroupSetDirectiveInsideRuleIsContent(t *testing.T) {
	// A //@group inside a quoted target is data, not a directive.
	doc := "{[deny][library][\"//@group fake\"]}\n//@group real\n{[deny][library][\"x\"]}"
	gs, err := ParseGroupSet(doc)
	if err != nil {
		t.Fatalf("ParseGroupSet: %v", err)
	}
	if len(gs.Global) != 1 || gs.Global[0].Target != "//@group fake" {
		t.Fatalf("quoted directive mangled: %+v", gs.Global)
	}
	if len(gs.Groups) != 1 || gs.Groups[0].Name != "real" {
		t.Fatalf("groups = %+v", gs.Groups)
	}
	// A trailing //@group after a rule on the same line is an ordinary
	// comment to both parsers.
	doc2 := "{[deny][library][\"x\"]} //@group trailing\n"
	gs2, err := ParseGroupSet(doc2)
	if err != nil {
		t.Fatalf("ParseGroupSet trailing: %v", err)
	}
	if len(gs2.Groups) != 0 || len(gs2.Global) != 1 {
		t.Fatalf("trailing comment treated as directive: %+v", gs2)
	}
}
