package policy

import (
	"testing"

	"borderpatrol/internal/dex"
)

// TestDegradedOverride: a fail-closed override answers every evaluation
// with the forced verdict regardless of the rules; clearing it restores
// rule evaluation. Each transition bumps the generation so cached
// verdicts invalidate.
func TestDegradedOverride(t *testing.T) {
	eng, err := NewEngine([]Rule{
		{Action: Deny, Level: LevelLibrary, Target: "com/flurry"},
	}, VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	cleanStack := []dex.Signature{{Package: "com/corp/app", Class: "Main", Name: "sync"}}
	if d := eng.Evaluate(dex.TruncatedHash{}, cleanStack); d.Verdict != VerdictAllow {
		t.Fatalf("pre-degradation verdict = %v", d.Verdict)
	}

	gen := eng.Generation()
	if err := eng.SetDegraded(VerdictDrop, "policy stale"); err != nil {
		t.Fatal(err)
	}
	if eng.Generation() != gen+1 {
		t.Fatalf("generation = %d, want %d", eng.Generation(), gen+1)
	}
	d := eng.Evaluate(dex.TruncatedHash{}, cleanStack)
	if d.Verdict != VerdictDrop || d.Reason != "policy stale" {
		t.Fatalf("degraded verdict = %+v", d)
	}
	if got, ok := eng.Degraded(); !ok || got.Verdict != VerdictDrop {
		t.Fatalf("Degraded() = %+v, %v", got, ok)
	}

	// Idempotent per (verdict, reason): no extra generation burn.
	if err := eng.SetDegraded(VerdictDrop, "policy stale"); err != nil {
		t.Fatal(err)
	}
	if eng.Generation() != gen+1 {
		t.Fatalf("idempotent re-assert bumped generation to %d", eng.Generation())
	}
	// A different reason is a new degraded state.
	if err := eng.SetDegraded(VerdictAllow, "operator override"); err != nil {
		t.Fatal(err)
	}
	if eng.Generation() != gen+2 {
		t.Fatalf("changed override did not bump generation: %d", eng.Generation())
	}

	eng.ClearDegraded()
	if _, ok := eng.Degraded(); ok {
		t.Fatal("ClearDegraded left the override")
	}
	if eng.Generation() != gen+3 {
		t.Fatalf("clear did not bump generation: %d", eng.Generation())
	}
	eng.ClearDegraded() // no-op: not degraded
	if eng.Generation() != gen+3 {
		t.Fatal("redundant clear bumped generation")
	}
	if d := eng.Evaluate(dex.TruncatedHash{}, cleanStack); d.Verdict != VerdictAllow {
		t.Fatalf("post-clear verdict = %v", d.Verdict)
	}
	if st := eng.Stats(); st.DegradedHits != 1 {
		t.Fatalf("DegradedHits = %d, want 1", st.DegradedHits)
	}
}

// TestDegradedRejectsInvalidVerdict: only Allow and Drop are valid
// degraded postures.
func TestDegradedRejectsInvalidVerdict(t *testing.T) {
	eng, err := NewEngine(nil, VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetDegraded(Verdict(99), "bogus"); err == nil {
		t.Fatal("invalid verdict accepted")
	}
	if _, ok := eng.Degraded(); ok {
		t.Fatal("failed SetDegraded left an override")
	}
}
