package policy

import (
	"testing"
)

// Native Go fuzz targets for the policy grammar (the gateway parses
// administrator-supplied and remotely-fetched documents, so the parser is
// attacker-reachable through the policy store's HTTP backend). Two
// invariants are enforced on every input:
//
//  1. No panics: arbitrary bytes either parse or return ErrBadRule-shaped
//     errors.
//  2. Round-trip: any accepted document formats (FormatPolicy) back into a
//     document that reparses to the identical rule set, and the formatted
//     form is a fixpoint.
//
// Seeds are the paper's §IV-B Snippet 1 examples plus grammar edge cases;
// the committed corpus lives in testdata/fuzz/.

// fuzzSeedRules are single-rule seed inputs shared by both targets.
var fuzzSeedRules = []string{
	// The paper's Snippet 1 examples.
	`{[deny][library]["com/flurry"]}`,
	`{[deny][class]["com/google/gms"]}`,
	`{[deny][method]["Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"]}`,
	`{[allow][hash]["da6880ab1f9919747d39e2bd895b95a5"]}`,
	// Grammar edge cases.
	`{ [allow] [hash] ["aabbccdd00112233"] }`,
	`{[deny][method]["Lcom/a/B;->m([B)V"]}`,
	`{[deny][library]["a\"b"]}`,
	`{[deny][library]["a}b{c"]}`,
	`{[deny][library][bare/target]}`,
	`{[deny][library]["a//b"]}`,
	`{[allow][method]["Lcom/corp/Main;->run*"]}`,
	// Contextual risk predicates and thresholds (context.go).
	`{[risk][time]["22:00-06:00"][35]}`,
	`{[risk][time]["weekend"][20]}`,
	`{[risk][time]["weekday 09:00-17:30"][-10]}`,
	`{[risk][network]["unknown"][60]}`,
	`{[risk][network]["trusted"][-30]}`,
	`{[risk][posture]["screen-locked"][15]}`,
	`{[risk][posture]["patch-age>90"][40]}`,
	`{[risk][travel]["impossible"][100]}`,
	`{[risk][travel][">300"][55]}`,
	`{[threshold][warn][40]}`,
	`{[threshold][block][100]}`,
	// Malformed shapes that must error cleanly.
	`{[deny][library "x"]}`,
	`{[deny]["x"]}`,
	`{{[deny][library]["x"]}}`,
	`{[risk][time]["25:00-26:00"][10]}`,
	`{[risk][network]["wired"][10]}`,
	`{[risk][travel]["impossible"]}`,
	`{[threshold][maybe][10]}`,
	`{[threshold][block][0]}`,
	``,
}

// rulesEqual reports element-wise equality of two rule slices.
func rulesEqual(a, b []Rule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func FuzzParseRule(f *testing.F) {
	for _, s := range fuzzSeedRules {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		r, err := ParseRule(raw)
		if err != nil {
			return
		}
		// Accepted rules are valid by construction.
		if err := r.Validate(); err != nil {
			t.Fatalf("ParseRule(%q) accepted invalid rule %+v: %v", raw, r, err)
		}
		// Round-trip: the canonical rendering reparses to the same rule.
		formatted := r.String()
		r2, err := ParseRule(formatted)
		if err != nil {
			t.Fatalf("formatted rule %q (from %q) unparsable: %v", formatted, raw, err)
		}
		if r2 != r {
			t.Fatalf("round trip changed rule: %+v -> %+v (via %q)", r, r2, formatted)
		}
	})
}

func FuzzParsePolicy(f *testing.F) {
	f.Add(`
// Example 1: prevent ad library connections
{[deny][library]["com/flurry"]}

// Example 2: prevent functions of an entire class
{[deny][class]["com/google/gms"]}

// Example 3: prevent uploads for Dropbox
{[deny][method]["Lcom/dropbox/android/taskqueue/UploadTask;
->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"]}

// Example 4: whitelist company app connections by hash
{[allow][hash]["da6880ab1f9919747d39e2bd895b95a5"]}
`)
	for _, s := range fuzzSeedRules {
		f.Add(s)
	}
	f.Add("{[deny][library]\n[\"com/split\"]}\n{[allow][hash][\"aabbccdd00112233\"]}")
	f.Add("// only comments\n\n// and blanks\n")
	f.Fuzz(func(t *testing.T, doc string) {
		rules, err := ParsePolicyString(doc)
		if err != nil {
			return
		}
		formatted := FormatPolicy(rules)
		again, err := ParsePolicyString(formatted)
		if err != nil {
			t.Fatalf("formatted policy unparsable: %v\ninput: %q\nformatted: %q", err, doc, formatted)
		}
		if !rulesEqual(rules, again) {
			t.Fatalf("round trip changed rules:\n  first:  %+v\n  second: %+v\nformatted: %q", rules, again, formatted)
		}
		// The formatted form is a fixpoint: formatting the reparsed rules
		// yields the same document.
		if f2 := FormatPolicy(again); f2 != formatted {
			t.Fatalf("FormatPolicy not a fixpoint:\n  %q\n  %q", formatted, f2)
		}
		// Accepted rule sets must also compile (the store applies them via
		// SetRules, which must never fail for a parse-accepted document).
		if _, err := NewEngine(rules, VerdictAllow); err != nil {
			t.Fatalf("parse-accepted rules failed to compile: %v\nrules: %+v", err, rules)
		}
	})
}
