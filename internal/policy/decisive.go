package policy

import "borderpatrol/internal/dex"

// HashDecisive is one hash-level rule that fully decides every packet of
// its app, independent of call stack or flow context — the compilable
// unit a match-action dataplane stage can serve without decoding the
// stack. See Engine.HashDecisives for the exact conditions.
type HashDecisive struct {
	// Hash is the rule's truncated apk hash target.
	Hash dex.TruncatedHash
	// Allow is the rule's action (false = deny).
	Allow bool
}

// HashDecisives returns the hash-level rules that are unconditionally
// decisive under the current rule set: evaluation is minimum-matching-
// rule-index-wins, so a hash rule decides every packet of its app exactly
// when no rule with a smaller index could match any stack. Allow rules
// are additionally excluded while a contextual risk program is loaded
// (risk runs after an access allow and may tighten it to a drop, which a
// stackless stage cannot evaluate) and nothing is decisive in degraded
// mode (the override, not the rules, decides).
//
// The returned set is a pure function of the compiled rules, so callers
// caching it can key the cache on Generation(): any SetRules, degraded
// transition, or threshold change that could alter the set bumps it.
func (e *Engine) HashDecisives() []HashDecisive {
	if _, degraded := e.Degraded(); degraded {
		return nil
	}
	c := e.compiled.Load()
	if len(c.byHash) == 0 {
		return nil
	}
	// The smallest index any non-hash rule holds: a hash rule below it
	// wins against every possible stack.
	minOther := len(c.rules)
	for _, idx := range c.libPrefix {
		minOther = min(minOther, idx)
	}
	for _, idx := range c.classPrefix {
		minOther = min(minOther, idx)
	}
	for _, sub := range c.classExact {
		for _, idx := range sub {
			minOther = min(minOther, idx)
		}
	}
	for _, idx := range c.methodExact {
		minOther = min(minOther, idx)
	}
	for _, idx := range c.methodMerged {
		minOther = min(minOther, idx)
	}
	for i := range c.allows {
		minOther = min(minOther, c.allows[i].idx)
	}
	var out []HashDecisive
	for h, idx := range c.byHash {
		if idx >= minOther {
			continue
		}
		allow := c.rules[idx].Action == Allow
		if allow && c.ctx != nil {
			continue // risk program may tighten an access allow
		}
		out = append(out, HashDecisive{Hash: h, Allow: allow})
	}
	return out
}
