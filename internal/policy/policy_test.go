package policy

import (
	"errors"
	"testing"

	"borderpatrol/internal/dex"
)

func mustSig(t *testing.T, raw string) dex.Signature {
	t.Helper()
	sig, err := dex.ParseSignature(raw)
	if err != nil {
		t.Fatalf("ParseSignature(%q): %v", raw, err)
	}
	return sig
}

func appHashFrom(b byte) dex.TruncatedHash {
	var h dex.TruncatedHash
	for i := range h {
		h[i] = b
	}
	return h
}

func TestMatchLevelLibrary(t *testing.T) {
	r := Rule{Action: Deny, Level: LevelLibrary, Target: "com/flurry"}
	sig := mustSig(t, "Lcom/flurry/sdk/Analytics;->report()V")
	if got := r.MatchLevel(appHashFrom(1), sig); got != LevelLibrary {
		t.Fatalf("MatchLevel = %v, want library", got)
	}
	other := mustSig(t, "Lcom/flurryx/Other;->run()V")
	if got := r.MatchLevel(appHashFrom(1), other); got != 0 {
		t.Fatalf("near-miss package matched: %v", got)
	}
}

func TestMatchLevelClass(t *testing.T) {
	r := Rule{Action: Deny, Level: LevelClass, Target: "com/google/gms"}
	sig := mustSig(t, "Lcom/google/gms/Analytics;->hit()V")
	if got := r.MatchLevel(appHashFrom(1), sig); got != LevelClass {
		t.Fatalf("MatchLevel = %v, want class", got)
	}
	// Exact class target.
	r2 := Rule{Action: Deny, Level: LevelClass, Target: "com/google/gms/Analytics"}
	if got := r2.MatchLevel(appHashFrom(1), sig); got != LevelClass {
		t.Fatalf("exact class target: %v", got)
	}
	miss := mustSig(t, "Lcom/google/gmsx/Analytics;->hit()V")
	if got := r.MatchLevel(appHashFrom(1), miss); got != 0 {
		t.Fatalf("near-miss class matched: %v", got)
	}
}

func TestMatchLevelMethod(t *testing.T) {
	target := "Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"
	r := Rule{Action: Deny, Level: LevelMethod, Target: target}
	sig := mustSig(t, target)
	if got := r.MatchLevel(appHashFrom(1), sig); got != LevelMethod {
		t.Fatalf("MatchLevel = %v, want method", got)
	}
	// Different overload does not match.
	other := mustSig(t, "Lcom/dropbox/android/taskqueue/UploadTask;->c(I)V")
	if got := r.MatchLevel(appHashFrom(1), other); got != 0 {
		t.Fatalf("different overload matched: %v", got)
	}
	// A merged (debug-stripped) frame conservatively matches any overload
	// target of the same method name.
	merged := mustSig(t, "Lcom/dropbox/android/taskqueue/UploadTask;->c*")
	if got := r.MatchLevel(appHashFrom(1), merged); got != LevelMethod {
		t.Fatalf("merged frame did not match method target: %v", got)
	}
}

func TestMatchLevelHash(t *testing.T) {
	h := appHashFrom(0xab)
	r := Rule{Action: Allow, Level: LevelHash, Target: h.String()}
	if got := r.MatchLevel(h, dex.Signature{}); got != LevelHash {
		t.Fatalf("hash match failed: %v", got)
	}
	if got := r.MatchLevel(appHashFrom(0xcd), dex.Signature{}); got != 0 {
		t.Fatalf("wrong hash matched: %v", got)
	}
	// Full-length (32 hex) hash target matches on its truncated prefix.
	full := h.String() + "00112233aabbccdd"
	r2 := Rule{Action: Allow, Level: LevelHash, Target: full}
	if got := r2.MatchLevel(h, dex.Signature{}); got != LevelHash {
		t.Fatalf("full hash target did not match: %v", got)
	}
}

func TestDenySemanticsExistential(t *testing.T) {
	// Deny drops when ANY frame matches.
	r := Rule{Action: Deny, Level: LevelLibrary, Target: "com/flurry"}
	stack := []dex.Signature{
		mustSig(t, "Lcom/example/Main;->onCreate()V"),
		mustSig(t, "Lcom/flurry/sdk/Agent;->beacon()V"),
	}
	if !r.Matches(appHashFrom(1), stack) {
		t.Fatal("deny rule must match when one frame is in the library")
	}
	clean := []dex.Signature{mustSig(t, "Lcom/example/Main;->onCreate()V")}
	if r.Matches(appHashFrom(1), clean) {
		t.Fatal("deny rule matched a clean stack")
	}
}

func TestAllowSemanticsUniversal(t *testing.T) {
	// Allow admits only when ALL frames match.
	r := Rule{Action: Allow, Level: LevelLibrary, Target: "com/corp"}
	allIn := []dex.Signature{
		mustSig(t, "Lcom/corp/app/Main;->sync()V"),
		mustSig(t, "Lcom/corp/net/Http;->get()V"),
	}
	if !r.Matches(appHashFrom(1), allIn) {
		t.Fatal("allow rule must match when every frame is in the library")
	}
	mixed := append(allIn, mustSig(t, "Lcom/flurry/sdk/Agent;->beacon()V"))
	if r.Matches(appHashFrom(1), mixed) {
		t.Fatal("allow rule matched a stack with a foreign frame")
	}
	if r.Matches(appHashFrom(1), nil) {
		t.Fatal("allow rule matched an empty stack")
	}
}

func TestLevelOrdering(t *testing.T) {
	if !(LevelHash < LevelLibrary && LevelLibrary < LevelClass && LevelClass < LevelMethod) {
		t.Fatal("level ordering ℓh < ℓk < ℓc < ℓm violated")
	}
}

func TestRuleValidate(t *testing.T) {
	good := []Rule{
		{Action: Deny, Level: LevelLibrary, Target: "com/flurry"},
		{Action: Deny, Level: LevelMethod, Target: "Lcom/a/B;->m()V"},
		{Action: Allow, Level: LevelHash, Target: "da6880ab1f991974"},
		{Action: Allow, Level: LevelHash, Target: "da6880ab1f9919747d39e2bd895b95a5"},
	}
	for _, r := range good {
		if err := r.Validate(); err != nil {
			t.Errorf("valid rule %s rejected: %v", r, err)
		}
	}
	bad := []Rule{
		{},
		{Action: Deny, Level: LevelLibrary, Target: ""},
		{Action: Deny, Level: Level(9), Target: "x"},
		{Action: Action(9), Level: LevelLibrary, Target: "x"},
		{Action: Deny, Level: LevelMethod, Target: "not-a-signature"},
		{Action: Allow, Level: LevelHash, Target: "nothex!"},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("invalid rule %+v accepted", r)
		}
	}
}

func TestEngineOrderingAndDefault(t *testing.T) {
	corpHash := appHashFrom(0x11)
	rules := []Rule{
		{Action: Deny, Level: LevelLibrary, Target: "com/flurry"},
		{Action: Allow, Level: LevelHash, Target: corpHash.String()},
	}
	eng, err := NewEngine(rules, VerdictDrop)
	if err != nil {
		t.Fatal(err)
	}

	// Flurry frame in the whitelisted app: deny rule comes first and wins.
	stack := []dex.Signature{mustSig(t, "Lcom/flurry/sdk/Agent;->beacon()V")}
	d := eng.Evaluate(corpHash, stack)
	if d.Verdict != VerdictDrop || d.Rule == nil || d.Rule.Action != Deny {
		t.Fatalf("expected deny-rule drop, got %+v", d)
	}

	// Clean stack in the whitelisted app: hash allow admits.
	clean := []dex.Signature{mustSig(t, "Lcom/corp/Main;->sync()V")}
	d = eng.Evaluate(corpHash, clean)
	if d.Verdict != VerdictAllow {
		t.Fatalf("whitelisted app dropped: %+v", d)
	}

	// Unknown app: default (drop) applies.
	d = eng.Evaluate(appHashFrom(0x99), clean)
	if d.Verdict != VerdictDrop || d.Rule != nil {
		t.Fatalf("unknown app not dropped by default: %+v", d)
	}

	st := eng.Stats()
	if st.Evaluations != 3 || st.DefaultHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.RuleHits[0] != 1 || st.RuleHits[1] != 1 {
		t.Fatalf("rule hits = %+v", st.RuleHits)
	}
}

func TestEngineSetRules(t *testing.T) {
	eng, err := NewEngine(nil, VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	stack := []dex.Signature{mustSig(t, "Lcom/flurry/sdk/Agent;->beacon()V")}
	if d := eng.Evaluate(appHashFrom(1), stack); d.Verdict != VerdictAllow {
		t.Fatalf("empty engine must use default: %+v", d)
	}
	if err := eng.SetRules([]Rule{{Action: Deny, Level: LevelLibrary, Target: "com/flurry"}}); err != nil {
		t.Fatal(err)
	}
	if d := eng.Evaluate(appHashFrom(1), stack); d.Verdict != VerdictDrop {
		t.Fatalf("reconfigured rule not applied: %+v", d)
	}
	if err := eng.SetRules([]Rule{{}}); err == nil {
		t.Fatal("invalid rule accepted by SetRules")
	}
	if got := len(eng.Rules()); got != 1 {
		t.Fatalf("failed SetRules must not clobber rules, have %d", got)
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine([]Rule{{}}, VerdictAllow); err == nil {
		t.Fatal("invalid rule accepted")
	}
	if _, err := NewEngine(nil, Verdict(0)); err == nil {
		t.Fatal("invalid default accepted")
	}
}

func TestEngineConcurrency(t *testing.T) {
	eng, err := NewEngine([]Rule{
		{Action: Deny, Level: LevelLibrary, Target: "com/flurry"},
	}, VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	stack := []dex.Signature{mustSig(t, "Lcom/flurry/sdk/Agent;->beacon()V")}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			_ = eng.SetRules([]Rule{{Action: Deny, Level: LevelLibrary, Target: "com/flurry"}})
		}
	}()
	for i := 0; i < 500; i++ {
		_ = eng.Evaluate(appHashFrom(1), stack)
	}
	<-done
}

func TestVerdictAndActionStrings(t *testing.T) {
	if VerdictAllow.String() != "allow" || VerdictDrop.String() != "drop" {
		t.Error("verdict strings")
	}
	if Allow.String() != "allow" || Deny.String() != "deny" {
		t.Error("action strings")
	}
	if LevelHash.String() != "hash" || LevelMethod.String() != "method" {
		t.Error("level strings")
	}
}

func TestDenyMonotonicInLevel(t *testing.T) {
	// A deny match at a fine level implies the coarser target forms also
	// match when derived from the same signature: library ⊂ class ⊂ method.
	sig := mustSig(t, "Lcom/flurry/sdk/Analytics;->report(I)V")
	byLib := Rule{Action: Deny, Level: LevelLibrary, Target: "com/flurry/sdk"}
	byClass := Rule{Action: Deny, Level: LevelClass, Target: "com/flurry/sdk/Analytics"}
	byMethod := Rule{Action: Deny, Level: LevelMethod, Target: sig.String()}
	stack := []dex.Signature{sig}
	h := appHashFrom(1)
	if !byLib.Matches(h, stack) || !byClass.Matches(h, stack) || !byMethod.Matches(h, stack) {
		t.Fatal("matching must hold at every derivable level")
	}
}

func TestErrBadRuleWrapped(t *testing.T) {
	_, err := ParseRule("{[deny][bogus][\"x\"]}")
	if !errors.Is(err, ErrBadRule) {
		t.Fatalf("err = %v, want ErrBadRule", err)
	}
}
