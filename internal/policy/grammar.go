package policy

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file parses the paper's simplified policy grammar (§IV-B Snippet 1):
//
//	<POLICY> ::= {[<ACTION>] [<LEVEL>] [<TARGET>]}
//	<ACTION> ::= (allow | deny)
//	<LEVEL>  ::= (hash | library | class | method)
//	<TARGET> ::= quoted string
//
// Lines starting with // are comments; blank lines are ignored. Multi-line
// rules are supported because the paper's own examples wrap long method
// signatures across lines.

// ParseRule parses a single {[action][level]["target"]} rule.
func ParseRule(raw string) (Rule, error) {
	s := strings.TrimSpace(raw)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return Rule{}, fmt.Errorf("%w: rule %q must be enclosed in braces", ErrBadRule, raw)
	}
	s = s[1 : len(s)-1]
	fields, err := bracketFields(s)
	if err != nil {
		return Rule{}, err
	}
	if len(fields) != 3 {
		return Rule{}, fmt.Errorf("%w: rule %q has %d fields, want 3", ErrBadRule, raw, len(fields))
	}
	action, err := ParseAction(strings.TrimSpace(fields[0]))
	if err != nil {
		return Rule{}, err
	}
	level, err := ParseLevel(strings.TrimSpace(fields[1]))
	if err != nil {
		return Rule{}, err
	}
	target := strings.TrimSpace(fields[2])
	if strings.HasPrefix(target, `"`) && strings.HasSuffix(target, `"`) && len(target) >= 2 {
		target = target[1 : len(target)-1]
	}
	rule := Rule{Action: action, Level: level, Target: target}
	if err := rule.Validate(); err != nil {
		return Rule{}, err
	}
	return rule, nil
}

// bracketFields splits "[a][b][c]" into its bracketed fields, tolerating
// whitespace between brackets.
func bracketFields(s string) ([]string, error) {
	var fields []string
	rest := strings.TrimSpace(s)
	for rest != "" {
		if rest[0] != '[' {
			return nil, fmt.Errorf("%w: expected '[' at %q", ErrBadRule, rest)
		}
		depth := 0
		end := -1
		inQuote := false
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case '"':
				inQuote = !inQuote
			case '[':
				if !inQuote {
					depth++
				}
			case ']':
				if !inQuote {
					depth--
					if depth == 0 {
						end = i
					}
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("%w: unterminated '[' in %q", ErrBadRule, s)
		}
		fields = append(fields, rest[1:end])
		rest = strings.TrimSpace(rest[end+1:])
	}
	return fields, nil
}

// ParsePolicy reads a full policy document: one or more rules, //-comments,
// and blank lines. A rule may span multiple physical lines; rules are
// accumulated until braces balance.
func ParsePolicy(r io.Reader) ([]Rule, error) {
	var rules []Rule
	var pending strings.Builder
	depth := 0
	lineNo := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if idx := strings.Index(line, "//"); idx >= 0 && depth == 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		pending.WriteString(line)
		for _, c := range line {
			switch c {
			case '{':
				depth++
			case '}':
				depth--
			}
		}
		if depth < 0 {
			return nil, fmt.Errorf("%w: line %d: unbalanced '}'", ErrBadRule, lineNo)
		}
		if depth == 0 {
			rule, err := ParseRule(pending.String())
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			rules = append(rules, rule)
			pending.Reset()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("policy: read: %w", err)
	}
	if depth != 0 {
		return nil, fmt.Errorf("%w: unterminated rule at EOF", ErrBadRule)
	}
	return rules, nil
}

// ParsePolicyString is ParsePolicy over an in-memory document.
func ParsePolicyString(s string) ([]Rule, error) {
	return ParsePolicy(strings.NewReader(s))
}

// FormatPolicy renders rules back into a parseable policy document.
func FormatPolicy(rules []Rule) string {
	var b strings.Builder
	for _, r := range rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
