package policy

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file parses the paper's simplified policy grammar (§IV-B Snippet 1)
// plus the contextual extension (context.go):
//
//	<POLICY> ::= {[<ACTION>] [<LEVEL>] [<TARGET>]}
//	           | {[risk] [<PREDICATE>] [<SPEC>] [<WEIGHT>]}
//	           | {[threshold] [(warn | block)] [<VALUE>]}
//	<ACTION> ::= (allow | deny)
//	<LEVEL>  ::= (hash | library | class | method)
//	<TARGET> ::= quoted string
//	<PREDICATE> ::= (time | network | posture | travel)
//	<SPEC>   ::= quoted string (predicate-specific, see context.go)
//	<WEIGHT> ::= integer (may be negative)
//
// Lines starting with // are comments; blank lines are ignored. Multi-line
// rules are supported because the paper's own examples wrap long method
// signatures across lines.
//
// Targets are Go-quoted strings: FormatPolicy renders them with %q and the
// parser unquotes with strconv.Unquote, so targets containing quotes,
// backslashes, braces, brackets or control characters survive a
// format→parse round trip byte-for-byte. Hand-written documents that are
// not valid Go string literals (e.g. a stray inner quote) keep the
// historical strip-the-outer-quotes behaviour.
//
// Parse errors name the line — or, for multi-line rules, the line range —
// of the offending rule, so one bad rule in a thousand-line policy file is
// locatable without bisecting the document.

// ParseRule parses a single rule in any of the grammar's forms,
// dispatching on the first bracketed field:
//
//	{[allow|deny][level]["target"]}       access rule (paper §IV-B)
//	{[risk][predicate]["spec"][weight]}   contextual risk predicate
//	{[threshold][warn|block][value]}      risk threshold
func ParseRule(raw string) (Rule, error) {
	s := strings.TrimSpace(raw)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return Rule{}, fmt.Errorf("%w: rule %q must be enclosed in braces", ErrBadRule, raw)
	}
	s = s[1 : len(s)-1]
	fields, err := bracketFields(s)
	if err != nil {
		return Rule{}, err
	}
	if len(fields) == 0 {
		return Rule{}, fmt.Errorf("%w: rule %q is empty", ErrBadRule, raw)
	}
	var rule Rule
	switch strings.TrimSpace(fields[0]) {
	case "risk":
		if len(fields) != 4 {
			return Rule{}, fmt.Errorf("%w: risk rule %q has %d fields, want 4", ErrBadRule, raw, len(fields))
		}
		pred, err := ParsePredicate(strings.TrimSpace(fields[1]))
		if err != nil {
			return Rule{}, err
		}
		weight, err := strconv.Atoi(strings.TrimSpace(fields[3]))
		if err != nil {
			return Rule{}, fmt.Errorf("%w: risk weight %q is not an integer", ErrBadRule, fields[3])
		}
		rule = Rule{
			Kind:   KindRisk,
			Pred:   pred,
			Target: unquoteTarget(strings.TrimSpace(fields[2])),
			Weight: weight,
		}
	case "threshold":
		if len(fields) != 3 {
			return Rule{}, fmt.Errorf("%w: threshold rule %q has %d fields, want 3", ErrBadRule, raw, len(fields))
		}
		kind, err := ParseThresholdKind(strings.TrimSpace(fields[1]))
		if err != nil {
			return Rule{}, err
		}
		value, err := strconv.Atoi(strings.TrimSpace(fields[2]))
		if err != nil {
			return Rule{}, fmt.Errorf("%w: threshold value %q is not an integer", ErrBadRule, fields[2])
		}
		rule = Rule{Kind: KindThreshold, Thresh: kind, Weight: value}
	default:
		if len(fields) != 3 {
			return Rule{}, fmt.Errorf("%w: rule %q has %d fields, want 3", ErrBadRule, raw, len(fields))
		}
		action, err := ParseAction(strings.TrimSpace(fields[0]))
		if err != nil {
			return Rule{}, err
		}
		level, err := ParseLevel(strings.TrimSpace(fields[1]))
		if err != nil {
			return Rule{}, err
		}
		rule = Rule{Action: action, Level: level, Target: unquoteTarget(strings.TrimSpace(fields[2]))}
	}
	if err := rule.Validate(); err != nil {
		return Rule{}, err
	}
	return rule, nil
}

// unquoteTarget strips the grammar's quoting from a target field. Quoted
// targets are Go string literals (the inverse of FormatPolicy's %q); fields
// that merely look quoted but are not a valid literal fall back to stripping
// the outer quotes, which is what the pre-Unquote parser always did.
func unquoteTarget(target string) string {
	if len(target) < 2 || !strings.HasPrefix(target, `"`) || !strings.HasSuffix(target, `"`) {
		return target
	}
	if unq, err := strconv.Unquote(target); err == nil {
		return unq
	}
	return target[1 : len(target)-1]
}

// bracketFields splits "[a][b][c]" into its bracketed fields, tolerating
// whitespace between brackets. Brackets inside quoted strings do not nest
// or terminate fields, and backslash escapes inside quotes are honoured so
// an escaped quote (\") does not flip the quote state.
func bracketFields(s string) ([]string, error) {
	var fields []string
	rest := strings.TrimSpace(s)
	for rest != "" {
		if rest[0] != '[' {
			return nil, fmt.Errorf("%w: expected '[' before field %d at %q", ErrBadRule, len(fields)+1, rest)
		}
		depth := 0
		end := -1
		inQuote := false
		escaped := false
		for i := 0; i < len(rest); i++ {
			if escaped {
				escaped = false
				continue
			}
			switch rest[i] {
			case '\\':
				escaped = inQuote
			case '"':
				inQuote = !inQuote
			case '[':
				if !inQuote {
					depth++
				}
			case ']':
				if !inQuote {
					depth--
					if depth == 0 {
						end = i
					}
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("%w: unterminated '[' in field %d of %q", ErrBadRule, len(fields)+1, s)
		}
		fields = append(fields, rest[1:end])
		rest = strings.TrimSpace(rest[end+1:])
	}
	return fields, nil
}

// ParsePolicy reads a full policy document: one or more rules, //-comments,
// and blank lines. A rule may span multiple physical lines; rules are
// accumulated until braces balance outside quoted strings. A // comment is
// recognized only outside quotes and outside a rule body, so targets
// containing slashes (or even "//") never truncate a rule.
func ParsePolicy(r io.Reader) ([]Rule, error) {
	var rules []Rule
	var pending strings.Builder
	depth := 0
	inQuote := false
	startLine := 0 // first line of the pending rule
	lineNo := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		// One pass over the line: track quote state (with \-escapes) and
		// brace depth, and cut a // comment when one appears outside quotes
		// at depth 0 (before a rule or after one — never inside).
		cut := len(line)
		escaped := false
	scan:
		for i := 0; i < len(line); i++ {
			if escaped {
				escaped = false
				continue
			}
			switch line[i] {
			case '\\':
				escaped = inQuote
			case '"':
				inQuote = !inQuote
			case '/':
				if !inQuote && depth == 0 && i+1 < len(line) && line[i+1] == '/' {
					cut = i
					break scan
				}
			case '{':
				if !inQuote {
					depth++
				}
			case '}':
				if !inQuote {
					depth--
					if depth < 0 {
						return nil, fmt.Errorf("%w: line %d: unbalanced '}'", ErrBadRule, lineNo)
					}
				}
			}
		}
		frag := strings.TrimSpace(line[:cut])
		if frag == "" {
			continue
		}
		if pending.Len() == 0 {
			startLine = lineNo
		}
		pending.WriteString(frag)
		if depth == 0 && !inQuote {
			rule, err := ParseRule(pending.String())
			if err != nil {
				return nil, fmt.Errorf("%s: %w", lineRef(startLine, lineNo), err)
			}
			rules = append(rules, rule)
			pending.Reset()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("policy: read: %w", err)
	}
	if pending.Len() > 0 {
		if inQuote {
			return nil, fmt.Errorf("%w: %s: unterminated quote at EOF", ErrBadRule, lineRef(startLine, lineNo))
		}
		return nil, fmt.Errorf("%w: %s: unterminated rule at EOF", ErrBadRule, lineRef(startLine, lineNo))
	}
	return rules, nil
}

// lineRef renders "line 7" or, for a rule spanning lines, "lines 7-9".
func lineRef(start, end int) string {
	if start == end {
		return fmt.Sprintf("line %d", start)
	}
	return fmt.Sprintf("lines %d-%d", start, end)
}

// ParsePolicyString is ParsePolicy over an in-memory document.
func ParsePolicyString(s string) ([]Rule, error) {
	return ParsePolicy(strings.NewReader(s))
}

// FormatPolicy renders rules back into a parseable policy document.
func FormatPolicy(rules []Rule) string {
	var b strings.Builder
	for _, r := range rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
