package policy

import (
	"fmt"
	"sync"

	"borderpatrol/internal/dex"
)

// Verdict is the engine's decision for one packet.
type Verdict int

// Verdicts.
const (
	// VerdictAllow admits the packet.
	VerdictAllow Verdict = iota + 1
	// VerdictDrop discards the packet.
	VerdictDrop
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAllow:
		return "allow"
	case VerdictDrop:
		return "drop"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Decision is a verdict plus the rule that produced it (nil for defaults).
type Decision struct {
	Verdict Verdict
	// Rule is the decisive rule; nil when the default applied.
	Rule *Rule
	// Reason is a human-readable explanation for audit logs.
	Reason string
}

// Engine evaluates ordered rules with a configurable default action. It is
// safe for concurrent use: rule updates take a write lock, evaluation a
// read lock — matching the paper's "reconfigurability" design goal (§IV),
// where administrators update policies centrally while traffic flows.
type Engine struct {
	mu          sync.RWMutex
	rules       []Rule
	defaultV    Verdict
	evaluations uint64
	defaultHits uint64
	ruleHits    map[int]uint64
}

// NewEngine builds an engine with the given ordered rules. defaultVerdict
// applies when no rule is decisive.
func NewEngine(rules []Rule, defaultVerdict Verdict) (*Engine, error) {
	for i, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("policy: rule %d: %w", i, err)
		}
	}
	if defaultVerdict != VerdictAllow && defaultVerdict != VerdictDrop {
		return nil, fmt.Errorf("policy: invalid default verdict %d", defaultVerdict)
	}
	return &Engine{
		rules:    append([]Rule(nil), rules...),
		defaultV: defaultVerdict,
		ruleHits: make(map[int]uint64, len(rules)),
	}, nil
}

// SetRules atomically replaces the rule set (central reconfiguration).
func (e *Engine) SetRules(rules []Rule) error {
	for i, r := range rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("policy: rule %d: %w", i, err)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rules = append([]Rule(nil), rules...)
	e.ruleHits = make(map[int]uint64, len(rules))
	return nil
}

// Rules returns a copy of the current rule set.
func (e *Engine) Rules() []Rule {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]Rule(nil), e.rules...)
}

// Default returns the engine's default verdict.
func (e *Engine) Default() Verdict {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.defaultV
}

// Evaluate decides the fate of a packet given its decoded context: the
// app's truncated hash and the stack-trace signatures. Rules are evaluated
// in order; the first decisive rule wins (a matching deny drops, a
// fully-matching allow admits); otherwise the default applies.
func (e *Engine) Evaluate(appHash dex.TruncatedHash, stack []dex.Signature) Decision {
	// Snapshot the rule set; SetRules replaces the slice wholesale, so the
	// snapshot stays consistent while matching runs lock-free.
	e.mu.RLock()
	rules := e.rules
	def := e.defaultV
	e.mu.RUnlock()

	decisive := -1
	var decision Decision
	for i := range rules {
		r := &rules[i]
		if !r.Matches(appHash, stack) {
			continue
		}
		decisive = i
		switch r.Action {
		case Deny:
			decision = Decision{
				Verdict: VerdictDrop,
				Rule:    r,
				Reason:  fmt.Sprintf("deny rule %s matched", r),
			}
		case Allow:
			decision = Decision{
				Verdict: VerdictAllow,
				Rule:    r,
				Reason:  fmt.Sprintf("allow rule %s satisfied by all frames", r),
			}
		}
		break
	}
	if decisive < 0 {
		decision = Decision{Verdict: def, Reason: fmt.Sprintf("default %s", def)}
	}

	e.mu.Lock()
	e.evaluations++
	if decisive >= 0 {
		e.ruleHits[decisive]++
	} else {
		e.defaultHits++
	}
	e.mu.Unlock()
	return decision
}

// Stats reports evaluation counters for monitoring.
type Stats struct {
	Evaluations uint64
	DefaultHits uint64
	RuleHits    map[int]uint64
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	hits := make(map[int]uint64, len(e.ruleHits))
	for k, v := range e.ruleHits {
		hits[k] = v
	}
	return Stats{Evaluations: e.evaluations, DefaultHits: e.defaultHits, RuleHits: hits}
}
