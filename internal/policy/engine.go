package policy

import (
	"fmt"
	"sync"
	"sync/atomic"

	"borderpatrol/internal/dex"
)

// Verdict is the engine's decision for one packet.
type Verdict int

// Verdicts.
const (
	// VerdictAllow admits the packet.
	VerdictAllow Verdict = iota + 1
	// VerdictDrop discards the packet.
	VerdictDrop
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAllow:
		return "allow"
	case VerdictDrop:
		return "drop"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Decision is a verdict plus the rule that produced it (nil for defaults).
type Decision struct {
	Verdict Verdict
	// Rule is the decisive rule; nil when the default applied (or when a
	// risk score, not one rule, decided).
	Rule *Rule
	// Reason is a human-readable explanation for audit logs.
	Reason string

	// RiskApplied reports that the contextual risk program ran for this
	// decision (risk rules loaded, flow context supplied, access rules
	// admitted the flow). RiskScore is then the summed predicate weights.
	RiskApplied bool
	// RiskWarn flags an admitted flow whose score reached the warn
	// threshold — allow-with-warning, never a third verdict.
	RiskWarn bool
	// RiskBlocked reports that the drop verdict came from the risk score
	// reaching the block threshold rather than an access rule.
	RiskBlocked bool
	// RiskScore is the flow's summed risk score when RiskApplied.
	RiskScore int
}

// Engine evaluates ordered rules with a configurable default action. It is
// safe for concurrent use and lock-free on the evaluation path: SetRules
// compiles the rule set into index structures and publishes the compiled
// form with an atomic pointer swap — matching the paper's
// "reconfigurability" design goal (§IV), where administrators update
// policies centrally while traffic flows, without ever stalling it.
type Engine struct {
	// mu serializes writers (SetRules); readers never take it.
	mu       sync.Mutex
	compiled atomic.Pointer[compiledRules]

	defaultV  Verdict
	defReason string

	// generation counts rule-set replacements; flow-verdict caches key
	// their entries on it so SetRules invalidates them without callbacks.
	generation atomic.Uint64

	// degraded, when non-nil, short-circuits every evaluation to a fixed
	// verdict — the fail-open/fail-closed posture a policy store engages
	// when its backend has been unreachable past the staleness deadline.
	// Entering and leaving degraded mode bumps the generation, so cached
	// flow verdicts from the other mode can never be served.
	degraded atomic.Pointer[Decision]

	evaluations  atomic.Uint64
	defaultHits  atomic.Uint64
	degradedHits atomic.Uint64

	riskEvaluations atomic.Uint64
	riskWarns       atomic.Uint64
	riskBlocks      atomic.Uint64
}

// NewEngine builds an engine with the given ordered rules, compiled for
// per-packet evaluation. defaultVerdict applies when no rule is decisive.
func NewEngine(rules []Rule, defaultVerdict Verdict) (*Engine, error) {
	if defaultVerdict != VerdictAllow && defaultVerdict != VerdictDrop {
		return nil, fmt.Errorf("policy: invalid default verdict %d", defaultVerdict)
	}
	c, err := compileRules(rules)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		defaultV:  defaultVerdict,
		defReason: fmt.Sprintf("default %s", defaultVerdict),
	}
	e.compiled.Store(c)
	return e, nil
}

// SetRules atomically replaces the rule set (central reconfiguration).
// In-flight evaluations finish against the rule set they started with;
// per-rule hit counters restart for the new set.
func (e *Engine) SetRules(rules []Rule) error {
	c, err := compileRules(rules)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.compiled.Store(c)
	// Bump the generation only after the new compiled set is visible: a
	// reader that observes the new generation is then guaranteed to
	// evaluate against (at least) the new rules, so a verdict cached under
	// the new generation can never reflect the old policy.
	e.generation.Add(1)
	return nil
}

// Generation returns the number of rule-set replacements plus degraded-mode
// transitions so far. Verdict caches store it with each entry and treat any
// change as invalidation.
func (e *Engine) Generation() uint64 { return e.generation.Load() }

// SetDegraded forces every evaluation to the given verdict until
// ClearDegraded — the engine half of a policy store's fail-open
// (VerdictAllow) or fail-closed (VerdictDrop) posture when the last good
// policy is older than the staleness deadline. The override is published
// before the generation bump, mirroring SetRules: any reader observing the
// new generation evaluates under the override, so a pre-degradation cached
// verdict can never be served once the transition is visible. Idempotent
// per (verdict, reason): re-asserting the same degraded state does not
// burn another generation.
func (e *Engine) SetDegraded(v Verdict, reason string) error {
	if v != VerdictAllow && v != VerdictDrop {
		return fmt.Errorf("policy: invalid degraded verdict %d", v)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur := e.degraded.Load(); cur != nil && cur.Verdict == v && cur.Reason == reason {
		return nil
	}
	e.degraded.Store(&Decision{Verdict: v, Reason: reason})
	e.generation.Add(1)
	return nil
}

// ClearDegraded lifts a degraded-mode override and returns to normal rule
// evaluation (no-op when not degraded). Leaving degraded mode bumps the
// generation so verdicts cached while degraded are invalidated.
func (e *Engine) ClearDegraded() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.degraded.Swap(nil) != nil {
		e.generation.Add(1)
	}
}

// Degraded reports the active degraded-mode override, if any.
func (e *Engine) Degraded() (Decision, bool) {
	if d := e.degraded.Load(); d != nil {
		return *d, true
	}
	return Decision{}, false
}

// Rules returns a copy of the current rule set.
func (e *Engine) Rules() []Rule {
	return append([]Rule(nil), e.compiled.Load().rules...)
}

// Default returns the engine's default verdict.
func (e *Engine) Default() Verdict { return e.defaultV }

// Evaluate decides the fate of a packet given its decoded context: the
// app's truncated hash and the stack-trace signatures. Rules are evaluated
// in order; the first decisive rule wins (a matching deny drops, a
// fully-matching allow admits); otherwise the default applies. The rules
// were compiled ahead of time, so evaluation is a few map and prefix
// probes with no locking, parsing, or allocation.
func (e *Engine) Evaluate(appHash dex.TruncatedHash, stack []dex.Signature) Decision {
	return e.EvaluateFlow(appHash, stack, nil)
}

// EvaluateFlow is Evaluate plus the contextual dimension: when fc is
// non-nil and the rule set carries risk rules, the flow's risk score is
// computed after — and only when — the access rules admit the flow, and
// folded into the decision (drop at the block threshold, RiskWarn at the
// warn threshold). This runs once per flow at SYN/cache-miss time; the
// resulting decision is what the flow table caches, so the per-packet path
// never evaluates context.
func (e *Engine) EvaluateFlow(appHash dex.TruncatedHash, stack []dex.Signature, fc *FlowContext) Decision {
	// Degraded-mode override: one pointer load on the (cache-miss) path,
	// nil in normal operation.
	if d := e.degraded.Load(); d != nil {
		e.evaluations.Add(1)
		e.degradedHits.Add(1)
		return *d
	}
	c := e.compiled.Load()
	decisive := c.evaluate(appHash, stack)

	e.evaluations.Add(1)
	var d Decision
	if decisive < len(c.rules) {
		c.hits[decisive].Add(1)
		r := &c.rules[decisive]
		v := VerdictDrop
		if r.Action == Allow {
			v = VerdictAllow
		}
		d = Decision{Verdict: v, Rule: r, Reason: c.reasons[decisive]}
	} else {
		e.defaultHits.Add(1)
		d = Decision{Verdict: e.defaultV, Reason: e.defReason}
	}
	if fc != nil && c.ctx != nil && d.Verdict == VerdictAllow {
		score := c.ctx.score(fc, c)
		d.RiskApplied = true
		d.RiskScore = score
		e.riskEvaluations.Add(1)
		switch {
		case score >= c.ctx.blockAt:
			d.Verdict = VerdictDrop
			d.Rule = nil
			d.RiskBlocked = true
			d.Reason = fmt.Sprintf("risk score %d >= block threshold %d", score, c.ctx.blockAt)
			e.riskBlocks.Add(1)
		case score >= c.ctx.warnAt:
			d.RiskWarn = true
			e.riskWarns.Add(1)
		}
	}
	return d
}

// ContextActive reports whether the current rule set carries risk rules —
// callers use it to skip building a FlowContext entirely for
// call-stack-only policies.
func (e *Engine) ContextActive() bool { return e.compiled.Load().ctx != nil }

// Thresholds returns the effective warn and block risk thresholds of the
// current rule set (defaults when no context program is active).
func (e *Engine) Thresholds() (warn, block int) {
	if ctx := e.compiled.Load().ctx; ctx != nil {
		return ctx.warnAt, ctx.blockAt
	}
	return DefaultWarnRisk, DefaultBlockRisk
}

// Stats reports evaluation counters for monitoring.
type Stats struct {
	Evaluations uint64
	DefaultHits uint64
	// DegradedHits counts evaluations answered by a degraded-mode override
	// (fail-open/fail-closed posture) instead of the rule set.
	DegradedHits uint64
	RuleHits     map[int]uint64
	// RiskEvaluations counts flows the contextual risk program scored
	// (once per flow, at SYN time); RiskWarns and RiskBlocks count the
	// scores that reached the warn and block thresholds.
	RiskEvaluations uint64
	RiskWarns       uint64
	RiskBlocks      uint64
}

// Stats returns a snapshot of the engine's counters. RuleHits carries the
// rules of the current compiled set that decided at least one packet.
func (e *Engine) Stats() Stats {
	c := e.compiled.Load()
	hits := make(map[int]uint64, len(c.hits))
	for i := range c.hits {
		if n := c.hits[i].Load(); n > 0 {
			hits[i] = n
		}
	}
	return Stats{
		Evaluations:     e.evaluations.Load(),
		DefaultHits:     e.defaultHits.Load(),
		DegradedHits:    e.degradedHits.Load(),
		RuleHits:        hits,
		RiskEvaluations: e.riskEvaluations.Load(),
		RiskWarns:       e.riskWarns.Load(),
		RiskBlocks:      e.riskBlocks.Load(),
	}
}
