package policy

import (
	"math/rand"
	"testing"

	"borderpatrol/internal/dex"
)

// This file holds the grammar property tests: for randomly generated valid
// rule sets, FormatPolicy∘ParsePolicyString is the identity, and an engine
// compiled from the reparsed rules agrees with the naive reference matcher
// on random packet contexts. It reuses the randomized generators from
// compile_test.go (rule/stack pools) and extends them with hostile target
// shapes the serializer must escape correctly.

// hostileLibTargets are library/class target strings that stress the
// quoting and scanning layers: quotes, backslashes, braces, brackets,
// comment markers, whitespace, and non-ASCII. Library and class targets
// only need to be non-empty, so all of these are valid rules.
var hostileLibTargets = []string{
	`a"b`, `a\b`, `a\"b`, "a}b{c", "a[b]c", "a//b", "a b",
	"\tcom/x\t", `com/"quoted"/lib`, "com/ünïcode/путь", `\`, `"`, "{", "}",
	"com/flurry", "com/trailing/",
}

// randRuleHostile is randRule with a slice of hostile targets mixed into
// the library- and class-level draws.
func randRuleHostile(rng *rand.Rand) Rule {
	r := randRule(rng)
	if (r.Level == LevelLibrary || r.Level == LevelClass) && rng.Intn(3) == 0 {
		r.Target = hostileLibTargets[rng.Intn(len(hostileLibTargets))]
	}
	return r
}

// TestFormatParseIdentityProperty: parsing a formatted rule set yields the
// identical rules, and formatting again is a fixpoint — for rule sets
// drawn from the extended (hostile-target) generator.
func TestFormatParseIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 500; trial++ {
		nRules := rng.Intn(30)
		rules := make([]Rule, nRules)
		for i := range rules {
			rules[i] = randRuleHostile(rng)
			if err := rules[i].Validate(); err != nil {
				t.Fatalf("trial %d: generated invalid rule %+v: %v", trial, rules[i], err)
			}
		}
		doc := FormatPolicy(rules)
		again, err := ParsePolicyString(doc)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\ndoc: %q", trial, err, doc)
		}
		if len(again) != len(rules) {
			t.Fatalf("trial %d: %d rules -> %d\ndoc: %q", trial, len(rules), len(again), doc)
		}
		for i := range rules {
			if rules[i] != again[i] {
				t.Fatalf("trial %d rule %d: %+v -> %+v\ndoc: %q", trial, i, rules[i], again[i], doc)
			}
		}
		if doc2 := FormatPolicy(again); doc2 != doc {
			t.Fatalf("trial %d: FormatPolicy not a fixpoint:\n%q\n%q", trial, doc, doc2)
		}
	}
}

// TestParsedCompiledMatchesReference closes the loop the policy store
// relies on: a rule set that survives a format→parse cycle compiles into
// an engine whose verdicts agree with the naive reference matcher over the
// original (pre-serialization) rules. This extends
// TestCompiledMatchesReference across the grammar layer — a serializer or
// parser bug that altered any rule would surface as a verdict divergence.
func TestParsedCompiledMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7331))
	for trial := 0; trial < 150; trial++ {
		nRules := rng.Intn(25)
		rules := make([]Rule, nRules)
		for i := range rules {
			rules[i] = randRule(rng)
		}
		parsed, err := ParsePolicyString(FormatPolicy(rules))
		if err != nil {
			t.Fatalf("trial %d: round trip failed: %v", trial, err)
		}
		def := VerdictAllow
		if trial%2 == 1 {
			def = VerdictDrop
		}
		eng, err := NewEngine(parsed, def)
		if err != nil {
			t.Fatalf("trial %d: NewEngine over reparsed rules: %v", trial, err)
		}
		for probe := 0; probe < 40; probe++ {
			appHash := randHash(rng)
			stack := randStack(rng)
			wantIdx, want := referenceEvaluate(rules, def, appHash, stack)
			got := eng.Evaluate(appHash, stack)
			if got.Verdict != want.Verdict || got.Reason != want.Reason {
				t.Fatalf("trial %d probe %d: decision %+v, want %+v (decisive %d)\nrules: %v",
					trial, probe, got, want, wantIdx, rules)
			}
		}
	}
}

// TestHostileTargetsSurviveEnforcement: a hostile-target rule set must not
// only round-trip, it must keep matching correctly — e.g. a rule whose
// target contains a quote still denies a stack whose package contains that
// quote verbatim.
func TestHostileTargetsSurviveEnforcement(t *testing.T) {
	for _, target := range hostileLibTargets {
		rules, err := ParsePolicyString(FormatPolicy([]Rule{
			{Action: Deny, Level: LevelLibrary, Target: target},
		}))
		if err != nil {
			t.Fatalf("target %q: %v", target, err)
		}
		eng, err := NewEngine(rules, VerdictAllow)
		if err != nil {
			t.Fatalf("target %q: %v", target, err)
		}
		stack := []dex.Signature{{Package: target, Class: "A", Name: "m", Proto: "()V"}}
		if d := eng.Evaluate(dex.TruncatedHash{}, stack); d.Verdict != VerdictDrop {
			t.Errorf("target %q: matching stack admitted after round trip: %+v", target, d)
		}
	}
}
