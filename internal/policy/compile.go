package policy

import (
	"fmt"
	"sync/atomic"

	"borderpatrol/internal/dex"
)

// This file implements the rule-set compiler: the engine's hot path no
// longer scans rules linearly per packet. At NewEngine/SetRules time the
// ordered rule list is compiled into exact-match maps (hash targets,
// method targets) and package-prefix indexes (library and class targets),
// with every rule's Reason string and parsed target precomputed. Evaluate
// then runs a handful of map probes per frame — O(frames × path segments)
// instead of O(rules × frames) — and reconstructs the paper's
// first-decisive-rule-wins ordering by tracking the minimum original rule
// index across all matching compiled entries.
//
// The same compilation-ahead-of-enforcement idea appears in the P4
// follow-up work (Kang et al., "Programmable In-Network Security for
// Context-aware BYOD Policies"), where policies become switch match
// tables; here the match tables are Go maps.

// methodKey identifies a method irrespective of its proto, for matching
// merged (debug-stripped) frames against method-level deny targets.
type methodKey struct {
	pkg, class, name string
}

// allowMatcher is one compiled non-hash allow rule. Allow rules carry
// universal (∀-frame) semantics, so they cannot be folded into the
// per-frame deny indexes; instead they are kept in original order with
// pre-parsed targets and scanned only while their index could still beat
// the best deny/hash match — for typical blacklist-heavy policies the scan
// never runs.
type allowMatcher struct {
	idx    int
	level  Level
	target string        // library/class package-path target
	sig    dex.Signature // pre-parsed method target
}

// matchesAll reports whether every frame matches the allow target at the
// rule's level (Rule.Matches ∀ semantics, without re-parsing anything).
func (m *allowMatcher) matchesAll(stack []dex.Signature) bool {
	for i := range stack {
		sig := &stack[i]
		switch m.level {
		case LevelLibrary:
			if !dex.PackagePrefixMatch(m.target, sig.Package) {
				return false
			}
		case LevelClass:
			if !classPathPrefixMatch(m.target, sig) {
				return false
			}
		case LevelMethod:
			if !methodTargetMatch(&m.sig, sig) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// methodTargetMatch mirrors Rule.MatchLevel's LevelMethod semantics with a
// pre-parsed target: exact signature equality, or a merged (debug-stripped)
// frame matching any overload target of the same method.
func methodTargetMatch(target, sig *dex.Signature) bool {
	if *target == *sig {
		return true
	}
	return sig.Merged() && target.Package == sig.Package &&
		target.Class == sig.Class && target.Name == sig.Name
}

// classPathPrefixMatch reports dex.PackagePrefixMatch(prefix,
// sig.ClassPath()) without materializing the class path string. The only
// segment boundaries in Package+"/"+Class are those inside Package, the
// one before Class, and the end of the string.
func classPathPrefixMatch(prefix string, sig *dex.Signature) bool {
	if sig.Package == "" {
		return prefix == sig.Class
	}
	if len(prefix) <= len(sig.Package) {
		return dex.PackagePrefixMatch(prefix, sig.Package)
	}
	return len(prefix) == len(sig.Package)+1+len(sig.Class) &&
		prefix[:len(sig.Package)] == sig.Package &&
		prefix[len(sig.Package)] == '/' &&
		prefix[len(sig.Package)+1:] == sig.Class
}

// compiledRules is one immutable compiled rule set. The engine swaps whole
// compiledRules values atomically on SetRules, so Evaluate runs without
// any lock. Per-rule hit counters live here because SetRules resets them
// (the pre-compiler engine had the same semantics).
type compiledRules struct {
	rules   []Rule
	reasons []string // reasons[i] is the Decision.Reason for rule i

	// byHash maps a truncated app hash to the smallest index of a
	// hash-level rule (allow or deny) targeting it.
	byHash map[dex.TruncatedHash]int
	// libPrefix maps library-level deny targets to their smallest rule
	// index; probed with every package-boundary prefix of a frame's package.
	libPrefix map[string]int
	// classPrefix holds class-level deny targets that can match inside a
	// frame's package path (same probe as libPrefix).
	classPrefix map[string]int
	// classExact holds class-level deny targets split at their last slash,
	// matching a frame's full package+class path without concatenation.
	classExact map[string]map[string]int
	// methodExact maps parsed method-level deny targets to their smallest
	// rule index, probed with the frame signature itself.
	methodExact map[dex.Signature]int
	// methodMerged maps every method-level deny target's proto-less key to
	// its smallest rule index, probed by merged (debug-stripped) frames.
	methodMerged map[methodKey]int
	// allows are the non-hash allow rules in original order.
	allows []allowMatcher

	// ctx is the compiled contextual program (risk predicates plus
	// effective thresholds), nil when the document has no risk rules —
	// call-stack-only policies pay nothing for the contextual dimension.
	ctx *contextProgram

	// hits[i] counts packets decided by rule i; for risk rules it counts
	// flows the predicate matched (contributed weight to).
	hits []atomic.Uint64
}

// keepMin records idx for key unless a smaller (earlier) rule index is
// already present: the earliest matching rule is always the decisive one.
func keepMin[K comparable](m map[K]int, key K, idx int) {
	if prev, ok := m[key]; !ok || idx < prev {
		m[key] = idx
	}
}

// compileRules validates and indexes an ordered rule set.
func compileRules(rules []Rule) (*compiledRules, error) {
	c := &compiledRules{
		rules:        append([]Rule(nil), rules...),
		reasons:      make([]string, len(rules)),
		byHash:       make(map[dex.TruncatedHash]int),
		libPrefix:    make(map[string]int),
		classPrefix:  make(map[string]int),
		classExact:   make(map[string]map[string]int),
		methodExact:  make(map[dex.Signature]int),
		methodMerged: make(map[methodKey]int),
		hits:         make([]atomic.Uint64, len(rules)),
	}
	var preds []compiledPredicate
	warnAt, blockAt := DefaultWarnRisk, DefaultBlockRisk
	for i := range c.rules {
		r := &c.rules[i]
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("policy: rule %d: %w", i, err)
		}
		switch r.Kind {
		case KindRisk:
			p, err := compilePredicate(r.Pred, r.Target)
			if err != nil {
				// Validate accepted the spec, so this cannot happen.
				return nil, fmt.Errorf("policy: rule %d: %w", i, err)
			}
			p.weight, p.idx = r.Weight, i
			c.reasons[i] = fmt.Sprintf("risk rule %s matched", r)
			preds = append(preds, p)
			continue
		case KindThreshold:
			// The last explicit threshold rule of each kind wins.
			if r.Thresh == ThresholdWarn {
				warnAt = r.Weight
			} else {
				blockAt = r.Weight
			}
			c.reasons[i] = fmt.Sprintf("threshold rule %s", r)
			continue
		}
		switch r.Action {
		case Deny:
			c.reasons[i] = fmt.Sprintf("deny rule %s matched", r)
		case Allow:
			c.reasons[i] = fmt.Sprintf("allow rule %s satisfied by all frames", r)
		}

		if r.Level == LevelHash {
			target := r.Target
			if len(target) > 2*dex.TruncatedHashSize {
				target = target[:2*dex.TruncatedHashSize]
			}
			h, err := dex.ParseTruncatedHash(target)
			if err != nil {
				// Validate accepted the target, so this cannot happen.
				return nil, fmt.Errorf("policy: rule %d: %w", i, err)
			}
			keepMin(c.byHash, h, i)
			continue
		}

		if r.Action == Allow {
			m := allowMatcher{idx: i, level: r.Level, target: r.Target}
			if r.Level == LevelMethod {
				sig, err := dex.ParseSignature(r.Target)
				if err != nil {
					return nil, fmt.Errorf("policy: rule %d: %w", i, err)
				}
				m.sig = sig
			}
			c.allows = append(c.allows, m)
			continue
		}

		switch r.Level {
		case LevelLibrary:
			keepMin(c.libPrefix, r.Target, i)
		case LevelClass:
			// A class target matches a frame either inside the frame's
			// package path (boundary prefix) or as the frame's exact
			// package+class path; index it for both probes.
			keepMin(c.classPrefix, r.Target, i)
			pkg, cls := splitClassTarget(r.Target)
			sub, ok := c.classExact[pkg]
			if !ok {
				sub = make(map[string]int)
				c.classExact[pkg] = sub
			}
			keepMin(sub, cls, i)
		case LevelMethod:
			sig, err := dex.ParseSignature(r.Target)
			if err != nil {
				return nil, fmt.Errorf("policy: rule %d: %w", i, err)
			}
			if !sig.Merged() {
				keepMin(c.methodExact, sig, i)
			}
			keepMin(c.methodMerged, methodKey{sig.Package, sig.Class, sig.Name}, i)
		}
	}
	if len(preds) > 0 {
		c.ctx = &contextProgram{preds: preds, warnAt: warnAt, blockAt: blockAt}
	}
	return c, nil
}

// splitClassTarget splits a class-level target at its last slash into the
// package part and the class simple name ("com/a/B" → "com/a", "B").
func splitClassTarget(target string) (pkg, class string) {
	for i := len(target) - 1; i >= 0; i-- {
		if target[i] == '/' {
			return target[:i], target[i+1:]
		}
	}
	return "", target
}

// probeFrame returns the smallest deny-rule index matching one frame, or
// best if none beats it. It probes the method maps once and the prefix
// maps once per package segment — allocation-free.
func (c *compiledRules) probeFrame(sig *dex.Signature, best int) int {
	if sig.Merged() {
		if len(c.methodMerged) > 0 {
			if idx, ok := c.methodMerged[methodKey{sig.Package, sig.Class, sig.Name}]; ok && idx < best {
				best = idx
			}
		}
	} else if len(c.methodExact) > 0 {
		if idx, ok := c.methodExact[*sig]; ok && idx < best {
			best = idx
		}
	}

	// Library and class prefix targets both match at package-segment
	// boundaries of the frame's package path; enumerate each boundary
	// prefix once and probe both maps.
	if len(c.libPrefix) > 0 || len(c.classPrefix) > 0 {
		pkg := sig.Package
		for i := 0; i <= len(pkg); i++ {
			if i != len(pkg) && pkg[i] != '/' {
				continue
			}
			if i == 0 {
				continue // empty prefix never matches
			}
			prefix := pkg[:i]
			if idx, ok := c.libPrefix[prefix]; ok && idx < best {
				best = idx
			}
			if idx, ok := c.classPrefix[prefix]; ok && idx < best {
				best = idx
			}
		}
	}
	// A class target can also name the frame's full package+class path.
	if len(c.classExact) > 0 {
		if sub, ok := c.classExact[sig.Package]; ok {
			if idx, ok := sub[sig.Class]; ok && idx < best {
				best = idx
			}
		}
	}
	return best
}

// evaluate finds the decisive rule index for a packet context, or
// len(c.rules) when the default applies. It preserves the reference
// linear-scan ordering exactly: the result is the minimum index over all
// matching rules, and per Rule.Matches semantics only hash-level rules can
// match an empty stack.
func (c *compiledRules) evaluate(appHash dex.TruncatedHash, stack []dex.Signature) int {
	best := len(c.rules)
	if len(c.byHash) > 0 {
		if idx, ok := c.byHash[appHash]; ok {
			best = idx
		}
	}
	if len(stack) == 0 {
		return best
	}
	for i := range stack {
		best = c.probeFrame(&stack[i], best)
	}
	// Allow rules are ordered by index, so the first full match below the
	// current best is the smallest matching allow index.
	for i := range c.allows {
		a := &c.allows[i]
		if a.idx >= best {
			break
		}
		if a.matchesAll(stack) {
			best = a.idx
			break
		}
	}
	return best
}
