package policy

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// This file extends the paper's call-stack policy grammar with the
// contextual dimension its title promises: risk-scored predicates over
// device and environment context, in the style of ConXsense's
// context-classification model and Kang et al.'s in-network BYOD policy
// compilation. Two new rule forms join the access rules:
//
//	{[risk][<predicate>]["<spec>"][<weight>]}
//	{[threshold][(warn|block)][<value>]}
//
// Predicates:
//
//	time     "HH:MM-HH:MM" window (wraps midnight), "weekday", "weekend",
//	         or a day keyword followed by a window ("weekend 22:00-06:00")
//	network  "trusted" | "cellular" | "unknown" — the device's network
//	         trust class (trusted SSID vs cellular vs unknown AP)
//	posture  "screen-locked" | "screen-unlocked" | "patch-age>N" (days)
//	travel   "impossible" (> ImpossibleTravelKmh) | ">N" km/h — velocity
//	         derived from successive location observations
//
// Risk semantics: the score of a flow is the sum of the weights of every
// matching risk predicate (weights may be negative — a trusted network can
// subtract risk). If the score reaches the block threshold the flow is
// dropped; if it reaches the warn threshold the flow is admitted with the
// decision's RiskWarn flag set (surfaced to audit, never a third verdict).
// Thresholds default to DefaultWarnRisk/DefaultBlockRisk; the last explicit
// {[threshold]...} rule of each kind wins. A warn threshold at or above the
// block threshold is legal — block simply takes precedence and warn is
// unreachable.
//
// Performance contract: context is evaluated exactly once per flow, at
// SYN/cache-miss time, and the resulting verdict is what the flow table
// caches. Risk rules only ever tighten an allow (an access deny needs no
// second opinion), so the compiled context program runs after — and only
// after — the access rules admit the flow.

// Kind discriminates the rule forms of the extended grammar. The zero
// value is KindAccess, so every pre-contextual Rule literal keeps its
// meaning unchanged.
type Kind int

// Rule kinds.
const (
	// KindAccess is a classic {[action][level][target]} call-stack rule.
	KindAccess Kind = iota
	// KindRisk is a contextual risk predicate contributing a weight.
	KindRisk
	// KindThreshold sets the warn or block risk threshold.
	KindThreshold
)

// Predicate is the contextual dimension a risk rule tests.
type Predicate int

// Predicates.
const (
	// PredTime matches time-of-day windows and weekday/weekend.
	PredTime Predicate = iota + 1
	// PredNetwork matches the device's network trust class.
	PredNetwork
	// PredPosture matches device posture (screen lock, patch age).
	PredPosture
	// PredTravel matches location-derived velocity (impossible travel).
	PredTravel
)

// String names the predicate in grammar syntax.
func (p Predicate) String() string {
	switch p {
	case PredTime:
		return "time"
	case PredNetwork:
		return "network"
	case PredPosture:
		return "posture"
	case PredTravel:
		return "travel"
	default:
		return fmt.Sprintf("predicate(%d)", int(p))
	}
}

// ParsePredicate parses a grammar predicate keyword.
func ParsePredicate(s string) (Predicate, error) {
	switch s {
	case "time":
		return PredTime, nil
	case "network":
		return PredNetwork, nil
	case "posture":
		return PredPosture, nil
	case "travel":
		return PredTravel, nil
	default:
		return 0, fmt.Errorf("%w: predicate %q", ErrBadRule, s)
	}
}

// ThresholdKind selects which risk threshold a threshold rule sets.
type ThresholdKind int

// Threshold kinds.
const (
	// ThresholdWarn sets the warn threshold (admit, flag RiskWarn).
	ThresholdWarn ThresholdKind = iota + 1
	// ThresholdBlock sets the block threshold (drop the flow).
	ThresholdBlock
)

// String names the threshold kind in grammar syntax.
func (t ThresholdKind) String() string {
	switch t {
	case ThresholdWarn:
		return "warn"
	case ThresholdBlock:
		return "block"
	default:
		return fmt.Sprintf("threshold(%d)", int(t))
	}
}

// ParseThresholdKind parses a grammar threshold keyword.
func ParseThresholdKind(s string) (ThresholdKind, error) {
	switch s {
	case "warn":
		return ThresholdWarn, nil
	case "block":
		return ThresholdBlock, nil
	default:
		return 0, fmt.Errorf("%w: threshold kind %q", ErrBadRule, s)
	}
}

// NetworkClass is the trust classification of the network a device is
// currently attached to. The zero value is NetUnknown: an unprovisioned
// device is treated as being on an unknown network, the least trusted
// class, so context defaults are fail-safe.
type NetworkClass uint8

// Network trust classes.
const (
	// NetUnknown is an unrecognized access point or unset context.
	NetUnknown NetworkClass = iota
	// NetTrusted is a provisioned corporate/home SSID.
	NetTrusted
	// NetCellular is the mobile carrier network.
	NetCellular
)

// String names the network class in grammar syntax.
func (n NetworkClass) String() string {
	switch n {
	case NetUnknown:
		return "unknown"
	case NetTrusted:
		return "trusted"
	case NetCellular:
		return "cellular"
	default:
		return fmt.Sprintf("network(%d)", int(n))
	}
}

// ParseNetworkClass parses a network trust class keyword.
func ParseNetworkClass(s string) (NetworkClass, error) {
	switch s {
	case "unknown":
		return NetUnknown, nil
	case "trusted":
		return NetTrusted, nil
	case "cellular":
		return NetCellular, nil
	default:
		return 0, fmt.Errorf("%w: network class %q", ErrBadRule, s)
	}
}

// Contextual limits and defaults.
const (
	// MaxRiskWeight bounds |weight| of one risk rule.
	MaxRiskWeight = 1000
	// MaxRiskThreshold bounds explicit warn/block threshold values.
	MaxRiskThreshold = 1000000
	// DefaultWarnRisk is the warn threshold when risk rules are present
	// but no {[threshold][warn][...]} rule is.
	DefaultWarnRisk = 50
	// DefaultBlockRisk is the block threshold when risk rules are present
	// but no {[threshold][block][...]} rule is.
	DefaultBlockRisk = 100
	// ImpossibleTravelKmh is the velocity the "impossible" travel spec
	// tests against: faster than commercial air travel between two
	// location observations means the credential moved, not the device.
	ImpossibleTravelKmh = 900
)

// DeviceContext is the per-device half of a flow's context: attributes
// that change when the device moves, locks, or updates — everything except
// time. The zero value is the least-trusted posture (unknown network,
// screen unlocked, patch age and velocity zero).
type DeviceContext struct {
	// Network is the trust class of the attached network.
	Network NetworkClass
	// ScreenLocked reports whether the device screen is locked — a locked
	// screen with active traffic suggests daemon (not user) activity.
	ScreenLocked bool
	// PatchAgeDays is the age of the device's security patch level.
	PatchAgeDays int32
	// VelocityKmh is the apparent velocity between the last two location
	// observations; ≥ ImpossibleTravelKmh indicates impossible travel.
	VelocityKmh int32
}

// FlowContext is the full context a flow is scored against at SYN time:
// the device context plus the virtual wall-clock position.
type FlowContext struct {
	// Device is the per-device context snapshot.
	Device DeviceContext
	// MinuteOfDay is the virtual time of day, 0..1439.
	MinuteOfDay uint16
	// Weekday is the virtual day of week, 0=Monday .. 6=Sunday.
	Weekday uint8
}

const minutesPerDay = 24 * 60

// TimeOfVirtual maps a virtual-clock reading to (minute-of-day, weekday).
// The virtual epoch (t=0) is defined as Monday 00:00, so weekday 5 and 6
// are the weekend.
func TimeOfVirtual(d time.Duration) (minute uint16, weekday uint8) {
	tot := int64(d / time.Minute)
	m := tot % minutesPerDay
	if m < 0 {
		m += minutesPerDay
	}
	w := (tot / minutesPerDay) % 7
	if w < 0 {
		w += 7
	}
	return uint16(m), uint8(w)
}

// Weekend reports whether the context's weekday is Saturday or Sunday.
func (fc *FlowContext) Weekend() bool { return fc.Weekday >= 5 }

// Posture / travel sub-modes of a compiled predicate.
const (
	modeNone uint8 = iota
	modeScreenLocked
	modeScreenUnlocked
	modePatchAge
)

const (
	dayMaskAll     uint8 = 0x7f
	dayMaskWeekday uint8 = 0x1f // Monday..Friday
	dayMaskWeekend uint8 = 0x60 // Saturday, Sunday
)

// compiledPredicate is one risk rule with its spec parsed ahead of
// enforcement, so scoring a flow is pure field comparisons.
type compiledPredicate struct {
	pred   Predicate
	mode   uint8
	weight int
	idx    int // original rule index, for hit counters
	// time: window [a, b) in minutes of day (wraps midnight when a > b;
	// a == b means all day); days is the weekday bitmask (bit 0 = Monday).
	// posture (modePatchAge): a is the patch-age threshold in days.
	// travel: a is the exclusive velocity threshold in km/h.
	a, b int32
	days uint8
	net  NetworkClass
}

// matches reports whether the predicate holds for the flow context.
func (p *compiledPredicate) matches(fc *FlowContext) bool {
	switch p.pred {
	case PredTime:
		if p.days&(1<<fc.Weekday) == 0 {
			return false
		}
		if p.a == p.b {
			return true // no window (or degenerate window): all day
		}
		m := int32(fc.MinuteOfDay)
		if p.a < p.b {
			return m >= p.a && m < p.b
		}
		return m >= p.a || m < p.b // wraps midnight
	case PredNetwork:
		return fc.Device.Network == p.net
	case PredPosture:
		switch p.mode {
		case modeScreenLocked:
			return fc.Device.ScreenLocked
		case modeScreenUnlocked:
			return !fc.Device.ScreenLocked
		case modePatchAge:
			return fc.Device.PatchAgeDays > p.a
		}
		return false
	case PredTravel:
		return fc.Device.VelocityKmh > p.a
	default:
		return false
	}
}

// compilePredicate parses a risk rule's spec for its predicate. It is both
// the Validate check and the compiler: a spec Validate accepts always
// compiles.
func compilePredicate(pred Predicate, spec string) (compiledPredicate, error) {
	p := compiledPredicate{pred: pred, days: dayMaskAll}
	switch pred {
	case PredTime:
		parts := strings.Fields(spec)
		if len(parts) == 0 || len(parts) > 2 {
			return p, fmt.Errorf("%w: time spec %q (want \"HH:MM-HH:MM\", \"weekday\", \"weekend\", or day + window)", ErrBadRule, spec)
		}
		sawDays, sawWindow := false, false
		for _, part := range parts {
			switch part {
			case "weekday":
				if sawDays {
					return p, fmt.Errorf("%w: time spec %q repeats day keyword", ErrBadRule, spec)
				}
				p.days, sawDays = dayMaskWeekday, true
			case "weekend":
				if sawDays {
					return p, fmt.Errorf("%w: time spec %q repeats day keyword", ErrBadRule, spec)
				}
				p.days, sawDays = dayMaskWeekend, true
			default:
				if sawWindow {
					return p, fmt.Errorf("%w: time spec %q repeats window", ErrBadRule, spec)
				}
				start, end, err := parseWindow(part)
				if err != nil {
					return p, err
				}
				p.a, p.b, sawWindow = start, end, true
			}
		}
	case PredNetwork:
		n, err := ParseNetworkClass(spec)
		if err != nil {
			return p, err
		}
		p.net = n
	case PredPosture:
		switch {
		case spec == "screen-locked":
			p.mode = modeScreenLocked
		case spec == "screen-unlocked":
			p.mode = modeScreenUnlocked
		case strings.HasPrefix(spec, "patch-age>"):
			days, err := strconv.Atoi(spec[len("patch-age>"):])
			if err != nil || days < 0 || days > 1<<20 {
				return p, fmt.Errorf("%w: posture spec %q: bad patch age", ErrBadRule, spec)
			}
			p.mode, p.a = modePatchAge, int32(days)
		default:
			return p, fmt.Errorf("%w: posture spec %q (want \"screen-locked\", \"screen-unlocked\", or \"patch-age>N\")", ErrBadRule, spec)
		}
	case PredTravel:
		switch {
		case spec == "impossible":
			p.a = ImpossibleTravelKmh
		case strings.HasPrefix(spec, ">"):
			kmh, err := strconv.Atoi(spec[1:])
			if err != nil || kmh < 0 || kmh > 1<<20 {
				return p, fmt.Errorf("%w: travel spec %q: bad velocity", ErrBadRule, spec)
			}
			p.a = int32(kmh)
		default:
			return p, fmt.Errorf("%w: travel spec %q (want \"impossible\" or \">N\")", ErrBadRule, spec)
		}
	default:
		return p, fmt.Errorf("%w: no predicate", ErrBadRule)
	}
	return p, nil
}

// parseWindow parses "HH:MM-HH:MM" into start/end minutes of day.
func parseWindow(s string) (start, end int32, err error) {
	dash := strings.IndexByte(s, '-')
	if dash < 0 {
		return 0, 0, fmt.Errorf("%w: time window %q (want \"HH:MM-HH:MM\")", ErrBadRule, s)
	}
	start, err = parseClock(s[:dash])
	if err != nil {
		return 0, 0, err
	}
	end, err = parseClock(s[dash+1:])
	if err != nil {
		return 0, 0, err
	}
	return start, end, nil
}

// parseClock parses "HH:MM" into minutes of day.
func parseClock(s string) (int32, error) {
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return 0, fmt.Errorf("%w: clock %q (want \"HH:MM\")", ErrBadRule, s)
	}
	h, err1 := strconv.Atoi(s[:colon])
	m, err2 := strconv.Atoi(s[colon+1:])
	if err1 != nil || err2 != nil || h < 0 || h > 23 || m < 0 || m > 59 ||
		len(s[:colon]) != 2 || len(s[colon+1:]) != 2 {
		return 0, fmt.Errorf("%w: clock %q (want \"HH:MM\", 00:00-23:59)", ErrBadRule, s)
	}
	return int32(h*60 + m), nil
}

// contextProgram is the compiled contextual half of a rule set: every risk
// predicate pre-parsed plus the effective thresholds. It is nil on
// compiledRules when the document has no risk rules, making the contextual
// feature literally free for call-stack-only policies.
type contextProgram struct {
	preds   []compiledPredicate
	warnAt  int
	blockAt int
}

// score sums the weights of the matching predicates and bumps their rule
// hit counters. Allocation-free: pure field comparisons over pre-parsed
// specs.
func (cp *contextProgram) score(fc *FlowContext, c *compiledRules) int {
	total := 0
	for i := range cp.preds {
		p := &cp.preds[i]
		if p.matches(fc) {
			total += p.weight
			c.hits[p.idx].Add(1)
		}
	}
	return total
}
