package policy

import (
	"fmt"
	"strings"
	"testing"
)

// paperSnippet1 is the exact policy document from the paper's Snippet 1
// examples (comments included).
const paperSnippet1 = `
// Example 1: prevent ad library connections
{[deny][library]["com/flurry"]}

// Example 2: prevent functions of an entire class
{[deny][class]["com/google/gms"]}

// Example 3: prevent uploads for Dropbox
{[deny][method]["Lcom/dropbox/android/taskqueue/UploadTask;
->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"]}

// Example 4: whitelist company app connections by hash
{[allow][hash]["da6880ab1f9919747d39e2bd895b95a5"]}
`

func TestParsePaperSnippet1(t *testing.T) {
	rules, err := ParsePolicyString(paperSnippet1)
	if err != nil {
		t.Fatalf("ParsePolicyString: %v", err)
	}
	if len(rules) != 4 {
		t.Fatalf("got %d rules, want 4", len(rules))
	}
	want := []struct {
		action Action
		level  Level
		target string
	}{
		{Deny, LevelLibrary, "com/flurry"},
		{Deny, LevelClass, "com/google/gms"},
		{Deny, LevelMethod, "Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"},
		{Allow, LevelHash, "da6880ab1f9919747d39e2bd895b95a5"},
	}
	for i, w := range want {
		if rules[i].Action != w.action || rules[i].Level != w.level || rules[i].Target != w.target {
			t.Errorf("rule %d = %+v, want %+v", i, rules[i], w)
		}
	}
}

func TestParseRuleSingle(t *testing.T) {
	r, err := ParseRule(`{[deny][library]["com/flurry"]}`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Action != Deny || r.Level != LevelLibrary || r.Target != "com/flurry" {
		t.Fatalf("parsed %+v", r)
	}
	// Whitespace tolerance.
	r2, err := ParseRule(`{ [allow] [hash] ["aabbccdd00112233"] }`)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Action != Allow || r2.Level != LevelHash {
		t.Fatalf("parsed %+v", r2)
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		``,
		`[deny][library]["x"]`,               // no braces
		`{[deny]["com/flurry"]}`,             // missing level
		`{[deny][library]["com/flurry"][x]}`, // extra field
		`{[maybe][library]["com/flurry"]}`,   // bad action
		`{[deny][file]["com/flurry"]}`,       // bad level
		`{[deny][library][""]}`,              // empty target
		`{[deny][method]["garbage"]}`,        // unparsable method target
		`{deny library com/flurry}`,          // no brackets
	}
	for _, raw := range bad {
		if _, err := ParseRule(raw); err == nil {
			t.Errorf("ParseRule(%q) succeeded, want error", raw)
		}
	}
}

func TestParsePolicyErrors(t *testing.T) {
	if _, err := ParsePolicyString("{[deny][library][\"a\"]}\n}"); err == nil {
		t.Error("unbalanced brace accepted")
	}
	if _, err := ParsePolicyString("{[deny][library][\"a\"]"); err == nil {
		t.Error("unterminated rule accepted")
	}
	if _, err := ParsePolicyString("{[deny][nope][\"a\"]}"); err == nil {
		t.Error("invalid rule accepted")
	}
}

func TestFormatPolicyRoundTrip(t *testing.T) {
	rules, err := ParsePolicyString(paperSnippet1)
	if err != nil {
		t.Fatal(err)
	}
	doc := FormatPolicy(rules)
	again, err := ParsePolicyString(doc)
	if err != nil {
		t.Fatalf("reparse formatted policy: %v\n%s", err, doc)
	}
	if len(again) != len(rules) {
		t.Fatalf("round trip lost rules: %d -> %d", len(rules), len(again))
	}
	for i := range rules {
		if rules[i] != again[i] {
			t.Errorf("rule %d changed: %+v -> %+v", i, rules[i], again[i])
		}
	}
}

func TestParsePolicyIgnoresCommentsAndBlank(t *testing.T) {
	doc := `
// a comment

{[deny][library]["com/ads"]}   // trailing comment
`
	rules, err := ParsePolicyString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Target != "com/ads" {
		t.Fatalf("rules = %+v", rules)
	}
}

// TestParsePolicyErrorLineNumbers pins the locatability guarantee: a bad
// rule deep inside a large policy document must be reported with its line
// number (or line range for multi-line rules), not just the rule text.
func TestParsePolicyErrorLineNumbers(t *testing.T) {
	good := `{[deny][library]["com/ok"]}`
	mk := func(lines ...string) string { return strings.Join(lines, "\n") }

	cases := []struct {
		name, doc, wantLoc string
	}{
		{
			name:    "unterminated bracket",
			doc:     mk(good, good, `{[deny][library "com/broken"]}`, good),
			wantLoc: "line 3",
		},
		{
			name:    "nested braces",
			doc:     mk(good, `{{[deny][library]["com/x"]}}`, good),
			wantLoc: "line 2",
		},
		{
			name:    "bad action",
			doc:     mk(good, good, good, `{[maybe][library]["com/x"]}`),
			wantLoc: "line 4",
		},
		{
			name:    "multi-line rule reports its range",
			doc:     mk(good, `{[deny][nope]`, `["com/x"]}`, good),
			wantLoc: "lines 2-3",
		},
		{
			name:    "unterminated rule at EOF reports start line",
			doc:     mk(good, good, `{[deny][library]["com/x"]`),
			wantLoc: "line 3",
		},
		{
			name:    "unterminated quote at EOF",
			doc:     mk(good, `{[deny][library]["com/x`),
			wantLoc: "line 2",
		},
	}
	for _, tc := range cases {
		_, err := ParsePolicyString(tc.doc)
		if err == nil {
			t.Errorf("%s: document accepted, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantLoc) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.wantLoc)
		}
	}
}

// TestParsePolicyBigFileBadRuleLocatable is the satellite scenario end to
// end: one malformed rule buried in a 1,050-rule document is reported at
// its exact line.
func TestParsePolicyBigFileBadRuleLocatable(t *testing.T) {
	var b strings.Builder
	badLine := 0
	for i := 0; i < 1050; i++ {
		if i == 717 {
			badLine = i + 1
			b.WriteString("{[deny][library \"com/bad\"]}\n") // unterminated '[' field
			continue
		}
		fmt.Fprintf(&b, "{[deny][library][\"com/lib%04d\"]}\n", i)
	}
	_, err := ParsePolicyString(b.String())
	if err == nil {
		t.Fatal("malformed document accepted")
	}
	want := fmt.Sprintf("line %d", badLine)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not locate the bad rule at %q", err, want)
	}
}

// TestParseRuleQuotedTargets covers the Go-quoted target forms FormatPolicy
// emits: escaped quotes, backslashes, and brackets/braces inside quotes.
func TestParseRuleQuotedTargets(t *testing.T) {
	cases := []struct {
		raw, want string
	}{
		{`{[deny][library]["com/flurry"]}`, "com/flurry"},
		{`{[deny][library]["a\"b"]}`, `a"b`},
		{`{[deny][library]["a\\b"]}`, `a\b`},
		{`{[deny][library]["a[b]c"]}`, "a[b]c"},
		{`{[deny][library]["a{b}c"]}`, "a{b}c"},
		{`{[deny][library]["a//b"]}`, "a//b"},
		{`{[deny][library][bare/target]}`, "bare/target"},
	}
	for _, tc := range cases {
		r, err := ParseRule(tc.raw)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", tc.raw, err)
			continue
		}
		if r.Target != tc.want {
			t.Errorf("ParseRule(%q).Target = %q, want %q", tc.raw, r.Target, tc.want)
		}
	}
}

// TestParsePolicyQuoteAwareScanning: braces and comment markers inside
// quoted targets must not terminate rules or truncate lines.
func TestParsePolicyQuoteAwareScanning(t *testing.T) {
	doc := `
{[deny][library]["a//b"]}   // real comment after the rule
{[deny][library]["a}b{c"]}
{[deny][class]["com/x" ]}
`
	rules, err := ParsePolicyString(doc)
	if err != nil {
		t.Fatalf("ParsePolicyString: %v", err)
	}
	want := []string{"a//b", "a}b{c", "com/x"}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d: %+v", len(rules), len(want), rules)
	}
	for i, w := range want {
		if rules[i].Target != w {
			t.Errorf("rule %d target = %q, want %q", i, rules[i].Target, w)
		}
	}
}

func TestBracketFieldsQuotedBrackets(t *testing.T) {
	// Targets may contain brackets inside quotes (array descriptors).
	r, err := ParseRule(`{[deny][method]["Lcom/a/B;->m([B)V"]}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Target, "([B)V") {
		t.Fatalf("target = %q", r.Target)
	}
}
