package policy

import (
	"strings"
	"testing"
)

// paperSnippet1 is the exact policy document from the paper's Snippet 1
// examples (comments included).
const paperSnippet1 = `
// Example 1: prevent ad library connections
{[deny][library]["com/flurry"]}

// Example 2: prevent functions of an entire class
{[deny][class]["com/google/gms"]}

// Example 3: prevent uploads for Dropbox
{[deny][method]["Lcom/dropbox/android/taskqueue/UploadTask;
->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"]}

// Example 4: whitelist company app connections by hash
{[allow][hash]["da6880ab1f9919747d39e2bd895b95a5"]}
`

func TestParsePaperSnippet1(t *testing.T) {
	rules, err := ParsePolicyString(paperSnippet1)
	if err != nil {
		t.Fatalf("ParsePolicyString: %v", err)
	}
	if len(rules) != 4 {
		t.Fatalf("got %d rules, want 4", len(rules))
	}
	want := []struct {
		action Action
		level  Level
		target string
	}{
		{Deny, LevelLibrary, "com/flurry"},
		{Deny, LevelClass, "com/google/gms"},
		{Deny, LevelMethod, "Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"},
		{Allow, LevelHash, "da6880ab1f9919747d39e2bd895b95a5"},
	}
	for i, w := range want {
		if rules[i].Action != w.action || rules[i].Level != w.level || rules[i].Target != w.target {
			t.Errorf("rule %d = %+v, want %+v", i, rules[i], w)
		}
	}
}

func TestParseRuleSingle(t *testing.T) {
	r, err := ParseRule(`{[deny][library]["com/flurry"]}`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Action != Deny || r.Level != LevelLibrary || r.Target != "com/flurry" {
		t.Fatalf("parsed %+v", r)
	}
	// Whitespace tolerance.
	r2, err := ParseRule(`{ [allow] [hash] ["aabbccdd00112233"] }`)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Action != Allow || r2.Level != LevelHash {
		t.Fatalf("parsed %+v", r2)
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		``,
		`[deny][library]["x"]`,               // no braces
		`{[deny]["com/flurry"]}`,             // missing level
		`{[deny][library]["com/flurry"][x]}`, // extra field
		`{[maybe][library]["com/flurry"]}`,   // bad action
		`{[deny][file]["com/flurry"]}`,       // bad level
		`{[deny][library][""]}`,              // empty target
		`{[deny][method]["garbage"]}`,        // unparsable method target
		`{deny library com/flurry}`,          // no brackets
	}
	for _, raw := range bad {
		if _, err := ParseRule(raw); err == nil {
			t.Errorf("ParseRule(%q) succeeded, want error", raw)
		}
	}
}

func TestParsePolicyErrors(t *testing.T) {
	if _, err := ParsePolicyString("{[deny][library][\"a\"]}\n}"); err == nil {
		t.Error("unbalanced brace accepted")
	}
	if _, err := ParsePolicyString("{[deny][library][\"a\"]"); err == nil {
		t.Error("unterminated rule accepted")
	}
	if _, err := ParsePolicyString("{[deny][nope][\"a\"]}"); err == nil {
		t.Error("invalid rule accepted")
	}
}

func TestFormatPolicyRoundTrip(t *testing.T) {
	rules, err := ParsePolicyString(paperSnippet1)
	if err != nil {
		t.Fatal(err)
	}
	doc := FormatPolicy(rules)
	again, err := ParsePolicyString(doc)
	if err != nil {
		t.Fatalf("reparse formatted policy: %v\n%s", err, doc)
	}
	if len(again) != len(rules) {
		t.Fatalf("round trip lost rules: %d -> %d", len(rules), len(again))
	}
	for i := range rules {
		if rules[i] != again[i] {
			t.Errorf("rule %d changed: %+v -> %+v", i, rules[i], again[i])
		}
	}
}

func TestParsePolicyIgnoresCommentsAndBlank(t *testing.T) {
	doc := `
// a comment

{[deny][library]["com/ads"]}   // trailing comment
`
	rules, err := ParsePolicyString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Target != "com/ads" {
		t.Fatalf("rules = %+v", rules)
	}
}

func TestBracketFieldsQuotedBrackets(t *testing.T) {
	// Targets may contain brackets inside quotes (array descriptors).
	r, err := ParseRule(`{[deny][method]["Lcom/a/B;->m([B)V"]}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Target, "([B)V") {
		t.Fatalf("target = %q", r.Target)
	}
}
