// Package policy implements BorderPatrol's fine-grained policy model
// (paper §IV-B): rules of the form {[action][level][target]} evaluated
// against the app hash and decoded stack-trace signatures carried in each
// packet.
//
// Enforcement levels are ordered by granularity, ℓh < ℓk < ℓc < ℓm (hash,
// library, class, method). For a packet header H with app hash h and stack
// signatures s0..sn, a rule (α, L, θ) applies as:
//
//   - α = deny:  drop the packet if ∃ s ∈ H whose match with θ reaches
//     level ≥ L (blacklisting).
//   - α = allow: admit the packet iff ∀ s ∈ H match θ at level ≥ L
//     (whitelisting).
package policy

import (
	"errors"
	"fmt"
	"strings"

	"borderpatrol/internal/dex"
)

// Action is a policy enforcement action α.
type Action int

// Actions.
const (
	// Allow whitelists matching traffic.
	Allow Action = iota + 1
	// Deny blacklists matching traffic.
	Deny
)

// String names the action in grammar syntax.
func (a Action) String() string {
	switch a {
	case Allow:
		return "allow"
	case Deny:
		return "deny"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Level is the enforcement granularity L. Higher values are finer.
type Level int

// Levels, ordered ℓh < ℓk < ℓc < ℓm per the paper.
const (
	// LevelHash matches the whole app by its apk hash.
	LevelHash Level = iota + 1
	// LevelLibrary matches a Java package-path prefix ("com/flurry").
	LevelLibrary
	// LevelClass matches a fully-qualified class path prefix.
	LevelClass
	// LevelMethod matches a full method signature.
	LevelMethod
)

// String names the level in grammar syntax.
func (l Level) String() string {
	switch l {
	case LevelHash:
		return "hash"
	case LevelLibrary:
		return "library"
	case LevelClass:
		return "class"
	case LevelMethod:
		return "method"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel parses a grammar level keyword.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "hash":
		return LevelHash, nil
	case "library":
		return LevelLibrary, nil
	case "class":
		return LevelClass, nil
	case "method":
		return LevelMethod, nil
	default:
		return 0, fmt.Errorf("%w: level %q", ErrBadRule, s)
	}
}

// ParseAction parses a grammar action keyword.
func ParseAction(s string) (Action, error) {
	switch s {
	case "allow":
		return Allow, nil
	case "deny":
		return Deny, nil
	default:
		return 0, fmt.Errorf("%w: action %q", ErrBadRule, s)
	}
}

// Rule is one policy rule. The paper's access form is (α, L, θ); the
// contextual extension adds risk-predicate and threshold forms selected by
// Kind (see context.go). The zero Kind is KindAccess, so pre-contextual
// Rule literals keep their meaning.
type Rule struct {
	Action Action
	Level  Level
	Target string

	// Kind discriminates the rule form; zero is KindAccess.
	Kind Kind
	// Pred is the contextual dimension of a KindRisk rule; Target then
	// holds the predicate spec ("22:00-06:00", "trusted", ...).
	Pred Predicate
	// Weight is the risk contribution of a KindRisk rule (may be
	// negative), or the threshold value of a KindThreshold rule.
	Weight int
	// Thresh selects warn or block for a KindThreshold rule.
	Thresh ThresholdKind
}

// ErrBadRule reports an unparsable rule.
var ErrBadRule = errors.New("policy: malformed rule")

// String renders the rule in the grammar of its kind.
func (r Rule) String() string {
	switch r.Kind {
	case KindRisk:
		return fmt.Sprintf("{[risk][%s][%q][%d]}", r.Pred, r.Target, r.Weight)
	case KindThreshold:
		return fmt.Sprintf("{[threshold][%s][%d]}", r.Thresh, r.Weight)
	default:
		return fmt.Sprintf("{[%s][%s][%q]}", r.Action, r.Level, r.Target)
	}
}

// Validate rejects incomplete or inconsistent rules.
func (r Rule) Validate() error {
	switch r.Kind {
	case KindAccess:
		// Validated below.
	case KindRisk:
		if _, err := compilePredicate(r.Pred, r.Target); err != nil {
			return err
		}
		if r.Weight < -MaxRiskWeight || r.Weight > MaxRiskWeight {
			return fmt.Errorf("%w: risk weight %d outside ±%d", ErrBadRule, r.Weight, MaxRiskWeight)
		}
		return nil
	case KindThreshold:
		if r.Thresh != ThresholdWarn && r.Thresh != ThresholdBlock {
			return fmt.Errorf("%w: %s has no threshold kind", ErrBadRule, r)
		}
		if r.Weight < 1 || r.Weight > MaxRiskThreshold {
			return fmt.Errorf("%w: threshold value %d outside 1..%d", ErrBadRule, r.Weight, MaxRiskThreshold)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown rule kind %d", ErrBadRule, int(r.Kind))
	}
	if r.Action != Allow && r.Action != Deny {
		return fmt.Errorf("%w: %s has no action", ErrBadRule, r)
	}
	if r.Level < LevelHash || r.Level > LevelMethod {
		return fmt.Errorf("%w: %s has no level", ErrBadRule, r)
	}
	if r.Target == "" {
		return fmt.Errorf("%w: %s has empty target", ErrBadRule, r)
	}
	if r.Level == LevelHash {
		if _, err := dex.ParseTruncatedHash(r.Target); err != nil {
			// Full 32-hex-digit hashes are also accepted as targets.
			if len(r.Target) != 2*dex.HashSize || !isHex(r.Target) {
				return fmt.Errorf("%w: hash target %q is not a hash", ErrBadRule, r.Target)
			}
		}
	}
	if r.Level == LevelMethod {
		if _, err := dex.ParseSignature(r.Target); err != nil {
			return fmt.Errorf("%w: method target: %v", ErrBadRule, err)
		}
	}
	return nil
}

func isHex(s string) bool {
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		default:
			return false
		}
	}
	return len(s) > 0
}

// MatchLevel computes ℓθ: the highest level at which the rule's target
// matches the given stack signature (with appHash the packet's app
// identifier). Returns 0 when the target does not match at all.
func (r Rule) MatchLevel(appHash dex.TruncatedHash, sig dex.Signature) Level {
	switch r.Level {
	case LevelHash:
		// Hash targets compare against the packet's app identity; every
		// frame of a matching app "contains" the app at ℓh.
		target := r.Target
		if len(target) > 2*dex.TruncatedHashSize {
			target = target[:2*dex.TruncatedHashSize]
		}
		if strings.EqualFold(target, appHash.String()) {
			return LevelHash
		}
		return 0
	case LevelLibrary:
		if dex.PackagePrefixMatch(r.Target, sig.Package) {
			return LevelLibrary
		}
		return 0
	case LevelClass:
		if dex.PackagePrefixMatch(r.Target, sig.ClassPath()) {
			return LevelClass
		}
		return 0
	case LevelMethod:
		target, err := dex.ParseSignature(r.Target)
		if err != nil {
			return 0
		}
		if target == sig {
			return LevelMethod
		}
		// A merged (debug-stripped) frame over-approximates every overload
		// of the method: it must match a method target that differs only in
		// proto, otherwise stripping debug info would bypass policies.
		if sig.Merged() && target.Package == sig.Package &&
			target.Class == sig.Class && target.Name == sig.Name {
			return LevelMethod
		}
		return 0
	default:
		return 0
	}
}

// Matches reports whether the rule applies to the packet context per the
// paper's semantics: a deny rule matches when ∃ a signature at level ≥ L; an
// allow rule matches when ∀ signatures are at level ≥ L. For hash-level
// rules an empty stack still carries app identity, so the hash decides.
func (r Rule) Matches(appHash dex.TruncatedHash, stack []dex.Signature) bool {
	if r.Level == LevelHash {
		return r.MatchLevel(appHash, dex.Signature{}) >= r.Level
	}
	if len(stack) == 0 {
		return false
	}
	switch r.Action {
	case Deny:
		for _, sig := range stack {
			if r.MatchLevel(appHash, sig) >= r.Level {
				return true
			}
		}
		return false
	case Allow:
		for _, sig := range stack {
			if r.MatchLevel(appHash, sig) < r.Level {
				return false
			}
		}
		return true
	default:
		return false
	}
}
