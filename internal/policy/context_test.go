package policy

import (
	"strings"
	"testing"
	"time"

	"borderpatrol/internal/dex"
)

// contextDoc is a representative contextual policy: call-stack access
// rules plus risk predicates and explicit thresholds.
const contextDoc = `
// access rules
{[deny][library]["com/flurry"]}

// contextual risk
{[risk][network]["unknown"][60]}
{[risk][network]["trusted"][-30]}
{[risk][time]["22:00-06:00"][35]}
{[risk][time]["weekend"][20]}
{[risk][posture]["screen-locked"][15]}
{[risk][posture]["patch-age>90"][40]}
{[risk][travel]["impossible"][100]}
{[threshold][warn][40]}
{[threshold][block][100]}
`

func mustEngine(t *testing.T, doc string) *Engine {
	t.Helper()
	rules, err := ParsePolicyString(doc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(rules, VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestContextualRoundTrip(t *testing.T) {
	rules, err := ParsePolicyString(contextDoc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 10 {
		t.Fatalf("parsed %d rules, want 10", len(rules))
	}
	formatted := FormatPolicy(rules)
	again, err := ParsePolicyString(formatted)
	if err != nil {
		t.Fatalf("formatted contextual policy unparsable: %v\n%s", err, formatted)
	}
	if !rulesEqual(rules, again) {
		t.Fatalf("round trip changed rules:\n%+v\n%+v", rules, again)
	}
	if f2 := FormatPolicy(again); f2 != formatted {
		t.Fatalf("FormatPolicy not a fixpoint:\n%q\n%q", formatted, f2)
	}
}

func TestContextualRuleRejects(t *testing.T) {
	bad := []string{
		`{[risk][time]["25:00-26:00"][10]}`,
		`{[risk][time]["9:00-17:00"][10]}`, // single-digit hour
		`{[risk][time][""][10]}`,
		`{[risk][time]["weekend weekend"][10]}`,
		`{[risk][network]["wired"][10]}`,
		`{[risk][posture]["rooted"][10]}`,
		`{[risk][posture]["patch-age>-1"][10]}`,
		`{[risk][travel]["fast"][10]}`,
		`{[risk][travel][">-5"][10]}`,
		`{[risk][network]["trusted"][1001]}`,
		`{[risk][network]["trusted"][-1001]}`,
		`{[risk][network]["trusted"][x]}`,
		`{[risk][network]["trusted"]}`,
		`{[threshold][maybe][10]}`,
		`{[threshold][warn][0]}`,
		`{[threshold][block][-5]}`,
		`{[threshold][block][10][extra]}`,
	}
	for _, raw := range bad {
		if r, err := ParseRule(raw); err == nil {
			t.Errorf("ParseRule(%q) accepted as %+v, want error", raw, r)
		}
	}
}

func TestTimeOfVirtual(t *testing.T) {
	cases := []struct {
		d      time.Duration
		minute uint16
		day    uint8
	}{
		{0, 0, 0},                                   // Monday 00:00
		{9 * time.Hour, 9 * 60, 0},                  // Monday 09:00
		{24 * time.Hour, 0, 1},                      // Tuesday 00:00
		{5*24*time.Hour + 13*time.Hour, 13 * 60, 5}, // Saturday 13:00
		{7 * 24 * time.Hour, 0, 0},                  // next Monday
	}
	for _, c := range cases {
		m, w := TimeOfVirtual(c.d)
		if m != c.minute || w != c.day {
			t.Errorf("TimeOfVirtual(%v) = (%d, %d), want (%d, %d)", c.d, m, w, c.minute, c.day)
		}
	}
}

func TestPredicateMatching(t *testing.T) {
	cases := []struct {
		pred  Predicate
		spec  string
		fc    FlowContext
		match bool
	}{
		// Time windows, including the midnight wrap.
		{PredTime, "09:00-17:00", FlowContext{MinuteOfDay: 10 * 60}, true},
		{PredTime, "09:00-17:00", FlowContext{MinuteOfDay: 17 * 60}, false}, // [start,end)
		{PredTime, "09:00-17:00", FlowContext{MinuteOfDay: 8 * 60}, false},
		{PredTime, "22:00-06:00", FlowContext{MinuteOfDay: 23 * 60}, true},
		{PredTime, "22:00-06:00", FlowContext{MinuteOfDay: 3 * 60}, true},
		{PredTime, "22:00-06:00", FlowContext{MinuteOfDay: 12 * 60}, false},
		{PredTime, "weekend", FlowContext{Weekday: 5}, true},
		{PredTime, "weekend", FlowContext{Weekday: 4}, false},
		{PredTime, "weekday", FlowContext{Weekday: 4}, true},
		{PredTime, "weekday", FlowContext{Weekday: 6}, false},
		{PredTime, "weekend 22:00-06:00", FlowContext{Weekday: 5, MinuteOfDay: 23 * 60}, true},
		{PredTime, "weekend 22:00-06:00", FlowContext{Weekday: 2, MinuteOfDay: 23 * 60}, false},
		{PredTime, "weekend 22:00-06:00", FlowContext{Weekday: 5, MinuteOfDay: 12 * 60}, false},
		// Network trust class.
		{PredNetwork, "trusted", FlowContext{Device: DeviceContext{Network: NetTrusted}}, true},
		{PredNetwork, "trusted", FlowContext{Device: DeviceContext{Network: NetCellular}}, false},
		{PredNetwork, "unknown", FlowContext{}, true}, // zero value is unknown
		// Posture.
		{PredPosture, "screen-locked", FlowContext{Device: DeviceContext{ScreenLocked: true}}, true},
		{PredPosture, "screen-locked", FlowContext{}, false},
		{PredPosture, "screen-unlocked", FlowContext{}, true},
		{PredPosture, "patch-age>90", FlowContext{Device: DeviceContext{PatchAgeDays: 91}}, true},
		{PredPosture, "patch-age>90", FlowContext{Device: DeviceContext{PatchAgeDays: 90}}, false},
		// Travel.
		{PredTravel, "impossible", FlowContext{Device: DeviceContext{VelocityKmh: 901}}, true},
		{PredTravel, "impossible", FlowContext{Device: DeviceContext{VelocityKmh: 900}}, false},
		{PredTravel, ">300", FlowContext{Device: DeviceContext{VelocityKmh: 301}}, true},
		{PredTravel, ">300", FlowContext{Device: DeviceContext{VelocityKmh: 250}}, false},
	}
	for _, c := range cases {
		p, err := compilePredicate(c.pred, c.spec)
		if err != nil {
			t.Fatalf("compilePredicate(%v, %q): %v", c.pred, c.spec, err)
		}
		fc := c.fc
		if got := p.matches(&fc); got != c.match {
			t.Errorf("%v %q vs %+v = %v, want %v", c.pred, c.spec, c.fc, got, c.match)
		}
	}
}

func TestRiskScoringThresholds(t *testing.T) {
	e := mustEngine(t, contextDoc)
	if !e.ContextActive() {
		t.Fatal("ContextActive() = false with risk rules loaded")
	}
	if warn, block := e.Thresholds(); warn != 40 || block != 100 {
		t.Fatalf("Thresholds() = (%d, %d), want (40, 100)", warn, block)
	}
	var h dex.TruncatedHash
	stack := []dex.Signature{{Package: "com/corp", Class: "Main", Name: "run", Proto: "()V"}}

	// Trusted network on a weekday afternoon: negative weight, clean allow.
	trusted := &FlowContext{Device: DeviceContext{Network: NetTrusted}, MinuteOfDay: 14 * 60, Weekday: 2}
	d := e.EvaluateFlow(h, stack, trusted)
	if d.Verdict != VerdictAllow || d.RiskWarn || !d.RiskApplied || d.RiskScore != -30 {
		t.Fatalf("trusted: %+v", d)
	}

	// Unknown network alone (60) reaches warn (40) but not block (100).
	unknown := &FlowContext{MinuteOfDay: 14 * 60, Weekday: 2}
	d = e.EvaluateFlow(h, stack, unknown)
	if d.Verdict != VerdictAllow || !d.RiskWarn || d.RiskScore != 60 {
		t.Fatalf("unknown: %+v", d)
	}

	// Unknown network + night window + locked screen = 60+35+15 = 110 ≥ 100.
	risky := &FlowContext{
		Device:      DeviceContext{ScreenLocked: true},
		MinuteOfDay: 23 * 60,
		Weekday:     2,
	}
	d = e.EvaluateFlow(h, stack, risky)
	if d.Verdict != VerdictDrop || !d.RiskBlocked || d.RiskScore != 110 {
		t.Fatalf("risky: %+v", d)
	}
	if !strings.Contains(d.Reason, "risk score 110") {
		t.Fatalf("block reason %q does not cite the score", d.Reason)
	}

	// Impossible travel alone blocks even on a trusted network at noon:
	// 100 - 30 = 70 < 100... so add the weekend weight: 100-30+20 = 90 < 100,
	// still short — use unknown network: 100+60 = 160.
	traveling := &FlowContext{Device: DeviceContext{VelocityKmh: 1200}, MinuteOfDay: 12 * 60, Weekday: 2}
	d = e.EvaluateFlow(h, stack, traveling)
	if d.Verdict != VerdictDrop || !d.RiskBlocked || d.RiskScore != 160 {
		t.Fatalf("traveling: %+v", d)
	}

	st := e.Stats()
	if st.RiskEvaluations != 4 || st.RiskWarns != 1 || st.RiskBlocks != 2 {
		t.Fatalf("risk stats = %+v", st)
	}
}

func TestRiskOnlyTightensAllows(t *testing.T) {
	// An access deny never consults the risk program, and a nil context
	// (call-stack-only caller) never applies risk.
	e := mustEngine(t, contextDoc)
	var h dex.TruncatedHash
	ad := []dex.Signature{{Package: "com/flurry/sdk", Class: "Agent", Name: "beacon", Proto: "()V"}}
	risky := &FlowContext{Device: DeviceContext{VelocityKmh: 9000}}
	d := e.EvaluateFlow(h, ad, risky)
	if d.Verdict != VerdictDrop || d.RiskApplied || d.Rule == nil {
		t.Fatalf("access deny should decide before risk: %+v", d)
	}
	clean := []dex.Signature{{Package: "com/corp", Class: "Main", Name: "run", Proto: "()V"}}
	d = e.EvaluateFlow(h, clean, nil)
	if d.Verdict != VerdictAllow || d.RiskApplied {
		t.Fatalf("nil context must skip risk: %+v", d)
	}
	if st := e.Stats(); st.RiskEvaluations != 0 {
		t.Fatalf("RiskEvaluations = %d, want 0 (deny and nil-context paths skip risk)", st.RiskEvaluations)
	}
}

func TestThresholdDefaultsAndLastWins(t *testing.T) {
	// No explicit thresholds: defaults apply.
	e := mustEngine(t, `{[risk][network]["unknown"][60]}`)
	if warn, block := e.Thresholds(); warn != DefaultWarnRisk || block != DefaultBlockRisk {
		t.Fatalf("default thresholds = (%d, %d)", warn, block)
	}
	var h dex.TruncatedHash
	stack := []dex.Signature{{Package: "com/corp", Class: "Main", Name: "run", Proto: "()V"}}
	d := e.EvaluateFlow(h, stack, &FlowContext{})
	if d.Verdict != VerdictAllow || !d.RiskWarn { // 60 ≥ 50 default warn
		t.Fatalf("default warn: %+v", d)
	}

	// The last threshold rule of each kind wins.
	e = mustEngine(t, `
{[risk][network]["unknown"][60]}
{[threshold][block][200]}
{[threshold][block][55]}
`)
	d = e.EvaluateFlow(h, stack, &FlowContext{})
	if d.Verdict != VerdictDrop || !d.RiskBlocked {
		t.Fatalf("last block threshold (55) should drop score 60: %+v", d)
	}

	// Threshold rules without risk rules leave the program inactive.
	e = mustEngine(t, `{[threshold][block][1]}`)
	if e.ContextActive() {
		t.Fatal("thresholds alone must not activate the context program")
	}
	d = e.EvaluateFlow(h, stack, &FlowContext{})
	if d.Verdict != VerdictAllow || d.RiskApplied {
		t.Fatalf("inactive program: %+v", d)
	}
}

func TestDegradedOverridesRisk(t *testing.T) {
	e := mustEngine(t, contextDoc)
	if err := e.SetDegraded(VerdictAllow, "fail-open"); err != nil {
		t.Fatal(err)
	}
	var h dex.TruncatedHash
	stack := []dex.Signature{{Package: "com/corp", Class: "Main", Name: "run", Proto: "()V"}}
	d := e.EvaluateFlow(h, stack, &FlowContext{Device: DeviceContext{VelocityKmh: 9000}})
	if d.Verdict != VerdictAllow || d.RiskApplied {
		t.Fatalf("degraded override must bypass risk: %+v", d)
	}
}

func TestRiskRuleHitCounters(t *testing.T) {
	e := mustEngine(t, contextDoc)
	var h dex.TruncatedHash
	stack := []dex.Signature{{Package: "com/corp", Class: "Main", Name: "run", Proto: "()V"}}
	e.EvaluateFlow(h, stack, &FlowContext{Device: DeviceContext{Network: NetTrusted}, MinuteOfDay: 14 * 60, Weekday: 2})
	st := e.Stats()
	// Rule 2 is {[risk][network]["trusted"][-30]} in contextDoc order.
	if st.RuleHits[2] != 1 {
		t.Fatalf("trusted-network risk rule hit count = %v", st.RuleHits)
	}
}

func TestSetRulesSwapsContextProgram(t *testing.T) {
	e := mustEngine(t, `{[deny][library]["com/flurry"]}`)
	if e.ContextActive() {
		t.Fatal("context active without risk rules")
	}
	gen := e.Generation()
	rules, err := ParsePolicyString(contextDoc)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetRules(rules); err != nil {
		t.Fatal(err)
	}
	if !e.ContextActive() {
		t.Fatal("context inactive after SetRules with risk rules")
	}
	if e.Generation() == gen {
		t.Fatal("SetRules did not bump the generation")
	}
}
