package policy

import (
	"fmt"
	"testing"

	"borderpatrol/internal/dex"
)

// Ablation: rule-count scaling. The validation experiment runs 1,050 deny
// rules per packet; this bench quantifies how evaluation cost grows with
// the rule set (linear scan, first decisive rule wins).
func benchmarkEngineRules(b *testing.B, nRules int) {
	b.Helper()
	rules := make([]Rule, 0, nRules)
	for i := 0; i < nRules; i++ {
		rules = append(rules, Rule{
			Action: Deny,
			Level:  LevelLibrary,
			Target: fmt.Sprintf("com/blocked/lib%04d", i),
		})
	}
	eng, err := NewEngine(rules, VerdictAllow)
	if err != nil {
		b.Fatal(err)
	}
	// A stack that matches no rule: worst case, full scan.
	stack := []dex.Signature{
		{Package: "com/benign/app", Class: "Main", Name: "sync", Proto: "()V"},
		{Package: "org/apache/http/client", Class: "HttpClient", Name: "execute", Proto: "()V"},
	}
	var h dex.TruncatedHash
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := eng.Evaluate(h, stack); d.Verdict != VerdictAllow {
			b.Fatal("unexpected drop")
		}
	}
}

func BenchmarkEngine10Rules(b *testing.B)   { benchmarkEngineRules(b, 10) }
func BenchmarkEngine100Rules(b *testing.B)  { benchmarkEngineRules(b, 100) }
func BenchmarkEngine1050Rules(b *testing.B) { benchmarkEngineRules(b, 1050) }

// BenchmarkEngine1050RulesParallel runs the §VI-B1 validation-scale rule
// set from all cores at once: with atomic counters and the lock-free
// compiled rule set, throughput must scale with GOMAXPROCS instead of
// serializing on a stats mutex.
func BenchmarkEngine1050RulesParallel(b *testing.B) {
	rules := make([]Rule, 0, 1050)
	for i := 0; i < 1050; i++ {
		rules = append(rules, Rule{
			Action: Deny,
			Level:  LevelLibrary,
			Target: fmt.Sprintf("com/blocked/lib%04d", i),
		})
	}
	eng, err := NewEngine(rules, VerdictAllow)
	if err != nil {
		b.Fatal(err)
	}
	stack := []dex.Signature{
		{Package: "com/benign/app", Class: "Main", Name: "sync", Proto: "()V"},
		{Package: "org/apache/http/client", Class: "HttpClient", Name: "execute", Proto: "()V"},
	}
	var h dex.TruncatedHash
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if d := eng.Evaluate(h, stack); d.Verdict != VerdictAllow {
				// b.Fatal must not run off the benchmark goroutine.
				b.Error("unexpected drop")
				return
			}
		}
	})
}

// BenchmarkCompile1050Rules measures the reconfiguration cost the compiler
// moved out of the packet path: building the indexes for the validation
// rule set.
func BenchmarkCompile1050Rules(b *testing.B) {
	rules := make([]Rule, 0, 1050)
	for i := 0; i < 1050; i++ {
		rules = append(rules, Rule{
			Action: Deny,
			Level:  LevelLibrary,
			Target: fmt.Sprintf("com/blocked/lib%04d", i),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compileRules(rules); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineFirstRuleHit is the best case: the first rule decides.
func BenchmarkEngineFirstRuleHit(b *testing.B) {
	rules := make([]Rule, 1050)
	for i := range rules {
		rules[i] = Rule{Action: Deny, Level: LevelLibrary, Target: fmt.Sprintf("com/blocked/lib%04d", i)}
	}
	eng, err := NewEngine(rules, VerdictAllow)
	if err != nil {
		b.Fatal(err)
	}
	stack := []dex.Signature{{Package: "com/blocked/lib0000/sdk", Class: "A", Name: "m", Proto: "()V"}}
	var h dex.TruncatedHash
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := eng.Evaluate(h, stack); d.Verdict != VerdictDrop {
			b.Fatal("expected drop")
		}
	}
}

// BenchmarkParseRule measures policy-document parsing (reconfiguration
// cost when administrators push rule updates).
func BenchmarkParseRule(b *testing.B) {
	const raw = `{[deny][method]["Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"]}`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRule(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: enforcement level vs matching cost. Finer levels do more
// string work per frame.
func benchmarkMatchLevel(b *testing.B, level Level, target string) {
	b.Helper()
	r := Rule{Action: Deny, Level: level, Target: target}
	sig := dex.Signature{Package: "com/flurry/sdk", Class: "Analytics", Name: "report", Proto: "(I)V"}
	var h dex.TruncatedHash
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.MatchLevel(h, sig)
	}
}

func BenchmarkMatchLevelLibrary(b *testing.B) {
	benchmarkMatchLevel(b, LevelLibrary, "com/flurry")
}
func BenchmarkMatchLevelClass(b *testing.B) {
	benchmarkMatchLevel(b, LevelClass, "com/flurry/sdk/Analytics")
}
func BenchmarkMatchLevelMethod(b *testing.B) {
	benchmarkMatchLevel(b, LevelMethod, "Lcom/flurry/sdk/Analytics;->report(I)V")
}
