package policy

import (
	"bufio"
	"fmt"
	"strings"
)

// This file layers device-group sharding on top of the base grammar
// without changing it. A grouped policy document interleaves rules with
// group directives:
//
//	{[deny][library]["com/malware"]}        // global: applies to every group
//	//@group engineering
//	{[deny][library]["com/tracker/eng"]}    // engineering shard only
//	//@group sales
//	{[deny][library]["com/tracker/sales"]}  // sales shard only
//
// Rules before the first //@group directive are global and are included
// in every shard. A //@group NAME directive opens (or re-opens) the named
// group's section; the same name may appear multiple times and the
// sections merge in document order.
//
// Because // starts a comment in the base grammar, a grouped document is
// also a valid flat document: ParsePolicy sees every rule and ignores the
// directives, so a single gateway deployment can consume a fleet policy
// unchanged (the N=1 case enforces the union). The //@ prefix is reserved
// as the directive namespace: ParseGroupSet rejects unknown //@ words so a
// typo'd directive fails loudly instead of silently widening a shard.
//
// Directives must sit on their own line, outside any rule body. A
// //@group comment trailing a rule on the same line is an ordinary
// comment to both parsers.

// GroupSet is a grouped policy document split into its global section and
// named per-group sections. It is the shared splitter fleet gateways use:
// each gateway renders only its groups' shard (DocFor) and compiles that.
type GroupSet struct {
	// Global holds the rules that precede any //@group directive. They
	// are part of every shard.
	Global []Rule
	// Groups holds each named section in first-appearance order.
	Groups []Group
}

// Group is one named section of a grouped policy document.
type Group struct {
	Name  string
	Rules []Rule
}

// groupDirective is the directive that opens a named section.
const groupDirective = "group"

// ParseGroupSet parses a grouped policy document. A flat document (no
// directives) parses to a GroupSet with only Global rules.
func ParseGroupSet(doc string) (*GroupSet, error) {
	gs := &GroupSet{}
	byName := map[string]int{} // name → index into gs.Groups
	cur := -1                  // -1 = global section

	var pending strings.Builder
	depth := 0
	inQuote := false
	startLine := 0
	lineNo := 0
	sc := bufio.NewScanner(strings.NewReader(doc))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		// Directive lines are only recognized between rules: at depth 0,
		// outside quotes (pending is necessarily empty there).
		if trimmed := strings.TrimSpace(line); depth == 0 && !inQuote && strings.HasPrefix(trimmed, "//@") {
			word, rest, _ := strings.Cut(strings.TrimPrefix(trimmed, "//@"), " ")
			if word != groupDirective {
				return nil, fmt.Errorf("%w: line %d: unknown directive //@%s", ErrBadRule, lineNo, word)
			}
			name := strings.TrimSpace(rest)
			if name == "" || strings.ContainsAny(name, " \t") {
				return nil, fmt.Errorf("%w: line %d: //@group wants exactly one group name", ErrBadRule, lineNo)
			}
			idx, ok := byName[name]
			if !ok {
				idx = len(gs.Groups)
				byName[name] = idx
				gs.Groups = append(gs.Groups, Group{Name: name})
			}
			cur = idx
			continue
		}
		// From here this mirrors ParsePolicy's scan: track quote state and
		// brace depth, cut // comments at depth 0, accumulate until the
		// braces of a rule balance.
		cut := len(line)
		escaped := false
	scan:
		for i := 0; i < len(line); i++ {
			if escaped {
				escaped = false
				continue
			}
			switch line[i] {
			case '\\':
				escaped = inQuote
			case '"':
				inQuote = !inQuote
			case '/':
				if !inQuote && depth == 0 && i+1 < len(line) && line[i+1] == '/' {
					cut = i
					break scan
				}
			case '{':
				if !inQuote {
					depth++
				}
			case '}':
				if !inQuote {
					depth--
					if depth < 0 {
						return nil, fmt.Errorf("%w: line %d: unbalanced '}'", ErrBadRule, lineNo)
					}
				}
			}
		}
		frag := strings.TrimSpace(line[:cut])
		if frag == "" {
			continue
		}
		if pending.Len() == 0 {
			startLine = lineNo
		}
		pending.WriteString(frag)
		if depth == 0 && !inQuote {
			rule, err := ParseRule(pending.String())
			if err != nil {
				return nil, fmt.Errorf("%s: %w", lineRef(startLine, lineNo), err)
			}
			if cur < 0 {
				gs.Global = append(gs.Global, rule)
			} else {
				gs.Groups[cur].Rules = append(gs.Groups[cur].Rules, rule)
			}
			pending.Reset()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("policy: read: %w", err)
	}
	if pending.Len() > 0 {
		if inQuote {
			return nil, fmt.Errorf("%w: %s: unterminated quote at EOF", ErrBadRule, lineRef(startLine, lineNo))
		}
		return nil, fmt.Errorf("%w: %s: unterminated rule at EOF", ErrBadRule, lineRef(startLine, lineNo))
	}
	return gs, nil
}

// Names lists the group names in first-appearance order.
func (g *GroupSet) Names() []string {
	names := make([]string, len(g.Groups))
	for i, grp := range g.Groups {
		names[i] = grp.Name
	}
	return names
}

// group returns the named section, or nil when the document has none. A
// gateway scoped to a group the document does not (yet) mention simply
// gets the global rules.
func (g *GroupSet) group(name string) *Group {
	for i := range g.Groups {
		if g.Groups[i].Name == name {
			return &g.Groups[i]
		}
	}
	return nil
}

// RulesFor returns the shard for the given groups: the global rules
// followed by each named group's rules, in the order requested. Duplicate
// and unknown group names are skipped.
func (g *GroupSet) RulesFor(groups ...string) []Rule {
	rules := make([]Rule, 0, len(g.Global))
	rules = append(rules, g.Global...)
	seen := map[string]bool{}
	for _, name := range groups {
		if seen[name] {
			continue
		}
		seen[name] = true
		if grp := g.group(name); grp != nil {
			rules = append(rules, grp.Rules...)
		}
	}
	return rules
}

// DocFor renders the shard for the given groups as a policy document:
// the global rules, then a //@group directive and rules per named group.
// The render is deterministic for a given document and group list, so a
// content hash of the result only changes when this shard changes — the
// property sharded sources use to skip recompiles for other groups'
// edits.
func (g *GroupSet) DocFor(groups ...string) string {
	var b strings.Builder
	b.WriteString(FormatPolicy(g.Global))
	seen := map[string]bool{}
	for _, name := range groups {
		if seen[name] {
			continue
		}
		seen[name] = true
		grp := g.group(name)
		if grp == nil {
			continue
		}
		fmt.Fprintf(&b, "//@%s %s\n", groupDirective, grp.Name)
		b.WriteString(FormatPolicy(grp.Rules))
	}
	return b.String()
}

// Format renders the whole grouped document (every group) back into a
// parseable form. ParseGroupSet(Format()) reproduces the same GroupSet.
func (g *GroupSet) Format() string {
	return g.DocFor(g.Names()...)
}
