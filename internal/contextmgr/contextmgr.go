// Package contextmgr implements BorderPatrol's Context Manager (paper
// §IV-A2, §V-B): the Xposed-style module that runs on the provisioned
// device. When an app loads, it parses the app's dex files to build the
// deterministic signature→index mapping and the line-number table. When any
// socket connects, its post-hook gathers the Java stack trace, resolves
// each frame to a method signature, encodes the signature indexes plus the
// truncated apk hash into the compact tag, and injects the tag into the
// socket's IP_OPTIONS through the JNI setsockopt shim.
package contextmgr

import (
	"errors"
	"fmt"
	"sync"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/android"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/netstack"
	"borderpatrol/internal/tag"
)

// JNIShim is the native shared library exposing setsockopt to managed code
// (paper §V-B "Shared library"): standard Java APIs refuse to set
// IP_OPTIONS, so the Context Manager calls through JNI into this wrapper.
type JNIShim struct {
	kern *kernel.Kernel
	// caps are the capabilities of the calling (user-space, unprivileged)
	// process: none. Only the kernel patch makes the call succeed.
	caps kernel.Capability
}

// NewJNIShim builds the shim against a device kernel.
func NewJNIShim(k *kernel.Kernel) *JNIShim {
	return &JNIShim{kern: k}
}

// SetIPOptions forwards to the setsockopt system call.
func (j *JNIShim) SetIPOptions(fd int, opts []ipv4.Option) error {
	return j.kern.SetIPOptions(fd, j.caps, opts)
}

// appState is the per-app state the Context Manager builds at load time.
type appState struct {
	hash     dex.TruncatedHash
	lineTab  *dex.LineTable
	sigIndex map[string]uint32
	// overloadIndex maps a merged signature's package/class/name key to
	// the lowest index among its overloads, precomputed at load time so
	// the per-socket hot path is a single map probe instead of a full
	// sigIndex scan with a ParseSignature per key.
	overloadIndex map[string]uint32
	stripped      bool
}

// overloadKey is the merged-signature lookup key: overloads share
// package, class and method name and differ only in the prototype.
func overloadKey(pkg, class, name string) string {
	return pkg + ";" + class + ";" + name
}

// Stats counts Context Manager activity for the performance evaluation.
type Stats struct {
	// SocketsTagged counts sockets that received a tag.
	SocketsTagged uint64
	// TagFailures counts setsockopt errors (e.g. unpatched kernel).
	TagFailures uint64
	// FramesResolved counts stack frames mapped to signatures.
	FramesResolved uint64
	// FramesDropped counts framework frames not present in app dex files.
	FramesDropped uint64
	// StacksTruncated counts stacks that exceeded the IP_OPTIONS budget.
	StacksTruncated uint64
}

// Manager is the Context Manager module.
type Manager struct {
	shim *JNIShim

	mu    sync.Mutex
	apps  map[int]*appState // by uid
	stats Stats
	// lastErr remembers the most recent tagging failure for diagnostics.
	lastErr error
}

var _ android.Module = (*Manager)(nil)

// New builds a Context Manager for a device and registers its socket
// post-hook on the device's network stack. The module still needs to be
// loaded with device.LoadModule so it can observe app loads.
func New(device *android.Device) *Manager {
	m := &Manager{
		shim: NewJNIShim(device.Kernel()),
		apps: make(map[int]*appState),
	}
	device.Stack().RegisterConnectHook(func(sock *netstack.JavaSocket) {
		m.onSocketConnected(device, sock)
	})
	return m
}

// Name implements android.Module.
func (m *Manager) Name() string { return "borderpatrol-context-manager" }

// HandleLoadPackage implements android.Module: parse the apk, build the
// signature index and line table (paper: "When an app is loaded, the
// Context Manager parses the dex file using dexlib2").
func (m *Manager) HandleLoadPackage(app *android.App) error {
	entry, err := analyzer.AnalyzeAPK(app.APK)
	if err != nil {
		return fmt.Errorf("contextmgr: analyze %s: %w", app.APK.PackageName, err)
	}
	st := &appState{
		hash:          app.APK.Truncated(),
		lineTab:       dex.NewLineTable(app.APK),
		sigIndex:      make(map[string]uint32, len(entry.Signatures)),
		overloadIndex: make(map[string]uint32, len(entry.Signatures)),
		stripped:      entry.DebugStripped,
	}
	for i, raw := range entry.Signatures {
		idx := uint32(i)
		st.sigIndex[raw] = idx
		sig, err := dex.ParseSignature(raw)
		if err != nil {
			continue
		}
		key := overloadKey(sig.Package, sig.Class, sig.Name)
		if prev, ok := st.overloadIndex[key]; !ok || idx < prev {
			st.overloadIndex[key] = idx
		}
	}
	m.mu.Lock()
	m.apps[app.UID] = st
	m.mu.Unlock()
	return nil
}

// ErrUntracked reports a socket owned by an app the manager has not loaded.
var ErrUntracked = errors.New("contextmgr: socket owner not tracked")

// onSocketConnected is the Xposed post-hook body (paper Fig. 2): gather the
// stack trace, resolve frames, encode, inject.
func (m *Manager) onSocketConnected(device *android.Device, sock *netstack.JavaSocket) {
	m.mu.Lock()
	st, tracked := m.apps[sock.OwnerUID]
	m.mu.Unlock()
	if !tracked {
		// Personal-profile or unknown app: the Context Manager does not
		// interact with it (work/personal separation, §VII).
		return
	}
	app, ok := device.AppByUID(sock.OwnerUID)
	if !ok {
		m.recordErr(fmt.Errorf("%w: uid %d", ErrUntracked, sock.OwnerUID))
		return
	}

	// Step 1-2: getStackTrace and per-frame signature resolution.
	frames := app.Thread().GetStackTrace()
	indexes := make([]uint32, 0, len(frames))
	resolved := make([]dex.Signature, 0, len(frames))
	var dropped, kept uint64
	for _, f := range frames {
		sig, ok := st.lineTab.Resolve(f)
		if !ok {
			dropped++
			continue
		}
		idx, found := st.sigIndex[sig.String()]
		if !found && sig.Merged() {
			// Merged signatures are not in the index; use the first
			// overload's slot so the enforcer can still identify the
			// method name deterministically.
			idx, found = st.overloadIndex[overloadKey(sig.Package, sig.Class, sig.Name)]
		}
		if !found {
			dropped++
			continue
		}
		indexes = append(indexes, idx)
		resolved = append(resolved, sig)
		kept++
	}

	// Step 3: encode into the compact representation.
	t := tag.Tag{
		AppHash:       st.hash,
		Indexes:       indexes,
		DebugStripped: st.stripped,
	}
	payload, err := t.Encode()
	if err != nil {
		m.recordErr(fmt.Errorf("contextmgr: encode: %w", err))
		return
	}

	// Step 4: inject via the JNI shim (setsockopt IP_OPTIONS).
	err = m.shim.SetIPOptions(sock.FD(), []ipv4.Option{{Type: ipv4.OptSecurity, Data: payload}})

	// Expose the captured context for tests/extractor. Published through
	// the socket's own synchronized accessor — the manager's mutex below
	// guards only the manager's stats, and readers of the socket never
	// take it.
	if err == nil {
		sock.SetContext(resolved)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.FramesResolved += kept
	m.stats.FramesDropped += dropped
	// The encoder is the single source of truth for truncation: its flag
	// byte reflects the budget it actually applied — 14 narrow frames but
	// only 9 wide ones. Comparing len(indexes) against MaxNarrowFrames
	// here undercounts wide-index stacks of 10..14 frames, which the
	// encoder truncated at 9 without exceeding the narrow threshold.
	if len(payload) > 0 && payload[0]&tag.FlagTruncated != 0 {
		m.stats.StacksTruncated++
	}
	if err != nil {
		m.stats.TagFailures++
		m.lastErr = err
		return
	}
	m.stats.SocketsTagged++
}

func (m *Manager) recordErr(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.TagFailures++
	m.lastErr = err
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// LastError returns the most recent tagging failure, if any.
func (m *Manager) LastError() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// TrackedApps returns the number of apps the manager has state for.
func (m *Manager) TrackedApps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.apps)
}
