package contextmgr

import (
	"net/netip"
	"testing"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/android"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/tag"
)

func testAPK() *dex.APK {
	return &dex.APK{
		PackageName: "com.corp.files",
		Label:       "CorpFiles",
		Category:    "BUSINESS",
		VersionCode: 1,
		Dexes: []*dex.File{{
			Classes: []dex.ClassDef{
				{
					Package: "com/corp/files",
					Name:    "SyncEngine",
					Methods: []dex.MethodDef{
						{Name: "download", Proto: "(Ljava/lang/String;)V", File: "SyncEngine.java", StartLine: 10, EndLine: 40},
						{Name: "upload", Proto: "(Ljava/lang/String;)V", File: "SyncEngine.java", StartLine: 50, EndLine: 90},
						{Name: "upload", Proto: "([B)V", File: "SyncEngine.java", StartLine: 100, EndLine: 140},
					},
				},
				{
					Package: "com/flurry/sdk",
					Name:    "Agent",
					Methods: []dex.MethodDef{
						{Name: "beacon", Proto: "()V", File: "Agent.java", StartLine: 5, EndLine: 25},
					},
				},
			},
		}},
	}
}

func endpoint() netip.AddrPort {
	return netip.AddrPortFrom(netip.MustParseAddr("93.184.216.34"), 443)
}

func funcs() []android.Functionality {
	return []android.Functionality{
		{
			Name:      "download",
			Desirable: true,
			CallPath:  []dex.Frame{{Class: "com/corp/files/SyncEngine", Method: "download", File: "SyncEngine.java", Line: 15}},
			Op:        android.NetOp{Endpoint: endpoint(), Method: "GET"},
		},
		{
			Name:     "upload",
			CallPath: []dex.Frame{{Class: "com/corp/files/SyncEngine", Method: "upload", File: "SyncEngine.java", Line: 60}},
			Op:       android.NetOp{Endpoint: endpoint(), Method: "PUT", PayloadBytes: 1024},
		},
		{
			Name:     "analytics",
			CallPath: []dex.Frame{{Class: "com/flurry/sdk/Agent", Method: "beacon", File: "Agent.java", Line: 10}},
			Op:       android.NetOp{Endpoint: endpoint(), Method: "POST", PayloadBytes: 128},
		},
	}
}

func provision(t *testing.T, kcfg kernel.Config) (*android.Device, *Manager, *android.App) {
	t.Helper()
	d := android.NewDevice(android.Config{
		Addr:            netip.MustParseAddr("10.0.0.5"),
		Kernel:          kcfg,
		XposedInstalled: true,
	})
	m := New(d)
	if err := d.LoadModule(m); err != nil {
		t.Fatal(err)
	}
	app, err := d.InstallApp(testAPK(), funcs(), android.ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	return d, m, app
}

func patched() kernel.Config {
	return kernel.Config{AllowUnprivilegedIPOptions: true}
}

func TestTagInjectedAndDecodable(t *testing.T) {
	_, m, app := provision(t, patched())
	res, err := app.Invoke("upload")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tagged {
		t.Fatal("packet not tagged")
	}
	opt, ok := res.Packets[0].Header.FindOption(ipv4.OptSecurity)
	if !ok {
		t.Fatal("security option missing")
	}
	decoded, err := tag.Decode(opt.Data)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.AppHash != app.APK.Truncated() {
		t.Fatal("app hash wrong in tag")
	}
	if len(decoded.Indexes) == 0 {
		t.Fatal("no frames in tag")
	}

	// Decode indexes against an analyzer database built from the same apk:
	// the round trip must recover the upload method's signature.
	db := analyzer.NewDatabase()
	if err := db.Add(app.APK); err != nil {
		t.Fatal(err)
	}
	sigs, err := db.DecodeStack(decoded.AppHash, decoded.Indexes)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sigs {
		if s.Name == "upload" && s.Proto == "(Ljava/lang/String;)V" {
			found = true
		}
	}
	if !found {
		t.Fatalf("upload signature not recovered: %v", sigs)
	}
	if st := m.Stats(); st.SocketsTagged != 1 || st.TagFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDistinctFunctionalitiesDistinctTags(t *testing.T) {
	_, _, app := provision(t, patched())
	r1, err := app.Invoke("download")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := app.Invoke("analytics")
	if err != nil {
		t.Fatal(err)
	}
	o1, _ := r1.Packets[0].Header.FindOption(ipv4.OptSecurity)
	o2, _ := r2.Packets[0].Header.FindOption(ipv4.OptSecurity)
	if string(o1.Data) == string(o2.Data) {
		t.Fatal("different functionalities produced identical tags")
	}
	// Same functionality twice produces the same tag (deterministic).
	r3, err := app.Invoke("download")
	if err != nil {
		t.Fatal(err)
	}
	o3, _ := r3.Packets[0].Header.FindOption(ipv4.OptSecurity)
	if string(o1.Data) != string(o3.Data) {
		t.Fatal("same functionality produced different tags")
	}
}

func TestFrameworkFramesExcluded(t *testing.T) {
	_, m, app := provision(t, patched())
	if _, err := app.Invoke("download"); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	// Base (4) + socket (2) framework frames must have been dropped.
	if st.FramesDropped < 6 {
		t.Fatalf("framework frames dropped = %d, want >= 6", st.FramesDropped)
	}
	if st.FramesResolved == 0 {
		t.Fatal("no app frames resolved")
	}
}

func TestUnpatchedKernelFailsGracefully(t *testing.T) {
	_, m, app := provision(t, kernel.Config{AllowUnprivilegedIPOptions: false})
	res, err := app.Invoke("download")
	if err != nil {
		t.Fatal(err) // the app itself still works
	}
	if res.Tagged {
		t.Fatal("tagging succeeded on unpatched kernel")
	}
	st := m.Stats()
	if st.TagFailures != 1 || st.SocketsTagged != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if m.LastError() == nil {
		t.Fatal("tag failure not recorded")
	}
}

func TestPersonalProfileUntouched(t *testing.T) {
	d, m, _ := provision(t, patched())
	personal := testAPK()
	personal.PackageName = "com.games.fun"
	personal.Invalidate()
	app, err := d.InstallApp(personal, funcs(), android.ProfilePersonal)
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Invoke("download")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tagged {
		t.Fatal("personal-profile app was tagged")
	}
	if m.TrackedApps() != 1 {
		t.Fatalf("tracked apps = %d, want 1 (work app only)", m.TrackedApps())
	}
}

func TestDebugStrippedOverApproximation(t *testing.T) {
	d := android.NewDevice(android.Config{
		Addr:            netip.MustParseAddr("10.0.0.5"),
		Kernel:          patched(),
		XposedInstalled: true,
	})
	m := New(d)
	if err := d.LoadModule(m); err != nil {
		t.Fatal(err)
	}
	apk := testAPK()
	apk.Dexes[0].DebugStripped = true
	apk.Invalidate()
	app, err := d.InstallApp(apk, funcs(), android.ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Invoke("upload")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tagged {
		t.Fatal("stripped app not tagged")
	}
	opt, _ := res.Packets[0].Header.FindOption(ipv4.OptSecurity)
	decoded, err := tag.Decode(opt.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.DebugStripped {
		t.Fatal("debug-stripped flag not set in tag")
	}
	// The merged overload resolves to the first overload's index; decoding
	// yields a signature with the right class and name (precision reduced
	// to method name, as the paper describes).
	db := analyzer.NewDatabase()
	if err := db.Add(apk); err != nil {
		t.Fatal(err)
	}
	sigs, err := db.DecodeStack(decoded.AppHash, decoded.Indexes)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sigs {
		if s.Class == "SyncEngine" && s.Name == "upload" {
			found = true
		}
	}
	if !found {
		t.Fatalf("merged upload frame not recovered: %v", sigs)
	}
}

func TestContextAttachedToSocket(t *testing.T) {
	_, _, app := provision(t, patched())
	var gotCtx any
	// The Context Manager stores resolved signatures on the socket; the
	// Policy Extractor reads them. We fetch via InvokeResult's socket Ctx
	// by re-invoking and inspecting through the stack hook order; simplest
	// is to check the manager tagged and the app emitted, then validate
	// Ctx contents via a fresh socket in netstack tests. Here: ensure at
	// least the invoke emitted a packet and Ctx was set by checking stats.
	res, err := app.Invoke("analytics")
	if err != nil {
		t.Fatal(err)
	}
	_ = gotCtx
	if len(res.Packets) != 3 || !res.Tagged {
		t.Fatalf("analytics invoke emitted %d packets (tagged=%v), want 3 tagged",
			len(res.Packets), res.Tagged)
	}
}

func TestSocketsTaggedOncePerConnection(t *testing.T) {
	_, m, app := provision(t, patched())
	// Keep-alive: 5 requests on one socket must tag exactly once.
	d2funcs := funcs()
	d2funcs[0].Op.Requests = 5
	// re-install under new name to get fresh behaviour
	apk := testAPK()
	apk.PackageName = "com.corp.files2"
	apk.Invalidate()
	dev := android.NewDevice(android.Config{
		Addr:            netip.MustParseAddr("10.0.0.6"),
		Kernel:          patched(),
		XposedInstalled: true,
	})
	m2 := New(dev)
	if err := dev.LoadModule(m2); err != nil {
		t.Fatal(err)
	}
	app2, err := dev.InstallApp(apk, d2funcs, android.ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	res, err := app2.Invoke("download")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packets) != 7 {
		t.Fatalf("got %d packets, want 7 (SYN + 5 requests + FIN)", len(res.Packets))
	}
	if st := m2.Stats(); st.SocketsTagged != 1 {
		t.Fatalf("tagged %d sockets for one keep-alive connection", st.SocketsTagged)
	}
	// Every packet of the connection — SYN and FIN included — carries the
	// identical tag (the §VI-D observation the flow cache builds on).
	first, _ := res.Packets[0].Header.FindOption(ipv4.OptSecurity)
	for i, pkt := range res.Packets {
		opt, ok := pkt.Header.FindOption(ipv4.OptSecurity)
		if !ok || string(opt.Data) != string(first.Data) {
			t.Fatalf("packet %d tag differs", i)
		}
	}
	_ = m
	_ = app
}
