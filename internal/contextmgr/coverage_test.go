package contextmgr

import (
	"net/netip"
	"testing"

	"borderpatrol/internal/android"
	"borderpatrol/internal/dex"
)

func TestModuleName(t *testing.T) {
	d := android.NewDevice(android.Config{
		Addr:            netip.MustParseAddr("10.0.0.5"),
		Kernel:          patched(),
		XposedInstalled: true,
	})
	m := New(d)
	if m.Name() != "borderpatrol-context-manager" {
		t.Fatalf("Name() = %q", m.Name())
	}
}

func TestHandleLoadPackageRejectsInvalidAPK(t *testing.T) {
	d := android.NewDevice(android.Config{
		Addr:            netip.MustParseAddr("10.0.0.5"),
		Kernel:          patched(),
		XposedInstalled: true,
	})
	m := New(d)
	bad := &android.App{APK: &dex.APK{PackageName: "com.bad"}} // no dex files
	if err := m.HandleLoadPackage(bad); err == nil {
		t.Fatal("invalid apk accepted by HandleLoadPackage")
	}
}

func TestUntrackedUIDHookIsNoop(t *testing.T) {
	// A socket owned by a uid the manager never loaded (e.g. a personal
	// app) must pass through the hook without tagging or errors.
	d := android.NewDevice(android.Config{
		Addr:            netip.MustParseAddr("10.0.0.5"),
		Kernel:          patched(),
		XposedInstalled: true,
	})
	m := New(d)
	if err := d.LoadModule(m); err != nil {
		t.Fatal(err)
	}
	sock := d.Stack().NewJavaSocket(99999) // uid with no app state
	if err := sock.Connect(netip.AddrPortFrom(netip.MustParseAddr("1.2.3.4"), 80)); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.SocketsTagged != 0 || st.TagFailures != 0 {
		t.Fatalf("untracked socket affected stats: %+v", st)
	}
	if m.LastError() != nil {
		t.Fatalf("untracked socket recorded error: %v", m.LastError())
	}
}

func TestUntrackedAppRecordsError(t *testing.T) {
	// The pathological case: the manager has state for a uid but the device
	// cannot resolve the app (state desync). recordErr must capture it.
	d := android.NewDevice(android.Config{
		Addr:            netip.MustParseAddr("10.0.0.5"),
		Kernel:          patched(),
		XposedInstalled: true,
	})
	m := New(d)
	if err := d.LoadModule(m); err != nil {
		t.Fatal(err)
	}
	app, err := d.InstallApp(testAPK(), funcs(), android.ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	// Forge manager state under a uid the device does not know.
	m.mu.Lock()
	m.apps[55555] = m.apps[app.UID]
	m.mu.Unlock()
	sock := d.Stack().NewJavaSocket(55555)
	if err := sock.Connect(netip.AddrPortFrom(netip.MustParseAddr("1.2.3.4"), 80)); err != nil {
		t.Fatal(err)
	}
	if m.LastError() == nil {
		t.Fatal("desynced uid not recorded as error")
	}
	if st := m.Stats(); st.TagFailures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeepStackTruncationFlag(t *testing.T) {
	// A call path deeper than the narrow-frame budget (14) sets the
	// truncated stat and still tags the innermost frames.
	apkDeep := &dex.APK{
		PackageName: "com.deep.app",
		VersionCode: 1,
		Dexes:       []*dex.File{{}},
	}
	methods := make([]dex.MethodDef, 20)
	frames := make([]dex.Frame, 20)
	for i := range methods {
		methods[i] = dex.MethodDef{
			Name: "level" + string(rune('a'+i)), Proto: "()V",
			File: "Deep.java", StartLine: i * 10, EndLine: i*10 + 5,
		}
		frames[i] = dex.Frame{
			Class: "com/deep/app/Chain", Method: methods[i].Name,
			File: "Deep.java", Line: i*10 + 2,
		}
	}
	apkDeep.Dexes[0].Classes = []dex.ClassDef{{
		Package: "com/deep/app", Name: "Chain", Methods: methods,
	}}

	d := android.NewDevice(android.Config{
		Addr:            netip.MustParseAddr("10.0.0.5"),
		Kernel:          patched(),
		XposedInstalled: true,
	})
	m := New(d)
	if err := d.LoadModule(m); err != nil {
		t.Fatal(err)
	}
	fns := []android.Functionality{{
		Name:     "deep-call",
		CallPath: frames,
		Op: android.NetOp{
			Endpoint: netip.AddrPortFrom(netip.MustParseAddr("1.2.3.4"), 443),
		},
	}}
	app, err := d.InstallApp(apkDeep, fns, android.ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Invoke("deep-call")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tagged {
		t.Fatal("deep stack not tagged")
	}
	if st := m.Stats(); st.StacksTruncated != 1 {
		t.Fatalf("truncation not counted: %+v", st)
	}
}
