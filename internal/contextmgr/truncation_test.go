package contextmgr

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"borderpatrol/internal/android"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/tag"
)

// deepAPK builds an apk with maxDepth distinct, non-overloaded methods in
// one class so tests can construct resolvable call stacks of any depth up
// to maxDepth.
func deepAPK(maxDepth int) *dex.APK {
	methods := make([]dex.MethodDef, maxDepth)
	for i := range methods {
		methods[i] = dex.MethodDef{
			Name:      fmt.Sprintf("step%02d", i),
			Proto:     "()V",
			File:      "Deep.java",
			StartLine: 10*i + 1,
			EndLine:   10*i + 9,
		}
	}
	return &dex.APK{
		PackageName: "com.corp.deep",
		Label:       "DeepStacks",
		Category:    "BUSINESS",
		VersionCode: 1,
		Dexes: []*dex.File{{
			Classes: []dex.ClassDef{{
				Package: "com/corp/deep",
				Name:    "Deep",
				Methods: methods,
			}},
		}},
	}
}

// deepFuncs defines one functionality per requested stack depth, named
// "depthNN", whose call path walks the first NN methods of deepAPK.
func deepFuncs(depths []int) []android.Functionality {
	fs := make([]android.Functionality, 0, len(depths))
	for _, depth := range depths {
		path := make([]dex.Frame, depth)
		for i := range path {
			path[i] = dex.Frame{
				Class:  "com/corp/deep/Deep",
				Method: fmt.Sprintf("step%02d", i),
				File:   "Deep.java",
				Line:   10*i + 5,
			}
		}
		fs = append(fs, android.Functionality{
			Name:     fmt.Sprintf("depth%02d", depth),
			CallPath: path,
			Op:       android.NetOp{Endpoint: endpoint(), Method: "GET"},
		})
	}
	return fs
}

func provisionDeep(t *testing.T, depths []int) (*android.Device, *Manager, *android.App) {
	t.Helper()
	d := android.NewDevice(android.Config{
		Addr:            netip.MustParseAddr("10.0.0.6"),
		Kernel:          patched(),
		XposedInstalled: true,
	})
	m := New(d)
	if err := d.LoadModule(m); err != nil {
		t.Fatal(err)
	}
	app, err := d.InstallApp(deepAPK(20), deepFuncs(depths), android.ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	return d, m, app
}

// invokeTag runs one functionality and returns the decoded tag of its
// first (SYN) packet.
func invokeTag(t *testing.T, app *android.App, name string) tag.Tag {
	t.Helper()
	res, err := app.Invoke(name)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tagged {
		t.Fatalf("%s: packet not tagged", name)
	}
	opt, ok := res.Packets[0].Header.FindOption(ipv4.OptSecurity)
	if !ok {
		t.Fatalf("%s: security option missing", name)
	}
	decoded, err := tag.Decode(opt.Data)
	if err != nil {
		t.Fatal(err)
	}
	return decoded
}

// widenIndexes shifts every signature index of the app past the 15-bit
// narrow limit, forcing the encoder onto 3-byte wide indexes — the layout
// a multi-dex app with a large method count produces (§VII).
func widenIndexes(m *Manager, uid int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.apps[uid]
	for k, v := range st.sigIndex {
		st.sigIndex[k] = v + 0x10000
	}
	for k, v := range st.overloadIndex {
		st.overloadIndex[k] = v + 0x10000
	}
}

// TestTruncationNarrowBoundary pins the 14-frame narrow budget: a 14-frame
// stack fits untruncated, a 15-frame stack loses exactly one frame, and the
// manager's StacksTruncated stat agrees with the encoded flag both times.
func TestTruncationNarrowBoundary(t *testing.T) {
	_, m, app := provisionDeep(t, []int{14, 15})

	fits := invokeTag(t, app, "depth14")
	if fits.Truncated {
		t.Fatal("14 narrow frames flagged truncated")
	}
	if len(fits.Indexes) != tag.MaxNarrowFrames {
		t.Fatalf("got %d indexes, want %d", len(fits.Indexes), tag.MaxNarrowFrames)
	}
	if got := m.Stats().StacksTruncated; got != 0 {
		t.Fatalf("StacksTruncated = %d after untruncated stack", got)
	}

	over := invokeTag(t, app, "depth15")
	if !over.Truncated {
		t.Fatal("15 narrow frames not flagged truncated")
	}
	if len(over.Indexes) != tag.MaxNarrowFrames {
		t.Fatalf("got %d indexes, want %d", len(over.Indexes), tag.MaxNarrowFrames)
	}
	if got := m.Stats().StacksTruncated; got != 1 {
		t.Fatalf("StacksTruncated = %d, want 1", got)
	}
}

// TestTruncationWideBoundary pins the 9-frame wide budget. The 10..14-frame
// wide stacks are the regression case: the encoder truncates them at 9, but
// deriving the stat from len(indexes) > MaxNarrowFrames missed them because
// they never exceeded the narrow threshold.
func TestTruncationWideBoundary(t *testing.T) {
	_, m, app := provisionDeep(t, []int{9, 10, 14})
	widenIndexes(m, app.UID)

	fits := invokeTag(t, app, "depth09")
	if fits.Truncated {
		t.Fatal("9 wide frames flagged truncated")
	}
	if len(fits.Indexes) != tag.MaxWideFrames {
		t.Fatalf("got %d indexes, want %d", len(fits.Indexes), tag.MaxWideFrames)
	}
	for _, idx := range fits.Indexes {
		if idx <= tag.MaxNarrowIndex {
			t.Fatalf("index %d round-tripped narrow, want wide", idx)
		}
	}
	if got := m.Stats().StacksTruncated; got != 0 {
		t.Fatalf("StacksTruncated = %d after untruncated wide stack", got)
	}

	for i, name := range []string{"depth10", "depth14"} {
		over := invokeTag(t, app, name)
		if !over.Truncated {
			t.Fatalf("%s: wide stack not flagged truncated", name)
		}
		if len(over.Indexes) != tag.MaxWideFrames {
			t.Fatalf("%s: got %d indexes, want %d", name, len(over.Indexes), tag.MaxWideFrames)
		}
		if got, want := m.Stats().StacksTruncated, uint64(i+1); got != want {
			t.Fatalf("%s: StacksTruncated = %d, want %d", name, got, want)
		}
	}
}

// TestTruncationMixedWidths checks that one wide index is enough to put the
// whole tag on the 9-frame wide budget: a 10-frame stack with a single
// out-of-narrow-range index truncates (and is counted), even though nine of
// its ten indexes would have fit narrow.
func TestTruncationMixedWidths(t *testing.T) {
	_, m, app := provisionDeep(t, []int{10})

	// Widen exactly one signature: the innermost frame's method, so the
	// kept (innermost-first) prefix is guaranteed to contain it.
	m.mu.Lock()
	st := m.apps[app.UID]
	for k, v := range st.sigIndex {
		if v == 9 { // step09, the deepest frame of depth10
			st.sigIndex[k] = v + 0x10000
		}
	}
	m.mu.Unlock()

	decoded := invokeTag(t, app, "depth10")
	if !decoded.Truncated {
		t.Fatal("mixed-width 10-frame stack not flagged truncated")
	}
	if len(decoded.Indexes) != tag.MaxWideFrames {
		t.Fatalf("got %d indexes, want %d", len(decoded.Indexes), tag.MaxWideFrames)
	}
	var sawWide bool
	for _, idx := range decoded.Indexes {
		if idx > tag.MaxNarrowIndex {
			sawWide = true
		}
	}
	if !sawWide {
		t.Fatal("widened index missing from kept frames")
	}
	if got := m.Stats().StacksTruncated; got != 1 {
		t.Fatalf("StacksTruncated = %d, want 1", got)
	}
}

// TestContextPublicationRace pins the SetContext publication: sockets
// connect (firing the manager's hook, which attaches the resolved stack)
// while other goroutines read Context concurrently. Run with -race.
func TestContextPublicationRace(t *testing.T) {
	d, _, app := provisionDeep(t, []int{5})

	const sockets = 32
	var wg sync.WaitGroup
	socks := make([]interface {
		Context() any
	}, 0, sockets)
	for i := 0; i < sockets; i++ {
		sock := d.Stack().NewJavaSocket(app.UID)
		socks = append(socks, sock)
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := sock.Connect(endpoint()); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			// Spin-read racing the connect hook's publication; the race
			// detector flags any unsynchronized write it overlaps.
			for j := 0; j < 10_000; j++ {
				if sock.Context() != nil {
					return
				}
			}
		}()
	}
	wg.Wait()

	for i, sock := range socks {
		ctx := sock.Context()
		if ctx == nil {
			t.Fatalf("socket %d: no context after connect", i)
		}
		if _, ok := ctx.([]dex.Signature); !ok {
			t.Fatalf("socket %d: context is %T, want []dex.Signature", i, ctx)
		}
	}
}
