package flowtable

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tickClock is a hand-cranked virtual clock for TTL tests.
type tickClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *tickClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *tickClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func key(i int) Key {
	return Key{
		Src:    netip.MustParseAddr("10.66.0.2"),
		Dst:    netip.AddrFrom4([4]byte{93, 184, byte(i >> 8), byte(i)}),
		Proto:  6,
		Digest: Digest([]byte(fmt.Sprintf("tag-%d", i))),
	}
}

func TestLookupInsertRoundTrip(t *testing.T) {
	tb := New[string](Config{Capacity: 128, Shards: 4})
	k := key(1)
	if _, ok := tb.Lookup(k, 1); ok {
		t.Fatal("empty table hit")
	}
	tb.Insert(k, 1, "allow")
	v, ok := tb.Lookup(k, 1)
	if !ok || v != "allow" {
		t.Fatalf("lookup = %q, %v", v, ok)
	}
	st := tb.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 || st.Live != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGenerationMismatchInvalidates(t *testing.T) {
	tb := New[string](Config{Capacity: 128})
	k := key(7)
	tb.Insert(k, 1, "allow")
	// A rule or database update bumped the generation: the entry must not
	// be served, and must be removed.
	if _, ok := tb.Lookup(k, 2); ok {
		t.Fatal("stale generation served")
	}
	if tb.Len() != 0 {
		t.Fatalf("stale entry retained, live=%d", tb.Len())
	}
	st := tb.Stats()
	if st.StaleDrops != 1 {
		t.Fatalf("stale drops = %d, want 1", st.StaleDrops)
	}
	// Re-inserting under the new generation works.
	tb.Insert(k, 2, "drop")
	if v, ok := tb.Lookup(k, 2); !ok || v != "drop" {
		t.Fatalf("re-inserted lookup = %q, %v", v, ok)
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := &tickClock{}
	tb := New[int](Config{Capacity: 128, TTL: 10 * time.Millisecond, Clock: clk})
	k := key(3)
	tb.Insert(k, 1, 42)
	clk.advance(5 * time.Millisecond)
	if _, ok := tb.Lookup(k, 1); !ok {
		t.Fatal("entry expired before TTL")
	}
	clk.advance(6 * time.Millisecond)
	if _, ok := tb.Lookup(k, 1); ok {
		t.Fatal("entry served past TTL")
	}
	if st := tb.Stats(); st.ExpiredDrops != 1 {
		t.Fatalf("expired drops = %d, want 1", st.ExpiredDrops)
	}
}

func TestTTLWithoutClockDisabled(t *testing.T) {
	tb := New[int](Config{Capacity: 8, TTL: time.Nanosecond})
	k := key(4)
	tb.Insert(k, 1, 1)
	if _, ok := tb.Lookup(k, 1); !ok {
		t.Fatal("TTL applied without a clock")
	}
}

func TestLRUEvictionUnderCapacity(t *testing.T) {
	// One shard, capacity 4: inserting a 5th flow evicts the LRU.
	tb := New[int](Config{Capacity: 4, Shards: 1})
	for i := 0; i < 4; i++ {
		tb.Insert(key(i), 1, i)
	}
	// Touch 0..2 so key(3) is least recently used.
	for i := 0; i < 3; i++ {
		if _, ok := tb.Lookup(key(i), 1); !ok {
			t.Fatalf("flow %d missing", i)
		}
	}
	tb.Insert(key(99), 1, 99)
	if tb.Len() != 4 {
		t.Fatalf("live = %d, want 4", tb.Len())
	}
	if _, ok := tb.Lookup(key(3), 1); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, i := range []int{0, 1, 2, 99} {
		if _, ok := tb.Lookup(key(i), 1); !ok {
			t.Fatalf("recently used flow %d evicted", i)
		}
	}
	if st := tb.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestEvictionPrefersExpired(t *testing.T) {
	clk := &tickClock{}
	tb := New[int](Config{Capacity: 4, Shards: 1, TTL: 10 * time.Millisecond, Clock: clk})
	tb.Insert(key(0), 1, 0) // will be expired
	clk.advance(11 * time.Millisecond)
	for i := 1; i < 4; i++ {
		tb.Insert(key(i), 1, i)
	}
	tb.Insert(key(5), 1, 5)
	// key(0) expired and must be the one reclaimed; the fresh flows stay.
	for i := 1; i < 4; i++ {
		if _, ok := tb.Lookup(key(i), 1); !ok {
			t.Fatalf("fresh flow %d reclaimed instead of the expired one", i)
		}
	}
	if st := tb.Stats(); st.Evictions != 0 || st.ExpiredDrops == 0 {
		t.Fatalf("stats = %+v, want expired reclaim and no LRU eviction", st)
	}
}

func TestDeleteAndPurge(t *testing.T) {
	tb := New[int](Config{Capacity: 128})
	tb.Insert(key(1), 1, 1)
	tb.Insert(key(2), 1, 2)
	if !tb.Delete(key(1)) {
		t.Fatal("delete missed")
	}
	if tb.Delete(key(1)) {
		t.Fatal("double delete reported present")
	}
	tb.Purge()
	if tb.Len() != 0 {
		t.Fatalf("live after purge = %d", tb.Len())
	}
}

func TestDigestDistinguishesTagBytes(t *testing.T) {
	a := Digest([]byte{1, 0, 2})
	b := Digest([]byte{1, 0, 3})
	c := Digest([]byte{0, 1, 2})
	if a == b || a == c || b == c {
		t.Fatalf("digest collisions: %x %x %x", a, b, c)
	}
	if Digest(nil) != Digest([]byte{}) {
		t.Fatal("nil and empty digests differ")
	}
}

// TestDigestCollisionCannotBorrowVerdict: two keys engineered to share
// Digest (and thus shard and map slot) must never serve each other's
// value — the pinned tag bytes disambiguate. A crafted FNV collision is
// exactly the tag-forgery attack the exact-match keying defends against.
func TestDigestCollisionCannotBorrowVerdict(t *testing.T) {
	base := key(1)
	var colliding Key
	colliding = base // same endpoints, same digest...
	colliding.Tag[0] = 0xff
	colliding.TagLen = 1 // ...different actual tag bytes

	tb := New[string](Config{Capacity: 128})
	tb.Insert(base, 1, "allow")
	if v, ok := tb.Lookup(colliding, 1); ok {
		t.Fatalf("colliding key served %q", v)
	}
	// The forged flow's own insert then serves only the forged flow.
	tb.Insert(colliding, 1, "drop")
	if v, ok := tb.Lookup(colliding, 1); !ok || v != "drop" {
		t.Fatalf("colliding key after insert = %q, %v", v, ok)
	}
}

// TestSetTag pins payloads up to MaxTagBytes and rejects oversized ones.
func TestSetTag(t *testing.T) {
	var k Key
	payload := make([]byte, MaxTagBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	if !k.SetTag(payload) {
		t.Fatal("max-size tag rejected")
	}
	if k.TagLen != MaxTagBytes || k.Digest != Digest(payload) {
		t.Fatalf("key = len %d digest %x", k.TagLen, k.Digest)
	}
	if k.SetTag(make([]byte, MaxTagBytes+1)) {
		t.Fatal("oversized tag accepted")
	}
	// Reuse with a shorter payload must zero the stale tail, so the
	// reused key equals a freshly built one for the same flow.
	if !k.SetTag(payload[:4]) {
		t.Fatal("short tag rejected")
	}
	var fresh Key
	fresh.SetTag(payload[:4])
	if k != fresh {
		t.Fatalf("reused key %v != fresh key %v", k, fresh)
	}
}

// TestConcurrentReadersAndInvalidation hammers one hot flow and a churn of
// cold flows from many goroutines while the generation keeps moving, under
// -race: the striped locks and atomic recency must neither race nor serve
// a value under the wrong generation.
func TestConcurrentReadersAndInvalidation(t *testing.T) {
	tb := New[uint64](Config{Capacity: 256, Shards: 8})
	hot := key(1000)

	var gen atomic.Uint64
	gen.Store(1)

	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				cur := gen.Load()
				if v, ok := tb.Lookup(hot, cur); ok && v != cur {
					t.Errorf("generation %d served value %d", cur, v)
					return
				} else if !ok {
					tb.Insert(hot, cur, cur)
				}
				cold := key(g*iters + i)
				tb.Insert(cold, cur, cur)
				tb.Lookup(cold, cur)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			gen.Add(1)
		}
	}()
	wg.Wait()
	<-done
	st := tb.Stats()
	if st.Hits == 0 || st.Inserts == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
	if st.Live > 256 {
		t.Fatalf("capacity exceeded: live=%d", st.Live)
	}
}
