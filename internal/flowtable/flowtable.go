// Package flowtable implements the gateway's per-flow verdict cache: a
// sharded, lock-striped table that remembers the enforcement outcome of a
// flow so that every subsequent packet of the same connection skips tag
// decoding, stack decoding, and policy evaluation entirely (the paper's
// §VI-D keep-alive argument — every packet of a connection carries the
// same contextual tag, so one evaluation answers for all of them).
//
// # Keying
//
// A flow is identified by Key: the full 5-tuple — IPv4 endpoints
// (src, dst), the transport ports the enforcer peeks out of the TCP/UDP
// header (zero for legacy plain payloads and non-first fragments), the
// protocol — and the raw tag bytes themselves — which begin with the
// app's truncated hash — pinned verbatim in the key, with a 64-bit digest
// of them for indexing.
// Internally each shard maps a 64-bit mix of the whole Key to its entry,
// and every probe verifies the full stored Key — including the exact tag
// bytes — so a digest or hash collision between different flows can only
// cause an extra miss or an overwrite (cache churn), never a wrong
// verdict. This is deliberate: tag bytes are attacker-influenced (the
// paper's tag-replay discussion, §VII), and a cache keyed on a
// non-cryptographic digest alone would let a crafted collision borrow a
// benign flow's cached verdict.
//
// # Invalidation
//
// Entries never serve stale policy: every entry records the generation
// number the caller observed when it evaluated the flow, and Lookup
// requires an exact generation match. The enforcer derives its generation
// from atomic counters bumped by policy.Engine.SetRules and
// analyzer.Database mutations, so a central reconfiguration or a newly
// provisioned app invalidates every cached verdict at the cost of one
// integer comparison per lookup — no callbacks, no sweeps, no locks.
// Stale entries are deleted on discovery and re-evaluated as misses.
//
// # Eviction
//
// The table is bounded: Capacity is split evenly across Shards, and an
// insert into a full shard reclaims expired entries first, then evicts
// the least recently used of a small sample (approximate LRU, so insert
// stays O(1) under sustained flow churn). When a Clock is configured,
// entries also carry a TTL in virtual time, so dead flows age out even
// without capacity pressure.
//
// All counters are atomic; Lookup takes only one shard RLock, so parallel
// readers on different flows share nothing but their shard stripe.
package flowtable

import (
	"encoding/binary"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies virtual time for TTL expiry and LRU recency.
// netsim.Clock satisfies it.
type Clock interface {
	Now() time.Duration
}

// MaxTagBytes is the largest tag payload a Key can pin: the 40-byte
// IP_OPTIONS budget minus the option's type and length octets. Tags that
// somehow exceed it are uncacheable (see SetTag).
const MaxTagBytes = 38

// Key identifies one flow at the enforcement point.
type Key struct {
	// Src and Dst are the packet's IPv4 endpoints.
	Src, Dst netip.Addr
	// SrcPort and DstPort are the transport ports peeked from the packet's
	// TCP/UDP header; zero when the payload carries no transport header
	// (legacy plain payloads, non-first fragments).
	SrcPort, DstPort uint16
	// Proto is the IPv4 protocol number.
	Proto byte
	// TagLen and Tag pin the exact raw tag bytes (app truncated hash,
	// index sequence, flags): entry verification
	// compares them verbatim, so no digest collision — accidental or
	// crafted — can ever serve another flow's verdict.
	TagLen uint8
	Tag    [MaxTagBytes]byte
	// Digest is a 64-bit digest of the raw tag bytes (see Digest); it
	// only steers shard selection and map indexing.
	Digest uint64
}

// SetTag pins the raw tag bytes and their digest into the key. It
// reports false when the payload exceeds MaxTagBytes (no legal IPv4
// option can carry that; such a packet must bypass the cache). The
// unused tail of Tag is zeroed, so a Key reused across packets compares
// equal to a freshly built key for the same flow.
func (k *Key) SetTag(b []byte) bool {
	if len(b) > MaxTagBytes {
		return false
	}
	k.TagLen = uint8(len(b))
	n := copy(k.Tag[:], b)
	clear(k.Tag[n:])
	k.Digest = Digest(b)
	return true
}

// fnvPrime64 and fnvOffset64 are the FNV-64 parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Digest computes a 64-bit digest of a raw tag payload, folding eight
// bytes per FNV round (tags are ≤38 bytes, so this is a handful of
// multiplies on the per-packet path). The tag bytes fully determine the
// decoded (app, index sequence, flags) triple, so hashing them keys the
// verdict without decoding anything.
func Digest(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for len(b) >= 8 {
		h ^= binary.LittleEndian.Uint64(b)
		h *= fnvPrime64
		b = b[8:]
	}
	if len(b) > 0 {
		var tail uint64
		for i := len(b) - 1; i >= 0; i-- {
			tail = tail<<8 | uint64(b[i])
		}
		// Fold the tail length in so "0x00" and "0x00 0x00" differ.
		h ^= tail | uint64(len(b))<<56
		h *= fnvPrime64
	}
	return h
}

// hash mixes the whole key into the 64-bit value that selects the shard
// and indexes the shard map. Digest carries most of the entropy; the
// endpoints and ports separate flows with identical tags.
func (k Key) hash() uint64 {
	h := k.Digest
	if k.Src.Is4() {
		a := k.Src.As4()
		h ^= uint64(binary.BigEndian.Uint32(a[:]))
	}
	if k.Dst.Is4() {
		a := k.Dst.As4()
		h ^= uint64(binary.BigEndian.Uint32(a[:])) << 32
	}
	h ^= uint64(k.SrcPort)<<16 | uint64(k.DstPort) | uint64(k.Proto)<<32
	// Final avalanche (splitmix64 tail) so low bits depend on all input.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return h
}

// Config sizes a table.
type Config struct {
	// Capacity bounds the live flows across all shards (default 65536).
	Capacity int
	// Shards is the number of lock stripes, rounded up to a power of two
	// (default 64).
	Shards int
	// TTL expires entries this much virtual time after insertion; zero (or
	// a nil Clock) disables expiry.
	TTL time.Duration
	// Clock supplies virtual time for TTL and recency; nil falls back to a
	// monotonic tick counter (recency only, no TTL).
	Clock Clock
	// MissRing sizes the per-shard negative cache guarding admission under
	// capacity pressure (0 disables it). A unique-flow flood — a SYN flood
	// of crafted tags is the worst case — otherwise turns every insert
	// into an eviction-sample-plus-insert on a full shard (~2.6 µs per
	// miss measured under 100% eviction pressure) and churns established
	// flows out of the cache. With the guard, an insert into a full shard
	// must present a key whose digest was recently rejected once: the
	// first attempt only notes the digest in a small ring and returns, so
	// one-packet flood flows never allocate an entry, never evict a live
	// flow, and pay a ring scan instead of the eviction path. Real flows
	// pay the full pipeline for one extra packet and are admitted on
	// their second miss. Shards below capacity admit immediately.
	MissRing int
}

// Stats snapshots the table's counters.
type Stats struct {
	// Hits are lookups served from cache.
	Hits uint64
	// Misses are lookups that found nothing usable (includes stale and
	// expired entries).
	Misses uint64
	// Inserts counts entries written.
	Inserts uint64
	// Evictions counts entries removed under capacity pressure.
	Evictions uint64
	// StaleDrops counts entries discarded because the generation moved
	// (policy or database update invalidated them).
	StaleDrops uint64
	// ExpiredDrops counts entries discarded past their TTL.
	ExpiredDrops uint64
	// AdmissionDrops counts inserts turned away by the negative-cache
	// admission guard (first-seen keys hitting a full shard — the
	// unique-flow-flood signature).
	AdmissionDrops uint64
	// Live is the number of entries currently in the table.
	Live int
}

// entry is one cached flow. lastUsed is atomic so hits under the shard
// RLock can refresh recency without upgrading to a write lock; h and dead
// are only touched under the shard's write lock (dead marks entries
// removed from the map so ring sampling skips them without a probe).
type entry[V any] struct {
	key      Key
	val      V
	h        uint64
	gen      uint64
	born     time.Duration
	dead     bool
	lastUsed atomic.Int64
}

type shard[V any] struct {
	mu sync.RWMutex
	// entries is keyed by the full 64-bit Key.hash(); entry.key resolves
	// collisions (verified on every probe).
	entries map[uint64]*entry[V]
	// ring holds the most recently inserted entries (bounded by the shard
	// capacity): the eviction candidate pool. Sampling it instead of
	// ranging over the map keeps insert-under-pressure O(1) regardless of
	// shard size, and holding entry pointers (not hashes) makes each
	// sample a pointer read instead of a map probe.
	ring    []*entry[V]
	ringPos int
	// rng is the shard's xorshift state for picking the sample window.
	rng uint64
	// missRing is the shard's negative cache: hashes of keys recently
	// refused admission under capacity pressure (0 = empty slot). A key
	// found here on its next insert attempt is admitted — the doorkeeper
	// pattern: one-packet flood flows never get past the ring.
	missRing []uint64
	missPos  int
	// pad keeps neighbouring shard locks off one cache line.
	_ [40]byte
}

// sawRecentMiss reports whether h was refused admission recently, and
// consumes the slot so each noted miss admits at most one insert. Caller
// holds the shard's write lock.
func (s *shard[V]) sawRecentMiss(h uint64) bool {
	for i, v := range s.missRing {
		if v == h {
			s.missRing[i] = 0
			return true
		}
	}
	return false
}

// noteMiss records a refused key's hash in the ring, overwriting the
// oldest slot. Caller holds the shard's write lock.
func (s *shard[V]) noteMiss(h uint64) {
	s.missRing[s.missPos] = h
	s.missPos++
	if s.missPos == len(s.missRing) {
		s.missPos = 0
	}
}

// evictSamples bounds the eviction scan: reclaim expired entries among a
// sample of live candidates, else evict the least recently used of the
// sample (approximate LRU).
const evictSamples = 8

// Table is a sharded per-flow cache of V (the enforcer caches its Result).
// The zero value is not usable; call New.
type Table[V any] struct {
	shards      []shard[V]
	mask        uint64
	ttl         time.Duration
	clock       Clock
	perShardCap int

	tick atomic.Int64 // recency source when clock is nil

	hits           atomic.Uint64
	misses         atomic.Uint64
	inserts        atomic.Uint64
	evictions      atomic.Uint64
	stale          atomic.Uint64
	expired        atomic.Uint64
	admissionDrops atomic.Uint64
}

// New builds a table.
func New[V any](cfg Config) *Table[V] {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 65536
	}
	n := cfg.Shards
	if n <= 0 {
		n = 64
	}
	// Round up to a power of two for mask indexing.
	p := 1
	for p < n {
		p <<= 1
	}
	per := capacity / p
	if per < 1 {
		per = 1
	}
	t := &Table[V]{
		shards:      make([]shard[V], p),
		mask:        uint64(p - 1),
		ttl:         cfg.TTL,
		clock:       cfg.Clock,
		perShardCap: per,
	}
	if t.clock == nil {
		t.ttl = 0 // TTL needs a time source
	}
	for i := range t.shards {
		t.shards[i].entries = make(map[uint64]*entry[V], per)
		t.shards[i].rng = uint64(i)*0x9e3779b97f4a7c15 + 1
		if cfg.MissRing > 0 {
			t.shards[i].missRing = make([]uint64, cfg.MissRing)
		}
	}
	return t
}

// now returns the insert-side recency/TTL timestamp: virtual time when a
// clock is configured, otherwise the next monotonic tick.
func (t *Table[V]) now() time.Duration {
	if t.clock != nil {
		return t.clock.Now()
	}
	return time.Duration(t.tick.Add(1))
}

// readNow is the lookup-side timestamp: it never advances the tick, so
// the hot hit path performs no shared read-modify-write (ticks move on
// inserts; +1 orders hits after the insert that produced the entry).
func (t *Table[V]) readNow() time.Duration {
	if t.clock != nil {
		return t.clock.Now()
	}
	return time.Duration(t.tick.Load() + 1)
}

// Lookup returns the cached value for k if it exists, carries the caller's
// current generation, and has not expired. A stale or expired entry is
// deleted and reported as a miss, so the caller re-evaluates and
// re-inserts under the current generation.
func (t *Table[V]) Lookup(k Key, gen uint64) (V, bool) {
	h := k.hash()
	s := &t.shards[h&t.mask]
	now := t.readNow()
	s.mu.RLock()
	e, ok := s.entries[h]
	if ok && e.key == k && e.gen == gen && (t.ttl <= 0 || now-e.born <= t.ttl) {
		// Refresh recency, but skip the store when the timestamp has not
		// moved: repeated hits on a hot flow then leave the entry's cache
		// line clean for the other cores.
		if e.lastUsed.Load() != int64(now) {
			e.lastUsed.Store(int64(now))
		}
		val := e.val
		s.mu.RUnlock()
		t.hits.Add(1)
		return val, true
	}
	s.mu.RUnlock()
	if ok && e.key == k {
		// Dead entry: remove it so the shard doesn't pin invalidated flows.
		s.mu.Lock()
		if cur, still := s.entries[h]; still && cur == e {
			delete(s.entries, h)
			e.dead = true
		}
		s.mu.Unlock()
		if e.gen != gen {
			t.stale.Add(1)
		} else {
			t.expired.Add(1)
		}
	}
	t.misses.Add(1)
	var zero V
	return zero, false
}

// Insert caches v for k under the given generation. When the stripe is
// full, expired entries are reclaimed first and otherwise the least
// recently used of a small sample is evicted.
func (t *Table[V]) Insert(k Key, gen uint64, v V) {
	h := k.hash()
	s := &t.shards[h&t.mask]
	now := t.now()
	s.mu.Lock()
	if old, exists := s.entries[h]; exists {
		// Same-hash overwrite (re-insert after invalidation, or a hash
		// collision): the old entry leaves the map, so mark it for the
		// ring sampler; the new entry takes a fresh ring slot.
		old.dead = true
	} else if len(s.entries) >= t.perShardCap {
		// Negative-cache admission guard: a full shard admits only keys
		// already turned away once. First-seen keys — the unique-flow
		// flood — cost a ring scan, not an eviction, and bail out before
		// the entry is even allocated, so the flood path is allocation
		// free.
		if len(s.missRing) > 0 && !s.sawRecentMiss(h) {
			s.noteMiss(h)
			s.mu.Unlock()
			t.admissionDrops.Add(1)
			return
		}
		t.evictLocked(s, now)
	}
	e := &entry[V]{key: k, val: v, h: h, gen: gen, born: now}
	e.lastUsed.Store(int64(now))
	if len(s.ring) < t.perShardCap {
		s.ring = append(s.ring, e)
	} else {
		s.ring[s.ringPos] = e
		s.ringPos++
		if s.ringPos == len(s.ring) {
			s.ringPos = 0
		}
	}
	s.entries[h] = e
	s.mu.Unlock()
	t.inserts.Add(1)
}

// evictLocked frees room in s: it walks the candidate ring from a random
// offset, reclaims every expired entry in the sample, and otherwise
// evicts the least recently used sampled entry. Dead ring slots (entries
// already removed) are skipped with a pointer read; if the whole ring is
// dead (pathological) an arbitrary map entry goes, so the shard never
// exceeds capacity. Caller holds s.mu.
func (t *Table[V]) evictLocked(s *shard[V], now time.Duration) {
	var (
		lru        *entry[V]
		lruUsed    int64
		freed      int
		candidates int
	)
	if n := len(s.ring); n > 0 {
		s.rng ^= s.rng << 13
		s.rng ^= s.rng >> 7
		s.rng ^= s.rng << 17
		start := int(s.rng % uint64(n))
		for i := 0; i < n && candidates < evictSamples; i++ {
			e := s.ring[(start+i)%n]
			if e == nil || e.dead {
				continue
			}
			candidates++
			if t.ttl > 0 && now-e.born > t.ttl {
				delete(s.entries, e.h)
				e.dead = true
				freed++
				continue
			}
			if u := e.lastUsed.Load(); lru == nil || u < lruUsed {
				lru, lruUsed = e, u
			}
		}
	}
	if freed > 0 {
		t.expired.Add(uint64(freed))
		return
	}
	if lru != nil {
		delete(s.entries, lru.h)
		lru.dead = true
		t.evictions.Add(1)
		return
	}
	for h, e := range s.entries {
		delete(s.entries, h)
		e.dead = true
		t.evictions.Add(1)
		break
	}
}

// Delete removes one flow (e.g. on connection teardown) and reports
// whether it was present.
func (t *Table[V]) Delete(k Key) bool {
	h := k.hash()
	s := &t.shards[h&t.mask]
	s.mu.Lock()
	e, ok := s.entries[h]
	if ok && e.key == k {
		delete(s.entries, h)
		e.dead = true
	} else {
		ok = false
	}
	s.mu.Unlock()
	return ok
}

// Sweep walks every shard and deletes entries past their TTL, returning
// how many it reclaimed. Expiry is otherwise lazy (discovered on lookup or
// under insert pressure), which lets a flow whose teardown packets were
// lost pin its entry indefinitely if no traffic ever probes it again; a
// periodic Sweep bounds that leak. A no-op without a TTL/Clock. Each shard
// is locked independently, so concurrent traffic stalls for at most one
// shard's walk.
func (t *Table[V]) Sweep() int {
	if t.ttl <= 0 {
		return 0
	}
	now := t.readNow()
	freed := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for h, e := range s.entries {
			if now-e.born > t.ttl {
				delete(s.entries, h)
				e.dead = true
				freed++
			}
		}
		s.mu.Unlock()
	}
	if freed > 0 {
		t.expired.Add(uint64(freed))
	}
	return freed
}

// Purge empties the table (entries are not counted as evictions).
func (t *Table[V]) Purge() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for h, e := range s.entries {
			delete(s.entries, h)
			e.dead = true
		}
		s.ring = s.ring[:0]
		s.ringPos = 0
		s.mu.Unlock()
	}
}

// Len returns the number of live entries.
func (t *Table[V]) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// Stats snapshots the counters.
func (t *Table[V]) Stats() Stats {
	return Stats{
		Hits:           t.hits.Load(),
		Misses:         t.misses.Load(),
		Inserts:        t.inserts.Load(),
		Evictions:      t.evictions.Load(),
		StaleDrops:     t.stale.Load(),
		ExpiredDrops:   t.expired.Load(),
		AdmissionDrops: t.admissionDrops.Load(),
		Live:           t.Len(),
	}
}
