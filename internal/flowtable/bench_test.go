package flowtable

import (
	"testing"
)

// BenchmarkFlowLookupHit measures the hit path: one shard probe plus an
// atomic recency refresh. This is the whole per-packet cost of a cached
// flow at the gateway.
func BenchmarkFlowLookupHit(b *testing.B) {
	tb := New[uint64](Config{Capacity: 65536})
	k := key(1)
	tb.Insert(k, 1, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tb.Lookup(k, 1); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkFlowLookupHitParallel drives the same hot flow from every core:
// readers share only the shard's RWMutex in read mode.
func BenchmarkFlowLookupHitParallel(b *testing.B) {
	tb := New[uint64](Config{Capacity: 65536})
	k := key(1)
	tb.Insert(k, 1, 42)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := tb.Lookup(k, 1); !ok {
				b.Error("miss")
				return
			}
		}
	})
}

// BenchmarkFlowInsert measures the miss path's cache-fill cost with LRU
// eviction pressure (table deliberately smaller than the flow population).
func BenchmarkFlowInsert(b *testing.B) {
	tb := New[uint64](Config{Capacity: 1024})
	keys := make([]Key, 4096)
	for i := range keys {
		keys[i] = key(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Insert(keys[i%len(keys)], 1, uint64(i))
	}
}

// BenchmarkFlowDigest measures keying a maximum-size tag payload.
func BenchmarkFlowDigest(b *testing.B) {
	buf := make([]byte, 38)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Digest(buf) == 0 {
			b.Fatal("zero digest")
		}
	}
}

// BenchmarkFlowMissFlood is the unique-flow-flood worst case WITHOUT the
// negative cache: every insert lands on a full shard and pays the
// eviction sample + entry allocation (the ~2.6 µs miss path flagged in
// PERFORMANCE.md PR 2, isolated here to the table's share of it).
func BenchmarkFlowMissFlood(b *testing.B) {
	tb := New[uint64](Config{Capacity: 1024})
	for i := 0; i < 1024; i++ {
		tb.Insert(key(i), 1, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := floodKey(uint64(1_000_000 + i)) // never repeats: pure flood
		if _, ok := tb.Lookup(k, 1); ok {
			b.Fatal("flood key hit")
		}
		tb.Insert(k, 1, uint64(i))
	}
}

// BenchmarkFlowMissFloodNegCache is the same flood with the admission
// guard on: the insert is a ring scan instead of an eviction, bounding
// the per-packet cost of a SYN flood of unique crafted flows.
func BenchmarkFlowMissFloodNegCache(b *testing.B) {
	tb := New[uint64](Config{Capacity: 1024, MissRing: 64})
	for i := 0; i < 1024; i++ {
		tb.Insert(key(i), 1, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := floodKey(uint64(1_000_000 + i))
		if _, ok := tb.Lookup(k, 1); ok {
			b.Fatal("flood key hit")
		}
		tb.Insert(k, 1, uint64(i))
	}
}
