package flowtable

import (
	"encoding/binary"
	"net/netip"
	"testing"
)

func floodKey(i uint64) Key {
	var tag [16]byte
	binary.LittleEndian.PutUint64(tag[:8], i)
	var k Key
	k.Src = netip.MustParseAddr("10.66.0.2")
	k.Dst = netip.MustParseAddr("203.0.113.9")
	k.SrcPort = uint16(40000 + i%20000)
	k.DstPort = 443
	k.Proto = 6
	k.SetTag(tag[:])
	return k
}

// TestAdmissionGuardBlocksUniqueFlowFlood: with the table full, a stream
// of never-repeated keys (the SYN-flood shape) must be turned away at the
// ring instead of evicting live flows.
func TestAdmissionGuardBlocksUniqueFlowFlood(t *testing.T) {
	tab := New[int](Config{Capacity: 64, Shards: 1, MissRing: 128})
	for i := uint64(0); i < 64; i++ {
		tab.Insert(floodKey(i), 1, int(i))
	}
	if live := tab.Len(); live != 64 {
		t.Fatalf("live = %d, want 64", live)
	}

	// Flood: 1000 unique keys against the full shard. Each is seen once,
	// so none may displace an established flow.
	for i := uint64(1000); i < 2000; i++ {
		tab.Insert(floodKey(i), 1, int(i))
	}
	st := tab.Stats()
	if st.AdmissionDrops != 1000 {
		t.Fatalf("admission drops = %d, want 1000", st.AdmissionDrops)
	}
	if st.Evictions != 0 {
		t.Fatalf("flood evicted %d live flows", st.Evictions)
	}
	// Every established flow still serves hits.
	for i := uint64(0); i < 64; i++ {
		if v, ok := tab.Lookup(floodKey(i), 1); !ok || v != int(i) {
			t.Fatalf("established flow %d lost under flood (ok=%v v=%d)", i, ok, v)
		}
	}
}

// TestAdmissionGuardAdmitsSecondMiss: a real flow that keeps sending is
// admitted on its second insert attempt (doorkeeper semantics), paying
// one extra full-pipeline packet, never more.
func TestAdmissionGuardAdmitsSecondMiss(t *testing.T) {
	tab := New[int](Config{Capacity: 8, Shards: 1, MissRing: 32})
	for i := uint64(0); i < 8; i++ {
		tab.Insert(floodKey(i), 1, int(i))
	}
	newcomer := floodKey(77)
	tab.Insert(newcomer, 1, 77) // first attempt: noted, rejected
	if _, ok := tab.Lookup(newcomer, 1); ok {
		t.Fatal("first-attempt insert was admitted")
	}
	tab.Insert(newcomer, 1, 77) // second attempt: admitted, evicting LRU
	if v, ok := tab.Lookup(newcomer, 1); !ok || v != 77 {
		t.Fatal("second-attempt insert not admitted")
	}
	st := tab.Stats()
	if st.AdmissionDrops != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 admission drop + 1 eviction", st)
	}
}

// TestAdmissionGuardIdleBelowCapacity: shards under capacity admit
// immediately — the guard only engages under pressure.
func TestAdmissionGuardIdleBelowCapacity(t *testing.T) {
	tab := New[int](Config{Capacity: 64, Shards: 1, MissRing: 32})
	for i := uint64(0); i < 32; i++ {
		tab.Insert(floodKey(i), 1, int(i))
		if _, ok := tab.Lookup(floodKey(i), 1); !ok {
			t.Fatalf("insert %d not admitted below capacity", i)
		}
	}
	if st := tab.Stats(); st.AdmissionDrops != 0 {
		t.Fatalf("admission drops below capacity: %+v", st)
	}
}

// TestAdmissionGuardDisabledByDefault: MissRing 0 keeps the PR 2 eviction
// behaviour byte for byte.
func TestAdmissionGuardDisabledByDefault(t *testing.T) {
	tab := New[int](Config{Capacity: 8, Shards: 1})
	for i := uint64(0); i < 16; i++ {
		tab.Insert(floodKey(i), 1, int(i))
	}
	st := tab.Stats()
	if st.AdmissionDrops != 0 {
		t.Fatalf("guard engaged while disabled: %+v", st)
	}
	if st.Evictions != 8 {
		t.Fatalf("evictions = %d, want 8", st.Evictions)
	}
}

// TestAdmissionGuardReinsertAfterInvalidation: a generation bump must not
// lock live flows out. Lookup deletes the stale entry (shard drops below
// capacity), so the re-insert is admitted immediately.
func TestAdmissionGuardReinsertAfterInvalidation(t *testing.T) {
	tab := New[int](Config{Capacity: 8, Shards: 1, MissRing: 32})
	for i := uint64(0); i < 8; i++ {
		tab.Insert(floodKey(i), 1, int(i))
	}
	// Generation moves (policy reload): the hot flow misses, is deleted,
	// and re-inserts under the new generation without tripping the guard.
	hot := floodKey(3)
	if _, ok := tab.Lookup(hot, 2); ok {
		t.Fatal("stale generation served")
	}
	tab.Insert(hot, 2, 3)
	if v, ok := tab.Lookup(hot, 2); !ok || v != 3 {
		t.Fatal("re-insert after invalidation rejected")
	}
	if st := tab.Stats(); st.AdmissionDrops != 0 {
		t.Fatalf("invalidation path tripped the guard: %+v", st)
	}
}
