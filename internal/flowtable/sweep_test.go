package flowtable

import (
	"testing"
	"time"
)

// TestSweepReclaimsExpired: the GC sweep removes only TTL-expired entries
// and counts them as expirations; fresh entries survive.
func TestSweepReclaimsExpired(t *testing.T) {
	clk := &tickClock{}
	tb := New[string](Config{Capacity: 128, Shards: 2, TTL: time.Minute, Clock: clk})
	for i := 0; i < 8; i++ {
		tb.Insert(key(i), 1, "allow")
	}
	clk.advance(2 * time.Minute)
	for i := 8; i < 12; i++ {
		tb.Insert(key(i), 1, "allow") // fresh at sweep time
	}

	if got := tb.Sweep(); got != 8 {
		t.Fatalf("sweep reclaimed %d, want 8", got)
	}
	st := tb.Stats()
	if st.Live != 4 {
		t.Fatalf("live = %d, want 4", st.Live)
	}
	if st.ExpiredDrops != 8 {
		t.Fatalf("expired drops = %d, want 8", st.ExpiredDrops)
	}
	for i := 8; i < 12; i++ {
		if _, ok := tb.Lookup(key(i), 1); !ok {
			t.Fatalf("fresh entry %d swept", i)
		}
	}
	// Second sweep finds nothing.
	if got := tb.Sweep(); got != 0 {
		t.Fatalf("second sweep reclaimed %d", got)
	}
}

// TestSweepNoTTLNoOp: without a TTL the sweep has nothing to expire.
func TestSweepNoTTLNoOp(t *testing.T) {
	tb := New[string](Config{Capacity: 128})
	tb.Insert(key(1), 1, "allow")
	if got := tb.Sweep(); got != 0 {
		t.Fatalf("TTL-less sweep reclaimed %d", got)
	}
	if st := tb.Stats(); st.Live != 1 {
		t.Fatalf("live = %d", st.Live)
	}
}
