package ipv4

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func fragSample(payloadLen int) *Packet {
	p := &Packet{
		Header: Header{
			ID:       777,
			TTL:      64,
			Protocol: ProtoTCP,
			Src:      netip.AddrFrom4([4]byte{10, 0, 0, 5}),
			Dst:      netip.AddrFrom4([4]byte{198, 18, 0, 1}),
		},
		Payload: make([]byte, payloadLen),
	}
	for i := range p.Payload {
		p.Payload[i] = byte(i)
	}
	return p
}

func TestFragmentSmallPacketPassthrough(t *testing.T) {
	p := fragSample(100)
	frags, err := Fragment(p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 {
		t.Fatalf("got %d fragments", len(frags))
	}
	if frags[0] == p {
		t.Fatal("passthrough must clone")
	}
}

func TestFragmentAndReassemble(t *testing.T) {
	p := fragSample(4000)
	frags, err := Fragment(p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("got %d fragments for 4000B at mtu 1500", len(frags))
	}
	// All but the last carry MF; every fragment fits the MTU.
	for i, f := range frags {
		wire, err := f.WireLen()
		if err != nil {
			t.Fatal(err)
		}
		if wire > 1500 {
			t.Fatalf("fragment %d is %d bytes", i, wire)
		}
		mf := f.Header.Flags&FlagMF != 0
		if i < len(frags)-1 && !mf {
			t.Fatalf("fragment %d missing MF", i)
		}
		if i == len(frags)-1 && mf {
			t.Fatal("last fragment has MF set")
		}
	}
	back, err := Reassemble(frags)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Payload, p.Payload) {
		t.Fatal("payload corrupted by fragmentation round trip")
	}
}

func TestCopiedOptionInEveryFragment(t *testing.T) {
	// The BorderPatrol tag (security option, copied flag set) must ride in
	// every fragment so each can be enforced independently.
	p := fragSample(4000)
	tagData := []byte{0x10, 1, 2, 3, 4, 5, 6, 7, 8, 0, 42}
	p.Header.SetOption(Option{Type: OptSecurity, Data: tagData})
	// A non-copied option (timestamp, type 68, copy bit clear) rides only
	// in the first fragment.
	p.Header.SetOption(Option{Type: OptTimestamp, Data: []byte{1, 2, 3, 4, 5, 6}})

	frags, err := Fragment(p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frags {
		opt, ok := f.Header.FindOption(OptSecurity)
		if !ok {
			t.Fatalf("fragment %d lost the security option", i)
		}
		if !bytes.Equal(opt.Data, tagData) {
			t.Fatalf("fragment %d tag corrupted", i)
		}
		_, hasTS := f.Header.FindOption(OptTimestamp)
		if i == 0 && !hasTS {
			t.Fatal("first fragment lost the timestamp option")
		}
		if i > 0 && hasTS {
			t.Fatalf("fragment %d carries non-copied option", i)
		}
	}
}

func TestFragmentDFRejected(t *testing.T) {
	p := fragSample(4000)
	p.Header.Flags |= FlagDF
	if _, err := Fragment(p, 1500); !errors.Is(err, ErrFragmentDF) {
		t.Fatalf("err = %v", err)
	}
}

func TestFragmentTinyMTU(t *testing.T) {
	p := fragSample(100)
	if _, err := Fragment(p, 20); err == nil {
		t.Fatal("mtu smaller than header accepted")
	}
}

func TestReassembleErrors(t *testing.T) {
	if _, err := Reassemble(nil); err == nil {
		t.Error("empty fragment list accepted")
	}
	p := fragSample(4000)
	frags, err := Fragment(p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	// Missing first fragment.
	if _, err := Reassemble(frags[1:]); err == nil {
		t.Error("missing first fragment accepted")
	}
	// Missing middle fragment.
	holey := []*Packet{frags[0], frags[2]}
	if _, err := Reassemble(holey); err == nil {
		t.Error("gap accepted")
	}
	// Missing last fragment.
	if _, err := Reassemble(frags[:len(frags)-1]); err == nil {
		t.Error("missing last fragment accepted")
	}
	// Foreign fragment mixed in.
	other := fragSample(4000)
	other.Header.ID = 999
	otherFrags, _ := Fragment(other, 1500)
	mixed := []*Packet{frags[0], otherFrags[1]}
	if _, err := Reassemble(mixed); err == nil {
		t.Error("foreign fragment accepted")
	}
}

func TestFragmentRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := fragSample(64 + r.Intn(8000))
		if r.Intn(2) == 1 {
			data := make([]byte, 4+r.Intn(20))
			r.Read(data)
			p.Header.SetOption(Option{Type: OptSecurity, Data: data})
		}
		mtu := 576 + r.Intn(1000)
		frags, err := Fragment(p, mtu)
		if err != nil {
			return false
		}
		// Shuffle before reassembly.
		r.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		back, err := Reassemble(frags)
		if err != nil {
			return false
		}
		return bytes.Equal(back.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
