package ipv4

// RFC 7126 recommends that border routers drop or strip IPv4 packets
// carrying header options; network-appliance vendors recommend the same to
// close reconnaissance vectors. This is exactly why BorderPatrol needs the
// Packet Sanitizer: tagged packets must be cleansed before they leave the
// corporate perimeter or upstream routers will discard them (paper §IV-A4).

// BorderFilterAction is what an RFC 7126-compliant border router does with
// a packet carrying IP options.
type BorderFilterAction int

// Border filter outcomes.
const (
	// BorderForward passes the packet untouched (no options present).
	BorderForward BorderFilterAction = iota + 1
	// BorderDrop discards the packet (options present).
	BorderDrop
)

// String names the action.
func (a BorderFilterAction) String() string {
	switch a {
	case BorderForward:
		return "forward"
	case BorderDrop:
		return "drop"
	default:
		return "unknown"
	}
}

// BorderFilter models the strict RFC 7126 posture the paper assumes for
// the public Internet: any surviving IP option causes a drop.
func BorderFilter(p *Packet) BorderFilterAction {
	if p.Header.HasOptions() {
		return BorderDrop
	}
	return BorderForward
}
