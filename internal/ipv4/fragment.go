package ipv4

import (
	"fmt"
	"sort"
)

// Fragmentation per RFC 791 §2.3/§3.2. BorderPatrol's context tag uses the
// security option slot (type 130) precisely because its copied flag is set:
// when a router fragments a tagged packet, every fragment keeps the tag, so
// the Policy Enforcer can decide each fragment independently. Options
// without the copied flag appear only in the first fragment.

// Header flag bits (in the 3-bit Flags field).
const (
	// FlagDF forbids fragmentation.
	FlagDF = 0x2
	// FlagMF marks all fragments except the last.
	FlagMF = 0x1
)

// ErrFragmentDF reports an attempt to fragment a DF packet.
var ErrFragmentDF = fmt.Errorf("ipv4: fragmentation needed but DF set")

// Fragment splits a packet into fragments whose total length does not
// exceed mtu. Copied options are replicated into every fragment; non-copied
// options ride only in the first. Fragment offsets are in 8-byte units as
// on the wire.
func Fragment(p *Packet, mtu int) ([]*Packet, error) {
	hlenFull, err := p.Header.HeaderLen()
	if err != nil {
		return nil, err
	}
	wire, err := p.WireLen()
	if err != nil {
		return nil, err
	}
	if wire <= mtu {
		return []*Packet{p.Clone()}, nil
	}
	if p.Header.Flags&FlagDF != 0 {
		return nil, fmt.Errorf("%w: packet %d bytes, mtu %d", ErrFragmentDF, wire, mtu)
	}

	// Header for subsequent fragments: copied options only.
	var copiedOpts []Option
	for _, o := range p.Header.Options {
		if o.Copied() {
			copiedOpts = append(copiedOpts, Option{Type: o.Type, Data: append([]byte(nil), o.Data...)})
		}
	}
	subHdr := p.Header
	subHdr.Options = copiedOpts
	hlenSub, err := subHdr.HeaderLen()
	if err != nil {
		return nil, err
	}

	// Payload budget per fragment, rounded down to 8-byte units (except
	// the last fragment).
	firstBudget := (mtu - hlenFull) &^ 7
	subBudget := (mtu - hlenSub) &^ 7
	if firstBudget <= 0 || subBudget <= 0 {
		return nil, fmt.Errorf("ipv4: mtu %d too small for headers", mtu)
	}

	var frags []*Packet
	off := 0
	for off < len(p.Payload) {
		first := off == 0
		budget := subBudget
		hdr := subHdr
		if first {
			budget = firstBudget
			hdr = p.Header
			hdr.Options = make([]Option, len(p.Header.Options))
			for i, o := range p.Header.Options {
				hdr.Options[i] = Option{Type: o.Type, Data: append([]byte(nil), o.Data...)}
			}
		} else {
			hdr.Options = make([]Option, len(copiedOpts))
			for i, o := range copiedOpts {
				hdr.Options[i] = Option{Type: o.Type, Data: append([]byte(nil), o.Data...)}
			}
		}
		end := off + budget
		last := false
		if end >= len(p.Payload) {
			end = len(p.Payload)
			last = true
		}
		hdr.FragOff = uint16(off / 8)
		if last {
			hdr.Flags = p.Header.Flags &^ FlagMF
		} else {
			hdr.Flags = p.Header.Flags | FlagMF
		}
		frags = append(frags, &Packet{
			Header:  hdr,
			Payload: append([]byte(nil), p.Payload[off:end]...),
		})
		off = end
	}
	return frags, nil
}

// Reassemble reconstructs the original packet from its fragments (any
// order). It validates contiguity and the MF chain.
func Reassemble(frags []*Packet) (*Packet, error) {
	if len(frags) == 0 {
		return nil, fmt.Errorf("ipv4: no fragments")
	}
	sorted := append([]*Packet(nil), frags...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Header.FragOff < sorted[j].Header.FragOff
	})
	first := sorted[0]
	if first.Header.FragOff != 0 {
		return nil, fmt.Errorf("ipv4: missing first fragment")
	}
	out := first.Clone()
	expected := len(first.Payload)
	for i := 1; i < len(sorted); i++ {
		f := sorted[i]
		if f.Header.ID != first.Header.ID || f.Header.Src != first.Header.Src ||
			f.Header.Dst != first.Header.Dst || f.Header.Protocol != first.Header.Protocol {
			return nil, fmt.Errorf("ipv4: fragment %d belongs to a different datagram", i)
		}
		if int(f.Header.FragOff)*8 != expected {
			return nil, fmt.Errorf("ipv4: gap before offset %d (expected %d bytes)", f.Header.FragOff, expected)
		}
		out.Payload = append(out.Payload, f.Payload...)
		expected += len(f.Payload)
	}
	last := sorted[len(sorted)-1]
	if last.Header.Flags&FlagMF != 0 {
		return nil, fmt.Errorf("ipv4: missing last fragment (MF still set)")
	}
	out.Header.Flags &^= FlagMF
	out.Header.FragOff = 0
	return out, nil
}
