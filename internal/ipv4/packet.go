// Package ipv4 models IPv4 packets with full header-option support: the
// substrate BorderPatrol tags (IP_OPTIONS, RFC 791 §3.1) ride on, plus the
// RFC 7126 border-filtering behaviour that motivates the Packet Sanitizer
// (paper §II-B2, §IV-A4).
package ipv4

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Protocol numbers used by the simulator.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Option type octets follow RFC 791: copied flag (bit 7), class (bits
// 6..5), number (bits 4..0).
const (
	// OptEnd terminates the option list.
	OptEnd = 0
	// OptNOP pads between options.
	OptNOP = 1
	// OptSecurity is the security option (copied, class 0, number 2 =
	// 0x82 = 130). BorderPatrol reuses this "security type" slot for its
	// context tag, matching the paper's kernel patch (§VII "Tag-replay").
	OptSecurity = 130
	// OptTimestamp is the well-known timestamp option used by ping.
	OptTimestamp = 68
)

// MaxOptionsLen is the RFC 791 limit for the whole options field.
const MaxOptionsLen = 40

// MinHeaderLen is the length of an option-free IPv4 header.
const MinHeaderLen = 20

// Option is one IPv4 header option (type, then data; length byte covers
// type+len+data per RFC 791).
type Option struct {
	Type byte
	Data []byte
}

// Copied reports whether the option's copied flag is set, meaning it must
// be replicated into every fragment.
func (o Option) Copied() bool { return o.Type&0x80 != 0 }

// wireLen is the option's on-wire size including type and length octets.
func (o Option) wireLen() int {
	if o.Type == OptEnd || o.Type == OptNOP {
		return 1
	}
	return 2 + len(o.Data)
}

// Header is a parsed IPv4 header.
type Header struct {
	TOS      byte
	ID       uint16
	Flags    byte // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      byte
	Protocol byte
	Src      netip.Addr
	Dst      netip.Addr
	Options  []Option
}

// Packet is an IPv4 packet: header plus transport payload.
type Packet struct {
	Header  Header
	Payload []byte
}

// Errors produced by marshalling and parsing.
var (
	ErrOptionsTooLong = errors.New("ipv4: options exceed 40 bytes")
	ErrShortPacket    = errors.New("ipv4: short packet")
	ErrBadChecksum    = errors.New("ipv4: header checksum mismatch")
	ErrBadVersion     = errors.New("ipv4: not an IPv4 packet")
	ErrBadOption      = errors.New("ipv4: malformed option")
	ErrNotIPv4Addr    = errors.New("ipv4: address is not IPv4")
)

// OptionsWireLen returns the padded on-wire size of the options list.
func (h *Header) OptionsWireLen() (int, error) {
	n := 0
	for _, o := range h.Options {
		n += o.wireLen()
	}
	if n%4 != 0 {
		n += 4 - n%4
	}
	if n > MaxOptionsLen {
		return 0, fmt.Errorf("%w: %d", ErrOptionsTooLong, n)
	}
	return n, nil
}

// HeaderLen returns the full header length including padded options.
func (h *Header) HeaderLen() (int, error) {
	opts, err := h.OptionsWireLen()
	if err != nil {
		return 0, err
	}
	return MinHeaderLen + opts, nil
}

// FindOption returns the first option with the given type.
func (h *Header) FindOption(typ byte) (Option, bool) {
	for _, o := range h.Options {
		if o.Type == typ {
			return o, true
		}
	}
	return Option{}, false
}

// SetOption replaces any existing option of the same type or appends.
func (h *Header) SetOption(opt Option) {
	for i := range h.Options {
		if h.Options[i].Type == opt.Type {
			h.Options[i] = opt
			return
		}
	}
	h.Options = append(h.Options, opt)
}

// RemoveOption deletes every option with the given type and reports whether
// anything was removed.
func (h *Header) RemoveOption(typ byte) bool {
	kept := h.Options[:0]
	removed := false
	for _, o := range h.Options {
		if o.Type == typ {
			removed = true
			continue
		}
		kept = append(kept, o)
	}
	h.Options = kept
	if len(h.Options) == 0 {
		h.Options = nil
	}
	return removed
}

// HasOptions reports whether any header options are present.
func (h *Header) HasOptions() bool { return len(h.Options) > 0 }

// Marshal serializes the packet to wire format with a correct checksum.
func (p *Packet) Marshal() ([]byte, error) {
	hlen, err := p.Header.HeaderLen()
	if err != nil {
		return nil, err
	}
	if !p.Header.Src.Is4() || !p.Header.Dst.Is4() {
		return nil, fmt.Errorf("%w: src=%v dst=%v", ErrNotIPv4Addr, p.Header.Src, p.Header.Dst)
	}
	total := hlen + len(p.Payload)
	if total > 0xffff {
		return nil, fmt.Errorf("ipv4: packet length %d exceeds 65535", total)
	}
	buf := make([]byte, total)
	buf[0] = 4<<4 | byte(hlen/4)
	buf[1] = p.Header.TOS
	binary.BigEndian.PutUint16(buf[2:4], uint16(total))
	binary.BigEndian.PutUint16(buf[4:6], p.Header.ID)
	binary.BigEndian.PutUint16(buf[6:8], uint16(p.Header.Flags)<<13|p.Header.FragOff&0x1fff)
	buf[8] = p.Header.TTL
	buf[9] = p.Header.Protocol
	src := p.Header.Src.As4()
	dst := p.Header.Dst.As4()
	copy(buf[12:16], src[:])
	copy(buf[16:20], dst[:])
	off := MinHeaderLen
	for _, o := range p.Header.Options {
		buf[off] = o.Type
		if o.Type == OptEnd || o.Type == OptNOP {
			off++
			continue
		}
		buf[off+1] = byte(2 + len(o.Data))
		copy(buf[off+2:], o.Data)
		off += 2 + len(o.Data)
	}
	for off < hlen {
		buf[off] = OptEnd
		off++
	}
	binary.BigEndian.PutUint16(buf[10:12], Checksum(buf[:hlen]))
	copy(buf[hlen:], p.Payload)
	return buf, nil
}

// Unmarshal parses a wire-format packet, verifying version, lengths and the
// header checksum.
func Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < MinHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrShortPacket, len(buf))
	}
	if buf[0]>>4 != 4 {
		return nil, fmt.Errorf("%w: version %d", ErrBadVersion, buf[0]>>4)
	}
	hlen := int(buf[0]&0x0f) * 4
	if hlen < MinHeaderLen || hlen > len(buf) {
		return nil, fmt.Errorf("%w: header length %d", ErrShortPacket, hlen)
	}
	total := int(binary.BigEndian.Uint16(buf[2:4]))
	if total < hlen || total > len(buf) {
		return nil, fmt.Errorf("%w: total length %d", ErrShortPacket, total)
	}
	if Checksum(buf[:hlen]) != 0 {
		return nil, ErrBadChecksum
	}
	var p Packet
	p.Header.TOS = buf[1]
	p.Header.ID = binary.BigEndian.Uint16(buf[4:6])
	ff := binary.BigEndian.Uint16(buf[6:8])
	p.Header.Flags = byte(ff >> 13)
	p.Header.FragOff = ff & 0x1fff
	p.Header.TTL = buf[8]
	p.Header.Protocol = buf[9]
	p.Header.Src = netip.AddrFrom4([4]byte(buf[12:16]))
	p.Header.Dst = netip.AddrFrom4([4]byte(buf[16:20]))
	opts, err := parseOptions(buf[MinHeaderLen:hlen])
	if err != nil {
		return nil, err
	}
	p.Header.Options = opts
	p.Payload = append([]byte(nil), buf[hlen:total]...)
	return &p, nil
}

func parseOptions(buf []byte) ([]Option, error) {
	var opts []Option
	for i := 0; i < len(buf); {
		typ := buf[i]
		switch typ {
		case OptEnd:
			return opts, nil
		case OptNOP:
			i++
		default:
			if i+1 >= len(buf) {
				return nil, fmt.Errorf("%w: option %d missing length", ErrBadOption, typ)
			}
			olen := int(buf[i+1])
			if olen < 2 || i+olen > len(buf) {
				return nil, fmt.Errorf("%w: option %d length %d", ErrBadOption, typ, olen)
			}
			opts = append(opts, Option{Type: typ, Data: append([]byte(nil), buf[i+2:i+olen]...)})
			i += olen
		}
	}
	return opts, nil
}

// Checksum computes the Internet checksum (RFC 1071) over buf. A buffer
// containing its own correct checksum sums to zero.
func Checksum(buf []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(buf); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(buf[i : i+2]))
	}
	if len(buf)%2 == 1 {
		sum += uint32(buf[len(buf)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Clone deep-copies the packet so pipeline stages can mutate safely.
func (p *Packet) Clone() *Packet {
	c := &Packet{Header: p.Header}
	if p.Header.Options != nil {
		c.Header.Options = make([]Option, len(p.Header.Options))
		for i, o := range p.Header.Options {
			c.Header.Options[i] = Option{Type: o.Type, Data: append([]byte(nil), o.Data...)}
		}
	}
	if p.Payload != nil {
		c.Payload = append([]byte(nil), p.Payload...)
	}
	return c
}

// WireLen returns the marshalled size of the packet.
func (p *Packet) WireLen() (int, error) {
	hlen, err := p.Header.HeaderLen()
	if err != nil {
		return 0, err
	}
	return hlen + len(p.Payload), nil
}
