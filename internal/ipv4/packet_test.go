package ipv4

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Header: Header{
			TOS:      0,
			ID:       42,
			TTL:      64,
			Protocol: ProtoTCP,
			Src:      netip.AddrFrom4([4]byte{10, 0, 0, 5}),
			Dst:      netip.AddrFrom4([4]byte{93, 184, 216, 34}),
		},
		Payload: []byte("GET / HTTP/1.1\r\n\r\n"),
	}
}

func TestMarshalUnmarshalNoOptions(t *testing.T) {
	p := samplePacket()
	buf, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if len(buf) != MinHeaderLen+len(p.Payload) {
		t.Fatalf("wire length %d, want %d", len(buf), MinHeaderLen+len(p.Payload))
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Header.Src != p.Header.Src || got.Header.Dst != p.Header.Dst {
		t.Error("addresses mismatch")
	}
	if got.Header.ID != 42 || got.Header.TTL != 64 || got.Header.Protocol != ProtoTCP {
		t.Error("scalar fields mismatch")
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Error("payload mismatch")
	}
	if got.Header.HasOptions() {
		t.Error("phantom options appeared")
	}
}

func TestMarshalUnmarshalWithOptions(t *testing.T) {
	p := samplePacket()
	optData := []byte{0x10, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x01, 0x02, 0x03, 0x04}
	p.Header.SetOption(Option{Type: OptSecurity, Data: optData})
	buf, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	// Header must be padded to a 4-byte boundary.
	hlen := int(buf[0]&0x0f) * 4
	if hlen%4 != 0 || hlen <= MinHeaderLen {
		t.Fatalf("bad header length %d", hlen)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	opt, ok := got.Header.FindOption(OptSecurity)
	if !ok {
		t.Fatal("security option lost")
	}
	if !bytes.Equal(opt.Data, optData) {
		t.Fatalf("option data %x, want %x", opt.Data, optData)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Error("payload corrupted by options")
	}
}

func TestOptionsTooLong(t *testing.T) {
	p := samplePacket()
	p.Header.SetOption(Option{Type: OptSecurity, Data: make([]byte, 39)})
	if _, err := p.Marshal(); !errors.Is(err, ErrOptionsTooLong) {
		t.Fatalf("err = %v, want ErrOptionsTooLong", err)
	}
}

func TestMaxBudgetOptionFits(t *testing.T) {
	// 38 data bytes + type + len = 40 bytes exactly.
	p := samplePacket()
	p.Header.SetOption(Option{Type: OptSecurity, Data: make([]byte, 38)})
	buf, err := p.Marshal()
	if err != nil {
		t.Fatalf("40-byte option should fit: %v", err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if opt, ok := got.Header.FindOption(OptSecurity); !ok || len(opt.Data) != 38 {
		t.Fatal("max-size option did not round trip")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	p := samplePacket()
	buf, _ := p.Marshal()
	buf[8] ^= 0xff // corrupt TTL
	if _, err := Unmarshal(buf); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); !errors.Is(err, ErrShortPacket) {
		t.Errorf("nil: %v", err)
	}
	if _, err := Unmarshal(make([]byte, 10)); !errors.Is(err, ErrShortPacket) {
		t.Errorf("short: %v", err)
	}
	p := samplePacket()
	buf, _ := p.Marshal()
	v6 := append([]byte(nil), buf...)
	v6[0] = 6<<4 | v6[0]&0x0f
	if _, err := Unmarshal(v6); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}
	// Truncated total length.
	trunc := append([]byte(nil), buf...)
	trunc = trunc[:MinHeaderLen-4]
	if _, err := Unmarshal(trunc); !errors.Is(err, ErrShortPacket) {
		t.Errorf("truncated: %v", err)
	}
}

func TestMalformedOptionRejected(t *testing.T) {
	p := samplePacket()
	p.Header.SetOption(Option{Type: OptSecurity, Data: []byte{1, 2, 3, 4, 5, 6}})
	buf, _ := p.Marshal()
	// Corrupt the option length byte to run past the header, then fix the
	// checksum so the option parser (not the checksum) rejects it.
	buf[MinHeaderLen+1] = 200
	fixChecksum(buf)
	if _, err := Unmarshal(buf); !errors.Is(err, ErrBadOption) {
		t.Fatalf("err = %v, want ErrBadOption", err)
	}
	// Option length < 2 is also malformed.
	buf2, _ := p.Marshal()
	buf2[MinHeaderLen+1] = 1
	fixChecksum(buf2)
	if _, err := Unmarshal(buf2); !errors.Is(err, ErrBadOption) {
		t.Fatalf("err = %v, want ErrBadOption", err)
	}
}

func fixChecksum(buf []byte) {
	hlen := int(buf[0]&0x0f) * 4
	buf[10], buf[11] = 0, 0
	ck := Checksum(buf[:hlen])
	buf[10] = byte(ck >> 8)
	buf[11] = byte(ck)
}

func TestSetRemoveOption(t *testing.T) {
	var h Header
	h.SetOption(Option{Type: OptSecurity, Data: []byte{1}})
	h.SetOption(Option{Type: OptTimestamp, Data: []byte{2}})
	h.SetOption(Option{Type: OptSecurity, Data: []byte{3}}) // replaces
	if len(h.Options) != 2 {
		t.Fatalf("got %d options, want 2", len(h.Options))
	}
	opt, _ := h.FindOption(OptSecurity)
	if opt.Data[0] != 3 {
		t.Fatal("SetOption did not replace")
	}
	if !h.RemoveOption(OptSecurity) {
		t.Fatal("RemoveOption found nothing")
	}
	if h.RemoveOption(OptSecurity) {
		t.Fatal("RemoveOption removed twice")
	}
	if _, ok := h.FindOption(OptSecurity); ok {
		t.Fatal("option still present after removal")
	}
}

func TestCopiedFlag(t *testing.T) {
	if !(Option{Type: OptSecurity}).Copied() {
		t.Error("security option must have the copied flag (0x82)")
	}
	if (Option{Type: OptTimestamp}).Copied() {
		t.Error("timestamp option is not copied")
	}
}

func TestBorderFilter(t *testing.T) {
	p := samplePacket()
	if got := BorderFilter(p); got != BorderForward {
		t.Fatalf("clean packet: %v", got)
	}
	p.Header.SetOption(Option{Type: OptSecurity, Data: []byte{1, 2}})
	if got := BorderFilter(p); got != BorderDrop {
		t.Fatalf("optioned packet: %v", got)
	}
	if BorderDrop.String() != "drop" || BorderForward.String() != "forward" {
		t.Error("action names wrong")
	}
	if BorderFilterAction(99).String() != "unknown" {
		t.Error("unknown action name wrong")
	}
}

func TestClone(t *testing.T) {
	p := samplePacket()
	p.Header.SetOption(Option{Type: OptSecurity, Data: []byte{9, 9}})
	c := p.Clone()
	c.Payload[0] = 'X'
	c.Header.Options[0].Data[0] = 0
	if p.Payload[0] == 'X' || p.Header.Options[0].Data[0] == 0 {
		t.Fatal("Clone aliases the original")
	}
}

func TestMarshalRejectsNonIPv4(t *testing.T) {
	p := samplePacket()
	p.Header.Dst = netip.MustParseAddr("2001:db8::1")
	if _, err := p.Marshal(); !errors.Is(err, ErrNotIPv4Addr) {
		t.Fatalf("err = %v, want ErrNotIPv4Addr", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := &Packet{
			Header: Header{
				TOS:      byte(r.Intn(256)),
				ID:       uint16(r.Intn(1 << 16)),
				Flags:    byte(r.Intn(3)) << 1, // DF/MF-ish without reserved bit
				FragOff:  uint16(r.Intn(1 << 13)),
				TTL:      byte(1 + r.Intn(255)),
				Protocol: byte(r.Intn(256)),
				Src:      netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))}),
				Dst:      netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))}),
			},
			Payload: make([]byte, r.Intn(512)),
		}
		r.Read(p.Payload)
		if r.Intn(2) == 1 {
			data := make([]byte, r.Intn(30))
			r.Read(data)
			p.Header.SetOption(Option{Type: OptSecurity, Data: data})
		}
		buf, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		if got.Header.Src != p.Header.Src || got.Header.Dst != p.Header.Dst ||
			got.Header.ID != p.Header.ID || got.Header.TTL != p.Header.TTL ||
			got.Header.Protocol != p.Header.Protocol || got.Header.TOS != p.Header.TOS ||
			got.Header.Flags != p.Header.Flags || got.Header.FragOff != p.Header.FragOff {
			return false
		}
		if !bytes.Equal(got.Payload, p.Payload) {
			return false
		}
		if len(got.Header.Options) != len(p.Header.Options) {
			return false
		}
		for i := range got.Header.Options {
			if got.Header.Options[i].Type != p.Header.Options[i].Type ||
				!bytes.Equal(got.Header.Options[i].Data, p.Header.Options[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumRFC1071Example(t *testing.T) {
	// Worked example adapted from RFC 1071 §3.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	ck := Checksum(data)
	// Verify the invariant: appending the checksum makes the sum zero.
	withCk := append(append([]byte(nil), data...), byte(ck>>8), byte(ck))
	if Checksum(withCk) != 0 {
		t.Fatalf("checksum invariant violated: %x", Checksum(withCk))
	}
	// Odd-length buffers pad with a zero byte.
	odd := []byte{0xab, 0xcd, 0xef}
	_ = Checksum(odd) // must not panic
}
