// Package audit provides the enforcement audit trail for BorderPatrol
// gateways. The paper's centralized-management argument (§VII "Ease of
// use": administrators configure and update all policies in one spot)
// implies operators need to see what the enforcer decided and why; this
// package records one structured entry per packet decision as JSON lines,
// suitable for log shipping, and keeps bounded in-memory tail for
// interactive inspection.
package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sync"

	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
)

// Entry is one enforcement decision record.
type Entry struct {
	// Seq is a monotonically increasing record number.
	Seq uint64 `json:"seq"`
	// Src and Dst identify the flow.
	Src string `json:"src"`
	Dst string `json:"dst"`
	// App is the truncated apk hash in hex ("" when untagged).
	App string `json:"app,omitempty"`
	// Verdict is "allow" or "drop".
	Verdict string `json:"verdict"`
	// Cause classifies drops (policy, untagged, unknown-app, ...).
	Cause string `json:"cause,omitempty"`
	// Rule is the decisive policy rule, when one matched.
	Rule string `json:"rule,omitempty"`
	// Stack is the decoded context, innermost frame first.
	Stack []string `json:"stack,omitempty"`
	// PayloadBytes is the packet payload size.
	PayloadBytes int `json:"payload_bytes"`
}

// Log records enforcement decisions. A nil *Log is a valid no-op sink.
type Log struct {
	mu   sync.Mutex
	w    io.Writer
	seq  uint64
	tail []Entry
	// tailCap bounds the in-memory tail (0 disables it).
	tailCap int
	// dropsByApp aggregates drop counts per app hash.
	dropsByApp map[string]uint64
	writeErr   error
}

// New builds a log writing JSON lines to w (nil w keeps only the tail).
func New(w io.Writer, tailCap int) *Log {
	return &Log{w: w, tailCap: tailCap, dropsByApp: make(map[string]uint64)}
}

// Record converts an enforcement result into an audit entry.
func (l *Log) Record(pkt *ipv4.Packet, res enforcer.Result) Entry {
	e := Entry{
		Src:          pkt.Header.Src.String(),
		Dst:          pkt.Header.Dst.String(),
		Verdict:      res.Verdict.String(),
		PayloadBytes: len(pkt.Payload),
	}
	var zero dex.TruncatedHash
	if res.AppHash != zero {
		e.App = res.AppHash.String()
	}
	if res.Verdict == policy.VerdictDrop {
		e.Cause = res.Cause.String()
	}
	if res.Decision != nil && res.Decision.Rule != nil {
		e.Rule = res.Decision.Rule.String()
	}
	if len(res.Stack) > 0 {
		e.Stack = make([]string, len(res.Stack))
		for i, s := range res.Stack {
			e.Stack[i] = s.String()
		}
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	if res.Verdict == policy.VerdictDrop && e.App != "" {
		l.dropsByApp[e.App]++
	}
	if l.tailCap > 0 {
		l.tail = append(l.tail, e)
		if len(l.tail) > l.tailCap {
			l.tail = l.tail[len(l.tail)-l.tailCap:]
		}
	}
	if l.w != nil {
		enc := json.NewEncoder(l.w)
		if err := enc.Encode(e); err != nil && l.writeErr == nil {
			l.writeErr = fmt.Errorf("audit: write: %w", err)
		}
	}
	return e
}

// Tail returns the most recent entries (up to the tail capacity).
func (l *Log) Tail() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.tail...)
}

// DropsByApp returns a copy of the per-app drop counters.
func (l *Log) DropsByApp() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.dropsByApp))
	for k, v := range l.dropsByApp {
		out[k] = v
	}
	return out
}

// Err returns the first write error encountered, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeErr
}

// ReadEntries parses a JSON-lines audit stream.
func ReadEntries(r io.Reader) ([]Entry, error) {
	dec := json.NewDecoder(r)
	var out []Entry
	for dec.More() {
		var e Entry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("audit: parse: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}

// SrcAddr parses an entry's source back into an address (convenience for
// tooling; returns the zero Addr on malformed input).
func (e Entry) SrcAddr() netip.Addr {
	a, err := netip.ParseAddr(e.Src)
	if err != nil {
		return netip.Addr{}
	}
	return a
}
