// Package audit provides the enforcement audit trail for BorderPatrol
// gateways. The paper's centralized-management argument (§VII "Ease of
// use": administrators configure and update all policies in one spot)
// implies operators need to see what the enforcer decided and why; this
// package records one structured entry per packet decision as JSON lines,
// suitable for log shipping, and keeps a bounded in-memory tail for
// interactive inspection.
//
// # Hot path vs drain path
//
// Record and RecordBatch are called from the per-packet enforcement path,
// so they do no JSON encoding and take no global lock: each call appends a
// compact struct capture of the decision (addresses, hash, verdict, and
// references to the immutable Stack/Decision the flow cache already
// shares) to one of several producer stripes under that stripe's mutex. A
// background drainer periodically swaps the stripe buffers out, orders the
// captures by sequence number, builds the JSON entries, and writes them to
// the configured io.Writer in one burst — so the enforcement path is
// charged a stripe append (tens of ns, zero allocations steady-state) and
// the encode cost is paid off the packet path, batched per burst.
//
// # Backpressure
//
// The producer buffers are bounded (Config.QueueCap). If the drainer falls
// behind — a slow disk, a stalled shipper — Record counts the overflowing
// entry in Stats.Dropped and returns; enforcement never blocks on the
// audit trail, and the gap is visible both in the stats and as a hole in
// the entry sequence numbers.
//
// # Delivery guarantees
//
// Entries become visible to the writer, Tail and DropsByApp when a drain
// runs: automatically once a stripe accumulates Config.BatchSize entries,
// on Flush, and on Close (flush-on-close). Tail and DropsByApp flush
// before reading, so interactive inspection always sees every record
// accepted so far. Each drain burst is sorted by the sequence number
// assigned at Record time; ordering across bursts is best-effort — a
// producer preempted between taking its sequence number and landing the
// entry can surface one burst late, so a sequence gap in the stream means
// a record that was dropped under backpressure *or, rarely, one still in
// flight* (Stats.Dropped is the authoritative drop count). Records racing
// Close may be dropped (and counted).
package audit

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/metrics"
	"borderpatrol/internal/policy"
)

// Entry is one enforcement decision record.
type Entry struct {
	// Seq is the record number assigned at Record time. A gap usually
	// means a record dropped under backpressure (Stats.Dropped is the
	// authoritative count); rarely it is a record that surfaced in a later
	// drain burst (see the package comment on ordering).
	Seq uint64 `json:"seq"`
	// Src and Dst identify the flow.
	Src string `json:"src"`
	Dst string `json:"dst"`
	// App is the truncated apk hash in hex ("" when untagged).
	App string `json:"app,omitempty"`
	// Verdict is "allow" or "drop".
	Verdict string `json:"verdict"`
	// Cause classifies drops (policy, untagged, unknown-app, ...).
	Cause string `json:"cause,omitempty"`
	// Rule is the decisive policy rule, when one matched.
	Rule string `json:"rule,omitempty"`
	// Stack is the decoded context, innermost frame first.
	Stack []string `json:"stack,omitempty"`
	// PayloadBytes is the packet payload size.
	PayloadBytes int `json:"payload_bytes"`
}

// rawEntry is the compact hot-path capture of one decision: fixed-size
// values plus references to the Result's immutable Stack slice and
// Decision — nothing is stringified until the drainer builds the Entry.
type rawEntry struct {
	seq      uint64
	src, dst netip.Addr
	app      dex.TruncatedHash
	verdict  policy.Verdict
	cause    enforcer.DropCause
	decision *policy.Decision
	stack    []dex.Signature
	payload  int
}

// stripe is one producer buffer. Stripes are selected by flow endpoints,
// so concurrent Record calls from different flows rarely share a lock.
type stripe struct {
	mu  sync.Mutex
	buf []rawEntry
	// pad keeps neighbouring stripe locks off one cache line.
	_ [40]byte
}

// Config sizes an audit log.
type Config struct {
	// Writer receives JSON lines, one per entry, flushed per drain burst
	// (nil disables file output).
	Writer io.Writer
	// TailCap bounds the in-memory tail (0 disables it).
	TailCap int
	// QueueCap bounds the pending (recorded but not yet drained) entries
	// across all stripes; beyond it Record counts drops instead of
	// blocking (default 4096).
	QueueCap int
	// BatchSize is the per-stripe fill level that wakes the background
	// drainer (default 256, clamped to the per-stripe capacity).
	BatchSize int
	// Stripes is the number of producer buffers, rounded up to a power of
	// two (default 8).
	Stripes int
}

// Stats snapshots the audit pipeline's counters.
type Stats struct {
	// Recorded counts entries accepted onto producer stripes.
	Recorded uint64
	// Dropped counts entries discarded because the bounded queue was full
	// (or the log was closed).
	Dropped uint64
	// Drained counts entries the background drainer has processed.
	Drained uint64
	// Flushes counts drain bursts that did work.
	Flushes uint64
	// Pending is the approximate number of entries awaiting a drain.
	Pending uint64
}

// Log records enforcement decisions asynchronously. A nil *Log is a valid
// no-op sink. It implements enforcer.AuditSink.
type Log struct {
	w          io.Writer
	tailCap    int
	batchSize  int
	perStripe  int
	queueCap   int
	stripeMask uint32
	stripes    []stripe

	// pendingCount approximately tracks entries awaiting a drain so a
	// saturated queue sheds load with one atomic read instead of probing
	// every (full) stripe lock. The per-stripe caps remain the hard
	// memory bound; this counter only short-circuits the full case.
	pendingCount atomic.Int64

	notify   chan struct{}
	flushReq chan chan struct{}
	quit     chan struct{}
	done     chan struct{}
	closed   atomic.Bool

	seq     atomic.Uint64 // entries that received a sequence number
	dropped atomic.Uint64
	drained atomic.Uint64
	flushes atomic.Uint64

	// batchSizes distributes drain-burst sizes: a healthy pipeline drains
	// near BatchSize; a starved one drains dribbles, a backlogged one
	// drains the whole queue. Recorded on the drainer goroutine only.
	batchSizes *metrics.Histogram

	// Drainer-owned scratch: swapped-out stripe buffers are merged into
	// batch, then cleared and handed back as spares.
	batch  []rawEntry
	spares [][]rawEntry
	encBuf bytes.Buffer
	enc    *json.Encoder

	// mu guards the drainer-published read-side state.
	mu         sync.Mutex
	tail       []Entry
	dropsByApp map[string]uint64
	writeErr   error
}

// New builds a log writing JSON lines to w (nil w keeps only the tail),
// with default queue sizing. See NewWithConfig for the full knobs.
func New(w io.Writer, tailCap int) *Log {
	return NewWithConfig(Config{Writer: w, TailCap: tailCap})
}

// NewWithConfig builds a log and starts its background drainer. Callers
// that care about every entry reaching the writer must Close (or Flush)
// before discarding the log.
func NewWithConfig(cfg Config) *Log {
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = 4096
	}
	n := cfg.Stripes
	if n <= 0 {
		n = 8
	}
	p := 1
	for p < n {
		p <<= 1
	}
	per := queueCap / p
	if per < 1 {
		per = 1
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 256
	}
	if batch > per {
		batch = per
	}
	l := &Log{
		w:          cfg.Writer,
		tailCap:    cfg.TailCap,
		batchSize:  batch,
		perStripe:  per,
		queueCap:   per * p,
		stripeMask: uint32(p - 1),
		stripes:    make([]stripe, p),
		notify:     make(chan struct{}, 1),
		flushReq:   make(chan chan struct{}),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		spares:     make([][]rawEntry, p),
		dropsByApp: make(map[string]uint64),
		batchSizes: metrics.NewHistogram(),
	}
	for i := range l.stripes {
		l.stripes[i].buf = make([]rawEntry, 0, per)
		l.spares[i] = make([]rawEntry, 0, per)
	}
	l.enc = json.NewEncoder(&l.encBuf)
	go l.run()
	return l
}

// stripeFor selects the home producer buffer for a packet's flow, so
// packets of one flow normally stay FIFO within their stripe and
// concurrent flows spread. Under pressure a full home stripe spills to
// the next one (see Record), so QueueCap genuinely bounds the whole
// queue, not one stripe's share of it.
func (l *Log) stripeFor(pkt *ipv4.Packet) uint32 {
	var h uint32
	if pkt.Header.Src.Is4() {
		a := pkt.Header.Src.As4()
		h = binary.LittleEndian.Uint32(a[:])
	}
	if pkt.Header.Dst.Is4() {
		a := pkt.Header.Dst.As4()
		h ^= binary.LittleEndian.Uint32(a[:]) * 0x9e3779b1
	}
	h ^= h >> 16
	return h & l.stripeMask
}

// capture fills a rawEntry from one decision (no allocation: the Stack
// slice and Decision pointer are shared with the immutable Result).
func capture(e *rawEntry, seq uint64, pkt *ipv4.Packet, res enforcer.Result) {
	e.seq = seq
	e.src = pkt.Header.Src
	e.dst = pkt.Header.Dst
	e.app = res.AppHash
	e.verdict = res.Verdict
	e.cause = res.Cause
	e.decision = res.Decision
	e.stack = res.Stack
	e.payload = len(pkt.Payload)
}

// Record captures one enforcement decision. It never blocks and never
// encodes: the entry lands on a producer stripe and is JSON-encoded by the
// background drainer. A full home stripe spills to the next ones, so an
// entry is only counted in Stats.Dropped and discarded once every stripe
// is full — i.e. once the whole QueueCap is exhausted.
//
// The closed check runs under the stripe lock: Close sets the flag before
// the drainer's final sweep locks each stripe, so an append that won the
// lock first is swept by that sweep, and one that lost it observes the
// flag and counts a drop — no entry can be stranded unaccounted.
func (l *Log) Record(pkt *ipv4.Packet, res enforcer.Result) {
	if l == nil {
		return
	}
	seq := l.seq.Add(1)
	if l.pendingCount.Load() >= int64(l.queueCap) {
		// Saturated: shed with one atomic read (no lock probing) and kick
		// the drainer so capacity recovers.
		l.dropped.Add(1)
		l.wake()
		return
	}
	home := l.stripeFor(pkt)
	for i := uint32(0); i <= l.stripeMask; i++ {
		s := &l.stripes[(home+i)&l.stripeMask]
		s.mu.Lock()
		if l.closed.Load() {
			s.mu.Unlock()
			l.dropped.Add(1)
			return
		}
		if len(s.buf) >= l.perStripe {
			s.mu.Unlock()
			continue
		}
		s.buf = append(s.buf, rawEntry{})
		capture(&s.buf[len(s.buf)-1], seq, pkt, res)
		n := len(s.buf)
		s.mu.Unlock()
		l.pendingCount.Add(1)
		if n >= l.batchSize {
			l.wake()
		}
		return
	}
	// Every stripe filled while we probed: shed the entry.
	l.dropped.Add(1)
	l.wake()
}

// RecordBatch captures a burst of decisions, normally under a single
// stripe lock acquisition, so the audit cost of a batched gateway drain is
// charged once per burst rather than once per packet; when the home stripe
// fills mid-burst the remainder spills onto the next stripes (one lock
// each). res[i] must correspond to pkts[i]; extra packets without results
// are ignored.
func (l *Log) RecordBatch(pkts []*ipv4.Packet, res []enforcer.Result) {
	if l == nil || len(pkts) == 0 || len(res) == 0 {
		return
	}
	n := len(pkts)
	if n > len(res) {
		n = len(res)
	}
	base := l.seq.Add(uint64(n)) - uint64(n)
	if l.pendingCount.Load() >= int64(l.queueCap) {
		l.dropped.Add(uint64(n))
		l.wake()
		return
	}
	home := l.stripeFor(pkts[0])
	kept := 0
	for i := uint32(0); i <= l.stripeMask && kept < n; i++ {
		s := &l.stripes[(home+i)&l.stripeMask]
		s.mu.Lock()
		if l.closed.Load() {
			s.mu.Unlock()
			break
		}
		for kept < n && len(s.buf) < l.perStripe {
			s.buf = append(s.buf, rawEntry{})
			capture(&s.buf[len(s.buf)-1], base+uint64(kept)+1, pkts[kept], res[kept])
			kept++
		}
		filled := len(s.buf)
		s.mu.Unlock()
		if filled >= l.batchSize {
			l.wake()
		}
	}
	if kept > 0 {
		l.pendingCount.Add(int64(kept))
	}
	if kept < n {
		l.dropped.Add(uint64(n - kept))
		l.wake()
	}
}

// wake nudges the drainer without blocking the packet path.
func (l *Log) wake() {
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

// run is the background drainer loop.
func (l *Log) run() {
	defer close(l.done)
	for {
		select {
		case <-l.notify:
			l.drain()
		case ack := <-l.flushReq:
			l.drain()
			close(ack)
		case <-l.quit:
			l.drain()
			return
		}
	}
}

// drain swaps out every stripe buffer, orders the captured entries by
// sequence number, publishes them to the tail and per-app counters, and
// writes the whole burst's JSON lines with a single Write call.
func (l *Log) drain() {
	batch := l.batch[:0]
	for i := range l.stripes {
		s := &l.stripes[i]
		s.mu.Lock()
		if len(s.buf) == 0 {
			s.mu.Unlock()
			continue
		}
		taken := s.buf
		s.buf = l.spares[i]
		s.mu.Unlock()
		batch = append(batch, taken...)
		// Clear the swapped buffer so its Decision/Stack references do not
		// pin results past their drain, then hand it back as the spare.
		clear(taken)
		l.spares[i] = taken[:0]
	}
	if len(batch) == 0 {
		l.batch = batch
		return
	}
	l.pendingCount.Add(-int64(len(batch)))
	sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })

	buildEntries := l.w != nil || l.tailCap > 0
	l.encBuf.Reset()
	l.mu.Lock()
	for i := range batch {
		raw := &batch[i]
		if raw.verdict == policy.VerdictDrop {
			var zero dex.TruncatedHash
			if raw.app != zero {
				l.dropsByApp[raw.app.String()]++
			}
		}
		if !buildEntries {
			continue
		}
		e := buildEntry(raw)
		if l.tailCap > 0 {
			l.tail = append(l.tail, e)
		}
		if l.w != nil {
			if err := l.enc.Encode(e); err != nil && l.writeErr == nil {
				l.writeErr = fmt.Errorf("audit: encode: %w", err)
			}
		}
	}
	// Trim the tail once per burst, not once per entry: compact only when
	// it has doubled past capacity so the copy is amortized O(1)/entry.
	if l.tailCap > 0 && len(l.tail) > l.tailCap {
		if len(l.tail) >= 2*l.tailCap {
			l.tail = append(l.tail[:0], l.tail[len(l.tail)-l.tailCap:]...)
		} else {
			l.tail = l.tail[len(l.tail)-l.tailCap:]
		}
	}
	l.mu.Unlock()

	if l.w != nil && l.encBuf.Len() > 0 {
		if _, err := l.w.Write(l.encBuf.Bytes()); err != nil {
			l.mu.Lock()
			if l.writeErr == nil {
				l.writeErr = fmt.Errorf("audit: write: %w", err)
			}
			l.mu.Unlock()
		}
	}
	l.drained.Add(uint64(len(batch)))
	l.flushes.Add(1)
	l.batchSizes.Record(int64(len(batch)))
	clear(batch)
	l.batch = batch[:0]
}

// buildEntry stringifies one raw capture into its JSON-facing form.
func buildEntry(raw *rawEntry) Entry {
	e := Entry{
		Seq:          raw.seq,
		Src:          raw.src.String(),
		Dst:          raw.dst.String(),
		Verdict:      raw.verdict.String(),
		PayloadBytes: raw.payload,
	}
	var zero dex.TruncatedHash
	if raw.app != zero {
		e.App = raw.app.String()
	}
	if raw.verdict == policy.VerdictDrop {
		e.Cause = raw.cause.String()
	}
	if raw.decision != nil && raw.decision.Rule != nil {
		e.Rule = raw.decision.Rule.String()
	}
	if len(raw.stack) > 0 {
		e.Stack = make([]string, len(raw.stack))
		for i, s := range raw.stack {
			e.Stack[i] = s.String()
		}
	}
	return e
}

// Flush forces a drain of everything recorded so far and waits for it,
// then reports the sticky write error, if any. Safe to call concurrently;
// a no-op after Close (Close already flushed).
func (l *Log) Flush() error {
	if l == nil {
		return nil
	}
	ack := make(chan struct{})
	select {
	case l.flushReq <- ack:
		<-ack
	case <-l.done:
	}
	return l.Err()
}

// Close drains every pending entry (flush-on-close), stops the background
// drainer, and reports the sticky write error. Records racing Close may be
// dropped and counted. Idempotent.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	if l.closed.CompareAndSwap(false, true) {
		close(l.quit)
	}
	<-l.done
	return l.Err()
}

// Tail returns the most recent entries (up to the tail capacity), flushing
// first so everything recorded is visible.
func (l *Log) Tail() []Entry {
	if l == nil {
		return nil
	}
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.tail...)
}

// DropsByApp returns a copy of the per-app drop counters, flushing first.
func (l *Log) DropsByApp() map[string]uint64 {
	if l == nil {
		return nil
	}
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.dropsByApp))
	for k, v := range l.dropsByApp {
		out[k] = v
	}
	return out
}

// Err returns the first write error encountered, if any. Errors surface
// once the failing entry is drained (Flush forces that).
func (l *Log) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeErr
}

// Stats snapshots the pipeline counters.
func (l *Log) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	// Load dropped before seq: every drop takes its seq first, so a seq
	// snapshot taken after the dropped snapshot can only over-count
	// recorded entries, never underflow it. Clamp anyway for safety.
	dropped := l.dropped.Load()
	seq := l.seq.Load()
	drained := l.drained.Load()
	var recorded uint64
	if seq > dropped {
		recorded = seq - dropped
	}
	var pending uint64
	if recorded > drained {
		pending = recorded - drained
	}
	return Stats{
		Recorded: recorded,
		Dropped:  dropped,
		Drained:  drained,
		Flushes:  l.flushes.Load(),
		Pending:  pending,
	}
}

// RegisterMetrics attaches the audit pipeline's counters — recorded and
// dropped entries, queue depth, and the drain-burst-size histogram — to a
// registry. A no-op on a nil log, so enforcement-off deployments can
// register unconditionally.
func (l *Log) RegisterMetrics(r *metrics.Registry) {
	if l == nil {
		return
	}
	r.CounterFunc("bp_audit_recorded_total", "Decisions accepted onto producer stripes.",
		func() uint64 { return l.Stats().Recorded })
	r.CounterFunc("bp_audit_dropped_total", "Decisions shed because the bounded queue was full.",
		l.dropped.Load)
	r.CounterFunc("bp_audit_drained_total", "Entries the background drainer has written out.",
		l.drained.Load)
	r.CounterFunc("bp_audit_flushes_total", "Drain bursts that did work.", l.flushes.Load)
	r.GaugeFunc("bp_audit_queue_depth", "Entries recorded but not yet drained.",
		func() float64 { return float64(l.Stats().Pending) })
	r.RegisterHistogram("bp_audit_batch_size", "Entries per drain burst.", l.batchSizes)
	if rw, ok := l.w.(*RotatingWriter); ok {
		rw.RegisterMetrics(r)
	}
}

// ReadEntries parses a JSON-lines audit stream.
func ReadEntries(r io.Reader) ([]Entry, error) {
	dec := json.NewDecoder(r)
	var out []Entry
	for dec.More() {
		var e Entry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("audit: parse: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}

// SrcAddr parses an entry's source back into an address (convenience for
// tooling; returns the zero Addr on malformed input).
func (e Entry) SrcAddr() netip.Addr {
	a, err := netip.ParseAddr(e.Src)
	if err != nil {
		return netip.Addr{}
	}
	return a
}
