package audit

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"borderpatrol/internal/metrics"
)

func TestRotatingWriterShiftsFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	w, err := NewRotatingWriter(path, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	line := strings.Repeat("x", 59) + "\n" // 60 bytes: two lines exceed 100
	for i := 0; i < 5; i++ {
		if _, err := w.Write([]byte(line)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// 5 writes at 60B with a 100B cap: rotation before writes 2..5 would
	// overflow — every write after the first rotates, so 4 rotations and
	// files audit.jsonl, .1, .2 exist (.3 would exceed maxFiles=2).
	if got := w.Rotations(); got != 4 {
		t.Fatalf("rotations = %d, want 4", got)
	}
	for _, p := range []string{path, path + ".1", path + ".2"} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("expected rotated file %s: %v", p, err)
		}
		if string(b) != line {
			t.Errorf("%s holds %d bytes, want one whole line", p, len(b))
		}
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Errorf("expected %s.3 to be pruned (maxFiles=2)", path)
	}
}

func TestRotatingWriterNeverSplitsLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	w, err := NewRotatingWriter(path, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// An oversized burst still lands whole in a single file.
	big := strings.Repeat("y", 200) + "\n"
	if _, err := w.Write([]byte(big)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("z\n")); err != nil {
		t.Fatal(err)
	}
	rotated, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	if string(rotated) != big {
		t.Errorf("rotated file split the oversized burst: %d bytes", len(rotated))
	}
}

func TestLogRegistersRotatingSinkMetrics(t *testing.T) {
	dir := t.TempDir()
	w, err := NewRotatingWriter(filepath.Join(dir, "a.jsonl"), 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	l := New(w, 0)
	defer l.Close()
	r := metrics.NewRegistry()
	l.RegisterMetrics(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bp_audit_file_writes_total", "bp_audit_file_rotations_total", "bp_audit_batch_size_bucket"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("registry output missing %s", want)
		}
	}
}
