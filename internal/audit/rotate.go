package audit

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"borderpatrol/internal/metrics"
)

// RotatingWriter is a size-rotating file sink for the audit log's JSON
// lines. When the active file reaches MaxBytes, it is closed and shifted
// to <path>.1 (existing <path>.N shift to <path>.N+1, the oldest beyond
// MaxFiles is deleted) and a fresh <path> is opened — the classic
// logrotate scheme, done inline so a long soak cannot fill the disk.
//
// Writes arrive from the audit drainer in whole-burst chunks, so rotation
// happens on entry boundaries: a JSON line is never split across files.
// The writer is safe for concurrent use, though the drainer is its only
// producer in practice.
type RotatingWriter struct {
	path     string
	maxBytes int64
	maxFiles int

	mu   sync.Mutex
	f    *os.File
	size int64

	writes       atomic.Uint64
	rotations    atomic.Uint64
	bytesWritten atomic.Uint64
}

// NewRotatingWriter opens (or appends to) path. maxBytes <= 0 defaults to
// 64 MiB; maxFiles <= 0 defaults to 4 rotated files kept beside the
// active one.
func NewRotatingWriter(path string, maxBytes int64, maxFiles int) (*RotatingWriter, error) {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	if maxFiles <= 0 {
		maxFiles = 4
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("audit: stat %s: %w", path, err)
	}
	return &RotatingWriter{
		path:     filepath.Clean(path),
		maxBytes: maxBytes,
		maxFiles: maxFiles,
		f:        f,
		size:     st.Size(),
	}, nil
}

// Write appends one drain burst, rotating first if the burst would push
// the active file past MaxBytes (an oversized single burst still lands
// whole — bounding memory, not truncating records).
func (w *RotatingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.size > 0 && w.size+int64(len(p)) > w.maxBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	w.writes.Add(1)
	w.bytesWritten.Add(uint64(n))
	return n, err
}

// rotateLocked shifts <path>.N → <path>.N+1, drops the oldest, moves the
// active file to <path>.1, and opens a fresh active file.
func (w *RotatingWriter) rotateLocked() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("audit: rotate close: %w", err)
	}
	os.Remove(fmt.Sprintf("%s.%d", w.path, w.maxFiles))
	for i := w.maxFiles - 1; i >= 1; i-- {
		from := fmt.Sprintf("%s.%d", w.path, i)
		if _, err := os.Stat(from); err == nil {
			os.Rename(from, fmt.Sprintf("%s.%d", w.path, i+1))
		}
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		return fmt.Errorf("audit: rotate rename: %w", err)
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("audit: rotate reopen: %w", err)
	}
	w.f = f
	w.size = 0
	w.rotations.Add(1)
	return nil
}

// Close closes the active file.
func (w *RotatingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Rotations counts completed rotations.
func (w *RotatingWriter) Rotations() uint64 { return w.rotations.Load() }

// RegisterMetrics attaches the sink's write and rotation counters to a
// registry (called by Log.RegisterMetrics when the log writes to one).
func (w *RotatingWriter) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("bp_audit_file_writes_total", "Drain bursts written to the audit file.", w.writes.Load)
	r.CounterFunc("bp_audit_file_rotations_total", "Audit file size rotations completed.", w.rotations.Load)
	r.CounterFunc("bp_audit_file_bytes_total", "Bytes written to the audit file across rotations.", w.bytesWritten.Load)
}
