package audit

import (
	"io"
	"testing"

	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
)

// BenchmarkRecord measures the hot-path cost charged to the enforcement
// pipeline: one stripe append, no JSON. The stats-only configuration keeps
// the background drainer allocation-free so the number reflects sustained
// recording, not a one-shot burst.
func BenchmarkRecord(b *testing.B) {
	l := NewWithConfig(Config{})
	defer l.Close()
	pkt := samplePacket()
	res := enforcer.Result{Verdict: policy.VerdictAllow}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Record(pkt, res)
	}
	b.StopTimer()
	st := l.Stats()
	b.ReportMetric(float64(st.Dropped)/float64(b.N), "dropped/op")
}

// BenchmarkRecordBatch is the per-packet cost when the batched gateway
// drain charges the audit pipeline once per 64-packet burst.
func BenchmarkRecordBatch(b *testing.B) {
	l := NewWithConfig(Config{})
	defer l.Close()
	pkts := make([]*ipv4.Packet, 64)
	res := make([]enforcer.Result, 64)
	for i := range pkts {
		pkts[i] = samplePacket()
		res[i] = enforcer.Result{Verdict: policy.VerdictAllow}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(pkts) {
		l.RecordBatch(pkts, res)
	}
	b.StopTimer()
	st := l.Stats()
	b.ReportMetric(float64(st.Dropped)/float64(b.N), "dropped/op")
}

// BenchmarkRecordDrainJSON is the full sustained pipeline — stripe append
// plus the background drainer JSON-encoding every entry to a discarded
// writer. This is the number to compare against the old synchronous
// mutex+encode Record.
func BenchmarkRecordDrainJSON(b *testing.B) {
	l := NewWithConfig(Config{Writer: io.Discard})
	defer l.Close()
	pkt := samplePacket()
	res := enforcer.Result{Verdict: policy.VerdictAllow}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Record(pkt, res)
	}
	b.StopTimer()
	if err := l.Flush(); err != nil {
		b.Fatal(err)
	}
	// Under saturation the bounded queue sheds load by design; surface how
	// much of it this run kept.
	st := l.Stats()
	b.ReportMetric(float64(st.Dropped)/float64(b.N), "dropped/op")
}

// BenchmarkRecordParallel drives Record from every core against one log —
// the stripe layout must keep producers from serializing.
func BenchmarkRecordParallel(b *testing.B) {
	l := NewWithConfig(Config{})
	defer l.Close()
	res := enforcer.Result{Verdict: policy.VerdictAllow}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		pkt := samplePacket()
		for pb.Next() {
			l.Record(pkt, res)
		}
	})
}
