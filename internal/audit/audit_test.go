package audit

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
)

func samplePacket() *ipv4.Packet {
	return &ipv4.Packet{
		Header: ipv4.Header{
			TTL: 64, Protocol: ipv4.ProtoTCP,
			Src: netip.MustParseAddr("10.66.0.2"),
			Dst: netip.MustParseAddr("203.0.113.7"),
		},
		Payload: make([]byte, 42),
	}
}

func dropResult() enforcer.Result {
	var h dex.TruncatedHash
	for i := range h {
		h[i] = 0xab
	}
	rule := policy.Rule{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}
	sig, _ := dex.ParseSignature("Lcom/flurry/sdk/Agent;->beacon()V")
	return enforcer.Result{
		Verdict: policy.VerdictDrop,
		Cause:   enforcer.DropPolicy,
		AppHash: h,
		Stack:   []dex.Signature{sig},
		Decision: &policy.Decision{
			Verdict: policy.VerdictDrop,
			Rule:    &rule,
			Reason:  "deny rule matched",
		},
	}
}

func TestRecordAndTail(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, 10)
	e := l.Record(samplePacket(), dropResult())
	if e.Seq != 1 || e.Verdict != "drop" || e.Cause != "policy" {
		t.Fatalf("entry = %+v", e)
	}
	if e.App == "" || len(e.Stack) != 1 || !strings.Contains(e.Rule, "com/flurry") {
		t.Fatalf("entry context = %+v", e)
	}
	if e.PayloadBytes != 42 {
		t.Fatalf("payload bytes = %d", e.PayloadBytes)
	}
	// Allow entry.
	e2 := l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})
	if e2.Seq != 2 || e2.Verdict != "allow" || e2.Cause != "" {
		t.Fatalf("allow entry = %+v", e2)
	}
	tail := l.Tail()
	if len(tail) != 2 || tail[0].Seq != 1 {
		t.Fatalf("tail = %+v", tail)
	}
	if l.Err() != nil {
		t.Fatal(l.Err())
	}

	// JSON lines round trip.
	entries, err := ReadEntries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Cause != "policy" {
		t.Fatalf("parsed = %+v", entries)
	}
	if entries[0].SrcAddr() != netip.MustParseAddr("10.66.0.2") {
		t.Fatal("src addr lost")
	}
}

func TestTailBounded(t *testing.T) {
	l := New(nil, 3)
	for i := 0; i < 10; i++ {
		l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})
	}
	tail := l.Tail()
	if len(tail) != 3 {
		t.Fatalf("tail len = %d", len(tail))
	}
	if tail[0].Seq != 8 || tail[2].Seq != 10 {
		t.Fatalf("tail seqs = %d..%d", tail[0].Seq, tail[2].Seq)
	}
}

func TestDropsByApp(t *testing.T) {
	l := New(nil, 0)
	res := dropResult()
	l.Record(samplePacket(), res)
	l.Record(samplePacket(), res)
	l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})
	drops := l.DropsByApp()
	if len(drops) != 1 {
		t.Fatalf("drops = %v", drops)
	}
	for _, v := range drops {
		if v != 2 {
			t.Fatalf("count = %d", v)
		}
	}
}

func TestReadEntriesErrors(t *testing.T) {
	if _, err := ReadEntries(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	entries, err := ReadEntries(strings.NewReader(""))
	if err != nil || len(entries) != 0 {
		t.Errorf("empty stream: %v %v", entries, err)
	}
}

func TestMalformedSrcAddr(t *testing.T) {
	e := Entry{Src: "garbage"}
	if e.SrcAddr().IsValid() {
		t.Error("malformed address parsed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "disk full" }

func TestWriteErrorRecorded(t *testing.T) {
	l := New(failWriter{}, 0)
	l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})
	if l.Err() == nil {
		t.Fatal("write error not recorded")
	}
}
