package audit

import (
	"bytes"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
)

func samplePacket() *ipv4.Packet {
	return &ipv4.Packet{
		Header: ipv4.Header{
			TTL: 64, Protocol: ipv4.ProtoTCP,
			Src: netip.MustParseAddr("10.66.0.2"),
			Dst: netip.MustParseAddr("203.0.113.7"),
		},
		Payload: make([]byte, 42),
	}
}

func dropResult() enforcer.Result {
	var h dex.TruncatedHash
	for i := range h {
		h[i] = 0xab
	}
	rule := policy.Rule{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}
	sig, _ := dex.ParseSignature("Lcom/flurry/sdk/Agent;->beacon()V")
	return enforcer.Result{
		Verdict: policy.VerdictDrop,
		Cause:   enforcer.DropPolicy,
		AppHash: h,
		Stack:   []dex.Signature{sig},
		Decision: &policy.Decision{
			Verdict: policy.VerdictDrop,
			Rule:    &rule,
			Reason:  "deny rule matched",
		},
	}
}

func TestRecordAndTail(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, 10)
	defer l.Close()
	l.Record(samplePacket(), dropResult())
	l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})

	tail := l.Tail() // flushes
	if len(tail) != 2 || tail[0].Seq != 1 || tail[1].Seq != 2 {
		t.Fatalf("tail = %+v", tail)
	}
	e := tail[0]
	if e.Verdict != "drop" || e.Cause != "policy" {
		t.Fatalf("entry = %+v", e)
	}
	if e.App == "" || len(e.Stack) != 1 || !strings.Contains(e.Rule, "com/flurry") {
		t.Fatalf("entry context = %+v", e)
	}
	if e.PayloadBytes != 42 {
		t.Fatalf("payload bytes = %d", e.PayloadBytes)
	}
	if tail[1].Verdict != "allow" || tail[1].Cause != "" {
		t.Fatalf("allow entry = %+v", tail[1])
	}
	if l.Err() != nil {
		t.Fatal(l.Err())
	}

	// JSON lines round trip.
	entries, err := ReadEntries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Cause != "policy" {
		t.Fatalf("parsed = %+v", entries)
	}
	if entries[0].SrcAddr() != netip.MustParseAddr("10.66.0.2") {
		t.Fatal("src addr lost")
	}
}

func TestTailBounded(t *testing.T) {
	l := New(nil, 3)
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})
	}
	tail := l.Tail()
	if len(tail) != 3 {
		t.Fatalf("tail len = %d", len(tail))
	}
	if tail[0].Seq != 8 || tail[2].Seq != 10 {
		t.Fatalf("tail seqs = %d..%d", tail[0].Seq, tail[2].Seq)
	}
}

// TestTailBoundedAcrossDrains drives the tail across several drain bursts
// (every drain trims to tailCap) and checks the bound holds when entries
// arrive in multiple sweeps rather than one.
func TestTailBoundedAcrossDrains(t *testing.T) {
	l := New(nil, 5)
	defer l.Close()
	for round := 0; round < 4; round++ {
		for i := 0; i < 7; i++ {
			l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	tail := l.Tail()
	if len(tail) != 5 {
		t.Fatalf("tail len = %d", len(tail))
	}
	if tail[4].Seq != 28 || tail[0].Seq != 24 {
		t.Fatalf("tail seqs = %d..%d", tail[0].Seq, tail[4].Seq)
	}
}

func TestDropsByApp(t *testing.T) {
	l := New(nil, 0)
	defer l.Close()
	res := dropResult()
	l.Record(samplePacket(), res)
	l.Record(samplePacket(), res)
	l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})
	drops := l.DropsByApp()
	if len(drops) != 1 {
		t.Fatalf("drops = %v", drops)
	}
	for _, v := range drops {
		if v != 2 {
			t.Fatalf("count = %d", v)
		}
	}
}

func TestReadEntriesErrors(t *testing.T) {
	if _, err := ReadEntries(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	entries, err := ReadEntries(strings.NewReader(""))
	if err != nil || len(entries) != 0 {
		t.Errorf("empty stream: %v %v", entries, err)
	}
}

func TestMalformedSrcAddr(t *testing.T) {
	e := Entry{Src: "garbage"}
	if e.SrcAddr().IsValid() {
		t.Error("malformed address parsed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "disk full" }

// TestWriteErrorSticky locks in the failure mode the async rewrite must
// keep: the first write error is recorded, survives later successful
// drains, and is what Flush and Close report.
func TestWriteErrorSticky(t *testing.T) {
	l := New(failWriter{}, 0)
	l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})
	if err := l.Flush(); err == nil {
		t.Fatal("write error not surfaced by Flush")
	}
	first := l.Err()
	if first == nil || !strings.Contains(first.Error(), "disk full") {
		t.Fatalf("Err() = %v", first)
	}
	// More records and drains do not clear or replace the sticky error.
	l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})
	l.Flush()
	if l.Err() != first {
		t.Fatalf("sticky error replaced: %v", l.Err())
	}
	if err := l.Close(); err != first {
		t.Fatalf("Close() = %v, want sticky error", err)
	}
}

// TestConcurrentRecord hammers Record and RecordBatch from many goroutines
// (run with -race in CI): every accepted entry must surface exactly once
// after a flush, in sequence order, with no tearing.
func TestConcurrentRecord(t *testing.T) {
	var buf bytes.Buffer
	l := NewWithConfig(Config{Writer: &buf, QueueCap: 1 << 16})
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pkt := samplePacket()
			pkt.Header.Dst = netip.AddrFrom4([4]byte{198, 18, byte(w), 1})
			res := []enforcer.Result{{Verdict: policy.VerdictAllow}}
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					l.Record(pkt, res[0])
				} else {
					l.RecordBatch([]*ipv4.Packet{pkt}, res)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Recorded != workers*perWorker || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	entries, err := ReadEntries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != workers*perWorker {
		t.Fatalf("wrote %d entries, want %d", len(entries), workers*perWorker)
	}
	// Exactly-once delivery: every sequence number 1..N appears exactly
	// once. Ordering across drain bursts is best-effort (see the package
	// comment), so only uniqueness and completeness are asserted.
	seen := make(map[uint64]bool, len(entries))
	for _, e := range entries {
		if seen[e.Seq] {
			t.Fatalf("seq %d written twice", e.Seq)
		}
		if e.Seq == 0 || e.Seq > uint64(workers*perWorker) {
			t.Fatalf("seq %d out of range", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// stallWriter blocks the drainer inside its first Write until released,
// so backpressure tests can fill the bounded queue deterministically:
// once `started` fires, the single drainer goroutine is provably parked
// in Write and cannot free capacity until `release` is closed.
type stallWriter struct {
	started     chan struct{}
	release     chan struct{}
	startOnce   sync.Once
	releaseOnce sync.Once

	mu  sync.Mutex
	buf bytes.Buffer
}

func newStallWriter() *stallWriter {
	return &stallWriter{started: make(chan struct{}), release: make(chan struct{})}
}

func (w *stallWriter) Write(p []byte) (int, error) {
	w.startOnce.Do(func() { close(w.started) })
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// Release unparks the drainer; safe to call more than once.
func (w *stallWriter) Release() { w.releaseOnce.Do(func() { close(w.release) }) }

// stallDrainer records one entry and waits until the drainer is parked in
// the writer: from then on pending capacity can only shrink via drops.
func stallDrainer(t *testing.T, l *Log, w *stallWriter) {
	t.Helper()
	l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})
	select {
	case <-w.started:
	case <-time.After(5 * time.Second):
		t.Fatal("drainer never reached the writer")
	}
}

// TestBackpressureCountsDrops fills the bounded queue while the drainer is
// stalled in a blocked Write and checks overflow is counted, then that
// capacity recovers once the drainer resumes.
func TestBackpressureCountsDrops(t *testing.T) {
	w := newStallWriter()
	l := NewWithConfig(Config{Writer: w, QueueCap: 64, BatchSize: 1, Stripes: 1})
	defer l.Close()
	defer w.Release()     // never leave the drainer parked if an assert fails
	stallDrainer(t, l, w) // 1 recorded + swept, drainer parked, queue empty
	pkt := samplePacket()
	for i := 0; i < 74; i++ {
		l.Record(pkt, enforcer.Result{Verdict: policy.VerdictAllow})
	}
	st := l.Stats()
	if st.Recorded != 65 || st.Dropped != 10 {
		t.Fatalf("stats = %+v", st)
	}
	w.Release()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Record(pkt, enforcer.Result{Verdict: policy.VerdictAllow})
	if st = l.Stats(); st.Recorded != 66 {
		t.Fatalf("queue did not recover after drain: %+v", st)
	}
}

// TestRecordSpillsAcrossStripes: QueueCap bounds the whole queue, not one
// stripe's share — a single flow (one home stripe of 16) must be able to
// fill every stripe before anything is shed. The drainer is stalled so
// the fill and the overflow are deterministic.
func TestRecordSpillsAcrossStripes(t *testing.T) {
	w := newStallWriter()
	l := NewWithConfig(Config{Writer: w, QueueCap: 64, BatchSize: 1, Stripes: 4}) // 16 per stripe
	defer l.Close()
	defer w.Release()
	stallDrainer(t, l, w)
	pkt := samplePacket()
	for i := 0; i < 64; i++ {
		l.Record(pkt, enforcer.Result{Verdict: policy.VerdictAllow})
	}
	if st := l.Stats(); st.Recorded != 65 || st.Dropped != 0 {
		t.Fatalf("single-flow fill shed early: %+v", st)
	}
	l.Record(pkt, enforcer.Result{Verdict: policy.VerdictAllow})
	if st := l.Stats(); st.Dropped != 1 {
		t.Fatalf("overflow past QueueCap not counted: %+v", st)
	}
	// Resume the drainer: every accepted entry surfaces.
	w.Release()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Drained != 65 || st.Pending != 0 {
		t.Fatalf("post-release stats = %+v", st)
	}
}

// TestRecordBatchSpillsAcrossStripes: a burst larger than one stripe's
// share lands whole as long as total capacity allows.
func TestRecordBatchSpillsAcrossStripes(t *testing.T) {
	var buf bytes.Buffer
	l := NewWithConfig(Config{Writer: &buf, QueueCap: 64, BatchSize: 1 << 30, Stripes: 4})
	pkts := make([]*ipv4.Packet, 40) // 2.5 stripes' worth
	res := make([]enforcer.Result, 40)
	for i := range pkts {
		pkts[i] = samplePacket()
		res[i] = enforcer.Result{Verdict: policy.VerdictAllow}
	}
	l.RecordBatch(pkts, res)
	if st := l.Stats(); st.Recorded != 40 || st.Dropped != 0 {
		t.Fatalf("burst shed despite free capacity: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadEntries(&buf)
	if err != nil || len(entries) != 40 {
		t.Fatalf("burst wrote %d entries (%v), want 40", len(entries), err)
	}
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
}

// TestRecordRacingCloseNeverStrands: every record concurrent with Close
// must end up either drained or counted as dropped — Pending must settle
// at zero (the closed check runs under the stripe lock, ahead of the final
// sweep).
func TestRecordRacingCloseNeverStrands(t *testing.T) {
	for round := 0; round < 20; round++ {
		l := NewWithConfig(Config{QueueCap: 1 << 12})
		pkt := samplePacket()
		start := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			<-start
			for i := 0; i < 200; i++ {
				l.Record(pkt, enforcer.Result{Verdict: policy.VerdictAllow})
			}
		}()
		close(start)
		l.Close()
		<-done
		st := l.Stats()
		if st.Recorded+st.Dropped != 200 {
			t.Fatalf("round %d: recorded %d + dropped %d != 200", round, st.Recorded, st.Dropped)
		}
		if st.Pending != 0 {
			t.Fatalf("round %d: %d entries stranded after Close: %+v", round, st.Pending, st)
		}
	}
}

// TestBackgroundDrainerFlushesOnBatch verifies the drainer runs without
// any explicit Flush once a stripe crosses the batch threshold — the
// "Record is off the JSON-encode critical path" half of the design.
func TestBackgroundDrainerFlushesOnBatch(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := NewWithConfig(Config{Writer: w, BatchSize: 8, Stripes: 1})
	defer l.Close()
	pkt := samplePacket()
	for i := 0; i < 8; i++ {
		l.Record(pkt, enforcer.Result{Verdict: policy.VerdictAllow})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := buf.Len()
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drainer never wrote without an explicit flush")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	entries, err := ReadEntries(bytes.NewReader(buf.Bytes()))
	mu.Unlock()
	if err != nil || len(entries) != 8 {
		t.Fatalf("background drain wrote %d entries (%v), want 8", len(entries), err)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestFlushOnClose: entries recorded but never flushed must reach the
// writer when the log is closed.
func TestFlushOnClose(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, 0)
	for i := 0; i < 5; i++ {
		l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadEntries(&buf)
	if err != nil || len(entries) != 5 {
		t.Fatalf("close flushed %d entries (%v), want 5", len(entries), err)
	}
	// Records after close are counted as drops, not silently lost.
	l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})
	if st := l.Stats(); st.Dropped != 1 {
		t.Fatalf("post-close record not counted: %+v", st)
	}
	// Close is idempotent, Flush after close does not hang.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestRecordBatchSingleCharge checks a whole burst lands with one seq
// range and per-burst ordering intact.
func TestRecordBatchSingleCharge(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, 0)
	pkts := make([]*ipv4.Packet, 16)
	res := make([]enforcer.Result, 16)
	for i := range pkts {
		pkts[i] = samplePacket()
		res[i] = enforcer.Result{Verdict: policy.VerdictAllow}
	}
	l.RecordBatch(pkts, res)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadEntries(&buf)
	if err != nil || len(entries) != 16 {
		t.Fatalf("batch wrote %d entries (%v)", len(entries), err)
	}
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
}

// TestNilLogIsNoop keeps the documented contract that a nil *Log is a
// valid sink.
func TestNilLogIsNoop(t *testing.T) {
	var l *Log
	l.Record(samplePacket(), enforcer.Result{Verdict: policy.VerdictAllow})
	l.RecordBatch(nil, nil)
	if l.Tail() != nil || l.DropsByApp() != nil || l.Err() != nil {
		t.Fatal("nil log returned data")
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Recorded != 0 {
		t.Fatal("nil log has stats")
	}
}
