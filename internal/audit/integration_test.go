package audit

import (
	"bytes"
	"fmt"
	"net/netip"
	"testing"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/tag"
	"borderpatrol/internal/transport"
)

// buildAuditedEnforcer assembles an enforcer with a flow cache and this
// log as its audit sink, plus a benign tagged packet, at the §VI-B1
// validation rule scale.
func buildAuditedEnforcer(tb testing.TB, l *Log, cached bool) (*enforcer.Enforcer, *ipv4.Packet) {
	tb.Helper()
	apk := &dex.APK{
		PackageName: "com.corp.app",
		VersionCode: 1,
		Dexes: []*dex.File{{Classes: []dex.ClassDef{{
			Package: "com/corp/app",
			Name:    "Main",
			Methods: []dex.MethodDef{
				{Name: "sync", Proto: "()V", File: "M.java", StartLine: 1, EndLine: 10},
				{Name: "push", Proto: "()V", File: "M.java", StartLine: 11, EndLine: 20},
			},
		}}}},
	}
	db := analyzer.NewDatabase()
	if err := db.Add(apk); err != nil {
		tb.Fatal(err)
	}
	rules := make([]policy.Rule, 0, 1050)
	for i := 0; i < 1050; i++ {
		rules = append(rules, policy.Rule{
			Action: policy.Deny,
			Level:  policy.LevelLibrary,
			Target: fmt.Sprintf("com/blocked/lib%04d", i),
		})
	}
	eng, err := policy.NewEngine(rules, policy.VerdictAllow)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := enforcer.Config{Audit: l}
	if cached {
		cfg.Flows = enforcer.NewFlowCache(flowtable.Config{Capacity: 65536})
	}
	e := enforcer.New(cfg, db, eng)

	tg := tag.Tag{AppHash: apk.Truncated(), Indexes: []uint32{0, 1}}
	payload, err := tg.Encode()
	if err != nil {
		tb.Fatal(err)
	}
	seg := transport.TCPSegment{
		SrcPort: 40001, DstPort: 443, Seq: 1,
		Flags: transport.FlagPSH | transport.FlagACK, Window: 65535,
		Payload: []byte("POST /x HTTP/1.1\r\n\r\n"),
	}
	pkt := &ipv4.Packet{
		Header: ipv4.Header{
			TTL:      64,
			Protocol: ipv4.ProtoTCP,
			Src:      netip.MustParseAddr("10.66.0.2"),
			Dst:      netip.MustParseAddr("93.184.216.34"),
		},
		Payload: seg.Marshal(),
	}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: payload})
	return e, pkt
}

// TestEnforcerRecordsThroughSink: every Process lands one entry with the
// decision's full context once flushed.
func TestEnforcerRecordsThroughSink(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, 16)
	defer l.Close()
	e, pkt := buildAuditedEnforcer(t, l, true)

	for i := 0; i < 3; i++ { // miss, then cache hits — all audited
		if res := e.Process(pkt); res.Verdict != policy.VerdictAllow {
			t.Fatal("benign packet dropped")
		}
	}
	tail := l.Tail()
	if len(tail) != 3 {
		t.Fatalf("tail = %d entries, want 3", len(tail))
	}
	for i, entry := range tail {
		if entry.Verdict != "allow" || entry.App == "" || entry.Src != "10.66.0.2" {
			t.Fatalf("entry %d = %+v", i, entry)
		}
	}
	if st := l.Stats(); st.Recorded != 3 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEnforcerBatchRecordsOnce: a ProcessBatch burst reaches the sink as
// one RecordBatch, entries aligned with the batch order.
func TestEnforcerBatchRecordsOnce(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, 0)
	defer l.Close()
	e, pkt := buildAuditedEnforcer(t, l, true)

	batch := make([]*ipv4.Packet, 32)
	for i := range batch {
		batch[i] = pkt
	}
	out := e.ProcessBatch(batch, nil)
	if len(out) != 32 {
		t.Fatalf("results = %d", len(out))
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadEntries(&buf)
	if err != nil || len(entries) != 32 {
		t.Fatalf("audited %d entries (%v), want 32", len(entries), err)
	}
	for i, entry := range entries {
		if entry.Seq != uint64(i+1) || entry.Verdict != "allow" {
			t.Fatalf("entry %d = %+v", i, entry)
		}
	}
}

// BenchmarkProcessFlowHitAudited is the acceptance benchmark: audited
// per-packet enforcement on the cache-hit path must stay allocation-free,
// with the JSON encode entirely off this path (the stats-only drain keeps
// the background side allocation-free too, so the number isolates what
// enforcement itself pays: one flow probe + one stripe append).
func BenchmarkProcessFlowHitAudited(b *testing.B) {
	l := NewWithConfig(Config{})
	defer l.Close()
	e, pkt := buildAuditedEnforcer(b, l, true)
	e.Process(pkt) // warm the flow
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := e.Process(pkt); res.Verdict != policy.VerdictAllow {
			b.Fatal("benign packet dropped")
		}
	}
}

// BenchmarkProcessBatchKeepAliveAudited: the batched equivalent — 64-pkt
// same-flow bursts with the audit cost charged once per burst.
func BenchmarkProcessBatchKeepAliveAudited(b *testing.B) {
	l := NewWithConfig(Config{})
	defer l.Close()
	e, pkt := buildAuditedEnforcer(b, l, true)
	batch := make([]*ipv4.Packet, 64)
	for i := range batch {
		batch[i] = pkt
	}
	var out []enforcer.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(batch) {
		out = e.ProcessBatch(batch, out)
		if out[0].Verdict != policy.VerdictAllow {
			b.Fatal("benign packet dropped")
		}
	}
}
