package trackers

import "testing"

func TestCatalogSizeAndDeterminism(t *testing.T) {
	a := Catalog()
	b := Catalog()
	if len(a) != CatalogSize {
		t.Fatalf("catalog has %d entries, want %d", len(a), CatalogSize)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("catalog not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCatalogSortedByPopularity(t *testing.T) {
	libs := Catalog()
	for i := 1; i < len(libs); i++ {
		if libs[i].Popularity > libs[i-1].Popularity {
			t.Fatalf("catalog not popularity-sorted at %d", i)
		}
	}
	if libs[0].Package != "com/flurry" {
		t.Fatalf("most popular library = %s, want com/flurry", libs[0].Package)
	}
}

func TestCatalogUniquePackages(t *testing.T) {
	seen := make(map[string]bool, CatalogSize)
	for _, l := range Catalog() {
		if seen[l.Package] {
			t.Fatalf("duplicate package %s", l.Package)
		}
		seen[l.Package] = true
		if l.Package == "" || l.Category == 0 {
			t.Fatalf("incomplete entry %+v", l)
		}
	}
}

func TestTopN(t *testing.T) {
	top := TopN(60)
	if len(top) != 60 {
		t.Fatalf("TopN(60) returned %d", len(top))
	}
	all := TopN(CatalogSize + 10)
	if len(all) != CatalogSize {
		t.Fatalf("TopN over-capacity returned %d", len(all))
	}
	pkgs := Packages(top)
	if len(pkgs) != 60 || pkgs[0] != top[0].Package {
		t.Fatal("Packages mismatch")
	}
}

func TestIndexMatch(t *testing.T) {
	idx := NewIndex(Catalog())
	cases := []struct {
		path string
		want string
		hit  bool
	}{
		{"com/flurry", "com/flurry", true},
		{"com/flurry/sdk", "com/flurry", true},
		{"com/flurry/sdk/deep/Nested", "com/flurry", true},
		{"com/flurryx/sdk", "", false},
		{"com/example/app", "", false},
		{"com/google/android/gms/analytics/internal", "com/google/android/gms/analytics", true},
		{"", "", false},
	}
	for _, tc := range cases {
		lib, ok := idx.Match(tc.path)
		if ok != tc.hit {
			t.Errorf("Match(%q) hit=%v, want %v", tc.path, ok, tc.hit)
			continue
		}
		if ok && lib.Package != tc.want {
			t.Errorf("Match(%q) = %s, want %s", tc.path, lib.Package, tc.want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Analytics.String() != "analytics" || Advertising.String() != "advertising" {
		t.Error("category names")
	}
	if Category(99).String() == "" {
		t.Error("unknown category must still render")
	}
}
