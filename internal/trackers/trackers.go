// Package trackers provides the deny-list substrate for the validation
// experiment (paper §VI-B1): a catalog of 1,050 third-party libraries known
// to exfiltrate sensitive information, standing in for the Li et al.
// (SANER'16) common-libraries dataset the paper uses. The catalog combines
// a curated head of well-known analytics/advertising package prefixes with
// a deterministic generated long tail, ranked by popularity so experiments
// can select "the 60 most popular libraries" exactly as the paper does.
package trackers

import (
	"fmt"
	"math/rand"
	"sort"
)

// Category classifies why a library is on the deny-list.
type Category int

// Categories of undesirable libraries.
const (
	// Analytics libraries collect usage telemetry.
	Analytics Category = iota + 1
	// Advertising libraries fetch and report ads.
	Advertising
	// SocialSDK libraries mix identity features with tracking.
	SocialSDK
	// CrashReporting libraries upload device state on faults.
	CrashReporting
	// Utility libraries bundle tracking side-channels.
	Utility
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Analytics:
		return "analytics"
	case Advertising:
		return "advertising"
	case SocialSDK:
		return "social-sdk"
	case CrashReporting:
		return "crash-reporting"
	case Utility:
		return "utility"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Library is one deny-list entry.
type Library struct {
	// Package is the Java package-path prefix ("com/flurry").
	Package string
	// Category is the library's tracking classification.
	Category Category
	// Popularity is a relative inclusion weight; higher means the library
	// appears in more apps (drives the experiment's top-60 sample).
	Popularity float64
}

// CatalogSize is the number of libraries in the full deny-list, matching
// the 1,050 libraries identified by Li et al. that the paper builds its
// validation policy from.
const CatalogSize = 1050

// curatedHead lists well-known tracking/advertising package prefixes; these
// anchor the popular end of the catalog (the names appear in the paper or
// are prominent in the ecosystem it samples).
var curatedHead = []Library{
	{Package: "com/flurry", Category: Analytics, Popularity: 1.00},
	{Package: "com/google/ads", Category: Advertising, Popularity: 0.98},
	{Package: "com/google/android/gms/analytics", Category: Analytics, Popularity: 0.96},
	{Package: "com/facebook/appevents", Category: SocialSDK, Popularity: 0.94},
	{Package: "com/crashlytics", Category: CrashReporting, Popularity: 0.92},
	{Package: "com/mixpanel", Category: Analytics, Popularity: 0.90},
	{Package: "com/appsflyer", Category: Analytics, Popularity: 0.88},
	{Package: "com/adjust/sdk", Category: Analytics, Popularity: 0.86},
	{Package: "com/mopub", Category: Advertising, Popularity: 0.84},
	{Package: "com/inmobi", Category: Advertising, Popularity: 0.82},
	{Package: "com/chartboost", Category: Advertising, Popularity: 0.80},
	{Package: "com/unity3d/ads", Category: Advertising, Popularity: 0.78},
	{Package: "com/applovin", Category: Advertising, Popularity: 0.76},
	{Package: "com/vungle", Category: Advertising, Popularity: 0.74},
	{Package: "com/tapjoy", Category: Advertising, Popularity: 0.72},
	{Package: "com/amplitude", Category: Analytics, Popularity: 0.70},
	{Package: "com/segment/analytics", Category: Analytics, Popularity: 0.68},
	{Package: "com/localytics", Category: Analytics, Popularity: 0.66},
	{Package: "com/kochava", Category: Analytics, Popularity: 0.64},
	{Package: "com/urbanairship", Category: Analytics, Popularity: 0.62},
	{Package: "io/branch", Category: Analytics, Popularity: 0.60},
	{Package: "com/comscore", Category: Analytics, Popularity: 0.58},
	{Package: "com/adcolony", Category: Advertising, Popularity: 0.56},
	{Package: "com/smaato", Category: Advertising, Popularity: 0.54},
	{Package: "com/millennialmedia", Category: Advertising, Popularity: 0.52},
	{Package: "com/startapp", Category: Advertising, Popularity: 0.50},
	{Package: "com/ironsource", Category: Advertising, Popularity: 0.48},
	{Package: "com/onesignal", Category: Analytics, Popularity: 0.46},
	{Package: "com/newrelic/agent", Category: CrashReporting, Popularity: 0.44},
	{Package: "com/bugsnag", Category: CrashReporting, Popularity: 0.42},
}

// Catalog builds the full deterministic 1,050-library deny-list: the
// curated head plus a generated Zipf-like long tail. The same seed always
// yields the identical catalog, so database keys and experiment samples are
// reproducible.
func Catalog() []Library {
	libs := make([]Library, 0, CatalogSize)
	libs = append(libs, curatedHead...)
	r := rand.New(rand.NewSource(1050))
	vendors := []string{"adnet", "metricx", "trackly", "quantify", "pingbase",
		"admax", "statsy", "beaconly", "telemetria", "insightful",
		"audiencehub", "growthkit", "funnelio", "attribix", "clickstream"}
	kinds := []Category{Analytics, Advertising, SocialSDK, CrashReporting, Utility}
	for i := len(libs); i < CatalogSize; i++ {
		vendor := vendors[r.Intn(len(vendors))]
		// Zipf-ish popularity tail under the curated head.
		rank := float64(i + 1)
		libs = append(libs, Library{
			Package:    fmt.Sprintf("com/%s/sdk%03d", vendor, i),
			Category:   kinds[r.Intn(len(kinds))],
			Popularity: 0.40 / rank * float64(CatalogSize) / 25,
		})
	}
	sort.SliceStable(libs, func(a, b int) bool { return libs[a].Popularity > libs[b].Popularity })
	return libs
}

// TopN returns the n most popular libraries from the catalog.
func TopN(n int) []Library {
	libs := Catalog()
	if n > len(libs) {
		n = len(libs)
	}
	return libs[:n]
}

// Packages returns just the package prefixes of the given libraries.
func Packages(libs []Library) []string {
	out := make([]string, len(libs))
	for i, l := range libs {
		out[i] = l.Package
	}
	return out
}

// Index is a fast membership structure over the catalog for classifying
// observed stack frames.
type Index struct {
	byPrefix map[string]Library
}

// NewIndex builds a lookup index over the given libraries.
func NewIndex(libs []Library) *Index {
	idx := &Index{byPrefix: make(map[string]Library, len(libs))}
	for _, l := range libs {
		idx.byPrefix[l.Package] = l
	}
	return idx
}

// Match finds the deny-listed library containing the given Java package
// path, if any, by walking prefix segments.
func (idx *Index) Match(pkgPath string) (Library, bool) {
	for end := len(pkgPath); end > 0; {
		if lib, ok := idx.byPrefix[pkgPath[:end]]; ok {
			return lib, true
		}
		// Shrink to the previous path segment.
		next := -1
		for i := end - 1; i >= 0; i-- {
			if pkgPath[i] == '/' {
				next = i
				break
			}
		}
		if next < 0 {
			break
		}
		end = next
	}
	return Library{}, false
}
