package android

import (
	"errors"
	"net/netip"
	"testing"

	"borderpatrol/internal/dex"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/netstack"
)

func testAPK() *dex.APK {
	return &dex.APK{
		PackageName: "com.corp.files",
		Label:       "CorpFiles",
		Category:    "BUSINESS",
		VersionCode: 1,
		Dexes: []*dex.File{{
			Classes: []dex.ClassDef{
				{
					Package: "com/corp/files",
					Name:    "SyncEngine",
					Methods: []dex.MethodDef{
						{Name: "download", Proto: "(Ljava/lang/String;)V", File: "SyncEngine.java", StartLine: 10, EndLine: 40},
						{Name: "upload", Proto: "(Ljava/lang/String;)V", File: "SyncEngine.java", StartLine: 50, EndLine: 90},
					},
				},
				{
					Package: "com/flurry/sdk",
					Name:    "Agent",
					Methods: []dex.MethodDef{
						{Name: "beacon", Proto: "()V", File: "Agent.java", StartLine: 5, EndLine: 25},
					},
				},
			},
		}},
	}
}

func endpoint() netip.AddrPort {
	return netip.AddrPortFrom(netip.MustParseAddr("93.184.216.34"), 443)
}

func testFunctionalities() []Functionality {
	return []Functionality{
		{
			Name:      "download",
			Desirable: true,
			CallPath: []dex.Frame{
				{Class: "com/corp/files/SyncEngine", Method: "download", File: "SyncEngine.java", Line: 15},
			},
			Op:     NetOp{Endpoint: endpoint(), Host: "files.corp", Method: "GET", Path: "/doc"},
			Weight: 1,
		},
		{
			Name:      "upload",
			Desirable: false,
			CallPath: []dex.Frame{
				{Class: "com/corp/files/SyncEngine", Method: "upload", File: "SyncEngine.java", Line: 60},
			},
			Op:     NetOp{Endpoint: endpoint(), Host: "files.corp", Method: "PUT", Path: "/doc", PayloadBytes: 2048},
			Weight: 1,
		},
		{
			Name:      "analytics",
			Desirable: false,
			CallPath: []dex.Frame{
				{Class: "com/flurry/sdk/Agent", Method: "beacon", File: "Agent.java", Line: 10},
			},
			Op:     NetOp{Endpoint: endpoint(), Host: "data.flurry.com", Method: "POST", Path: "/aap.do", PayloadBytes: 256},
			Weight: 1,
		},
	}
}

func newTestDevice() *Device {
	return NewDevice(Config{
		Addr:            netip.MustParseAddr("10.0.0.5"),
		Kernel:          kernel.Config{AllowUnprivilegedIPOptions: true},
		XposedInstalled: true,
	})
}

func TestThreadStackSemantics(t *testing.T) {
	th := NewThread()
	th.Push(dex.Frame{Class: "a/A", Method: "outer"})
	th.Push(dex.Frame{Class: "a/A", Method: "inner"})
	st := th.GetStackTrace()
	if len(st) != 2 || st[0].Method != "inner" || st[1].Method != "outer" {
		t.Fatalf("getStackTrace order wrong: %v", st)
	}
	th.Pop()
	if th.Depth() != 1 {
		t.Fatalf("depth = %d", th.Depth())
	}
	th.PopN(10) // over-pop is clamped
	if th.Depth() != 0 {
		t.Fatalf("depth = %d after over-pop", th.Depth())
	}
}

func TestInstallAndInvoke(t *testing.T) {
	d := newTestDevice()
	app, err := d.InstallApp(testAPK(), testFunctionalities(), ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	if app.UID < firstAppUID {
		t.Fatalf("uid = %d", app.UID)
	}
	res, err := app.Invoke("download")
	if err != nil {
		t.Fatal(err)
	}
	// One connection: SYN, one HTTP request, FIN.
	if len(res.Packets) != 3 {
		t.Fatalf("got %d packets, want 3 (SYN + request + FIN)", len(res.Packets))
	}
	for i, pkt := range res.Packets {
		if pkt.Header.Dst != endpoint().Addr() {
			t.Fatalf("packet %d has wrong destination", i)
		}
	}
	// Without a Context Manager module, packets are untagged.
	if res.Tagged {
		t.Fatal("unprovisioned app produced tagged packet")
	}
	// Stack must be balanced after invocation.
	if app.Thread().Depth() != 0 {
		t.Fatalf("thread depth %d after invoke", app.Thread().Depth())
	}
}

func TestInvokeUnknownFunctionality(t *testing.T) {
	d := newTestDevice()
	app, err := d.InstallApp(testAPK(), testFunctionalities(), ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Invoke("does-not-exist"); !errors.Is(err, ErrUnknownFunctionality) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateInstallRejected(t *testing.T) {
	d := newTestDevice()
	if _, err := d.InstallApp(testAPK(), nil, ProfileWork); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InstallApp(testAPK(), nil, ProfileWork); !errors.Is(err, ErrAppInstalled) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateFunctionalityRejected(t *testing.T) {
	d := newTestDevice()
	funcs := []Functionality{{Name: "x"}, {Name: "x"}}
	if _, err := d.InstallApp(testAPK(), funcs, ProfileWork); err == nil {
		t.Fatal("duplicate functionality accepted")
	}
}

type recordingModule struct {
	name   string
	loaded []string
	fail   bool
}

func (m *recordingModule) Name() string { return m.name }
func (m *recordingModule) HandleLoadPackage(app *App) error {
	if m.fail {
		return errors.New("boom")
	}
	m.loaded = append(m.loaded, app.APK.PackageName)
	return nil
}

func TestModuleLoadPackageLifecycle(t *testing.T) {
	d := newTestDevice()
	m := &recordingModule{name: "recorder"}
	if err := d.LoadModule(m); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InstallApp(testAPK(), testFunctionalities(), ProfileWork); err != nil {
		t.Fatal(err)
	}
	if len(m.loaded) != 1 || m.loaded[0] != "com.corp.files" {
		t.Fatalf("loaded = %v", m.loaded)
	}
	// Personal-profile apps are invisible to modules.
	personal := testAPK()
	personal.PackageName = "com.games.fun"
	personal.Invalidate()
	if _, err := d.InstallApp(personal, nil, ProfilePersonal); err != nil {
		t.Fatal(err)
	}
	if len(m.loaded) != 1 {
		t.Fatalf("module saw personal app: %v", m.loaded)
	}
}

func TestLateModuleSeesInstalledApps(t *testing.T) {
	d := newTestDevice()
	if _, err := d.InstallApp(testAPK(), nil, ProfileWork); err != nil {
		t.Fatal(err)
	}
	m := &recordingModule{name: "late"}
	if err := d.LoadModule(m); err != nil {
		t.Fatal(err)
	}
	if len(m.loaded) != 1 {
		t.Fatalf("late module missed installed app: %v", m.loaded)
	}
}

func TestStockImageRejectsModules(t *testing.T) {
	d := NewDevice(Config{Addr: netip.MustParseAddr("10.0.0.9")})
	if err := d.LoadModule(&recordingModule{name: "x"}); !errors.Is(err, ErrNoXposed) {
		t.Fatalf("err = %v", err)
	}
}

func TestModuleFailurePropagates(t *testing.T) {
	d := newTestDevice()
	if err := d.LoadModule(&recordingModule{name: "bad", fail: true}); err != nil {
		t.Fatal(err) // loading an empty device succeeds
	}
	if _, err := d.InstallApp(testAPK(), nil, ProfileWork); err == nil {
		t.Fatal("failing module did not block install")
	}
}

func TestHookSeesAppStackAtConnectTime(t *testing.T) {
	// A connect hook (like the Context Manager) can look up the calling app
	// by uid and snapshot its thread: the stack must contain the
	// functionality's call path plus the java.net epilogue at capture time.
	d := newTestDevice()
	app, err := d.InstallApp(testAPK(), testFunctionalities(), ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	var captured []dex.Frame
	d.Stack().RegisterConnectHook(func(sock *netstack.JavaSocket) {
		if a, ok := d.AppByUID(sock.OwnerUID); ok {
			captured = a.Thread().GetStackTrace()
		}
	})
	if _, err := app.Invoke("upload"); err != nil {
		t.Fatal(err)
	}
	if len(captured) == 0 {
		t.Fatal("hook captured nothing")
	}
	// Innermost frames are the java.net epilogue.
	if captured[0].Class != "java/net/AbstractPlainSocketImpl" {
		t.Fatalf("innermost frame = %v", captured[0])
	}
	// The app's upload method must be on the stack.
	found := false
	for _, f := range captured {
		if f.Class == "com/corp/files/SyncEngine" && f.Method == "upload" {
			found = true
		}
	}
	if !found {
		t.Fatalf("upload frame missing from %v", captured)
	}
	// Outermost frame is the zygote prologue.
	if captured[len(captured)-1].Class != "com/android/internal/os/ZygoteInit" {
		t.Fatalf("outermost frame = %v", captured[len(captured)-1])
	}
}

func TestKeepAliveMultipleRequests(t *testing.T) {
	d := newTestDevice()
	funcs := []Functionality{{
		Name:     "sync",
		CallPath: []dex.Frame{{Class: "com/corp/files/SyncEngine", Method: "download", File: "SyncEngine.java", Line: 15}},
		Op:       NetOp{Endpoint: endpoint(), Requests: 5},
	}}
	app, err := d.InstallApp(testAPK(), funcs, ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Invoke("sync")
	if err != nil {
		t.Fatal(err)
	}
	// One TCP connection carries the whole train: SYN + 5 requests + FIN.
	if len(res.Packets) != 7 {
		t.Fatalf("keep-alive sent %d packets, want 7 (SYN + 5 + FIN)", len(res.Packets))
	}
	if len(res.SocketFDs) != 1 {
		t.Fatalf("keep-alive used %d sockets, want 1", len(res.SocketFDs))
	}
}

func TestChunkedTransferUsesMultipleSockets(t *testing.T) {
	d := newTestDevice()
	funcs := []Functionality{{
		Name:     "evasive-upload",
		CallPath: []dex.Frame{{Class: "com/corp/files/SyncEngine", Method: "upload", File: "SyncEngine.java", Line: 60}},
		Op:       NetOp{Endpoint: endpoint(), Method: "PUT", PayloadBytes: 10000, Chunks: 4},
	}}
	app, err := d.InstallApp(testAPK(), funcs, ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Invoke("evasive-upload")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SocketFDs) != 4 {
		t.Fatalf("chunked op used %d sockets, want 4", len(res.SocketFDs))
	}
	for _, pkt := range res.Packets {
		if len(pkt.Payload) > 4000 {
			t.Fatalf("chunk payload %d larger than expected", len(pkt.Payload))
		}
	}
}

func TestNativeSocketBypassesHooks(t *testing.T) {
	d := newTestDevice()
	hookFired := false
	// Register a netstack-level connect hook like the Context Manager does.
	d.Stack().RegisterConnectHook(func(sock *netstack.JavaSocket) { hookFired = true })
	funcs := []Functionality{{
		Name:     "native-beacon",
		CallPath: []dex.Frame{{Class: "com/flurry/sdk/Agent", Method: "beacon", File: "Agent.java", Line: 10}},
		Op:       NetOp{Endpoint: endpoint(), UseNativeSocket: true, PayloadBytes: 64},
	}}
	app, err := d.InstallApp(testAPK(), funcs, ProfileWork)
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Invoke("native-beacon")
	if err != nil {
		t.Fatal(err)
	}
	if hookFired {
		t.Fatal("native socket path must not fire Java-level hooks")
	}
	if len(res.Packets) != 3 {
		t.Fatalf("native op sent %d packets, want 3 (SYN + data + FIN)", len(res.Packets))
	}
	if res.Tagged {
		t.Fatal("native-socket packet must be untagged")
	}
	for i, pkt := range res.Packets {
		if _, ok := pkt.Header.FindOption(ipv4.OptSecurity); ok {
			t.Fatalf("native packet %d carries options", i)
		}
	}
}

func TestAppsOrderedByUID(t *testing.T) {
	d := newTestDevice()
	names := []string{"com.a.one", "com.b.two", "com.c.three"}
	for _, n := range names {
		apk := testAPK()
		apk.PackageName = n
		apk.Invalidate()
		if _, err := d.InstallApp(apk, nil, ProfileWork); err != nil {
			t.Fatal(err)
		}
	}
	apps := d.Apps()
	if len(apps) != 3 {
		t.Fatalf("got %d apps", len(apps))
	}
	for i, n := range names {
		if apps[i].APK.PackageName != n {
			t.Fatalf("apps[%d] = %s, want %s", i, apps[i].APK.PackageName, n)
		}
	}
	if _, ok := d.AppByPackage("com.b.two"); !ok {
		t.Fatal("AppByPackage failed")
	}
	if _, ok := d.AppByUID(apps[2].UID); !ok {
		t.Fatal("AppByUID failed")
	}
	if _, ok := d.AppByPackage("com.nope"); ok {
		t.Fatal("phantom app")
	}
}

func TestProfileString(t *testing.T) {
	if ProfileWork.String() != "work" || ProfilePersonal.String() != "personal" {
		t.Error("profile names")
	}
}
